GO ?= go

.PHONY: all build test race vet bench bench-baseline wapd serve fuzz-smoke

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Build the scan-service binary.
wapd:
	$(GO) build -o bin/wapd ./cmd/wapd

# Run the scan service with development-friendly settings.
serve: wapd
	./bin/wapd -addr :8387 -workers 2 -queue-depth 16 -drain-timeout 30s

# Mirror of the CI fuzz smoke: 30s over each parser fuzz target.
fuzz-smoke:
	$(GO) test ./internal/php/parser -run '^$$' -fuzz=FuzzParse -fuzztime=30s
	$(GO) test ./internal/php/parser -run '^$$' -fuzz=FuzzPrintRoundtrip -fuzztime=30s

bench:
	$(GO) test -bench=. -benchmem .

# Machine-readable baseline for the analysis benchmarks (cached vs
# uncached), for before/after comparison of engine changes.
bench-baseline:
	$(GO) test -json -run '^$$' -bench 'BenchmarkAnalyzeApp' -benchmem . > BENCH_analyze.json
