GO ?= go

.PHONY: all build test race vet lint bench bench-compare bench-smoke wapd serve fuzz-smoke chaos chaos-backend weapons-gate ir-diff fuse-diff

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Build the scan-service binary.
wapd:
	$(GO) build -o bin/wapd ./cmd/wapd

# Run the scan service with development-friendly settings.
serve: wapd
	./bin/wapd -addr :8387 -workers 2 -queue-depth 16 -drain-timeout 30s

# Durability suite under the race detector: the fault-injection harness, the
# job journal, result-store self-healing, and the crash-resume determinism
# tests (kill at every journal record boundary, corrupt every record kind).
# Mirrors the CI chaos job.
chaos:
	$(GO) test -race -count=1 ./internal/chaos/... ./internal/journal/... ./internal/resultstore/...
	$(GO) test -race -count=1 ./internal/core/ -run 'TestCheckpoint|TestIncremental'
	$(GO) test -race -count=1 ./internal/server/ -run 'TestCrashResume|TestCorruptRecord|TestCleanDrain|TestForcedDrain|TestAsync'

# Backend fault suite under the race detector: the network chaos seam, the
# result-store fault envelope (retries, budget, breaker), write-behind
# shedding, the HTTP blob protocol, and the degrade-to-cacheless determinism
# bar (scans over a down/flaky/lying tier must produce byte-identical
# findings at sequential and parallel schedules). The closing one-iteration
# bench confirms the local-disk store path still runs — trend the real ns/op
# with `make bench` / `make bench-compare`, which fail on a >10% regression.
# Mirrors the CI chaos job's backend steps.
chaos-backend:
	$(GO) test -race -count=1 ./internal/chaos/ -run 'TestRoundTripper'
	$(GO) test -race -count=1 ./internal/resultstore/...
	$(GO) test -race -count=1 ./internal/core/ -run 'TestScanOver|TestBackendBreaker|TestScanStatsBackend'
	$(GO) test -race -count=1 ./internal/server/ -run 'TestCacheServe|TestHealthz|TestListener'
	$(GO) test -run '^$$' -bench 'BenchmarkAnalyzeAppIncremental' -benchtime=1x .

# Validation-ladder gate over the builtin weapon specs and every spec file
# in weapons/: parse, collision check, and a dry-run scan of each weapon's
# generated proof app — the same ladder wapd applies to a hot POST /weapons
# upload. Mirrors the CI weapons-gate job.
weapons-gate:
	$(GO) run ./cmd/weaponsmith -gate weapons/*.weapon

# Mirror of the CI fuzz smoke: 30s over each parser fuzz target.
fuzz-smoke:
	$(GO) test ./internal/php/parser -run '^$$' -fuzz=FuzzParse -fuzztime=30s
	$(GO) test ./internal/php/parser -run '^$$' -fuzz=FuzzPrintRoundtrip -fuzztime=30s

# gofmt (fails listing any unformatted file) + go vet. CI additionally runs
# staticcheck; run it here too if it is on PATH.
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; else echo "staticcheck not installed; skipped (CI runs it)"; fi

# Run the analysis + front-end benchmarks and append one entry to the bench
# trajectory (BENCH_analyze.json, JSON lines — appended, never overwritten).
# -benchmem makes benchtrend record B/op and allocs/op alongside ns/op;
# -count=3 runs each benchmark three times and benchtrend keeps the minimum,
# so the trajectory gates on signal instead of scheduler jitter.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkAnalyzeApp|BenchmarkLoadDir|BenchmarkLexFile|BenchmarkParseFile|BenchmarkLowerFile' -benchmem -count=3 . | $(GO) run ./cmd/benchtrend -file BENCH_analyze.json

# Diff the last two trajectory entries; fails on a >10% regression of any
# benchmark in any recorded dimension (ns/op, B/op, allocs/op) and prints the
# incremental cold/warm speedup ratio.
bench-compare:
	$(GO) run ./cmd/benchtrend -compare -file BENCH_analyze.json

# One-iteration smoke over every benchmark: catches benchmark code rot
# without holding the pipeline (mirrored in CI).
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x .

# Differential harness for the IR taint engine: every corpus app (web suite,
# micro suite, weapon dry-run proof apps, branch-sensitivity proofs) scanned
# by the legacy AST walker and the IR engine at parallelism 1 and 3 under
# the race detector. Reports must be byte-identical except for the precision
# wins enumerated in internal/core/testdata/ir_golden_deltas.json. Mirrors
# the CI ir-diff job.
ir-diff:
	$(GO) test -race -count=1 ./internal/core/ -run 'TestIRDifferential'
	$(GO) test -race -count=1 ./internal/taint/ -run 'TestIR'

# Differential harness for fused scheduling: every corpus app scanned with
# fused multi-class evaluation (the default) and per-class execution
# (DisableFusion), at parallelism 1 and 3 under the race detector, plus the
# taint-level lane-equivalence and demotion fault-injection suites. Reports
# must be byte-identical — fusion is pure scheduling, so there is no golden
# delta file. Mirrors the CI fuse-diff job.
fuse-diff:
	$(GO) test -race -count=1 ./internal/core/ -run 'TestFused'
	$(GO) test -race -count=1 ./internal/taint/ -run 'TestFused'
