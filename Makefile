GO ?= go

.PHONY: all build test race vet bench bench-baseline

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem .

# Machine-readable baseline for the analysis benchmarks (cached vs
# uncached), for before/after comparison of engine changes.
bench-baseline:
	$(GO) test -json -run '^$$' -bench 'BenchmarkAnalyzeApp' -benchmem . > BENCH_analyze.json
