// Package journal is wapd's write-ahead job journal: the durable record of
// every scan job the service accepted and how far it got, so a process
// crash loses no accepted work. The scan service appends one record per
// lifecycle transition —
//
//	accepted   — the job exists; the payload carries the full request, so
//	             replay can re-admit it without any other state;
//	started    — a worker picked the job up;
//	checkpoint — the engine flushed a mid-scan result-store snapshot, so a
//	             resume comes back warm up to this point;
//	done       — the job answered; replay must not re-admit it.
//
// On startup the service replays the journal and re-admits every job with
// an accepted record but no done record. On graceful drain the journal is
// compacted: completed jobs drop out, and a clean shutdown leaves an empty
// journal so the next start skips replay entirely.
//
// The on-disk format is one record per line: an 8-hex-digit CRC32 (IEEE) of
// the record's JSON, a space, the JSON, a newline. Appends are a single
// write syscall followed by fsync (unless Options.NoSync), so a crash can
// only tear the final record. Replay is prefix-correct: it stops at the
// first record whose CRC, framing or JSON fails, truncates the file back to
// the last good record, and counts the dropped tail — a torn append costs
// exactly the record that was being written, never an earlier one. A file
// whose header is unrecognizable is quarantined (moved aside) and the
// journal starts fresh; crash-resume degrades to losing the in-flight jobs,
// never to refusing to start.
//
// Unlike the result store (a cache, documented no-fsync), the journal is
// the source of truth for accepted work and fsyncs every append by default.
package journal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
)

// header is the first line of every journal file; a file that does not
// start with it is not ours (or is damaged beyond record recovery) and is
// quarantined wholesale.
const header = "wapd-journal-v1"

// Kind labels one job lifecycle transition.
type Kind string

// Record kinds.
const (
	JobAccepted    Kind = "accepted"
	JobStarted     Kind = "started"
	TaskCheckpoint Kind = "checkpoint"
	JobDone        Kind = "done"
)

// Record is one journal entry.
type Record struct {
	// Seq is the append sequence number, strictly increasing within a
	// journal generation (compaction preserves the surviving records' Seqs).
	Seq int64 `json:"seq"`
	// Kind is the lifecycle transition.
	Kind Kind `json:"kind"`
	// Job is the job ID the record belongs to.
	Job string `json:"job"`
	// UnixMS is the append wall-clock time (informational).
	UnixMS int64 `json:"unix_ms,omitempty"`
	// Payload is kind-specific: the full scan request on accepted records,
	// progress counters on checkpoints, the outcome on done records.
	Payload json.RawMessage `json:"payload,omitempty"`
}

// Options tunes a journal.
type Options struct {
	// FS is the filesystem seam; nil uses chaos.OS. Tests inject faults here.
	FS chaos.FS
	// NoSync skips the per-append fsync. A crash may then lose the final
	// records (the tail is still detected and dropped on replay); use it
	// only where losing accepted jobs is acceptable.
	NoSync bool
}

// Counters is the journal's observability account.
type Counters struct {
	// Appended counts records written by this process.
	Appended int64 `json:"appended"`
	// Replayed counts records recovered by Open.
	Replayed int64 `json:"replayed"`
	// DroppedBytes counts tail bytes Open discarded (torn final append) and
	// DroppedRecords the records lost to corruption mid-file.
	DroppedBytes int64 `json:"dropped_bytes,omitempty"`
	// Quarantined counts whole files moved aside for an unrecognizable
	// header.
	Quarantined int64 `json:"quarantined,omitempty"`
	// Compactions counts Compact calls that rewrote the file.
	Compactions int64 `json:"compactions,omitempty"`
	// AppendErrors counts Append calls that failed; the caller decides
	// whether that degrades durability or fails the job.
	AppendErrors int64 `json:"append_errors,omitempty"`
}

// Journal is an open write-ahead journal. It is safe for concurrent use.
type Journal struct {
	path string
	fs   chaos.FS
	sync bool

	mu       sync.Mutex
	f        chaos.File
	seq      int64
	replayed []Record

	appended     atomic.Int64
	replayCount  atomic.Int64
	droppedBytes atomic.Int64
	quarantined  atomic.Int64
	compactions  atomic.Int64
	appendErrs   atomic.Int64
}

// Open replays the journal at path (creating it, and its directory, when
// missing) and opens it for appending. The returned records are the valid
// prefix of the previous generation; the caller folds them into its job
// state. Open never fails on a damaged journal — it recovers the valid
// prefix or quarantines the file — only on errors that make appending
// impossible.
func Open(path string, opts Options) (*Journal, []Record, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = chaos.OS
	}
	j := &Journal{path: path, fs: fsys, sync: !opts.NoSync}
	if dir := filepath.Dir(path); dir != "" && dir != "." {
		if err := fsys.MkdirAll(dir, 0o755); err != nil {
			return nil, nil, fmt.Errorf("journal: open %s: %w", path, err)
		}
	}
	records, err := j.replay()
	if err != nil {
		return nil, nil, err
	}
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: open %s: %w", path, err)
	}
	j.f = f
	if len(records) == 0 {
		// Fresh or quarantined file: (re)write the header so the next
		// replay recognizes the generation.
		if fi, statErr := fsys.Stat(path); statErr == nil && fi.Size() == 0 {
			if _, err := f.Write([]byte(header + "\n")); err != nil {
				_ = f.Close()
				return nil, nil, fmt.Errorf("journal: write header %s: %w", path, err)
			}
		}
	}
	j.replayed = records
	return j, records, nil
}

// replay reads the file and returns its valid record prefix, truncating the
// file back to the last good record so the next append extends a clean
// tail. A file with an unrecognizable header is quarantined.
func (j *Journal) replay() ([]Record, error) {
	data, err := j.fs.ReadFile(j.path)
	if err != nil {
		return nil, nil // missing file: fresh journal
	}
	if len(data) == 0 {
		return nil, nil
	}
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 || string(data[:nl]) != header {
		// Not our header: nothing in this file is trustworthy. Move it
		// aside for diagnosis and start fresh.
		j.quarantined.Add(1)
		if err := j.fs.Rename(j.path, j.path+".quarantined"); err != nil {
			// Could not move it; truncating loses the evidence but keeps
			// the journal usable.
			if terr := j.fs.Truncate(j.path, 0); terr != nil {
				return nil, fmt.Errorf("journal: quarantine %s: %w", j.path, err)
			}
		}
		return nil, nil
	}
	var (
		records []Record
		good    = int64(nl + 1) // byte offset just past the last valid record
		rest    = data[nl+1:]
		offset  = good
	)
	for len(rest) > 0 {
		lineEnd := bytes.IndexByte(rest, '\n')
		if lineEnd < 0 {
			break // torn final append: no terminator
		}
		line := rest[:lineEnd]
		rec, ok := parseRecord(line)
		if !ok {
			break // CRC or framing failure: the tail is unreliable
		}
		records = append(records, rec)
		offset += int64(lineEnd + 1)
		good = offset
		rest = rest[lineEnd+1:]
	}
	if dropped := int64(len(data)) - good; dropped > 0 {
		j.droppedBytes.Add(dropped)
		if err := j.fs.Truncate(j.path, good); err != nil {
			return nil, fmt.Errorf("journal: truncate torn tail of %s: %w", j.path, err)
		}
	}
	j.replayCount.Add(int64(len(records)))
	if n := len(records); n > 0 {
		j.seq = records[n-1].Seq
	}
	return records, nil
}

// parseRecord decodes one "crc8hex json" line.
func parseRecord(line []byte) (Record, bool) {
	if len(line) < 10 || line[8] != ' ' {
		return Record{}, false
	}
	var want uint32
	if _, err := fmt.Sscanf(string(line[:8]), "%08x", &want); err != nil {
		return Record{}, false
	}
	body := line[9:]
	if crc32.ChecksumIEEE(body) != want {
		return Record{}, false
	}
	var rec Record
	if err := json.Unmarshal(body, &rec); err != nil {
		return Record{}, false
	}
	return rec, true
}

func encodeRecord(rec Record) ([]byte, error) {
	body, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	line := make([]byte, 0, len(body)+10)
	line = fmt.Appendf(line, "%08x ", crc32.ChecksumIEEE(body))
	line = append(line, body...)
	line = append(line, '\n')
	return line, nil
}

// Append durably adds one record. The payload is marshaled to JSON; nil
// payloads are fine. Append returns the record's sequence number so callers
// can correlate; on error nothing may have been persisted and the caller
// decides whether the job proceeds without durability.
func (j *Journal) Append(kind Kind, job string, payload any) (int64, error) {
	var raw json.RawMessage
	if payload != nil {
		data, err := json.Marshal(payload)
		if err != nil {
			j.appendErrs.Add(1)
			return 0, fmt.Errorf("journal: marshal %s payload: %w", kind, err)
		}
		raw = data
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		j.appendErrs.Add(1)
		return 0, fmt.Errorf("journal: append %s: journal is closed", kind)
	}
	j.seq++
	rec := Record{Seq: j.seq, Kind: kind, Job: job, UnixMS: time.Now().UnixMilli(), Payload: raw}
	line, err := encodeRecord(rec)
	if err != nil {
		j.appendErrs.Add(1)
		return 0, err
	}
	if _, err := j.f.Write(line); err != nil {
		j.appendErrs.Add(1)
		return 0, fmt.Errorf("journal: append %s: %w", kind, err)
	}
	if j.sync {
		if err := j.f.Sync(); err != nil {
			j.appendErrs.Add(1)
			return 0, fmt.Errorf("journal: sync: %w", err)
		}
	}
	j.appended.Add(1)
	return rec.Seq, nil
}

// Compact atomically rewrites the journal to contain exactly keep (in the
// given order), preserving their sequence numbers, and switches appends to
// the new generation. Graceful drain calls it with the accepted records of
// still-incomplete jobs — or an empty slice on a clean shutdown, leaving a
// header-only journal the next start replays in one read.
func (j *Journal) Compact(keep []Record) error {
	var buf bytes.Buffer
	buf.WriteString(header + "\n")
	maxSeq := int64(0)
	for _, rec := range keep {
		line, err := encodeRecord(rec)
		if err != nil {
			return fmt.Errorf("journal: compact: %w", err)
		}
		buf.Write(line)
		if rec.Seq > maxSeq {
			maxSeq = rec.Seq
		}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := chaos.WriteFileAtomic(j.fs, j.path, buf.Bytes(), 0o644, j.sync); err != nil {
		return fmt.Errorf("journal: compact %s: %w", j.path, err)
	}
	if j.f != nil {
		_ = j.f.Close()
	}
	f, err := j.fs.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		j.f = nil
		return fmt.Errorf("journal: reopen after compact: %w", err)
	}
	j.f = f
	if maxSeq > j.seq {
		j.seq = maxSeq
	}
	j.compactions.Add(1)
	return nil
}

// Replayed returns the records Open recovered from the previous generation.
func (j *Journal) Replayed() []Record { return j.replayed }

// Path returns the journal file path.
func (j *Journal) Path() string { return j.path }

// Counters returns the journal's observability account.
func (j *Journal) Counters() Counters {
	return Counters{
		Appended:     j.appended.Load(),
		Replayed:     j.replayCount.Load(),
		DroppedBytes: j.droppedBytes.Load(),
		Quarantined:  j.quarantined.Load(),
		Compactions:  j.compactions.Load(),
		AppendErrors: j.appendErrs.Load(),
	}
}

// Close closes the append handle. Further Appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
