package journal

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/chaos"
)

func openT(t *testing.T, path string, opts Options) (*Journal, []Record) {
	t.Helper()
	j, recs, err := Open(path, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	t.Cleanup(func() { j.Close() })
	return j, recs
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wapd.journal")
	j, recs := openT(t, path, Options{})
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	type payload struct {
		N int `json:"n"`
	}
	var seqs []int64
	for i, kind := range []Kind{JobAccepted, JobStarted, TaskCheckpoint, JobDone} {
		seq, err := j.Append(kind, "job-1", payload{N: i})
		if err != nil {
			t.Fatalf("Append(%s): %v", kind, err)
		}
		seqs = append(seqs, seq)
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] <= seqs[i-1] {
			t.Fatalf("seqs not strictly increasing: %v", seqs)
		}
	}
	j.Close()

	j2, recs := openT(t, path, Options{})
	if len(recs) != 4 {
		t.Fatalf("replayed %d records, want 4", len(recs))
	}
	for i, rec := range recs {
		if rec.Job != "job-1" || rec.Seq != seqs[i] {
			t.Errorf("record %d = %+v", i, rec)
		}
		var p payload
		if err := json.Unmarshal(rec.Payload, &p); err != nil || p.N != i {
			t.Errorf("record %d payload = %s (%v)", i, rec.Payload, err)
		}
	}
	if got := j2.Counters().Replayed; got != 4 {
		t.Errorf("Counters().Replayed = %d", got)
	}
	// Appends after replay continue the sequence.
	seq, err := j2.Append(JobAccepted, "job-2", nil)
	if err != nil {
		t.Fatal(err)
	}
	if seq <= seqs[len(seqs)-1] {
		t.Errorf("post-replay seq %d did not continue from %d", seq, seqs[len(seqs)-1])
	}
}

func TestTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j, _ := openT(t, path, Options{})
	j.Append(JobAccepted, "job-1", nil)
	j.Append(JobStarted, "job-1", nil)
	j.Close()

	// A crash mid-append leaves a partial final line (no terminator).
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`deadbeef {"seq":3,"kind":"done"`)
	f.Close()
	before, _ := os.Stat(path)

	j2, recs := openT(t, path, Options{})
	if len(recs) != 2 {
		t.Fatalf("replayed %d records, want the 2 before the torn tail", len(recs))
	}
	if c := j2.Counters(); c.DroppedBytes == 0 {
		t.Errorf("DroppedBytes = 0 after torn tail")
	}
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Errorf("torn tail not truncated: %d -> %d bytes", before.Size(), after.Size())
	}
	// The journal appends cleanly on the truncated file.
	if _, err := j2.Append(JobDone, "job-1", nil); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3, recs := openT(t, path, Options{})
	defer j3.Close()
	if len(recs) != 3 {
		t.Fatalf("after repair+append replayed %d records, want 3", len(recs))
	}
}

func TestCorruptMidRecordStopsPrefix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j, _ := openT(t, path, Options{})
	j.Append(JobAccepted, "job-1", nil)
	j.Append(JobStarted, "job-1", nil)
	j.Append(JobDone, "job-1", nil)
	j.Close()

	// Flip a byte inside the second record's JSON: its CRC no longer matches,
	// so replay keeps only the first record — prefix-correct, never skipping.
	data, _ := os.ReadFile(path)
	lines := strings.SplitAfter(string(data), "\n")
	lines[2] = strings.Replace(lines[2], `"job-1"`, `"job-X"`, 1)
	os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644)

	j2, recs := openT(t, path, Options{})
	defer j2.Close()
	if len(recs) != 1 || recs[0].Kind != JobAccepted {
		t.Fatalf("replayed %+v, want only the accepted record", recs)
	}
	if c := j2.Counters(); c.DroppedBytes == 0 {
		t.Errorf("corrupt tail not counted in DroppedBytes")
	}
}

func TestBadHeaderQuarantines(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j")
	os.WriteFile(path, []byte("not a journal at all\njunk\n"), 0o644)

	j, recs := openT(t, path, Options{})
	if len(recs) != 0 {
		t.Fatalf("quarantined journal replayed %d records", len(recs))
	}
	if c := j.Counters(); c.Quarantined != 1 {
		t.Errorf("Quarantined = %d, want 1", c.Quarantined)
	}
	q, err := os.ReadFile(path + ".quarantined")
	if err != nil || !strings.Contains(string(q), "not a journal") {
		t.Errorf("quarantine file missing or wrong: %q, %v", q, err)
	}
	// The fresh journal works.
	if _, err := j.Append(JobAccepted, "job-1", nil); err != nil {
		t.Fatal(err)
	}
	j.Close()
	j2, recs := openT(t, path, Options{})
	defer j2.Close()
	if len(recs) != 1 {
		t.Fatalf("fresh generation replayed %d records, want 1", len(recs))
	}
}

func TestCompactPreservesSeqs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j, _ := openT(t, path, Options{})
	var keep []Record
	for i := 1; i <= 5; i++ {
		job := fmt.Sprintf("job-%d", i)
		seq, err := j.Append(JobAccepted, job, nil)
		if err != nil {
			t.Fatal(err)
		}
		if i%2 == 1 { // keep the odd jobs
			keep = append(keep, Record{Seq: seq, Kind: JobAccepted, Job: job})
		}
	}
	if err := j.Compact(keep); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if c := j.Counters(); c.Compactions != 1 {
		t.Errorf("Compactions = %d", c.Compactions)
	}
	// Appends continue past the highest preserved seq.
	seq, err := j.Append(JobAccepted, "job-6", nil)
	if err != nil {
		t.Fatalf("append after compact: %v", err)
	}
	if seq <= keep[len(keep)-1].Seq {
		t.Errorf("post-compact seq %d not past %d", seq, keep[len(keep)-1].Seq)
	}
	j.Close()

	j2, recs := openT(t, path, Options{})
	defer j2.Close()
	if len(recs) != 4 {
		t.Fatalf("replayed %d records, want 3 kept + 1 appended", len(recs))
	}
	for i, want := range []string{"job-1", "job-3", "job-5", "job-6"} {
		if recs[i].Job != want {
			t.Errorf("record %d = %s, want %s", i, recs[i].Job, want)
		}
	}
}

func TestCompactEmptyLeavesHeaderOnly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j, _ := openT(t, path, Options{})
	j.Append(JobAccepted, "job-1", nil)
	j.Append(JobDone, "job-1", nil)
	if err := j.Compact(nil); err != nil {
		t.Fatal(err)
	}
	j.Close()
	data, _ := os.ReadFile(path)
	if string(data) != header+"\n" {
		t.Errorf("clean compaction left %q, want header only", data)
	}
	_, recs := openT(t, path, Options{})
	if len(recs) != 0 {
		t.Errorf("header-only journal replayed %d records", len(recs))
	}
}

func TestAppendAfterClose(t *testing.T) {
	j, _ := openT(t, filepath.Join(t.TempDir(), "j"), Options{})
	j.Close()
	if _, err := j.Append(JobAccepted, "job-1", nil); err == nil {
		t.Fatal("append after close succeeded")
	}
	if c := j.Counters(); c.AppendErrors != 1 {
		t.Errorf("AppendErrors = %d", c.AppendErrors)
	}
}

func TestNoSyncSkipsFsync(t *testing.T) {
	in := chaos.NewInjector(nil)
	j, _ := openT(t, filepath.Join(t.TempDir(), "j"), Options{FS: in, NoSync: true})
	if _, err := j.Append(JobAccepted, "job-1", nil); err != nil {
		t.Fatal(err)
	}
	if in.OpCount(chaos.OpSync) != 0 {
		t.Errorf("NoSync journal synced %d time(s)", in.OpCount(chaos.OpSync))
	}
	j2, _ := openT(t, filepath.Join(t.TempDir(), "j2"), Options{FS: chaos.NewInjector(nil)})
	in2 := j2.fs.(*chaos.Injector)
	if _, err := j2.Append(JobAccepted, "job-1", nil); err != nil {
		t.Fatal(err)
	}
	if in2.OpCount(chaos.OpSync) == 0 {
		t.Errorf("default journal did not fsync the append")
	}
}

func TestAppendFaultSurfaces(t *testing.T) {
	in := chaos.NewInjector(nil)
	path := filepath.Join(t.TempDir(), "j")
	j, _ := openT(t, path, Options{FS: in})
	if _, err := j.Append(JobAccepted, "job-1", nil); err != nil {
		t.Fatal(err)
	}
	in.Add(chaos.Rule{Op: chaos.OpWrite, Count: 1})
	if _, err := j.Append(JobStarted, "job-1", nil); !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("injected write fault not surfaced: %v", err)
	}
	if c := j.Counters(); c.AppendErrors != 1 {
		t.Errorf("AppendErrors = %d", c.AppendErrors)
	}
	// The journal recovers once the fault clears.
	if _, err := j.Append(JobStarted, "job-1", nil); err != nil {
		t.Fatalf("append after cleared fault: %v", err)
	}
}

// TestShortWriteAppendDropsOnlyTornRecord is the heart of the WAL claim: a
// crash mid-append (simulated as a short write) costs exactly the record
// being written, never an earlier one.
func TestShortWriteAppendDropsOnlyTornRecord(t *testing.T) {
	in := chaos.NewInjector(nil)
	path := filepath.Join(t.TempDir(), "j")
	j, _ := openT(t, path, Options{FS: in, NoSync: true})
	j.Append(JobAccepted, "job-1", nil)
	j.Append(JobStarted, "job-1", nil)
	in.Add(chaos.Rule{Op: chaos.OpWrite, Mode: chaos.ShortWrite, Count: 1})
	if _, err := j.Append(JobDone, "job-1", nil); err == nil {
		t.Fatal("short write append succeeded")
	}
	j.Close()

	j2, recs := openT(t, path, Options{})
	defer j2.Close()
	if len(recs) != 2 {
		t.Fatalf("replayed %d records, want the 2 appended before the tear", len(recs))
	}
	if recs[0].Kind != JobAccepted || recs[1].Kind != JobStarted {
		t.Errorf("surviving records: %+v", recs)
	}
}

func TestCompactFaultKeepsOldGeneration(t *testing.T) {
	in := chaos.NewInjector(nil)
	path := filepath.Join(t.TempDir(), "j")
	j, _ := openT(t, path, Options{FS: in})
	j.Append(JobAccepted, "job-1", nil)
	in.Add(chaos.Rule{Op: chaos.OpRename, Count: 1})
	if err := j.Compact(nil); err == nil {
		t.Fatal("faulted compaction succeeded")
	}
	j.Close()
	// The old generation survives a failed compaction intact.
	j2, recs := openT(t, path, Options{})
	defer j2.Close()
	if len(recs) != 1 || recs[0].Job != "job-1" {
		t.Fatalf("old generation lost after failed compaction: %+v", recs)
	}
}
