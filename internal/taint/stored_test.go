package taint

import (
	"testing"

	"repro/internal/php/ast"
	"repro/internal/php/parser"
	"repro/internal/vuln"
)

const storedApp = `<?php
// Comment form: tainted write into the comments table...
$body = $_POST['body'];
mysql_query("INSERT INTO comments (body) VALUES ('" . $body . "')");

// ...and an unsanitized echo of data read back from the same table.
$res = mysql_query("SELECT body FROM comments ORDER BY id DESC");
$row = mysql_fetch_assoc($res);
echo "<li>" . $row['body'] . "</li>";

// An unrelated table: fetched and echoed, but never written with taint.
$res2 = mysql_query("SELECT name FROM categories");
$cat = mysql_fetch_assoc($res2);
echo $cat['name'];
`

func storedSetup(t *testing.T, src string) (writes, reads []*Candidate, files map[string]*ast.File) {
	t.Helper()
	f, errs := parser.Parse("stored.php", src)
	if len(errs) > 0 {
		t.Fatal(errs)
	}
	sqli := New(Config{Class: vuln.MustGet(vuln.SQLI)}).File(f)
	for _, c := range sqli {
		if IsWriteQuery(c) {
			writes = append(writes, c)
		}
	}
	reads = New(Config{Class: vuln.MustGet(vuln.XSSS)}).File(f)
	return writes, reads, map[string]*ast.File{"stored.php": f}
}

func TestLinkStoredXSS(t *testing.T) {
	writes, reads, files := storedSetup(t, storedApp)
	if len(writes) != 1 {
		t.Fatalf("writes = %d", len(writes))
	}
	if len(reads) != 2 {
		t.Fatalf("reads = %d", len(reads))
	}
	links := LinkStoredXSS(writes, reads, files)
	if len(links) != 1 {
		t.Fatalf("links = %d, want 1 (only the comments table pair)", len(links))
	}
	if links[0].Table != "COMMENTS" {
		t.Errorf("table = %q", links[0].Table)
	}
	if links[0].Write.SinkPos.Line != 4 {
		t.Errorf("write line = %d", links[0].Write.SinkPos.Line)
	}
	if links[0].Read.SinkPos.Line != 9 {
		t.Errorf("read line = %d", links[0].Read.SinkPos.Line)
	}
}

func TestLinkStoredXSSUpdateQuery(t *testing.T) {
	writes, reads, files := storedSetup(t, `<?php
mysql_query("UPDATE profiles SET bio='" . $_POST['bio'] . "' WHERE id=1");
$r = mysql_query("SELECT bio FROM profiles WHERE id=1");
$row = mysql_fetch_array($r);
echo $row['bio'];`)
	links := LinkStoredXSS(writes, reads, files)
	if len(links) != 1 || links[0].Table != "PROFILES" {
		t.Fatalf("links = %+v", links)
	}
}

func TestNoLinkAcrossDifferentTables(t *testing.T) {
	writes, reads, files := storedSetup(t, `<?php
mysql_query("INSERT INTO audit_log (msg) VALUES ('" . $_POST['m'] . "')");
$r = mysql_query("SELECT title FROM articles");
$row = mysql_fetch_assoc($r);
echo $row['title'];`)
	links := LinkStoredXSS(writes, reads, files)
	if len(links) != 0 {
		t.Fatalf("links = %+v, want none", links)
	}
}

func TestIsWriteQuery(t *testing.T) {
	writes, _, _ := storedSetup(t, `<?php
mysql_query("INSERT INTO t (a) VALUES ('" . $_GET['a'] . "')");
mysql_query("SELECT * FROM t WHERE a='" . $_GET['b'] . "'");
mysql_query("UPDATE t SET a='" . $_GET['c'] . "'");
mysql_query("REPLACE INTO t (a) VALUES ('" . $_GET['d'] . "')");`)
	if len(writes) != 3 {
		t.Fatalf("write candidates = %d, want 3", len(writes))
	}
}

func TestReadTableRequiresResolvableResult(t *testing.T) {
	// Fetch from an unresolvable result set: no link, no panic.
	writes, reads, files := storedSetup(t, `<?php
mysql_query("INSERT INTO x (a) VALUES ('" . $_POST['a'] . "')");
$row = mysql_fetch_assoc(get_result());
echo $row['a'];`)
	links := LinkStoredXSS(writes, reads, files)
	if len(links) != 0 {
		t.Fatalf("links = %+v", links)
	}
}
