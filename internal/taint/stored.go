package taint

import (
	"strings"

	"repro/internal/php/ast"
)

// StoredLink connects the two halves of a stored XSS: a tainted write into a
// database table and an unsanitized echo of data read back from the same
// table. WAP flags both halves independently (the write via SQLI-style
// sinks, the read via the stored-XSS detector); the linker upgrades the pair
// into one end-to-end finding when the table names can be matched.
type StoredLink struct {
	// Write is the candidate whose tainted data is persisted (an
	// INSERT/UPDATE/REPLACE query sink).
	Write *Candidate
	// Read is the stored-XSS candidate echoing fetched data.
	Read *Candidate
	// Table is the database table connecting the two.
	Table string
}

// LinkStoredXSS matches tainted-write candidates against stored-XSS read
// candidates by table name, using the file ASTs to resolve which query each
// fetch consumes. Candidates whose table cannot be determined are skipped.
func LinkStoredXSS(writes, reads []*Candidate, files map[string]*ast.File) []StoredLink {
	var links []StoredLink
	for _, w := range writes {
		table := writeTable(w)
		if table == "" {
			continue
		}
		for _, r := range reads {
			f := files[r.File]
			if f == nil {
				continue
			}
			if readTable(r, f) == table {
				links = append(links, StoredLink{Write: w, Read: r, Table: table})
			}
		}
	}
	return links
}

// writeTable extracts the target table of an INSERT/UPDATE/REPLACE write
// candidate from the literal parts of its query argument.
func writeTable(c *Candidate) string {
	text := strings.ToUpper(literalText(c.TaintedExpr))
	for _, kw := range [...]string{"INSERT INTO ", "REPLACE INTO ", "UPDATE "} {
		if i := strings.Index(text, kw); i >= 0 {
			return tableIdent(text[i+len(kw):])
		}
	}
	return ""
}

// readTable determines the table a stored-XSS read candidate fetches from:
// the fetch call's result-set argument is traced back to the mysql_query
// SELECT that produced it within the same scope.
func readTable(c *Candidate, file *ast.File) string {
	// The fetch call is the first taint source step.
	var fetchCall *ast.CallExpr
	for _, step := range c.Value.Trace {
		if call, ok := step.Node.(*ast.CallExpr); ok {
			if strings.HasPrefix(ast.CalleeName(call), "mysql_fetch") ||
				strings.HasPrefix(ast.CalleeName(call), "mysqli_fetch") ||
				strings.HasPrefix(ast.CalleeName(call), "pg_fetch") {
				fetchCall = call
				break
			}
		}
	}
	if fetchCall == nil || len(fetchCall.Args) == 0 {
		return ""
	}
	resVar, ok := fetchCall.Args[0].(*ast.Variable)
	if !ok {
		return ""
	}
	// Find `$resVar = <query call>("SELECT ... FROM table")` in the file.
	table := ""
	ast.Inspect(file, func(n ast.Node) bool {
		a, ok := n.(*ast.AssignExpr)
		if !ok {
			return true
		}
		lhs, ok := a.Lhs.(*ast.Variable)
		if !ok || lhs.Name != resVar.Name {
			return true
		}
		call, ok := a.Rhs.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := ast.CalleeName(call)
		if !strings.Contains(name, "query") || len(call.Args) == 0 {
			return true
		}
		text := strings.ToUpper(literalText(call.Args[0]))
		if i := strings.Index(text, "FROM "); i >= 0 {
			table = tableIdent(text[i+5:])
			return false
		}
		return true
	})
	return table
}

// literalText concatenates the string-literal fragments of an expression.
func literalText(e ast.Expr) string {
	var b strings.Builder
	ast.Inspect(e, func(n ast.Node) bool {
		if lit, ok := n.(*ast.StringLit); ok {
			b.WriteString(lit.Value)
		}
		return true
	})
	return b.String()
}

// tableIdent reads the leading SQL identifier (already upper-cased input).
func tableIdent(s string) string {
	s = strings.TrimLeft(s, " `")
	end := 0
	for end < len(s) {
		c := s[end]
		if c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' {
			end++
			continue
		}
		break
	}
	return s[:end]
}

// IsWriteQuery reports whether a candidate's query text is a data-modifying
// statement (the phase-1 filter of the stored-XSS linker).
func IsWriteQuery(c *Candidate) bool {
	text := strings.ToUpper(strings.TrimSpace(literalText(c.TaintedExpr)))
	return strings.HasPrefix(text, "INSERT") || strings.HasPrefix(text, "UPDATE") ||
		strings.HasPrefix(text, "REPLACE")
}
