package taint

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/php/parser"
	"repro/internal/vuln"
)

// These tests cover the harder data-flow shapes: closures, object state,
// heredocs, switch flows, and the engine's robustness properties.

func TestClosureUseBinding(t *testing.T) {
	cands := analyze(t, vuln.SQLI, `<?php
$id = $_GET['id'];
$runner = function () use ($id) {
  mysql_query("SELECT * FROM t WHERE id=" . $id);
};`)
	wantCount(t, cands, 1)
}

func TestClosureParamsClean(t *testing.T) {
	// Closure parameters are unknown: not tainted by default.
	cands := analyze(t, vuln.SQLI, `<?php
$f = function ($x) { mysql_query("SELECT " . $x); };`)
	wantCount(t, cands, 0)
}

func TestHeredocFlow(t *testing.T) {
	cands := analyze(t, vuln.SQLI, `<?php
$name = $_POST['name'];
$q = <<<SQL
SELECT * FROM users WHERE name = '$name'
SQL;
mysql_query($q);`)
	wantCount(t, cands, 1)
}

func TestNowdocIsClean(t *testing.T) {
	cands := analyze(t, vuln.SQLI, `<?php
$q = <<<'SQL'
SELECT * FROM users WHERE name = '$name'
SQL;
mysql_query($q);`)
	wantCount(t, cands, 0)
}

func TestSwitchCaseFlows(t *testing.T) {
	cands := analyze(t, vuln.SQLI, `<?php
switch ($_GET['mode']) {
case 'by_id':
  $q = "SELECT * FROM t WHERE id=" . $_GET['v'];
  break;
default:
  $q = "SELECT * FROM t";
}
mysql_query($q);`)
	wantCount(t, cands, 1)
}

func TestStaticPropertyFlow(t *testing.T) {
	cands := analyze(t, vuln.SQLI, `<?php
Config::$filter = $_GET['f'];
mysql_query("SELECT * FROM t WHERE " . Config::$filter);`)
	wantCount(t, cands, 1)
}

func TestThisPropertyFlowInMethod(t *testing.T) {
	cands := analyze(t, vuln.SQLI, `<?php
class Query {
  public $where;
  function setWhere() { $this->where = $_GET['w']; }
  function run() { mysql_query("SELECT * FROM t WHERE " . $this->where); }
}`)
	// Uncalled-method analysis: setWhere taints $this->where only in its own
	// activation; run() has its own environment, so this conservative model
	// does not flag. Calling both in sequence through an object would need
	// heap tracking WAP also lacks. Assert stability, not detection.
	if len(cands) > 1 {
		t.Fatalf("candidates = %d", len(cands))
	}
}

func TestObjectPropertyFlowSameScope(t *testing.T) {
	cands := analyze(t, vuln.SQLI, `<?php
$req = new Request();
$req->id = $_GET['id'];
mysql_query("SELECT * FROM t WHERE id=" . $req->id);`)
	wantCount(t, cands, 1)
}

func TestTaintedMethodChain(t *testing.T) {
	// Query-builder style: taint flows through unknown method chains on a
	// tainted receiver.
	cands := analyze(t, vuln.XSSR, `<?php
$v = $_GET['v'];
echo $fmt->wrap($v)->render();`)
	// wrap($v) returns tainted (unknown method, tainted arg); render() on a
	// tainted receiver stays tainted.
	wantCount(t, cands, 1)
}

func TestStaticCallPropagation(t *testing.T) {
	cands := analyze(t, vuln.SQLI, `<?php
class Util { static function pass($v) { return $v; } }
mysql_query("SELECT " . Util::pass($_GET['x']));`)
	wantCount(t, cands, 1)
}

func TestStaticCallSanitizerMethod(t *testing.T) {
	cands := analyze(t, vuln.SQLI, `<?php
$sql = DB::prepare("SELECT * FROM t WHERE id=?", $_GET['id']);
mysql_query($sql);`)
	wantCount(t, cands, 0)
}

func TestVarVarNoFalseFlow(t *testing.T) {
	cands := analyze(t, vuln.SQLI, `<?php
$name = 'q';
$$name = $_GET['x'];
mysql_query("SELECT " . $q);`)
	// Variable variables are not tracked (documented imprecision): no flow.
	wantCount(t, cands, 0)
}

func TestGlobalResetsTaint(t *testing.T) {
	cands := analyze(t, vuln.SQLI, `<?php
function f() {
  global $q;
  mysql_query("SELECT " . $q);
}`)
	wantCount(t, cands, 0)
}

func TestNestedArrayLiteralTaint(t *testing.T) {
	cands := analyze(t, vuln.NOSQLI, `<?php
$filter = array("meta" => array("user" => $_POST['u']));
$coll->find($filter);`)
	wantCount(t, cands, 1)
}

func TestErrorSuppressionPassesTaint(t *testing.T) {
	cands := analyze(t, vuln.SQLI, `<?php
$v = @$_GET['v'];
mysql_query("SELECT " . $v);`)
	wantCount(t, cands, 1)
}

func TestCoalesceKeepsTaint(t *testing.T) {
	cands := analyze(t, vuln.SQLI, `<?php
$v = $_GET['v'] ?? 'default';
mysql_query("SELECT " . $v);`)
	wantCount(t, cands, 1)
}

func TestDoWhileFlow(t *testing.T) {
	cands := analyze(t, vuln.XSSR, `<?php
do {
  echo $_GET['chunk'];
} while (false);`)
	wantCount(t, cands, 1)
}

func TestTryCatchFinallyFlow(t *testing.T) {
	cands := analyze(t, vuln.SQLI, `<?php
try {
  mysql_query("SELECT " . $_GET['a']);
} catch (Exception $e) {
  mysql_query("SELECT " . $_GET['b']);
} finally {
  mysql_query("SELECT " . $_GET['c']);
}`)
	wantCount(t, cands, 3)
}

func TestCatchVariableClean(t *testing.T) {
	cands := analyze(t, vuln.XSSR, `<?php
try { risky(); } catch (Exception $e) { echo $e->getMessage(); }`)
	wantCount(t, cands, 0)
}

func TestMultipleClassesSameSink(t *testing.T) {
	// ldap_search with a tainted filter must not trigger the SQLI detector.
	src := `<?php ldap_search($c, "dc=x", "(uid=" . $_GET['u'] . ")");`
	wantCount(t, analyze(t, vuln.SQLI, src), 0)
	wantCount(t, analyze(t, vuln.LDAPI, src), 1)
}

func TestDeepConcatChain(t *testing.T) {
	// Long chains must not blow up and must keep taint.
	src := `<?php $q = "SELECT";`
	for i := 0; i < 50; i++ {
		src += fmt.Sprintf("\n$q = $q . \" col%d\";", i)
	}
	src += "\n$q = $q . $_GET['tail'];\nmysql_query($q);"
	cands := analyze(t, vuln.SQLI, src)
	wantCount(t, cands, 1)
}

func TestManyFunctionsMemoized(t *testing.T) {
	// Repeated calls with the same taint pattern hit the summary cache.
	src := "<?php\nfunction pass($v) { return $v; }\n"
	for i := 0; i < 40; i++ {
		src += fmt.Sprintf("mysql_query(\"SELECT %d WHERE x=\" . pass($_GET['x%d']));\n", i, i)
	}
	cands := analyze(t, vuln.SQLI, src)
	wantCount(t, cands, 40)
}

// Property: adding a sanitizer wrapper around every entry-point read of a
// random raw flow always silences the detector.
func TestSanitizationAlwaysSilencesQuick(t *testing.T) {
	sinks := []struct {
		class vuln.ClassID
		tmpl  string
		san   string
	}{
		{vuln.SQLI, `mysql_query("SELECT * FROM t WHERE id=" . %s);`, "mysql_real_escape_string"},
		{vuln.XSSR, `echo "<p>" . %s . "</p>";`, "htmlspecialchars"},
		{vuln.OSCI, `system("ls " . %s);`, "escapeshellarg"},
	}
	f := func(seed uint32) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		s := sinks[rng.Intn(len(sinks))]
		key := fmt.Sprintf("k%d", rng.Intn(1000))
		raw := fmt.Sprintf("$_GET['%s']", key)
		srcRaw := "<?php\n" + fmt.Sprintf(s.tmpl, raw)
		srcSan := "<?php\n" + fmt.Sprintf(s.tmpl, s.san+"("+raw+")")

		fRaw, errs := parser.Parse("q.php", srcRaw)
		if len(errs) > 0 {
			return false
		}
		fSan, errs := parser.Parse("q.php", srcSan)
		if len(errs) > 0 {
			return false
		}
		nRaw := len(New(Config{Class: vuln.MustGet(s.class)}).File(fRaw))
		nSan := len(New(Config{Class: vuln.MustGet(s.class)}).File(fSan))
		return nRaw == 1 && nSan == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: analysis is deterministic — same file, same candidates.
func TestAnalysisDeterministicQuick(t *testing.T) {
	src := `<?php
$a = $_GET['a'];
if ($a) { $b = $a . "x"; } else { $b = "y"; }
mysql_query("SELECT " . $b);
echo $b;`
	f, errs := parser.Parse("d.php", src)
	if len(errs) > 0 {
		t.Fatal(errs)
	}
	base := New(Config{Class: vuln.MustGet(vuln.SQLI)}).File(f)
	for i := 0; i < 20; i++ {
		got := New(Config{Class: vuln.MustGet(vuln.SQLI)}).File(f)
		if len(got) != len(base) {
			t.Fatalf("run %d: %d candidates vs %d", i, len(got), len(base))
		}
		for j := range got {
			if got[j].Key() != base[j].Key() {
				t.Fatalf("run %d: candidate %d differs", i, j)
			}
		}
	}
}

func TestServerKeyTaintDistinction(t *testing.T) {
	// HTTP_* headers and PHP_SELF are attacker-controlled; REMOTE_ADDR and
	// SERVER_SOFTWARE are set by the server.
	tainted := []string{"HTTP_USER_AGENT", "HTTP_REFERER", "PHP_SELF", "QUERY_STRING", "REQUEST_URI"}
	for _, key := range tainted {
		src := fmt.Sprintf(`<?php echo $_SERVER['%s'];`, key)
		if got := len(analyze(t, vuln.XSSR, src)); got != 1 {
			t.Errorf("$_SERVER[%s]: candidates = %d, want 1", key, got)
		}
	}
	safe := []string{"REMOTE_ADDR", "SERVER_SOFTWARE", "SERVER_PORT", "DOCUMENT_ROOT"}
	for _, key := range safe {
		src := fmt.Sprintf(`<?php echo $_SERVER['%s'];`, key)
		if got := len(analyze(t, vuln.XSSR, src)); got != 0 {
			t.Errorf("$_SERVER[%s]: candidates = %d, want 0 (server-set)", key, got)
		}
	}
	// Unknown or dynamic keys stay tainted (conservative).
	if got := len(analyze(t, vuln.XSSR, `<?php echo $_SERVER[$k];`)); got != 1 {
		t.Errorf("dynamic $_SERVER key: candidates = %d, want 1", got)
	}
}

func TestMatchExpressionTaint(t *testing.T) {
	cands := analyze(t, vuln.SQLI, `<?php
$order = match ($_GET['sort']) {
  'name' => "name",
  default => $_GET['sort'],
};
mysql_query("SELECT * FROM t ORDER BY " . $order);`)
	wantCount(t, cands, 1)
}
