// Dense bitset lattices for fused multi-class IR evaluation. A fused pass
// runs every weapon-class lane over one file in a single traversal; the
// types here carry "one fact per lane" compactly: laneMask is a dense bitset
// over the active lanes (a single machine word for ≤64 classes — every
// realistic configuration — spilling to extra words beyond that), and fval
// is the fused taint cell, holding either one Value shared by every lane or
// a per-lane spill once lanes diverge.
package taint

import "math/bits"

// laneMask is a bitset over the lanes of one fused evaluation. Lane i lives
// in lo when i < 64 and in hi[i/64-1] otherwise; masks for ≤64 lanes never
// allocate. The zero value is the empty mask. Masks are immutable values:
// every operation returns a new mask and never writes through a shared hi
// word slice.
type laneMask struct {
	lo uint64
	hi []uint64
}

// fullMask returns the mask with lanes 0..n-1 set.
func fullMask(n int) laneMask {
	if n <= 0 {
		return laneMask{}
	}
	if n <= 64 {
		if n == 64 {
			return laneMask{lo: ^uint64(0)}
		}
		return laneMask{lo: 1<<uint(n) - 1}
	}
	m := laneMask{lo: ^uint64(0), hi: make([]uint64, (n+63)/64-1)}
	rest := n - 64
	for i := range m.hi {
		if rest >= 64 {
			m.hi[i] = ^uint64(0)
			rest -= 64
		} else {
			m.hi[i] = 1<<uint(rest) - 1
			rest = 0
		}
	}
	return m
}

// with returns m with lane i added.
func (m laneMask) with(i int) laneMask {
	if i < 64 {
		m.lo |= 1 << uint(i)
		return m
	}
	w := i/64 - 1
	hi := make([]uint64, max(len(m.hi), w+1))
	copy(hi, m.hi)
	hi[w] |= 1 << uint(i%64)
	m.hi = hi
	return m
}

func (m laneMask) has(i int) bool {
	if i < 64 {
		return m.lo&(1<<uint(i)) != 0
	}
	w := i/64 - 1
	return w < len(m.hi) && m.hi[w]&(1<<uint(i%64)) != 0
}

func (m laneMask) empty() bool {
	if m.lo != 0 {
		return false
	}
	for _, w := range m.hi {
		if w != 0 {
			return false
		}
	}
	return true
}

// eq compares with zero extension, so masks that differ only in trailing
// zero words are equal.
func (m laneMask) eq(o laneMask) bool {
	if m.lo != o.lo {
		return false
	}
	a, b := m.hi, o.hi
	if len(a) < len(b) {
		a, b = b, a
	}
	for i, w := range a {
		var ow uint64
		if i < len(b) {
			ow = b[i]
		}
		if w != ow {
			return false
		}
	}
	return true
}

func (m laneMask) and(o laneMask) laneMask {
	out := laneMask{lo: m.lo & o.lo}
	if len(m.hi) > 0 && len(o.hi) > 0 {
		n := min(len(m.hi), len(o.hi))
		out.hi = make([]uint64, n)
		for i := 0; i < n; i++ {
			out.hi[i] = m.hi[i] & o.hi[i]
		}
	}
	return out
}

func (m laneMask) or(o laneMask) laneMask {
	out := laneMask{lo: m.lo | o.lo}
	if len(m.hi) > 0 || len(o.hi) > 0 {
		out.hi = make([]uint64, max(len(m.hi), len(o.hi)))
		copy(out.hi, m.hi)
		for i, w := range o.hi {
			out.hi[i] |= w
		}
	}
	return out
}

func (m laneMask) andNot(o laneMask) laneMask {
	out := laneMask{lo: m.lo &^ o.lo}
	if len(m.hi) > 0 {
		out.hi = make([]uint64, len(m.hi))
		copy(out.hi, m.hi)
		for i, w := range o.hi {
			if i >= len(out.hi) {
				break
			}
			out.hi[i] &^= w
		}
	}
	return out
}

func (m laneMask) count() int {
	n := bits.OnesCount64(m.lo)
	for _, w := range m.hi {
		n += bits.OnesCount64(w)
	}
	return n
}

// first returns the lowest set lane, or -1 on the empty mask.
func (m laneMask) first() int {
	if m.lo != 0 {
		return bits.TrailingZeros64(m.lo)
	}
	for i, w := range m.hi {
		if w != 0 {
			return 64*(i+1) + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// forEach calls fn for every set lane in ascending order.
func (m laneMask) forEach(fn func(lane int)) {
	for w := m.lo; w != 0; w &= w - 1 {
		fn(bits.TrailingZeros64(w))
	}
	for i, hw := range m.hi {
		for w := hw; w != 0; w &= w - 1 {
			fn(64*(i+1) + bits.TrailingZeros64(w))
		}
	}
}

// fval is the fused taint cell: one Value per lane. While every lane agrees
// the cell stays uniform (segs == nil) and uni is the single shared Value —
// byte-for-byte what each unfused lane would have computed independently,
// since isomorphic evaluation over identical inputs builds identical values.
// Once lanes diverge (a sanitizer that only some classes recognize, an
// entry point only some classes taint) the cell spills to segs: a set of
// disjoint lane groups, each sharing one Value. Classes cluster — fifteen
// lanes typically split into two or three groups at a divergence point —
// so segment storage keeps the per-operation cost proportional to the
// number of distinct values, not the lane count: a group's Value evolves
// through exactly the operations each of its lanes would apply alone (the
// uniform-cell argument over a subgroup), and per-lane work happens only
// where lanes genuinely differ. Lanes covered by no segment read the zero
// Value; entries outside the owning frame's active mask are meaningless.
// mask tracks which lanes hold a tainted value, so taint-gated operations —
// sanitizer kills, sink argument checks, conservative element writes —
// reduce to bitwise tests across all classes at once. (mask is authoritative
// and may be clamped below the segments' Tainted bits by restriction; it is
// never wider.)
//
// Aliasing rule: a segs slice is immutable once the fval is stored anywhere
// (a register, an environment cell, a snapshot). Operations that change a
// group's Value build a fresh segs slice; appending to a Value's internal
// slices is allowed only on a freshly built Value (the same discipline the
// scalar engine applies to Value itself).
type fval struct {
	mask laneMask
	uni  Value
	segs []fvalSeg
}

// fvalSeg is one lane group of a spilled fval: the lanes in m share v.
type fvalSeg struct {
	m laneMask
	v Value
}

// fuseUniform wraps one shared Value for every lane in act.
func fuseUniform(v Value, act laneMask) fval {
	fv := fval{uni: v}
	if v.Tainted {
		fv.mask = act
	}
	return fv
}

// get reads lane l's Value.
func (v fval) get(l int) Value {
	if v.segs == nil {
		return v.uni
	}
	for _, s := range v.segs {
		if s.m.has(l) {
			return s.v
		}
	}
	return Value{}
}

// forEachSeg calls fn once per group of lanes in m that share one Value,
// covering every lane of m: lanes outside every segment form a final group
// carrying the zero Value.
func (v fval) forEachSeg(m laneMask, fn func(g laneMask, val Value)) {
	if m.empty() {
		return
	}
	if v.segs == nil {
		fn(m, v.uni)
		return
	}
	rest := m
	for _, s := range v.segs {
		g := s.m.and(rest)
		if g.empty() {
			continue
		}
		fn(g, s.v)
		rest = rest.andNot(g)
		if rest.empty() {
			return
		}
	}
	if !rest.empty() {
		fn(rest, Value{})
	}
}

// refineSegs splits every part along v's segmentation, so lanes sharing a
// part of the result see the same Value in v. Parts stay disjoint.
func refineSegs(parts []laneMask, v fval) []laneMask {
	if v.segs == nil {
		return parts
	}
	out := make([]laneMask, 0, len(parts)+len(v.segs))
	for _, p := range parts {
		v.forEachSeg(p, func(g laneMask, _ Value) { out = append(out, g) })
	}
	return out
}
