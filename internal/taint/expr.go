package taint

import (
	"fmt"
	"strings"

	"repro/internal/php/ast"
	"repro/internal/php/token"
	"repro/internal/vuln"
)

// expr evaluates the taint value of an expression, reporting candidates when
// tainted data reaches a sink along the way.
func (a *Analyzer) expr(x ast.Expr, e *env) Value {
	if !a.step() {
		// Budget exhausted or stopped: stop descending. The enclosing walk
		// winds down via the stmts/inlineCall checks; values already computed
		// keep their taint, unvisited subtrees contribute nothing.
		return clean()
	}
	switch t := x.(type) {
	case *ast.Variable:
		if a.isEntryPointVar(t.Name) {
			return Value{
				Tainted: true,
				Sources: []Source{{Name: "$" + t.Name, Pos: t.Position}},
				Trace:   []Step{{Pos: t.Position, Desc: "entry point $" + t.Name, Node: t}},
			}
		}
		return e.get(t.Name)
	case *ast.VarVar:
		a.expr(t.X, e)
		return clean() // variable variables: unknown binding
	case *ast.Ident:
		return clean()
	case *ast.IntLit, *ast.FloatLit, *ast.BoolLit, *ast.NullLit, *ast.StringLit,
		*ast.ClassConstExpr, *ast.BadExpr:
		return clean()
	case *ast.InterpString:
		var v Value
		for _, p := range t.Parts {
			v = v.merge(a.expr(p, e))
		}
		if v.Tainted {
			v.Trace = append(v.Trace, Step{Pos: t.Position, Desc: "string interpolation", Node: t})
		}
		return v
	case *ast.ArrayLit:
		var v Value
		for _, it := range t.Items {
			if it.Key != nil {
				v = v.merge(a.expr(it.Key, e))
			}
			v = v.merge(a.expr(it.Value, e))
		}
		return v
	case *ast.IndexExpr:
		// Entry-point superglobal indexing: $_GET['id'].
		if base, ok := t.X.(*ast.Variable); ok && a.isEntryPointVar(base.Name) {
			key := indexKeyText(t.Index)
			if t.Index != nil {
				a.expr(t.Index, e)
			}
			// $_SERVER mixes attacker-controlled cells (HTTP_* headers,
			// QUERY_STRING, PHP_SELF) with server-set ones (REMOTE_ADDR,
			// SERVER_SOFTWARE); only the former taint.
			if base.Name == "_SERVER" && serverKeySafe(key) {
				return clean()
			}
			src := fmt.Sprintf("$%s[%s]", base.Name, key)
			return Value{
				Tainted: true,
				Sources: []Source{{Name: src, Pos: t.Position}},
				Trace:   []Step{{Pos: t.Position, Desc: "entry point " + src, Node: t}},
			}
		}
		v := a.expr(t.X, e)
		if t.Index != nil {
			a.expr(t.Index, e)
		}
		return v
	case *ast.PropExpr:
		if key := propKey(t); key != "" {
			return e.get(key)
		}
		return a.expr(t.X, e)
	case *ast.StaticPropExpr:
		return e.get("::" + strings.ToLower(t.Class) + "::" + t.Name)
	case *ast.AssignExpr:
		return a.assignExpr(t, e)
	case *ast.ListExpr:
		var v Value
		for _, it := range t.Items {
			if it != nil {
				v = v.merge(a.expr(it, e))
			}
		}
		return v
	case *ast.BinaryExpr:
		vx := a.expr(t.X, e)
		vy := a.expr(t.Y, e)
		switch t.Op {
		case token.Dot:
			v := vx.merge(vy)
			if v.Tainted {
				v.Trace = append(v.Trace, Step{Pos: t.Position, Desc: "concatenation", Node: t})
			}
			return v
		case token.Coalesce:
			return vx.merge(vy)
		case token.Plus, token.Minus, token.Star, token.Slash, token.Percent,
			token.Pow, token.Shl, token.Shr, token.Amp, token.Pipe, token.Caret:
			// Arithmetic results are numbers: not exploitable strings.
			return clean()
		default:
			// Comparisons and logic produce booleans.
			return clean()
		}
	case *ast.UnaryExpr:
		v := a.expr(t.X, e)
		if t.Op == token.At {
			return v // error suppression passes the value through
		}
		return clean()
	case *ast.IncDecExpr:
		a.expr(t.X, e)
		return clean()
	case *ast.CastExpr:
		v := a.expr(t.X, e)
		switch t.Kind {
		case token.CastIntKw, token.CastFloatKw, token.CastBoolKw:
			return clean() // numeric casts neutralize
		default:
			return v
		}
	case *ast.TernaryExpr:
		a.expr(t.Cond, e)
		var va Value
		if t.A != nil {
			va = a.expr(t.A, e)
		} else {
			va = a.expr(t.Cond, e) // short form reuses cond value
		}
		vb := a.expr(t.B, e)
		return va.merge(vb)
	case *ast.IssetExpr:
		for _, arg := range t.Args {
			a.expr(arg, e)
		}
		return clean()
	case *ast.EmptyExpr:
		a.expr(t.X, e)
		return clean()
	case *ast.ExitExpr:
		if t.X != nil {
			v := a.expr(t.X, e)
			a.checkNamedSink("exit", t, t.X, v, -1, t.Position)
		}
		return clean()
	case *ast.PrintExpr:
		v := a.expr(t.X, e)
		a.checkPseudoSink("print", t, t.X, v, t.Position)
		return clean()
	case *ast.IncludeExpr:
		v := a.expr(t.X, e)
		a.checkPseudoSink("include", t, t.X, v, t.Position)
		return clean()
	case *ast.CloneExpr:
		return a.expr(t.X, e)
	case *ast.ClosureExpr:
		// Analyze the closure body with use() bindings; calls to the closure
		// variable are not tracked, so analyze in place conservatively.
		inner := newEnv(nil)
		for _, u := range t.Uses {
			inner.set(u.Name, e.get(u.Name))
		}
		for _, p := range t.Params {
			inner.set(p.Name, clean())
		}
		if t.Body != nil {
			a.stmts(t.Body.Stmts, inner)
		}
		return clean()
	case *ast.InstanceofExpr:
		a.expr(t.X, e)
		return clean()
	case *ast.MatchExpr:
		a.expr(t.Subject, e)
		var v Value
		for _, arm := range t.Arms {
			for _, c := range arm.Conds {
				a.expr(c, e)
			}
			v = v.merge(a.expr(arm.Result, e))
		}
		return v
	case *ast.NewExpr:
		var v Value
		for _, arg := range t.Args {
			v = v.merge(a.expr(arg, e))
		}
		// Constructing with tainted args keeps taint on the object value so
		// wrapper classes (e.g. query builders) propagate.
		return v
	case *ast.CallExpr:
		return a.call(t, e)
	case *ast.MethodCallExpr:
		return a.methodCall(t, e)
	case *ast.StaticCallExpr:
		return a.staticCall(t, e)
	}
	return clean()
}

func (a *Analyzer) assignExpr(t *ast.AssignExpr, e *env) Value {
	rhs := a.expr(t.Rhs, e)
	var v Value
	switch t.Op {
	case token.DotEq:
		// $x .= tainted keeps existing taint and adds new.
		if lv, ok := t.Lhs.(*ast.Variable); ok {
			v = e.get(lv.Name).merge(rhs)
		} else {
			v = rhs
		}
		if v.Tainted {
			v.Trace = append(v.Trace, Step{Pos: t.Position, Desc: "append assignment", Node: t})
		}
	case token.Assign, token.CoalesceEq:
		v = rhs
		if v.Tainted {
			v.Trace = append(v.Trace, Step{Pos: t.Position, Desc: "assignment", Node: t})
		}
	default:
		// Arithmetic compound assignments produce numbers.
		v = clean()
	}
	a.assignTo(t.Lhs, v, e)
	return v
}

// serverKeySafe reports whether a $_SERVER cell is set by the server itself
// rather than derived from the request; unknown keys stay tainted.
func serverKeySafe(key string) bool {
	switch key {
	case "REMOTE_ADDR", "REMOTE_PORT", "SERVER_ADDR", "SERVER_PORT",
		"SERVER_SOFTWARE", "GATEWAY_INTERFACE", "DOCUMENT_ROOT",
		"SCRIPT_FILENAME", "SERVER_PROTOCOL", "REQUEST_TIME",
		"REQUEST_TIME_FLOAT":
		return true
	}
	return false
}

func indexKeyText(idx ast.Expr) string {
	switch k := idx.(type) {
	case *ast.StringLit:
		return k.Value
	case *ast.IntLit:
		return k.Text
	case *ast.Variable:
		return "$" + k.Name
	case nil:
		return ""
	default:
		return "?"
	}
}

func (a *Analyzer) isEntryPointVar(name string) bool {
	if a.class.IsEntryPointVar(name) {
		return true
	}
	for _, ep := range a.cfg.ExtraEntryPoints {
		if ep == name {
			return true
		}
	}
	return false
}

func (a *Analyzer) isSanitizer(fn string) bool {
	if a.class.IsSanitizer(fn) {
		return true
	}
	for _, s := range a.cfg.ExtraSanitizers {
		if s == fn {
			return true
		}
	}
	return false
}

// allSinks returns the sinks of the class plus configured extras.
func (a *Analyzer) allSinks() []vuln.Sink {
	if len(a.cfg.ExtraSinks) == 0 {
		return a.class.Sinks
	}
	out := make([]vuln.Sink, 0, len(a.class.Sinks)+len(a.cfg.ExtraSinks))
	out = append(out, a.class.Sinks...)
	out = append(out, a.cfg.ExtraSinks...)
	return out
}

// ---------------------------------------------------------------------------
// Calls
// ---------------------------------------------------------------------------

// call handles plain function calls: sanitizers, entry-point functions,
// sensitive sinks, taint-propagating builtins and user functions.
func (a *Analyzer) call(t *ast.CallExpr, e *env) Value {
	name := ast.CalleeName(t)
	// Evaluate arguments first.
	args := make([]Value, len(t.Args))
	for i, arg := range t.Args {
		args[i] = a.expr(arg, e)
	}

	if name == "" {
		// Dynamic call $f(...): propagate argument taint conservatively.
		a.expr(t.Fn, e)
		return mergeAll(args)
	}

	// Sanitization function: output is clean for this class; remember the
	// sanitizer so symptom extraction can see it.
	if a.isSanitizer(name) {
		v := clean()
		v.Sanitizers = append(v.Sanitizers, name)
		for _, av := range args {
			v.Sanitizers = append(v.Sanitizers, av.Sanitizers...)
		}
		return v
	}

	// Entry-point function (e.g. mysql_fetch_assoc for stored XSS).
	if a.class.IsEntryPointFunc(name) {
		return Value{
			Tainted: true,
			Sources: []Source{{Name: name + "()", Pos: t.Position}},
			Trace:   []Step{{Pos: t.Position, Desc: "entry point " + name + "()", Node: t}},
		}
	}

	// Sensitive sink?
	a.checkCallSinks(name, false, "", t, t.Args, args, t.Position)

	// Taint-through builtins: string functions whose output carries input
	// taint.
	if propagatesTaint(name) {
		v := mergeAll(args)
		if v.Tainted {
			v.Trace = append(v.Trace, Step{Pos: t.Position, Desc: name + "()", Node: t})
		}
		return v
	}

	// By-reference output builtins.
	switch name {
	case "preg_match", "preg_match_all":
		// Matches (derived from the subject, arg 1) flow into the third
		// argument.
		if len(t.Args) >= 3 && len(args) >= 2 {
			a.assignTo(t.Args[2], args[1], e)
		}
		return clean()
	case "parse_str":
		if len(t.Args) >= 2 && len(args) >= 1 {
			a.assignTo(t.Args[1], args[0], e)
		}
		return clean()
	case "extract":
		// extract($_POST) taints unknown variables; documented imprecision.
		return clean()
	case "settype":
		if len(t.Args) >= 1 {
			a.assignTo(t.Args[0], clean(), e)
		}
		return clean()
	}

	// User-defined function: inline with argument binding.
	if fn := a.resolveFunc(name); fn != nil && fn.Body != nil && !a.cfg.DisableInlining {
		return a.inlineCall(fn, t.Args, args, t.Position, e)
	}

	// Unknown function: assume it neither sanitizes nor propagates (WAP's
	// behaviour for unrecognized functions, a source of false negatives
	// traded for precision).
	return clean()
}

func (a *Analyzer) methodCall(t *ast.MethodCallExpr, e *env) Value {
	recv := a.expr(t.Recv, e)
	name := strings.ToLower(t.Name)
	args := make([]Value, len(t.Args))
	for i, arg := range t.Args {
		args[i] = a.expr(arg, e)
	}
	if t.DynName != nil {
		a.expr(t.DynName, e)
		return mergeAll(args)
	}

	// Sanitizer methods ($wpdb->prepare, $db->quote).
	if a.class.IsSanitizerMethod(name) {
		v := clean()
		v.Sanitizers = append(v.Sanitizers, name)
		return v
	}

	recvName := ""
	if rv, ok := t.Recv.(*ast.Variable); ok {
		recvName = strings.ToLower(rv.Name)
	}
	a.checkCallSinks(name, true, recvName, t, t.Args, args, t.Position)

	// User-defined method: resolve by name.
	if m := a.resolveMethod(name); m != nil && m.Body != nil && !a.cfg.DisableInlining {
		v := a.inlineCall(m, t.Args, args, t.Position, e)
		return v
	}

	// Unknown method: argument and receiver taint flows to the result
	// (query-builder chains like $db->where($input)->get()).
	return recv.merge(mergeAll(args))
}

func (a *Analyzer) staticCall(t *ast.StaticCallExpr, e *env) Value {
	name := strings.ToLower(t.Name)
	args := make([]Value, len(t.Args))
	for i, arg := range t.Args {
		args[i] = a.expr(arg, e)
	}
	if a.class.IsSanitizerMethod(name) {
		v := clean()
		v.Sanitizers = append(v.Sanitizers, name)
		return v
	}
	a.checkCallSinks(name, true, strings.ToLower(t.Class), t, t.Args, args, t.Position)
	if m := a.resolveStaticMethod(t.Class, t.Name); m != nil && m.Body != nil {
		return a.inlineCall(m, t.Args, args, t.Position, e)
	}
	return mergeAll(args)
}

func (a *Analyzer) resolveFunc(name string) *ast.FunctionDecl {
	a.noteResolution(name)
	if a.file != nil {
		if fn, ok := a.file.Funcs[name]; ok && fn.Class == nil {
			return fn
		}
	}
	if a.cfg.Resolver != nil {
		return a.cfg.Resolver.ResolveFunc(name)
	}
	return nil
}

func (a *Analyzer) resolveMethod(name string) *ast.FunctionDecl {
	a.noteResolution(name)
	if a.file != nil {
		for _, cls := range a.file.Classes {
			for _, m := range cls.Methods {
				if strings.ToLower(m.Name) == name {
					return m
				}
			}
		}
	}
	if a.cfg.Resolver != nil {
		return a.cfg.Resolver.ResolveMethod(name)
	}
	return nil
}

func (a *Analyzer) resolveStaticMethod(class, name string) *ast.FunctionDecl {
	if a.fill != nil {
		// Static resolution mixes the file-local Class::name table with the
		// project method index, so its outcome is inherently file-dependent;
		// don't publish summaries that depend on it.
		a.fill.impure = true
	}
	key := strings.ToLower(class) + "::" + strings.ToLower(name)
	if a.file != nil {
		if fn, ok := a.file.Funcs[key]; ok {
			return fn
		}
	}
	return a.resolveMethod(strings.ToLower(name))
}

// memoKey builds the per-task memo key for calling fn with args: function
// identity plus the full content of every argument value. Keying on content
// (not just taint bits) makes memoization semantically transparent — a hit
// returns exactly what recomputing the body would — which both determinism
// under budget pressure and the shared cross-task cache rely on.
func memoKey(fn *ast.FunctionDecl, args []Value) string {
	var b strings.Builder
	b.WriteString(fn.Name)
	fmt.Fprintf(&b, "/%p", fn)
	allZero := true
	for _, v := range args {
		if !zeroValue(v) {
			allZero = false
			break
		}
	}
	if allZero {
		// Common case: every argument is clean and carries no metadata.
		fmt.Fprintf(&b, "/z%d", len(args))
		return b.String()
	}
	for _, v := range args {
		b.WriteByte('/')
		if v.Tainted {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
		// Node pointers are omitted: within one task, identical positions
		// imply identical nodes.
		for _, s := range v.Sources {
			fmt.Fprintf(&b, "|s%q@%s:%d:%d", s.Name, s.Pos.File, s.Pos.Line, s.Pos.Column)
		}
		for _, s := range v.Sanitizers {
			fmt.Fprintf(&b, "|n%q", s)
		}
		for _, st := range v.Trace {
			fmt.Fprintf(&b, "|t%q@%s:%d:%d", st.Desc, st.Pos.File, st.Pos.Line, st.Pos.Column)
		}
	}
	return b.String()
}

// inlineCall analyzes a user function body with actual argument taint bound
// to its parameters, memoizing on the argument content and consulting the
// shared cross-task cache when the call context is file-independent.
func (a *Analyzer) inlineCall(fn *ast.FunctionDecl, argExprs []ast.Expr, args []Value, callPos token.Position, caller *env) Value {
	if a.depth >= a.cfg.MaxCallDepth || a.analyzing[fn] || a.exhausted {
		// Recursion, depth limit or exhausted step budget: the call is not
		// inlined, its result is conservatively tainted with the argument
		// taint instead.
		return mergeAll(args)
	}

	key := memoKey(fn, args)
	if s, ok := a.summaries[key]; ok {
		// A memo entry predating the active fill may stand in for body
		// candidates this task reported earlier but a consumer analyzing
		// the filled function fresh would still report; the fill's capture
		// would then be incomplete, so mark it unpublishable.
		if a.fill != nil && s.fillID != a.fill.id {
			a.fill.impure = true
		}
		v := s.returnValue
		if v.Tainted {
			v.Trace = append(append([]Step{}, v.Trace...),
				Step{Pos: callPos, Desc: "return from " + fn.Name + "()"})
		}
		return v
	}

	// Shared cross-task cache: consume a committed summary, or open a fill
	// frame so this computation can be published for other tasks.
	filling := false
	if a.shareEligible(args) {
		sk := SummaryKey{Class: a.class.ID, Fn: fn, NArgs: len(args)}
		if e := a.sharedLookup(sk); e != nil {
			ret := a.consumeShared(e, key, argExprs, caller)
			if ret.Tainted {
				ret.Trace = append(append([]Step{}, ret.Trace...),
					Step{Pos: callPos, Desc: "return from " + fn.Name + "()"})
			}
			return ret
		}
		a.sharedMisses++
		a.fillSeq++
		a.fill = &fillFrame{key: sk, id: a.fillSeq, stepsStart: a.steps}
		filling = true
	}

	a.depth++
	a.analyzing[fn] = true
	prevFunc := a.curFunc
	a.curFunc = fn.Name

	inner := newEnv(nil)
	for i, p := range fn.Params {
		switch {
		case i < len(args):
			inner.set(p.Name, args[i])
		case p.Default != nil:
			inner.set(p.Name, a.expr(p.Default, inner))
		default:
			inner.set(p.Name, clean())
		}
	}
	ret := a.stmts(fn.Body.Stmts, inner)

	// Propagate by-ref parameter taint back to caller arguments.
	for i, p := range fn.Params {
		if p.ByRef && i < len(argExprs) {
			a.assignTo(argExprs[i], inner.get(p.Name), caller)
		}
	}

	a.curFunc = prevFunc
	delete(a.analyzing, fn)
	a.depth--

	entry := &summary{returnValue: ret}
	if a.fill != nil {
		entry.fillID = a.fill.id
	}
	a.summaries[key] = entry
	if filling {
		a.finishFill(ret, fn, inner)
	}
	if ret.Tainted {
		ret.Trace = append(append([]Step{}, ret.Trace...),
			Step{Pos: callPos, Desc: "return from " + fn.Name + "()"})
	}
	return ret
}

// ---------------------------------------------------------------------------
// Sink checking
// ---------------------------------------------------------------------------

// checkCallSinks matches a call against the class sink list and reports a
// candidate for each tainted dangerous argument.
func (a *Analyzer) checkCallSinks(name string, method bool, recvName string, call ast.Node, argExprs []ast.Expr, args []Value, pos token.Position) {
	for _, s := range a.allSinks() {
		if s.Name != name || s.Method != method {
			continue
		}
		if s.Recv != "" && s.Recv != recvName {
			continue
		}
		idxs := s.Args
		if idxs == nil {
			idxs = make([]int, len(args))
			for i := range idxs {
				idxs[i] = i
			}
		}
		for _, i := range idxs {
			if i >= len(args) {
				continue
			}
			if !args[i].Tainted {
				continue
			}
			a.report(&Candidate{
				Class:         a.class.ID,
				SinkName:      name,
				SinkPos:       pos,
				SinkCall:      call,
				ArgIndex:      i,
				TaintedExpr:   argExprs[i],
				Value:         args[i],
				EnclosingFunc: a.curFunc,
				File:          a.fileName(),
			})
		}
	}
}

// checkPseudoSink reports candidates for language-construct sinks (echo,
// print, include).
func (a *Analyzer) checkPseudoSink(name string, node ast.Node, argExpr ast.Expr, v Value, pos token.Position) {
	if !v.Tainted {
		return
	}
	for _, s := range a.allSinks() {
		if s.Method || s.Name != name {
			continue
		}
		a.report(&Candidate{
			Class:         a.class.ID,
			SinkName:      name,
			SinkPos:       pos,
			SinkCall:      node,
			ArgIndex:      -1,
			TaintedExpr:   argExpr,
			Value:         v,
			EnclosingFunc: a.curFunc,
			File:          a.fileName(),
		})
		return
	}
}

// checkNamedSink matches exit/die-style named sinks used in expression form.
func (a *Analyzer) checkNamedSink(name string, node ast.Node, argExpr ast.Expr, v Value, argIdx int, pos token.Position) {
	if !v.Tainted {
		return
	}
	for _, s := range a.allSinks() {
		if s.Method || s.Name != name {
			continue
		}
		a.report(&Candidate{
			Class:         a.class.ID,
			SinkName:      name,
			SinkPos:       pos,
			SinkCall:      node,
			ArgIndex:      argIdx,
			TaintedExpr:   argExpr,
			Value:         v,
			EnclosingFunc: a.curFunc,
			File:          a.fileName(),
		})
		return
	}
}

func (a *Analyzer) fileName() string {
	if a.file != nil {
		return a.file.Name
	}
	return ""
}

func mergeAll(vs []Value) Value {
	var out Value
	for _, v := range vs {
		out = out.merge(v)
	}
	return out
}

// propagatesTaint reports whether a builtin passes input taint to its result
// (string manipulation functions).
func propagatesTaint(name string) bool {
	_, ok := taintThrough[name]
	return ok
}

// taintThrough is the set of PHP builtins that return data derived from
// their string inputs.
var taintThrough = map[string]struct{}{
	"substr": {}, "trim": {}, "ltrim": {}, "rtrim": {}, "strtolower": {},
	"strtoupper": {}, "ucfirst": {}, "ucwords": {}, "lcfirst": {},
	"str_replace": {}, "str_ireplace": {}, "preg_replace": {}, "ereg_replace": {},
	"eregi_replace": {}, "preg_filter": {}, "str_pad": {}, "str_repeat": {},
	"strrev": {}, "nl2br": {}, "wordwrap": {}, "sprintf": {}, "vsprintf": {},
	"implode": {}, "join": {}, "explode": {}, "split": {}, "spliti": {},
	"preg_split": {}, "str_split": {}, "chunk_split": {}, "substr_replace": {},
	"str_shuffle": {}, "strstr": {}, "stristr": {}, "strrchr": {}, "strtr": {},
	"stripslashes": {}, "stripcslashes": {}, "htmlspecialchars_decode": {},
	"html_entity_decode": {}, "urldecode": {}, "rawurldecode": {},
	"base64_decode": {}, "base64_encode": {}, "serialize": {}, "unserialize": {},
	"json_decode": {}, "array_merge": {}, "array_values": {}, "array_keys": {},
	"array_pop": {}, "array_shift": {}, "array_slice": {}, "array_map": {},
	"array_filter": {}, "current": {}, "reset": {}, "end": {}, "each": {},
	"compact": {}, "number_format": {}, "utf8_encode": {}, "utf8_decode": {},
	"iconv": {}, "mb_convert_encoding": {}, "mb_substr": {}, "mb_strtolower": {},
	"mb_strtoupper": {}, "addcslashes": {}, "quotemeta": {}, "strval": {},
	"print_r": {}, "var_export": {}, "gzinflate": {}, "gzuncompress": {},
	"pack": {}, "unpack": {}, "hex2bin": {}, "bin2hex": {},
}
