// Shared cross-task summary cache. A scan analyzes every file once per
// vulnerability class, so the same user function is re-summarized by up to
// one task per (file, class) pair. SharedSummaries hoists the summaries that
// are provably context-independent out of the per-analyzer memo so every
// task of a scan can reuse them.
//
// The cache preserves the engine's byte-identical-findings contract: a
// summary is shared only when replaying it is indistinguishable from the
// consumer recomputing it from scratch. That holds exactly when
//
//   - the call is a top-level inline (depth 0, no recursion guard active),
//     so the producing and consuming analyses start from identical contexts;
//   - every argument is a zero Value (untainted, with no sources, sanitizers
//     or trace), so the summary embeds no caller- or file-specific metadata;
//   - every function or method name resolved while computing the summary is
//     declared exactly once project-wide, so the analyzed file's local
//     declaration table cannot change what the body means
//     (taint.AmbiguityReporter); and
//   - the fill ran to completion within its step budget.
//
// Candidates found inside the body are captured past the per-task dedup
// filter and replayed through it on the consumer, by-ref parameter effects
// are recorded and re-applied, and the fill's step count is charged to the
// consumer, so step budgets exhaust at the same point with or without the
// cache.
//
// Entries are not published by the analyzer itself: each task accumulates
// PendingSummaries and the engine commits them only when the task completes
// cleanly (no panic, no timeout, no cooperative stop), so a faulting task
// can never poison the cache.
package taint

import (
	"sync"

	"repro/internal/php/ast"
	"repro/internal/vuln"
)

// SummaryKey identifies one shareable summary: the function's declaration
// identity, the vulnerability class whose sink/sanitizer/entry-point sets
// parameterized the analysis, and the argument count (missing arguments
// fall back to parameter defaults, so f() and f($x) have distinct effects).
type SummaryKey struct {
	Class vuln.ClassID
	Fn    *ast.FunctionDecl
	NArgs int
}

// byrefOut records the taint value a function body left in a by-reference
// parameter, re-applied to the consumer's argument expression on replay.
type byrefOut struct {
	idx int
	val Value
}

// sharedEntry is the full externally visible effect of one top-level inline
// call with zero-content arguments.
type sharedEntry struct {
	// ret is the summary return value, before the call-site trace step.
	ret Value
	// cands are the candidates reported while analyzing the body, in
	// traversal order, captured before per-task dedup. Candidate.File is
	// rewritten to the consumer's file on replay.
	cands []*Candidate
	// byref are the by-reference parameter effects.
	byref []byrefOut
	// steps is the AST-step count the fill consumed; consumers are charged
	// the same amount so budget exhaustion is cache-independent.
	steps int
}

// PendingSummary is one cache entry computed by a task but not yet
// committed. The engine publishes pending entries only after the owning
// task completes cleanly.
type PendingSummary struct {
	Key   SummaryKey
	entry *sharedEntry
}

// SharedSummaries is the scan-scoped, concurrency-safe summary cache. One
// instance is created per scan (keys hold AST pointers, so an instance is
// only meaningful for the project whose ASTs produced them).
type SharedSummaries struct {
	mu      sync.RWMutex
	entries map[SummaryKey]*sharedEntry
	commits int64
}

// NewSharedSummaries returns an empty cache.
func NewSharedSummaries() *SharedSummaries {
	return &SharedSummaries{entries: make(map[SummaryKey]*sharedEntry)}
}

// lookup returns the committed entry for k, or nil.
func (s *SharedSummaries) lookup(k SummaryKey) *sharedEntry {
	if s == nil {
		return nil
	}
	s.mu.RLock()
	e := s.entries[k]
	s.mu.RUnlock()
	return e
}

// Commit publishes a task's pending entries. The first writer of a key
// wins; concurrent tasks may compute the same summary and both commits are
// byte-equivalent, so dropping the second is safe. Returns the number of
// entries newly added.
func (s *SharedSummaries) Commit(pending []PendingSummary) int {
	if s == nil || len(pending) == 0 {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	added := 0
	for _, p := range pending {
		if _, ok := s.entries[p.Key]; ok {
			continue
		}
		s.entries[p.Key] = p.entry
		added++
	}
	s.commits += int64(added)
	return added
}

// Len reports the number of committed entries.
func (s *SharedSummaries) Len() int {
	if s == nil {
		return 0
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.entries)
}

// Commits reports the total number of entries ever committed.
func (s *SharedSummaries) Commits() int64 {
	if s == nil {
		return 0
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.commits
}

// AmbiguityReporter is an optional extension of FuncResolver. A resolver
// that knows the whole project reports whether a callable name is declared
// more than once (in which case the analyzed file's local declarations can
// shadow the project-level resolution, making summaries file-dependent and
// therefore unshareable). Without this interface every resolution is
// treated as ambiguous and only summaries that resolve nothing are shared.
type AmbiguityReporter interface {
	AmbiguousCallable(name string) bool
}

// fillFrame tracks one in-progress shared-cache fill. At most one frame is
// active per analyzer: fills start only at depth 0, so nested inline calls
// can never open a second frame.
type fillFrame struct {
	key SummaryKey
	// id tags memo entries created during this fill; see summary.fillID.
	id         int
	cands      []*Candidate
	stepsStart int
	// impure is set when the fill resolved an ambiguous callable name; the
	// result may then depend on the analyzed file and is not published.
	impure bool
}

// noteResolution marks the active fill impure when a resolved name is (or
// must be assumed) declared more than once project-wide.
func (a *Analyzer) noteResolution(name string) {
	if a.fill == nil {
		return
	}
	rep, ok := a.cfg.Resolver.(AmbiguityReporter)
	if !ok || rep.AmbiguousCallable(name) {
		a.fill.impure = true
	}
}

// zeroValue reports whether v carries no taint and no metadata — the only
// argument shape whose summaries are caller- and file-independent.
func zeroValue(v Value) bool {
	return !v.Tainted && len(v.Sources) == 0 && len(v.Sanitizers) == 0 && len(v.Trace) == 0
}

// shareEligible reports whether the current call may consult or fill the
// shared cache: top-level context, shared cache configured, and every
// argument free of caller-specific content.
func (a *Analyzer) shareEligible(args []Value) bool {
	if a.cfg.Shared == nil || a.depth != 0 || len(a.analyzing) != 0 || a.fill != nil {
		return false
	}
	for _, v := range args {
		if !zeroValue(v) {
			return false
		}
	}
	return true
}

// sharedLookup returns a consumable committed entry for k. An entry whose
// replay would cross the step budget is rejected so the consumer recomputes
// and degrades at exactly the same point an uncached run would.
func (a *Analyzer) sharedLookup(k SummaryKey) *sharedEntry {
	e := a.cfg.Shared.lookup(k)
	if e == nil {
		return nil
	}
	if a.cfg.MaxSteps > 0 && a.steps+e.steps > a.cfg.MaxSteps {
		return nil
	}
	return e
}

// consumeShared replays entry e at a call site: report the body's
// candidates (through the per-task dedup filter, with the candidate file
// rewritten to the consumer's), re-apply by-ref effects, charge the fill's
// steps, and install the summary into the per-task memo so later calls at
// the same site behave exactly like the uncached engine's memo hits.
func (a *Analyzer) consumeShared(e *sharedEntry, memoKey string, argExprs []ast.Expr, caller *env) Value {
	a.sharedHits++
	a.steps += e.steps
	for _, c := range e.cands {
		cc := *c
		cc.File = a.fileName()
		a.report(&cc)
	}
	for _, br := range e.byref {
		if br.idx < len(argExprs) {
			a.assignTo(argExprs[br.idx], br.val, caller)
		}
	}
	a.summaries[memoKey] = &summary{returnValue: e.ret}
	return e.ret
}

// finishFill closes the active fill frame, publishing a pending entry when
// the fill stayed pure and within budget. fn and inner provide the by-ref
// parameter effects.
func (a *Analyzer) finishFill(ret Value, fn *ast.FunctionDecl, inner *env) {
	fr := a.fill
	a.fill = nil
	if fr == nil || a.exhausted || fr.impure {
		return
	}
	e := &sharedEntry{ret: ret, cands: fr.cands, steps: a.steps - fr.stepsStart}
	for i, p := range fn.Params {
		if p.ByRef {
			e.byref = append(e.byref, byrefOut{idx: i, val: inner.get(p.Name)})
		}
	}
	a.pending = append(a.pending, PendingSummary{Key: fr.key, entry: e})
}

// PendingShared returns the cache entries this analyzer computed during its
// last File run. The caller decides whether to commit them (the engine does
// so only for cleanly completed tasks).
func (a *Analyzer) PendingShared() []PendingSummary { return a.pending }

// SharedHits reports how many shared-cache entries the last File run
// consumed; SharedMisses how many eligible lookups found nothing.
func (a *Analyzer) SharedHits() int   { return a.sharedHits }
func (a *Analyzer) SharedMisses() int { return a.sharedMisses }
