// Package taint implements WAP's taint analysis: it tracks data from entry
// points through assignments, string operations and function calls, and
// reports candidate vulnerabilities whenever tainted data reaches a
// sensitive sink of the configured vulnerability class.
//
// One Analyzer instance is one configured detector — the paper's generic
// "vulnerability detector" parameterized by an (ep, ss, san) triple. All
// fifteen classes and every generated weapon run through this engine.
package taint

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/php/ast"
	"repro/internal/php/token"
	"repro/internal/vuln"
)

// Source records one entry-point occurrence feeding a tainted value.
type Source struct {
	// Name is the human-readable entry point, e.g. "$_GET[id]" or
	// "mysql_fetch_assoc()".
	Name string
	Pos  token.Position
}

// Step is one hop of a taint propagation trace.
type Step struct {
	Pos  token.Position
	Desc string
	// Node is the AST node of the step; used for symptom extraction.
	Node ast.Node
}

// Value is the abstract value of an expression under taint analysis.
type Value struct {
	Tainted bool
	// Sources are the entry points that contribute taint.
	Sources []Source
	// Sanitizers are the sanitization function names applied to the data at
	// some point (recorded even when they untaint, for symptom extraction).
	Sanitizers []string
	// Trace records the propagation path from source to the present point.
	Trace []Step
}

// maxTraceSteps and maxSources bound per-value bookkeeping so pathological
// inputs (thousand-step concatenation chains) stay linear; the prefix of a
// trace is the informative part (entry point and early propagation).
const (
	maxTraceSteps = 64
	maxSources    = 16
)

// merge combines v with other, unioning taint.
func (v Value) merge(other Value) Value {
	out := Value{Tainted: v.Tainted || other.Tainted}
	out.Sources = capSlice(append(append([]Source{}, v.Sources...), other.Sources...), maxSources)
	out.Sanitizers = append(append([]string{}, v.Sanitizers...), other.Sanitizers...)
	out.Trace = capSlice(append(append([]Step{}, v.Trace...), other.Trace...), maxTraceSteps)
	return out
}

func capSlice[T any](s []T, limit int) []T {
	if len(s) > limit {
		return s[:limit]
	}
	return s
}

// join combines two abstract values at a control-flow join point. Unlike the
// sequential merge (which concatenates bookkeeping, because every hop really
// happened in order) a join is a set union: sources, sanitizers and trace
// steps are deduplicated by content, keeping the first occurrence of each.
// That makes the join idempotent (join(v, v) == v) and independent of how
// many branch snapshots mention an unchanged binding — the property the
// legacy walker and the IR engine both need so branch merges are stable no
// matter which order snapshots arrive in.
func join(v, other Value) Value {
	// Fast paths: joining a value with itself (a branch that never touched
	// the binding snapshots the identical slices) or with a bottom value is
	// the identity — skip the dedup allocations.
	if sameValue(v, other) {
		return v
	}
	if isBottom(other) {
		v.Tainted = v.Tainted || other.Tainted
		return v
	}
	if isBottom(v) {
		other.Tainted = other.Tainted || v.Tainted
		return other
	}
	out := Value{Tainted: v.Tainted || other.Tainted}
	out.Sources = capSlice(dedupSources(v.Sources, other.Sources), maxSources)
	out.Sanitizers = dedupStrings(v.Sanitizers, other.Sanitizers)
	out.Trace = capSlice(dedupSteps(v.Trace, other.Trace), maxTraceSteps)
	return out
}

// sameValue reports whether two values share identical bookkeeping slices —
// the cheap identity check behind join's fast path.
func sameValue(a, b Value) bool {
	return a.Tainted == b.Tainted &&
		sameSlice(a.Sources, b.Sources) &&
		sameSlice(a.Sanitizers, b.Sanitizers) &&
		sameSlice(a.Trace, b.Trace)
}

func sameSlice[T any](a, b []T) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}

// isBottom reports whether v carries no bookkeeping at all (taint bit aside).
func isBottom(v Value) bool {
	return len(v.Sources) == 0 && len(v.Sanitizers) == 0 && len(v.Trace) == 0
}

type sourceKey struct {
	name      string
	line, col int
}

func dedupSources(a, b []Source) []Source {
	out := make([]Source, 0, len(a)+len(b))
	seen := make(map[sourceKey]bool, len(a)+len(b))
	for _, s := range a {
		k := sourceKey{s.Name, s.Pos.Line, s.Pos.Column}
		if !seen[k] {
			seen[k] = true
			out = append(out, s)
		}
	}
	for _, s := range b {
		k := sourceKey{s.Name, s.Pos.Line, s.Pos.Column}
		if !seen[k] {
			seen[k] = true
			out = append(out, s)
		}
	}
	return out
}

func dedupStrings(a, b []string) []string {
	out := make([]string, 0, len(a)+len(b))
	seen := make(map[string]bool, len(a)+len(b))
	for _, s := range a {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	for _, s := range b {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

type stepKey struct {
	desc      string
	line, col int
}

func dedupSteps(a, b []Step) []Step {
	out := make([]Step, 0, len(a)+len(b))
	seen := make(map[stepKey]bool, len(a)+len(b))
	for _, s := range a {
		k := stepKey{s.Desc, s.Pos.Line, s.Pos.Column}
		if !seen[k] {
			seen[k] = true
			out = append(out, s)
		}
	}
	for _, s := range b {
		k := stepKey{s.Desc, s.Pos.Line, s.Pos.Column}
		if !seen[k] {
			seen[k] = true
			out = append(out, s)
		}
	}
	return out
}

// clean returns an untainted value.
func clean() Value { return Value{} }

// Candidate is a candidate vulnerability: a data flow from an entry point to
// a sensitive sink (the analyzer may still be wrong — the false-positive
// predictor decides).
type Candidate struct {
	Class vuln.ClassID
	// SinkName is the matched sensitive sink (function, method or pseudo
	// sink such as "echo").
	SinkName string
	// SinkPos is the position of the sink call.
	SinkPos token.Position
	// SinkCall is the AST node of the sink (a *ast.CallExpr,
	// *ast.MethodCallExpr, *ast.EchoStmt, *ast.IncludeStmt, ...).
	SinkCall ast.Node
	// ArgIndex is the tainted argument position, -1 for pseudo-sinks.
	ArgIndex int
	// TaintedExpr is the argument expression carrying taint.
	TaintedExpr ast.Expr
	Value       Value
	// EnclosingFunc is the function containing the sink, "" at top level.
	EnclosingFunc string
	File          string
}

// Key returns a deduplication key for the candidate.
func (c *Candidate) Key() string {
	return fmt.Sprintf("%s|%s|%s:%d:%d|%d",
		c.Class, c.SinkName, c.SinkPos.File, c.SinkPos.Line, c.SinkPos.Column, c.ArgIndex)
}

// String renders a one-line description.
func (c *Candidate) String() string {
	src := "?"
	if len(c.Value.Sources) > 0 {
		src = c.Value.Sources[0].Name
	}
	return fmt.Sprintf("[%s] %s: %s -> %s", strings.ToUpper(string(c.Class)), c.SinkPos, src, c.SinkName)
}

// FuncResolver resolves user-defined functions project-wide so taint can
// cross file boundaries.
type FuncResolver interface {
	// ResolveFunc returns the declaration of a global function by lower-case
	// name, or nil.
	ResolveFunc(name string) *ast.FunctionDecl
	// ResolveMethod returns the declaration of a method by lower-case name
	// (searching all classes), or nil. Ambiguous names may return any match.
	ResolveMethod(name string) *ast.FunctionDecl
}

// Config parameterizes an analysis run.
type Config struct {
	Class *vuln.Class
	// Resolver provides cross-file function lookup; may be nil for
	// single-file analysis.
	Resolver FuncResolver
	// MaxCallDepth bounds interprocedural inlining (default 12).
	MaxCallDepth int
	// DisableInlining turns off interprocedural analysis: user-function
	// calls are treated like unknown builtins (clean result, bodies only
	// analyzed standalone). Used by the interprocedural ablation.
	DisableInlining bool
	// ExtraSanitizers extends the class sanitization set (paper Section V-A:
	// feeding the tool application-specific functions such as "escape").
	ExtraSanitizers []string
	// ExtraEntryPoints extends the superglobal entry-point set.
	ExtraEntryPoints []string
	// ExtraSinks extends the sink set.
	ExtraSinks []vuln.Sink
	// MaxSteps bounds the number of AST nodes this analyzer may visit in one
	// File run (0 = unlimited). When the budget is exhausted the walk
	// degrades instead of running away: statement traversal stops, pending
	// user-function calls conservatively propagate their argument taint, and
	// Exhausted reports true so callers can record a diagnostic.
	MaxSteps int
	// Stop is an optional cooperative cancellation flag. When an external
	// watchdog sets it, the analyzer winds down at the next step check the
	// same way budget exhaustion does, and Stopped reports true.
	Stop *atomic.Bool
	// Shared is an optional scan-scoped summary cache consulted (and filled)
	// for calls whose context is provably file-independent; see cache.go for
	// the sharing rules. Nil disables cross-task sharing. Entries this
	// analyzer computes are exposed via PendingShared and only become visible
	// to other analyzers once the owner commits them.
	Shared *SharedSummaries
}

// Analyzer runs taint analysis for one vulnerability class over one file.
type Analyzer struct {
	cfg       Config
	class     *vuln.Class
	file      *ast.File
	cands     []*Candidate
	seen      map[string]bool
	depth     int
	curFunc   string
	analyzing map[*ast.FunctionDecl]bool // recursion guard

	// summaries caches per-(function, argument content) results.
	summaries map[string]*summary

	// Shared-cache state: the active fill frame (at most one; fills start
	// only at depth 0), entries awaiting commit, and hit/miss counters.
	fill         *fillFrame
	fillSeq      int
	pending      []PendingSummary
	sharedHits   int
	sharedMisses int

	steps     int
	exhausted bool
	stopped   bool

	// transferHits counts summary transfer-function applications — memoized
	// or shared summaries applied at a call edge instead of re-walking the
	// callee body. Only the IR engine increments it; the legacy walker
	// reports 0.
	transferHits int
}

// TransferHits reports how many times the last run applied a function
// summary as a transfer function at a call edge (IR engine only).
func (a *Analyzer) TransferHits() int { return a.transferHits }

// step counts one AST-node visit and flips the analyzer into degraded mode
// when the budget runs out or the cooperative stop flag is set. It returns
// false once the walk should wind down.
func (a *Analyzer) step() bool {
	if a.exhausted {
		return false
	}
	a.steps++
	if a.cfg.MaxSteps > 0 && a.steps > a.cfg.MaxSteps {
		a.exhausted = true
		return false
	}
	// The atomic load is cheap but pointless at full rate; poll every 64
	// nodes so a watchdog still cuts a runaway walk off within microseconds.
	if a.cfg.Stop != nil && a.steps%64 == 0 && a.cfg.Stop.Load() {
		a.stopped = true
		a.exhausted = true
		return false
	}
	return true
}

// Exhausted reports whether the last File run ran out of its step budget (or
// was stopped) and therefore degraded to conservative propagation.
func (a *Analyzer) Exhausted() bool { return a.exhausted }

// Stopped reports whether the last File run was cut off by the cooperative
// Stop flag rather than by the step budget.
func (a *Analyzer) Stopped() bool { return a.stopped }

// Steps reports how many AST nodes the last File run visited.
func (a *Analyzer) Steps() int { return a.steps }

// summary captures the effect of calling a user function with a given
// argument content pattern. Keys are content-exact (see memoKey), so a memo
// hit is indistinguishable from recomputing the body.
type summary struct {
	returnValue Value
	// fillID records which shared-cache fill (if any) created the entry. A
	// hit during a different fill makes that fill's captured candidate set
	// task-history-dependent, so the frame is marked impure.
	fillID int
}

// New returns an analyzer for the given configuration.
func New(cfg Config) *Analyzer {
	if cfg.MaxCallDepth == 0 {
		cfg.MaxCallDepth = 12
	}
	return &Analyzer{
		cfg:       cfg,
		class:     cfg.Class,
		seen:      make(map[string]bool),
		analyzing: make(map[*ast.FunctionDecl]bool),
		summaries: make(map[string]*summary),
	}
}

// File analyzes the top-level statements of a file and returns the candidate
// vulnerabilities found. Function bodies are analyzed when called; uncalled
// functions are additionally analyzed with their parameters assumed tainted,
// which is how WAP inspects library code whose callers are unknown.
func (a *Analyzer) File(f *ast.File) []*Candidate {
	a.file = f
	a.cands = a.cands[:0]
	a.seen = make(map[string]bool)
	a.steps = 0
	a.exhausted = false
	a.stopped = false
	a.fill = nil
	a.pending = nil
	a.sharedHits = 0
	a.sharedMisses = 0
	a.transferHits = 0
	env := newEnv(nil)
	a.stmts(f.Stmts, env)

	// Second pass: functions never called from top level, assuming tainted
	// superglobals only (not tainted params — params of library functions
	// are an unknown; WAP flags flows from superglobals inside them). The
	// pass runs in source order (f.Funcs is a map) so the candidate list is
	// deterministic and the IR engine can mirror it exactly.
	for _, fn := range sortedFuncs(f) {
		if a.exhausted {
			break
		}
		if fn.Body == nil || a.analyzing[fn] {
			continue
		}
		a.analyzeUncalled(fn)
	}
	return a.cands
}

// sortedFuncs returns the file's registered function declarations in source
// position order, deduplicated by declaration identity.
func sortedFuncs(f *ast.File) []*ast.FunctionDecl {
	fns := make([]*ast.FunctionDecl, 0, len(f.Funcs))
	seen := make(map[*ast.FunctionDecl]bool, len(f.Funcs))
	for _, fn := range f.Funcs {
		if !seen[fn] {
			seen[fn] = true
			fns = append(fns, fn)
		}
	}
	sort.Slice(fns, func(i, j int) bool {
		a, b := fns[i], fns[j]
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Name < b.Name
	})
	return fns
}

func (a *Analyzer) analyzeUncalled(fn *ast.FunctionDecl) {
	prev := a.curFunc
	a.curFunc = fn.Name
	a.analyzing[fn] = true
	env := newEnv(nil)
	for _, p := range fn.Params {
		if p.Default != nil {
			env.set(p.Name, a.expr(p.Default, env))
		} else {
			env.set(p.Name, clean())
		}
	}
	a.stmts(fn.Body.Stmts, env)
	delete(a.analyzing, fn)
	a.curFunc = prev
}

func (a *Analyzer) report(c *Candidate) {
	if c.Value.Tainted == false {
		return
	}
	// Tee into an active shared-cache fill before the dedup check: a
	// consumer's fresh analysis of the same body would report the candidate
	// regardless of what this task happened to have seen earlier.
	if a.fill != nil {
		cc := *c
		a.fill.cands = append(a.fill.cands, &cc)
	}
	k := c.Key()
	if a.seen[k] {
		return
	}
	a.seen[k] = true
	a.cands = append(a.cands, c)
}

// ---------------------------------------------------------------------------
// Environment
// ---------------------------------------------------------------------------

// env is a variable taint environment with optional parent (for globals).
type env struct {
	vars   map[string]Value
	parent *env
	// written, when non-nil, records every binding name this env has set or
	// merge-set since the map was installed. The IR engine uses it to compute
	// per-branch write sets for its path-sensitive switch join; the legacy
	// walker never installs it.
	written map[string]bool
}

func newEnv(parent *env) *env {
	return &env{vars: make(map[string]Value), parent: parent}
}

func (e *env) get(name string) Value {
	if v, ok := e.vars[name]; ok {
		return v
	}
	if e.parent != nil {
		return e.parent.get(name)
	}
	return clean()
}

func (e *env) set(name string, v Value) {
	e.vars[name] = v
	if e.written != nil {
		e.written[name] = true
	}
}

// mergeSet unions taint into an existing binding (used for index assignment
// and loop bodies). The union is the canonical join, so re-running a loop
// body (the walker's two-pass widening) or replaying a by-ref summary does
// not duplicate bookkeeping: merge-setting the same value twice is a no-op.
func (e *env) mergeSet(name string, v Value) {
	e.vars[name] = join(e.get(name), v)
	if e.written != nil {
		e.written[name] = true
	}
}

// snapshot copies the current bindings (for branch merging).
func (e *env) snapshot() map[string]Value {
	return copyBindings(e.vars)
}

func copyBindings(m map[string]Value) map[string]Value {
	out := make(map[string]Value, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// mergeFrom unions bindings from a branch snapshot. Each binding is combined
// with the canonical join, which is idempotent and order-independent: merging
// N snapshots that agree on a binding leaves it untouched, no matter the
// order the snapshots are applied in.
func (e *env) mergeFrom(snap map[string]Value) {
	e.mergeFromExcept(snap, nil)
}

// mergeFromExcept is mergeFrom with a kill set: bindings in skip were
// already resolved by a path-sensitive join (every branch overwrote them),
// so the stale pre-branch value must not be re-merged.
func (e *env) mergeFromExcept(snap map[string]Value, skip map[string]bool) {
	for k, v := range snap {
		if skip[k] {
			continue
		}
		if v.Tainted {
			e.vars[k] = join(e.get(k), v)
		} else if _, ok := e.vars[k]; !ok {
			e.vars[k] = v
		}
	}
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

func (a *Analyzer) stmts(list []ast.Stmt, e *env) Value {
	var ret Value
	for _, s := range list {
		if a.exhausted {
			break
		}
		ret = ret.merge(a.stmt(s, e))
	}
	return ret
}

// stmt analyzes one statement; the returned value accumulates possible
// return values of the enclosing function.
func (a *Analyzer) stmt(s ast.Stmt, e *env) Value {
	if !a.step() {
		return clean()
	}
	switch x := s.(type) {
	case *ast.ExprStmt:
		a.expr(x.X, e)
	case *ast.EchoStmt:
		for _, arg := range x.Args {
			v := a.expr(arg, e)
			a.checkPseudoSink("echo", x, arg, v, x.Position)
		}
	case *ast.BlockStmt:
		return a.stmts(x.Stmts, e)
	case *ast.IfStmt:
		a.expr(x.Cond, e)
		base := e.snapshot()
		var ret Value
		ret = ret.merge(a.stmts(x.Then.Stmts, e))
		thenSnap := e.snapshot()
		// Restore base, run else, then merge both.
		e.vars = base
		if x.Else != nil {
			ret = ret.merge(a.stmt(x.Else, e))
		}
		e.mergeFrom(thenSnap)
		return ret
	case *ast.WhileStmt:
		a.expr(x.Cond, e)
		// Two passes propagate taint introduced by the body to earlier uses.
		ret := a.stmts(x.Body.Stmts, e)
		ret = ret.merge(a.stmts(x.Body.Stmts, e))
		return ret
	case *ast.DoWhileStmt:
		ret := a.stmts(x.Body.Stmts, e)
		ret = ret.merge(a.stmts(x.Body.Stmts, e))
		a.expr(x.Cond, e)
		return ret
	case *ast.ForStmt:
		for _, ex := range x.Init {
			a.expr(ex, e)
		}
		for _, ex := range x.Cond {
			a.expr(ex, e)
		}
		ret := a.stmts(x.Body.Stmts, e)
		for _, ex := range x.Post {
			a.expr(ex, e)
		}
		ret = ret.merge(a.stmts(x.Body.Stmts, e))
		return ret
	case *ast.ForeachStmt:
		subj := a.expr(x.Subject, e)
		if x.Key != nil {
			a.assignTo(x.Key, subj, e)
		}
		a.assignTo(x.Value, subj, e)
		ret := a.stmts(x.Body.Stmts, e)
		ret = ret.merge(a.stmts(x.Body.Stmts, e))
		return ret
	case *ast.SwitchStmt:
		a.expr(x.Subject, e)
		// Cases are alternative branches: run each against the entry state
		// and merge the results (fallthrough is over-approximated by the
		// merge).
		base := e.snapshot()
		var ret Value
		snaps := make([]map[string]Value, 0, len(x.Cases))
		for _, c := range x.Cases {
			e.vars = copyBindings(base)
			if c.Cond != nil {
				a.expr(c.Cond, e)
			}
			for _, st := range c.Body {
				ret = ret.merge(a.stmt(st, e))
			}
			snaps = append(snaps, e.snapshot())
		}
		e.vars = base
		for _, s := range snaps {
			e.mergeFrom(s)
		}
		return ret
	case *ast.ReturnStmt:
		if x.Result != nil {
			return a.expr(x.Result, e)
		}
	case *ast.ThrowStmt:
		a.expr(x.X, e)
	case *ast.TryStmt:
		ret := a.stmts(x.Body.Stmts, e)
		for _, c := range x.Catches {
			if c.Var != "" {
				e.set(c.Var, clean())
			}
			ret = ret.merge(a.stmts(c.Body.Stmts, e))
		}
		if x.Finally != nil {
			ret = ret.merge(a.stmts(x.Finally.Stmts, e))
		}
		return ret
	case *ast.GlobalStmt:
		// Globals are unknown; be conservative and treat as clean (WAP does
		// not track globals across scripts either).
		for _, n := range x.Names {
			e.set(n, clean())
		}
	case *ast.StaticVarStmt:
		for i, n := range x.Names {
			if x.Inits[i] != nil {
				e.set(n, a.expr(x.Inits[i], e))
			} else {
				e.set(n, clean())
			}
		}
	case *ast.UnsetStmt:
		for _, arg := range x.Args {
			if v, ok := arg.(*ast.Variable); ok {
				e.set(v.Name, clean())
			}
		}
	case *ast.IncludeStmt:
		v := a.expr(x.X, e)
		a.checkPseudoSink("include", x, x.X, v, x.Position)
	case *ast.FunctionDecl, *ast.ClassDecl, *ast.InlineHTMLStmt,
		*ast.BreakStmt, *ast.ContinueStmt:
		// Declarations analyzed on call; HTML/flow have no taint effect.
	}
	return clean()
}

// assignTo writes a value to an assignable expression.
func (a *Analyzer) assignTo(lhs ast.Expr, v Value, e *env) {
	switch t := lhs.(type) {
	case *ast.Variable:
		e.set(t.Name, v)
	case *ast.IndexExpr:
		if base := rootVar(t.X); base != "" {
			// Element assignment taints the whole array conservatively.
			if v.Tainted {
				e.mergeSet(base, v)
			}
		}
	case *ast.PropExpr:
		if key := propKey(t); key != "" {
			if v.Tainted {
				e.mergeSet(key, v)
			} else {
				e.set(key, v)
			}
		}
	case *ast.StaticPropExpr:
		key := "::" + strings.ToLower(t.Class) + "::" + t.Name
		e.set(key, v)
	case *ast.ListExpr:
		for _, item := range t.Items {
			if item != nil {
				a.assignTo(item, v, e)
			}
		}
	case *ast.ArrayLit:
		for _, item := range t.Items {
			a.assignTo(item.Value, v, e)
		}
	case *ast.VarVar:
		// Unknown target: ignore (documented imprecision, as in WAP).
	}
}

// rootVar returns the base variable name of nested index expressions.
func rootVar(x ast.Expr) string {
	for {
		switch t := x.(type) {
		case *ast.Variable:
			return t.Name
		case *ast.IndexExpr:
			x = t.X
		case *ast.PropExpr:
			if k := propKey(t); k != "" {
				return k
			}
			return ""
		default:
			return ""
		}
	}
}

// propKey builds an environment key for $var->prop chains ("var->prop").
func propKey(p *ast.PropExpr) string {
	base, ok := p.X.(*ast.Variable)
	if !ok || p.Name == "" {
		return ""
	}
	return base.Name + "->" + strings.ToLower(p.Name)
}
