// IR evaluation: the taint engine re-hosted on the lowered three-address
// form. FileIR is the drop-in counterpart of File — same configuration,
// same candidate output on unchanged flows — but instead of re-walking the
// syntax tree it interprets the file's instruction tape: taint facts flow
// through registers along the function's CFG regions, branch joins use the
// canonical order-independent join, and user-function calls apply memoized
// summaries as transfer functions at the call edge.
//
// The one deliberate precision improvement over the walker is the
// path-sensitive switch join: when a switch has a default arm and every arm
// overwrites a binding with an untainted value (a sanitizer dominating every
// path), the pre-switch taint is killed instead of leaking through the
// merge. Every other construct reproduces the walker's semantics exactly;
// the differential harness in internal/core pins that equivalence.
package taint

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/ir"
	"repro/internal/php/ast"
	"repro/internal/php/token"
)

// irFrame is one function activation on the IR engine: the virtual register
// file, the variable environment and the return-value accumulator.
type irFrame struct {
	regs []Value
	// regBox is the pool box regs was drawn from, returned on frame release.
	regBox *[]Value
	env    *env
	// ret accumulates return-statement values in evaluation order, exactly
	// like the walker's stmts() merge chain.
	ret Value
}

// irRegPool recycles register files across frames, files and tasks.
// Registers are dense contiguous ints from the lowering, so a register file
// is a plain slice; boxes at rest are zero over their whole capacity —
// getIRRegs only exposes [0:n) and putIRRegs scrubs exactly that window, so
// reslicing never surfaces a stale Value or keeps one reachable by the GC.
var irRegPool = sync.Pool{New: func() any { b := make([]Value, 0, 64); return &b }}

func getIRRegs(n int) *[]Value {
	bp := irRegPool.Get().(*[]Value)
	if b := *bp; cap(b) >= n {
		*bp = b[:n]
	} else {
		*bp = make([]Value, n)
	}
	return bp
}

func putIRRegs(bp *[]Value) {
	b := *bp
	for i := range b {
		b[i] = Value{}
	}
	irRegPool.Put(bp)
}

// newIRFrame builds a frame with a pooled register file; releaseIRFrame
// returns the file to the pool (values the frame produced — candidates,
// env bindings, return values — are Value structs copied out of the
// registers, so scrubbing the file cannot reach them).
func newIRFrame(n int, e *env) *irFrame {
	bp := getIRRegs(n)
	return &irFrame{regs: *bp, regBox: bp, env: e}
}

func releaseIRFrame(fr *irFrame) {
	putIRRegs(fr.regBox)
	fr.regs, fr.regBox = nil, nil
}

// val reads a register; NoReg (and the reserved register 0) is clean.
func (fr *irFrame) val(r ir.Reg) Value {
	if r < 0 {
		return clean()
	}
	return fr.regs[r]
}

// irProvider resolves declarations to lowered functions: the analyzed
// file's own index first, then the scan-scoped provider, then a local
// lowering memo so single-file runs work without any cache.
type irProvider struct {
	file  *ir.File
	prov  ir.Provider
	local map[*ast.FunctionDecl]*ir.Func
}

func (p *irProvider) funcFor(d *ast.FunctionDecl) *ir.Func {
	if p.file != nil {
		if fn, ok := p.file.ByDecl[d]; ok {
			return fn
		}
	}
	if p.prov != nil {
		if fn := p.prov.Func(d); fn != nil {
			return fn
		}
	}
	if fn, ok := p.local[d]; ok {
		return fn
	}
	if p.local == nil {
		p.local = make(map[*ast.FunctionDecl]*ir.Func)
	}
	fn := ir.LowerFunc(d)
	p.local[d] = fn
	return fn
}

// FileIR analyzes a file through its lowered form fir (which must be the
// lowering of f). prov optionally resolves cross-file declarations to
// already-lowered functions; nil falls back to lowering on demand.
func (a *Analyzer) FileIR(f *ast.File, fir *ir.File, prov ir.Provider) []*Candidate {
	a.file = f
	a.cands = a.cands[:0]
	a.seen = make(map[string]bool)
	a.steps = 0
	a.exhausted = false
	a.stopped = false
	a.fill = nil
	a.pending = nil
	a.sharedHits = 0
	a.sharedMisses = 0
	a.transferHits = 0
	p := &irProvider{file: fir, prov: prov}
	fr := newIRFrame(fir.Top.NumRegs, newEnv(nil))
	a.runRegion(fir.Top.Body, fr, p)
	releaseIRFrame(fr)

	// Uncalled-function pass, in the same source order as the walker's.
	for _, fn := range fir.Funcs {
		if a.exhausted {
			break
		}
		if fn.Decl == nil || fn.Decl.Body == nil || a.analyzing[fn.Decl] {
			continue
		}
		a.analyzeUncalledIR(fn, p)
	}
	return a.cands
}

func (a *Analyzer) analyzeUncalledIR(fn *ir.Func, p *irProvider) {
	prev := a.curFunc
	a.curFunc = fn.Name
	a.analyzing[fn.Decl] = true
	fr := newIRFrame(fn.NumRegs, newEnv(nil))
	for _, prm := range fn.Params {
		if prm.Default != nil {
			fr.env.set(prm.Name, a.runBlockValue(prm.Default, fr, p))
		} else {
			fr.env.set(prm.Name, clean())
		}
	}
	a.runRegion(fn.Body, fr, p)
	releaseIRFrame(fr)
	delete(a.analyzing, fn.Decl)
	a.curFunc = prev
}

// ---------------------------------------------------------------------------
// Region and block execution
// ---------------------------------------------------------------------------

func (a *Analyzer) runRegion(r *ir.Region, fr *irFrame, p *irProvider) {
	if r == nil || a.exhausted {
		return
	}
	switch r.Kind {
	case ir.RBasic:
		a.runBlock(r.Blk, fr, p)
	case ir.RSeq:
		for _, k := range r.Kids {
			if a.exhausted {
				return
			}
			a.runRegion(k, fr, p)
		}
	case ir.RIf:
		e := fr.env
		base := e.snapshot()
		a.runRegion(r.Then, fr, p)
		thenSnap := e.snapshot()
		e.vars = base
		if r.Else != nil {
			a.runRegion(r.Else, fr, p)
		}
		e.mergeFrom(thenSnap)
	case ir.RLoop2:
		a.runRegion(r.Body, fr, p)
		a.runRegion(r.Body, fr, p)
	case ir.RForLoop:
		a.runRegion(r.Body, fr, p)
		if r.Post != nil && !a.exhausted {
			a.runBlock(r.Post, fr, p)
		}
		a.runRegion(r.Body, fr, p)
	case ir.RSwitch:
		a.runSwitch(r, fr, p)
	}
}

// runSwitch runs each case against the entry state and joins the exits —
// the walker's protocol — plus the IR engine's path-sensitive kill: with an
// exhaustive arm set (a default is present), a binding that every arm
// overwrites and leaves untainted cannot carry its pre-switch taint past
// the switch, so the stale base value is replaced by the join of the arm
// values instead of being merged with them.
func (a *Analyzer) runSwitch(r *ir.Region, fr *irFrame, p *irProvider) {
	e := fr.env
	base := e.snapshot()
	savedWritten := e.written
	snaps := make([]map[string]Value, 0, len(r.Cases))
	writes := make([]map[string]bool, 0, len(r.Cases))
	for _, c := range r.Cases {
		e.vars = copyBindings(base)
		e.written = make(map[string]bool)
		if c.Cond != nil {
			a.runBlock(c.Cond, fr, p)
		}
		a.runRegion(c.Body, fr, p)
		snaps = append(snaps, e.snapshot())
		writes = append(writes, e.written)
	}
	e.vars = base
	e.written = savedWritten

	var killed map[string]bool
	if r.HasDefault && len(writes) > 0 {
		for k := range writes[0] {
			if !e.get(k).Tainted {
				continue
			}
			everywhere := true
			for _, w := range writes[1:] {
				if !w[k] {
					everywhere = false
					break
				}
			}
			if !everywhere {
				continue
			}
			cleanEverywhere := true
			for _, s := range snaps {
				if s[k].Tainted {
					cleanEverywhere = false
					break
				}
			}
			if !cleanEverywhere {
				continue
			}
			if killed == nil {
				killed = make(map[string]bool)
			}
			killed[k] = true
		}
	}
	for k := range killed {
		v := snaps[0][k]
		for _, s := range snaps[1:] {
			v = join(v, s[k])
		}
		e.vars[k] = v
	}
	for _, s := range snaps {
		e.mergeFromExcept(s, killed)
	}
}

func (a *Analyzer) runBlock(b *ir.Block, fr *irFrame, p *irProvider) {
	if b == nil {
		return
	}
	for i := range b.Instrs {
		// One step per IR instruction: the budget and the cooperative stop
		// now gate the flat tape rather than the recursive walk.
		if !a.step() {
			return
		}
		a.runInstr(&b.Instrs[i], fr, p)
	}
}

// runBlockValue runs a sub-evaluation block and reads its result register.
func (a *Analyzer) runBlockValue(b *ir.Block, fr *irFrame, p *irProvider) Value {
	if b == nil {
		return clean()
	}
	a.runBlock(b, fr, p)
	return fr.val(b.Result)
}

// ---------------------------------------------------------------------------
// Instructions
// ---------------------------------------------------------------------------

func (a *Analyzer) runInstr(ins *ir.Instr, fr *irFrame, p *irProvider) {
	e := fr.env
	switch ins.Op {
	case ir.OpConst:
		fr.regs[ins.Dst] = clean()
	case ir.OpCopy:
		fr.regs[ins.Dst] = fr.val(ins.A)
	case ir.OpLoadVar:
		if a.isEntryPointVar(ins.Name) {
			fr.regs[ins.Dst] = Value{
				Tainted: true,
				Sources: []Source{{Name: "$" + ins.Name, Pos: ins.Pos}},
				Trace:   []Step{{Pos: ins.Pos, Desc: "entry point $" + ins.Name, Node: ins.Node}},
			}
		} else {
			fr.regs[ins.Dst] = e.get(ins.Name)
		}
	case ir.OpLoadKey:
		fr.regs[ins.Dst] = e.get(ins.Name)
	case ir.OpIndex:
		fr.regs[ins.Dst] = a.runIndex(ins, fr, p)
	case ir.OpUnion:
		var v Value
		for _, r := range ins.Args {
			v = v.merge(fr.val(r))
		}
		fr.regs[ins.Dst] = v
	case ir.OpConcat:
		v := fr.val(ins.A).merge(fr.val(ins.B))
		if v.Tainted {
			v.Trace = append(v.Trace, Step{Pos: ins.Pos, Desc: "concatenation", Node: ins.Node})
		}
		fr.regs[ins.Dst] = v
	case ir.OpInterp:
		var v Value
		for _, r := range ins.Args {
			v = v.merge(fr.val(r))
		}
		if v.Tainted {
			v.Trace = append(v.Trace, Step{Pos: ins.Pos, Desc: "string interpolation", Node: ins.Node})
		}
		fr.regs[ins.Dst] = v
	case ir.OpAssign:
		rhs := fr.val(ins.A)
		var v Value
		switch ins.AKind {
		case ir.AssignAppend:
			if ins.LV != nil && ins.LV.Kind == ir.LVVar {
				v = e.get(ins.LV.Name).merge(rhs)
			} else {
				v = rhs
			}
			if v.Tainted {
				v.Trace = append(v.Trace, Step{Pos: ins.Pos, Desc: "append assignment", Node: ins.Node})
			}
		case ir.AssignPlain:
			v = rhs
			if v.Tainted {
				v.Trace = append(v.Trace, Step{Pos: ins.Pos, Desc: "assignment", Node: ins.Node})
			}
		default:
			v = clean()
		}
		a.assignLV(ins.LV, v, e)
		fr.regs[ins.Dst] = v
	case ir.OpAssignTo:
		a.assignLV(ins.LV, fr.val(ins.A), e)
	case ir.OpSetVar:
		if ins.A < 0 {
			e.set(ins.Name, clean())
		} else {
			e.set(ins.Name, fr.val(ins.A))
		}
	case ir.OpCall:
		fr.regs[ins.Dst] = a.runCall(ins, fr, p)
	case ir.OpMethodCall:
		fr.regs[ins.Dst] = a.runMethodCall(ins, fr, p)
	case ir.OpStaticCall:
		fr.regs[ins.Dst] = a.runStaticCall(ins, fr, p)
	case ir.OpClosure:
		a.runClosure(ins, fr, p)
	case ir.OpPseudoSink:
		a.checkPseudoSink(ins.Name, ins.Node, ins.Expr, fr.val(ins.A), ins.Pos)
	case ir.OpNamedSink:
		a.checkNamedSink(ins.Name, ins.Node, ins.Expr, fr.val(ins.A), -1, ins.Pos)
	case ir.OpReturn:
		fr.ret = fr.ret.merge(fr.val(ins.A))
	}
}

// runIndex mirrors the walker's two IndexExpr branches: the entry-point
// superglobal read evaluates only the index subexpression, everything else
// evaluates base then index and yields the base value.
func (a *Analyzer) runIndex(ins *ir.Instr, fr *irFrame, p *irProvider) Value {
	if ins.Name != "" && a.isEntryPointVar(ins.Name) {
		if ins.IBlk != nil {
			a.runBlock(ins.IBlk, fr, p)
		}
		if ins.Name == "_SERVER" && serverKeySafe(ins.Key) {
			return clean()
		}
		src := fmt.Sprintf("$%s[%s]", ins.Name, ins.Key)
		return Value{
			Tainted: true,
			Sources: []Source{{Name: src, Pos: ins.Pos}},
			Trace:   []Step{{Pos: ins.Pos, Desc: "entry point " + src, Node: ins.Node}},
		}
	}
	v := a.runBlockValue(ins.XBlk, fr, p)
	if ins.IBlk != nil {
		a.runBlock(ins.IBlk, fr, p)
	}
	return v
}

// assignLV writes a value through a static assignment target, mirroring the
// walker's assignTo.
func (a *Analyzer) assignLV(lv *ir.LValue, v Value, e *env) {
	if lv == nil {
		return
	}
	switch lv.Kind {
	case ir.LVVar:
		e.set(lv.Name, v)
	case ir.LVIndex:
		// Element assignment taints the whole array conservatively.
		if v.Tainted {
			e.mergeSet(lv.Name, v)
		}
	case ir.LVKey:
		if v.Tainted && !lv.Strong {
			e.mergeSet(lv.Name, v)
		} else {
			e.set(lv.Name, v)
		}
	case ir.LVList:
		for _, k := range lv.Kids {
			a.assignLV(k, v, e)
		}
	}
}

// ---------------------------------------------------------------------------
// Calls
// ---------------------------------------------------------------------------

func (a *Analyzer) runCall(ins *ir.Instr, fr *irFrame, p *irProvider) Value {
	name := ins.Name
	args := make([]Value, len(ins.Args))
	for i, r := range ins.Args {
		args[i] = fr.val(r)
	}
	e := fr.env

	if a.isSanitizer(name) {
		v := clean()
		v.Sanitizers = append(v.Sanitizers, name)
		for _, av := range args {
			v.Sanitizers = append(v.Sanitizers, av.Sanitizers...)
		}
		return v
	}
	if a.class.IsEntryPointFunc(name) {
		return Value{
			Tainted: true,
			Sources: []Source{{Name: name + "()", Pos: ins.Pos}},
			Trace:   []Step{{Pos: ins.Pos, Desc: "entry point " + name + "()", Node: ins.Node}},
		}
	}
	a.checkCallSinks(name, false, "", ins.Node, ins.ArgExprs, args, ins.Pos)
	if propagatesTaint(name) {
		v := mergeAll(args)
		if v.Tainted {
			v.Trace = append(v.Trace, Step{Pos: ins.Pos, Desc: name + "()", Node: ins.Node})
		}
		return v
	}
	switch name {
	case "preg_match", "preg_match_all":
		if len(ins.ArgExprs) >= 3 && len(args) >= 2 {
			a.assignTo(ins.ArgExprs[2], args[1], e)
		}
		return clean()
	case "parse_str":
		if len(ins.ArgExprs) >= 2 && len(args) >= 1 {
			a.assignTo(ins.ArgExprs[1], args[0], e)
		}
		return clean()
	case "extract":
		return clean()
	case "settype":
		if len(ins.ArgExprs) >= 1 {
			a.assignTo(ins.ArgExprs[0], clean(), e)
		}
		return clean()
	}
	if fn := a.resolveFunc(name); fn != nil && fn.Body != nil && !a.cfg.DisableInlining {
		return a.inlineCallIR(fn, ins.ArgExprs, args, ins.Pos, e, p)
	}
	return clean()
}

func (a *Analyzer) runMethodCall(ins *ir.Instr, fr *irFrame, p *irProvider) Value {
	recv := fr.val(ins.A)
	name := ins.Name // lower-cased at lowering time
	args := make([]Value, len(ins.Args))
	for i, r := range ins.Args {
		args[i] = fr.val(r)
	}
	if a.class.IsSanitizerMethod(name) {
		v := clean()
		v.Sanitizers = append(v.Sanitizers, name)
		return v
	}
	a.checkCallSinks(name, true, ins.Key, ins.Node, ins.ArgExprs, args, ins.Pos)
	if m := a.resolveMethod(name); m != nil && m.Body != nil && !a.cfg.DisableInlining {
		return a.inlineCallIR(m, ins.ArgExprs, args, ins.Pos, fr.env, p)
	}
	return recv.merge(mergeAll(args))
}

func (a *Analyzer) runStaticCall(ins *ir.Instr, fr *irFrame, p *irProvider) Value {
	name := strings.ToLower(ins.Name)
	args := make([]Value, len(ins.Args))
	for i, r := range ins.Args {
		args[i] = fr.val(r)
	}
	if a.class.IsSanitizerMethod(name) {
		v := clean()
		v.Sanitizers = append(v.Sanitizers, name)
		return v
	}
	a.checkCallSinks(name, true, strings.ToLower(ins.Key), ins.Node, ins.ArgExprs, args, ins.Pos)
	// The walker inlines resolved static methods regardless of the
	// DisableInlining ablation; preserve that quirk.
	if m := a.resolveStaticMethod(ins.Key, ins.Name); m != nil && m.Body != nil {
		return a.inlineCallIR(m, ins.ArgExprs, args, ins.Pos, fr.env, p)
	}
	return mergeAll(args)
}

// runClosure evaluates a closure body in a fresh environment seeded from
// its use() clause, mirroring the walker's in-place conservative analysis.
func (a *Analyzer) runClosure(ins *ir.Instr, fr *irFrame, p *irProvider) {
	cf := ins.Closure
	inner := newEnv(nil)
	for _, u := range cf.Uses {
		inner.set(u, fr.env.get(u))
	}
	for _, prm := range cf.Params {
		inner.set(prm.Name, clean())
	}
	cfr := newIRFrame(cf.NumRegs, inner)
	a.runRegion(cf.Body, cfr, p)
	releaseIRFrame(cfr)
}

// inlineCallIR applies a user function at a call edge. Memoized and shared
// summaries act as transfer functions — the callee's effect is applied
// without touching its body — and count as transfer hits; a miss runs the
// callee's lowered body once and installs the summary for the next edge.
func (a *Analyzer) inlineCallIR(fn *ast.FunctionDecl, argExprs []ast.Expr, args []Value, callPos token.Position, caller *env, p *irProvider) Value {
	if a.depth >= a.cfg.MaxCallDepth || a.analyzing[fn] || a.exhausted {
		return mergeAll(args)
	}

	key := memoKey(fn, args)
	if s, ok := a.summaries[key]; ok {
		if a.fill != nil && s.fillID != a.fill.id {
			a.fill.impure = true
		}
		a.transferHits++
		v := s.returnValue
		if v.Tainted {
			v.Trace = append(append([]Step{}, v.Trace...),
				Step{Pos: callPos, Desc: "return from " + fn.Name + "()"})
		}
		return v
	}

	filling := false
	if a.shareEligible(args) {
		sk := SummaryKey{Class: a.class.ID, Fn: fn, NArgs: len(args)}
		if se := a.sharedLookup(sk); se != nil {
			a.transferHits++
			ret := a.consumeShared(se, key, argExprs, caller)
			if ret.Tainted {
				ret.Trace = append(append([]Step{}, ret.Trace...),
					Step{Pos: callPos, Desc: "return from " + fn.Name + "()"})
			}
			return ret
		}
		a.sharedMisses++
		a.fillSeq++
		a.fill = &fillFrame{key: sk, id: a.fillSeq, stepsStart: a.steps}
		filling = true
	}

	cf := p.funcFor(fn)

	a.depth++
	a.analyzing[fn] = true
	prevFunc := a.curFunc
	a.curFunc = fn.Name

	inner := newEnv(nil)
	cfr := newIRFrame(cf.NumRegs, inner)
	for i, prm := range cf.Params {
		switch {
		case i < len(args):
			inner.set(prm.Name, args[i])
		case prm.Default != nil:
			inner.set(prm.Name, a.runBlockValue(prm.Default, cfr, p))
		default:
			inner.set(prm.Name, clean())
		}
	}
	a.runRegion(cf.Body, cfr, p)
	ret := cfr.ret
	releaseIRFrame(cfr)

	// Propagate by-ref parameter taint back to caller arguments.
	for i, prm := range cf.Params {
		if prm.ByRef && i < len(argExprs) {
			a.assignTo(argExprs[i], inner.get(prm.Name), caller)
		}
	}

	a.curFunc = prevFunc
	delete(a.analyzing, fn)
	a.depth--

	entry := &summary{returnValue: ret}
	if a.fill != nil {
		entry.fillID = a.fill.id
	}
	a.summaries[key] = entry
	if filling {
		a.finishFill(ret, fn, inner)
	}
	if ret.Tainted {
		ret.Trace = append(append([]Step{}, ret.Trace...),
			Step{Pos: callPos, Desc: "return from " + fn.Name + "()"})
	}
	return ret
}
