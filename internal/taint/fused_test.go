package taint

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/php/parser"
	"repro/internal/vuln"
)

// fusedDiffSrcs are the scenarios the fused evaluator must reproduce
// byte-for-byte per lane: class-divergent sanitizers (which spill uniform
// cells to per-lane values), shared entry points, branch and switch joins
// over spilled cells, user functions with memoized/by-ref summaries,
// methods, closures and taint-transferring builtins.
var fusedDiffSrcs = map[string]string{
	"basic": `<?php
$id = $_GET['id'];
$q = "SELECT * FROM users WHERE id=" . $id;
mysql_query($q);
echo $_POST['msg'];
$safe = htmlentities($_GET['x']);
echo $safe;
mysql_query($safe);
print $_COOKIE['c'];
$cmd = $_REQUEST['cmd'];
system($cmd);
include($_GET['page']);
exit($_GET['bye']);
$addr = $_SERVER['REMOTE_ADDR'];
echo $addr;`,
	"sanitizer-divergence": `<?php
$a = $_GET['a'];
$h = htmlentities($a);
$s = mysql_real_escape_string($a);
$i = intval($a);
echo $h; echo $s; echo $i;
mysql_query($h); mysql_query($s); mysql_query($i);
system($h); system($s);
$mix = $h . $a;
echo $mix;
mysql_query($mix);`,
	"branches": `<?php
$a = $_GET['a'];
$b = htmlentities($a);
if ($a) { $c = $a; } else { $c = $b; }
echo $c;
mysql_query($c);
while ($i < 3) { $d = $d . $b; $i++; }
echo $d;
for ($i = 0; $i < 2; $i++) { $e = $a; $b = $e; }
echo $b;
foreach ($_POST as $k => $v) { echo $v; }`,
	"switch-kill": `<?php
$id = $_GET['id'];
switch ($mode) {
case "a": $id = intval($id); break;
case "b": $id = intval($id); break;
default: $id = 0; break;
}
mysql_query("SELECT * FROM t WHERE id=" . $id);
echo $id;
$x = $_GET['x'];
switch ($m2) {
case "a": $x = htmlentities($x); break;
default: $x = htmlentities($x); break;
}
echo $x;
mysql_query($x);`,
	"functions": `<?php
function wrap($s) { return "[" . $s . "]"; }
function clean2($s) { return htmlentities($s); }
function pick($a, $b = "dflt") { return $a . $b; }
function fill(&$out) { $out = $_GET['v']; }
$q = wrap($_GET['id']);
mysql_query($q);
echo $q;
mysql_query(wrap("safe"));
echo clean2($_GET['h']);
mysql_query(clean2($_GET['h']));
mysql_query(pick($_POST['p']));
fill($z);
mysql_query($z);
function deep($n) { return deep($n); }
echo deep($_GET['r']);
function uncalled() { echo $_GET['u']; system($_GET['u']); }`,
	"classes-closures": `<?php
class DB {
	function run($q) { mysql_query($q); }
	static function quote($s) { return "'" . $s . "'"; }
}
$db = new DB();
$db->run($_GET['q']);
mysql_query(DB::quote($_GET['w']));
$fn = function ($p) use ($db) { echo $_GET['cl']; };
$fn("x");
$obj->prop = $_GET['pp'];
echo $obj->prop;`,
	"builtins": `<?php
$t = $_GET['t'];
preg_match('/x/', $t, $mm);
mysql_query($mm);
parse_str($t, $ps);
echo $ps;
$s = sprintf("q=%s", $t);
mysql_query($s);
settype($t, "integer");
echo $t;
list($m, $n) = $_POST['arr'];
echo $m;
echo "interp $n done";
$arr = array("k" => $_GET['av']);
mysql_query($arr);`,
}

// fusedLaneState captures everything the engine consumes from one lane.
type fusedLaneState struct {
	cands   []string
	steps   int
	hits    int
	misses  int
	xfers   int
	pending []SummaryKey
}

func pendingKeys(ps []PendingSummary) []SummaryKey {
	out := make([]SummaryKey, len(ps))
	for i, p := range ps {
		out[i] = p.Key
	}
	return out
}

func sameKeys(a, b []SummaryKey) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// diffFusedUnfused runs every weapon class over src unfused (one FileIR per
// class) and fused (one pass), asserting per-lane state is byte-identical.
func diffFusedUnfused(t *testing.T, src string, mkCfg func(cls *vuln.Class) Config) {
	t.Helper()
	f, errs := parser.Parse("test.php", src)
	if len(errs) > 0 {
		t.Fatalf("parse errors: %v", errs)
	}
	fir := ir.LowerFile(f)
	classes := vuln.All()

	want := make([]fusedLaneState, len(classes))
	for i, cls := range classes {
		a := New(mkCfg(cls))
		cands := a.FileIR(f, fir, nil)
		if a.Exhausted() {
			t.Fatalf("[%s] unfused run exhausted; raise the test budget", cls.ID)
		}
		want[i] = fusedLaneState{
			cands:   candDetails(cands),
			steps:   a.Steps(),
			hits:    a.SharedHits(),
			misses:  a.SharedMisses(),
			xfers:   a.TransferHits(),
			pending: pendingKeys(a.PendingShared()),
		}
	}

	cfgs := make([]Config, len(classes))
	for i, cls := range classes {
		cfgs[i] = mkCfg(cls)
	}
	fz := NewFused(cfgs)
	if !fz.FileIR(f, fir, nil) {
		t.Fatal("fused pass aborted; expected clean completion")
	}
	for i, cls := range classes {
		got := fusedLaneState{
			cands:   candDetails(fz.Candidates(i)),
			steps:   fz.Steps(i),
			hits:    fz.SharedHits(i),
			misses:  fz.SharedMisses(i),
			xfers:   fz.TransferHits(i),
			pending: pendingKeys(fz.PendingShared(i)),
		}
		if strings.Join(got.cands, "\n") != strings.Join(want[i].cands, "\n") {
			t.Errorf("[%s] candidate divergence:\nunfused:\n  %s\nfused:\n  %s", cls.ID,
				strings.Join(want[i].cands, "\n  "), strings.Join(got.cands, "\n  "))
		}
		if got.steps != want[i].steps {
			t.Errorf("[%s] steps: unfused %d, fused %d", cls.ID, want[i].steps, got.steps)
		}
		if got.hits != want[i].hits || got.misses != want[i].misses || got.xfers != want[i].xfers {
			t.Errorf("[%s] cache counters: unfused hit=%d miss=%d xfer=%d, fused hit=%d miss=%d xfer=%d",
				cls.ID, want[i].hits, want[i].misses, want[i].xfers, got.hits, got.misses, got.xfers)
		}
		if !sameKeys(got.pending, want[i].pending) {
			t.Errorf("[%s] pending summaries: unfused %v, fused %v", cls.ID, want[i].pending, got.pending)
		}
	}
}

func TestFusedEquivAllClasses(t *testing.T) {
	for name, src := range fusedDiffSrcs {
		t.Run(name, func(t *testing.T) {
			diffFusedUnfused(t, src, func(cls *vuln.Class) Config {
				return Config{Class: cls}
			})
		})
	}
}

// TestFusedEquivWithSharedCache pins per-lane shared-summary bookkeeping:
// hits, misses, transfer counts and pending fills must match an unfused run
// against an identically seeded store.
func TestFusedEquivWithSharedCache(t *testing.T) {
	for name, src := range fusedDiffSrcs {
		t.Run(name, func(t *testing.T) {
			unfusedShared := NewSharedSummaries()
			fusedShared := NewSharedSummaries()
			calls := 0
			diffFusedUnfused(t, src, func(cls *vuln.Class) Config {
				// diffFusedUnfused builds unfused configs first, then the
				// fused slice — give each engine its own empty store.
				calls++
				if calls <= len(vuln.All()) {
					return Config{Class: cls, Shared: unfusedShared}
				}
				return Config{Class: cls, Shared: fusedShared}
			})
		})
	}
}

// TestFusedBudgetAbort pins the demotion trigger: the fused pass must abort
// exactly when some lane's unfused run would exhaust its step budget, and
// must complete when no lane would.
func TestFusedBudgetAbort(t *testing.T) {
	src := fusedDiffSrcs["functions"]
	f, errs := parser.Parse("test.php", src)
	if len(errs) > 0 {
		t.Fatalf("parse errors: %v", errs)
	}
	fir := ir.LowerFile(f)
	classes := vuln.All()

	maxSteps := 0
	for _, cls := range classes {
		a := New(Config{Class: cls})
		a.FileIR(f, fir, nil)
		if a.Steps() > maxSteps {
			maxSteps = a.Steps()
		}
	}
	if maxSteps == 0 {
		t.Fatal("expected nonzero step counts")
	}

	mk := func(budget int) []Config {
		cfgs := make([]Config, len(classes))
		for i, cls := range classes {
			cfgs[i] = Config{Class: cls, MaxSteps: budget}
		}
		return cfgs
	}
	if fz := NewFused(mk(maxSteps)); !fz.FileIR(f, fir, nil) {
		t.Errorf("fused pass aborted at budget %d, where every lane completes", maxSteps)
	}
	if fz := NewFused(mk(maxSteps - 1)); fz.FileIR(f, fir, nil) {
		t.Errorf("fused pass completed at budget %d, where the furthest lane exhausts", maxSteps-1)
	}
}
