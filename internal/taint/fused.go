// Fused multi-class IR evaluation: every weapon-class lane analyzes one
// file in a single traversal of its lowered form. Each lane is a fully
// configured Analyzer — its candidate list, memo tables, shared-cache
// bookkeeping and step count keep per-(file, class) granularity — but the
// instruction tape is interpreted once, carrying fval cells (one taint
// Value per lane, collapsed to a single shared Value while lanes agree)
// instead of one scalar Value per pass.
//
// The contract is byte-identity: after a successful fused pass, every
// lane's candidates, step count and pending summaries equal what the same
// Analyzer would produce running FileIR alone. That holds because fused
// execution is a lockstep product construction: lanes only diverge at
// class-dependent points (sanitizer sets, entry points, sinks, per-lane
// memo and shared-cache hits), and at those points the evaluation splits
// into per-lane values or narrowed sub-masks that reproduce each lane's
// scalar semantics exactly — including join's slice-identity fast paths,
// because a uniform cell holds one Value playing the role of the
// isomorphic per-lane values, and a spilled cell holds each lane's own
// value with its slice identity preserved by struct copying.
//
// Divergence the product cannot express cheaply — a lane exhausting its
// step budget, or the cooperative stop — aborts the whole pass: FileIR
// returns false, lane state is meaningless, and the caller must fall back
// to unfused per-class evaluation (the scheduler's demotion path), which
// then reproduces budget/stop semantics natively.
package taint

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/ir"
	"repro/internal/php/ast"
	"repro/internal/php/token"
)

// Fused runs N weapon-class analyzer lanes over one file in a single IR
// traversal. Lanes are indexed by position in the NewFused config slice.
type Fused struct {
	lanes []*Analyzer
	n     int
	full  laneMask

	astFile         *ast.File
	prov            *irProvider
	resolver        FuncResolver
	disableInlining bool
	// budget and stop are shared by every lane (the scheduler builds all
	// lane configs from one task template); per-lane step counts are still
	// tracked exactly, and the pass aborts as soon as the furthest lane
	// would exceed the budget.
	budget int
	stop   *atomic.Bool

	// Lazily memoized name → lane-mask indexes: which lanes treat a name as
	// a sanitizer / entry point / sink. These make class dispatch at call
	// sites a bitwise operation instead of N set lookups per instruction.
	sanM      map[string]laneMask
	sanMethM  map[string]laneMask
	epFnM     map[string]laneMask
	epVarM    map[string]laneMask
	fnSinkM   map[string]laneMask
	methSinkM map[string]laneMask

	// Step accounting: ctxSteps counts instructions charged to every lane
	// in ctxMask since the last flush; maxBase is the largest per-lane step
	// count among ctxMask lanes at that flush. The pass aborts when
	// maxBase+ctxSteps would push any lane past the budget.
	ctxMask  laneMask
	ctxSteps int
	maxBase  int
	pollCtr  int
	aborted  bool
}

// NewFused builds a fused evaluator with one analyzer lane per config. All
// configs must agree on Resolver, DisableInlining, MaxCallDepth, MaxSteps
// and Stop; per-class fields (Class, sanitizers, entry points, sinks,
// Shared) vary freely.
func NewFused(cfgs []Config) *Fused {
	lanes := make([]*Analyzer, len(cfgs))
	for i, c := range cfgs {
		lanes[i] = New(c)
	}
	fz := &Fused{
		lanes:     lanes,
		n:         len(cfgs),
		full:      fullMask(len(cfgs)),
		sanM:      make(map[string]laneMask),
		sanMethM:  make(map[string]laneMask),
		epFnM:     make(map[string]laneMask),
		epVarM:    make(map[string]laneMask),
		fnSinkM:   make(map[string]laneMask),
		methSinkM: make(map[string]laneMask),
	}
	if len(cfgs) > 0 {
		fz.resolver = cfgs[0].Resolver
		fz.disableInlining = cfgs[0].DisableInlining
		fz.budget = lanes[0].cfg.MaxSteps
		fz.stop = cfgs[0].Stop
	}
	return fz
}

// Lanes reports the number of lanes.
func (fz *Fused) Lanes() int { return fz.n }

// Candidates returns lane l's findings after a successful FileIR.
func (fz *Fused) Candidates(l int) []*Candidate { return fz.lanes[l].cands }

// Steps returns lane l's exact step count — what the lane's unfused run
// would have counted.
func (fz *Fused) Steps(l int) int { return fz.lanes[l].steps }

// SharedHits returns lane l's shared-summary cache hits.
func (fz *Fused) SharedHits(l int) int { return fz.lanes[l].sharedHits }

// SharedMisses returns lane l's shared-summary cache misses.
func (fz *Fused) SharedMisses(l int) int { return fz.lanes[l].sharedMisses }

// TransferHits returns lane l's summary transfer-function applications.
func (fz *Fused) TransferHits(l int) int { return fz.lanes[l].transferHits }

// PendingShared returns lane l's summaries awaiting commit.
func (fz *Fused) PendingShared(l int) []PendingSummary { return fz.lanes[l].pending }

// fframe is one function activation of the fused interpreter: the active
// lane mask, the fused register file, the fused environment and the fused
// return accumulator.
type fframe struct {
	act  laneMask
	regs *[]fval
	env  *fenv
	ret  fval
}

func (fr *fframe) valF(r ir.Reg) fval {
	if r < 0 {
		return fval{}
	}
	return (*fr.regs)[r]
}

// fregPool recycles fused register files across frames and files. Boxes at
// rest are zero over their whole capacity: newFrame only exposes [0:n) and
// releaseFrame scrubs exactly that window, so reslicing never surfaces a
// stale fval (or keeps one reachable by the GC).
var fregPool = sync.Pool{New: func() any { b := make([]fval, 0, 64); return &b }}

func (fz *Fused) newFrame(n int, act laneMask) *fframe {
	bp := fregPool.Get().(*[]fval)
	if b := *bp; cap(b) >= n {
		*bp = b[:n]
	} else {
		*bp = make([]fval, n)
	}
	return &fframe{act: act, regs: bp, env: newFenv()}
}

func (fz *Fused) releaseFrame(fr *fframe) {
	b := *fr.regs
	for i := range b {
		b[i] = fval{}
	}
	fregPool.Put(fr.regs)
	fr.regs = nil
}

// FileIR analyzes f through its lowered form fir with every lane at once.
// It returns false when the pass aborted (a lane hitting the step budget,
// or the cooperative stop flag): per-lane state is then meaningless and the
// caller must re-run the file's classes through unfused per-class FileIR.
func (fz *Fused) FileIR(f *ast.File, fir *ir.File, prov ir.Provider) bool {
	for _, a := range fz.lanes {
		a.file = f
		a.cands = a.cands[:0]
		a.seen = make(map[string]bool)
		a.steps = 0
		a.exhausted = false
		a.stopped = false
		a.fill = nil
		a.pending = nil
		a.sharedHits = 0
		a.sharedMisses = 0
		a.transferHits = 0
	}
	fz.astFile = f
	fz.prov = &irProvider{file: fir, prov: prov}
	fz.aborted = false
	fz.ctxSteps = 0
	fz.pollCtr = 0
	fz.setMask(fz.full)

	fr := fz.newFrame(fir.Top.NumRegs, fz.full)
	fz.runRegionF(fir.Top.Body, fr)
	fz.releaseFrame(fr)

	// Uncalled-function pass, in the same source order as the scalar engine.
	for _, fn := range fir.Funcs {
		if fz.aborted {
			return false
		}
		// Call-stack state is lockstep across lanes at top level, so one
		// representative decides the analyzing skip for all.
		if fn.Decl == nil || fn.Decl.Body == nil || fz.lanes[0].analyzing[fn.Decl] {
			continue
		}
		fz.analyzeUncalledF(fn)
	}
	fz.flush()
	return !fz.aborted
}

func (fz *Fused) analyzeUncalledF(fn *ir.Func) {
	act := fz.full
	prev := fz.lanes[act.first()].curFunc
	act.forEach(func(l int) {
		a := fz.lanes[l]
		a.curFunc = fn.Name
		a.analyzing[fn.Decl] = true
	})
	fr := fz.newFrame(fn.NumRegs, act)
	for _, prm := range fn.Params {
		if prm.Default != nil {
			fz.envSet(fr.env, prm.Name, fz.runBlockValueF(prm.Default, fr), act)
		} else {
			fz.envSet(fr.env, prm.Name, fval{}, act)
		}
	}
	fz.runRegionF(fn.Body, fr)
	act.forEach(func(l int) {
		a := fz.lanes[l]
		delete(a.analyzing, fn.Decl)
		a.curFunc = prev
	})
	fz.releaseFrame(fr)
}

// ---------------------------------------------------------------------------
// Step accounting
// ---------------------------------------------------------------------------

// stepF charges one instruction to every lane in the current mask. It
// returns false — aborting the pass — as soon as the furthest lane would
// exceed the budget, so no lane's exact count ever passes the point where
// its unfused run would have degraded.
func (fz *Fused) stepF() bool {
	if fz.aborted {
		return false
	}
	fz.ctxSteps++
	if fz.budget > 0 && fz.maxBase+fz.ctxSteps > fz.budget {
		fz.aborted = true
		return false
	}
	if fz.stop != nil {
		if fz.pollCtr++; fz.pollCtr&63 == 0 && fz.stop.Load() {
			fz.aborted = true
			return false
		}
	}
	return true
}

// flush folds the accumulated context steps into each active lane's exact
// per-lane counter.
func (fz *Fused) flush() {
	if fz.ctxSteps != 0 {
		n := fz.ctxSteps
		fz.ctxMask.forEach(func(l int) { fz.lanes[l].steps += n })
		fz.ctxSteps = 0
		fz.maxBase += n
	}
}

// setMask flushes and switches the charging context to m.
func (fz *Fused) setMask(m laneMask) {
	fz.flush()
	fz.ctxMask = m
	fz.syncBase()
}

// syncBase recomputes maxBase from the current lanes' counters (needed
// after per-lane charges such as shared-summary replays).
func (fz *Fused) syncBase() {
	mb := 0
	fz.ctxMask.forEach(func(l int) {
		if s := fz.lanes[l].steps; s > mb {
			mb = s
		}
	})
	fz.maxBase = mb
}

// ---------------------------------------------------------------------------
// Fused environment
// ---------------------------------------------------------------------------

// fcell is one variable binding across lanes: present marks the lanes whose
// scalar environment holds the binding at all (absent lanes read clean and
// are eligible for branch-merge writes), v carries the per-lane values.
// Invariant: v.mask ⊆ present.
type fcell struct {
	present laneMask
	v       fval
}

// fenv is the fused variable environment. written tracks per-lane write
// masks inside switch arms (nil elsewhere), mirroring env.written.
type fenv struct {
	vars    map[string]fcell
	written map[string]laneMask
}

func newFenv() *fenv {
	return &fenv{vars: make(map[string]fcell)}
}

func copyFcells(m map[string]fcell) map[string]fcell {
	out := make(map[string]fcell, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func oneLane(l int) laneMask { return laneMask{}.with(l) }

// restrictF clamps an fval's taint mask to m (the value payload is shared;
// out-of-mask lanes simply never read it).
func restrictF(v fval, m laneMask) fval {
	v.mask = v.mask.and(m)
	return v
}

// envGet reads a binding for the lanes in act, mirroring env.get per lane:
// present lanes see their value, absent lanes see clean.
func (fz *Fused) envGet(e *fenv, name string, act laneMask) fval {
	c, ok := e.vars[name]
	if !ok {
		return fval{}
	}
	if act.andNot(c.present).empty() {
		return restrictF(c.v, act)
	}
	if c.v.segs == nil && zeroValue(c.v.uni) {
		// Absent lanes read the zero Value; a bottom uniform cell is
		// indistinguishable from it under merge and join.
		return fval{}
	}
	b := fvalParts{act: act}
	b.addF(c.present.and(act), c.v)
	return b.finish()
}

// blendCell overlays v onto c for the lanes in m, keeping other present
// lanes' values.
func (fz *Fused) blendCell(c fcell, v fval, m laneMask) fcell {
	b := fvalParts{act: c.present.or(m)}
	b.addF(m, v)
	b.addF(c.present.andNot(m), c.v)
	return fcell{present: c.present.or(m), v: b.finish()}
}

// envSet overwrites the binding for the lanes in m, mirroring env.set.
func (fz *Fused) envSet(e *fenv, name string, v fval, m laneMask) {
	c, ok := e.vars[name]
	if !ok || c.present.andNot(m).empty() {
		e.vars[name] = fcell{present: m, v: restrictF(v, m)}
	} else {
		e.vars[name] = fz.blendCell(c, v, m)
	}
	if e.written != nil {
		e.written[name] = e.written[name].or(m)
	}
}

// envMergeSet joins v into the binding for the lanes in m, mirroring
// env.mergeSet per lane.
func (fz *Fused) envMergeSet(e *fenv, name string, v fval, m laneMask) {
	c, ok := e.vars[name]
	switch {
	case !ok:
		// join(clean, v) is v, identity preserved.
		e.vars[name] = fcell{present: m, v: restrictF(v, m)}
	case c.present.eq(m) && c.v.segs == nil && v.segs == nil:
		e.vars[name] = fcell{present: m, v: fuseUniform(join(c.v.uni, v.uni), m)}
	default:
		b := fvalParts{act: c.present.or(m)}
		b.addF(c.present.andNot(m), c.v)
		v.forEachSeg(m, func(g laneMask, vv Value) {
			if ab := g.andNot(c.present); !ab.empty() {
				b.addV(ab, join(Value{}, vv))
			}
			c.v.forEachSeg(g.and(c.present), func(g2 laneMask, cv Value) {
				b.addV(g2, join(cv, vv))
			})
		})
		e.vars[name] = fcell{present: c.present.or(m), v: b.finish()}
	}
	if e.written != nil {
		e.written[name] = e.written[name].or(m)
	}
}

// envMergeFrom applies a branch snapshot, mirroring env.mergeFromExcept per
// lane: tainted snapshot lanes join into the current value, untainted ones
// set only where the lane's binding is absent. skip carries per-binding
// kill masks (nil outside switch joins). Like the scalar mergeFromExcept,
// it writes bindings directly and never marks written.
func (fz *Fused) envMergeFrom(e *fenv, snap map[string]fcell, skip map[string]laneMask, act laneMask) {
	for k, sv := range snap {
		apply := act.and(sv.present)
		if skip != nil {
			apply = apply.andNot(skip[k])
		}
		if apply.empty() {
			continue
		}
		tm := sv.v.mask.and(apply)
		cur, ok := e.vars[k]
		if !ok {
			e.vars[k] = fcell{present: apply, v: restrictF(sv.v, apply)}
			continue
		}
		um := apply.andNot(tm).andNot(cur.present)
		if tm.empty() {
			if !um.empty() {
				e.vars[k] = fz.blendCell(cur, sv.v, um)
			}
			continue
		}
		if sv.v.segs == nil && cur.v.segs == nil && tm.eq(apply) && cur.present.eq(apply) {
			// Uniform join across exactly the applied lanes.
			e.vars[k] = fcell{present: apply, v: fuseUniform(join(cur.v.uni, sv.v.uni), apply)}
			continue
		}
		// Group-wise joins: the mask grows by tm (a join with a tainted value
		// is tainted), handled by addV's taint bits.
		b := fvalParts{act: cur.present.or(tm).or(um)}
		b.addF(cur.present.andNot(tm), cur.v)
		sv.v.forEachSeg(tm, func(g laneMask, svv Value) {
			if ab := g.andNot(cur.present); !ab.empty() {
				b.addV(ab, join(Value{}, svv))
			}
			cur.v.forEachSeg(g.and(cur.present), func(g2 laneMask, cv Value) {
				b.addV(g2, join(cv, svv))
			})
		})
		b.addF(um, sv.v)
		e.vars[k] = fcell{present: cur.present.or(tm).or(um), v: b.finish()}
	}
}

// ---------------------------------------------------------------------------
// Regions and blocks
// ---------------------------------------------------------------------------

func (fz *Fused) runRegionF(r *ir.Region, fr *fframe) {
	if r == nil || fz.aborted {
		return
	}
	switch r.Kind {
	case ir.RBasic:
		fz.runBlockF(r.Blk, fr)
	case ir.RSeq:
		for _, k := range r.Kids {
			if fz.aborted {
				return
			}
			fz.runRegionF(k, fr)
		}
	case ir.RIf:
		e := fr.env
		base := copyFcells(e.vars)
		fz.runRegionF(r.Then, fr)
		thenSnap := copyFcells(e.vars)
		e.vars = base
		if r.Else != nil {
			fz.runRegionF(r.Else, fr)
		}
		fz.envMergeFrom(e, thenSnap, nil, fr.act)
	case ir.RLoop2:
		fz.runRegionF(r.Body, fr)
		fz.runRegionF(r.Body, fr)
	case ir.RForLoop:
		fz.runRegionF(r.Body, fr)
		if r.Post != nil && !fz.aborted {
			fz.runBlockF(r.Post, fr)
		}
		fz.runRegionF(r.Body, fr)
	case ir.RSwitch:
		fz.runSwitchF(r, fr)
	}
}

// runSwitchF is the fused counterpart of runSwitch, with the kill set
// computed per lane as mask algebra: a binding's pre-switch taint dies in
// exactly the lanes where every arm overwrote it with an untainted value.
func (fz *Fused) runSwitchF(r *ir.Region, fr *fframe) {
	e := fr.env
	act := fr.act
	base := copyFcells(e.vars)
	savedWritten := e.written
	snaps := make([]map[string]fcell, 0, len(r.Cases))
	writes := make([]map[string]laneMask, 0, len(r.Cases))
	for _, c := range r.Cases {
		e.vars = copyFcells(base)
		e.written = make(map[string]laneMask)
		if c.Cond != nil {
			fz.runBlockF(c.Cond, fr)
		}
		fz.runRegionF(c.Body, fr)
		snaps = append(snaps, copyFcells(e.vars))
		writes = append(writes, e.written)
	}
	e.vars = base
	e.written = savedWritten

	var killed map[string]laneMask
	if r.HasDefault && len(writes) > 0 {
		for k, wrote := range writes[0] {
			for _, w := range writes[1:] {
				wrote = wrote.and(w[k])
				if wrote.empty() {
					break
				}
			}
			cand := wrote.and(e.vars[k].v.mask).and(act)
			if cand.empty() {
				continue
			}
			for _, s := range snaps {
				cand = cand.andNot(s[k].v.mask)
				if cand.empty() {
					break
				}
			}
			if cand.empty() {
				continue
			}
			if killed == nil {
				killed = make(map[string]laneMask)
			}
			killed[k] = cand
		}
	}
	for k, km := range killed {
		cur := e.vars[k]
		allUniform := true
		for _, s := range snaps {
			sc := s[k]
			if sc.v.segs != nil || !km.andNot(sc.present).empty() {
				allUniform = false
				break
			}
		}
		if allUniform && cur.v.segs == nil && cur.present.eq(km) {
			v := snaps[0][k].v.uni
			for _, s := range snaps[1:] {
				v = join(v, s[k].v.uni)
			}
			e.vars[k] = fcell{present: km, v: fuseUniform(v, km)}
			continue
		}
		// Group km by the joint segmentation of every snapshot's cell; each
		// group's join chain runs once and the result is shared by its lanes.
		parts := []laneMask{km}
		for _, s := range snaps {
			parts = refineCell(parts, s[k])
		}
		b := fvalParts{act: cur.present}
		b.addF(cur.present.andNot(km), cur.v)
		for _, p := range parts {
			l := p.first()
			var v Value
			if sc := snaps[0][k]; sc.present.has(l) {
				v = sc.v.get(l)
			}
			for _, s := range snaps[1:] {
				var sv Value
				if sc := s[k]; sc.present.has(l) {
					sv = sc.v.get(l)
				}
				v = join(v, sv)
			}
			b.addV(p, v)
		}
		e.vars[k] = fcell{present: cur.present, v: b.finish()}
	}
	for _, s := range snaps {
		fz.envMergeFrom(e, s, killed, act)
	}
}

func (fz *Fused) runBlockF(b *ir.Block, fr *fframe) {
	if b == nil {
		return
	}
	for i := range b.Instrs {
		if !fz.stepF() {
			return
		}
		fz.runInstrF(&b.Instrs[i], fr)
	}
}

func (fz *Fused) runBlockValueF(b *ir.Block, fr *fframe) fval {
	if b == nil {
		return fval{}
	}
	fz.runBlockF(b, fr)
	return fr.valF(b.Result)
}

// ---------------------------------------------------------------------------
// Fused value operations
// ---------------------------------------------------------------------------

// fmerge is per-lane Value.merge. Uniform inputs merge once on the shared
// Value — the result each lane's isomorphic merge would build.
func (fz *Fused) fmerge(a, b fval, act laneMask) fval {
	if a.segs == nil && b.segs == nil {
		return fuseUniform(a.uni.merge(b.uni), act)
	}
	out := fvalParts{act: act}
	a.forEachSeg(act, func(g laneMask, av Value) {
		b.forEachSeg(g, func(g2 laneMask, bv Value) {
			out.addV(g2, av.merge(bv))
		})
	})
	return out.finish()
}

func (fz *Fused) fmergeAll(args []fval, act laneMask) fval {
	out := fval{}
	for _, v := range args {
		out = fz.fmerge(out, v, act)
	}
	return out
}

// withStep appends a trace step to every tainted lane, copy-on-write so
// stored fvals sharing a segs slice are never mutated. A segment straddling
// the tainted mask splits at the boundary; the in-mask piece gets one
// appended trace (the same append each of its lanes would perform alone).
func (fz *Fused) withStep(v fval, act laneMask, pos token.Position, desc string, node ast.Node) fval {
	tm := v.mask.and(act)
	if tm.empty() {
		return v
	}
	st := Step{Pos: pos, Desc: desc, Node: node}
	if v.segs == nil {
		v.uni.Trace = append(v.uni.Trace, st)
		return v
	}
	segs := make([]fvalSeg, 0, len(v.segs)+1)
	for _, s := range v.segs {
		in := s.m.and(tm)
		if in.empty() {
			segs = append(segs, s)
			continue
		}
		if rest := s.m.andNot(tm); !rest.empty() {
			segs = append(segs, fvalSeg{m: rest, v: s.v})
		}
		sv := s.v
		sv.Trace = append(sv.Trace, st)
		segs = append(segs, fvalSeg{m: in, v: sv})
	}
	v.segs = segs
	return v
}

// refineCell splits parts along a cell's segmentation, with the cell's
// absent lanes forming their own group (they read the zero Value). Parts
// stay disjoint.
func refineCell(parts []laneMask, c fcell) []laneMask {
	out := make([]laneMask, 0, len(parts)+2)
	for _, p := range parts {
		if ab := p.andNot(c.present); !ab.empty() {
			out = append(out, ab)
		}
		c.v.forEachSeg(p.and(c.present), func(g laneMask, _ Value) { out = append(out, g) })
	}
	return out
}

// fvalParts assembles a result value from disjoint lane pieces: fused
// sub-results grafted with addF, single shared Values attached with addV.
// The taint mask accumulates by mask algebra — addF clamps each piece's own
// mask to its lanes, addV uses the Value's taint bit — never by re-deriving
// from stored Values, so restriction-clamped masks stay clamped. finish
// collapses back to a uniform cell when one piece covers every active lane.
type fvalParts struct {
	act  laneMask
	mask laneMask
	segs []fvalSeg
}

// addF grafts v's lanes m into the result.
func (b *fvalParts) addF(m laneMask, v fval) {
	if m.empty() {
		return
	}
	b.mask = b.mask.or(v.mask.and(m))
	v.forEachSeg(m, func(g laneMask, val Value) {
		if !zeroValue(val) {
			b.segs = append(b.segs, fvalSeg{m: g, v: val})
		}
	})
}

// addV attaches one shared Value for the lanes in m.
func (b *fvalParts) addV(m laneMask, val Value) {
	if m.empty() {
		return
	}
	if val.Tainted {
		b.mask = b.mask.or(m)
	}
	if !zeroValue(val) {
		b.segs = append(b.segs, fvalSeg{m: m, v: val})
	}
}

func (b *fvalParts) finish() fval {
	if len(b.segs) == 0 {
		return fval{mask: b.mask}
	}
	if len(b.segs) == 1 && b.act.andNot(b.segs[0].m).empty() {
		return fval{mask: b.mask, uni: b.segs[0].v}
	}
	return fval{mask: b.mask, segs: b.segs}
}

// ---------------------------------------------------------------------------
// Instructions
// ---------------------------------------------------------------------------

func (fz *Fused) runInstrF(ins *ir.Instr, fr *fframe) {
	e := fr.env
	regs := *fr.regs
	switch ins.Op {
	case ir.OpConst:
		regs[ins.Dst] = fval{}
	case ir.OpCopy:
		regs[ins.Dst] = fr.valF(ins.A)
	case ir.OpLoadVar:
		em := fz.epVarMaskFor(ins.Name).and(fr.act)
		if em.empty() {
			regs[ins.Dst] = fz.envGet(e, ins.Name, fr.act)
			break
		}
		ev := fuseUniform(Value{
			Tainted: true,
			Sources: []Source{{Name: "$" + ins.Name, Pos: ins.Pos}},
			Trace:   []Step{{Pos: ins.Pos, Desc: "entry point $" + ins.Name, Node: ins.Node}},
		}, em)
		if em.eq(fr.act) {
			regs[ins.Dst] = ev
		} else {
			rest := fr.act.andNot(em)
			b := fvalParts{act: fr.act}
			b.addF(em, ev)
			b.addF(rest, fz.envGet(e, ins.Name, rest))
			regs[ins.Dst] = b.finish()
		}
	case ir.OpLoadKey:
		regs[ins.Dst] = fz.envGet(e, ins.Name, fr.act)
	case ir.OpIndex:
		regs[ins.Dst] = fz.runIndexF(ins, fr)
	case ir.OpUnion:
		var v fval
		for _, r := range ins.Args {
			v = fz.fmerge(v, fr.valF(r), fr.act)
		}
		regs[ins.Dst] = v
	case ir.OpConcat:
		v := fz.fmerge(fr.valF(ins.A), fr.valF(ins.B), fr.act)
		regs[ins.Dst] = fz.withStep(v, fr.act, ins.Pos, "concatenation", ins.Node)
	case ir.OpInterp:
		var v fval
		for _, r := range ins.Args {
			v = fz.fmerge(v, fr.valF(r), fr.act)
		}
		regs[ins.Dst] = fz.withStep(v, fr.act, ins.Pos, "string interpolation", ins.Node)
	case ir.OpAssign:
		rhs := fr.valF(ins.A)
		var v fval
		switch ins.AKind {
		case ir.AssignAppend:
			if ins.LV != nil && ins.LV.Kind == ir.LVVar {
				v = fz.fmerge(fz.envGet(e, ins.LV.Name, fr.act), rhs, fr.act)
			} else {
				v = rhs
			}
			v = fz.withStep(v, fr.act, ins.Pos, "append assignment", ins.Node)
		case ir.AssignPlain:
			v = fz.withStep(rhs, fr.act, ins.Pos, "assignment", ins.Node)
		default:
			v = fval{}
		}
		fz.assignLVF(ins.LV, v, e, fr.act)
		regs[ins.Dst] = v
	case ir.OpAssignTo:
		fz.assignLVF(ins.LV, fr.valF(ins.A), e, fr.act)
	case ir.OpSetVar:
		if ins.A < 0 {
			fz.envSet(e, ins.Name, fval{}, fr.act)
		} else {
			fz.envSet(e, ins.Name, fr.valF(ins.A), fr.act)
		}
	case ir.OpCall:
		regs[ins.Dst] = fz.runCallF(ins, fr)
	case ir.OpMethodCall:
		regs[ins.Dst] = fz.runMethodCallF(ins, fr)
	case ir.OpStaticCall:
		regs[ins.Dst] = fz.runStaticCallF(ins, fr)
	case ir.OpClosure:
		fz.runClosureF(ins, fr)
	case ir.OpPseudoSink:
		v := fr.valF(ins.A)
		m := fz.fnSinkMaskFor(ins.Name).and(fr.act).and(v.mask)
		m.forEach(func(l int) {
			fz.lanes[l].checkPseudoSink(ins.Name, ins.Node, ins.Expr, v.get(l), ins.Pos)
		})
	case ir.OpNamedSink:
		v := fr.valF(ins.A)
		m := fz.fnSinkMaskFor(ins.Name).and(fr.act).and(v.mask)
		m.forEach(func(l int) {
			fz.lanes[l].checkNamedSink(ins.Name, ins.Node, ins.Expr, v.get(l), -1, ins.Pos)
		})
	case ir.OpReturn:
		fr.ret = fz.fmerge(fr.ret, fr.valF(ins.A), fr.act)
	}
}

// runIndexF mirrors runIndex. When only some lanes treat the base variable
// as an entry point, the base block executes under the narrowed non-entry
// mask (those are the only lanes that evaluate it in scalar runs — step
// charges and environment effects included), then the index block runs for
// everyone.
func (fz *Fused) runIndexF(ins *ir.Instr, fr *fframe) fval {
	act := fr.act
	var em laneMask
	if ins.Name != "" {
		em = fz.epVarMaskFor(ins.Name).and(act)
	}
	if em.empty() {
		v := fz.runBlockValueF(ins.XBlk, fr)
		if ins.IBlk != nil {
			fz.runBlockF(ins.IBlk, fr)
		}
		return v
	}
	epVal := func(m laneMask) fval {
		if ins.Name == "_SERVER" && serverKeySafe(ins.Key) {
			return fval{}
		}
		src := fmt.Sprintf("$%s[%s]", ins.Name, ins.Key)
		return fuseUniform(Value{
			Tainted: true,
			Sources: []Source{{Name: src, Pos: ins.Pos}},
			Trace:   []Step{{Pos: ins.Pos, Desc: "entry point " + src, Node: ins.Node}},
		}, m)
	}
	if em.eq(act) {
		if ins.IBlk != nil {
			fz.runBlockF(ins.IBlk, fr)
		}
		return epVal(act)
	}
	rest := act.andNot(em)
	fr.act = rest
	fz.setMask(rest)
	base := fz.runBlockValueF(ins.XBlk, fr)
	fr.act = act
	fz.setMask(act)
	if ins.IBlk != nil {
		fz.runBlockF(ins.IBlk, fr)
	}
	if fz.aborted {
		return fval{}
	}
	b := fvalParts{act: act}
	b.addF(em, epVal(em))
	b.addF(rest, base)
	return b.finish()
}

// assignLVF writes through a static assignment target, mirroring assignLV
// per lane.
func (fz *Fused) assignLVF(lv *ir.LValue, v fval, e *fenv, act laneMask) {
	if lv == nil {
		return
	}
	switch lv.Kind {
	case ir.LVVar:
		fz.envSet(e, lv.Name, v, act)
	case ir.LVIndex:
		if tm := v.mask.and(act); !tm.empty() {
			fz.envMergeSet(e, lv.Name, v, tm)
		}
	case ir.LVKey:
		if lv.Strong {
			fz.envSet(e, lv.Name, v, act)
		} else {
			if tm := v.mask.and(act); !tm.empty() {
				fz.envMergeSet(e, lv.Name, v, tm)
			}
			if um := act.andNot(v.mask); !um.empty() {
				fz.envSet(e, lv.Name, v, um)
			}
		}
	case ir.LVList:
		for _, k := range lv.Kids {
			fz.assignLVF(k, v, e, act)
		}
	}
}

// assignToF writes a value through an AST assignment target for the lanes
// in m, mirroring the walker's assignTo (used for builtin out-params and
// by-ref writebacks).
func (fz *Fused) assignToF(lhs ast.Expr, v fval, e *fenv, m laneMask) {
	switch t := lhs.(type) {
	case *ast.Variable:
		fz.envSet(e, t.Name, v, m)
	case *ast.IndexExpr:
		if base := rootVar(t.X); base != "" {
			if tm := v.mask.and(m); !tm.empty() {
				fz.envMergeSet(e, base, v, tm)
			}
		}
	case *ast.PropExpr:
		if key := propKey(t); key != "" {
			if tm := v.mask.and(m); !tm.empty() {
				fz.envMergeSet(e, key, v, tm)
			}
			if um := m.andNot(v.mask); !um.empty() {
				fz.envSet(e, key, v, um)
			}
		}
	case *ast.StaticPropExpr:
		key := "::" + strings.ToLower(t.Class) + "::" + t.Name
		fz.envSet(e, key, v, m)
	case *ast.ListExpr:
		for _, item := range t.Items {
			if item != nil {
				fz.assignToF(item, v, e, m)
			}
		}
	case *ast.ArrayLit:
		for _, item := range t.Items {
			fz.assignToF(item.Value, v, e, m)
		}
	}
}

// ---------------------------------------------------------------------------
// Per-name lane masks
// ---------------------------------------------------------------------------

func (fz *Fused) epVarMaskFor(name string) laneMask {
	if m, ok := fz.epVarM[name]; ok {
		return m
	}
	var m laneMask
	for i, a := range fz.lanes {
		if a.isEntryPointVar(name) {
			m = m.with(i)
		}
	}
	fz.epVarM[name] = m
	return m
}

func (fz *Fused) sanMaskFor(name string) laneMask {
	if m, ok := fz.sanM[name]; ok {
		return m
	}
	var m laneMask
	for i, a := range fz.lanes {
		if a.isSanitizer(name) {
			m = m.with(i)
		}
	}
	fz.sanM[name] = m
	return m
}

func (fz *Fused) sanMethMaskFor(name string) laneMask {
	if m, ok := fz.sanMethM[name]; ok {
		return m
	}
	var m laneMask
	for i, a := range fz.lanes {
		if a.class.IsSanitizerMethod(name) {
			m = m.with(i)
		}
	}
	fz.sanMethM[name] = m
	return m
}

func (fz *Fused) epFnMaskFor(name string) laneMask {
	if m, ok := fz.epFnM[name]; ok {
		return m
	}
	var m laneMask
	for i, a := range fz.lanes {
		if a.class.IsEntryPointFunc(name) {
			m = m.with(i)
		}
	}
	fz.epFnM[name] = m
	return m
}

// fnSinkMaskFor indexes lanes with a non-method sink of this name (also
// what pseudo- and named-sink checks match).
func (fz *Fused) fnSinkMaskFor(name string) laneMask {
	if m, ok := fz.fnSinkM[name]; ok {
		return m
	}
	var m laneMask
	for i, a := range fz.lanes {
		for _, s := range a.allSinks() {
			if !s.Method && s.Name == name {
				m = m.with(i)
				break
			}
		}
	}
	fz.fnSinkM[name] = m
	return m
}

func (fz *Fused) methSinkMaskFor(name string) laneMask {
	if m, ok := fz.methSinkM[name]; ok {
		return m
	}
	var m laneMask
	for i, a := range fz.lanes {
		for _, s := range a.allSinks() {
			if s.Method && s.Name == name {
				m = m.with(i)
				break
			}
		}
	}
	fz.methSinkM[name] = m
	return m
}

// ---------------------------------------------------------------------------
// Calls
// ---------------------------------------------------------------------------

// sanitizerValue builds the sanitized result of a plain call: clean, tagged
// with the sanitizer name plus every argument's sanitizer tags (per lane).
// Lanes that agree on every argument share one built Value.
func (fz *Fused) sanitizerValue(name string, args []fval, m laneMask) fval {
	build := func(l int) Value {
		v := clean()
		v.Sanitizers = append(v.Sanitizers, name)
		for _, av := range args {
			v.Sanitizers = append(v.Sanitizers, av.get(l).Sanitizers...)
		}
		return v
	}
	parts := []laneMask{m}
	for _, av := range args {
		parts = refineSegs(parts, av)
	}
	if len(parts) == 1 {
		return fuseUniform(build(m.first()), m)
	}
	b := fvalParts{act: m}
	for _, p := range parts {
		b.addV(p, build(p.first()))
	}
	return b.finish()
}

// checkSinksF runs each masked lane's sink matcher over the call. Lanes
// agreeing on every argument share one materialized []Value.
func (fz *Fused) checkSinksF(m laneMask, name string, method bool, recv string, ins *ir.Instr, args []fval) {
	parts := []laneMask{m}
	for _, av := range args {
		parts = refineSegs(parts, av)
	}
	for _, p := range parts {
		av := make([]Value, len(args))
		l0 := p.first()
		for i, a := range args {
			av[i] = a.get(l0)
		}
		p.forEach(func(l int) {
			fz.lanes[l].checkCallSinks(name, method, recv, ins.Node, ins.ArgExprs, av, ins.Pos)
		})
	}
}

func (fz *Fused) runCallF(ins *ir.Instr, fr *fframe) fval {
	name := ins.Name
	args := make([]fval, len(ins.Args))
	for i, r := range ins.Args {
		args[i] = fr.valF(r)
	}
	e := fr.env
	b := fvalParts{act: fr.act}
	rem := fr.act

	if sm := fz.sanMaskFor(name).and(rem); !sm.empty() {
		b.addF(sm, fz.sanitizerValue(name, args, sm))
		rem = rem.andNot(sm)
		if rem.empty() {
			return b.finish()
		}
	}
	if em := fz.epFnMaskFor(name).and(rem); !em.empty() {
		b.addF(em, fuseUniform(Value{
			Tainted: true,
			Sources: []Source{{Name: name + "()", Pos: ins.Pos}},
			Trace:   []Step{{Pos: ins.Pos, Desc: "entry point " + name + "()", Node: ins.Node}},
		}, em))
		rem = rem.andNot(em)
		if rem.empty() {
			return b.finish()
		}
	}
	if km := fz.fnSinkMaskFor(name).and(rem); !km.empty() {
		fz.checkSinksF(km, name, false, "", ins, args)
	}
	if propagatesTaint(name) {
		v := fz.fmergeAll(args, rem)
		b.addF(rem, fz.withStep(v, rem, ins.Pos, name+"()", ins.Node))
		return b.finish()
	}
	switch name {
	case "preg_match", "preg_match_all":
		if len(ins.ArgExprs) >= 3 && len(args) >= 2 {
			fz.assignToF(ins.ArgExprs[2], args[1], e, rem)
		}
		b.addF(rem, fval{})
		return b.finish()
	case "parse_str":
		if len(ins.ArgExprs) >= 2 && len(args) >= 1 {
			fz.assignToF(ins.ArgExprs[1], args[0], e, rem)
		}
		b.addF(rem, fval{})
		return b.finish()
	case "extract":
		b.addF(rem, fval{})
		return b.finish()
	case "settype":
		if len(ins.ArgExprs) >= 1 {
			fz.assignToF(ins.ArgExprs[0], fval{}, e, rem)
		}
		b.addF(rem, fval{})
		return b.finish()
	}
	if fn := fz.resolveFuncF(name, rem); fn != nil && fn.Body != nil && !fz.disableInlining {
		b.addF(rem, fz.inlineF(fn, ins.ArgExprs, args, ins.Pos, e, rem))
		return b.finish()
	}
	b.addF(rem, fval{})
	return b.finish()
}

func (fz *Fused) runMethodCallF(ins *ir.Instr, fr *fframe) fval {
	recv := fr.valF(ins.A)
	name := ins.Name // lower-cased at lowering time
	args := make([]fval, len(ins.Args))
	for i, r := range ins.Args {
		args[i] = fr.valF(r)
	}
	b := fvalParts{act: fr.act}
	rem := fr.act

	if sm := fz.sanMethMaskFor(name).and(rem); !sm.empty() {
		v := clean()
		v.Sanitizers = append(v.Sanitizers, name)
		b.addF(sm, fuseUniform(v, sm))
		rem = rem.andNot(sm)
		if rem.empty() {
			return b.finish()
		}
	}
	if km := fz.methSinkMaskFor(name).and(rem); !km.empty() {
		fz.checkSinksF(km, name, true, ins.Key, ins, args)
	}
	if m := fz.resolveMethodF(name, rem); m != nil && m.Body != nil && !fz.disableInlining {
		b.addF(rem, fz.inlineF(m, ins.ArgExprs, args, ins.Pos, fr.env, rem))
		return b.finish()
	}
	b.addF(rem, fz.fmerge(recv, fz.fmergeAll(args, rem), rem))
	return b.finish()
}

func (fz *Fused) runStaticCallF(ins *ir.Instr, fr *fframe) fval {
	name := strings.ToLower(ins.Name)
	args := make([]fval, len(ins.Args))
	for i, r := range ins.Args {
		args[i] = fr.valF(r)
	}
	b := fvalParts{act: fr.act}
	rem := fr.act

	if sm := fz.sanMethMaskFor(name).and(rem); !sm.empty() {
		v := clean()
		v.Sanitizers = append(v.Sanitizers, name)
		b.addF(sm, fuseUniform(v, sm))
		rem = rem.andNot(sm)
		if rem.empty() {
			return b.finish()
		}
	}
	if km := fz.methSinkMaskFor(name).and(rem); !km.empty() {
		fz.checkSinksF(km, name, true, strings.ToLower(ins.Key), ins, args)
	}
	// Like the scalar engines, resolved static methods inline regardless of
	// the DisableInlining ablation.
	if m := fz.resolveStaticF(ins.Key, ins.Name, rem); m != nil && m.Body != nil {
		b.addF(rem, fz.inlineF(m, ins.ArgExprs, args, ins.Pos, fr.env, rem))
		return b.finish()
	}
	b.addF(rem, fz.fmergeAll(args, rem))
	return b.finish()
}

func (fz *Fused) runClosureF(ins *ir.Instr, fr *fframe) {
	cf := ins.Closure
	inner := newFenv()
	for _, u := range cf.Uses {
		fz.envSet(inner, u, fz.envGet(fr.env, u, fr.act), fr.act)
	}
	for _, prm := range cf.Params {
		fz.envSet(inner, prm.Name, fval{}, fr.act)
	}
	cfr := fz.newFrame(cf.NumRegs, fr.act)
	cfr.env = inner
	fz.runRegionF(cf.Body, cfr)
	fz.releaseFrame(cfr)
}

// ---------------------------------------------------------------------------
// Resolution (shared lookup, per-lane fill bookkeeping)
// ---------------------------------------------------------------------------

func (fz *Fused) resolveFuncF(name string, m laneMask) *ast.FunctionDecl {
	m.forEach(func(l int) { fz.lanes[l].noteResolution(name) })
	if fz.astFile != nil {
		if fn, ok := fz.astFile.Funcs[name]; ok && fn.Class == nil {
			return fn
		}
	}
	if fz.resolver != nil {
		return fz.resolver.ResolveFunc(name)
	}
	return nil
}

func (fz *Fused) resolveMethodF(name string, m laneMask) *ast.FunctionDecl {
	m.forEach(func(l int) { fz.lanes[l].noteResolution(name) })
	if fz.astFile != nil {
		for _, cls := range fz.astFile.Classes {
			for _, mm := range cls.Methods {
				if strings.ToLower(mm.Name) == name {
					return mm
				}
			}
		}
	}
	if fz.resolver != nil {
		return fz.resolver.ResolveMethod(name)
	}
	return nil
}

func (fz *Fused) resolveStaticF(class, name string, m laneMask) *ast.FunctionDecl {
	m.forEach(func(l int) {
		if a := fz.lanes[l]; a.fill != nil {
			a.fill.impure = true
		}
	})
	key := strings.ToLower(class) + "::" + strings.ToLower(name)
	if fz.astFile != nil {
		if fn, ok := fz.astFile.Funcs[key]; ok {
			return fn
		}
	}
	return fz.resolveMethodF(strings.ToLower(name), m)
}

// ---------------------------------------------------------------------------
// Inlining
// ---------------------------------------------------------------------------

// shareEligibleF mirrors shareEligible for lane l of a fused argument
// vector.
func (fz *Fused) shareEligibleF(a *Analyzer, args []fval, l int) bool {
	if a.cfg.Shared == nil || a.depth != 0 || len(a.analyzing) != 0 || a.fill != nil {
		return false
	}
	for _, v := range args {
		if !zeroValue(v.get(l)) {
			return false
		}
	}
	return true
}

// fenvLane reads one lane's binding from a fused environment, mirroring
// env.get.
func fenvLane(e *fenv, name string, l int) Value {
	if c, ok := e.vars[name]; ok && c.present.has(l) {
		return c.v.get(l)
	}
	return clean()
}

// consumeSharedF mirrors consumeShared for one lane, replaying the entry's
// candidates and by-ref effects into the lane's analyzer and the fused
// caller environment.
func (fz *Fused) consumeSharedF(a *Analyzer, l int, se *sharedEntry, memoKey string, argExprs []ast.Expr, caller *fenv) Value {
	a.sharedHits++
	a.steps += se.steps
	for _, c := range se.cands {
		cc := *c
		cc.File = a.fileName()
		a.report(&cc)
	}
	lm := oneLane(l)
	for _, br := range se.byref {
		if br.idx < len(argExprs) {
			bv := fval{uni: br.val}
			if br.val.Tainted {
				bv.mask = lm
			}
			fz.assignToF(argExprs[br.idx], bv, caller, lm)
		}
	}
	a.summaries[memoKey] = &summary{returnValue: se.ret}
	return se.ret
}

// finishFillF mirrors finishFill for one lane, reading by-ref out-values
// from the fused callee environment.
func (fz *Fused) finishFillF(a *Analyzer, l int, ret Value, fn *ast.FunctionDecl, inner *fenv) {
	fr := a.fill
	a.fill = nil
	if fr == nil || fr.impure {
		return
	}
	e := &sharedEntry{ret: ret, cands: fr.cands, steps: a.steps - fr.stepsStart}
	for i, p := range fn.Params {
		if p.ByRef {
			e.byref = append(e.byref, byrefOut{idx: i, val: fenvLane(inner, p.Name, l)})
		}
	}
	a.pending = append(a.pending, PendingSummary{Key: fr.key, entry: e})
}

// inlineF applies a user function at a call edge for the lanes in rem.
// Memoized and shared summaries resolve per lane; the lanes left over run
// the callee body together under a narrowed mask — one body evaluation no
// matter how many lanes missed.
func (fz *Fused) inlineF(fn *ast.FunctionDecl, argExprs []ast.Expr, args []fval, callPos token.Position, caller *fenv, rem laneMask) fval {
	// Depth, recursion and call-stack state are lockstep across a frame's
	// lanes (they entered the same chain of bodies), so one representative
	// decides the guard for all.
	rep := fz.lanes[rem.first()]
	if rep.depth >= rep.cfg.MaxCallDepth || rep.analyzing[fn] {
		return fz.fmergeAll(args, rem)
	}

	b := fvalParts{act: rem}

	// Lanes that agree on every argument share one memo key: the key is
	// computed once per argument-equal lane group, not once per lane.
	argParts := []laneMask{rem}
	for _, v := range args {
		argParts = refineSegs(argParts, v)
	}
	partKeys := make([]string, len(argParts))
	laneKey := func(l int) string {
		for i, p := range argParts {
			if p.has(l) {
				if partKeys[i] == "" {
					vals := make([]Value, len(args))
					for j, v := range args {
						vals[j] = v.get(l)
					}
					partKeys[i] = memoKey(fn, vals)
				}
				return partKeys[i]
			}
		}
		return "" // unreachable: argParts partition rem
	}
	retStep := func(v Value) Value {
		if v.Tainted {
			v.Trace = append(append([]Step{}, v.Trace...),
				Step{Pos: callPos, Desc: "return from " + fn.Name + "()"})
		}
		return v
	}

	var hitM laneMask
	rem.forEach(func(l int) {
		a := fz.lanes[l]
		if s, ok := a.summaries[laneKey(l)]; ok {
			if a.fill != nil && s.fillID != a.fill.id {
				a.fill.impure = true
			}
			a.transferHits++
			b.addV(oneLane(l), retStep(s.returnValue))
			hitM = hitM.with(l)
		}
	})
	rem2 := rem.andNot(hitM)
	if rem2.empty() {
		return b.finish()
	}

	// Shared-cache consultation reads exact per-lane step counts.
	fz.flush()
	var sharedM, fillM laneMask
	rem2.forEach(func(l int) {
		a := fz.lanes[l]
		if !fz.shareEligibleF(a, args, l) {
			return
		}
		sk := SummaryKey{Class: a.class.ID, Fn: fn, NArgs: len(args)}
		if se := a.sharedLookup(sk); se != nil {
			a.transferHits++
			b.addV(oneLane(l), retStep(fz.consumeSharedF(a, l, se, laneKey(l), argExprs, caller)))
			sharedM = sharedM.with(l)
			return
		}
		a.sharedMisses++
		a.fillSeq++
		a.fill = &fillFrame{key: sk, id: a.fillSeq, stepsStart: a.steps}
		fillM = fillM.with(l)
	})
	fz.syncBase() // shared replays charged per-lane steps

	missM := rem2.andNot(sharedM)
	if missM.empty() {
		return b.finish()
	}

	cf := fz.prov.funcFor(fn)

	prevMask := fz.ctxMask
	prevFunc := fz.lanes[missM.first()].curFunc
	missM.forEach(func(l int) {
		a := fz.lanes[l]
		a.depth++
		a.analyzing[fn] = true
		a.curFunc = fn.Name
	})

	inner := newFenv()
	cfr := fz.newFrame(cf.NumRegs, missM)
	cfr.env = inner
	fz.setMask(missM)
	for i, prm := range cf.Params {
		switch {
		case i < len(args):
			fz.envSet(inner, prm.Name, args[i], missM)
		case prm.Default != nil:
			fz.envSet(inner, prm.Name, fz.runBlockValueF(prm.Default, cfr), missM)
		default:
			fz.envSet(inner, prm.Name, fval{}, missM)
		}
	}
	fz.runRegionF(cf.Body, cfr)
	ret := cfr.ret

	// Propagate by-ref parameter taint back to caller arguments.
	for i, prm := range cf.Params {
		if prm.ByRef && i < len(argExprs) {
			fz.assignToF(argExprs[i], fz.envGet(inner, prm.Name, missM), caller, missM)
		}
	}

	missM.forEach(func(l int) {
		a := fz.lanes[l]
		a.curFunc = prevFunc
		delete(a.analyzing, fn)
		a.depth--
	})
	fz.setMask(prevMask) // flushes body steps into missM lanes

	// Per-lane memo install and fill completion; lanes sharing a return
	// group share one trace-copied result value (a uniform return over the
	// whole call collapses to a single uniform cell).
	missM.forEach(func(l int) {
		a := fz.lanes[l]
		rv := ret.get(l)
		entry := &summary{returnValue: rv}
		if a.fill != nil {
			entry.fillID = a.fill.id
		}
		a.summaries[laneKey(l)] = entry
		if fillM.has(l) {
			fz.finishFillF(a, l, rv, fn, inner)
		}
	})
	if ret.segs == nil && missM.eq(rem) {
		b.addF(rem, fuseUniform(retStep(ret.uni), rem))
	} else {
		ret.forEachSeg(missM, func(g laneMask, rv Value) {
			b.addV(g, retStep(rv))
		})
	}
	fz.releaseFrame(cfr)
	return b.finish()
}
