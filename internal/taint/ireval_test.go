package taint

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/php/parser"
	"repro/internal/vuln"
)

// candDetail renders a candidate with everything the report layer consumes,
// so walker/IR equivalence is checked at full fidelity, not just sink names.
func candDetail(c *Candidate) string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s] %s@%s arg=%d fn=%q file=%q", c.Class, c.SinkName, c.SinkPos, c.ArgIndex, c.EnclosingFunc, c.File)
	for _, s := range c.Value.Sources {
		fmt.Fprintf(&b, " src=%s@%s", s.Name, s.Pos)
	}
	for _, s := range c.Value.Trace {
		fmt.Fprintf(&b, " step=%q@%s", s.Desc, s.Pos)
	}
	for _, s := range c.Value.Sanitizers {
		fmt.Fprintf(&b, " san=%s", s)
	}
	return b.String()
}

func candDetails(cands []*Candidate) []string {
	out := make([]string, len(cands))
	for i, c := range cands {
		out[i] = candDetail(c)
	}
	return out
}

// runBoth analyzes src with the walker and the IR engine under the same
// configuration and returns both candidate listings.
func runBoth(t *testing.T, cfg Config, src string) (legacy, irc []string) {
	t.Helper()
	f, errs := parser.Parse("test.php", src)
	if len(errs) > 0 {
		t.Fatalf("parse errors: %v", errs)
	}
	legacy = candDetails(New(cfg).File(f))
	fir := ir.LowerFile(f)
	irc = candDetails(New(cfg).FileIR(f, fir, nil))
	return legacy, irc
}

func wantSame(t *testing.T, cfg Config, src string) {
	t.Helper()
	legacy, irc := runBoth(t, cfg, src)
	if strings.Join(legacy, "\n") != strings.Join(irc, "\n") {
		t.Errorf("walker/IR divergence:\nwalker:\n  %s\nir:\n  %s",
			strings.Join(legacy, "\n  "), strings.Join(irc, "\n  "))
	}
}

func wantSameAllClasses(t *testing.T, src string) {
	t.Helper()
	for _, cls := range vuln.All() {
		cls := cls
		t.Run(string(cls.ID), func(t *testing.T) {
			wantSame(t, Config{Class: cls}, src)
		})
	}
}

func TestIREquivBasicFlows(t *testing.T) {
	wantSameAllClasses(t, `<?php
$id = $_GET['id'];
$q = "SELECT * FROM users WHERE id=" . $id;
mysql_query($q);
echo $_POST['msg'];
$safe = htmlentities($_GET['x']);
echo $safe;
print $_COOKIE['c'];
$cmd = $_REQUEST['cmd'];
system($cmd);
include($_GET['page']);
exit($_GET['bye']);
$addr = $_SERVER['REMOTE_ADDR'];
echo $addr;
$agent = $_SERVER['HTTP_USER_AGENT'];
echo $agent;`)
}

func TestIREquivBranchesAndLoops(t *testing.T) {
	wantSameAllClasses(t, `<?php
$a = $_GET['a'];
if ($a) { $b = $a; } else { $b = "x"; }
mysql_query($b);
while ($i < 3) { $c = $c . $a; $i++; }
mysql_query($c);
do { $d .= $a; } while ($d);
echo $d;
for ($i = 0; $i < 2; $i++) { $e = $a; }
echo $e;
foreach ($_POST as $k => $v) { echo $v; }
$f = $a ?: "z";
$g = $a ? $a : "w";
echo $f; echo $g;
$h = $a ?? "q";
echo $h;`)
}

func TestIREquivSwitchNoDefault(t *testing.T) {
	// Without a default arm the switch join is identical in both engines.
	wantSameAllClasses(t, `<?php
$x = $_GET['x'];
switch ($x) {
case 1: $y = $x; break;
case 2: $y = "two"; break;
}
mysql_query($y);`)
}

func TestIREquivFunctionsAndSummaries(t *testing.T) {
	wantSameAllClasses(t, `<?php
function wrap($s) { return "[" . $s . "]"; }
function pick($a, $b = "dflt") { return $a . $b; }
function fill(&$out) { $out = $_GET['v']; }
$q = wrap($_GET['id']);
mysql_query($q);
mysql_query(wrap("safe"));
mysql_query(pick($_POST['p']));
fill($z);
mysql_query($z);
function deep($n) { return deep($n); }
echo deep($_GET['r']);`)
}

func TestIREquivClassesAndClosures(t *testing.T) {
	wantSameAllClasses(t, `<?php
class DB {
	function run($q) { mysql_query($q); }
	static function quote($s) { return "'" . $s . "'"; }
}
$db = new DB();
$db->run($_GET['q']);
mysql_query(DB::quote($_GET['w']));
$fn = function ($p) use ($db) { echo $_GET['cl']; };
$fn("x");
$obj->prop = $_GET['pp'];
echo $obj->prop;`)
}

func TestIREquivMiscStatements(t *testing.T) {
	wantSameAllClasses(t, `<?php
$t = $_GET['t'];
try { $u = $t; } catch (Exception $e) { echo $e; } finally { echo $u; }
list($m, $n) = $_POST['arr'];
echo $m;
preg_match('/x/', $t, $mm);
mysql_query($mm);
parse_str($t, $ps);
echo $ps;
$s = sprintf("q=%s", $t);
mysql_query($s);
unset($t);
echo $t;
global $gv;
static $sv = "s";
echo "interp $n done";
$arr = array("k" => $_GET['av']);
mysql_query($arr);
$w = (int)$_GET['cast'];
mysql_query($w);
$x = (string)$_GET['cast2'];
mysql_query($x);`)
}

func TestIREquivStepBudget(t *testing.T) {
	// Budget exhaustion must degrade the same way at matching budgets: the
	// engines charge steps at different granularity (AST node vs IR
	// instruction), so equality is checked per engine pair at a generous
	// budget where both complete.
	src := `<?php
$a = $_GET['a'];
for ($i = 0; $i < 3; $i++) { $b = $b . $a; }
mysql_query($b);`
	wantSame(t, Config{Class: vuln.MustGet(vuln.SQLI), MaxSteps: 100000}, src)
}

// TestIRSwitchDominatingSanitizerKillsFlow pins the one intentional
// precision delta: a sanitizer on every arm of an exhaustive switch kills
// the flow in the IR engine while the walker still reports it.
func TestIRSwitchDominatingSanitizerKillsFlow(t *testing.T) {
	src := `<?php
$id = $_GET['id'];
switch ($mode) {
case "a": $id = intval($id); break;
case "b": $id = intval($id); break;
default: $id = 0; break;
}
mysql_query("SELECT * FROM t WHERE id=" . $id);`
	cfg := Config{Class: vuln.MustGet(vuln.SQLI)}
	legacy, irc := runBoth(t, cfg, src)
	if len(legacy) != 1 {
		t.Fatalf("walker candidates = %d, want 1 (the known false positive)\n%s", len(legacy), strings.Join(legacy, "\n"))
	}
	if len(irc) != 0 {
		t.Fatalf("IR candidates = %d, want 0 (branch-dominated sanitizer)\n%s", len(irc), strings.Join(irc, "\n"))
	}
}

// TestIRSwitchPartialSanitizerKeepsFlow: a sanitizer on only one arm must
// NOT kill the flow in either engine.
func TestIRSwitchPartialSanitizerKeepsFlow(t *testing.T) {
	src := `<?php
$id = $_GET['id'];
switch ($mode) {
case "a": $id = intval($id); break;
default: break;
}
mysql_query("SELECT * FROM t WHERE id=" . $id);`
	cfg := Config{Class: vuln.MustGet(vuln.SQLI)}
	legacy, irc := runBoth(t, cfg, src)
	if len(legacy) != 1 || len(irc) != 1 {
		t.Fatalf("walker=%d ir=%d, want 1/1", len(legacy), len(irc))
	}
}

// TestIRSwitchNoDefaultKeepsFlow: without a default the arm set is not
// exhaustive, so even all-arms sanitization must not kill the flow.
func TestIRSwitchNoDefaultKeepsFlow(t *testing.T) {
	src := `<?php
$id = $_GET['id'];
switch ($mode) {
case "a": $id = intval($id); break;
case "b": $id = intval($id); break;
}
mysql_query("SELECT * FROM t WHERE id=" . $id);`
	cfg := Config{Class: vuln.MustGet(vuln.SQLI)}
	legacy, irc := runBoth(t, cfg, src)
	if len(legacy) != 1 || len(irc) != 1 {
		t.Fatalf("walker=%d ir=%d, want 1/1", len(legacy), len(irc))
	}
}

func TestIRTransferHits(t *testing.T) {
	src := `<?php
function wrap($s) { return "[" . $s . "]"; }
echo wrap("x");
echo wrap("y");`
	f, errs := parser.Parse("test.php", src)
	if len(errs) > 0 {
		t.Fatalf("parse errors: %v", errs)
	}
	a := New(Config{Class: vuln.MustGet(vuln.SQLI)})
	a.FileIR(f, ir.LowerFile(f), nil)
	if a.TransferHits() == 0 {
		t.Fatal("expected at least one summary transfer-function hit")
	}
}
