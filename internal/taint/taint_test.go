package taint

import (
	"strings"
	"testing"

	"repro/internal/php/parser"
	"repro/internal/vuln"
)

// analyze parses src and runs the detector for the given class.
func analyze(t *testing.T, id vuln.ClassID, src string) []*Candidate {
	t.Helper()
	f, errs := parser.Parse("test.php", src)
	if len(errs) > 0 {
		t.Fatalf("parse errors: %v", errs)
	}
	a := New(Config{Class: vuln.MustGet(id)})
	return a.File(f)
}

func analyzeCfg(t *testing.T, cfg Config, src string) []*Candidate {
	t.Helper()
	f, errs := parser.Parse("test.php", src)
	if len(errs) > 0 {
		t.Fatalf("parse errors: %v", errs)
	}
	return New(cfg).File(f)
}

func wantCount(t *testing.T, cands []*Candidate, n int) {
	t.Helper()
	if len(cands) != n {
		var b strings.Builder
		for _, c := range cands {
			b.WriteString("\n  ")
			b.WriteString(c.String())
		}
		t.Fatalf("candidates = %d, want %d%s", len(cands), n, b.String())
	}
}

func TestSQLIDirect(t *testing.T) {
	cands := analyze(t, vuln.SQLI, `<?php
$id = $_GET['id'];
$q = "SELECT * FROM users WHERE id=" . $id;
mysql_query($q);`)
	wantCount(t, cands, 1)
	c := cands[0]
	if c.SinkName != "mysql_query" {
		t.Errorf("sink = %q", c.SinkName)
	}
	if len(c.Value.Sources) == 0 || c.Value.Sources[0].Name != "$_GET[id]" {
		t.Errorf("sources = %+v", c.Value.Sources)
	}
	if c.SinkPos.Line != 4 {
		t.Errorf("sink line = %d, want 4", c.SinkPos.Line)
	}
}

func TestSQLIInterpolated(t *testing.T) {
	cands := analyze(t, vuln.SQLI, `<?php
$id = $_POST['id'];
mysql_query("SELECT * FROM t WHERE id=$id");`)
	wantCount(t, cands, 1)
}

func TestSQLISanitized(t *testing.T) {
	cands := analyze(t, vuln.SQLI, `<?php
$id = mysql_real_escape_string($_GET['id']);
mysql_query("SELECT * FROM t WHERE id='" . $id . "'");`)
	wantCount(t, cands, 0)
}

func TestSQLIIntvalSanitizes(t *testing.T) {
	cands := analyze(t, vuln.SQLI, `<?php
$id = intval($_GET['id']);
mysql_query("SELECT * FROM t WHERE id=" . $id);`)
	wantCount(t, cands, 0)
}

func TestSQLICastSanitizes(t *testing.T) {
	cands := analyze(t, vuln.SQLI, `<?php
$id = (int)$_GET['id'];
mysql_query("SELECT * FROM t WHERE id=" . $id);`)
	wantCount(t, cands, 0)
}

func TestPerClassSanitizerIsolation(t *testing.T) {
	// htmlentities sanitizes for XSS but NOT for SQLI.
	src := `<?php
$x = htmlentities($_GET['x']);
mysql_query("SELECT * FROM t WHERE a='$x'");
echo $x;`
	sqli := analyze(t, vuln.SQLI, src)
	xss := analyze(t, vuln.XSSR, src)
	// htmlentities is unknown to the SQLI detector: it neither sanitizes nor
	// propagates, so WAP-style analysis yields no SQLI candidate either —
	// but the XSS detector must treat it as sanitization.
	wantCount(t, xss, 0)
	_ = sqli
	// And the converse: mysql_real_escape_string must not stop XSS.
	src2 := `<?php
$x = $_GET['x'];
echo $x;`
	wantCount(t, analyze(t, vuln.XSSR, src2), 1)
}

func TestXSSEcho(t *testing.T) {
	cands := analyze(t, vuln.XSSR, `<?php echo $_GET['name'];`)
	wantCount(t, cands, 1)
	if cands[0].SinkName != "echo" {
		t.Errorf("sink = %q", cands[0].SinkName)
	}
}

func TestXSSPrintAndExit(t *testing.T) {
	cands := analyze(t, vuln.XSSR, `<?php
print $_GET['a'];
exit($_GET['b']);
die($_GET['c']);`)
	wantCount(t, cands, 3)
}

func TestXSSSanitized(t *testing.T) {
	cands := analyze(t, vuln.XSSR, `<?php
echo htmlspecialchars($_GET['name']);`)
	wantCount(t, cands, 0)
}

func TestStoredXSSFetch(t *testing.T) {
	cands := analyze(t, vuln.XSSS, `<?php
$res = mysql_query("SELECT * FROM posts");
$row = mysql_fetch_assoc($res);
echo $row['body'];`)
	wantCount(t, cands, 1)
	if cands[0].Value.Sources[0].Name != "mysql_fetch_assoc()" {
		t.Errorf("source = %+v", cands[0].Value.Sources)
	}
}

func TestStoredXSSNotFromGet(t *testing.T) {
	// The stored-XSS class does not use superglobal entry points.
	cands := analyze(t, vuln.XSSS, `<?php echo $_GET['x'];`)
	wantCount(t, cands, 0)
}

func TestRFIInclude(t *testing.T) {
	cands := analyze(t, vuln.RFI, `<?php
$page = $_GET['page'];
include($page . ".php");`)
	wantCount(t, cands, 1)
	if cands[0].SinkName != "include" {
		t.Errorf("sink = %q", cands[0].SinkName)
	}
}

func TestLFIBasenameSanitizes(t *testing.T) {
	cands := analyze(t, vuln.LFI, `<?php
$page = basename($_GET['page']);
include("pages/" . $page . ".php");`)
	wantCount(t, cands, 0)
}

func TestDTPTFileSinks(t *testing.T) {
	cands := analyze(t, vuln.DTPT, `<?php
$f = $_GET['f'];
readfile("/var/data/" . $f);
unlink($f);`)
	wantCount(t, cands, 2)
}

func TestOSCIExecAndBacktick(t *testing.T) {
	cands := analyze(t, vuln.OSCI, `<?php
$d = $_GET['dir'];
system("ls " . $d);
$out = `+"`ls $d`"+`;`)
	wantCount(t, cands, 2)
}

func TestOSCIEscapeshellarg(t *testing.T) {
	cands := analyze(t, vuln.OSCI, `<?php
system("ls " . escapeshellarg($_GET['dir']));`)
	wantCount(t, cands, 0)
}

func TestPHPCIEval(t *testing.T) {
	cands := analyze(t, vuln.PHPCI, `<?php eval($_POST['code']);`)
	wantCount(t, cands, 1)
}

func TestLDAPISink(t *testing.T) {
	cands := analyze(t, vuln.LDAPI, `<?php
$user = $_GET['user'];
$filter = "(uid=" . $user . ")";
ldap_search($conn, "dc=acme", $filter);`)
	wantCount(t, cands, 1)
}

func TestXPathISink(t *testing.T) {
	cands := analyze(t, vuln.XPATHI, `<?php
$name = $_GET['name'];
xpath_eval($ctx, "//user[name='" . $name . "']");`)
	wantCount(t, cands, 1)
}

func TestNoSQLIMethodSinks(t *testing.T) {
	cands := analyze(t, vuln.NOSQLI, `<?php
$u = $_POST['user'];
$coll->find(array("user" => $u));
$coll->findOne(array("user" => $u));`)
	wantCount(t, cands, 2)
}

func TestNoSQLISanitizedPerPaper(t *testing.T) {
	// The paper's NoSQLI weapon uses mysql_real_escape_string as sanitizer.
	cands := analyze(t, vuln.NOSQLI, `<?php
$u = mysql_real_escape_string($_POST['user']);
$coll->find(array("user" => $u));`)
	wantCount(t, cands, 0)
}

func TestHIHeader(t *testing.T) {
	cands := analyze(t, vuln.HI, `<?php
header("Location: " . $_GET['url']);`)
	wantCount(t, cands, 1)
}

func TestEIMail(t *testing.T) {
	cands := analyze(t, vuln.EI, `<?php
mail($_POST['to'], "Subject", $body);`)
	wantCount(t, cands, 1)
}

func TestSFSessionFixation(t *testing.T) {
	cands := analyze(t, vuln.SF, `<?php
session_id($_GET['sid']);
setcookie("sess", $_COOKIE['token']);`)
	wantCount(t, cands, 2)
}

func TestCSFileWrite(t *testing.T) {
	cands := analyze(t, vuln.CS, `<?php
$comment = $_POST['comment'];
file_put_contents("comments.txt", $comment);`)
	wantCount(t, cands, 1)
}

func TestWPSQLIRecvConstraint(t *testing.T) {
	src := `<?php
$id = $_GET['id'];
$wpdb->query("SELECT * FROM wp_posts WHERE ID=" . $id);
$other->query("whatever " . $id);`
	cands := analyze(t, vuln.WPSQLI, src)
	// Only $wpdb->query matches (Recv constraint).
	wantCount(t, cands, 1)
	if cands[0].SinkName != "query" {
		t.Errorf("sink = %q", cands[0].SinkName)
	}
}

func TestWPSQLIPrepareSanitizes(t *testing.T) {
	cands := analyze(t, vuln.WPSQLI, `<?php
$sql = $wpdb->prepare("SELECT * FROM wp_posts WHERE ID=%d", $_GET['id']);
$wpdb->query($sql);`)
	wantCount(t, cands, 0)
}

func TestInterproceduralReturn(t *testing.T) {
	cands := analyze(t, vuln.SQLI, `<?php
function get_id() { return $_GET['id']; }
$q = "SELECT * FROM t WHERE id=" . get_id();
mysql_query($q);`)
	wantCount(t, cands, 1)
}

func TestInterproceduralParam(t *testing.T) {
	cands := analyze(t, vuln.SQLI, `<?php
function run($sql) { mysql_query($sql); }
run("SELECT * FROM t WHERE id=" . $_GET['id']);`)
	wantCount(t, cands, 1)
}

func TestInterproceduralSanitizerFunc(t *testing.T) {
	cands := analyze(t, vuln.SQLI, `<?php
function clean($v) { return mysql_real_escape_string($v); }
mysql_query("SELECT * FROM t WHERE id='" . clean($_GET['id']) . "'");`)
	wantCount(t, cands, 0)
}

func TestInterproceduralChained(t *testing.T) {
	cands := analyze(t, vuln.SQLI, `<?php
function a() { return b(); }
function b() { return $_REQUEST['x']; }
mysql_query("SELECT " . a());`)
	wantCount(t, cands, 1)
}

func TestRecursionTerminates(t *testing.T) {
	cands := analyze(t, vuln.SQLI, `<?php
function r($x) { return r($x . "a"); }
mysql_query(r($_GET['q']));`)
	wantCount(t, cands, 1)
}

func TestByRefParam(t *testing.T) {
	cands := analyze(t, vuln.SQLI, `<?php
function fill(&$out) { $out = $_GET['v']; }
fill($q);
mysql_query($q);`)
	wantCount(t, cands, 1)
}

func TestUncalledFunctionAnalyzed(t *testing.T) {
	// Library files: functions with no call sites are still checked for
	// superglobal-to-sink flows.
	cands := analyze(t, vuln.SQLI, `<?php
function handler() {
  mysql_query("DELETE FROM t WHERE id=" . $_GET['id']);
}`)
	wantCount(t, cands, 1)
}

func TestMethodBodyAnalyzed(t *testing.T) {
	cands := analyze(t, vuln.SQLI, `<?php
class Dao {
  function byId($id) { return mysql_query("SELECT * FROM t WHERE id=$id"); }
}
$d = new Dao();
$d->byId($_GET['id']);`)
	wantCount(t, cands, 1)
}

func TestBranchMerging(t *testing.T) {
	cands := analyze(t, vuln.SQLI, `<?php
if ($_GET['mode'] == 'a') { $q = "SELECT 1"; }
else { $q = "SELECT " . $_GET['x']; }
mysql_query($q);`)
	wantCount(t, cands, 1)
}

func TestBranchBothClean(t *testing.T) {
	cands := analyze(t, vuln.SQLI, `<?php
if ($x) { $q = "SELECT 1"; } else { $q = "SELECT 2"; }
mysql_query($q);`)
	wantCount(t, cands, 0)
}

func TestForeachPropagation(t *testing.T) {
	cands := analyze(t, vuln.SQLI, `<?php
foreach ($_POST as $k => $v) {
  mysql_query("UPDATE t SET $k='$v'");
}`)
	wantCount(t, cands, 1)
}

func TestLoopCarriedTaint(t *testing.T) {
	cands := analyze(t, vuln.SQLI, `<?php
$q = "SELECT * FROM t WHERE 1";
for ($i = 0; $i < 2; $i++) {
  mysql_query($q);
  $q = $q . " AND c=" . $_GET['c'];
}`)
	// Second loop pass must see the taint introduced at the bottom.
	wantCount(t, cands, 1)
}

func TestCompoundAppendAssign(t *testing.T) {
	cands := analyze(t, vuln.SQLI, `<?php
$q = "SELECT * FROM t WHERE 1 ";
$q .= "AND name='" . $_GET['n'] . "'";
mysql_query($q);`)
	wantCount(t, cands, 1)
}

func TestArithmeticNeutralizes(t *testing.T) {
	cands := analyze(t, vuln.SQLI, `<?php
$n = $_GET['n'] + 0;
mysql_query("SELECT * FROM t LIMIT " . $n);`)
	wantCount(t, cands, 0)
}

func TestTernaryBothBranches(t *testing.T) {
	cands := analyze(t, vuln.SQLI, `<?php
$v = isset($_GET['v']) ? $_GET['v'] : 'default';
mysql_query("SELECT " . $v);`)
	wantCount(t, cands, 1)
}

func TestArrayElementTaint(t *testing.T) {
	cands := analyze(t, vuln.SQLI, `<?php
$params = array();
$params['id'] = $_GET['id'];
mysql_query("SELECT * FROM t WHERE id=" . $params['id']);`)
	wantCount(t, cands, 1)
}

func TestPropertyTaint(t *testing.T) {
	cands := analyze(t, vuln.SQLI, `<?php
$req->id = $_GET['id'];
mysql_query("SELECT * FROM t WHERE id=" . $req->id);`)
	wantCount(t, cands, 1)
}

func TestStringFunctionsPropagate(t *testing.T) {
	cands := analyze(t, vuln.SQLI, `<?php
$id = trim(substr($_GET['id'], 0, 10));
mysql_query("SELECT * FROM t WHERE id=" . $id);`)
	wantCount(t, cands, 1)
}

func TestSprintfPropagates(t *testing.T) {
	cands := analyze(t, vuln.SQLI, `<?php
$q = sprintf("SELECT * FROM t WHERE name='%s'", $_POST['name']);
mysql_query($q);`)
	wantCount(t, cands, 1)
}

func TestUnsetClears(t *testing.T) {
	cands := analyze(t, vuln.SQLI, `<?php
$id = $_GET['id'];
unset($id);
mysql_query("SELECT " . $id);`)
	wantCount(t, cands, 0)
}

func TestExtraSanitizerConfig(t *testing.T) {
	// Paper Section V-A: feeding WAPe the application's own "escape"
	// function removes the false candidates.
	src := `<?php
$v = escape($_GET['v']);
mysql_query("SELECT * FROM t WHERE a='" . $v . "'");`
	base := analyze(t, vuln.SQLI, src)
	wantCount(t, base, 0) // unknown function doesn't propagate anyway
	withSan := analyzeCfg(t, Config{
		Class:           vuln.MustGet(vuln.SQLI),
		ExtraSanitizers: []string{"escape"},
	}, src)
	wantCount(t, withSan, 0)
	// But when the user function is defined and passes data through,
	// the difference matters.
	src2 := `<?php
function escape($v) { return str_replace("'", "''", $v); }
$v = escape($_GET['v']);
mysql_query("SELECT * FROM t WHERE a='" . $v . "'");`
	noSan := analyze(t, vuln.SQLI, src2)
	wantCount(t, noSan, 1)
	withSan2 := analyzeCfg(t, Config{
		Class:           vuln.MustGet(vuln.SQLI),
		ExtraSanitizers: []string{"escape"},
	}, src2)
	wantCount(t, withSan2, 0)
}

func TestExtraEntryPoints(t *testing.T) {
	src := `<?php mysql_query("SELECT " . $_CUSTOM['q']);`
	wantCount(t, analyze(t, vuln.SQLI, src), 0)
	cands := analyzeCfg(t, Config{
		Class:            vuln.MustGet(vuln.SQLI),
		ExtraEntryPoints: []string{"_CUSTOM"},
	}, src)
	wantCount(t, cands, 1)
}

func TestExtraSinks(t *testing.T) {
	src := `<?php my_db_exec("DELETE FROM t WHERE id=" . $_GET['id']);`
	wantCount(t, analyze(t, vuln.SQLI, src), 0)
	cands := analyzeCfg(t, Config{
		Class:      vuln.MustGet(vuln.SQLI),
		ExtraSinks: []vuln.Sink{{Name: "my_db_exec", Args: []int{0}}},
	}, src)
	wantCount(t, cands, 1)
}

func TestDedup(t *testing.T) {
	// The same sink reached twice with the same taint reports once.
	cands := analyze(t, vuln.XSSR, `<?php
function show($v) { echo $v; }
show($_GET['a']);
show($_GET['b']);`)
	wantCount(t, cands, 1)
}

func TestTraceRecorded(t *testing.T) {
	cands := analyze(t, vuln.SQLI, `<?php
$id = $_GET['id'];
$q = "SELECT * FROM t WHERE id=" . $id;
mysql_query($q);`)
	wantCount(t, cands, 1)
	tr := cands[0].Value.Trace
	if len(tr) < 2 {
		t.Fatalf("trace too short: %+v", tr)
	}
	if !strings.Contains(tr[0].Desc, "entry point") {
		t.Errorf("first step = %+v", tr[0])
	}
}

func TestPregMatchOutParam(t *testing.T) {
	cands := analyze(t, vuln.SQLI, `<?php
preg_match('/(\d+)/', $_GET['id'], $m);
mysql_query("SELECT * FROM t WHERE id=" . $m[1]);`)
	// Matches derive from tainted subject: still a candidate (the FP
	// predictor later sees the preg_match symptom).
	wantCount(t, cands, 1)
}

func TestValidationDoesNotSanitize(t *testing.T) {
	// is_numeric checks are validation, not sanitization: the taint
	// analyzer must still flag (candidate FP for the ML stage).
	cands := analyze(t, vuln.SQLI, `<?php
$id = $_GET['id'];
if (is_numeric($id)) {
  mysql_query("SELECT * FROM t WHERE id=" . $id);
}`)
	wantCount(t, cands, 1)
}

func TestMultipleSourcesMerged(t *testing.T) {
	cands := analyze(t, vuln.SQLI, `<?php
$q = "SELECT * FROM t WHERE a='" . $_GET['a'] . "' AND b='" . $_POST['b'] . "'";
mysql_query($q);`)
	wantCount(t, cands, 1)
	if len(cands[0].Value.Sources) != 2 {
		t.Errorf("sources = %+v", cands[0].Value.Sources)
	}
}

func TestCleanFileNoCandidates(t *testing.T) {
	for _, id := range []vuln.ClassID{vuln.SQLI, vuln.XSSR, vuln.OSCI, vuln.RFI} {
		cands := analyze(t, id, `<?php
$name = "static";
mysql_query("SELECT * FROM t WHERE name='" . $name . "'");
echo htmlspecialchars($name);
include "fixed.php";
system("ls /tmp");`)
		wantCount(t, cands, 0)
	}
}
