package vuln

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 17 {
		t.Fatalf("classes = %d, want 17 (15 WAPe + stored XSS split + wpsqli)", len(all))
	}
	seen := map[ClassID]bool{}
	for _, c := range all {
		if seen[c.ID] {
			t.Errorf("duplicate class %s", c.ID)
		}
		seen[c.ID] = true
		if c.Name == "" || c.Description == "" {
			t.Errorf("%s: missing metadata", c.ID)
		}
		if len(c.Sinks) == 0 {
			t.Errorf("%s: no sinks", c.ID)
		}
		if c.FixID == "" {
			t.Errorf("%s: no fix", c.ID)
		}
		if c.Submodule < SubRCEFileInjection || c.Submodule > SubGenerated {
			t.Errorf("%s: bad submodule %v", c.ID, c.Submodule)
		}
	}
}

func TestOriginalVsWAPeSets(t *testing.T) {
	orig := Original()
	if len(orig) != 9 { // 8 paper classes with XSS split in two
		t.Errorf("original classes = %d", len(orig))
	}
	for _, c := range orig {
		if c.New {
			t.Errorf("original class %s marked New", c.ID)
		}
	}
	wape := WAPe()
	if len(wape) != 16 {
		t.Errorf("WAPe classes = %d", len(wape))
	}
	newOnes := NewClasses()
	for _, c := range newOnes {
		if !c.New {
			t.Errorf("NewClasses returned old class %s", c.ID)
		}
	}
	// The seven new classes of the paper (+wpsqli weapon).
	ids := map[ClassID]bool{}
	for _, c := range newOnes {
		ids[c.ID] = true
	}
	for _, want := range []ClassID{LDAPI, XPATHI, NOSQLI, CS, HI, EI, SF, WPSQLI} {
		if !ids[want] {
			t.Errorf("new class %s missing", want)
		}
	}
}

func TestTable4Sinks(t *testing.T) {
	// The exact sinks of paper Table IV.
	cases := map[ClassID][]string{
		SF:     {"setcookie", "setrawcookie", "session_id"},
		LDAPI:  {"ldap_add", "ldap_delete", "ldap_list", "ldap_read", "ldap_search"},
		XPATHI: {"xpath_eval", "xptr_eval", "xpath_eval_expression"},
		CS:     {"file_put_contents", "file_get_contents"},
	}
	for id, wantSinks := range cases {
		c := MustGet(id)
		have := map[string]bool{}
		for _, s := range c.Sinks {
			have[s.Name] = true
		}
		for _, w := range wantSinks {
			if !have[w] {
				t.Errorf("%s: missing Table IV sink %q", id, w)
			}
		}
	}
}

func TestNoSQLIWeaponConfig(t *testing.T) {
	// Section IV-C.1: the weapon's exact ss and san.
	c := MustGet(NOSQLI)
	wantSinks := []string{"find", "findone", "findandmodify", "insert", "remove", "save", "execute"}
	have := map[string]bool{}
	for _, s := range c.Sinks {
		if !s.Method {
			t.Errorf("nosqli sink %s should be a method sink", s.Name)
		}
		have[s.Name] = true
	}
	for _, w := range wantSinks {
		if !have[w] {
			t.Errorf("missing nosqli sink %q", w)
		}
	}
	if !c.IsSanitizer("mysql_real_escape_string") {
		t.Error("the paper's (curious) sanitizer choice must be honored")
	}
}

func TestSanitizerLookup(t *testing.T) {
	sqli := MustGet(SQLI)
	if !sqli.IsSanitizer("mysql_real_escape_string") {
		t.Error("class sanitizer not found")
	}
	if !sqli.IsSanitizer("intval") {
		t.Error("universal sanitizer not found")
	}
	if sqli.IsSanitizer("htmlentities") {
		t.Error("XSS sanitizer must not sanitize SQLI")
	}
	if !sqli.IsSanitizerMethod("prepare") {
		t.Error("prepare method missing")
	}
	if sqli.IsSanitizerMethod("find") {
		t.Error("find is not a sanitizer method")
	}
}

func TestEntryPoints(t *testing.T) {
	sqli := MustGet(SQLI)
	for _, ep := range []string{"_GET", "_POST", "_COOKIE", "_REQUEST", "_SERVER"} {
		if !sqli.IsEntryPointVar(ep) {
			t.Errorf("default entry point %s missing", ep)
		}
	}
	if sqli.IsEntryPointVar("myvar") {
		t.Error("ordinary variables are not entry points")
	}
	// Stored XSS overrides entry points: superglobals are NOT sources.
	xsss := MustGet(XSSS)
	if xsss.IsEntryPointVar("_GET") {
		t.Error("stored XSS must not use superglobal entry points")
	}
	if !xsss.IsEntryPointFunc("mysql_fetch_assoc") {
		t.Error("stored XSS fetch source missing")
	}
}

func TestWPSQLIRecvConstraints(t *testing.T) {
	c := MustGet(WPSQLI)
	for _, s := range c.Sinks {
		if s.Recv != "wpdb" {
			t.Errorf("wpsqli sink %s must be constrained to $wpdb", s.Name)
		}
	}
}

func TestGetAndMustGet(t *testing.T) {
	if Get("nope") != nil {
		t.Error("unknown class should return nil")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustGet should panic on unknown class")
		}
	}()
	MustGet("nope")
}

func TestFlagAndString(t *testing.T) {
	c := MustGet(NOSQLI)
	if c.Flag() != "-nosqli" {
		t.Errorf("flag = %q", c.Flag())
	}
	if !strings.Contains(c.String(), "NOSQLI") {
		t.Errorf("string = %q", c.String())
	}
	if !strings.Contains(SubQueryInjection.String(), "query") {
		t.Errorf("submodule = %q", SubQueryInjection.String())
	}
}

func TestSubmoduleAssignments(t *testing.T) {
	// Fig. 2 / Table IV sub-module placement.
	cases := map[ClassID]Submodule{
		SQLI: SubQueryInjection, LDAPI: SubQueryInjection, XPATHI: SubQueryInjection,
		XSSR: SubClientSide, XSSS: SubClientSide, CS: SubClientSide,
		RFI: SubRCEFileInjection, LFI: SubRCEFileInjection, DTPT: SubRCEFileInjection,
		OSCI: SubRCEFileInjection, SCD: SubRCEFileInjection, PHPCI: SubRCEFileInjection,
		SF:     SubRCEFileInjection,
		NOSQLI: SubGenerated, HI: SubGenerated, EI: SubGenerated, WPSQLI: SubGenerated,
	}
	for id, want := range cases {
		if got := MustGet(id).Submodule; got != want {
			t.Errorf("%s submodule = %v, want %v", id, got, want)
		}
	}
}
