package atomicfile

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileCreatesWithContentAndMode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.php")
	if err := WriteFile(path, []byte("<?php echo 1;"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "<?php echo 1;" {
		t.Errorf("content = %q", got)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode().Perm() != 0o644 {
		t.Errorf("mode = %v, want 0644", info.Mode().Perm())
	}
}

func TestWriteFileReplacesExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.php")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, []byte("new contents"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "new contents" {
		t.Errorf("content = %q", got)
	}
}

// TestWriteFileFailureLeavesTargetIntact points the write at a missing
// directory and asserts the original file (in a good directory) survives a
// failed sibling write; and that a failure never leaves temp litter behind.
func TestWriteFileFailureLeavesTargetIntact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "keep.php")
	if err := os.WriteFile(path, []byte("precious"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A write into a nonexistent directory fails up front.
	bad := filepath.Join(dir, "missing", "out.php")
	if err := WriteFile(bad, []byte("x"), 0o644); err == nil {
		t.Fatal("write into missing directory succeeded")
	}
	got, _ := os.ReadFile(path)
	if string(got) != "precious" {
		t.Errorf("unrelated file changed: %q", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("temp litter left behind: %s", e.Name())
		}
	}
}
