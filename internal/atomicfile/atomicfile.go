// Package atomicfile writes files atomically. Data lands in a temporary
// file in the destination directory and is renamed over the target, so a
// crash mid-write can only ever leave a stray temp file behind — never a
// truncated artifact. The corrector uses it for fixed copies of user PHP
// sources and the scan service for persisted report artifacts.
package atomicfile

import (
	"os"
	"path/filepath"
)

// WriteFile writes data to path atomically: a temp file in path's directory
// receives the bytes, is synced and closed, and is renamed over path. The
// rename is atomic on POSIX filesystems; on any error the temp file is
// removed and the previous contents of path are untouched.
func WriteFile(path string, data []byte, perm os.FileMode) (err error) {
	return writeFile(path, data, perm, true)
}

// WriteFileNoSync is WriteFile without the pre-rename fsync. Readers still
// never observe a torn file (temp + rename), but after a power failure the
// target may come back empty or stale. Use it only for artifacts that are
// safe to lose and rebuild — caches, not user data.
func WriteFileNoSync(path string, data []byte, perm os.FileMode) (err error) {
	return writeFile(path, data, perm, false)
}

func writeFile(path string, data []byte, perm os.FileMode, sync bool) (err error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, "."+base+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmpName)
		}
	}()
	if _, err = tmp.Write(data); err != nil {
		return err
	}
	// CreateTemp opens 0600; match the caller's requested mode before the
	// file becomes visible under its final name.
	if err = tmp.Chmod(perm); err != nil {
		return err
	}
	if sync {
		if err = tmp.Sync(); err != nil {
			return err
		}
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmpName, path)
}
