// Package corpus generates the synthetic evaluation workload that stands in
// for the paper's proprietary corpus (54 real web-application packages and
// 115 WordPress plugins). Applications are generated deterministically from
// a seed, with planted flows of three kinds per vulnerability class:
//
//   - vulnerable: an entry point reaches a sink unsanitized (ground truth:
//     real vulnerability);
//   - safe: the flow is properly sanitized (the analyzer must stay silent);
//   - fp: the flow is validated in ways the taint analyzer cannot see, so a
//     candidate is reported whose ground truth is "false positive". FP
//     spots come in three flavours mirroring the paper's Table VI dynamics:
//     guarded by original-WAP symptoms (both tool versions should predict
//     them), guarded by symptoms only the new version knows (only WAPe
//     should predict them), and sanitized by custom application functions
//     (neither predicts them — the residual FP column).
//
// Ground truth is recorded per planted spot so the benchmark harness can
// score detection and prediction exactly.
package corpus

import (
	"fmt"
	"sort"
)

// Group is a vulnerability reporting group, matching the paper's table
// columns (RFI/LFI/DT are lumped as "Files"; HI covers header and email
// injection; SQLI covers the native and the WordPress weapon detectors).
type Group string

// groupOrder is the deterministic iteration order for generation.
var groupOrder = []Group{
	GroupSQLI, GroupXSS, GroupFiles, GroupSCD, GroupOSCI, GroupPHPCI,
	GroupLDAPI, GroupXPathI, GroupNoSQLI, GroupCS, GroupHI, GroupSF,
}

// Reporting groups.
const (
	GroupSQLI   Group = "SQLI"
	GroupXSS    Group = "XSS"
	GroupFiles  Group = "Files"
	GroupSCD    Group = "SCD"
	GroupOSCI   Group = "OSCI"
	GroupPHPCI  Group = "PHPCI"
	GroupLDAPI  Group = "LDAPI"
	GroupXPathI Group = "XPathI"
	GroupNoSQLI Group = "NoSQLI"
	GroupCS     Group = "CS"
	GroupHI     Group = "HI"
	GroupSF     Group = "SF"
)

// FPKind distinguishes the planted false-positive flavours.
type FPKind int

// FP flavours.
const (
	// FPNone marks spots that are real vulnerabilities.
	FPNone FPKind = iota
	// FPOriginalSymptoms is guarded by symptoms WAP v2.1 already knew
	// (isset, is_numeric, preg_match): both versions should predict it.
	FPOriginalSymptoms
	// FPNewSymptoms is guarded only by symptoms added in the new version
	// (empty, is_integer, preg_match_all): only WAPe should predict it.
	FPNewSymptoms
	// FPCustomSanitizer is cleaned by an application-specific function the
	// tool does not know: neither version predicts it (residual FP).
	FPCustomSanitizer
)

// Spot is one planted flow with its ground truth.
type Spot struct {
	Group Group
	File  string
	// StartLine and EndLine delimit the snippet within the file, so
	// detector findings can be matched back to their ground truth.
	StartLine int
	EndLine   int
	// Vulnerable is true when the spot is a real vulnerability; false means
	// the detector will flag it but it is a false positive.
	Vulnerable bool
	// FP describes the false-positive flavour (FPNone when Vulnerable).
	FP FPKind
}

// Contains reports whether a finding at the given file/line belongs to this
// spot.
func (s Spot) Contains(file string, line int) bool {
	return s.File == file && line >= s.StartLine && line <= s.EndLine
}

// App is one generated application with ground truth.
type App struct {
	Name    string
	Version string
	Files   map[string]string
	Spots   []Spot
}

// NumFiles returns the file count.
func (a *App) NumFiles() int { return len(a.Files) }

// TotalLines counts lines across all files.
func (a *App) TotalLines() int {
	total := 0
	for _, src := range a.Files {
		total += countLines(src)
	}
	return total
}

// VulnerableSpots returns the planted real vulnerabilities.
func (a *App) VulnerableSpots() []Spot {
	var out []Spot
	for _, s := range a.Spots {
		if s.Vulnerable {
			out = append(out, s)
		}
	}
	return out
}

// FPSpots returns the planted false-positive flows.
func (a *App) FPSpots() []Spot {
	var out []Spot
	for _, s := range a.Spots {
		if !s.Vulnerable {
			out = append(out, s)
		}
	}
	return out
}

// TruthByGroup tallies planted real vulnerabilities per group.
func (a *App) TruthByGroup() map[Group]int {
	out := make(map[Group]int)
	for _, s := range a.VulnerableSpots() {
		out[s.Group]++
	}
	return out
}

// SortedPaths returns file paths in deterministic order.
func (a *App) SortedPaths() []string {
	paths := make([]string, 0, len(a.Files))
	for p := range a.Files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}

func countLines(s string) int {
	n := 1
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			n++
		}
	}
	return n
}

// Plugin is a generated WordPress plugin with marketplace metadata used by
// the Fig. 4 histograms.
type Plugin struct {
	App
	// Downloads is the total download count.
	Downloads int
	// ActiveInstalls is the number of sites with the plugin active.
	ActiveInstalls int
	// Tag is the plugin directory tag (arts, food, shopping, ...).
	Tag string
	// KnownCVE marks the plugins whose vulnerabilities were already
	// registered in CVE (5 of the 115, per the paper).
	KnownCVE bool
}

// spotKey renders a stable identifier for error messages.
func (s Spot) String() string {
	kind := "vuln"
	if !s.Vulnerable {
		kind = fmt.Sprintf("fp(%d)", int(s.FP))
	}
	return fmt.Sprintf("%s %s in %s", kind, s.Group, s.File)
}
