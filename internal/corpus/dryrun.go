package corpus

import (
	"fmt"
	"strings"

	"repro/internal/vuln"
	"repro/internal/weapon"
)

// GroupDryRun marks spots planted by DryRunApp. Dry-run apps are proof
// workloads for a single candidate weapon, not part of the benchmark
// corpus, so they do not belong to any paper reporting group.
const GroupDryRun Group = "DryRun"

// DryRunApp generates the validation workload for one weapon spec: for
// every sensitive sink it plants a vulnerable flow (entry point reaches
// the sink unsanitized — the weapon MUST report it) and, when the spec
// declares sanitizers, a sanitized flow (the weapon must stay silent).
// The app is pure data derived from the spec, so validating an uploaded
// weapon needs no hand-written ground truth: a weapon that cannot find
// its own planted flows, or that flags its own sanitized flows, is
// rejected before it ever touches a real scan.
func DryRunApp(spec *weapon.Spec) *App {
	app := &App{
		Name:    "dryrun-" + strings.ToLower(spec.Name),
		Version: "0",
		Files:   map[string]string{},
	}
	var b strings.Builder
	b.WriteString("<?php\n// dry-run proof app for weapon " + spec.Name + "\n")
	line := 2 // 1-based; the next WriteString starts on line 3

	const file = "dryrun.php"
	emit := func(snippet string, vulnerable bool) {
		start := line + 1
		b.WriteString(snippet)
		if !strings.HasSuffix(snippet, "\n") {
			b.WriteString("\n")
		}
		line = start + strings.Count(strings.TrimSuffix(snippet, "\n"), "\n")
		if vulnerable {
			app.Spots = append(app.Spots, Spot{
				Group:      GroupDryRun,
				File:       file,
				StartLine:  start,
				EndLine:    line,
				Vulnerable: true,
			})
		}
		b.WriteString("\n")
		line++
	}

	san := ""
	if len(spec.Sanitizers) > 0 {
		san = strings.ToLower(spec.Sanitizers[0])
	}
	for i, s := range spec.Sinks {
		// Vulnerable: tainted superglobal straight into the sink.
		emit(fmt.Sprintf("$taint%d = $_GET['p%d'];\n%s", i, i, sinkCall(s, i, fmt.Sprintf("$taint%d", i))), true)
		if san != "" {
			// Sanitized: the same flow through the spec's first sanitizer
			// must not be flagged.
			emit(fmt.Sprintf("$clean%d = %s($_GET['q%d']);\n%s", i, san, i, sinkCall(s, i, fmt.Sprintf("$clean%d", i))), false)
		}
	}
	app.Files[file] = b.String()
	return app
}

// sinkCall renders one call of the sink with the given expression in a
// tainted argument position.
func sinkCall(s vuln.Sink, n int, taintedArg string) string {
	// Place the tainted value at the first declared sensitive argument
	// (any position when the sink declares none), padding earlier
	// positions with harmless literals.
	pos := 0
	if len(s.Args) > 0 {
		pos = s.Args[0]
	}
	args := make([]string, pos+1)
	for i := 0; i < pos; i++ {
		args[i] = fmt.Sprintf("\"arg%d\"", i)
	}
	args[pos] = "\"x\" . " + taintedArg
	call := fmt.Sprintf("%s(%s);", s.Name, strings.Join(args, ", "))
	if s.Method {
		recv := s.Recv
		if recv == "" {
			recv = fmt.Sprintf("obj%d", n)
		}
		call = fmt.Sprintf("$%s->%s", recv, call)
	}
	return call
}
