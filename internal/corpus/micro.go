package corpus

import (
	"fmt"
	"math/rand"
)

// MicroSuite generates one small application per reporting group, covering
// every vulnerability class the tool detects — including the classes the
// paper's evaluation corpus never triggered (OSCI, PHPCI, XPathI, NoSQLI).
// Each app plants `perClass` vulnerable flows, safe flows, and (for the
// groups with guard templates) false-positive flows. Used by the
// all-classes coverage test and benchmark.
func MicroSuite(seed int64, perClass int) []*App {
	if perClass <= 0 {
		perClass = 3
	}
	rng := rand.New(rand.NewSource(seed + 15))
	groups := []Group{
		GroupSQLI, GroupXSS, GroupFiles, GroupSCD, GroupOSCI, GroupPHPCI,
		GroupLDAPI, GroupXPathI, GroupNoSQLI, GroupCS, GroupHI, GroupSF,
	}
	// The groups fpSnippet has guard templates for.
	fpAble := map[Group]bool{GroupSQLI: true, GroupXSS: true, GroupFiles: true, GroupHI: true}

	apps := make([]*App, 0, len(groups))
	for _, g := range groups {
		row := appRow{
			name:    fmt.Sprintf("micro-%s", g),
			version: "1.0",
			vulns:   map[Group]int{g: perClass},
			files:   2,
		}
		if fpAble[g] {
			row.fpOrig = 1
		}
		apps = append(apps, generateApp(row, rng, false))
	}
	return apps
}

// LargeApp generates a filler-heavy application of roughly nFiles files with
// snippetsPerFile clean snippets each — the capacity workload used to
// benchmark throughput against the paper's 2-MLoC corpus (Play_sms alone was
// 248,875 lines). A handful of vulnerabilities are planted so the full
// pipeline (detection, extraction, prediction) runs end to end.
func LargeApp(seed int64, nFiles, snippetsPerFile int) *App {
	rng := rand.New(rand.NewSource(seed + 248875))
	app := &App{Name: "large-app", Version: "1.0", Files: make(map[string]string, nFiles+1)}
	id := 0
	for fi := 0; fi < nFiles; fi++ {
		fb := newFileBuilder()
		fb.add(fillerHTML(fmt.Sprintf("large page %d", fi)))
		fb.add("<?php")
		for s := 0; s < snippetsPerFile; s++ {
			id++
			switch s % 3 {
			case 0:
				fb.add(fillerFunc(id, rng))
			default:
				fb.add(safeSnippet(safeGroupFor(rng), id, rng.Intn(2)))
			}
		}
		// One planted vulnerability every few files keeps the pipeline hot.
		if fi%7 == 0 {
			id++
			start, end := fb.add(vulnSnippet(GroupSQLI, id, rng.Intn(3)))
			app.Spots = append(app.Spots, Spot{
				Group: GroupSQLI, File: largePageName(fi),
				StartLine: start, EndLine: end, Vulnerable: true,
			})
		}
		fb.add("?>")
		fb.add(fillerHTML("footer"))
		app.Files[largePageName(fi)] = fb.String()
	}
	return app
}

func largePageName(i int) string { return fmt.Sprintf("modules/mod_%03d.php", i) }
