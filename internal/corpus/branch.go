package corpus

// GroupBranch marks spots planted by BranchSanitizerApp. Like dry-run apps
// they are engine proof workloads, not part of the paper's benchmark corpus.
const GroupBranch Group = "Branch"

// BranchSanitizerApp generates the branch-sensitivity proof workload: flows
// whose verdict depends on whether a sanitizer dominates every path to the
// sink.
//
//   - kill.php sanitizes on every arm of an exhaustive switch (a default arm
//     is present): the flow is dead, but the legacy AST walker's
//     order-insensitive join still reports it. The IR engine's CFG join
//     kills it — the known false positive the IR migration removes, pinned
//     by the differential harness's golden delta file.
//   - keep.php sanitizes on only one arm, and also uses an all-arms
//     sanitizer under a switch WITHOUT a default: both flows are live and
//     both engines must report them.
func BranchSanitizerApp() *App {
	return &App{
		Name:    "branch-sanitizer",
		Version: "0",
		Files: map[string]string{
			"kill.php": `<?php
// Every arm of an exhaustive switch sanitizes $id before the sink.
$id = $_GET['id'];
switch ($mode) {
case "num":
	$id = intval($id);
	break;
case "hex":
	$id = intval($id, 16);
	break;
default:
	$id = 0;
	break;
}
mysql_query("SELECT * FROM items WHERE id=" . $id);
`,
			"keep.php": `<?php
// Sanitized on one arm only: the tainted default arm survives the join.
$a = $_GET['a'];
switch ($mode) {
case "num":
	$a = intval($a);
	break;
default:
	break;
}
mysql_query("SELECT * FROM items WHERE a=" . $a);
// All arms sanitize, but without a default the arm set is not exhaustive.
$b = $_GET['b'];
switch ($mode) {
case "num":
	$b = intval($b);
	break;
case "hex":
	$b = intval($b, 16);
	break;
}
mysql_query("SELECT * FROM items WHERE b=" . $b);
`,
		},
		Spots: []Spot{
			// The kill.php flow is sanitized on every path: not a real
			// vulnerability, flagged only by the path-insensitive walker.
			{Group: GroupBranch, File: "kill.php", StartLine: 2, EndLine: 15, Vulnerable: false, FP: FPCustomSanitizer},
			{Group: GroupBranch, File: "keep.php", StartLine: 2, EndLine: 10, Vulnerable: true},
			{Group: GroupBranch, File: "keep.php", StartLine: 11, EndLine: 21, Vulnerable: true},
		},
	}
}
