package corpus

import (
	"fmt"
	"math/rand"
)

// pluginRow drives generation of one WordPress plugin, following Table VII.
// Column totals match the paper exactly: SQLI 55 (found by the wpsqli
// weapon), XSS 71, Files 31, SCD 5, CS 2, HI 5 = 169; FPP 3, FP 2.
type pluginRow struct {
	name     string
	version  string
	vulns    map[Group]int
	fpOrig   int // predicted false positives (FPP column)
	fpCustom int // unpredicted false positives (FP column)
	cve      bool
	files    int
}

// paperPlugins are the 23 vulnerable plugins of Table VII.
var paperPlugins = []pluginRow{
	{name: "Appointment Booking Calendar", version: "1.1.7", vulns: map[Group]int{GroupSQLI: 1, GroupXSS: 3}, cve: true, files: 4},
	{name: "Auth0", version: "1.3.6", vulns: map[Group]int{GroupXSS: 1}, files: 5},
	{name: "Authorizer", version: "2.3.6", vulns: map[Group]int{GroupXSS: 2}, files: 4},
	{name: "BuddyPress", version: "2.4.0", vulns: map[Group]int{}, fpOrig: 1, files: 9},
	{name: "Contact form generator", version: "2.0.1", vulns: map[Group]int{GroupSQLI: 5, GroupXSS: 6}, files: 6},
	{name: "CP Appointment Calendar", version: "1.1.7", vulns: map[Group]int{GroupSQLI: 2}, files: 3},
	{name: "Easy2map", version: "1.2.9", vulns: map[Group]int{GroupSQLI: 1, GroupXSS: 1, GroupFiles: 1}, cve: true, files: 4},
	{name: "Ecwid Shopping Cart", version: "3.4.6", vulns: map[Group]int{GroupXSS: 1}, files: 6},
	{name: "Gantry Framework", version: "4.1.6", vulns: map[Group]int{GroupXSS: 4}, files: 6},
	{name: "Google Maps Travel Route", version: "1.3.1", vulns: map[Group]int{GroupXSS: 2, GroupFiles: 1}, files: 3},
	{name: "Lightbox Plus Colorbox", version: "2.7.2", vulns: map[Group]int{GroupXSS: 8}, files: 5},
	{name: "Payment form for Paypal pro", version: "1.0.1", vulns: map[Group]int{GroupXSS: 2}, cve: true, files: 3},
	{name: "Recipes writer", version: "1.0.4", vulns: map[Group]int{GroupXSS: 4}, files: 3},
	{name: "ResAds", version: "1.0.1", vulns: map[Group]int{GroupXSS: 2}, cve: true, files: 3},
	{name: "Simple support ticket system", version: "1.2", vulns: map[Group]int{GroupSQLI: 18}, cve: true, files: 5},
	{name: "The CartPress eCommerce Shopping Cart", version: "1.4.7", vulns: map[Group]int{GroupSQLI: 8, GroupXSS: 17}, fpCustom: 1, files: 8},
	{name: "WebKite", version: "2.0.1", vulns: map[Group]int{GroupXSS: 1}, files: 3},
	{name: "WP EasyCart - eCommerce Shopping Cart", version: "3.2.3", vulns: map[Group]int{GroupSQLI: 13, GroupXSS: 6, GroupFiles: 29, GroupSCD: 5, GroupCS: 2, GroupHI: 5}, files: 12},
	{name: "WP Marketplace", version: "2.4.1", vulns: map[Group]int{GroupSQLI: 2, GroupXSS: 7}, fpOrig: 1, files: 5},
	{name: "WP Shop", version: "3.5.3", vulns: map[Group]int{GroupSQLI: 5}, fpCustom: 1, files: 4},
	{name: "WP ToolBar Removal Node", version: "1839", vulns: map[Group]int{GroupXSS: 1}, files: 2},
	{name: "WP ultimate recipe", version: "2.5", vulns: map[Group]int{}, fpOrig: 1, files: 6},
	{name: "WP Web Scraper", version: "3.5", vulns: map[Group]int{GroupXSS: 3}, files: 3},
}

// pluginTags are the directory tags plugins were selected from.
var pluginTags = []string{
	"arts", "food", "health", "shopping", "travel", "authentication", "popular", "widgets",
}

// downloadBuckets are Fig. 4(a)'s histogram ranges.
var downloadBuckets = [...]struct {
	Label    string
	Min, Max int
}{
	{"< 2000", 100, 1999},
	{"2K – 5K", 2000, 4999},
	{"5K – 10K", 5000, 9999},
	{"10K – 50K", 10000, 49999},
	{"50K – 100K", 50000, 99999},
	{"100K – 500K", 100000, 499999},
	{"> 500K", 500000, 2000000},
}

// installBuckets are Fig. 4(b)'s histogram ranges.
var installBuckets = [...]struct {
	Label    string
	Min, Max int
}{
	{"< 100", 10, 99},
	{"100 – 500", 100, 499},
	{"500 – 1K", 500, 999},
	{"1K – 2K", 1000, 1999},
	{"2K – 5K", 2000, 4999},
	{"5K – 10K", 5000, 9999},
	{"> 10K", 10000, 300000},
}

// DownloadBucketLabels returns the Fig. 4(a) range labels in order.
func DownloadBucketLabels() []string {
	out := make([]string, len(downloadBuckets))
	for i, b := range downloadBuckets {
		out[i] = b.Label
	}
	return out
}

// InstallBucketLabels returns the Fig. 4(b) range labels in order.
func InstallBucketLabels() []string {
	out := make([]string, len(installBuckets))
	for i, b := range installBuckets {
		out[i] = b.Label
	}
	return out
}

// DownloadBucket returns the index of the Fig. 4(a) range for a download
// count.
func DownloadBucket(downloads int) int {
	for i, b := range downloadBuckets {
		if downloads <= b.Max {
			return i
		}
	}
	return len(downloadBuckets) - 1
}

// InstallBucket returns the index of the Fig. 4(b) range for an active
// install count.
func InstallBucket(installs int) int {
	for i, b := range installBuckets {
		if installs <= b.Max {
			return i
		}
	}
	return len(installBuckets) - 1
}

// WordPressSuite generates the 115-plugin corpus (23 vulnerable + 92 clean)
// with marketplace metadata, deterministic under seed.
func WordPressSuite(seed int64) []*Plugin {
	rng := rand.New(rand.NewSource(seed + 115))
	plugins := make([]*Plugin, 0, 115)

	// Vulnerable plugins: 16 of 23 have >10K downloads (paper Section V-B);
	// Lightbox Plus Colorbox is active on >200K sites.
	for i, row := range paperPlugins {
		app := generateApp(appRow{
			name:     row.name,
			version:  row.version,
			vulns:    row.vulns,
			fpOrig:   row.fpOrig,
			fpCustom: row.fpCustom,
			files:    row.files,
		}, rng, true)
		p := &Plugin{
			App:      *app,
			Tag:      pluginTags[i%len(pluginTags)],
			KnownCVE: row.cve,
		}
		if i < 16 {
			// High-download band: 10K .. >500K.
			p.Downloads = 10000 + rng.Intn(900000)
		} else {
			p.Downloads = 200 + rng.Intn(9000)
		}
		p.ActiveInstalls = p.Downloads / (4 + rng.Intn(8))
		if row.name == "Lightbox Plus Colorbox" {
			p.Downloads = 950000
			p.ActiveInstalls = 210000
		}
		plugins = append(plugins, p)
	}

	// Clean plugins spread across all ranges of downloads/installs.
	for i := 0; i < 115-len(paperPlugins); i++ {
		row := appRow{
			name:    fmt.Sprintf("%s Helper %d", cleanPluginStems[i%len(cleanPluginStems)], i),
			version: fmt.Sprintf("%d.%d", 1+i%3, i%10),
			files:   2 + rng.Intn(6),
		}
		app := generateApp(row, rng, true)
		bucket := downloadBuckets[i%len(downloadBuckets)]
		downloads := bucket.Min + rng.Intn(bucket.Max-bucket.Min+1)
		p := &Plugin{
			App:            *app,
			Tag:            pluginTags[i%len(pluginTags)],
			Downloads:      downloads,
			ActiveInstalls: downloads / (4 + rng.Intn(8)),
		}
		plugins = append(plugins, p)
	}
	return plugins
}

var cleanPluginStems = []string{
	"Gallery", "Recipe", "Fitness", "Cart", "Tour", "Login", "SEO", "Sidebar",
	"Backup", "Contact", "Slider", "Forms", "Maps", "Reviews", "Events",
	"Newsletter", "Portfolio", "Chat", "Tables", "Social",
}
