package corpus

import (
	"fmt"
	"math/rand"
	"strings"
)

// snippet generators produce PHP fragments with unique identifiers so many
// snippets coexist in one file. Each returns the page-body code; helper
// definitions (custom sanitizers) are added separately.

// vulnSnippet returns an unsanitized entry-point→sink flow for the group.
// The variant index selects among sink styles within the group.
func vulnSnippet(g Group, n int, variant int) string {
	switch g {
	case GroupSQLI:
		switch variant % 3 {
		case 0:
			return fmt.Sprintf(`$uid%d = $_GET['uid%d'];
$res%d = mysql_query("SELECT name, email FROM users WHERE id=" . $uid%d);`, n, n, n, n)
		case 1:
			return fmt.Sprintf(`$name%d = $_POST['name%d'];
mysql_query("UPDATE users SET last_name='$name%d' WHERE id=1");`, n, n, n)
		default:
			return fmt.Sprintf(`$ord%d = $_REQUEST['order%d'];
$q%d = "SELECT * FROM items ORDER BY " . $ord%d;
mysqli_query($link, $q%d);`, n, n, n, n, n)
		}
	case GroupXSS:
		switch variant % 3 {
		case 0:
			return fmt.Sprintf(`echo "<div class='greet'>Hello, " . $_GET['visitor%d'] . "</div>";`, n)
		case 1:
			return fmt.Sprintf(`$msg%d = $_POST['msg%d'];
print "<p>" . $msg%d . "</p>";`, n, n, n)
		default:
			// Stored XSS: data read back from the database.
			return fmt.Sprintf(`$r%d = mysql_fetch_assoc($comments%d);
echo "<li>" . $r%d['body'] . "</li>";`, n, n, n)
		}
	case GroupFiles:
		switch variant % 3 {
		case 0:
			return fmt.Sprintf(`$page%d = $_GET['page%d'];
include($page%d . ".php");`, n, n, n)
		case 1:
			return fmt.Sprintf(`readfile("/var/app/data/" . $_GET['doc%d']);`, n)
		default:
			return fmt.Sprintf(`$tpl%d = $_COOKIE['tpl%d'];
require_once("themes/" . $tpl%d);`, n, n, n)
		}
	case GroupSCD:
		return fmt.Sprintf(`show_source($_GET['src%d']);`, n)
	case GroupOSCI:
		if variant%2 == 0 {
			return fmt.Sprintf(`system("convert uploads/" . $_GET['img%d'] . " -resize 80x80 thumb.png");`, n)
		}
		return fmt.Sprintf(`$host%d = $_POST['host%d'];
exec("ping -c 1 " . $host%d, $out%d);`, n, n, n, n)
	case GroupPHPCI:
		return fmt.Sprintf(`eval("\$calc%d = " . $_POST['expr%d'] . ";");`, n, n)
	case GroupLDAPI:
		return fmt.Sprintf(`$u%d = $_GET['user%d'];
ldap_search($ldap, "dc=example,dc=com", "(uid=" . $u%d . ")");`, n, n, n)
	case GroupXPathI:
		return fmt.Sprintf(`$who%d = $_GET['who%d'];
xpath_eval($xpctx, "//user[login='" . $who%d . "']/mail");`, n, n, n)
	case GroupNoSQLI:
		return fmt.Sprintf(`$login%d = $_POST['login%d'];
$users->find(array("login" => $login%d));`, n, n, n)
	case GroupCS:
		return fmt.Sprintf(`$comment%d = $_POST['comment%d'];
file_put_contents("data/comments.txt", $comment%d, FILE_APPEND);`, n, n, n)
	case GroupHI:
		if variant%2 == 0 {
			return fmt.Sprintf(`header("Location: " . $_GET['next%d']);`, n)
		}
		return fmt.Sprintf(`mail($_POST['rcpt%d'], "Welcome", "Thanks for registering.");`, n)
	case GroupSF:
		if variant%2 == 0 {
			return fmt.Sprintf(`session_id($_GET['sess%d']);
session_start();`, n)
		}
		return fmt.Sprintf(`setcookie("auth%d", $_REQUEST['token%d'], time() + 3600);`, n, n)
	default:
		return fmt.Sprintf(`// unknown group %s`, g)
	}
}

// wpVulnSnippet returns a $wpdb-based SQLI flow (detected by the wpsqli
// weapon, not the native SQLI detector).
func wpVulnSnippet(n, variant int) string {
	switch variant % 3 {
	case 0:
		return fmt.Sprintf(`$title%d = $_POST['title%d'];
$wpdb->query("SELECT ID FROM {$wpdb->posts} WHERE post_title = '" . $title%d . "'");`, n, n, n)
	case 1:
		return fmt.Sprintf(`$mid%d = $_GET['item%d'];
$row%d = $wpdb->get_row("SELECT * FROM wp_market_items WHERE id=" . $mid%d);`, n, n, n, n)
	default:
		return fmt.Sprintf(`$cat%d = $_REQUEST['cat%d'];
$ids%d = $wpdb->get_col("SELECT ID FROM wp_shop WHERE category='$cat%d'");`, n, n, n, n)
	}
}

// safeSnippet returns a properly sanitized flow that must NOT be flagged.
func safeSnippet(g Group, n int, variant int) string {
	switch g {
	case GroupSQLI:
		if variant%2 == 0 {
			return fmt.Sprintf(`$sid%d = mysql_real_escape_string($_GET['sid%d']);
mysql_query("SELECT * FROM sessions WHERE token='" . $sid%d . "'");`, n, n, n)
		}
		return fmt.Sprintf(`$pg%d = intval($_GET['pg%d']);
mysql_query("SELECT * FROM posts LIMIT " . $pg%d . ", 10");`, n, n, n)
	case GroupXSS:
		return fmt.Sprintf(`echo "<span>" . htmlspecialchars($_GET['q%d']) . "</span>";`, n)
	case GroupFiles:
		return fmt.Sprintf(`$f%d = basename($_GET['file%d']);
readfile("downloads/" . $f%d);`, n, n, n)
	case GroupOSCI:
		return fmt.Sprintf(`system("du -sh " . escapeshellarg($_GET['dir%d']));`, n)
	case GroupHI:
		return fmt.Sprintf(`header("X-Trace: req-" . intval($_GET['trace%d']));`, n)
	case GroupSF:
		return fmt.Sprintf(`session_regenerate_id(true);
setcookie("lang%d", "en", time() + 86400);`, n)
	default:
		return fmt.Sprintf(`$ok%d = intval($_GET['v%d']);
echo $ok%d;`, n, n, n)
	}
}

// fpSnippet returns a flow guarded so the taint analyzer still reports a
// candidate whose ground truth is "false positive".
func fpSnippet(g Group, kind FPKind, n int, variant int) string {
	guardedSink := func(guard, sink string) string {
		return guard + "\n" + sink
	}
	varName := fmt.Sprintf("$in%d", n)
	read := fmt.Sprintf(`%s = $_GET['p%d'];`, varName, n)
	var sink string
	switch g {
	case GroupSQLI:
		sink = fmt.Sprintf(`mysql_query("SELECT login FROM accounts WHERE id=" . %s);`, varName)
	case GroupXSS:
		sink = fmt.Sprintf(`echo "<td>" . %s . "</td>";`, varName)
	case GroupFiles:
		sink = fmt.Sprintf(`readfile("reports/" . %s);`, varName)
	case GroupHI:
		sink = fmt.Sprintf(`header("Location: " . %s);`, varName)
	default:
		sink = fmt.Sprintf(`mysql_query("SELECT 1 FROM t WHERE c=" . %s);`, varName)
	}

	switch kind {
	case FPOriginalSymptoms:
		// Guards built from symptoms WAP v2.1 already knows.
		switch variant % 3 {
		case 0:
			return guardedSink(fmt.Sprintf(`%s
if (!isset($_GET['p%d']) || !is_numeric(%s)) { exit; }`, read, n, varName), sink)
		case 1:
			return guardedSink(fmt.Sprintf(`%s
if (!preg_match('/^[0-9]+$/', %s)) { die("bad input"); }`, read, varName), sink)
		default:
			return guardedSink(fmt.Sprintf(`%s
if (!ctype_digit(%s)) { exit; }
%s = substr(%s, 0, 8);`, read, varName, varName, varName), sink)
		}
	case FPNewSymptoms:
		// Guards visible only through the new symptom set (empty,
		// is_integer/is_long, preg_match_all, str_split/explode, rtrim) —
		// written as positive conditions so no original-WAP symptom (exit,
		// isset, is_numeric) appears: WAP v2.1 sees a bare flow here.
		switch variant % 3 {
		case 0:
			return fmt.Sprintf(`%s
if (!empty(%s) && is_integer(%s + 0)) {
    %s = rtrim(%s);
    %s
}`, read, varName, varName, varName, varName, sink)
		case 1:
			return fmt.Sprintf(`%s
if (!empty(%s) && preg_match_all('/^[0-9]{1,6}$/', %s, $mm%d) == 1) {
    %s = ltrim(%s, "0");
    %s
}`, read, varName, varName, n, varName, varName, sink)
		default:
			return fmt.Sprintf(`%s
$parts%d = explode("-", %s);
%s = $parts%d[0];
if (!empty(%s) && is_long(%s + 0)) {
    %s
}`, read, n, varName, varName, n, varName, varName, sink)
		}
	case FPCustomSanitizer:
		// Cleaned by an application-specific function the tool does not
		// know; the visible symptom is at most the str_replace inside it.
		return guardedSink(fmt.Sprintf(`%s
%s = app_escape(%s);`, read, varName, varName), sink)
	default:
		return read + "\n" + sink
	}
}

// customSanitizerDef is the application-specific sanitizer used by
// FPCustomSanitizer spots (the paper's vfront "escape" example). It uses
// strtr, which is not in the symptom catalog, so the flow looks exactly like
// a raw vulnerability to the predictor — these are the residual FPs neither
// tool version predicts.
const customSanitizerDef = `function app_escape($v) {
    return strtr($v, array("'" => "''", "\\" => "\\\\"));
}`

// wpFPSnippet returns a guarded $wpdb flow (false positive in plugins).
func wpFPSnippet(kind FPKind, n int) string {
	switch kind {
	case FPCustomSanitizer:
		return fmt.Sprintf(`$w%d = app_escape($_POST['w%d']);
$wpdb->query("SELECT ID FROM wp_items WHERE sku='" . $w%d . "'");`, n, n, n)
	default:
		return fmt.Sprintf(`$w%d = $_GET['w%d'];
if (!isset($_GET['w%d']) || !is_numeric($w%d)) { exit; }
$wpdb->get_var("SELECT COUNT(*) FROM wp_items WHERE id=" . $w%d);`, n, n, n, n, n)
	}
}

// fillerFunc emits an innocuous helper function, giving files realistic
// structure without adding taint flows.
func fillerFunc(n int, rng *rand.Rand) string {
	switch rng.Intn(4) {
	case 0:
		return fmt.Sprintf(`function format_price%d($cents) {
    return sprintf("$%%0.2f", $cents / 100.0);
}`, n)
	case 1:
		return fmt.Sprintf(`function nav_link%d($href, $label) {
    return "<a href='" . htmlspecialchars($href) . "'>" . htmlspecialchars($label) . "</a>";
}`, n)
	case 2:
		return fmt.Sprintf(`function cache_key%d($parts) {
    return md5(implode("|", $parts));
}`, n)
	default:
		return fmt.Sprintf(`class Widget%d {
    public $title = "widget";
    function render() { return "<div>" . htmlspecialchars($this->title) . "</div>"; }
}`, n)
	}
}

// fillerHTML emits static page chrome.
func fillerHTML(name string) string {
	return fmt.Sprintf(`<!-- %s -->
<div class="wrap">
  <h2>%s</h2>
  <p>Static content block.</p>
</div>`, name, strings.ReplaceAll(name, "_", " "))
}
