package corpus

import (
	"testing"

	"repro/internal/php/parser"
)

func TestWebAppSuiteShape(t *testing.T) {
	apps := WebAppSuite(1)
	if len(apps) != 54 {
		t.Fatalf("apps = %d, want 54", len(apps))
	}
	vulnerable := 0
	for _, a := range apps {
		if len(a.VulnerableSpots()) > 0 {
			vulnerable++
		}
	}
	if vulnerable != 17 {
		t.Errorf("vulnerable apps = %d, want 17", vulnerable)
	}
}

func TestWebAppSuiteGroundTruthTotals(t *testing.T) {
	apps := WebAppSuite(1)
	totals := map[Group]int{}
	fpKinds := map[FPKind]int{}
	for _, a := range apps {
		for _, s := range a.Spots {
			if s.Vulnerable {
				totals[s.Group]++
			} else {
				fpKinds[s.FP]++
			}
		}
	}
	want := map[Group]int{
		GroupSQLI: 72, GroupXSS: 255, GroupFiles: 55, GroupSCD: 4,
		GroupLDAPI: 2, GroupSF: 1, GroupHI: 19, GroupCS: 5,
	}
	for g, n := range want {
		if totals[g] != n {
			t.Errorf("group %s = %d, want %d (paper Table VI)", g, totals[g], n)
		}
	}
	grand := 0
	for _, n := range totals {
		grand += n
	}
	if grand != 413 {
		t.Errorf("total vulns = %d, want 413", grand)
	}
	if fpKinds[FPOriginalSymptoms] != 62 {
		t.Errorf("FP (original symptoms) = %d, want 62", fpKinds[FPOriginalSymptoms])
	}
	if fpKinds[FPNewSymptoms] != 42 {
		t.Errorf("FP (new symptoms) = %d, want 42", fpKinds[FPNewSymptoms])
	}
	if fpKinds[FPCustomSanitizer] != 18 {
		t.Errorf("FP (custom sanitizer) = %d, want 18", fpKinds[FPCustomSanitizer])
	}
}

func TestWebAppFilesParse(t *testing.T) {
	apps := WebAppSuite(2)
	for _, a := range apps[:20] {
		for path, src := range a.Files {
			if _, errs := parser.Parse(path, src); len(errs) > 0 {
				t.Errorf("%s %s/%s: parse errors: %v", a.Name, a.Version, path, errs)
			}
		}
	}
}

func TestSuiteDeterministic(t *testing.T) {
	a := WebAppSuite(7)
	b := WebAppSuite(7)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].TotalLines() != b[i].TotalLines() {
			t.Fatalf("app %d differs", i)
		}
		for path, src := range a[i].Files {
			if b[i].Files[path] != src {
				t.Fatalf("app %d file %s differs", i, path)
			}
		}
	}
}

func TestSpotSpansValid(t *testing.T) {
	for _, a := range WebAppSuite(3)[:17] {
		for _, s := range a.Spots {
			src, ok := a.Files[s.File]
			if !ok {
				t.Fatalf("%s: spot file %s missing", a.Name, s.File)
			}
			lines := countLines(src)
			if s.StartLine < 1 || s.EndLine > lines || s.StartLine > s.EndLine {
				t.Errorf("%s: bad span %d-%d (file has %d lines)", a.Name, s.StartLine, s.EndLine, lines)
			}
		}
	}
}

func TestSpotContains(t *testing.T) {
	s := Spot{File: "a.php", StartLine: 5, EndLine: 8}
	if !s.Contains("a.php", 5) || !s.Contains("a.php", 8) {
		t.Error("boundary lines must be contained")
	}
	if s.Contains("a.php", 4) || s.Contains("a.php", 9) || s.Contains("b.php", 6) {
		t.Error("out-of-span must not match")
	}
}

func TestWordPressSuiteShape(t *testing.T) {
	plugins := WordPressSuite(1)
	if len(plugins) != 115 {
		t.Fatalf("plugins = %d, want 115", len(plugins))
	}
	vulnerable, cves := 0, 0
	totals := map[Group]int{}
	fpp, fp := 0, 0
	for _, p := range plugins {
		if len(p.VulnerableSpots()) > 0 {
			vulnerable++
		}
		if p.KnownCVE {
			cves++
		}
		for _, s := range p.Spots {
			if s.Vulnerable {
				totals[s.Group]++
			} else if s.FP == FPCustomSanitizer {
				fp++
			} else {
				fpp++
			}
		}
	}
	// 23 rows are vulnerable, but two of them (BuddyPress, WP ultimate
	// recipe) only have FP flows.
	if vulnerable != 21 {
		t.Errorf("plugins with real vulns = %d, want 21", vulnerable)
	}
	if cves != 5 {
		t.Errorf("CVE plugins = %d, want 5", cves)
	}
	want := map[Group]int{
		GroupSQLI: 55, GroupXSS: 71, GroupFiles: 31, GroupSCD: 5,
		GroupCS: 2, GroupHI: 5,
	}
	grand := 0
	for g, n := range want {
		if totals[g] != n {
			t.Errorf("group %s = %d, want %d (paper Table VII)", g, totals[g], n)
		}
	}
	for _, n := range totals {
		grand += n
	}
	if grand != 169 {
		t.Errorf("total plugin vulns = %d, want 169", grand)
	}
	if fpp != 3 || fp != 2 {
		t.Errorf("FPP/FP = %d/%d, want 3/2", fpp, fp)
	}
}

func TestWordPressMetadata(t *testing.T) {
	plugins := WordPressSuite(1)
	highDownloads := 0
	var lightbox *Plugin
	for _, p := range plugins {
		if p.Downloads <= 0 || p.ActiveInstalls <= 0 {
			t.Fatalf("%s: missing metadata", p.Name)
		}
		if len(p.VulnerableSpots()) > 0 && p.Downloads > 10000 {
			highDownloads++
		}
		if p.Name == "Lightbox Plus Colorbox" {
			lightbox = p
		}
	}
	if highDownloads < 10 {
		t.Errorf("vulnerable plugins with >10K downloads = %d, want >= 10", highDownloads)
	}
	if lightbox == nil || lightbox.ActiveInstalls < 200000 {
		t.Errorf("Lightbox Plus Colorbox must be active on >200K sites: %+v", lightbox)
	}
}

func TestBucketBoundaries(t *testing.T) {
	if DownloadBucket(1500) != 0 {
		t.Errorf("1500 downloads bucket = %d", DownloadBucket(1500))
	}
	if DownloadBucket(600000) != 6 {
		t.Errorf("600K downloads bucket = %d", DownloadBucket(600000))
	}
	if InstallBucket(50) != 0 || InstallBucket(20000) != 6 {
		t.Errorf("install buckets wrong: %d %d", InstallBucket(50), InstallBucket(20000))
	}
	if len(DownloadBucketLabels()) != 7 || len(InstallBucketLabels()) != 7 {
		t.Error("bucket label counts")
	}
}

func TestCleanAppsHaveNoSpots(t *testing.T) {
	apps := WebAppSuite(5)
	for _, a := range apps[17:] {
		if len(a.Spots) != 0 {
			t.Errorf("clean app %s has %d spots", a.Name, len(a.Spots))
		}
	}
}

func TestAppHelpers(t *testing.T) {
	apps := WebAppSuite(6)
	a := apps[0]
	if a.NumFiles() == 0 || a.TotalLines() == 0 {
		t.Error("empty app")
	}
	if len(a.SortedPaths()) != a.NumFiles() {
		t.Error("sorted paths mismatch")
	}
	truth := a.TruthByGroup()
	if truth[GroupSQLI] != 9 || truth[GroupXSS] != 72 {
		t.Errorf("truth = %v", truth)
	}
	if got := a.Spots[0].String(); got == "" {
		t.Error("spot string empty")
	}
}

func TestMicroSuiteShape(t *testing.T) {
	apps := MicroSuite(3, 3)
	if len(apps) != 12 {
		t.Fatalf("micro apps = %d, want 12 (one per group)", len(apps))
	}
	seen := map[Group]bool{}
	for _, a := range apps {
		truth := a.TruthByGroup()
		if len(truth) != 1 {
			t.Errorf("%s: groups = %v, want exactly one", a.Name, truth)
		}
		for g, n := range truth {
			seen[g] = true
			if n != 3 {
				t.Errorf("%s: %d planted, want 3", a.Name, n)
			}
		}
		for path, src := range a.Files {
			if _, errs := parser.Parse(path, src); len(errs) > 0 {
				t.Errorf("%s/%s: %v", a.Name, path, errs)
			}
		}
	}
	if len(seen) != 12 {
		t.Errorf("groups covered = %d, want 12", len(seen))
	}
}

func TestLargeAppShape(t *testing.T) {
	app := LargeApp(1, 30, 20)
	if app.NumFiles() != 30 {
		t.Fatalf("files = %d", app.NumFiles())
	}
	if app.TotalLines() < 1500 {
		t.Errorf("lines = %d, want a large app", app.TotalLines())
	}
	if len(app.VulnerableSpots()) == 0 {
		t.Error("no planted vulnerabilities")
	}
	for path, src := range app.Files {
		if _, errs := parser.Parse(path, src); len(errs) > 0 {
			t.Fatalf("%s: %v", path, errs)
		}
	}
}
