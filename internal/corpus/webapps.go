package corpus

import (
	"fmt"
	"math/rand"
)

// appRow drives generation of one web application: its identity and the
// planted real vulnerabilities per group, following the 17 vulnerable
// packages of the paper's Tables V and VI. The per-class column totals match
// the paper exactly (SQLI 72, XSS 255, Files 55, SCD 4, LDAPI 2, SF 1,
// HI 19, CS 5 = 413); the per-row split reconstructs the table as closely as
// the published text allows.
type appRow struct {
	name    string
	version string
	vulns   map[Group]int
	// fpOrig/fpNew/fpCustom are planted false-positive flows of each
	// flavour. Totals across rows are 62/42/18, reproducing Table VI's
	// prediction dynamics (62 predicted by both, +42 only by WAPe, 18 by
	// neither).
	fpOrig, fpNew, fpCustom int
	// files scales the amount of filler (clean) files.
	files int
}

// paperWebApps are the 17 vulnerable applications.
var paperWebApps = []appRow{
	{name: "Admin Control Panel Lite 2", version: "0.10.2", vulns: map[Group]int{GroupSQLI: 9, GroupXSS: 72}, fpOrig: 6, fpNew: 2, files: 6},
	{name: "Anywhere Board Games", version: "0.150215", vulns: map[Group]int{GroupSQLI: 1, GroupXSS: 1, GroupFiles: 1}, files: 3},
	{name: "Clip Bucket", version: "2.7.0.4", vulns: map[Group]int{GroupXSS: 10, GroupFiles: 11, GroupSCD: 1}, fpOrig: 2, fpNew: 2, fpCustom: 2, files: 12},
	{name: "Clip Bucket", version: "2.8", vulns: map[Group]int{GroupSQLI: 4, GroupXSS: 10, GroupFiles: 11, GroupSCD: 1}, fpOrig: 2, fpNew: 2, fpCustom: 2, files: 12},
	{name: "Community Mobile Channels", version: "0.2.0", vulns: map[Group]int{GroupSQLI: 14, GroupXSS: 27, GroupFiles: 3, GroupHI: 3}, fpOrig: 4, files: 10},
	{name: "divine", version: "0.1.3a", vulns: map[Group]int{GroupXSS: 4, GroupFiles: 2, GroupHI: 3}, files: 3},
	{name: "Ldap address book", version: "0.22", vulns: map[Group]int{GroupLDAPI: 1}, files: 4},
	{name: "Minutes", version: "0.42", vulns: map[Group]int{GroupSQLI: 1, GroupXSS: 8, GroupFiles: 1}, files: 4},
	{name: "Mle Moodle", version: "0.8.8.5", vulns: map[Group]int{GroupXSS: 6, GroupFiles: 1}, fpOrig: 2, fpCustom: 1, files: 10},
	{name: "Php Open Chat", version: "3.0.2", vulns: map[Group]int{GroupXSS: 10, GroupSCD: 1}, files: 8},
	{name: "Pivotx", version: "2.3.10", vulns: map[Group]int{GroupXSS: 1}, fpOrig: 5, fpNew: 4, files: 8},
	{name: "Play sms", version: "1.3.1", vulns: map[Group]int{GroupXSS: 6}, fpOrig: 2, files: 14},
	{name: "RCR AEsir", version: "0.11a", vulns: map[Group]int{GroupSQLI: 9, GroupXSS: 3, GroupCS: 1}, fpNew: 1, files: 3},
	{name: "refbase", version: "0.9.6", vulns: map[Group]int{GroupXSS: 46, GroupFiles: 2}, fpOrig: 7, fpNew: 4, files: 10},
	{name: "SAE", version: "1.1", vulns: map[Group]int{GroupSQLI: 11, GroupXSS: 25, GroupFiles: 10, GroupSF: 1, GroupHI: 1}, fpOrig: 12, fpNew: 11, files: 9},
	{name: "Tomahawk Mail", version: "2.0", vulns: map[Group]int{GroupFiles: 2, GroupHI: 1}, fpOrig: 1, fpNew: 2, files: 5},
	{name: "vfront", version: "0.99.3", vulns: map[Group]int{GroupSQLI: 23, GroupXSS: 26, GroupFiles: 11, GroupSCD: 1, GroupLDAPI: 1, GroupHI: 11, GroupCS: 4}, fpOrig: 19, fpNew: 14, fpCustom: 13, files: 12},
}

// cleanWebAppNames are the remaining analyzed packages in which no
// vulnerability is found (54 total in the paper).
var cleanWebAppNames = []string{
	"phpBB Es", "Wordpress Lite", "Gallery Zen", "Form Mailer Pro", "Wiki Mini",
	"Task Board", "Photo Album X", "News Flash", "Poll Station", "Guestbook Plus",
	"Shop Basket", "Event Planner", "Doc Viewer", "Mail List Manager", "Chat Relay",
	"Forum Lite", "Link Directory", "Survey Monkey PHP", "Recipe Box", "Time Tracker",
	"Invoice Maker", "Quiz Engine", "File Share", "Code Paste", "Status Page",
	"Weather Widget", "RSS Reader", "Bookmark Keeper", "Note Pad", "Address Book Pro",
	"Calendar Sync", "Ticket Desk", "FAQ Builder", "Blog Roll", "Banner Rotator",
	"Site Search", "Redirect Manager",
}

// WebAppSuite generates the 54-package evaluation corpus (17 vulnerable + 37
// clean), deterministic under seed.
func WebAppSuite(seed int64) []*App {
	rng := rand.New(rand.NewSource(seed + 54))
	apps := make([]*App, 0, len(paperWebApps)+len(cleanWebAppNames))
	for _, row := range paperWebApps {
		apps = append(apps, generateApp(row, rng, false))
	}
	for i, name := range cleanWebAppNames {
		row := appRow{
			name:    name,
			version: fmt.Sprintf("1.%d", i%10),
			files:   3 + rng.Intn(10),
		}
		apps = append(apps, generateApp(row, rng, false))
	}
	return apps
}

// generateApp plants the row's flows across generated PHP files.
func generateApp(row appRow, rng *rand.Rand, wordpress bool) *App {
	app := &App{
		Name:    row.name,
		Version: row.version,
		Files:   make(map[string]string),
	}
	nextID := 0
	id := func() int { nextID++; return nextID }

	// Work queue of planted snippets.
	type planted struct {
		group Group
		fp    FPKind
	}
	var queue []planted
	for _, g := range groupOrder {
		for i := 0; i < row.vulns[g]; i++ {
			queue = append(queue, planted{group: g})
		}
	}
	for i := 0; i < row.fpOrig; i++ {
		queue = append(queue, planted{group: fpGroupFor(i), fp: FPOriginalSymptoms})
	}
	for i := 0; i < row.fpNew; i++ {
		queue = append(queue, planted{group: fpGroupFor(i + 1), fp: FPNewSymptoms})
	}
	for i := 0; i < row.fpCustom; i++ {
		queue = append(queue, planted{group: GroupSQLI, fp: FPCustomSanitizer})
	}
	rng.Shuffle(len(queue), func(i, j int) { queue[i], queue[j] = queue[j], queue[i] })

	// Distribute snippets over page files, tracking the line span of every
	// planted snippet so findings can be scored against ground truth.
	nFiles := row.files
	if nFiles < 1 {
		nFiles = 1
	}
	perFile := (len(queue) + nFiles - 1) / nFiles
	if perFile == 0 {
		perFile = 1
	}
	needsCustomSan := false
	fileIdx := 0
	for start := 0; start < len(queue) || fileIdx < nFiles; fileIdx++ {
		pageName := pageFileName(fileIdx, wordpress)
		fb := newFileBuilder()
		fb.add(fillerHTML(fmt.Sprintf("%s page %d", row.name, fileIdx)))
		fb.add("<?php")
		fb.add(fillerFunc(id(), rng))
		end := start + perFile
		if end > len(queue) {
			end = len(queue)
		}
		for _, pl := range queue[start:end] {
			n := id()
			variant := rng.Intn(3)
			var code string
			switch {
			case pl.fp != FPNone && wordpress && pl.group == GroupSQLI:
				code = wpFPSnippet(pl.fp, n)
			case pl.fp != FPNone:
				code = fpSnippet(pl.group, pl.fp, n, variant)
			case wordpress && pl.group == GroupSQLI:
				code = wpVulnSnippet(n, variant)
			default:
				code = vulnSnippet(pl.group, n, variant)
			}
			if pl.fp == FPCustomSanitizer {
				needsCustomSan = true
			}
			startLine, endLine := fb.add(code)
			app.Spots = append(app.Spots, Spot{
				Group:      pl.group,
				File:       pageName,
				StartLine:  startLine,
				EndLine:    endLine,
				Vulnerable: pl.fp == FPNone,
				FP:         pl.fp,
			})
		}
		// Sanitized (safe) flows and filler in every file.
		for i := 0; i < 1+rng.Intn(3); i++ {
			fb.add(safeSnippet(safeGroupFor(rng), id(), rng.Intn(2)))
		}
		fb.add("?>")
		fb.add(fillerHTML("footer"))
		app.Files[pageName] = fb.String()
		start = end
	}

	// Shared helper file.
	hb := newFileBuilder()
	hb.add("<?php")
	if needsCustomSan {
		hb.add(customSanitizerDef)
	}
	hb.add(fillerFunc(id(), rng))
	hb.add(fillerFunc(id(), rng))
	app.Files["includes/util.php"] = hb.String()
	return app
}

// fileBuilder assembles a file from parts while tracking line numbers.
type fileBuilder struct {
	parts []string
	line  int // next part's starting line (1-based)
}

func newFileBuilder() *fileBuilder { return &fileBuilder{line: 1} }

// add appends a part and returns its (startLine, endLine) span.
func (fb *fileBuilder) add(part string) (startLine, endLine int) {
	startLine = fb.line
	endLine = startLine + countLines(part) - 1
	fb.parts = append(fb.parts, part)
	fb.line = endLine + 1 // parts are joined with a newline
	return startLine, endLine
}

// String renders the file.
func (fb *fileBuilder) String() string { return joinPHP(fb.parts) }

// fpGroupFor spreads FP spots across the groups that dominate the paper's
// false positives (SQLI mostly, some XSS and Files).
func fpGroupFor(i int) Group {
	switch i % 5 {
	case 0, 1, 2:
		return GroupSQLI
	case 3:
		return GroupXSS
	default:
		return GroupFiles
	}
}

func safeGroupFor(rng *rand.Rand) Group {
	groups := [...]Group{GroupSQLI, GroupXSS, GroupFiles, GroupOSCI, GroupHI}
	return groups[rng.Intn(len(groups))]
}

func pageFileName(i int, wordpress bool) string {
	if wordpress {
		if i == 0 {
			return "plugin.php"
		}
		return fmt.Sprintf("includes/admin_%d.php", i)
	}
	names := [...]string{"index", "view", "edit", "list", "search", "admin",
		"login", "profile", "report", "export", "settings", "upload",
		"gallery", "feed"}
	if i < len(names) {
		return names[i] + ".php"
	}
	return fmt.Sprintf("pages/page_%d.php", i)
}

func joinPHP(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += "\n"
		}
		out += p
	}
	return out + "\n"
}
