// Package resultstore persists per-task scan results between runs, keyed by
// closure fingerprints, so an incremental rescan can reuse the findings of
// every (file, class) task whose inputs did not change.
//
// The store is deliberately dumb: it knows nothing about the engine beyond
// the serialized schema below. The engine computes the fingerprints (file
// content hash + reachable-closure hashes + config digest) and decides what
// is safe to persist; the store only guarantees
//
//   - atomicity: snapshots are written via the backend's atomic Put (the
//     disk backend uses temp-file-and-rename through the chaos.FS seam, so
//     fault-injection tests cover every write path), so a crash mid-save can
//     never leave a truncated store that a later scan would misread;
//   - self-healing, never silent loss: a snapshot that fails to parse, or
//     whose format version does not match the reader's, is quarantined —
//     moved aside under a ".quarantined" suffix for diagnosis — and the
//     caller re-executes from scratch with the event surfaced (LoadInfo,
//     Health counters, and a DiagStoreQuarantined report diagnostic
//     upstream). A snapshot that parses but carries individual undecodable
//     task entries is salvaged: the bad entries are dropped and counted, the
//     rest load normally;
//   - degradation, never dependence: the blob tier behind the store is
//     pluggable (Backend: local disk, in-memory, a remote HTTP tier) and is
//     allowed to be slow, flaky, corrupt or entirely down. Any backend error
//     is a cache miss, every remote payload is verified before use, and
//     remote writes go through a bounded write-behind queue that sheds under
//     overload — so a scan over a degraded backend produces byte-identical
//     findings to a cache-less scan, just slower to warm;
//   - bounded disk: with MaxBytes set, every save evicts least-recently-used
//     snapshots (including quarantined ones) until the store fits, so a
//     long-running replica cannot fill the disk. Loads touch their
//     snapshot's mtime, making mtime order the LRU order.
//
// One snapshot blob per project lives under the backend, keyed by a hash of
// the project name so arbitrary names stay filesystem- and URL-safe.
package resultstore

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
)

// FormatVersion is the on-disk schema version. Any change to the types below
// that is not strictly additive must bump it; readers quarantine snapshots
// written under a different version.
const FormatVersion = 1

// quarantineSuffix is appended to a snapshot key when it is moved aside.
// One quarantine blob per project: a later quarantine of the same project
// replaces it, so diagnosis artifacts cannot accumulate without bound.
const quarantineSuffix = ".quarantined"

// ctxCheckStride is how many task entries an encode or decode loop processes
// between context checks, so a cancelled or drained job stops store work
// promptly without paying a branch per entry.
const ctxCheckStride = 256

// LoadStatus reports how a Load call was satisfied. Anything but LoadHit
// means the caller starts from an empty snapshot (full re-execute).
type LoadStatus string

// Load outcomes.
const (
	LoadHit             LoadStatus = "hit"
	LoadMiss            LoadStatus = "miss"
	LoadCorrupt         LoadStatus = "corrupt"
	LoadVersionMismatch LoadStatus = "version-mismatch"
	LoadDigestMismatch  LoadStatus = "digest-mismatch"
	// LoadDegraded means the backend errored (timeout, breaker open,
	// transport fault) and the load fell back to cache-less. Semantically a
	// miss; distinct so counters and tests can tell a cold start from a
	// sick tier.
	LoadDegraded LoadStatus = "degraded"
)

// LoadInfo is the full account of one Load: the status plus the self-healing
// actions the load performed.
type LoadInfo struct {
	Status LoadStatus
	// Salvaged counts task entries dropped from an otherwise readable
	// snapshot because they failed to decode; the surviving entries loaded
	// normally and the dropped tasks simply re-execute.
	Salvaged int
	// Quarantined is the path (disk backend) or key an unreadable or
	// wrong-version snapshot was moved to, "" when nothing was quarantined.
	Quarantined string
}

// Position is a serialized token.Position.
type Position struct {
	File   string `json:"file,omitempty"`
	Offset int    `json:"offset"`
	Line   int    `json:"line"`
	Column int    `json:"column"`
}

// NodeRef addresses one AST node of the scanned project: the path of the
// file whose AST contains it plus the node's index in a deterministic
// preorder walk of that file. Because a task is only reused when every file
// in its closure is byte-identical, the re-parsed AST is identical and the
// index resolves to the same node. Index -1 encodes a nil node.
type NodeRef struct {
	File  string `json:"file,omitempty"`
	Index int    `json:"index"`
}

// Source is a serialized taint.Source.
type Source struct {
	Name string   `json:"name"`
	Pos  Position `json:"pos"`
}

// Step is a serialized taint.Step.
type Step struct {
	Pos  Position `json:"pos"`
	Desc string   `json:"desc"`
	Node NodeRef  `json:"node"`
}

// Value is a serialized taint.Value.
type Value struct {
	Tainted    bool     `json:"tainted"`
	Sources    []Source `json:"sources,omitempty"`
	Sanitizers []string `json:"sanitizers,omitempty"`
	Trace      []Step   `json:"trace,omitempty"`
}

// Finding is one serialized engine finding: the candidate, its symptom set
// and the predictor's verdict.
type Finding struct {
	Class         string          `json:"class"`
	SinkName      string          `json:"sink"`
	SinkPos       Position        `json:"sink_pos"`
	SinkCall      NodeRef         `json:"sink_call"`
	ArgIndex      int             `json:"arg_index"`
	TaintedExpr   NodeRef         `json:"tainted_expr"`
	Value         Value           `json:"value"`
	EnclosingFunc string          `json:"enclosing_func,omitempty"`
	File          string          `json:"file"`
	Symptoms      map[string]bool `json:"symptoms,omitempty"`
	PredictedFP   bool            `json:"predicted_fp"`
	Votes         []bool          `json:"votes,omitempty"`
	Weapon        string          `json:"weapon,omitempty"`
}

// TaskEntry is the persisted result of one cleanly completed (file, class)
// task. Faulted, retried and breaker-skipped tasks are never persisted (the
// engine enforces that before Save), so an entry always represents a full,
// un-degraded analysis of its inputs.
type TaskEntry struct {
	File  string `json:"file"`
	Class string `json:"class"`
	// Steps is the AST-step count the task spent when it was executed,
	// carried so reuse can account the work it saved.
	Steps    int       `json:"steps"`
	Findings []Finding `json:"findings,omitempty"`
}

// Snapshot is one project's persisted scan state: every reusable task entry
// keyed by its closure fingerprint, under the config digest the entries were
// produced with.
type Snapshot struct {
	Version      int    `json:"version"`
	Project      string `json:"project"`
	ConfigDigest string `json:"config_digest"`
	// Tasks maps fingerprint (hex) to the persisted task result.
	Tasks map[string]*TaskEntry `json:"tasks"`
}

// NewSnapshot returns an empty snapshot for the project/digest pair.
func NewSnapshot(project, configDigest string) *Snapshot {
	return &Snapshot{
		Version:      FormatVersion,
		Project:      project,
		ConfigDigest: configDigest,
		Tasks:        make(map[string]*TaskEntry),
	}
}

// Options tunes a store beyond its directory.
type Options struct {
	// FS is the filesystem seam of the default disk backend; nil uses
	// chaos.OS. Fault-injection tests pass a chaos.Injector. Ignored when
	// Backend is set.
	FS chaos.FS
	// Backend, when set, replaces the default local-disk blob tier.
	// OpenBackend is the usual way to set it.
	Backend Backend
	// MaxBytes caps the store's total size (snapshots plus quarantined
	// blobs). Every save evicts least-recently-used blobs until the store
	// fits; the blob just written is never evicted. 0 means unbounded.
	MaxBytes int64
	// WriteBehind detaches saves from the backend: Save encodes
	// synchronously, enqueues the blob, and returns nil; a background
	// writer performs the Put. The bounded queue (WriteBehindDepth) sheds
	// oldest-first under overload and a newer snapshot of the same project
	// supersedes its queued predecessor in place. Mandatory discipline for
	// remote backends — a scan must never wait on, or fail because of, a
	// remote write.
	WriteBehind bool
	// WriteBehindDepth bounds the write-behind queue. 0 means
	// DefaultWriteBehindDepth.
	WriteBehindDepth int
}

// DefaultWriteBehindDepth bounds the write-behind queue when Options names
// no depth.
const DefaultWriteBehindDepth = 32

// Health is the store's observability account, surfaced by wapd /healthz.
type Health struct {
	// Quarantined counts snapshots moved aside (corrupt or wrong version).
	Quarantined int64 `json:"quarantined,omitempty"`
	// SalvagedEntries counts task entries dropped from readable snapshots.
	SalvagedEntries int64 `json:"salvaged_entries,omitempty"`
	// Evicted counts blobs removed by the size cap.
	Evicted int64 `json:"evicted,omitempty"`
}

// BackendState is the pluggable tier's observability account: the load/save
// outcome counters, the write-behind queue, and — when the backend is
// wrapped in an Envelope — the fault-envelope account (breaker position,
// retries, last error). Surfaced in Report.Stats, /healthz and the
// text/JSON/HTML renderers. Nil for the legacy plain-disk store, whose
// Health counters already tell the whole story.
type BackendState struct {
	// Kind names the tier: "disk", "mem", "http", or "custom".
	Kind string `json:"kind"`
	// Hits/Misses/Degraded count snapshot loads by outcome: served by the
	// backend, definitively absent, and backend-errored (degraded to
	// cache-less). Corrupt counts payloads that failed verification or
	// decode and were quarantined.
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
	Degraded int64 `json:"degraded,omitempty"`
	Corrupt  int64 `json:"corrupt,omitempty"`
	// Write-behind account: snapshots queued, written to the tier, shed
	// oldest-first under overload, superseded in place by a newer snapshot
	// of the same project, and dropped because the write errored. QueueDepth
	// is the current depth, QueueCap the bound. All zero for synchronous
	// (disk) saves.
	Queued      int64 `json:"queued,omitempty"`
	Written     int64 `json:"written,omitempty"`
	Shed        int64 `json:"shed,omitempty"`
	Superseded  int64 `json:"superseded,omitempty"`
	WriteErrors int64 `json:"write_errors,omitempty"`
	QueueDepth  int   `json:"queue_depth,omitempty"`
	QueueCap    int   `json:"queue_cap,omitempty"`
	// Envelope carries the fault-envelope account when the backend is
	// wrapped in one.
	Envelope *EnvelopeState `json:"envelope,omitempty"`
}

// backendKinder lets a backend name its kind for BackendState without the
// store importing it (the HTTP backend lives downstream of this package).
type backendKinder interface{ BackendKind() string }

// BackendKind implements backendKinder for the envelope by delegating to
// the wrapped tier.
func (e *Envelope) BackendKind() string { return backendKind(e.inner) }

func backendKind(b Backend) string {
	switch b.(type) {
	case *DiskBackend:
		return "disk"
	case *MemBackend:
		return "mem"
	}
	if k, ok := b.(backendKinder); ok {
		return k.BackendKind()
	}
	return "custom"
}

// Store is a directory of per-project snapshots over a pluggable blob tier.
// A Store is safe for concurrent use; concurrent saves of the same project
// serialize and the last writer wins (each save rewrites the whole
// snapshot).
//
// Snapshots handed to Save or returned by Load must be treated as immutable
// afterwards: the store keeps the last snapshot it read or wrote per project
// and hands it back from Load while the blob is unchanged (backends with
// Stat only), so a long-lived process rescanning the same project skips the
// JSON decode.
type Store struct {
	backend  Backend
	dir      string // disk backend root, "" otherwise (kept for Dir and tests)
	maxBytes int64
	surface  bool // BackendState is reported (non-default backend or write-behind)

	// statter/toucher/quarantiner are the backend's optional surfaces,
	// asserted once at open.
	statter     Statter
	toucher     Toucher
	quarantiner Quarantiner

	mu    sync.Mutex
	cache map[string]*cachedSnapshot
	// encCache holds, per project, the serialized bytes of each task entry
	// written by the last Save, keyed by entry pointer. Incremental saves
	// re-persist most entries verbatim (the engine shares the pointers), so
	// their bytes are spliced instead of re-marshaled. Replaced wholesale
	// each Save, so dropped entries don't accumulate.
	encCache map[string]map[*TaskEntry]json.RawMessage

	wb *writeBehind

	quarantined atomic.Int64
	salvaged    atomic.Int64
	evicted     atomic.Int64
	hits        atomic.Int64
	misses      atomic.Int64
	degraded    atomic.Int64
	corrupt     atomic.Int64
}

// cachedSnapshot pairs an in-memory snapshot with the blob stat observed
// when it last matched the tier; a stat change (out-of-process write) drops
// it.
type cachedSnapshot struct {
	snap  *Snapshot
	size  int64
	mtime time.Time
}

// Open returns an unbounded store rooted at dir over the real filesystem,
// creating the directory if needed.
func Open(dir string) (*Store, error) {
	return OpenOptions(dir, Options{})
}

// OpenOptions is Open with an explicit filesystem seam and size cap. Stale
// temp files from interrupted saves are removed on open.
func OpenOptions(dir string, opts Options) (*Store, error) {
	if opts.Backend == nil {
		b, err := NewDiskBackend(dir, opts.FS)
		if err != nil {
			return nil, err
		}
		opts.Backend = b
	}
	s := &Store{
		backend:  opts.Backend,
		maxBytes: opts.MaxBytes,
		cache:    make(map[string]*cachedSnapshot),
		encCache: make(map[string]map[*TaskEntry]json.RawMessage),
	}
	if db, ok := opts.Backend.(*DiskBackend); ok {
		s.dir = db.Dir()
	} else {
		s.surface = true
	}
	s.statter, _ = opts.Backend.(Statter)
	s.toucher, _ = opts.Backend.(Toucher)
	s.quarantiner, _ = opts.Backend.(Quarantiner)
	if opts.WriteBehind {
		s.surface = true
		depth := opts.WriteBehindDepth
		if depth <= 0 {
			depth = DefaultWriteBehindDepth
		}
		s.wb = newWriteBehind(s, depth)
	}
	return s, nil
}

// OpenBackend returns a store over an explicit blob tier — the shared-tier
// entry point. Remote backends should come wrapped in an Envelope and with
// Options.WriteBehind set, so the tier's failure modes are paid for out of
// the fault budget, never the scan.
func OpenBackend(b Backend, opts Options) (*Store, error) {
	opts.Backend = b
	return OpenOptions("", opts)
}

// Close flushes the write-behind queue (bounded wait) and stops its writer.
// A store without write-behind needs no Close; calling it is a no-op.
func (s *Store) Close() error {
	if s.wb != nil {
		s.wb.close()
	}
	return nil
}

// Dir returns the store's root directory ("" for non-disk backends).
func (s *Store) Dir() string { return s.dir }

// Backend returns the store's blob tier (the serving mode exposes it over
// HTTP).
func (s *Store) Backend() Backend { return s.backend }

// Health returns the store's self-healing counters.
func (s *Store) Health() Health {
	return Health{
		Quarantined:     s.quarantined.Load(),
		SalvagedEntries: s.salvaged.Load(),
		Evicted:         s.evicted.Load(),
	}
}

// BackendState returns the pluggable-tier account, nil for the legacy
// plain-disk store (local synchronous saves — Health already covers it).
func (s *Store) BackendState() *BackendState {
	if !s.surface {
		return nil
	}
	st := &BackendState{
		Kind:     backendKind(s.backend),
		Hits:     s.hits.Load(),
		Misses:   s.misses.Load(),
		Degraded: s.degraded.Load(),
		Corrupt:  s.corrupt.Load(),
	}
	if s.wb != nil {
		s.wb.fill(st)
	}
	if sr, ok := s.backend.(StateReporter); ok {
		es := sr.EnvelopeState()
		st.Envelope = &es
	}
	return st
}

// key maps a project name to its snapshot blob key. The name is hashed so
// project names with separators or other hostile characters cannot escape
// the store directory (or the URL path of a remote tier).
func (s *Store) key(project string) string {
	sum := sha256.Sum256([]byte(project))
	return fmt.Sprintf("%x.json", sum[:16])
}

// path maps a project name to its snapshot file under a disk backend; tests
// reach into the store with it.
func (s *Store) path(project string) string {
	return filepath.Join(s.dir, s.key(project))
}

// Load reads the project's snapshot. It never fails the scan: a missing,
// unreadable, corrupt, wrong-version, wrong-digest or backend-degraded
// snapshot returns a nil snapshot with the reason, and the caller
// re-executes everything.
func (s *Store) Load(project, configDigest string) (*Snapshot, LoadStatus) {
	snap, info := s.LoadWithInfo(project, configDigest)
	return snap, info.Status
}

// LoadWithInfo is Load with the full self-healing account: the entries a
// salvage dropped and the path a quarantine moved the snapshot to.
func (s *Store) LoadWithInfo(project, configDigest string) (*Snapshot, LoadInfo) {
	return s.LoadWithInfoContext(context.Background(), project, configDigest)
}

// LoadWithInfoContext is LoadWithInfo under a context: backend operations
// and the entry-decode loop observe ctx, so a cancelled or drained job stops
// store I/O promptly (the load then reports a degraded miss).
func (s *Store) LoadWithInfoContext(ctx context.Context, project, configDigest string) (*Snapshot, LoadInfo) {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := s.key(project)

	// Stat-validated cache fast path, for backends that can stat cheaply.
	if s.statter != nil {
		bi, err := s.statter.Stat(ctx, key)
		if err != nil {
			delete(s.cache, project)
			if errors.Is(err, ErrNotFound) {
				s.misses.Add(1)
				return nil, LoadInfo{Status: LoadMiss}
			}
			s.degraded.Add(1)
			return nil, LoadInfo{Status: LoadDegraded}
		}
		if c := s.cache[project]; c != nil && c.size == bi.Size && c.mtime.Equal(bi.ModTime) {
			if c.snap.Version != FormatVersion {
				delete(s.cache, project)
				return nil, LoadInfo{Status: LoadVersionMismatch, Quarantined: s.quarantine(ctx, project, key, nil)}
			}
			if c.snap.ConfigDigest != configDigest {
				return nil, LoadInfo{Status: LoadDigestMismatch}
			}
			s.hits.Add(1)
			s.touch(ctx, project, key, c.snap)
			return c.snap, LoadInfo{Status: LoadHit}
		}
	}

	data, err := s.backend.Get(ctx, key)
	if err != nil {
		if errors.Is(err, ErrNotFound) {
			s.misses.Add(1)
			return nil, LoadInfo{Status: LoadMiss}
		}
		if errors.Is(err, ErrCorrupt) {
			// The payload failed the backend's own content verification
			// (hash mismatch on a remote read): never splice it, move the
			// evidence aside.
			s.corrupt.Add(1)
			return nil, LoadInfo{Status: LoadCorrupt, Quarantined: s.quarantine(ctx, project, key, nil)}
		}
		s.degraded.Add(1)
		return nil, LoadInfo{Status: LoadDegraded}
	}
	snap, salvaged, err := decodeSnapshot(ctx, data)
	if err != nil {
		if ctx.Err() != nil {
			// The caller gave up mid-decode; the blob is not condemned.
			s.degraded.Add(1)
			return nil, LoadInfo{Status: LoadDegraded}
		}
		s.corrupt.Add(1)
		return nil, LoadInfo{Status: LoadCorrupt, Quarantined: s.quarantine(ctx, project, key, data)}
	}
	if snap.Version != FormatVersion {
		return nil, LoadInfo{Status: LoadVersionMismatch, Quarantined: s.quarantine(ctx, project, key, data)}
	}
	if salvaged > 0 {
		s.salvaged.Add(int64(salvaged))
	}
	// Cache on the stat taken before the read: if a concurrent writer
	// replaced the blob in between, the recorded stat will not match the
	// new blob and the next Load re-reads.
	if s.statter != nil {
		if bi, err := s.statter.Stat(ctx, key); err == nil {
			s.cache[project] = &cachedSnapshot{snap: snap, size: bi.Size, mtime: bi.ModTime}
		}
	}
	if snap.ConfigDigest != configDigest {
		return nil, LoadInfo{Status: LoadDigestMismatch, Salvaged: salvaged}
	}
	s.hits.Add(1)
	s.touch(ctx, project, key, snap)
	return snap, LoadInfo{Status: LoadHit, Salvaged: salvaged}
}

// decodeSnapshot parses snapshot bytes with entry-level salvage: the header
// and the task map must parse (anything less is corruption), but an
// individual entry that fails its typed decode is dropped and counted
// rather than condemning its siblings. The loop observes ctx between
// decodes so a cancelled job stops promptly.
func decodeSnapshot(ctx context.Context, data []byte) (*Snapshot, int, error) {
	var raw struct {
		Version      int                        `json:"version"`
		Project      string                     `json:"project"`
		ConfigDigest string                     `json:"config_digest"`
		Tasks        map[string]json.RawMessage `json:"tasks"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, 0, err
	}
	snap := &Snapshot{
		Version:      raw.Version,
		Project:      raw.Project,
		ConfigDigest: raw.ConfigDigest,
		Tasks:        make(map[string]*TaskEntry, len(raw.Tasks)),
	}
	salvaged := 0
	i := 0
	for fp, body := range raw.Tasks {
		if i%ctxCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, 0, err
			}
		}
		i++
		var entry TaskEntry
		if err := json.Unmarshal(body, &entry); err != nil {
			salvaged++
			continue
		}
		snap.Tasks[fp] = &entry
	}
	return snap, salvaged, nil
}

// quarantine moves the project's snapshot aside for diagnosis, returning the
// quarantine path or key ("" when the move failed — the blob is then removed
// so a poisoned snapshot cannot wedge every future load). data is the blob
// when the caller already holds it, nil otherwise. Caller holds s.mu.
func (s *Store) quarantine(ctx context.Context, project, key string, data []byte) string {
	delete(s.cache, project)
	delete(s.encCache, project)
	qkey := key + quarantineSuffix
	if s.quarantiner != nil {
		if err := s.quarantiner.Quarantine(ctx, key, qkey); err != nil {
			return ""
		}
	} else {
		// Copy-then-delete fallback for tiers without an atomic move. The
		// delete matters more than the copy: a poisoned blob must not keep
		// serving.
		if data == nil {
			data, _ = s.backend.Get(ctx, key)
		}
		put := error(nil)
		if data != nil {
			put = s.backend.Put(ctx, qkey, data)
		}
		if err := s.backend.Delete(ctx, key); err != nil || put != nil {
			return ""
		}
	}
	s.quarantined.Add(1)
	if s.dir != "" {
		return filepath.Join(s.dir, qkey)
	}
	return qkey
}

// touch bumps the snapshot's last-use time so eviction order tracks use,
// then re-records the stat so the in-memory cache still matches the tier.
// Best-effort; caller holds s.mu.
func (s *Store) touch(ctx context.Context, project, key string, snap *Snapshot) {
	if s.maxBytes <= 0 || s.toucher == nil {
		return // LRU order is only consulted by the size cap
	}
	if err := s.toucher.Touch(ctx, key); err != nil {
		return
	}
	if s.statter != nil {
		if bi, err := s.statter.Stat(ctx, key); err == nil {
			s.cache[project] = &cachedSnapshot{snap: snap, size: bi.Size, mtime: bi.ModTime}
		}
	}
}

// Save atomically replaces the project's snapshot. The write is whole-blob:
// entries for fingerprints not in snap (stale file versions, removed files)
// are dropped, so the store self-prunes as the project evolves. With a size
// cap configured, least-recently-used snapshots are evicted afterwards until
// the store fits. With write-behind enabled the blob is queued and Save
// returns nil immediately; a shed or failed remote write costs the fleet a
// warm start, never the scan anything.
func (s *Store) Save(snap *Snapshot) error {
	return s.SaveContext(context.Background(), snap)
}

// SaveContext is Save under a context: the entry-encode loop and the
// backend write observe ctx, so a cancelled or drained job stops store I/O
// promptly.
func (s *Store) SaveContext(ctx context.Context, snap *Snapshot) error {
	if snap.Version == 0 {
		snap.Version = FormatVersion
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	data, err := s.encode(ctx, snap)
	if err != nil {
		return fmt.Errorf("resultstore: encode %s: %w", snap.Project, err)
	}
	key := s.key(snap.Project)
	if s.wb != nil {
		s.wb.enqueue(snap.Project, key, data)
		return nil
	}
	if err := s.backend.Put(ctx, key, data); err != nil {
		return fmt.Errorf("resultstore: save %s: %w", snap.Project, err)
	}
	if s.statter != nil {
		if bi, err := s.statter.Stat(ctx, key); err == nil {
			s.cache[snap.Project] = &cachedSnapshot{snap: snap, size: bi.Size, mtime: bi.ModTime}
		} else {
			delete(s.cache, snap.Project)
		}
	}
	s.enforceCap(ctx, key)
	return nil
}

// enforceCap evicts least-recently-used blobs until the total size fits
// MaxBytes. keep is never evicted — it is the snapshot that was just
// written. Caller holds s.mu. Best-effort: an eviction failure leaves the
// store over cap until the next save retries.
func (s *Store) enforceCap(ctx context.Context, keep string) {
	if s.maxBytes <= 0 {
		return
	}
	blobs, err := s.backend.List(ctx)
	if err != nil {
		return
	}
	var (
		files []BlobInfo
		total int64
	)
	for _, b := range blobs {
		if !strings.HasSuffix(b.Key, ".json") && !strings.HasSuffix(b.Key, quarantineSuffix) {
			continue
		}
		files = append(files, b)
		total += b.Size
	}
	if total <= s.maxBytes {
		return
	}
	sort.Slice(files, func(i, j int) bool { return files[i].ModTime.Before(files[j].ModTime) })
	// Invalidate in-memory state for evicted snapshots by key, so a later
	// Load of that project re-reads (and misses) instead of serving a
	// cached snapshot for a blob the cap removed.
	keyProject := make(map[string]string, len(s.cache))
	for project := range s.cache {
		keyProject[s.key(project)] = project
	}
	for _, f := range files {
		if total <= s.maxBytes {
			return
		}
		if f.Key == keep {
			continue
		}
		if err := s.backend.Delete(ctx, f.Key); err != nil {
			continue
		}
		total -= f.Size
		s.evicted.Add(1)
		if project, ok := keyProject[f.Key]; ok {
			delete(s.cache, project)
			delete(s.encCache, project)
		}
	}
}

// encode serializes the snapshot, splicing the bytes of entries unchanged
// since the last Save (pointer-identical) instead of re-marshaling them. The
// assembled document is byte-compatible with json.Marshal of Snapshot:
// fingerprint keys are hex (no escaping concerns) and emitted sorted, as
// encoding/json sorts map keys. The loop observes ctx between entries.
// Caller holds s.mu.
func (s *Store) encode(ctx context.Context, snap *Snapshot) ([]byte, error) {
	prev := s.encCache[snap.Project]
	next := make(map[*TaskEntry]json.RawMessage, len(snap.Tasks))
	fps := make([]string, 0, len(snap.Tasks))
	for fp := range snap.Tasks {
		fps = append(fps, fp)
	}
	sort.Strings(fps)

	var buf bytes.Buffer
	head, err := json.Marshal(struct {
		Version      int    `json:"version"`
		Project      string `json:"project"`
		ConfigDigest string `json:"config_digest"`
	}{snap.Version, snap.Project, snap.ConfigDigest})
	if err != nil {
		return nil, err
	}
	buf.Write(head[:len(head)-1]) // drop the closing brace; tasks follow
	buf.WriteString(`,"tasks":{`)
	for i, fp := range fps {
		if i%ctxCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if i > 0 {
			buf.WriteByte(',')
		}
		key, err := json.Marshal(fp)
		if err != nil {
			return nil, err
		}
		buf.Write(key)
		buf.WriteByte(':')
		entry := snap.Tasks[fp]
		raw, ok := prev[entry]
		if !ok {
			raw, err = json.Marshal(entry)
			if err != nil {
				return nil, err
			}
		}
		buf.Write(raw)
		next[entry] = raw
	}
	buf.WriteString("}}")
	s.encCache[snap.Project] = next
	return buf.Bytes(), nil
}
