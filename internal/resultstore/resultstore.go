// Package resultstore persists per-task scan results between runs, keyed by
// closure fingerprints, so an incremental rescan can reuse the findings of
// every (file, class) task whose inputs did not change.
//
// The store is deliberately dumb: it knows nothing about the engine beyond
// the serialized schema below. The engine computes the fingerprints (file
// content hash + reachable-closure hashes + config digest) and decides what
// is safe to persist; the store only guarantees
//
//   - atomicity: snapshots are written via internal/atomicfile, so a crash
//     mid-save can never leave a truncated store that a later scan would
//     misread;
//   - self-invalidation: a snapshot whose format version or config digest
//     does not match the reader's, or that fails to parse at all, is
//     discarded wholesale — the caller falls back to a full re-execute,
//     never a wrong reuse.
//
// One snapshot file per project lives under the store directory, named by a
// hash of the project name so arbitrary names stay filesystem-safe.
package resultstore

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/atomicfile"
)

// FormatVersion is the on-disk schema version. Any change to the types below
// that is not strictly additive must bump it; readers discard snapshots
// written under a different version.
const FormatVersion = 1

// LoadStatus reports how a Load call was satisfied. Anything but LoadHit
// means the caller starts from an empty snapshot (full re-execute).
type LoadStatus string

// Load outcomes.
const (
	LoadHit             LoadStatus = "hit"
	LoadMiss            LoadStatus = "miss"
	LoadCorrupt         LoadStatus = "corrupt"
	LoadVersionMismatch LoadStatus = "version-mismatch"
	LoadDigestMismatch  LoadStatus = "digest-mismatch"
)

// Position is a serialized token.Position.
type Position struct {
	File   string `json:"file,omitempty"`
	Offset int    `json:"offset"`
	Line   int    `json:"line"`
	Column int    `json:"column"`
}

// NodeRef addresses one AST node of the scanned project: the path of the
// file whose AST contains it plus the node's index in a deterministic
// preorder walk of that file. Because a task is only reused when every file
// in its closure is byte-identical, the re-parsed AST is identical and the
// index resolves to the same node. Index -1 encodes a nil node.
type NodeRef struct {
	File  string `json:"file,omitempty"`
	Index int    `json:"index"`
}

// Source is a serialized taint.Source.
type Source struct {
	Name string   `json:"name"`
	Pos  Position `json:"pos"`
}

// Step is a serialized taint.Step.
type Step struct {
	Pos  Position `json:"pos"`
	Desc string   `json:"desc"`
	Node NodeRef  `json:"node"`
}

// Value is a serialized taint.Value.
type Value struct {
	Tainted    bool     `json:"tainted"`
	Sources    []Source `json:"sources,omitempty"`
	Sanitizers []string `json:"sanitizers,omitempty"`
	Trace      []Step   `json:"trace,omitempty"`
}

// Finding is one serialized engine finding: the candidate, its symptom set
// and the predictor's verdict.
type Finding struct {
	Class         string          `json:"class"`
	SinkName      string          `json:"sink"`
	SinkPos       Position        `json:"sink_pos"`
	SinkCall      NodeRef         `json:"sink_call"`
	ArgIndex      int             `json:"arg_index"`
	TaintedExpr   NodeRef         `json:"tainted_expr"`
	Value         Value           `json:"value"`
	EnclosingFunc string          `json:"enclosing_func,omitempty"`
	File          string          `json:"file"`
	Symptoms      map[string]bool `json:"symptoms,omitempty"`
	PredictedFP   bool            `json:"predicted_fp"`
	Votes         []bool          `json:"votes,omitempty"`
	Weapon        string          `json:"weapon,omitempty"`
}

// TaskEntry is the persisted result of one cleanly completed (file, class)
// task. Faulted, retried and breaker-skipped tasks are never persisted (the
// engine enforces that before Save), so an entry always represents a full,
// un-degraded analysis of its inputs.
type TaskEntry struct {
	File  string `json:"file"`
	Class string `json:"class"`
	// Steps is the AST-step count the task spent when it was executed,
	// carried so reuse can account the work it saved.
	Steps    int       `json:"steps"`
	Findings []Finding `json:"findings,omitempty"`
}

// Snapshot is one project's persisted scan state: every reusable task entry
// keyed by its closure fingerprint, under the config digest the entries were
// produced with.
type Snapshot struct {
	Version      int    `json:"version"`
	Project      string `json:"project"`
	ConfigDigest string `json:"config_digest"`
	// Tasks maps fingerprint (hex) to the persisted task result.
	Tasks map[string]*TaskEntry `json:"tasks"`
}

// NewSnapshot returns an empty snapshot for the project/digest pair.
func NewSnapshot(project, configDigest string) *Snapshot {
	return &Snapshot{
		Version:      FormatVersion,
		Project:      project,
		ConfigDigest: configDigest,
		Tasks:        make(map[string]*TaskEntry),
	}
}

// Store is a directory of per-project snapshots. A Store is safe for
// concurrent use; concurrent saves of the same project serialize and the
// last writer wins (each save rewrites the whole snapshot).
//
// Snapshots handed to Save or returned by Load must be treated as immutable
// afterwards: the store keeps the last snapshot it read or wrote per project
// and hands it back from Load while the file on disk is unchanged, so a
// long-lived process rescanning the same project skips the JSON decode.
type Store struct {
	dir   string
	mu    sync.Mutex
	cache map[string]*cachedSnapshot
	// encCache holds, per project, the serialized bytes of each task entry
	// written by the last Save, keyed by entry pointer. Incremental saves
	// re-persist most entries verbatim (the engine shares the pointers), so
	// their bytes are spliced instead of re-marshaled. Replaced wholesale
	// each Save, so dropped entries don't accumulate.
	encCache map[string]map[*TaskEntry]json.RawMessage
}

// cachedSnapshot pairs an in-memory snapshot with the file stat observed
// when it last matched disk; a stat change (out-of-process write) drops it.
type cachedSnapshot struct {
	snap  *Snapshot
	size  int64
	mtime time.Time
}

// Open returns a store rooted at dir, creating the directory if needed.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultstore: open %s: %w", dir, err)
	}
	return &Store{
		dir:      dir,
		cache:    make(map[string]*cachedSnapshot),
		encCache: make(map[string]map[*TaskEntry]json.RawMessage),
	}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// path maps a project name to its snapshot file. The name is hashed so
// project names with separators or other hostile characters cannot escape
// the store directory.
func (s *Store) path(project string) string {
	sum := sha256.Sum256([]byte(project))
	return filepath.Join(s.dir, fmt.Sprintf("%x.json", sum[:16]))
}

// Load reads the project's snapshot. It never fails the scan: a missing,
// unreadable, corrupt, wrong-version or wrong-digest snapshot returns a nil
// snapshot with the reason, and the caller re-executes everything.
func (s *Store) Load(project, configDigest string) (*Snapshot, LoadStatus) {
	s.mu.Lock()
	defer s.mu.Unlock()
	path := s.path(project)
	fi, err := os.Stat(path)
	if err != nil {
		delete(s.cache, project)
		return nil, LoadMiss
	}
	if c := s.cache[project]; c != nil && c.size == fi.Size() && c.mtime.Equal(fi.ModTime()) {
		if c.snap.Version != FormatVersion {
			return nil, LoadVersionMismatch
		}
		if c.snap.ConfigDigest != configDigest {
			return nil, LoadDigestMismatch
		}
		return c.snap, LoadHit
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, LoadMiss
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, LoadCorrupt
	}
	if snap.Version != FormatVersion {
		return nil, LoadVersionMismatch
	}
	if snap.Tasks == nil {
		snap.Tasks = make(map[string]*TaskEntry)
	}
	// Cache on the stat taken before the read: if a concurrent writer
	// replaced the file in between, the recorded stat will not match the
	// new file and the next Load re-reads.
	s.cache[project] = &cachedSnapshot{snap: &snap, size: fi.Size(), mtime: fi.ModTime()}
	if snap.ConfigDigest != configDigest {
		return nil, LoadDigestMismatch
	}
	return &snap, LoadHit
}

// Save atomically replaces the project's snapshot. The write is whole-file:
// entries for fingerprints not in snap (stale file versions, removed files)
// are dropped, so the store self-prunes as the project evolves.
func (s *Store) Save(snap *Snapshot) error {
	if snap.Version == 0 {
		snap.Version = FormatVersion
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	data, err := s.encode(snap)
	if err != nil {
		return fmt.Errorf("resultstore: encode %s: %w", snap.Project, err)
	}
	path := s.path(snap.Project)
	// No fsync: the store is a cache. A crash that loses or tears the
	// snapshot costs the next scan its warm start (torn reads parse as
	// corrupt and fall back to a full re-execute), never correctness.
	if err := atomicfile.WriteFileNoSync(path, data, 0o644); err != nil {
		return fmt.Errorf("resultstore: save %s: %w", snap.Project, err)
	}
	if fi, err := os.Stat(path); err == nil {
		s.cache[snap.Project] = &cachedSnapshot{snap: snap, size: fi.Size(), mtime: fi.ModTime()}
	} else {
		delete(s.cache, snap.Project)
	}
	return nil
}

// encode serializes the snapshot, splicing the bytes of entries unchanged
// since the last Save (pointer-identical) instead of re-marshaling them. The
// assembled document is byte-compatible with json.Marshal of Snapshot:
// fingerprint keys are hex (no escaping concerns) and emitted sorted, as
// encoding/json sorts map keys. Caller holds s.mu.
func (s *Store) encode(snap *Snapshot) ([]byte, error) {
	prev := s.encCache[snap.Project]
	next := make(map[*TaskEntry]json.RawMessage, len(snap.Tasks))
	fps := make([]string, 0, len(snap.Tasks))
	for fp := range snap.Tasks {
		fps = append(fps, fp)
	}
	sort.Strings(fps)

	var buf bytes.Buffer
	head, err := json.Marshal(struct {
		Version      int    `json:"version"`
		Project      string `json:"project"`
		ConfigDigest string `json:"config_digest"`
	}{snap.Version, snap.Project, snap.ConfigDigest})
	if err != nil {
		return nil, err
	}
	buf.Write(head[:len(head)-1]) // drop the closing brace; tasks follow
	buf.WriteString(`,"tasks":{`)
	for i, fp := range fps {
		if i > 0 {
			buf.WriteByte(',')
		}
		key, err := json.Marshal(fp)
		if err != nil {
			return nil, err
		}
		buf.Write(key)
		buf.WriteByte(':')
		entry := snap.Tasks[fp]
		raw, ok := prev[entry]
		if !ok {
			raw, err = json.Marshal(entry)
			if err != nil {
				return nil, err
			}
		}
		buf.Write(raw)
		next[entry] = raw
	}
	buf.WriteString("}}")
	s.encCache[snap.Project] = next
	return buf.Bytes(), nil
}
