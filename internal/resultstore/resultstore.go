// Package resultstore persists per-task scan results between runs, keyed by
// closure fingerprints, so an incremental rescan can reuse the findings of
// every (file, class) task whose inputs did not change.
//
// The store is deliberately dumb: it knows nothing about the engine beyond
// the serialized schema below. The engine computes the fingerprints (file
// content hash + reachable-closure hashes + config digest) and decides what
// is safe to persist; the store only guarantees
//
//   - atomicity: snapshots are written via temp-file-and-rename (through the
//     chaos.FS seam, so fault-injection tests cover every write path), so a
//     crash mid-save can never leave a truncated store that a later scan
//     would misread;
//   - self-healing, never silent loss: a snapshot that fails to parse, or
//     whose format version does not match the reader's, is quarantined —
//     moved aside under a ".quarantined" suffix for diagnosis — and the
//     caller re-executes from scratch with the event surfaced (LoadInfo,
//     Health counters, and a DiagStoreQuarantined report diagnostic
//     upstream). A snapshot that parses but carries individual undecodable
//     task entries is salvaged: the bad entries are dropped and counted, the
//     rest load normally;
//   - bounded disk: with MaxBytes set, every save evicts least-recently-used
//     snapshots (including quarantined ones) until the store fits, so a
//     long-running replica cannot fill the disk. Loads touch their
//     snapshot's mtime, making mtime order the LRU order.
//
// One snapshot file per project lives under the store directory, named by a
// hash of the project name so arbitrary names stay filesystem-safe.
package resultstore

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
)

// FormatVersion is the on-disk schema version. Any change to the types below
// that is not strictly additive must bump it; readers quarantine snapshots
// written under a different version.
const FormatVersion = 1

// quarantineSuffix is appended to a snapshot path when it is moved aside.
// One quarantine file per project: a later quarantine of the same project
// replaces it, so diagnosis artifacts cannot accumulate without bound.
const quarantineSuffix = ".quarantined"

// LoadStatus reports how a Load call was satisfied. Anything but LoadHit
// means the caller starts from an empty snapshot (full re-execute).
type LoadStatus string

// Load outcomes.
const (
	LoadHit             LoadStatus = "hit"
	LoadMiss            LoadStatus = "miss"
	LoadCorrupt         LoadStatus = "corrupt"
	LoadVersionMismatch LoadStatus = "version-mismatch"
	LoadDigestMismatch  LoadStatus = "digest-mismatch"
)

// LoadInfo is the full account of one Load: the status plus the self-healing
// actions the load performed.
type LoadInfo struct {
	Status LoadStatus
	// Salvaged counts task entries dropped from an otherwise readable
	// snapshot because they failed to decode; the surviving entries loaded
	// normally and the dropped tasks simply re-execute.
	Salvaged int
	// Quarantined is the path an unreadable or wrong-version snapshot was
	// moved to, "" when nothing was quarantined.
	Quarantined string
}

// Position is a serialized token.Position.
type Position struct {
	File   string `json:"file,omitempty"`
	Offset int    `json:"offset"`
	Line   int    `json:"line"`
	Column int    `json:"column"`
}

// NodeRef addresses one AST node of the scanned project: the path of the
// file whose AST contains it plus the node's index in a deterministic
// preorder walk of that file. Because a task is only reused when every file
// in its closure is byte-identical, the re-parsed AST is identical and the
// index resolves to the same node. Index -1 encodes a nil node.
type NodeRef struct {
	File  string `json:"file,omitempty"`
	Index int    `json:"index"`
}

// Source is a serialized taint.Source.
type Source struct {
	Name string   `json:"name"`
	Pos  Position `json:"pos"`
}

// Step is a serialized taint.Step.
type Step struct {
	Pos  Position `json:"pos"`
	Desc string   `json:"desc"`
	Node NodeRef  `json:"node"`
}

// Value is a serialized taint.Value.
type Value struct {
	Tainted    bool     `json:"tainted"`
	Sources    []Source `json:"sources,omitempty"`
	Sanitizers []string `json:"sanitizers,omitempty"`
	Trace      []Step   `json:"trace,omitempty"`
}

// Finding is one serialized engine finding: the candidate, its symptom set
// and the predictor's verdict.
type Finding struct {
	Class         string          `json:"class"`
	SinkName      string          `json:"sink"`
	SinkPos       Position        `json:"sink_pos"`
	SinkCall      NodeRef         `json:"sink_call"`
	ArgIndex      int             `json:"arg_index"`
	TaintedExpr   NodeRef         `json:"tainted_expr"`
	Value         Value           `json:"value"`
	EnclosingFunc string          `json:"enclosing_func,omitempty"`
	File          string          `json:"file"`
	Symptoms      map[string]bool `json:"symptoms,omitempty"`
	PredictedFP   bool            `json:"predicted_fp"`
	Votes         []bool          `json:"votes,omitempty"`
	Weapon        string          `json:"weapon,omitempty"`
}

// TaskEntry is the persisted result of one cleanly completed (file, class)
// task. Faulted, retried and breaker-skipped tasks are never persisted (the
// engine enforces that before Save), so an entry always represents a full,
// un-degraded analysis of its inputs.
type TaskEntry struct {
	File  string `json:"file"`
	Class string `json:"class"`
	// Steps is the AST-step count the task spent when it was executed,
	// carried so reuse can account the work it saved.
	Steps    int       `json:"steps"`
	Findings []Finding `json:"findings,omitempty"`
}

// Snapshot is one project's persisted scan state: every reusable task entry
// keyed by its closure fingerprint, under the config digest the entries were
// produced with.
type Snapshot struct {
	Version      int    `json:"version"`
	Project      string `json:"project"`
	ConfigDigest string `json:"config_digest"`
	// Tasks maps fingerprint (hex) to the persisted task result.
	Tasks map[string]*TaskEntry `json:"tasks"`
}

// NewSnapshot returns an empty snapshot for the project/digest pair.
func NewSnapshot(project, configDigest string) *Snapshot {
	return &Snapshot{
		Version:      FormatVersion,
		Project:      project,
		ConfigDigest: configDigest,
		Tasks:        make(map[string]*TaskEntry),
	}
}

// Options tunes a store beyond its directory.
type Options struct {
	// FS is the filesystem seam; nil uses chaos.OS. Fault-injection tests
	// pass a chaos.Injector.
	FS chaos.FS
	// MaxBytes caps the store's total on-disk size (snapshots plus
	// quarantined files). Every save evicts least-recently-used files until
	// the store fits; the file just written is never evicted. 0 means
	// unbounded.
	MaxBytes int64
}

// Health is the store's observability account, surfaced by wapd /healthz.
type Health struct {
	// Quarantined counts snapshots moved aside (corrupt or wrong version).
	Quarantined int64 `json:"quarantined,omitempty"`
	// SalvagedEntries counts task entries dropped from readable snapshots.
	SalvagedEntries int64 `json:"salvaged_entries,omitempty"`
	// Evicted counts files removed by the size cap.
	Evicted int64 `json:"evicted,omitempty"`
}

// Store is a directory of per-project snapshots. A Store is safe for
// concurrent use; concurrent saves of the same project serialize and the
// last writer wins (each save rewrites the whole snapshot).
//
// Snapshots handed to Save or returned by Load must be treated as immutable
// afterwards: the store keeps the last snapshot it read or wrote per project
// and hands it back from Load while the file on disk is unchanged, so a
// long-lived process rescanning the same project skips the JSON decode.
type Store struct {
	dir      string
	fs       chaos.FS
	maxBytes int64

	mu    sync.Mutex
	cache map[string]*cachedSnapshot
	// encCache holds, per project, the serialized bytes of each task entry
	// written by the last Save, keyed by entry pointer. Incremental saves
	// re-persist most entries verbatim (the engine shares the pointers), so
	// their bytes are spliced instead of re-marshaled. Replaced wholesale
	// each Save, so dropped entries don't accumulate.
	encCache map[string]map[*TaskEntry]json.RawMessage

	quarantined atomic.Int64
	salvaged    atomic.Int64
	evicted     atomic.Int64
}

// cachedSnapshot pairs an in-memory snapshot with the file stat observed
// when it last matched disk; a stat change (out-of-process write) drops it.
type cachedSnapshot struct {
	snap  *Snapshot
	size  int64
	mtime time.Time
}

// Open returns an unbounded store rooted at dir over the real filesystem,
// creating the directory if needed.
func Open(dir string) (*Store, error) {
	return OpenOptions(dir, Options{})
}

// OpenOptions is Open with an explicit filesystem seam and size cap. Stale
// temp files from interrupted saves are removed on open.
func OpenOptions(dir string, opts Options) (*Store, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = chaos.OS
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultstore: open %s: %w", dir, err)
	}
	s := &Store{
		dir:      dir,
		fs:       fsys,
		maxBytes: opts.MaxBytes,
		cache:    make(map[string]*cachedSnapshot),
		encCache: make(map[string]map[*TaskEntry]json.RawMessage),
	}
	s.sweepTemp()
	return s, nil
}

// sweepTemp removes temp-file litter left by saves a crash interrupted.
// Best-effort: a sweep failure costs stray files, never the store.
func (s *Store) sweepTemp() {
	entries, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, ".") && strings.Contains(name, ".tmp-") {
			_ = s.fs.Remove(filepath.Join(s.dir, name))
		}
	}
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Health returns the store's self-healing counters.
func (s *Store) Health() Health {
	return Health{
		Quarantined:     s.quarantined.Load(),
		SalvagedEntries: s.salvaged.Load(),
		Evicted:         s.evicted.Load(),
	}
}

// path maps a project name to its snapshot file. The name is hashed so
// project names with separators or other hostile characters cannot escape
// the store directory.
func (s *Store) path(project string) string {
	sum := sha256.Sum256([]byte(project))
	return filepath.Join(s.dir, fmt.Sprintf("%x.json", sum[:16]))
}

// Load reads the project's snapshot. It never fails the scan: a missing,
// unreadable, corrupt, wrong-version or wrong-digest snapshot returns a nil
// snapshot with the reason, and the caller re-executes everything.
func (s *Store) Load(project, configDigest string) (*Snapshot, LoadStatus) {
	snap, info := s.LoadWithInfo(project, configDigest)
	return snap, info.Status
}

// LoadWithInfo is Load with the full self-healing account: the entries a
// salvage dropped and the path a quarantine moved the snapshot to.
func (s *Store) LoadWithInfo(project, configDigest string) (*Snapshot, LoadInfo) {
	s.mu.Lock()
	defer s.mu.Unlock()
	path := s.path(project)
	fi, err := s.fs.Stat(path)
	if err != nil {
		delete(s.cache, project)
		return nil, LoadInfo{Status: LoadMiss}
	}
	if c := s.cache[project]; c != nil && c.size == fi.Size() && c.mtime.Equal(fi.ModTime()) {
		if c.snap.Version != FormatVersion {
			delete(s.cache, project)
			return nil, LoadInfo{Status: LoadVersionMismatch, Quarantined: s.quarantine(project, path)}
		}
		if c.snap.ConfigDigest != configDigest {
			return nil, LoadInfo{Status: LoadDigestMismatch}
		}
		s.touch(project, path, c.snap)
		return c.snap, LoadInfo{Status: LoadHit}
	}
	data, err := s.fs.ReadFile(path)
	if err != nil {
		return nil, LoadInfo{Status: LoadMiss}
	}
	snap, salvaged, err := decodeSnapshot(data)
	if err != nil {
		return nil, LoadInfo{Status: LoadCorrupt, Quarantined: s.quarantine(project, path)}
	}
	if snap.Version != FormatVersion {
		return nil, LoadInfo{Status: LoadVersionMismatch, Quarantined: s.quarantine(project, path)}
	}
	if salvaged > 0 {
		s.salvaged.Add(int64(salvaged))
	}
	// Cache on the stat taken before the read: if a concurrent writer
	// replaced the file in between, the recorded stat will not match the
	// new file and the next Load re-reads.
	s.cache[project] = &cachedSnapshot{snap: snap, size: fi.Size(), mtime: fi.ModTime()}
	if snap.ConfigDigest != configDigest {
		return nil, LoadInfo{Status: LoadDigestMismatch, Salvaged: salvaged}
	}
	s.touch(project, path, snap)
	return snap, LoadInfo{Status: LoadHit, Salvaged: salvaged}
}

// decodeSnapshot parses snapshot bytes with entry-level salvage: the header
// and the task map must parse (anything less is corruption), but an
// individual entry that fails its typed decode is dropped and counted
// rather than condemning its siblings.
func decodeSnapshot(data []byte) (*Snapshot, int, error) {
	var raw struct {
		Version      int                        `json:"version"`
		Project      string                     `json:"project"`
		ConfigDigest string                     `json:"config_digest"`
		Tasks        map[string]json.RawMessage `json:"tasks"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, 0, err
	}
	snap := &Snapshot{
		Version:      raw.Version,
		Project:      raw.Project,
		ConfigDigest: raw.ConfigDigest,
		Tasks:        make(map[string]*TaskEntry, len(raw.Tasks)),
	}
	salvaged := 0
	for fp, body := range raw.Tasks {
		var entry TaskEntry
		if err := json.Unmarshal(body, &entry); err != nil {
			salvaged++
			continue
		}
		snap.Tasks[fp] = &entry
	}
	return snap, salvaged, nil
}

// quarantine moves the project's snapshot aside for diagnosis, returning the
// quarantine path ("" when the move failed — the file is then removed so a
// poisoned snapshot cannot wedge every future load). Caller holds s.mu.
func (s *Store) quarantine(project, path string) string {
	delete(s.cache, project)
	delete(s.encCache, project)
	qpath := path + quarantineSuffix
	if err := s.fs.Rename(path, qpath); err != nil {
		_ = s.fs.Remove(path)
		return ""
	}
	s.quarantined.Add(1)
	return qpath
}

// touch bumps the snapshot's mtime so eviction order tracks use, then
// re-records the stat so the in-memory cache still matches disk.
// Best-effort; caller holds s.mu.
func (s *Store) touch(project, path string, snap *Snapshot) {
	if s.maxBytes <= 0 {
		return // LRU order is only consulted by the size cap
	}
	now := time.Now()
	if err := s.fs.Chtimes(path, now, now); err != nil {
		return
	}
	if fi, err := s.fs.Stat(path); err == nil {
		s.cache[project] = &cachedSnapshot{snap: snap, size: fi.Size(), mtime: fi.ModTime()}
	}
}

// Save atomically replaces the project's snapshot. The write is whole-file:
// entries for fingerprints not in snap (stale file versions, removed files)
// are dropped, so the store self-prunes as the project evolves. With a size
// cap configured, least-recently-used snapshots are evicted afterwards until
// the store fits.
func (s *Store) Save(snap *Snapshot) error {
	if snap.Version == 0 {
		snap.Version = FormatVersion
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	data, err := s.encode(snap)
	if err != nil {
		return fmt.Errorf("resultstore: encode %s: %w", snap.Project, err)
	}
	path := s.path(snap.Project)
	// No fsync: the store is a cache. A crash that loses or tears the
	// snapshot costs the next scan its warm start (torn reads parse as
	// corrupt, are quarantined, and fall back to a full re-execute), never
	// correctness. The job journal, which IS the source of truth for
	// accepted work, fsyncs; see internal/journal.
	if err := chaos.WriteFileAtomic(s.fs, path, data, 0o644, false); err != nil {
		return fmt.Errorf("resultstore: save %s: %w", snap.Project, err)
	}
	if fi, err := s.fs.Stat(path); err == nil {
		s.cache[snap.Project] = &cachedSnapshot{snap: snap, size: fi.Size(), mtime: fi.ModTime()}
	} else {
		delete(s.cache, snap.Project)
	}
	s.enforceCap(filepath.Base(path))
	return nil
}

// enforceCap evicts least-recently-used store files until the total size
// fits MaxBytes. keep (a base name) is never evicted — it is the snapshot
// that was just written. Caller holds s.mu. Best-effort: an eviction
// failure leaves the store over cap until the next save retries.
func (s *Store) enforceCap(keep string) {
	if s.maxBytes <= 0 {
		return
	}
	entries, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return
	}
	type fileInfo struct {
		name  string
		size  int64
		mtime time.Time
	}
	var (
		files []fileInfo
		total int64
	)
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".json") && !strings.HasSuffix(name, quarantineSuffix) {
			continue
		}
		fi, err := s.fs.Stat(filepath.Join(s.dir, name))
		if err != nil {
			continue
		}
		files = append(files, fileInfo{name: name, size: fi.Size(), mtime: fi.ModTime()})
		total += fi.Size()
	}
	if total <= s.maxBytes {
		return
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mtime.Before(files[j].mtime) })
	// Invalidate in-memory state for evicted snapshots by path, so a later
	// Load of that project re-reads (and misses) instead of serving a
	// cached snapshot for a file the cap removed.
	pathProject := make(map[string]string, len(s.cache))
	for project := range s.cache {
		pathProject[filepath.Base(s.path(project))] = project
	}
	for _, f := range files {
		if total <= s.maxBytes {
			return
		}
		if f.name == keep {
			continue
		}
		if err := s.fs.Remove(filepath.Join(s.dir, f.name)); err != nil {
			continue
		}
		total -= f.size
		s.evicted.Add(1)
		if project, ok := pathProject[f.name]; ok {
			delete(s.cache, project)
			delete(s.encCache, project)
		}
	}
}

// encode serializes the snapshot, splicing the bytes of entries unchanged
// since the last Save (pointer-identical) instead of re-marshaling them. The
// assembled document is byte-compatible with json.Marshal of Snapshot:
// fingerprint keys are hex (no escaping concerns) and emitted sorted, as
// encoding/json sorts map keys. Caller holds s.mu.
func (s *Store) encode(snap *Snapshot) ([]byte, error) {
	prev := s.encCache[snap.Project]
	next := make(map[*TaskEntry]json.RawMessage, len(snap.Tasks))
	fps := make([]string, 0, len(snap.Tasks))
	for fp := range snap.Tasks {
		fps = append(fps, fp)
	}
	sort.Strings(fps)

	var buf bytes.Buffer
	head, err := json.Marshal(struct {
		Version      int    `json:"version"`
		Project      string `json:"project"`
		ConfigDigest string `json:"config_digest"`
	}{snap.Version, snap.Project, snap.ConfigDigest})
	if err != nil {
		return nil, err
	}
	buf.Write(head[:len(head)-1]) // drop the closing brace; tasks follow
	buf.WriteString(`,"tasks":{`)
	for i, fp := range fps {
		if i > 0 {
			buf.WriteByte(',')
		}
		key, err := json.Marshal(fp)
		if err != nil {
			return nil, err
		}
		buf.Write(key)
		buf.WriteByte(':')
		entry := snap.Tasks[fp]
		raw, ok := prev[entry]
		if !ok {
			raw, err = json.Marshal(entry)
			if err != nil {
				return nil, err
			}
		}
		buf.Write(raw)
		next[entry] = raw
	}
	buf.WriteString("}}")
	s.encCache[snap.Project] = next
	return buf.Bytes(), nil
}
