package resultstore

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"context"

	"repro/internal/chaos"
)

// DiskBackend is the production local tier: one file per blob under a
// directory, every operation through the chaos.FS seam so the existing
// fault-injection suites cover it unchanged. It carries the full optional
// surface — Stat (the store's stat-validated snapshot cache), Touch (LRU
// mtime bumps), and a rename-based Quarantine that preserves the damaged
// bytes exactly.
//
// This is the same code path the store always ran; extracting it behind
// Backend adds one interface dispatch per filesystem operation, which the
// benchtrend smoke pins as noise against the I/O it fronts.
type DiskBackend struct {
	dir string
	fs  chaos.FS
}

// NewDiskBackend opens (creating if needed) the blob directory over fsys
// (nil means chaos.OS) and sweeps temp-file litter left by interrupted
// writes.
func NewDiskBackend(dir string, fsys chaos.FS) (*DiskBackend, error) {
	if fsys == nil {
		fsys = chaos.OS
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultstore: open %s: %w", dir, err)
	}
	b := &DiskBackend{dir: dir, fs: fsys}
	b.sweepTemp()
	return b, nil
}

// Dir returns the backend's root directory.
func (b *DiskBackend) Dir() string { return b.dir }

// sweepTemp removes temp-file litter left by writes a crash interrupted.
// Best-effort: a sweep failure costs stray files, never the store.
func (b *DiskBackend) sweepTemp() {
	entries, err := b.fs.ReadDir(b.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, ".") && strings.Contains(name, ".tmp-") {
			_ = b.fs.Remove(filepath.Join(b.dir, name))
		}
	}
}

func (b *DiskBackend) path(key string) string { return filepath.Join(b.dir, key) }

func (b *DiskBackend) Get(ctx context.Context, key string) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	data, err := b.fs.ReadFile(b.path(key))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, ErrNotFound
		}
		return nil, err
	}
	return data, nil
}

func (b *DiskBackend) Put(ctx context.Context, key string, data []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	// No fsync: the store is a cache. A crash that loses or tears the blob
	// costs the next scan its warm start (torn reads parse as corrupt, are
	// quarantined, and fall back to a full re-execute), never correctness.
	// The job journal, which IS the source of truth for accepted work,
	// fsyncs; see internal/journal.
	return chaos.WriteFileAtomic(b.fs, b.path(key), data, 0o644, false)
}

func (b *DiskBackend) Delete(ctx context.Context, key string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := b.fs.Remove(b.path(key)); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

func (b *DiskBackend) List(ctx context.Context) ([]BlobInfo, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	entries, err := b.fs.ReadDir(b.dir)
	if err != nil {
		return nil, err
	}
	out := make([]BlobInfo, 0, len(entries))
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, ".") {
			continue // temp litter is not a blob
		}
		fi, err := b.fs.Stat(b.path(name))
		if err != nil {
			continue
		}
		out = append(out, BlobInfo{Key: name, Size: fi.Size(), ModTime: fi.ModTime()})
	}
	return out, nil
}

func (b *DiskBackend) Stat(ctx context.Context, key string) (BlobInfo, error) {
	if err := ctx.Err(); err != nil {
		return BlobInfo{}, err
	}
	fi, err := b.fs.Stat(b.path(key))
	if err != nil {
		if os.IsNotExist(err) {
			return BlobInfo{}, ErrNotFound
		}
		return BlobInfo{}, err
	}
	return BlobInfo{Key: key, Size: fi.Size(), ModTime: fi.ModTime()}, nil
}

func (b *DiskBackend) Touch(ctx context.Context, key string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	now := time.Now()
	return b.fs.Chtimes(b.path(key), now, now)
}

// Quarantine renames the damaged blob aside, preserving its exact bytes for
// diagnosis. A later quarantine of the same key replaces the file, so
// diagnosis artifacts cannot accumulate without bound.
func (b *DiskBackend) Quarantine(ctx context.Context, key, qkey string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := b.fs.Rename(b.path(key), b.path(qkey)); err != nil {
		// A blob that cannot be moved aside must still not wedge every
		// future load; drop it.
		_ = b.fs.Remove(b.path(key))
		return err
	}
	return nil
}
