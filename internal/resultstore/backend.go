package resultstore

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"
)

// Backend is the blob tier under a Store: content-addressed snapshot entries
// (the key is derived from the project name, the payload carries version,
// digest and per-task fingerprints — every way the content can go stale is
// part of the key or checked on decode) behind Get/Put/Delete/List.
//
// The Store treats every backend as optional and untrusted: any error is a
// cache miss, any payload is re-verified before use, and a backend that is
// slow, flaky or down degrades a scan to its cache-less baseline — never
// past it. Implementations must be safe for concurrent use.
//
// Three implementations ship: DiskBackend (the production local tier, the
// exact code path the store always had), MemBackend (tests), and
// httpbackend.Client (a shared remote tier speaking the content-addressed
// GET/PUT protocol, normally wrapped in an Envelope for the fault budget).
type Backend interface {
	// Get returns the blob stored under key. ErrNotFound when absent;
	// ErrCorrupt when the payload failed the backend's own integrity check
	// (the caller quarantines rather than trusts).
	Get(ctx context.Context, key string) ([]byte, error)
	// Put stores data under key, replacing any previous blob atomically
	// (readers see the old or the new payload, never a mix).
	Put(ctx context.Context, key string, data []byte) error
	// Delete removes the blob under key; absent keys are not an error.
	Delete(ctx context.Context, key string) error
	// List enumerates the stored blobs. Order is unspecified.
	List(ctx context.Context) ([]BlobInfo, error)
}

// BlobInfo describes one stored blob for List/Stat: its key, payload size,
// and last-use time (the LRU signal behind the size cap).
type BlobInfo struct {
	Key     string    `json:"key"`
	Size    int64     `json:"size"`
	ModTime time.Time `json:"mtime"`
}

// ErrNotFound reports a Get of an absent key. It is the one backend error
// that is not a fault: the tier answered, the blob is not there.
var ErrNotFound = errors.New("resultstore: blob not found")

// ErrCorrupt reports a payload that failed content verification (hash
// mismatch on a remote read, a torn transfer). The Store quarantines the
// event instead of trusting the bytes.
var ErrCorrupt = errors.New("resultstore: blob failed content verification")

// ErrDegraded reports an operation refused without being attempted because
// the backend's circuit breaker is open. Callers treat it exactly like a
// miss; it exists as its own error so tests and counters can tell a skipped
// op from a failed one.
var ErrDegraded = errors.New("resultstore: backend breaker open")

// Optional backend extensions. The Store type-asserts for these and falls
// back gracefully when absent, so remote backends only implement what a
// remote tier can do cheaply.
type (
	// Statter answers size/mtime for one key without transferring the
	// payload; the Store's stat-validated in-memory snapshot cache needs it
	// (no Statter → every load transfers and re-verifies).
	Statter interface {
		Stat(ctx context.Context, key string) (BlobInfo, error)
	}
	// Toucher bumps a key's last-use time, keeping LRU order honest for
	// backends that enforce a size cap.
	Toucher interface {
		Touch(ctx context.Context, key string) error
	}
	// Quarantiner moves a damaged blob aside under qkey for diagnosis,
	// preserving its exact bytes. Without it the Store copies then deletes.
	Quarantiner interface {
		Quarantine(ctx context.Context, key, qkey string) error
	}
	// StateReporter exposes the fault-envelope account (breaker position,
	// retry/error counters) for health endpoints and Report.Stats.
	StateReporter interface {
		EnvelopeState() EnvelopeState
	}
)

// MemBackend is an in-memory Backend for tests and single-process setups:
// a mutex-guarded map with the full optional surface (Stat, Touch,
// Quarantine), so every Store behavior is exercisable without disk.
type MemBackend struct {
	mu    sync.Mutex
	blobs map[string]memBlob
	// GetHook/PutHook, when set, run before the corresponding operation
	// (outside the lock) and may return an error to inject a fault or block
	// to simulate a slow tier. Test seams; nil in production use.
	GetHook func(key string) error
	PutHook func(key string, data []byte) error
}

type memBlob struct {
	data  []byte
	mtime time.Time
}

// NewMemBackend returns an empty in-memory backend.
func NewMemBackend() *MemBackend {
	return &MemBackend{blobs: make(map[string]memBlob)}
}

func (m *MemBackend) Get(ctx context.Context, key string) ([]byte, error) {
	if m.GetHook != nil {
		if err := m.GetHook(key); err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.blobs[key]
	if !ok {
		return nil, ErrNotFound
	}
	out := make([]byte, len(b.data))
	copy(out, b.data)
	return out, nil
}

func (m *MemBackend) Put(ctx context.Context, key string, data []byte) error {
	if m.PutHook != nil {
		if err := m.PutHook(key, data); err != nil {
			return err
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	cp := make([]byte, len(data))
	copy(cp, data)
	m.blobs[key] = memBlob{data: cp, mtime: time.Now()}
	return nil
}

func (m *MemBackend) Delete(ctx context.Context, key string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.blobs, key)
	return nil
}

func (m *MemBackend) List(ctx context.Context) ([]BlobInfo, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]BlobInfo, 0, len(m.blobs))
	for k, b := range m.blobs {
		out = append(out, BlobInfo{Key: k, Size: int64(len(b.data)), ModTime: b.mtime})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

func (m *MemBackend) Stat(ctx context.Context, key string) (BlobInfo, error) {
	if err := ctx.Err(); err != nil {
		return BlobInfo{}, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.blobs[key]
	if !ok {
		return BlobInfo{}, ErrNotFound
	}
	return BlobInfo{Key: key, Size: int64(len(b.data)), ModTime: b.mtime}, nil
}

func (m *MemBackend) Touch(ctx context.Context, key string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if b, ok := m.blobs[key]; ok {
		b.mtime = time.Now()
		m.blobs[key] = b
	}
	return nil
}

func (m *MemBackend) Quarantine(ctx context.Context, key, qkey string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.blobs[key]
	if !ok {
		return ErrNotFound
	}
	m.blobs[qkey] = memBlob{data: b.data, mtime: time.Now()}
	delete(m.blobs, key)
	return nil
}

// Len reports the number of stored blobs (test helper).
func (m *MemBackend) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.blobs)
}
