package resultstore

import (
	"context"
	"sync"
	"time"
)

// writeBehindFlushTimeout bounds how long Close waits for the queue to
// drain. A dead remote tier must not be able to hold shutdown hostage; blobs
// still queued when the timeout fires are abandoned (counted as shed).
const writeBehindFlushTimeout = 5 * time.Second

// writeBehindOpTimeout bounds each background Put when the backend carries
// no envelope of its own. With an Envelope (the normal wiring) the
// envelope's per-op deadline fires first and this is just a backstop.
const writeBehindOpTimeout = 30 * time.Second

// writeBehind detaches snapshot writes from the backend: Save enqueues
// encoded blobs and returns; a single background writer drains the queue in
// FIFO order. The queue is bounded: when full, the oldest queued blob is
// shed (its project just stays cold on the shared tier), and a newer
// snapshot of a project already queued supersedes the queued bytes in place
// — the tier only ever wants the latest snapshot anyway.
type writeBehind struct {
	store *Store
	depth int

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []wbItem
	inflight bool
	closed   bool
	done     chan struct{}

	queued     int64
	written    int64
	shed       int64
	superseded int64
	writeErrs  int64
}

type wbItem struct {
	project string
	key     string
	data    []byte
}

func newWriteBehind(s *Store, depth int) *writeBehind {
	wb := &writeBehind{store: s, depth: depth, done: make(chan struct{})}
	wb.cond = sync.NewCond(&wb.mu)
	go wb.loop()
	return wb
}

// enqueue adds (or supersedes) a blob. Never blocks: a full queue sheds its
// oldest entry first.
func (wb *writeBehind) enqueue(project, key string, data []byte) {
	wb.mu.Lock()
	defer wb.mu.Unlock()
	if wb.closed {
		wb.shed++
		return
	}
	wb.queued++
	for i := range wb.queue {
		if wb.queue[i].key == key {
			wb.queue[i].data = data
			wb.superseded++
			return
		}
	}
	if len(wb.queue) >= wb.depth {
		wb.queue = wb.queue[1:]
		wb.shed++
	}
	wb.queue = append(wb.queue, wbItem{project: project, key: key, data: data})
	wb.cond.Signal()
}

func (wb *writeBehind) loop() {
	defer close(wb.done)
	for {
		wb.mu.Lock()
		for len(wb.queue) == 0 && !wb.closed {
			wb.cond.Wait()
		}
		if len(wb.queue) == 0 && wb.closed {
			wb.mu.Unlock()
			return
		}
		item := wb.queue[0]
		wb.queue = wb.queue[1:]
		wb.inflight = true
		wb.mu.Unlock()

		ctx, cancel := context.WithTimeout(context.Background(), writeBehindOpTimeout)
		err := wb.store.backend.Put(ctx, item.key, item.data)
		cancel()

		wb.mu.Lock()
		wb.inflight = false
		if err != nil {
			// The write is lost, the scan already succeeded; the project
			// stays cold on the tier until the next save.
			wb.writeErrs++
		} else {
			wb.written++
		}
		wb.mu.Unlock()
	}
}

// close stops accepting writes, waits (bounded) for the queue to drain, and
// counts anything still queued at the deadline as shed.
func (wb *writeBehind) close() {
	wb.mu.Lock()
	wb.closed = true
	wb.cond.Signal()
	wb.mu.Unlock()
	select {
	case <-wb.done:
	case <-time.After(writeBehindFlushTimeout):
		wb.mu.Lock()
		wb.shed += int64(len(wb.queue))
		wb.queue = nil
		wb.cond.Signal()
		wb.mu.Unlock()
		<-wb.done
	}
}

// fill copies the queue account into st. Safe to call concurrently with the
// writer.
func (wb *writeBehind) fill(st *BackendState) {
	wb.mu.Lock()
	defer wb.mu.Unlock()
	st.Queued = wb.queued
	st.Written = wb.written
	st.Shed = wb.shed
	st.Superseded = wb.superseded
	st.WriteErrors = wb.writeErrs
	st.QueueDepth = len(wb.queue)
	st.QueueCap = wb.depth
}

// flush blocks until the queue is empty or ctx fires (test helper — lets
// determinism suites force queued writes onto the tier before comparing).
func (wb *writeBehind) flush(ctx context.Context) error {
	for {
		wb.mu.Lock()
		idle := len(wb.queue) == 0 && !wb.inflight
		wb.mu.Unlock()
		if idle {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Millisecond):
		}
	}
}

// Flush exposes the write-behind drain on the store (no-op without
// write-behind).
func (s *Store) Flush(ctx context.Context) error {
	if s.wb == nil {
		return nil
	}
	return s.wb.flush(ctx)
}
