package resultstore

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testSnapshot(project, digest string) *Snapshot {
	snap := NewSnapshot(project, digest)
	snap.Tasks["fp1"] = &TaskEntry{
		File: "a.php", Class: "sqli", Steps: 42,
		Findings: []Finding{{
			Class: "sqli", SinkName: "mysql_query",
			SinkPos:  Position{File: "a.php", Offset: 6, Line: 1, Column: 7},
			SinkCall: NodeRef{File: "a.php", Index: 3},
			ArgIndex: 0, TaintedExpr: NodeRef{File: "a.php", Index: 5},
			Value: Value{Tainted: true,
				Sources: []Source{{Name: "$_GET[id]", Pos: Position{File: "a.php", Line: 1}}},
				Trace:   []Step{{Pos: Position{File: "a.php", Line: 1}, Desc: "source", Node: NodeRef{Index: -1}}},
			},
			File: "a.php", PredictedFP: false, Votes: []bool{false, false, true},
		}},
	}
	snap.Tasks["fp2"] = &TaskEntry{File: "b.php", Class: "xss", Steps: 7}
	return snap
}

func TestRoundTrip(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Save(testSnapshot("app", "digest-1")); err != nil {
		t.Fatal(err)
	}
	got, status := store.Load("app", "digest-1")
	if status != LoadHit {
		t.Fatalf("Load status = %s, want %s", status, LoadHit)
	}
	if len(got.Tasks) != 2 {
		t.Fatalf("round trip lost tasks: %d, want 2", len(got.Tasks))
	}
	e := got.Tasks["fp1"]
	if e == nil || e.Steps != 42 || len(e.Findings) != 1 {
		t.Fatalf("entry fp1 corrupted: %+v", e)
	}
	f := e.Findings[0]
	if f.SinkCall.Index != 3 || f.Value.Trace[0].Node.Index != -1 || !f.Value.Tainted {
		t.Errorf("finding fields lost in round trip: %+v", f)
	}
	// Zero-finding entries persist too: reuse must distinguish "analyzed,
	// clean" from "never analyzed".
	if e2 := got.Tasks["fp2"]; e2 == nil || len(e2.Findings) != 0 {
		t.Errorf("zero-finding entry lost: %+v", e2)
	}
}

func TestLoadFailureModes(t *testing.T) {
	dir := t.TempDir()
	store, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	if snap, status := store.Load("nope", "d"); snap != nil || status != LoadMiss {
		t.Errorf("missing snapshot: got (%v, %s), want (nil, %s)", snap, status, LoadMiss)
	}

	if err := store.Save(testSnapshot("app", "digest-1")); err != nil {
		t.Fatal(err)
	}
	if snap, status := store.Load("app", "other-digest"); snap != nil || status != LoadDigestMismatch {
		t.Errorf("digest mismatch: got (%v, %s), want (nil, %s)", snap, status, LoadDigestMismatch)
	}

	bad := testSnapshot("app", "digest-1")
	bad.Version = FormatVersion + 1
	if err := store.Save(bad); err != nil {
		t.Fatal(err)
	}
	if snap, status := store.Load("app", "digest-1"); snap != nil || status != LoadVersionMismatch {
		t.Errorf("version mismatch: got (%v, %s), want (nil, %s)", snap, status, LoadVersionMismatch)
	}

	if err := os.WriteFile(store.path("app"), []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	if snap, status := store.Load("app", "digest-1"); snap != nil || status != LoadCorrupt {
		t.Errorf("corrupt snapshot: got (%v, %s), want (nil, %s)", snap, status, LoadCorrupt)
	}
}

// TestSavePrunes pins the whole-snapshot write: a save drops every
// fingerprint not in the new snapshot, so stale entries cannot accumulate.
func TestSavePrunes(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Save(testSnapshot("app", "d")); err != nil {
		t.Fatal(err)
	}
	next := NewSnapshot("app", "d")
	next.Tasks["fp2"] = &TaskEntry{File: "b.php", Class: "xss"}
	if err := store.Save(next); err != nil {
		t.Fatal(err)
	}
	got, status := store.Load("app", "d")
	if status != LoadHit {
		t.Fatal(status)
	}
	if len(got.Tasks) != 1 || got.Tasks["fp2"] == nil {
		t.Errorf("stale entries survived the save: %v", got.Tasks)
	}
}

// TestHostileProjectNames pins the path hashing: project names with
// separators or traversal sequences stay inside the store directory.
func TestHostileProjectNames(t *testing.T) {
	dir := t.TempDir()
	store, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"../escape", "a/b/c", "..", strings.Repeat("x", 4096)} {
		if err := store.Save(NewSnapshot(name, "d")); err != nil {
			t.Fatalf("save %q: %v", name, err)
		}
		if _, status := store.Load(name, "d"); status != LoadHit {
			t.Errorf("load %q: %s", name, status)
		}
		p := store.path(name)
		if filepath.Dir(p) != dir {
			t.Errorf("project %q mapped outside the store: %s", name, p)
		}
	}
}
