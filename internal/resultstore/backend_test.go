package resultstore

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// openMemStore returns a store over a fresh MemBackend. Write-behind is off
// unless asked for, so saves land synchronously and tests can read back
// immediately.
func openMemStore(t *testing.T, opts Options) (*Store, *MemBackend) {
	t.Helper()
	mem := NewMemBackend()
	store, err := OpenBackend(mem, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	return store, mem
}

func TestStoreOverMemBackendRoundTrip(t *testing.T) {
	store, mem := openMemStore(t, Options{})
	if err := store.Save(testSnapshot("app", "d1")); err != nil {
		t.Fatal(err)
	}
	if mem.Len() != 1 {
		t.Fatalf("backend holds %d blobs after save, want 1", mem.Len())
	}
	// A second store over the same backend (cold cache) reads it back.
	fresh, err := OpenBackend(mem, Options{})
	if err != nil {
		t.Fatal(err)
	}
	snap, status := fresh.Load("app", "d1")
	if status != LoadHit || len(snap.Tasks) != 2 {
		t.Fatalf("Load over shared backend = (%v, %s), want hit with 2 tasks", snap, status)
	}
	st := fresh.BackendState()
	if st == nil || st.Kind != "mem" || st.Hits != 1 {
		t.Errorf("BackendState = %+v, want mem kind with 1 hit", st)
	}
}

func TestStoreBackendErrorDegradesToMiss(t *testing.T) {
	mem := NewMemBackend()
	seeder, err := OpenBackend(mem, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := seeder.Save(testSnapshot("app", "d1")); err != nil {
		t.Fatal(err)
	}

	// A fresh store (no in-memory cache) over the now-failing backend: the
	// load degrades to a miss instead of failing, and is counted as such.
	mem.GetHook = func(string) error { return errors.New("tier down") }
	store, err := OpenBackend(mem, Options{})
	if err != nil {
		t.Fatal(err)
	}
	snap, info := store.LoadWithInfo("app", "d1")
	if snap != nil || info.Status != LoadDegraded {
		t.Fatalf("load over a down backend = (%v, %s), want (nil, %s)", snap, info.Status, LoadDegraded)
	}
	if info.Quarantined != "" {
		t.Errorf("degraded load quarantined %q; a down tier is not corruption", info.Quarantined)
	}
	st := store.BackendState()
	if st.Degraded != 1 || st.Corrupt != 0 {
		t.Errorf("counters = %+v, want 1 degraded, 0 corrupt", st)
	}
	// The blob survived: once the tier recovers, the snapshot is served.
	mem.GetHook = nil
	if _, status := store.Load("app", "d1"); status != LoadHit {
		t.Errorf("load after recovery = %s, want hit", status)
	}
}

func TestStoreCorruptBackendPayloadQuarantined(t *testing.T) {
	store, mem := openMemStore(t, Options{})
	ctx := context.Background()
	key := store.key("app")
	if err := mem.Put(ctx, key, []byte("{definitely not a snapshot")); err != nil {
		t.Fatal(err)
	}
	snap, info := store.LoadWithInfo("app", "d1")
	if snap != nil || info.Status != LoadCorrupt {
		t.Fatalf("load of garbage = (%v, %s), want (nil, %s)", snap, info.Status, LoadCorrupt)
	}
	if info.Quarantined != key+quarantineSuffix {
		t.Errorf("Quarantined = %q, want backend key %q", info.Quarantined, key+quarantineSuffix)
	}
	if _, err := mem.Get(ctx, key); !errors.Is(err, ErrNotFound) {
		t.Error("poisoned blob still serving under its original key")
	}
	if data, err := mem.Get(ctx, key+quarantineSuffix); err != nil || !strings.Contains(string(data), "not a snapshot") {
		t.Errorf("quarantine did not preserve the bytes: (%q, %v)", data, err)
	}
	if h := store.Health(); h.Quarantined != 1 {
		t.Errorf("Health.Quarantined = %d, want 1", h.Quarantined)
	}
	if st := store.BackendState(); st.Corrupt != 1 {
		t.Errorf("BackendState.Corrupt = %d, want 1", st.Corrupt)
	}
}

// bigSnapshot builds a snapshot with enough entries that the encode/decode
// loops cross their context-check stride.
func bigSnapshot(project, digest string, entries int) *Snapshot {
	snap := NewSnapshot(project, digest)
	for i := 0; i < entries; i++ {
		snap.Tasks[fmtFp(i)] = &TaskEntry{File: "f.php", Class: "sqli", Steps: i}
	}
	return snap
}

func fmtFp(i int) string {
	const hex = "0123456789abcdef"
	var b [8]byte
	for j := range b {
		b[j] = hex[(i>>uint(4*j))&0xf]
	}
	return string(b[:])
}

// cancelOnGet hands back the blob and then cancels the caller's context, so
// the cancellation lands between the backend read and the entry-decode loop —
// the seam LoadWithInfoContext must observe.
type cancelOnGet struct {
	*MemBackend
	cancel context.CancelFunc
}

func (c *cancelOnGet) Get(ctx context.Context, key string) ([]byte, error) {
	data, err := c.MemBackend.Get(ctx, key)
	c.cancel()
	return data, err
}

func TestStoreLoadContextCancelledMidDecode(t *testing.T) {
	mem := NewMemBackend()
	seeder, err := OpenBackend(mem, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := seeder.Save(bigSnapshot("app", "d1", 600)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	store, err := OpenBackend(&cancelOnGet{MemBackend: mem, cancel: cancel}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	snap, info := store.LoadWithInfoContext(ctx, "app", "d1")
	if snap != nil || info.Status != LoadDegraded {
		t.Fatalf("cancelled-mid-decode load = (%v, %s), want (nil, %s)", snap, info.Status, LoadDegraded)
	}
	// Cancellation is the caller's doing, not the blob's fault: nothing is
	// quarantined and the snapshot loads intact for the next caller.
	if info.Quarantined != "" {
		t.Errorf("cancelled load quarantined %q", info.Quarantined)
	}
	fresh, err := OpenBackend(mem, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, status := fresh.Load("app", "d1"); status != LoadHit || len(got.Tasks) != 600 {
		t.Errorf("snapshot damaged by a cancelled load: (%s, %d tasks)", status, len(got.Tasks))
	}
}

func TestStoreSaveContextCancelled(t *testing.T) {
	store, mem := openMemStore(t, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := store.SaveContext(ctx, bigSnapshot("app", "d1", 600))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("SaveContext under a cancelled ctx = %v, want context.Canceled", err)
	}
	if mem.Len() != 0 {
		t.Errorf("cancelled save still wrote %d blobs", mem.Len())
	}
}

func TestWriteBehindShedSupersedeAndDrain(t *testing.T) {
	mem := NewMemBackend()
	started := make(chan struct{})
	release := make(chan struct{})
	gate := true
	mem.PutHook = func(string, []byte) error {
		if gate {
			started <- struct{}{}
			<-release
			gate = false
		}
		return nil
	}
	store, err := OpenBackend(mem, Options{WriteBehind: true, WriteBehindDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	// Save A; wait for the writer to pick it up and block inside Put, so the
	// queue state below is deterministic.
	if err := store.Save(testSnapshot("A", "d")); err != nil {
		t.Fatal(err)
	}
	<-started

	// Queue (depth 2): B, then C; D overflows and sheds the oldest (B);
	// saving C again supersedes its queued bytes in place.
	for _, p := range []string{"B", "C", "D"} {
		if err := store.Save(testSnapshot(p, "d")); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Save(testSnapshot("C", "d2")); err != nil {
		t.Fatal(err)
	}

	close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := store.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	st := store.BackendState()
	if st.Queued != 5 || st.Written != 3 || st.Shed != 1 || st.Superseded != 1 || st.WriteErrors != 0 {
		t.Errorf("write-behind account = %+v, want 5 queued, 3 written, 1 shed, 1 superseded", st)
	}
	if st.QueueDepth != 0 || st.QueueCap != 2 {
		t.Errorf("queue = %d/%d after drain, want 0/2", st.QueueDepth, st.QueueCap)
	}
	ctxb := context.Background()
	if _, err := mem.Get(ctxb, store.key("B")); !errors.Is(err, ErrNotFound) {
		t.Error("shed blob B reached the tier anyway")
	}
	for _, p := range []string{"A", "D"} {
		if _, err := mem.Get(ctxb, store.key(p)); err != nil {
			t.Errorf("blob %s missing from the tier: %v", p, err)
		}
	}
	// The superseding save won: the tier holds C's second snapshot.
	data, err := mem.Get(ctxb, store.key("C"))
	if err != nil || !strings.Contains(string(data), `"config_digest":"d2"`) {
		t.Errorf("tier holds the superseded bytes for C: (%v, %v)", string(data), err)
	}
}

func TestWriteBehindWriteErrorIsShedNotFailure(t *testing.T) {
	mem := NewMemBackend()
	mem.PutHook = func(string, []byte) error { return errors.New("tier down") }
	store, err := OpenBackend(mem, Options{WriteBehind: true})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	// The scan-side save succeeds regardless of the tier.
	if err := store.Save(testSnapshot("app", "d")); err != nil {
		t.Fatalf("write-behind Save surfaced a tier error: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := store.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	st := store.BackendState()
	if st.WriteErrors != 1 || st.Written != 0 {
		t.Errorf("account = %+v, want 1 write error, 0 written", st)
	}
	if mem.Len() != 0 {
		t.Errorf("failed write still stored %d blobs", mem.Len())
	}
}

func TestWriteBehindCloseDrainsQueue(t *testing.T) {
	mem := NewMemBackend()
	store, err := OpenBackend(mem, Options{WriteBehind: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Save(testSnapshot("app", "d")); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	if mem.Len() != 1 {
		t.Fatalf("Close did not drain the queue: %d blobs on the tier", mem.Len())
	}
	// Saves after Close are shed, not lost silently.
	if err := store.Save(testSnapshot("late", "d")); err != nil {
		t.Fatal(err)
	}
	if st := store.BackendState(); st.Shed != 1 {
		t.Errorf("post-Close save not counted as shed: %+v", st)
	}
}

func TestBackendStateNilForPlainDiskStore(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Save(testSnapshot("app", "d")); err != nil {
		t.Fatal(err)
	}
	if st := store.BackendState(); st != nil {
		t.Errorf("plain-disk store reports BackendState %+v; legacy surface must stay unchanged", st)
	}
}

func TestBackendStateSurfacesEnvelope(t *testing.T) {
	mem := NewMemBackend()
	mem.GetHook = func(string) error { return errors.New("down") }
	env := NewEnvelope(mem, EnvelopeConfig{RetryMax: -1, BreakerThreshold: 1})
	env.sleep = func(time.Duration) {}
	store, err := OpenBackend(env, Options{WriteBehind: true})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if _, status := store.Load("app", "d"); status != LoadDegraded {
		t.Fatalf("load = %s, want degraded", status)
	}
	st := store.BackendState()
	if st == nil || st.Kind != "mem" {
		t.Fatalf("BackendState = %+v, want the wrapped tier's kind", st)
	}
	if st.Envelope == nil || st.Envelope.Breaker != BreakerOpen || st.Envelope.Failures != 1 {
		t.Errorf("envelope account = %+v, want open breaker with 1 failure", st.Envelope)
	}
}

func TestStoreSizeCapOverBackend(t *testing.T) {
	// Cap small enough that only one snapshot fits: each save evicts the
	// older project, and the just-written blob is never the victim.
	store, mem := openMemStore(t, Options{MaxBytes: 600})
	if err := store.Save(testSnapshot("one", "d")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond) // distinct mtimes for LRU order
	if err := store.Save(testSnapshot("two", "d")); err != nil {
		t.Fatal(err)
	}
	if mem.Len() != 1 {
		t.Fatalf("tier holds %d blobs under the cap, want 1", mem.Len())
	}
	if _, err := mem.Get(context.Background(), store.key("two")); err != nil {
		t.Errorf("cap evicted the blob just written: %v", err)
	}
	if h := store.Health(); h.Evicted != 1 {
		t.Errorf("Health.Evicted = %d, want 1", h.Evicted)
	}
	// The evicted project now misses instead of serving a stale cached copy.
	if _, status := store.Load("one", "d"); status != LoadMiss {
		t.Errorf("evicted project load = %s, want miss", status)
	}
}
