package resultstore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
)

// TestDamageRecovery drives every on-disk damage kind a crash or bit-rot can
// leave and pins the self-healing response: the load never fails the scan,
// unreadable snapshots are quarantined (moved aside, not deleted), and
// snapshots with individually undecodable entries are salvaged.
func TestDamageRecovery(t *testing.T) {
	goodEntry := func() json.RawMessage {
		data, _ := json.Marshal(&TaskEntry{File: "a.php", Class: "sqli", Steps: 3})
		return data
	}
	snapJSON := func(tasks map[string]json.RawMessage) []byte {
		data, _ := json.Marshal(map[string]any{
			"version": FormatVersion, "project": "app", "config_digest": "d", "tasks": tasks,
		})
		return data
	}
	cases := []struct {
		name       string
		data       []byte
		status     LoadStatus
		salvaged   int
		quarantine bool
	}{
		{"truncated-json", []byte(`{"version":1,"project":"app","config_digest":"d","tasks":{"fp1":{"fi`), LoadCorrupt, 0, true},
		{"binary-garbage", []byte{0x00, 0xff, 0x13, 0x37}, LoadCorrupt, 0, true},
		{"empty-file", []byte{}, LoadCorrupt, 0, true},
		{"wrong-top-level-type", []byte(`[1,2,3]`), LoadCorrupt, 0, true},
		{"tasks-wrong-type", snapJSON(nil)[:0], LoadCorrupt, 0, true}, // replaced below
		{"future-version", []byte(`{"version":99,"project":"app","config_digest":"d","tasks":{}}`), LoadVersionMismatch, 0, true},
		{"entry-wrong-type", snapJSON(map[string]json.RawMessage{
			"fp1": json.RawMessage(`123`), "fp2": goodEntry(),
		}), LoadHit, 1, false},
		{"entry-field-type-clash", snapJSON(map[string]json.RawMessage{
			"fp1": json.RawMessage(`{"file":5,"class":"sqli"}`), "fp2": goodEntry(), "fp3": json.RawMessage(`"nope"`),
		}), LoadHit, 2, false},
	}
	cases[4].data = []byte(`{"version":1,"project":"app","config_digest":"d","tasks":"oops"}`)

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			store, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			path := store.path("app")
			if err := os.WriteFile(path, tc.data, 0o644); err != nil {
				t.Fatal(err)
			}
			snap, info := store.LoadWithInfo("app", "d")
			if info.Status != tc.status {
				t.Fatalf("status = %s, want %s", info.Status, tc.status)
			}
			if info.Salvaged != tc.salvaged {
				t.Errorf("salvaged = %d, want %d", info.Salvaged, tc.salvaged)
			}
			if tc.quarantine {
				if snap != nil {
					t.Errorf("damaged snapshot returned non-nil")
				}
				if info.Quarantined != path+quarantineSuffix {
					t.Errorf("Quarantined = %q", info.Quarantined)
				}
				q, err := os.ReadFile(path + quarantineSuffix)
				if err != nil || string(q) != string(tc.data) {
					t.Errorf("quarantine file lost the evidence: %v", err)
				}
				if _, err := os.Stat(path); !os.IsNotExist(err) {
					t.Errorf("damaged snapshot still present after quarantine")
				}
				if store.Health().Quarantined != 1 {
					t.Errorf("Health().Quarantined = %d", store.Health().Quarantined)
				}
			} else {
				if snap == nil || snap.Tasks["fp2"] == nil {
					t.Fatalf("salvage lost the good entries: %+v", snap)
				}
				if _, bad := snap.Tasks["fp1"]; bad {
					t.Errorf("undecodable entry survived salvage")
				}
				if store.Health().SalvagedEntries != int64(tc.salvaged) {
					t.Errorf("Health().SalvagedEntries = %d", store.Health().SalvagedEntries)
				}
			}
			// Whatever the damage, the store stays usable: save then load hits.
			if err := store.Save(testSnapshot("app", "d")); err != nil {
				t.Fatalf("save after recovery: %v", err)
			}
			if _, status := store.Load("app", "d"); status != LoadHit {
				t.Errorf("load after recovery: %s", status)
			}
		})
	}
}

// TestTornRenameRecovery drives the chaos injector's torn-rename fault: a
// save that tears mid-replace leaves a half-written snapshot, which the next
// load must quarantine rather than trust.
func TestTornRenameRecovery(t *testing.T) {
	in := chaos.NewInjector(nil)
	store, err := OpenOptions(t.TempDir(), Options{FS: in})
	if err != nil {
		t.Fatal(err)
	}
	in.Add(chaos.Rule{Op: chaos.OpRename, Mode: chaos.TornRename, Count: 1})
	if err := store.Save(testSnapshot("app", "d")); err == nil {
		t.Fatal("torn save did not surface its error")
	}
	snap, info := store.LoadWithInfo("app", "d")
	if snap != nil || info.Status != LoadCorrupt || info.Quarantined == "" {
		t.Fatalf("torn snapshot not quarantined: %+v (snap=%v)", info, snap)
	}
	// Retry succeeds once the fault has passed.
	if err := store.Save(testSnapshot("app", "d")); err != nil {
		t.Fatal(err)
	}
	if _, status := store.Load("app", "d"); status != LoadHit {
		t.Errorf("load after retry: %s", status)
	}
}

// TestSaveFaultPreservesPrevious pins atomicity under injected I/O errors: a
// failed save must leave the previous snapshot readable.
func TestSaveFaultPreservesPrevious(t *testing.T) {
	for _, op := range []chaos.Op{chaos.OpWrite, chaos.OpClose, chaos.OpRename} {
		t.Run(string(op), func(t *testing.T) {
			in := chaos.NewInjector(nil)
			store, err := OpenOptions(t.TempDir(), Options{FS: in})
			if err != nil {
				t.Fatal(err)
			}
			if err := store.Save(testSnapshot("app", "d")); err != nil {
				t.Fatal(err)
			}
			in.Add(chaos.Rule{Op: op, Count: 1})
			next := NewSnapshot("app", "d")
			next.Tasks["fresh"] = &TaskEntry{File: "c.php", Class: "xss"}
			if err := store.Save(next); err == nil {
				t.Fatal("faulted save did not error")
			}
			got, status := store.Load("app", "d")
			if status != LoadHit || got.Tasks["fp1"] == nil {
				t.Errorf("previous snapshot lost to a failed save: %s %v", status, got)
			}
		})
	}
}

func TestQuarantineReplacedNotAccumulated(t *testing.T) {
	dir := t.TempDir()
	store, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := os.WriteFile(store.path("app"), []byte(fmt.Sprintf("{bad %d", i)), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, info := store.LoadWithInfo("app", "d"); info.Status != LoadCorrupt {
			t.Fatalf("round %d: %s", i, info.Status)
		}
	}
	ents, _ := os.ReadDir(dir)
	var quarantined int
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), quarantineSuffix) {
			quarantined++
		}
	}
	if quarantined != 1 {
		t.Errorf("%d quarantine files for one project, want 1 (latest replaces)", quarantined)
	}
	data, _ := os.ReadFile(store.path("app") + quarantineSuffix)
	if string(data) != "{bad 2" {
		t.Errorf("quarantine holds %q, want the latest damage", data)
	}
}

func TestLRUEviction(t *testing.T) {
	dir := t.TempDir()
	// Size one snapshot, then cap the store at roughly three of them.
	probe, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := probe.Save(testSnapshot("probe", "d")); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(probe.path("probe"))
	if err != nil {
		t.Fatal(err)
	}
	os.Remove(probe.path("probe"))
	one := fi.Size()

	store, err := OpenOptions(dir, Options{MaxBytes: 3*one + one/2})
	if err != nil {
		t.Fatal(err)
	}
	// Saves with distinct mtimes so LRU order is unambiguous.
	names := []string{"p1", "p2", "p3", "p4"}
	for i, name := range names {
		if err := store.Save(testSnapshot(name, "d")); err != nil {
			t.Fatal(err)
		}
		old := time.Now().Add(time.Duration(i-10) * time.Hour)
		if err := os.Chtimes(store.path(name), old, old); err != nil {
			t.Fatal(err)
		}
	}
	// A fifth save must evict the least-recently-used (p1), not the newcomer.
	if err := store.Save(testSnapshot("p5", "d")); err != nil {
		t.Fatal(err)
	}
	if _, status := store.Load("p1", "d"); status != LoadMiss {
		t.Errorf("oldest snapshot survived the cap: %s", status)
	}
	if _, status := store.Load("p5", "d"); status != LoadHit {
		t.Errorf("just-written snapshot evicted: %s", status)
	}
	if store.Health().Evicted == 0 {
		t.Errorf("Health().Evicted = 0 after eviction")
	}
	// The store is under cap again.
	var total int64
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if fi, err := os.Stat(filepath.Join(dir, e.Name())); err == nil {
			total += fi.Size()
		}
	}
	if total > 3*one+one/2 {
		t.Errorf("store still over cap: %d > %d", total, 3*one+one/2)
	}
}

// TestTouchKeepsHotSnapshots pins the LRU signal: loading a snapshot bumps
// its mtime, so a hot project survives eviction pressure from colder ones.
func TestTouchKeepsHotSnapshots(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenOptions(dir, Options{MaxBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Save(testSnapshot("hot", "d")); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-24 * time.Hour)
	if err := os.Chtimes(store.path("hot"), old, old); err != nil {
		t.Fatal(err)
	}
	if _, status := store.Load("hot", "d"); status != LoadHit {
		t.Fatal(status)
	}
	fi, err := os.Stat(store.path("hot"))
	if err != nil {
		t.Fatal(err)
	}
	if !fi.ModTime().After(old.Add(time.Hour)) {
		t.Errorf("hit did not touch the snapshot: mtime %v", fi.ModTime())
	}
	// The in-memory cache stayed consistent with the touched stat: the next
	// load still hits without a re-read.
	if _, status := store.Load("hot", "d"); status != LoadHit {
		t.Errorf("load after touch: %s", status)
	}
}

func TestQuarantinedFilesCountTowardCap(t *testing.T) {
	dir := t.TempDir()
	store, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Manufacture a large quarantined file.
	if err := os.WriteFile(store.path("dead"), append([]byte("{bad"), make([]byte, 4096)...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, info := store.LoadWithInfo("dead", "d"); info.Status != LoadCorrupt {
		t.Fatal(info.Status)
	}
	qpath := store.path("dead") + quarantineSuffix
	old := time.Now().Add(-24 * time.Hour)
	os.Chtimes(qpath, old, old)

	capped, err := OpenOptions(dir, Options{MaxBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	if err := capped.Save(testSnapshot("live", "d")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(qpath); !os.IsNotExist(err) {
		t.Errorf("quarantined file survived the cap")
	}
	if _, status := capped.Load("live", "d"); status != LoadHit {
		t.Errorf("live snapshot evicted instead: %s", status)
	}
}

func TestOpenSweepsTempLitter(t *testing.T) {
	dir := t.TempDir()
	litter := filepath.Join(dir, ".abc.json.tmp-123456")
	if err := os.WriteFile(litter, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(litter); !os.IsNotExist(err) {
		t.Errorf("temp litter survived open")
	}
}
