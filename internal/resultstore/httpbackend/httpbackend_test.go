package httpbackend

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/resultstore"
)

func newTier(t *testing.T) (*httptest.Server, *resultstore.MemBackend) {
	t.Helper()
	mem := resultstore.NewMemBackend()
	srv := httptest.NewServer(Handler(mem))
	t.Cleanup(srv.Close)
	return srv, mem
}

func TestClientServerRoundTrip(t *testing.T) {
	srv, mem := newTier(t)
	c := New(srv.URL, nil)
	ctx := context.Background()
	blob := []byte(`{"version":1,"tasks":{}}`)

	if _, err := c.Get(ctx, "ab12.json"); !errors.Is(err, resultstore.ErrNotFound) {
		t.Fatalf("Get absent = %v, want ErrNotFound", err)
	}
	if err := c.Put(ctx, "ab12.json", blob); err != nil {
		t.Fatal(err)
	}
	if mem.Len() != 1 {
		t.Fatalf("tier holds %d blobs after Put, want 1", mem.Len())
	}
	got, err := c.Get(ctx, "ab12.json")
	if err != nil || !bytes.Equal(got, blob) {
		t.Fatalf("Get = (%q, %v), want the stored blob", got, err)
	}
	blobs, err := c.List(ctx)
	if err != nil || len(blobs) != 1 || blobs[0].Key != "ab12.json" || blobs[0].Size != int64(len(blob)) {
		t.Fatalf("List = (%+v, %v)", blobs, err)
	}
	if err := c.Delete(ctx, "ab12.json"); err != nil {
		t.Fatal(err)
	}
	// Deletes are idempotent: a second delete of the same key succeeds.
	if err := c.Delete(ctx, "ab12.json"); err != nil {
		t.Fatalf("second Delete = %v, want nil", err)
	}
	if blobs, err := c.List(ctx); err != nil || len(blobs) != 0 {
		t.Fatalf("List after delete = (%+v, %v), want empty", blobs, err)
	}
	if c.BackendKind() != "http" {
		t.Errorf("BackendKind = %q", c.BackendKind())
	}
}

func TestClientVerifiesGetPayload(t *testing.T) {
	srv, mem := newTier(t)
	if err := mem.Put(context.Background(), "ab.json", []byte(`{"version":1,"project":"app"}`)); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		mode chaos.NetMode
	}{
		{"torn body", chaos.NetTornBody},
		{"corrupt body", chaos.NetCorruptBody},
	} {
		rt := chaos.NewRoundTripper(nil)
		rt.Add(chaos.NetRule{Method: http.MethodGet, Path: "/cas/ab.json", Mode: tc.mode})
		c := New(srv.URL, &http.Client{Transport: rt})
		_, err := c.Get(context.Background(), "ab.json")
		if !errors.Is(err, resultstore.ErrCorrupt) {
			t.Errorf("%s: Get = %v, want ErrCorrupt (hash verification must catch it)", tc.name, err)
		}
		if rt.Requests() == 0 {
			t.Errorf("%s: request never went through the chaos seam", tc.name)
		}
	}
}

func TestClientSurfacesTransportFaults(t *testing.T) {
	srv, _ := newTier(t)
	rt := chaos.NewRoundTripper(nil)
	rt.Add(chaos.NetRule{Mode: chaos.NetFail})
	c := New(srv.URL, &http.Client{Transport: rt})
	if _, err := c.Get(context.Background(), "ab.json"); err == nil || errors.Is(err, resultstore.ErrNotFound) {
		t.Fatalf("Get over a cut network = %v, want a transport error", err)
	}

	// A slow tier is bounded by the caller's context, exactly how the
	// envelope's per-op deadline reaches the wire.
	rt.Reset()
	rt.Add(chaos.NetRule{Mode: chaos.NetSlow, Delay: 5 * time.Second})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := c.Get(ctx, "ab.json"); err == nil {
		t.Fatal("Get over a stalled network succeeded")
	}
	if time.Since(start) > time.Second {
		t.Error("caller deadline did not bound the stalled request")
	}
}

func TestServerRejectsTornPut(t *testing.T) {
	srv, mem := newTier(t)
	// A PUT whose payload does not match its announced hash — a transfer torn
	// on the way in — must be rejected, not stored.
	req, err := http.NewRequest(http.MethodPut, srv.URL+"/cas/ab.json", strings.NewReader("torn payload"))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(hashHeader, hashOf([]byte("the payload the sender hashed")))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("torn PUT answered %s, want 400", resp.Status)
	}
	if mem.Len() != 0 {
		t.Error("torn payload was stored anyway")
	}
}

func TestServerRejectsHostileKeys(t *testing.T) {
	srv, _ := newTier(t)
	for _, key := range []string{
		"..%2F..%2Fetc%2Fpasswd", // traversal (the mux cleans it out of /cas/ entirely)
		"AB12.json",              // uppercase hex
		"xyz.json",               // non-hex
		"ab12.txt",               // wrong suffix
		".json",                  // empty hash
		"ab12.json.x",            // trailing junk
	} {
		resp, err := http.Get(srv.URL + "/cas/" + key)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode < 400 {
			t.Errorf("GET key %q answered %s, want rejection", key, resp.Status)
		}
	}
	// POST to the list endpoint is not part of the protocol.
	resp, err := http.Post(srv.URL+"/cas/", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /cas/ answered %s, want 405", resp.Status)
	}
}

func TestValidKey(t *testing.T) {
	for _, key := range []string{"ab12.json", "ab12.json.quarantined", strings.Repeat("a", 64) + ".json"} {
		if err := validKey(key); err != nil {
			t.Errorf("validKey(%q) = %v, want accepted", key, err)
		}
	}
	for _, key := range []string{
		"", ".json", "ab12.txt", "../ab12.json", "ab/12.json",
		"AB12.json", strings.Repeat("a", 65) + ".json", "ab12.json.quarantined.json",
	} {
		if err := validKey(key); err == nil {
			t.Errorf("validKey(%q) accepted a hostile key", key)
		}
	}
}

func TestClientQuarantine(t *testing.T) {
	srv, mem := newTier(t)
	c := New(srv.URL, nil)
	ctx := context.Background()
	if err := c.Put(ctx, "ab.json", []byte("damaged snapshot")); err != nil {
		t.Fatal(err)
	}
	if err := c.Quarantine(ctx, "ab.json", "ab.json.quarantined"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(ctx, "ab.json"); !errors.Is(err, resultstore.ErrNotFound) {
		t.Error("quarantined blob still serving under its original key")
	}
	data, err := c.Get(ctx, "ab.json.quarantined")
	if err != nil || string(data) != "damaged snapshot" {
		t.Errorf("quarantine did not preserve the bytes: (%q, %v)", data, err)
	}
	if mem.Len() != 1 {
		t.Errorf("tier holds %d blobs after quarantine, want 1", mem.Len())
	}
}

// TestStoreOverHTTPTier wires the full stack — Store over Envelope over
// Client over Handler over MemBackend — and round-trips a snapshot through
// it, the exact production composition of wapd -cache-backend against a
// -cache-serve replica.
func TestStoreOverHTTPTier(t *testing.T) {
	srv, _ := newTier(t)
	open := func() *resultstore.Store {
		env := resultstore.NewEnvelope(New(srv.URL, nil), resultstore.EnvelopeConfig{})
		store, err := resultstore.OpenBackend(env, resultstore.Options{WriteBehind: true})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { store.Close() })
		return store
	}
	writer := open()
	snap := resultstore.NewSnapshot("app", "d1")
	snap.Tasks["ab"] = &resultstore.TaskEntry{File: "a.php", Class: "sqli", Steps: 9}
	if err := writer.Save(snap); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := writer.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	reader := open()
	got, status := reader.Load("app", "d1")
	if status != resultstore.LoadHit || got.Tasks["ab"] == nil || got.Tasks["ab"].Steps != 9 {
		t.Fatalf("Load over the HTTP tier = (%+v, %s), want the saved snapshot", got, status)
	}
	st := reader.BackendState()
	if st == nil || st.Kind != "http" || st.Hits != 1 || st.Envelope == nil {
		t.Errorf("BackendState = %+v, want http kind, 1 hit, envelope account", st)
	}
}
