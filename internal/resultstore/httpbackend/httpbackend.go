// Package httpbackend speaks the content-addressed blob protocol that lets
// one wapd replica act as a shared result-store tier for a fleet:
//
//	GET    {base}/cas/{key}   → 200 + payload (+ X-Content-SHA256), 404 when absent
//	PUT    {base}/cas/{key}   → 204; the server re-hashes the payload and
//	                            answers 400 on an X-Content-SHA256 mismatch,
//	                            so a payload torn in flight is never stored
//	DELETE {base}/cas/{key}   → 204 (absent keys too — deletes are idempotent)
//	GET    {base}/cas/        → 200 + JSON list of {key, size, mtime}
//
// Client implements resultstore.Backend over that protocol; Handler serves
// it from any other Backend (wapd -cache-serve mounts it over its local disk
// tier). Both sides verify content hashes on every transfer: the client
// re-hashes each GET payload against the X-Content-SHA256 the server
// computed, and answers resultstore.ErrCorrupt on a mismatch — the store
// above quarantines and degrades to a miss, so a lying or bit-rotting tier
// can slow a scan down but never change its findings.
//
// The client is deliberately envelope-less: deadlines, retries and the
// circuit breaker belong to resultstore.Envelope, which wapd wraps around
// this client. Chaos tests inject faults one layer down, at the
// http.RoundTripper seam (chaos.RoundTripper), so the envelope and the
// verification here are exercised exactly as a hostile network would.
package httpbackend

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/resultstore"
)

// hashHeader carries the hex sha256 of the payload on GET responses and PUT
// requests.
const hashHeader = "X-Content-SHA256"

// maxBlobBytes bounds a single blob transfer in either direction (a snapshot
// is JSON text; 256 MiB is far past any real one). The bound keeps a lying
// Content-Length or a hostile PUT from ballooning memory.
const maxBlobBytes = 256 << 20

// Client is a resultstore.Backend over the blob protocol. Safe for
// concurrent use.
type Client struct {
	base string
	hc   *http.Client
}

// New returns a client for the tier at base (e.g. "http://cache-host:8080").
// hc nil means a plain http.Client; pass one with a chaos.RoundTripper as
// Transport to drive network faults in tests. Per-request deadlines come
// from the caller's context (the envelope's per-op timeout), so the client
// sets none of its own.
func New(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = &http.Client{}
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: hc}
}

// BackendKind names the tier for BackendState.
func (c *Client) BackendKind() string { return "http" }

func (c *Client) url(key string) string { return c.base + "/cas/" + key }

func hashOf(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// readBody drains a response body with the size bound applied.
func readBody(r io.Reader) ([]byte, error) {
	data, err := io.ReadAll(io.LimitReader(r, maxBlobBytes+1))
	if err != nil {
		return nil, err
	}
	if len(data) > maxBlobBytes {
		return nil, fmt.Errorf("httpbackend: blob exceeds %d bytes", maxBlobBytes)
	}
	return data, nil
}

func (c *Client) Get(ctx context.Context, key string) ([]byte, error) {
	if err := validKey(key); err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url(key), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		io.Copy(io.Discard, resp.Body)
		return nil, resultstore.ErrNotFound
	default:
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("httpbackend: get %s: %s", key, resp.Status)
	}
	data, err := readBody(resp.Body)
	if err != nil {
		return nil, err
	}
	// Verify before trusting: a payload torn or flipped anywhere between the
	// server's hash computation and here fails the check and is treated as
	// corruption, never spliced into findings.
	if want := resp.Header.Get(hashHeader); want != "" && want != hashOf(data) {
		return nil, fmt.Errorf("%w: get %s: payload hash %s != %s",
			resultstore.ErrCorrupt, key, hashOf(data)[:12], want[:12])
	}
	return data, nil
}

func (c *Client) Put(ctx context.Context, key string, data []byte) error {
	if err := validKey(key); err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, c.url(key), bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set(hashHeader, hashOf(data))
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("httpbackend: put %s: %s", key, resp.Status)
	}
	return nil
}

func (c *Client) Delete(ctx context.Context, key string) error {
	if err := validKey(key); err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.url(key), nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK &&
		resp.StatusCode != http.StatusNotFound {
		return fmt.Errorf("httpbackend: delete %s: %s", key, resp.Status)
	}
	return nil
}

func (c *Client) List(ctx context.Context) ([]resultstore.BlobInfo, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/cas/", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("httpbackend: list: %s", resp.Status)
	}
	data, err := readBody(resp.Body)
	if err != nil {
		return nil, err
	}
	var out []resultstore.BlobInfo
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("%w: list: %v", resultstore.ErrCorrupt, err)
	}
	return out, nil
}

// Quarantine moves a damaged blob aside on the tier (copy-then-delete over
// the protocol; the tier-side bytes are preserved under qkey for diagnosis).
func (c *Client) Quarantine(ctx context.Context, key, qkey string) error {
	data, err := c.Get(ctx, key)
	if err != nil && !errors.Is(err, resultstore.ErrCorrupt) {
		return err
	}
	// A payload that fails verification is exactly what quarantine wants to
	// preserve, but the client never saw trustworthy bytes; settle for the
	// delete so the poisoned blob stops serving.
	if err == nil {
		if perr := c.Put(ctx, qkey, data); perr != nil {
			_ = c.Delete(ctx, key)
			return perr
		}
	}
	return c.Delete(ctx, key)
}

// validKey accepts exactly the keys the store generates: hex hash + ".json"
// with an optional ".quarantined" suffix. Anything else — separators, dots,
// traversal — is rejected on both sides of the protocol, so a hostile key
// cannot escape the blob namespace.
func validKey(key string) error {
	base, ok := strings.CutSuffix(key, ".quarantined")
	if !ok {
		base = key
	}
	hexpart, ok := strings.CutSuffix(base, ".json")
	if !ok || hexpart == "" || len(hexpart) > 64 {
		return fmt.Errorf("httpbackend: invalid blob key %q", key)
	}
	for _, c := range hexpart {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return fmt.Errorf("httpbackend: invalid blob key %q", key)
		}
	}
	return nil
}

// Handler serves the blob protocol from b: mount it at "/cas/" and any
// Client pointed at the server becomes a view of b. Keys are validated
// before they reach the backend, GET responses carry the payload hash, and
// PUT payloads are re-hashed server-side so a transfer torn on the way in is
// rejected instead of stored.
func Handler(b resultstore.Backend) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/cas/", func(w http.ResponseWriter, r *http.Request) {
		key := strings.TrimPrefix(r.URL.Path, "/cas/")
		if key == "" {
			if r.Method != http.MethodGet {
				http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
				return
			}
			serveList(w, r, b)
			return
		}
		if err := validKey(key); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		switch r.Method {
		case http.MethodGet:
			serveGet(w, r, b, key)
		case http.MethodPut:
			servePut(w, r, b, key)
		case http.MethodDelete:
			if err := b.Delete(r.Context(), key); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.WriteHeader(http.StatusNoContent)
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
	return mux
}

func serveGet(w http.ResponseWriter, r *http.Request, b resultstore.Backend, key string) {
	data, err := b.Get(r.Context(), key)
	if err != nil {
		if errors.Is(err, resultstore.ErrNotFound) {
			http.Error(w, "not found", http.StatusNotFound)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set(hashHeader, hashOf(data))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", fmt.Sprint(len(data)))
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

func servePut(w http.ResponseWriter, r *http.Request, b resultstore.Backend, key string) {
	data, err := readBody(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if want := r.Header.Get(hashHeader); want != "" && want != hashOf(data) {
		// The payload did not survive the trip; storing it would poison the
		// tier for every replica.
		http.Error(w, "payload hash mismatch", http.StatusBadRequest)
		return
	}
	if err := b.Put(r.Context(), key, data); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func serveList(w http.ResponseWriter, r *http.Request, b resultstore.Backend) {
	blobs, err := b.List(r.Context())
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if blobs == nil {
		blobs = []resultstore.BlobInfo{}
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(blobs); err != nil {
		return
	}
}

// Touch and Stat are deliberately absent from Client: the serving replica
// owns its LRU order (its own loads and size cap maintain mtimes), and a
// stat-validated snapshot cache over a remote tier would trade a full
// verify-on-read for a race; every remote load transfers and verifies.
