package resultstore

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// testEnvelope wraps mem in an envelope with deterministic seams: a manual
// clock, recorded (not slept) backoffs, and a fixed-seed RNG.
func testEnvelope(mem *MemBackend, cfg EnvelopeConfig) (*Envelope, *time.Time, *[]time.Duration) {
	e := NewEnvelope(mem, cfg)
	now := time.Unix(1700000000, 0)
	var sleeps []time.Duration
	e.now = func() time.Time { return now }
	e.sleep = func(d time.Duration) { sleeps = append(sleeps, d) }
	e.rng = rand.New(rand.NewSource(1))
	return e, &now, &sleeps
}

func TestEnvelopeRetriesTransientFault(t *testing.T) {
	mem := NewMemBackend()
	if err := mem.Put(context.Background(), "aa.json", []byte("blob")); err != nil {
		t.Fatal(err)
	}
	fails := 2
	mem.GetHook = func(string) error {
		if fails > 0 {
			fails--
			return errors.New("transient")
		}
		return nil
	}
	env, _, sleeps := testEnvelope(mem, EnvelopeConfig{RetryMax: 2, RetryBackoff: 10 * time.Millisecond})

	data, err := env.Get(context.Background(), "aa.json")
	if err != nil || string(data) != "blob" {
		t.Fatalf("Get after transient faults = (%q, %v), want recovered blob", data, err)
	}
	st := env.EnvelopeState()
	if st.Retries != 2 || st.Failures != 0 || st.Breaker != BreakerClosed {
		t.Errorf("state after recovered op = %+v, want 2 retries, 0 failures, closed breaker", st)
	}
	if len(*sleeps) != 2 {
		t.Fatalf("slept %d times, want 2 (one per retry)", len(*sleeps))
	}
	// Backoff doubles per attempt and jitters ×[0.5, 1.5): attempt i waits in
	// [base<<i / 2, base<<i * 3/2).
	for i, d := range *sleeps {
		base := 10 * time.Millisecond << uint(i)
		if d < base/2 || d >= base*3/2 {
			t.Errorf("retry %d backoff = %v, want within [%v, %v)", i, d, base/2, base*3/2)
		}
	}
}

func TestEnvelopeNotFoundIsDefinitive(t *testing.T) {
	mem := NewMemBackend()
	calls := 0
	mem.GetHook = func(string) error { calls++; return nil }
	env, _, sleeps := testEnvelope(mem, EnvelopeConfig{BreakerThreshold: 1})

	for i := 0; i < 5; i++ {
		if _, err := env.Get(context.Background(), "aa.json"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("Get absent key = %v, want ErrNotFound", err)
		}
	}
	st := env.EnvelopeState()
	if st.Breaker != BreakerClosed || st.Failures != 0 || st.Retries != 0 {
		t.Errorf("ErrNotFound counted as a fault: %+v", st)
	}
	if calls != 5 || len(*sleeps) != 0 {
		t.Errorf("absent key cost %d attempts and %d sleeps, want 5 and 0 (no retries)", calls, len(*sleeps))
	}
}

func TestEnvelopeOpTimeout(t *testing.T) {
	mem := NewMemBackend()
	mem.GetHook = func(string) error { time.Sleep(50 * time.Millisecond); return nil }
	env, _, _ := testEnvelope(mem, EnvelopeConfig{OpTimeout: 5 * time.Millisecond, RetryMax: -1})

	start := time.Now()
	_, err := env.Get(context.Background(), "aa.json")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Get on a stalled tier = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("stalled op took %v; the per-op deadline did not bound it", elapsed)
	}
	if st := env.EnvelopeState(); st.Failures != 1 || st.LastError == "" {
		t.Errorf("timeout not accounted: %+v", st)
	}
}

func TestEnvelopeCallerCancelStopsRetries(t *testing.T) {
	mem := NewMemBackend()
	calls := 0
	ctx, cancel := context.WithCancel(context.Background())
	mem.GetHook = func(string) error { calls++; cancel(); return errors.New("boom") }
	env, _, sleeps := testEnvelope(mem, EnvelopeConfig{RetryMax: 5})

	if _, err := env.Get(ctx, "aa.json"); err == nil {
		t.Fatal("Get under a cancelled caller succeeded")
	}
	if calls != 1 || len(*sleeps) != 0 {
		t.Errorf("cancelled caller still cost %d attempts, %d sleeps; retrying would outlive the caller", calls, len(*sleeps))
	}
}

func TestEnvelopeRetryBudget(t *testing.T) {
	mem := NewMemBackend()
	failing := true
	calls := 0
	mem.GetHook = func(string) error {
		calls++
		if failing {
			return errors.New("flaky")
		}
		return nil
	}
	if err := mem.Put(context.Background(), "aa.json", []byte("x")); err != nil {
		t.Fatal(err)
	}
	env, _, _ := testEnvelope(mem, EnvelopeConfig{
		RetryMax: 2, RetryBudget: 1, RetryBackoff: time.Millisecond, BreakerThreshold: -1,
	})
	ctx := context.Background()

	// Op 1: first attempt fails, the single budget token buys one retry,
	// then the budget is dry — 2 attempts, not 3.
	calls = 0
	env.Get(ctx, "aa.json")
	if calls != 2 {
		t.Fatalf("first failing op made %d attempts, want 2 (budget bought one retry)", calls)
	}
	// Op 2: budget exhausted — single attempt, no retry.
	calls = 0
	env.Get(ctx, "aa.json")
	if calls != 1 {
		t.Fatalf("budget-dry op made %d attempts, want 1", calls)
	}
	// A success refills one token, so the next failing op retries again.
	failing = false
	if _, err := env.Get(ctx, "aa.json"); err != nil {
		t.Fatal(err)
	}
	failing = true
	calls = 0
	env.Get(ctx, "aa.json")
	if calls != 2 {
		t.Fatalf("post-refill failing op made %d attempts, want 2", calls)
	}
}

func TestEnvelopeBreakerLifecycle(t *testing.T) {
	mem := NewMemBackend()
	failing := true
	calls := 0
	mem.GetHook = func(string) error {
		calls++
		if failing {
			return errors.New("down")
		}
		return nil
	}
	if err := mem.Put(context.Background(), "aa.json", []byte("x")); err != nil {
		t.Fatal(err)
	}
	env, now, _ := testEnvelope(mem, EnvelopeConfig{
		RetryMax: -1, BreakerThreshold: 2, BreakerCooldown: 10 * time.Second,
	})
	ctx := context.Background()

	// Two consecutive terminal failures trip the breaker open.
	env.Get(ctx, "aa.json")
	if st := env.EnvelopeState(); st.Breaker != BreakerClosed {
		t.Fatalf("breaker opened below threshold: %+v", st)
	}
	env.Get(ctx, "aa.json")
	st := env.EnvelopeState()
	if st.Breaker != BreakerOpen {
		t.Fatalf("breaker = %s after %d consecutive failures, want open", st.Breaker, st.Failures)
	}
	if want := now.Add(10 * time.Second); !st.RetryAt.Equal(want) {
		t.Errorf("RetryAt = %v, want %v", st.RetryAt, want)
	}

	// Open: ops are refused without touching the tier.
	calls = 0
	if _, err := env.Get(ctx, "aa.json"); !errors.Is(err, ErrDegraded) {
		t.Fatalf("op under an open breaker = %v, want ErrDegraded", err)
	}
	if calls != 0 {
		t.Error("open breaker still touched the tier")
	}
	if st := env.EnvelopeState(); st.Refused != 1 {
		t.Errorf("Refused = %d, want 1", st.Refused)
	}

	// Cooldown elapses: exactly one half-open probe is admitted; its failure
	// re-opens the breaker for a full new cooldown.
	*now = now.Add(11 * time.Second)
	calls = 0
	if _, err := env.Get(ctx, "aa.json"); err == nil {
		t.Fatal("failing probe reported success")
	}
	if calls != 1 {
		t.Fatalf("half-open probe made %d attempts, want 1", calls)
	}
	if st := env.EnvelopeState(); st.Breaker != BreakerOpen {
		t.Fatalf("breaker = %s after failed probe, want re-opened", st.Breaker)
	}
	// Still inside the new cooldown: refused again.
	*now = now.Add(5 * time.Second)
	if _, err := env.Get(ctx, "aa.json"); !errors.Is(err, ErrDegraded) {
		t.Fatalf("op inside the re-opened cooldown = %v, want ErrDegraded", err)
	}

	// Tier recovers: the next probe succeeds and closes the breaker.
	*now = now.Add(11 * time.Second)
	failing = false
	if _, err := env.Get(ctx, "aa.json"); err != nil {
		t.Fatalf("successful probe = %v", err)
	}
	if st := env.EnvelopeState(); st.Breaker != BreakerClosed {
		t.Fatalf("breaker = %s after successful probe, want closed", st.Breaker)
	}
	// And stays closed for normal traffic.
	if _, err := env.Get(ctx, "aa.json"); err != nil {
		t.Fatalf("post-recovery op = %v", err)
	}
}

func TestEnvelopeHalfOpenAdmitsOneProbe(t *testing.T) {
	mem := NewMemBackend()
	release := make(chan struct{})
	entered := make(chan struct{}, 4)
	mem.GetHook = func(string) error {
		entered <- struct{}{}
		<-release
		return errors.New("still down")
	}
	env, now, _ := testEnvelope(mem, EnvelopeConfig{
		RetryMax: -1, BreakerThreshold: 1, BreakerCooldown: time.Second,
	})
	ctx := context.Background()

	// Trip the breaker, then move past the cooldown.
	go func() { release <- struct{}{} }()
	env.Get(ctx, "aa.json")
	<-entered // drain the tripping call's token
	if st := env.EnvelopeState(); st.Breaker != BreakerOpen {
		t.Fatalf("breaker = %s, want open", st.Breaker)
	}
	*now = now.Add(2 * time.Second)

	// First caller becomes the probe and blocks in the tier; a second caller
	// arriving mid-probe must be refused, not stacked behind it.
	probeDone := make(chan error, 1)
	go func() {
		_, err := env.Get(ctx, "aa.json")
		probeDone <- err
	}()
	<-entered
	if _, err := env.Get(ctx, "aa.json"); !errors.Is(err, ErrDegraded) {
		t.Fatalf("second caller during the probe = %v, want ErrDegraded", err)
	}
	release <- struct{}{}
	if err := <-probeDone; err == nil {
		t.Fatal("failing probe reported success")
	}
}

func TestEnvelopeWrapsAllOps(t *testing.T) {
	mem := NewMemBackend()
	env, _, _ := testEnvelope(mem, EnvelopeConfig{})
	ctx := context.Background()

	if err := env.Put(ctx, "aa.json", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if data, err := env.Get(ctx, "aa.json"); err != nil || string(data) != "x" {
		t.Fatalf("Get = (%q, %v)", data, err)
	}
	blobs, err := env.List(ctx)
	if err != nil || len(blobs) != 1 || blobs[0].Key != "aa.json" {
		t.Fatalf("List = (%v, %v)", blobs, err)
	}
	if err := env.Delete(ctx, "aa.json"); err != nil {
		t.Fatal(err)
	}
	if _, err := env.Get(ctx, "aa.json"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after Delete = %v, want ErrNotFound", err)
	}
	if st := env.EnvelopeState(); st.Ops != 5 {
		t.Errorf("Ops = %d, want 5 (put, get, list, delete, get)", st.Ops)
	}
	if kind := env.BackendKind(); kind != "mem" {
		t.Errorf("BackendKind = %q, want the wrapped tier's kind", kind)
	}
}

func TestEnvelopeDegradedErrorNamesOp(t *testing.T) {
	mem := NewMemBackend()
	mem.GetHook = func(string) error { return fmt.Errorf("down") }
	env, _, _ := testEnvelope(mem, EnvelopeConfig{RetryMax: -1, BreakerThreshold: 1})
	ctx := context.Background()
	env.Get(ctx, "aa.json")
	err := env.Put(ctx, "bb.json", nil)
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("Put under open breaker = %v, want ErrDegraded", err)
	}
}
