package resultstore

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Envelope wraps a remote Backend in the full fault budget, so a tier that
// is slow, flaky or down costs a scan a bounded, small amount of time and
// nothing else:
//
//   - per-op deadlines: every Get/Put/Delete/List runs under OpTimeout, so
//     a stalled tier surfaces as a fast error, not a hung scan;
//   - jittered-backoff retries with a bounded budget: transient errors are
//     retried up to RetryMax times per op, each retry spending one token
//     from a shared budget that refills on success — a tier that flakes on
//     every op exhausts the budget and degrades to single attempts instead
//     of multiplying its own latency;
//   - a backend-scoped circuit breaker (the same closed/open/half-open
//     machinery as the engine's per-class breakers): after BreakerThreshold
//     consecutive terminal failures the breaker opens and every op is
//     refused immediately with ErrDegraded; after BreakerCooldown one probe
//     op is admitted, and its outcome closes or re-opens the breaker. A
//     dead tier therefore costs one probe per cooldown, not one timeout
//     per task.
//
// ErrNotFound is a definitive answer, never a fault: it does not consume
// retries and does not count against the breaker.
type Envelope struct {
	inner Backend
	cfg   EnvelopeConfig

	mu       sync.Mutex
	state    BreakerState
	faults   int
	openedAt time.Time
	probing  bool
	budget   int

	ops      int64
	failures int64
	retries  int64
	refused  int64
	lastErr  string
	lastAt   time.Time

	// test seams
	now   func() time.Time
	sleep func(time.Duration)
	rng   *rand.Rand
}

// BreakerState is the envelope breaker's position, mirroring the engine's
// per-class breaker states.
type BreakerState string

// Breaker states.
const (
	BreakerClosed   BreakerState = "closed"
	BreakerOpen     BreakerState = "open"
	BreakerHalfOpen BreakerState = "half-open"
)

// EnvelopeConfig tunes the fault budget. Zero values apply the defaults.
type EnvelopeConfig struct {
	// OpTimeout bounds each attempt of each operation. Default 2s.
	OpTimeout time.Duration
	// RetryMax is how many times a failed op is retried (beyond the first
	// attempt). Default 2; negative disables retries.
	RetryMax int
	// RetryBackoff is the base backoff before the first retry; later
	// retries double it, and every wait is jittered ±50%. Default 50ms.
	RetryBackoff time.Duration
	// RetryBudget bounds retries across all ops: each retry spends one
	// token, each success refills one (up to the budget), so a persistently
	// flaky tier degrades to single attempts. Default 64; negative means
	// unbounded.
	RetryBudget int
	// BreakerThreshold is how many consecutive terminal failures open the
	// breaker. Default 5; negative disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before admitting a
	// half-open probe. Default 10s.
	BreakerCooldown time.Duration
}

// Envelope defaults.
const (
	DefaultOpTimeout        = 2 * time.Second
	DefaultRetryMax         = 2
	DefaultRetryBackoff     = 50 * time.Millisecond
	DefaultRetryBudget      = 64
	DefaultBreakerThreshold = 5
	DefaultBreakerCooldown  = 10 * time.Second
)

// EnvelopeState is the envelope's observability account, surfaced in
// Report.Stats and /healthz.
type EnvelopeState struct {
	Breaker BreakerState `json:"breaker"`
	// Faults is the consecutive terminal-failure count driving the breaker.
	Faults int `json:"faults,omitempty"`
	// RetryAt is when an open breaker admits its half-open probe.
	RetryAt time.Time `json:"retry_at,omitempty"`
	// Ops counts operations attempted; Failures terminal failures; Retries
	// retry attempts spent; Refused ops answered ErrDegraded by an open
	// breaker without touching the tier.
	Ops      int64 `json:"ops,omitempty"`
	Failures int64 `json:"failures,omitempty"`
	Retries  int64 `json:"retries,omitempty"`
	Refused  int64 `json:"refused,omitempty"`
	// LastError is the most recent terminal failure, with its time.
	LastError   string    `json:"last_error,omitempty"`
	LastErrorAt time.Time `json:"last_error_at,omitempty"`
}

// NewEnvelope wraps b with the fault budget.
func NewEnvelope(b Backend, cfg EnvelopeConfig) *Envelope {
	if cfg.OpTimeout == 0 {
		cfg.OpTimeout = DefaultOpTimeout
	}
	if cfg.RetryMax == 0 {
		cfg.RetryMax = DefaultRetryMax
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = DefaultRetryBackoff
	}
	if cfg.RetryBudget == 0 {
		cfg.RetryBudget = DefaultRetryBudget
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = DefaultBreakerThreshold
	}
	if cfg.BreakerCooldown == 0 {
		cfg.BreakerCooldown = DefaultBreakerCooldown
	}
	return &Envelope{
		inner: b,
		cfg:   cfg,
		state: BreakerClosed,
		budget: func() int {
			if cfg.RetryBudget < 0 {
				return 0
			}
			return cfg.RetryBudget
		}(),
		now:   time.Now,
		sleep: time.Sleep,
		rng:   rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

// Inner returns the wrapped backend (the serving mode exposes it directly).
func (e *Envelope) Inner() Backend { return e.inner }

// EnvelopeState snapshots the account.
func (e *Envelope) EnvelopeState() EnvelopeState {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := EnvelopeState{
		Breaker:     e.state,
		Faults:      e.faults,
		Ops:         e.ops,
		Failures:    e.failures,
		Retries:     e.retries,
		Refused:     e.refused,
		LastError:   e.lastErr,
		LastErrorAt: e.lastAt,
	}
	if e.state == BreakerOpen {
		st.RetryAt = e.openedAt.Add(e.cfg.BreakerCooldown)
	}
	return st
}

// allow reports whether an op may run now; probe marks the half-open probe,
// whose disposition must be handed back via recordSuccess/recordFailure.
func (e *Envelope) allow() (ok, probe bool) {
	if e.cfg.BreakerThreshold < 0 {
		return true, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	switch e.state {
	case BreakerOpen:
		if e.now().Sub(e.openedAt) < e.cfg.BreakerCooldown {
			e.refused++
			return false, false
		}
		e.state = BreakerHalfOpen
		e.probing = true
		return true, true
	case BreakerHalfOpen:
		if e.probing {
			e.refused++
			return false, false
		}
		e.probing = true
		return true, true
	default:
		return true, false
	}
}

func (e *Envelope) recordSuccess(probe bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.faults = 0
	e.state = BreakerClosed
	e.probing = false
	if e.cfg.RetryBudget > 0 && e.budget < e.cfg.RetryBudget {
		e.budget++
	}
}

func (e *Envelope) recordFailure(probe bool, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.failures++
	e.lastErr = err.Error()
	e.lastAt = e.now()
	if e.cfg.BreakerThreshold < 0 {
		return
	}
	if probe || e.state == BreakerHalfOpen {
		e.state = BreakerOpen
		e.openedAt = e.now()
		e.probing = false
		return
	}
	if e.state == BreakerOpen {
		return
	}
	e.faults++
	if e.faults >= e.cfg.BreakerThreshold {
		e.state = BreakerOpen
		e.openedAt = e.now()
	}
}

// spendRetry takes one retry token; false means the budget is dry and the
// op must settle for the attempts it already made.
func (e *Envelope) spendRetry() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.cfg.RetryBudget < 0 { // unbounded
		e.retries++
		return true
	}
	if e.budget == 0 {
		return false
	}
	e.budget--
	e.retries++
	return true
}

// backoff returns the jittered wait before retry attempt i (0-based).
func (e *Envelope) backoff(i int) time.Duration {
	d := e.cfg.RetryBackoff << uint(i)
	e.mu.Lock()
	jitter := 0.5 + e.rng.Float64() // ×[0.5, 1.5)
	e.mu.Unlock()
	return time.Duration(float64(d) * jitter)
}

// run executes op under the breaker, per-attempt deadline and retry policy.
func (e *Envelope) run(ctx context.Context, name string, op func(context.Context) error) error {
	ok, probe := e.allow()
	if !ok {
		return fmt.Errorf("%w (%s)", ErrDegraded, name)
	}
	e.mu.Lock()
	e.ops++
	e.mu.Unlock()
	var err error
	for attempt := 0; ; attempt++ {
		actx, cancel := context.WithTimeout(ctx, e.cfg.OpTimeout)
		err = op(actx)
		cancel()
		if err == nil || errors.Is(err, ErrNotFound) {
			// A definitive answer: the tier is healthy even when the blob
			// is absent.
			e.recordSuccess(probe)
			return err
		}
		if ctx.Err() != nil {
			// The caller gave up (scan cancelled, drain): not the tier's
			// fault, and retrying on its behalf would outlive the caller.
			e.recordFailure(probe, err)
			return err
		}
		if attempt >= e.cfg.RetryMax || e.cfg.RetryMax < 0 || !e.spendRetry() {
			e.recordFailure(probe, err)
			return err
		}
		e.sleep(e.backoff(attempt))
	}
}

func (e *Envelope) Get(ctx context.Context, key string) ([]byte, error) {
	var out []byte
	err := e.run(ctx, "get "+key, func(ctx context.Context) error {
		var err error
		out, err = e.inner.Get(ctx, key)
		return err
	})
	return out, err
}

func (e *Envelope) Put(ctx context.Context, key string, data []byte) error {
	return e.run(ctx, "put "+key, func(ctx context.Context) error {
		return e.inner.Put(ctx, key, data)
	})
}

func (e *Envelope) Delete(ctx context.Context, key string) error {
	return e.run(ctx, "delete "+key, func(ctx context.Context) error {
		return e.inner.Delete(ctx, key)
	})
}

func (e *Envelope) List(ctx context.Context) ([]BlobInfo, error) {
	var out []BlobInfo
	err := e.run(ctx, "list", func(ctx context.Context) error {
		var err error
		out, err = e.inner.List(ctx)
		return err
	})
	return out, err
}
