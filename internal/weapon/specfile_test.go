package weapon

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/corrector"
	"repro/internal/symptom"
	"repro/internal/vuln"
)

// TestParseSpecLongLine exercises spec lines past bufio.Scanner's default
// 64 KiB token cap: a generated spec can carry hundreds of sinks or a long
// description on one directive line.
func TestParseSpecLongLine(t *testing.T) {
	longDesc := strings.Repeat("lorem ipsum dolor sit amet ", 8<<10) // ~216 KiB
	longDesc = strings.TrimSpace(longDesc)
	var sinks strings.Builder
	sinks.WriteString("sink megasink")
	for i := 0; i < 20000; i++ {
		fmt.Fprintf(&sinks, " arg=%d", i)
	}
	src := "name longline\ndescription " + longDesc + "\n" + sinks.String() + "\nfix-template php_san\nfix-san esc\n"
	spec, err := ParseSpec(strings.NewReader(src))
	if err != nil {
		t.Fatalf("ParseSpec long line: %v", err)
	}
	if spec.Description != longDesc {
		t.Fatalf("long description mangled: got %d bytes, want %d", len(spec.Description), len(longDesc))
	}
	if len(spec.Sinks) != 1 || len(spec.Sinks[0].Args) != 20000 {
		t.Fatalf("long sink line mangled: %d sinks", len(spec.Sinks))
	}

	// Past the explicit cap the parser must fail cleanly, not panic.
	huge := "name toolong\ndescription " + strings.Repeat("x", MaxSpecLine+1) + "\nsink s\nfix-template php_san\n"
	if _, err := ParseSpec(strings.NewReader(huge)); err == nil {
		t.Fatalf("ParseSpec accepted a line beyond MaxSpecLine")
	}
}

// TestWriteSpecRejectsUnrepresentable covers the lossy round-trip bugs: a
// newline in a free-text field splits the value across physical lines (the
// continuation is dropped as a comment if it starts with '#', or mis-read
// as a directive otherwise), and edge whitespace is silently trimmed on
// re-parse. WriteSpec must refuse instead of writing a corrupt file.
func TestWriteSpecRejectsUnrepresentable(t *testing.T) {
	base := func() *Spec {
		return &Spec{
			Name:  "wr",
			Sinks: []vuln.Sink{{Name: "sinkfn"}},
			Fix:   corrector.Template{Kind: corrector.PHPSanitization, SanFunc: "esc"},
		}
	}
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"newline in description", func(s *Spec) { s.Description = "line one\n# looks like a comment" }},
		{"carriage return in description", func(s *Spec) { s.Description = "a\rb" }},
		{"newline in fix-message", func(s *Spec) { s.Fix.Message = "blocked\nname evil" }},
		{"leading space in description", func(s *Spec) { s.Description = " padded" }},
		{"trailing tab in sanitizer", func(s *Spec) { s.Sanitizers = []string{"esc\t"} }},
		{"newline in entry point", func(s *Spec) { s.EntryPoints = []string{"_A\n_B"} }},
		{"whitespace in sink name", func(s *Spec) { s.Sinks[0].Name = "two words" }},
		{"whitespace in fix-chars entry", func(s *Spec) { s.Fix.MaliciousChars = []string{"a b"} }},
		{"unescapable fix-chars literal", func(s *Spec) { s.Fix.MaliciousChars = []string{`\x20`} }},
		{"arrow in symptom func", func(s *Spec) {
			s.Dynamics = []symptom.Dynamic{{Func: "a->b", MapsTo: "intval", Category: symptom.Validation}}
		}},
		{"whitespace in symptom static", func(s *Spec) {
			s.Dynamics = []symptom.Dynamic{{Func: "f", MapsTo: "int val", Category: symptom.Validation}}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := base()
			tc.mutate(s)
			var buf bytes.Buffer
			if err := WriteSpec(&buf, s); err == nil {
				t.Fatalf("WriteSpec accepted unrepresentable spec; wrote:\n%s", buf.String())
			}
			if buf.Len() != 0 {
				t.Fatalf("WriteSpec wrote %d bytes before rejecting", buf.Len())
			}
		})
	}
}

// TestBuiltinSpecsRoundTrip pins WriteSpec → ParseSpec as loss-free over
// every bundled spec, including hei's escaped control characters.
func TestBuiltinSpecsRoundTrip(t *testing.T) {
	for _, spec := range BuiltinSpecs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := WriteSpec(&buf, &spec); err != nil {
				t.Fatalf("WriteSpec: %v", err)
			}
			back, err := ParseSpec(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("re-parse: %v\nfile:\n%s", err, buf.String())
			}
			if !reflect.DeepEqual(&spec, back) {
				t.Fatalf("round-trip not loss-free:\nwrote %+v\ngot   %+v\nfile:\n%s", spec, *back, buf.String())
			}
		})
	}
}

// FuzzParseSpec asserts ParseSpec never panics, and that anything it
// accepts survives WriteSpec → ParseSpec unchanged (the serializer must
// be able to represent every parseable spec).
func FuzzParseSpec(f *testing.F) {
	for _, spec := range BuiltinSpecs() {
		spec := spec
		var buf bytes.Buffer
		if err := WriteSpec(&buf, &spec); err != nil {
			f.Fatalf("seed WriteSpec: %v", err)
		}
		f.Add(buf.String())
	}
	f.Add("name w\nsink s arg=0 arg=2 method recv=db\nfix-template user_val\nfix-chars \\r \\n %0A\nfix-neutralizer \\x20\nsymptom f -> intval validation\n")
	f.Add("name w\n# comment\n\nsink s\nfix-template user_san\nfix-message WAP: blocked\ndescription #not a comment\n")
	f.Fuzz(func(t *testing.T, src string) {
		spec, err := ParseSpec(strings.NewReader(src))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteSpec(&buf, spec); err != nil {
			t.Fatalf("parsed spec not writable: %v\ninput: %q", err, src)
		}
		back, err := ParseSpec(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("written spec not re-parseable: %v\nfile:\n%s\ninput: %q", err, buf.String(), src)
		}
		if !reflect.DeepEqual(spec, back) {
			t.Fatalf("round-trip changed spec:\nfirst  %+v\nsecond %+v\ninput: %q", *spec, *back, src)
		}
	})
}

// TestValidateRejectsBundledClassCollision pins the weapon/bundled-class
// collision check: a weapon must not shadow a non-weapon bundled class,
// while regenerating a bundled weapon class (nosqli, hi, ei, wpsqli)
// stays allowed.
func TestValidateRejectsBundledClassCollision(t *testing.T) {
	s := &Spec{
		Name:  "SQLI", // case-insensitive: lowered name is the class ID
		Sinks: []vuln.Sink{{Name: "mysql_query"}},
		Fix:   corrector.Template{Kind: corrector.PHPSanitization, SanFunc: "esc"},
	}
	err := s.Validate()
	if err == nil || !strings.Contains(err.Error(), "collides") {
		t.Fatalf("Validate(sqli collision) = %v, want collision error", err)
	}
	if _, err := Generate(*s); err == nil {
		t.Fatalf("Generate accepted a weapon shadowing the bundled sqli class")
	}

	s.Name = "nosqli" // bundled class, but itself a weapon: permitted
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate(nosqli) = %v, want nil (bundled weapon classes may be regenerated)", err)
	}
}
