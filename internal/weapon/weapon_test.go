package weapon

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/corrector"
	"repro/internal/php/parser"
	"repro/internal/symptom"
	"repro/internal/taint"
	"repro/internal/vuln"
)

func TestGenerateWeaponBasic(t *testing.T) {
	w, err := Generate(Spec{
		Name:        "nosqli",
		Description: "NoSQL injection",
		Sinks:       []vuln.Sink{{Name: "find", Method: true}},
		Sanitizers:  []string{"mysql_real_escape_string"},
		Fix: corrector.Template{
			Kind:    corrector.PHPSanitization,
			SanFunc: "mysql_real_escape_string",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Class.ID != "nosqli" || !w.Class.Weapon || w.Class.Submodule != vuln.SubGenerated {
		t.Errorf("class = %+v", w.Class)
	}
	if w.Flag() != "-nosqli" {
		t.Errorf("flag = %q", w.Flag())
	}
	if w.Fix.ID != "san_nosqli" {
		t.Errorf("fix id = %q", w.Fix.ID)
	}
	if !strings.Contains(w.Fix.Def, "mysql_real_escape_string") {
		t.Errorf("fix def = %s", w.Fix.Def)
	}
}

func TestGenerateValidation(t *testing.T) {
	cases := []Spec{
		{}, // no name
		{Name: "x y", Sinks: []vuln.Sink{{Name: "f"}}}, // bad name
		{Name: "w"}, // no sinks
		{Name: "w", Sinks: []vuln.Sink{{Name: "f"}}}, // no fix template
		{Name: "w", Sinks: []vuln.Sink{{Name: "f"}}, Dynamics: []symptom.Dynamic{{Func: "g", MapsTo: "nope"}}},
	}
	for i, spec := range cases {
		if _, err := Generate(spec); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

// TestWeaponDetectorWorks builds a weapon for a made-up class and runs it.
func TestWeaponDetectorWorks(t *testing.T) {
	w, err := Generate(Spec{
		Name:       "smsi",
		Sinks:      []vuln.Sink{{Name: "send_sms", Args: []int{1}}},
		Sanitizers: []string{"sms_escape"},
		Fix: corrector.Template{
			Kind:    corrector.PHPSanitization,
			SanFunc: "sms_escape",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	src := `<?php
send_sms("+111", $_GET['msg']);
send_sms($_GET['to'], "static text");
send_sms("+111", sms_escape($_GET['msg2']));`
	f, errs := parser.Parse("sms.php", src)
	if len(errs) > 0 {
		t.Fatal(errs)
	}
	cands := taint.New(taint.Config{Class: w.Class}).File(f)
	// Only arg index 1 is dangerous, and sms_escape sanitizes.
	if len(cands) != 1 {
		t.Fatalf("candidates = %d", len(cands))
	}
	if cands[0].SinkPos.Line != 2 {
		t.Errorf("line = %d", cands[0].SinkPos.Line)
	}
}

func TestWeaponWithEntryPoints(t *testing.T) {
	w, err := Generate(Spec{
		Name:        "custom",
		Sinks:       []vuln.Sink{{Name: "danger"}},
		EntryPoints: []string{"_MOBILE"},
		Fix:         corrector.Template{Kind: corrector.UserValidation, MaliciousChars: []string{"'"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	src := `<?php danger($_MOBILE['x']); danger($_GET['y']);`
	f, _ := parser.Parse("c.php", src)
	cands := taint.New(taint.Config{Class: w.Class}).File(f)
	// Both the custom and the native entry points are active.
	if len(cands) != 2 {
		t.Fatalf("candidates = %d", len(cands))
	}
}

func TestBuiltinSpecsGenerate(t *testing.T) {
	for _, spec := range BuiltinSpecs() {
		w, err := Generate(spec)
		if err != nil {
			t.Errorf("builtin %q: %v", spec.Name, err)
			continue
		}
		if w.Class.Submodule != vuln.SubGenerated {
			t.Errorf("builtin %q: submodule = %v", spec.Name, w.Class.Submodule)
		}
	}
}

func TestBuiltinWeaponMatchesRegistry(t *testing.T) {
	// The generated nosqli weapon must agree with the registry's NOSQLI
	// class on sinks and sanitizers (both encode Section IV-C.1).
	var nosqli Spec
	for _, s := range BuiltinSpecs() {
		if s.Name == "nosqli" {
			nosqli = s
		}
	}
	w, err := Generate(nosqli)
	if err != nil {
		t.Fatal(err)
	}
	reg := vuln.MustGet(vuln.NOSQLI)
	if len(w.Class.Sinks) != len(reg.Sinks) {
		t.Errorf("sink counts differ: weapon %d, registry %d", len(w.Class.Sinks), len(reg.Sinks))
	}
	if !w.Class.IsSanitizer("mysql_real_escape_string") {
		t.Error("weapon must use the paper's sanitizer")
	}
}

func TestSpecFileRoundtrip(t *testing.T) {
	orig := Spec{
		Name:        "hei",
		Description: "Header and email injection",
		Sinks: []vuln.Sink{
			{Name: "header", Args: []int{0}},
			{Name: "mail"},
			{Name: "query", Method: true, Recv: "wpdb", Args: []int{0, 1}},
		},
		Sanitizers:       []string{"esc_header"},
		SanitizerMethods: []string{"prepare"},
		EntryPoints:      []string{"_CUSTOM"},
		EntryPointFuncs:  []string{"read_raw"},
		Fix: corrector.Template{
			Kind:           corrector.UserSanitization,
			MaliciousChars: []string{"\r", "\n", "%0a"},
			Neutralizer:    " ",
		},
		Dynamics: []symptom.Dynamic{
			{Func: "val_hdr", Category: symptom.Validation, MapsTo: "preg_match"},
		},
	}
	var buf bytes.Buffer
	if err := WriteSpec(&buf, &orig); err != nil {
		t.Fatal(err)
	}
	got, err := ParseSpec(&buf)
	if err != nil {
		t.Fatalf("parse: %v\nfile:\n%s", err, buf.String())
	}
	if got.Name != orig.Name || got.Description != orig.Description {
		t.Errorf("header mismatch: %+v", got)
	}
	if len(got.Sinks) != 3 || got.Sinks[2].Recv != "wpdb" || !got.Sinks[2].Method {
		t.Errorf("sinks = %+v", got.Sinks)
	}
	if len(got.Sinks[2].Args) != 2 {
		t.Errorf("sink args = %v", got.Sinks[2].Args)
	}
	if got.Fix.Kind != corrector.UserSanitization || got.Fix.Neutralizer != " " {
		t.Errorf("fix = %+v", got.Fix)
	}
	if len(got.Fix.MaliciousChars) != 3 || got.Fix.MaliciousChars[0] != "\r" {
		t.Errorf("chars = %q", got.Fix.MaliciousChars)
	}
	if len(got.Dynamics) != 1 || got.Dynamics[0].MapsTo != "preg_match" {
		t.Errorf("dynamics = %+v", got.Dynamics)
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []string{
		"bogus directive\n",
		"name w\nsink f badopt\nfix-template php_san\nfix-san e\n",
		"name w\nsink f\nfix-template nope\n",
		"name w\nsink f\nfix-template php_san\nfix-san e\nsymptom broken\n",
		"name w\nsink f\nfix-template php_san\nfix-san e\nsymptom f -> is_int badcat\n",
		"",
	}
	for i, src := range cases {
		if _, err := ParseSpec(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestParseSpecComments(t *testing.T) {
	src := `# a weapon
name w

# sinks
sink f arg=0
fix-template user_val
fix-chars ' "
fix-message no
`
	spec, err := ParseSpec(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Sinks) != 1 || len(spec.Fix.MaliciousChars) != 2 {
		t.Errorf("spec = %+v", spec)
	}
}
