package weapon

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/corrector"
	"repro/internal/symptom"
	"repro/internal/vuln"
)

// The spec file is the external representation of the ss/san/ep data the
// paper stores "in external files, allowing the inclusion of new items
// without recompiling the tool". One line per item:
//
//	name nosqli
//	description NoSQL injection for MongoDB
//	sink find method
//	sink header arg=0
//	sink query method recv=wpdb
//	san mysql_real_escape_string
//	san-method prepare
//	ep _CUSTOM
//	ep-func mysql_fetch_assoc
//	fix-template php_san | user_san | user_val
//	fix-san mysql_real_escape_string
//	fix-chars \r \n %0a
//	fix-neutralizer \x20
//	fix-message WAP: blocked
//	symptom val_int -> is_int validation
//
// '#' starts a comment; blank lines are ignored.

// ParseSpec reads a weapon spec file.
func ParseSpec(r io.Reader) (*Spec, error) {
	sc := bufio.NewScanner(r)
	spec := &Spec{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, rest, _ := strings.Cut(line, " ")
		rest = strings.TrimSpace(rest)
		var err error
		switch key {
		case "name":
			spec.Name = rest
		case "description":
			spec.Description = rest
		case "sink":
			err = parseSinkLine(spec, rest)
		case "san":
			spec.Sanitizers = append(spec.Sanitizers, strings.ToLower(rest))
		case "san-method":
			spec.SanitizerMethods = append(spec.SanitizerMethods, strings.ToLower(rest))
		case "ep":
			spec.EntryPoints = append(spec.EntryPoints, rest)
		case "ep-func":
			spec.EntryPointFuncs = append(spec.EntryPointFuncs, strings.ToLower(rest))
		case "fix-template":
			switch rest {
			case "php_san":
				spec.Fix.Kind = corrector.PHPSanitization
			case "user_san":
				spec.Fix.Kind = corrector.UserSanitization
			case "user_val":
				spec.Fix.Kind = corrector.UserValidation
			default:
				err = fmt.Errorf("unknown fix template %q", rest)
			}
		case "fix-san":
			spec.Fix.SanFunc = rest
		case "fix-chars":
			for _, c := range strings.Fields(rest) {
				spec.Fix.MaliciousChars = append(spec.Fix.MaliciousChars, unescapeChar(c))
			}
		case "fix-neutralizer":
			spec.Fix.Neutralizer = unescapeChar(rest)
		case "fix-message":
			spec.Fix.Message = rest
		case "symptom":
			err = parseSymptomLine(spec, rest)
		default:
			err = fmt.Errorf("unknown directive %q", key)
		}
		if err != nil {
			return nil, fmt.Errorf("weapon: spec line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("weapon: read spec: %w", err)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

// parseSinkLine parses "name [method] [recv=var] [arg=i ...]".
func parseSinkLine(spec *Spec, rest string) error {
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return fmt.Errorf("sink needs a name")
	}
	s := vuln.Sink{Name: strings.ToLower(fields[0])}
	for _, f := range fields[1:] {
		switch {
		case f == "method":
			s.Method = true
		case strings.HasPrefix(f, "recv="):
			s.Recv = strings.ToLower(strings.TrimPrefix(f, "recv="))
		case strings.HasPrefix(f, "arg="):
			n, err := strconv.Atoi(strings.TrimPrefix(f, "arg="))
			if err != nil || n < 0 {
				return fmt.Errorf("bad arg index %q", f)
			}
			s.Args = append(s.Args, n)
		default:
			return fmt.Errorf("unknown sink option %q", f)
		}
	}
	spec.Sinks = append(spec.Sinks, s)
	return nil
}

// parseSymptomLine parses "func -> static_symptom category".
func parseSymptomLine(spec *Spec, rest string) error {
	fn, mapping, ok := strings.Cut(rest, "->")
	if !ok {
		return fmt.Errorf("symptom needs 'func -> static [category]'")
	}
	fields := strings.Fields(strings.TrimSpace(mapping))
	if len(fields) == 0 {
		return fmt.Errorf("symptom needs a static symptom name")
	}
	d := symptom.Dynamic{Func: strings.ToLower(strings.TrimSpace(fn)), MapsTo: fields[0]}
	if len(fields) > 1 {
		switch fields[1] {
		case "validation":
			d.Category = symptom.Validation
		case "string", "string_manipulation":
			d.Category = symptom.StringManipulation
		case "sql", "sql_query_manipulation":
			d.Category = symptom.SQLQueryManipulation
		default:
			return fmt.Errorf("unknown symptom category %q", fields[1])
		}
	} else {
		d.Category = symptom.Validation
	}
	spec.Dynamics = append(spec.Dynamics, d)
	return nil
}

// WriteSpec serializes a spec in the file format understood by ParseSpec.
func WriteSpec(w io.Writer, spec *Spec) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# WAP weapon specification\nname %s\n", spec.Name)
	if spec.Description != "" {
		fmt.Fprintf(bw, "description %s\n", spec.Description)
	}
	for _, s := range spec.Sinks {
		fmt.Fprintf(bw, "sink %s", s.Name)
		if s.Method {
			fmt.Fprint(bw, " method")
		}
		if s.Recv != "" {
			fmt.Fprintf(bw, " recv=%s", s.Recv)
		}
		for _, a := range s.Args {
			fmt.Fprintf(bw, " arg=%d", a)
		}
		fmt.Fprintln(bw)
	}
	for _, s := range spec.Sanitizers {
		fmt.Fprintf(bw, "san %s\n", s)
	}
	for _, s := range spec.SanitizerMethods {
		fmt.Fprintf(bw, "san-method %s\n", s)
	}
	for _, e := range spec.EntryPoints {
		fmt.Fprintf(bw, "ep %s\n", e)
	}
	for _, e := range spec.EntryPointFuncs {
		fmt.Fprintf(bw, "ep-func %s\n", e)
	}
	switch spec.Fix.Kind {
	case corrector.PHPSanitization:
		fmt.Fprintln(bw, "fix-template php_san")
	case corrector.UserSanitization:
		fmt.Fprintln(bw, "fix-template user_san")
	case corrector.UserValidation:
		fmt.Fprintln(bw, "fix-template user_val")
	}
	if spec.Fix.SanFunc != "" {
		fmt.Fprintf(bw, "fix-san %s\n", spec.Fix.SanFunc)
	}
	if len(spec.Fix.MaliciousChars) > 0 {
		fmt.Fprint(bw, "fix-chars")
		for _, c := range spec.Fix.MaliciousChars {
			fmt.Fprintf(bw, " %s", escapeChar(c))
		}
		fmt.Fprintln(bw)
	}
	if spec.Fix.Neutralizer != "" {
		fmt.Fprintf(bw, "fix-neutralizer %s\n", escapeChar(spec.Fix.Neutralizer))
	}
	if spec.Fix.Message != "" {
		fmt.Fprintf(bw, "fix-message %s\n", spec.Fix.Message)
	}
	for _, d := range spec.Dynamics {
		cat := "validation"
		switch d.Category {
		case symptom.StringManipulation:
			cat = "string"
		case symptom.SQLQueryManipulation:
			cat = "sql"
		}
		fmt.Fprintf(bw, "symptom %s -> %s %s\n", d.Func, d.MapsTo, cat)
	}
	return bw.Flush()
}

func unescapeChar(s string) string {
	switch s {
	case `\r`:
		return "\r"
	case `\n`:
		return "\n"
	case `\t`:
		return "\t"
	case `\0`:
		return "\x00"
	case `\x20`, `\s`:
		return " "
	default:
		return s
	}
}

func escapeChar(s string) string {
	switch s {
	case "\r":
		return `\r`
	case "\n":
		return `\n`
	case "\t":
		return `\t`
	case "\x00":
		return `\0`
	case " ":
		return `\x20`
	default:
		return s
	}
}
