package weapon

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/corrector"
	"repro/internal/symptom"
	"repro/internal/vuln"
)

// The spec file is the external representation of the ss/san/ep data the
// paper stores "in external files, allowing the inclusion of new items
// without recompiling the tool". One line per item:
//
//	name nosqli
//	description NoSQL injection for MongoDB
//	sink find method
//	sink header arg=0
//	sink query method recv=wpdb
//	san mysql_real_escape_string
//	san-method prepare
//	ep _CUSTOM
//	ep-func mysql_fetch_assoc
//	fix-template php_san | user_san | user_val
//	fix-san mysql_real_escape_string
//	fix-chars \r \n %0a
//	fix-neutralizer \x20
//	fix-message WAP: blocked
//	symptom val_int -> is_int validation
//
// '#' starts a comment; blank lines are ignored.

// MaxSpecLine is the longest spec line ParseSpec accepts. Real weapon
// specs keep one item per line, but a generated spec can legitimately carry
// hundreds of sinks or malicious characters on a single directive, so the
// limit is far above bufio.Scanner's 64 KiB default token size.
const MaxSpecLine = 4 << 20

// ParseSpec reads a weapon spec file.
func ParseSpec(r io.Reader) (*Spec, error) {
	sc := bufio.NewScanner(r)
	// The default Scanner token cap is 64 KiB; a longer sink or fix-chars
	// line would fail with bufio.ErrTooLong mid-file.
	sc.Buffer(make([]byte, 0, 64<<10), MaxSpecLine)
	spec := &Spec{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, rest, _ := strings.Cut(line, " ")
		rest = strings.TrimSpace(rest)
		var err error
		switch key {
		case "name":
			spec.Name = rest
		case "description":
			spec.Description = rest
		case "sink":
			err = parseSinkLine(spec, rest)
		case "san":
			spec.Sanitizers = append(spec.Sanitizers, strings.ToLower(rest))
		case "san-method":
			spec.SanitizerMethods = append(spec.SanitizerMethods, strings.ToLower(rest))
		case "ep":
			spec.EntryPoints = append(spec.EntryPoints, rest)
		case "ep-func":
			spec.EntryPointFuncs = append(spec.EntryPointFuncs, strings.ToLower(rest))
		case "fix-template":
			switch rest {
			case "php_san":
				spec.Fix.Kind = corrector.PHPSanitization
			case "user_san":
				spec.Fix.Kind = corrector.UserSanitization
			case "user_val":
				spec.Fix.Kind = corrector.UserValidation
			default:
				err = fmt.Errorf("unknown fix template %q", rest)
			}
		case "fix-san":
			spec.Fix.SanFunc = rest
		case "fix-chars":
			for _, c := range strings.Fields(rest) {
				spec.Fix.MaliciousChars = append(spec.Fix.MaliciousChars, unescapeChar(c))
			}
		case "fix-neutralizer":
			spec.Fix.Neutralizer = unescapeChar(rest)
		case "fix-message":
			spec.Fix.Message = rest
		case "symptom":
			err = parseSymptomLine(spec, rest)
		default:
			err = fmt.Errorf("unknown directive %q", key)
		}
		if err != nil {
			return nil, fmt.Errorf("weapon: spec line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("weapon: read spec: %w", err)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

// parseSinkLine parses "name [method] [recv=var] [arg=i ...]".
func parseSinkLine(spec *Spec, rest string) error {
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return fmt.Errorf("sink needs a name")
	}
	s := vuln.Sink{Name: strings.ToLower(fields[0])}
	for _, f := range fields[1:] {
		switch {
		case f == "method":
			s.Method = true
		case strings.HasPrefix(f, "recv="):
			s.Recv = strings.ToLower(strings.TrimPrefix(f, "recv="))
		case strings.HasPrefix(f, "arg="):
			n, err := strconv.Atoi(strings.TrimPrefix(f, "arg="))
			if err != nil || n < 0 {
				return fmt.Errorf("bad arg index %q", f)
			}
			s.Args = append(s.Args, n)
		default:
			return fmt.Errorf("unknown sink option %q", f)
		}
	}
	spec.Sinks = append(spec.Sinks, s)
	return nil
}

// parseSymptomLine parses "func -> static_symptom category".
func parseSymptomLine(spec *Spec, rest string) error {
	fn, mapping, ok := strings.Cut(rest, "->")
	if !ok {
		return fmt.Errorf("symptom needs 'func -> static [category]'")
	}
	fields := strings.Fields(strings.TrimSpace(mapping))
	if len(fields) == 0 {
		return fmt.Errorf("symptom needs a static symptom name")
	}
	d := symptom.Dynamic{Func: strings.ToLower(strings.TrimSpace(fn)), MapsTo: fields[0]}
	if len(fields) > 1 {
		switch fields[1] {
		case "validation":
			d.Category = symptom.Validation
		case "string", "string_manipulation":
			d.Category = symptom.StringManipulation
		case "sql", "sql_query_manipulation":
			d.Category = symptom.SQLQueryManipulation
		default:
			return fmt.Errorf("unknown symptom category %q", fields[1])
		}
	} else {
		d.Category = symptom.Validation
	}
	spec.Dynamics = append(spec.Dynamics, d)
	return nil
}

// specValue rejects values the line-oriented format cannot carry: a line
// break would split the value across physical lines (the remainder is then
// re-parsed as a directive, or silently dropped as a comment if it starts
// with '#'), and surrounding whitespace would be silently trimmed on
// re-parse. Everything ParseSpec can produce passes, so parse → write →
// parse is loss-free.
func specValue(field, v string) error {
	if strings.ContainsAny(v, "\r\n") {
		return fmt.Errorf("weapon: write spec: %s value %q contains a line break, which the line-oriented spec format cannot represent", field, v)
	}
	if v != strings.TrimSpace(v) {
		return fmt.Errorf("weapon: write spec: %s value %q has leading or trailing whitespace that would be lost on re-parse", field, v)
	}
	return nil
}

// specToken is specValue for single-token fields (parsed with
// strings.Fields), where any interior whitespace also splits the value.
func specToken(field, v string) error {
	if err := specValue(field, v); err != nil {
		return err
	}
	if v != "" && len(strings.Fields(v)) != 1 {
		return fmt.Errorf("weapon: write spec: %s value %q contains whitespace, but the field is parsed as a single token", field, v)
	}
	return nil
}

// checkWritable verifies every field survives a WriteSpec → ParseSpec
// round-trip unchanged.
func checkWritable(spec *Spec) error {
	if err := specValue("name", spec.Name); err != nil {
		return err
	}
	if err := specValue("description", spec.Description); err != nil {
		return err
	}
	for _, s := range spec.Sinks {
		if err := specToken("sink name", s.Name); err != nil {
			return err
		}
		if err := specToken("sink recv", s.Recv); err != nil {
			return err
		}
	}
	for _, s := range spec.Sanitizers {
		if err := specValue("san", s); err != nil {
			return err
		}
	}
	for _, s := range spec.SanitizerMethods {
		if err := specValue("san-method", s); err != nil {
			return err
		}
	}
	for _, e := range spec.EntryPoints {
		if err := specValue("ep", e); err != nil {
			return err
		}
	}
	for _, e := range spec.EntryPointFuncs {
		if err := specValue("ep-func", e); err != nil {
			return err
		}
	}
	if err := specValue("fix-san", spec.Fix.SanFunc); err != nil {
		return err
	}
	for _, c := range spec.Fix.MaliciousChars {
		esc := escapeChar(c)
		if len(strings.Fields(esc)) != 1 || unescapeChar(esc) != c {
			return fmt.Errorf("weapon: write spec: fix-chars entry %q has no loss-free escaped form", c)
		}
	}
	if n := spec.Fix.Neutralizer; n != "" {
		esc := escapeChar(n)
		if strings.ContainsAny(esc, "\r\n") || esc != strings.TrimSpace(esc) || unescapeChar(esc) != n {
			return fmt.Errorf("weapon: write spec: fix-neutralizer %q has no loss-free escaped form", n)
		}
	}
	if err := specValue("fix-message", spec.Fix.Message); err != nil {
		return err
	}
	for _, d := range spec.Dynamics {
		if err := specValue("symptom func", d.Func); err != nil {
			return err
		}
		if strings.Contains(d.Func, "->") {
			return fmt.Errorf("weapon: write spec: symptom func %q contains \"->\", the func/static separator", d.Func)
		}
		if err := specToken("symptom static name", d.MapsTo); err != nil {
			return err
		}
	}
	return nil
}

// WriteSpec serializes a spec in the file format understood by ParseSpec.
// It fails rather than write a file that would not re-parse to an equal
// spec (e.g. a description containing a newline: the continuation line
// would be dropped as a comment or mis-read as a directive).
func WriteSpec(w io.Writer, spec *Spec) error {
	if err := checkWritable(spec); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# WAP weapon specification\nname %s\n", spec.Name)
	if spec.Description != "" {
		fmt.Fprintf(bw, "description %s\n", spec.Description)
	}
	for _, s := range spec.Sinks {
		fmt.Fprintf(bw, "sink %s", s.Name)
		if s.Method {
			fmt.Fprint(bw, " method")
		}
		if s.Recv != "" {
			fmt.Fprintf(bw, " recv=%s", s.Recv)
		}
		for _, a := range s.Args {
			fmt.Fprintf(bw, " arg=%d", a)
		}
		fmt.Fprintln(bw)
	}
	for _, s := range spec.Sanitizers {
		fmt.Fprintf(bw, "san %s\n", s)
	}
	for _, s := range spec.SanitizerMethods {
		fmt.Fprintf(bw, "san-method %s\n", s)
	}
	for _, e := range spec.EntryPoints {
		fmt.Fprintf(bw, "ep %s\n", e)
	}
	for _, e := range spec.EntryPointFuncs {
		fmt.Fprintf(bw, "ep-func %s\n", e)
	}
	switch spec.Fix.Kind {
	case corrector.PHPSanitization:
		fmt.Fprintln(bw, "fix-template php_san")
	case corrector.UserSanitization:
		fmt.Fprintln(bw, "fix-template user_san")
	case corrector.UserValidation:
		fmt.Fprintln(bw, "fix-template user_val")
	}
	if spec.Fix.SanFunc != "" {
		fmt.Fprintf(bw, "fix-san %s\n", spec.Fix.SanFunc)
	}
	if len(spec.Fix.MaliciousChars) > 0 {
		fmt.Fprint(bw, "fix-chars")
		for _, c := range spec.Fix.MaliciousChars {
			fmt.Fprintf(bw, " %s", escapeChar(c))
		}
		fmt.Fprintln(bw)
	}
	if spec.Fix.Neutralizer != "" {
		fmt.Fprintf(bw, "fix-neutralizer %s\n", escapeChar(spec.Fix.Neutralizer))
	}
	if spec.Fix.Message != "" {
		fmt.Fprintf(bw, "fix-message %s\n", spec.Fix.Message)
	}
	for _, d := range spec.Dynamics {
		cat := "validation"
		switch d.Category {
		case symptom.StringManipulation:
			cat = "string"
		case symptom.SQLQueryManipulation:
			cat = "sql"
		}
		fmt.Fprintf(bw, "symptom %s -> %s %s\n", d.Func, d.MapsTo, cat)
	}
	return bw.Flush()
}

func unescapeChar(s string) string {
	switch s {
	case `\r`:
		return "\r"
	case `\n`:
		return "\n"
	case `\t`:
		return "\t"
	case `\0`:
		return "\x00"
	case `\x20`, `\s`:
		return " "
	default:
		return s
	}
}

func escapeChar(s string) string {
	switch s {
	case "\r":
		return `\r`
	case "\n":
		return `\n`
	case "\t":
		return `\t`
	case "\x00":
		return `\0`
	case " ":
		return `\x20`
	default:
		return s
	}
}
