package weapon

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/vuln"
)

// Registry is the versioned store of hot-reloaded user weapons. Admission
// is the last rung of wapd's validation ladder: a spec that parsed,
// validated, and passed its dry-run is generated into a Weapon here, and
// every mutation bumps a monotonic revision. The revision flows into the
// engine's config digest (core.Options.WeaponSetRevision), so incremental
// result-store fingerprints rotate on every weapon change — a swapped
// weapon set can never splice stale cached findings into a report.
//
// A Registry is safe for concurrent use. Readers (Weapons, List, Revision)
// take point-in-time snapshots; scans keep using whatever engine they
// started with, so a swap mid-scan never changes a running scan's results.
type Registry struct {
	mu       sync.Mutex
	revision int64
	entries  map[string]*RegEntry
	// reserved are weapon names admitted at process start (the builtin
	// specs and any -weapon flags); hot-reloaded weapons may not take or
	// remove these names.
	reserved map[string]bool
	now      func() time.Time
}

// RegEntry is one admitted weapon with its provenance.
type RegEntry struct {
	// Weapon is the generated weapon.
	Weapon *Weapon
	// Source is the spec-file text the weapon was generated from, exactly
	// as accepted (what -weapons-dir persists).
	Source string
	// Revision is the registry revision at which this entry was admitted.
	Revision int64
	// AdmittedAt is when the entry was admitted.
	AdmittedAt time.Time
}

// NewRegistry builds an empty registry. Reserved names (builtin weapon
// specs, startup -weapon flags) cannot be added or removed hot.
func NewRegistry(reserved []string) *Registry {
	r := &Registry{
		entries:  map[string]*RegEntry{},
		reserved: map[string]bool{},
		now:      time.Now,
	}
	for _, n := range reserved {
		r.reserved[strings.ToLower(n)] = true
	}
	return r
}

// CheckAdmissible reports whether a spec's name could be admitted right
// now, without generating or admitting anything: the registry's collision
// rules on top of Spec.Validate. A hot weapon may not shadow ANY bundled
// class — not even the bundled weapon classes the builtin specs are allowed
// to regenerate at startup — and may not take a reserved name. wapd runs it
// as its own ladder rung so a doomed upload fails on the cheap check before
// the dry-run.
func (r *Registry) CheckAdmissible(spec *Spec) error {
	name := strings.ToLower(spec.Name)
	if c := vuln.Get(vuln.ClassID(name)); c != nil {
		return fmt.Errorf("weapon: registry: name %q collides with the bundled %s class; hot-reloaded weapons must use new class IDs", spec.Name, c.ID)
	}
	// reserved is immutable after NewRegistry, so reading it unlocked is safe.
	if r.reserved[name] {
		return fmt.Errorf("weapon: registry: name %q is reserved by a weapon loaded at startup", spec.Name)
	}
	return nil
}

// Admit generates the spec's weapon and stores it under its lowered name,
// bumping the revision. Re-admitting an existing name replaces the entry
// (an upload is an upsert). It returns the new entry. Admission enforces
// CheckAdmissible's collision rules.
func (r *Registry) Admit(spec *Spec, source string) (*RegEntry, error) {
	if err := r.CheckAdmissible(spec); err != nil {
		return nil, err
	}
	name := strings.ToLower(spec.Name)
	w, err := Generate(*spec)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.revision++
	e := &RegEntry{Weapon: w, Source: source, Revision: r.revision, AdmittedAt: r.now()}
	r.entries[name] = e
	return e, nil
}

// Remove deletes a weapon by name, bumping the revision (removal changes
// the active set, so fingerprints must rotate too). It reports whether the
// name was present.
func (r *Registry) Remove(name string) (bool, error) {
	name = strings.ToLower(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.reserved[name] {
		return false, fmt.Errorf("weapon: registry: %q was loaded at startup and cannot be removed hot", name)
	}
	if _, ok := r.entries[name]; !ok {
		return false, nil
	}
	delete(r.entries, name)
	r.revision++
	return true, nil
}

// Revision returns the current revision (0 = never mutated).
func (r *Registry) Revision() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.revision
}

// Weapons returns the admitted weapons sorted by name, with the revision
// the snapshot was taken at. The deterministic order keeps derived-engine
// config digests stable for a given revision.
func (r *Registry) Weapons() ([]*Weapon, int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Weapon, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e.Weapon)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Class.ID < out[j].Class.ID })
	return out, r.revision
}

// List returns the entries sorted by name.
func (r *Registry) List() []*RegEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*RegEntry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Weapon.Class.ID < out[j].Weapon.Class.ID })
	return out
}

// Get returns the entry for name (lowered), or nil.
func (r *Registry) Get(name string) *RegEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.entries[strings.ToLower(name)]
}
