// Package weapon implements the paper's headline contribution: WAP
// extensions ("weapons") that detect and correct new vulnerability classes
// without programming. A weapon is generated from user-provided data — the
// sensitive sinks and sanitization functions (plus optional entry points)
// for the detector, fix-template data for the fix, and optional dynamic
// symptoms — and plugs into the engine as a new detector + fix + symptom
// map (Section III-D).
package weapon

import (
	"fmt"
	"strings"

	"repro/internal/corrector"
	"repro/internal/symptom"
	"repro/internal/vuln"
)

// Spec is the user-provided configuration the weapon generator consumes.
type Spec struct {
	// Name identifies the weapon and derives the activation flag: a weapon
	// named "nosqli" is activated by -nosqli.
	Name string
	// Description is free-form documentation.
	Description string

	// Sinks are the sensitive sinks of the new class (functions exploited
	// by the attack).
	Sinks []vuln.Sink
	// Sanitizers are functions that neutralize malicious input.
	Sanitizers []string
	// SanitizerMethods are sanitizing method names (e.g. "prepare").
	SanitizerMethods []string
	// EntryPoints are additional input superglobals, beyond the native set.
	EntryPoints []string
	// EntryPointFuncs are functions whose return values are tainted.
	EntryPointFuncs []string

	// Fix is the fix-template instantiation data (Section III-C).
	Fix corrector.Template

	// Dynamics are the user's dynamic symptoms (Section III-B2).
	Dynamics []symptom.Dynamic
}

// Validate checks the spec is complete enough to generate a weapon.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("weapon: spec needs a name")
	}
	for _, r := range s.Name {
		if r <= ' ' || r == '/' || r == '\\' || r == 0x7f {
			return fmt.Errorf("weapon: name %q must be a single flag-friendly word", s.Name)
		}
	}
	// A weapon's lowered name becomes its class ID. Shadowing a bundled
	// non-weapon class (e.g. naming a weapon "sqli") would silently
	// double-register the class and make reports ambiguous. Bundled classes
	// that are themselves weapons (nosqli, hi, ei, wpsqli) stay permitted:
	// the builtin specs legitimately regenerate them.
	if c := vuln.Get(vuln.ClassID(strings.ToLower(s.Name))); c != nil && !c.Weapon {
		return fmt.Errorf("weapon: name %q collides with the bundled %s class (%s); weapon names must not shadow built-in class IDs", s.Name, c.ID, c.Name)
	}
	if len(s.Sinks) == 0 {
		return fmt.Errorf("weapon: spec %q needs at least one sensitive sink", s.Name)
	}
	for _, d := range s.Dynamics {
		if err := d.Validate(); err != nil {
			return fmt.Errorf("weapon: spec %q: %w", s.Name, err)
		}
	}
	switch s.Fix.Kind {
	case corrector.PHPSanitization, corrector.UserSanitization, corrector.UserValidation:
	default:
		return fmt.Errorf("weapon: spec %q needs a fix template", s.Name)
	}
	return nil
}

// Weapon is a generated extension: a detector configuration, a fix, and
// dynamic symptoms, ready to be linked into the engine.
type Weapon struct {
	// Class is the generated detector configuration; its ID is the weapon
	// name and its Submodule is SubGenerated.
	Class *vuln.Class
	// Fix is the generated fix.
	Fix *corrector.Fix
	// Dynamics are the user's dynamic symptoms.
	Dynamics []symptom.Dynamic
	// Spec preserves the source configuration.
	Spec Spec
}

// Flag returns the command-line flag activating the weapon.
func (w *Weapon) Flag() string { return "-" + string(w.Class.ID) }

// Generate builds a weapon from a spec: it configures the generic
// vulnerability detector with the (ep, ss, san) data, instantiates the fix
// template, and packages the dynamic symptoms (the paper's weapon
// generator).
func Generate(spec Spec) (*Weapon, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	fixID := "san_" + strings.ToLower(spec.Name)
	fx, err := corrector.GenerateFix(fixID, spec.Fix)
	if err != nil {
		return nil, fmt.Errorf("weapon: spec %q: %w", spec.Name, err)
	}

	cls := &vuln.Class{
		ID:          vuln.ClassID(strings.ToLower(spec.Name)),
		Name:        spec.Description,
		Description: spec.Description,
		Submodule:   vuln.SubGenerated,
		Sinks:       append([]vuln.Sink(nil), spec.Sinks...),
		Sanitizers:  append([]string(nil), lowerAll(spec.Sanitizers)...),
		SanitizerMethods: append([]string(nil),
			lowerAll(spec.SanitizerMethods)...),
		EntryPointFuncs: append([]string(nil), lowerAll(spec.EntryPointFuncs)...),
		FixID:           fixID,
		New:             true,
		Weapon:          true,
	}
	if cls.Name == "" {
		cls.Name = strings.ToUpper(spec.Name)
	}
	if len(spec.EntryPoints) > 0 {
		// Weapons extend the native entry points rather than replacing them.
		cls.EntryPoints = append(append([]string(nil), vuln.DefaultEntryPoints...), spec.EntryPoints...)
	}
	// Normalize sink names to lower case.
	for i := range cls.Sinks {
		cls.Sinks[i].Name = strings.ToLower(cls.Sinks[i].Name)
		cls.Sinks[i].Recv = strings.ToLower(cls.Sinks[i].Recv)
	}

	return &Weapon{
		Class:    cls,
		Fix:      fx,
		Dynamics: append([]symptom.Dynamic(nil), spec.Dynamics...),
		Spec:     spec,
	}, nil
}

func lowerAll(in []string) []string {
	out := make([]string, len(in))
	for i, s := range in {
		out[i] = strings.ToLower(s)
	}
	return out
}

// BuiltinSpecs returns the three weapons the paper creates (Section IV-C):
// NoSQLI, HI+EI (as separate weapons sharing a fix), and SQLI for WordPress.
func BuiltinSpecs() []Spec {
	return []Spec{
		{
			Name:        "nosqli",
			Description: "NoSQL injection (MongoDB)",
			Sinks: []vuln.Sink{
				{Name: "find", Method: true},
				{Name: "findone", Method: true},
				{Name: "findandmodify", Method: true},
				{Name: "insert", Method: true},
				{Name: "remove", Method: true},
				{Name: "save", Method: true},
				{Name: "execute", Method: true},
			},
			Sanitizers: []string{"mysql_real_escape_string"},
			Fix: corrector.Template{
				Kind:    corrector.PHPSanitization,
				SanFunc: "mysql_real_escape_string",
			},
		},
		{
			Name:        "hei",
			Description: "Header injection / HTTP response splitting and email injection",
			Sinks: []vuln.Sink{
				{Name: "header", Args: []int{0}},
				{Name: "mail"},
				{Name: "mb_send_mail"},
			},
			Fix: corrector.Template{
				Kind:           corrector.UserSanitization,
				MaliciousChars: []string{"\r", "\n", "%0a", "%0d", "%0A", "%0D"},
				Neutralizer:    " ",
			},
		},
		{
			Name:        "wpsqli",
			Description: "SQL injection through WordPress $wpdb",
			Sinks: []vuln.Sink{
				{Name: "query", Method: true, Recv: "wpdb"},
				{Name: "get_results", Method: true, Recv: "wpdb"},
				{Name: "get_row", Method: true, Recv: "wpdb"},
				{Name: "get_var", Method: true, Recv: "wpdb"},
				{Name: "get_col", Method: true, Recv: "wpdb"},
			},
			Sanitizers:       []string{"esc_sql", "absint", "sanitize_key"},
			SanitizerMethods: []string{"prepare"},
			Fix: corrector.Template{
				Kind:    corrector.PHPSanitization,
				SanFunc: "esc_sql",
			},
			Dynamics: []symptom.Dynamic{
				{Func: "sanitize_text_field", Category: symptom.StringManipulation, MapsTo: "str_replace"},
				{Func: "sanitize_email", Category: symptom.StringManipulation, MapsTo: "str_replace"},
				{Func: "sanitize_title", Category: symptom.StringManipulation, MapsTo: "str_replace"},
				{Func: "wp_kses", Category: symptom.StringManipulation, MapsTo: "str_replace"},
				{Func: "absint", Category: symptom.Validation, MapsTo: "intval"},
				{Func: "is_email", Category: symptom.Validation, MapsTo: "preg_match"},
			},
		},
	}
}
