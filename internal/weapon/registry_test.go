package weapon

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/corrector"
	"repro/internal/vuln"
)

func regSpec(name string) *Spec {
	return &Spec{
		Name:  name,
		Sinks: []vuln.Sink{{Name: name + "_sink"}},
		Fix:   corrector.Template{Kind: corrector.PHPSanitization, SanFunc: "esc"},
	}
}

func TestRegistryAdmitRemoveRevisions(t *testing.T) {
	r := NewRegistry([]string{"nosqli", "hei", "wpsqli"})
	if r.Revision() != 0 {
		t.Fatalf("fresh registry revision = %d, want 0", r.Revision())
	}

	e1, err := r.Admit(regSpec("alpha"), "src-alpha")
	if err != nil {
		t.Fatal(err)
	}
	if e1.Revision != 1 || r.Revision() != 1 {
		t.Fatalf("first admit revision = %d/%d, want 1", e1.Revision, r.Revision())
	}
	if got := r.Get("ALPHA"); got == nil || got.Source != "src-alpha" {
		t.Fatalf("Get(ALPHA) = %+v, want the admitted entry (lookup is case-insensitive)", got)
	}

	// Upsert bumps the revision again.
	e2, err := r.Admit(regSpec("alpha"), "src-alpha-v2")
	if err != nil {
		t.Fatal(err)
	}
	if e2.Revision != 2 {
		t.Fatalf("re-admit revision = %d, want 2", e2.Revision)
	}

	if _, err := r.Admit(regSpec("beta"), "src-beta"); err != nil {
		t.Fatal(err)
	}
	ws, rev := r.Weapons()
	if rev != 3 || len(ws) != 2 || ws[0].Class.ID != "alpha" || ws[1].Class.ID != "beta" {
		t.Fatalf("Weapons() = %d weapons at rev %d, want [alpha beta] at 3", len(ws), rev)
	}

	// Removal bumps the revision: the active set changed, fingerprints
	// must rotate.
	ok, err := r.Remove("alpha")
	if err != nil || !ok {
		t.Fatalf("Remove(alpha) = %v, %v", ok, err)
	}
	if r.Revision() != 4 {
		t.Fatalf("revision after remove = %d, want 4", r.Revision())
	}
	if ok, _ := r.Remove("alpha"); ok {
		t.Fatal("second Remove(alpha) reported a deletion")
	}
	if r.Revision() != 4 {
		t.Fatal("no-op remove must not bump the revision")
	}
}

func TestRegistryRejectsCollisionsAndReserved(t *testing.T) {
	r := NewRegistry([]string{"logi"})

	// Bundled non-weapon class.
	if _, err := r.Admit(regSpec("sqli"), ""); err == nil {
		t.Error("registry admitted a weapon shadowing the bundled sqli class")
	}
	// Bundled weapon class: allowed for builtin specs at startup, but NOT
	// hot — the running engine already serves it.
	if _, err := r.Admit(regSpec("nosqli"), ""); err == nil {
		t.Error("registry admitted a hot weapon shadowing the bundled nosqli weapon class")
	}
	// Reserved startup name.
	if _, err := r.Admit(regSpec("LOGI"), ""); err == nil {
		t.Error("registry admitted a weapon taking a reserved startup name")
	}
	if _, err := r.Remove("logi"); err == nil {
		t.Error("registry removed a reserved startup weapon")
	}
	// A spec that fails validation is refused.
	bad := regSpec("nosinks")
	bad.Sinks = nil
	if _, err := r.Admit(bad, ""); err == nil {
		t.Error("registry admitted a spec with no sinks")
	}
	if r.Revision() != 0 {
		t.Fatalf("failed admissions bumped the revision to %d", r.Revision())
	}
}

// TestRegistryConcurrency hammers Admit/Remove/Weapons/List from many
// goroutines (run with -race). Invariant: the final revision equals the
// number of successful mutations.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry(nil)
	const workers = 8
	const iters = 40
	var wg sync.WaitGroup
	var mu sync.Mutex
	mutations := 0
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("conc%d", g)
			for i := 0; i < iters; i++ {
				if _, err := r.Admit(regSpec(name), "src"); err != nil {
					t.Error(err)
					return
				}
				ws, rev := r.Weapons()
				if int64(len(ws)) > int64(workers) || rev <= 0 {
					t.Errorf("snapshot %d weapons at rev %d", len(ws), rev)
				}
				r.List()
				ok, err := r.Remove(name)
				if err != nil || !ok {
					t.Errorf("Remove(%s) = %v, %v", name, ok, err)
					return
				}
				mu.Lock()
				mutations += 2
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	if got := r.Revision(); got != int64(mutations) {
		t.Fatalf("final revision = %d, want %d (one bump per successful mutation)", got, mutations)
	}
}
