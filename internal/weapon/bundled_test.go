package weapon_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/php/parser"
	"repro/internal/taint"
	"repro/internal/vuln"
	"repro/internal/weapon"
)

// bundledDir locates the repository's weapons/ directory from the package's
// test working directory.
func bundledDir(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("..", "..", "weapons"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); err != nil {
		t.Skipf("weapons dir not found: %v", err)
	}
	return dir
}

// TestBundledSpecsLoad validates every .weapon file shipped in weapons/.
func TestBundledSpecsLoad(t *testing.T) {
	dir := bundledDir(t)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	loaded := 0
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".weapon" {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		spec, err := weapon.ParseSpec(f)
		f.Close()
		if err != nil {
			t.Errorf("%s: %v", e.Name(), err)
			continue
		}
		if _, err := weapon.Generate(*spec); err != nil {
			t.Errorf("%s: generate: %v", e.Name(), err)
		}
		loaded++
	}
	if loaded < 3 {
		t.Errorf("bundled weapons = %d, want >= 3", loaded)
	}
}

// TestXMLIWeaponDetects exercises the XML-injection spec end to end.
func TestXMLIWeaponDetects(t *testing.T) {
	f, err := os.Open(filepath.Join(bundledDir(t), "xmli.weapon"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	spec, err := weapon.ParseSpec(f)
	if err != nil {
		t.Fatal(err)
	}
	w, err := weapon.Generate(*spec)
	if err != nil {
		t.Fatal(err)
	}
	src := `<?php
$payload = $_POST['xml'];
$doc = simplexml_load_string($payload);
$doc2 = simplexml_load_string('<fixed/>');
$node->addChild("name", $_GET['n']);`
	file, errs := parser.Parse("x.php", src)
	if len(errs) > 0 {
		t.Fatal(errs)
	}
	cands := taint.New(taint.Config{Class: w.Class}).File(file)
	if len(cands) != 2 {
		for _, c := range cands {
			t.Logf("cand: %v", c)
		}
		t.Fatalf("candidates = %d, want 2", len(cands))
	}
}

// TestLogiWeaponInEngine runs the log-injection weapon through the whole
// engine including its dynamic symptoms and fix.
func TestLogiWeaponInEngine(t *testing.T) {
	f, err := os.Open(filepath.Join(bundledDir(t), "logi.weapon"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	spec, err := weapon.ParseSpec(f)
	if err != nil {
		t.Fatal(err)
	}
	w, err := weapon.Generate(*spec)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.New(core.Options{
		Mode:    core.ModeWAPe,
		Classes: []vuln.ClassID{},
		Weapons: []*weapon.Weapon{w},
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Train(); err != nil {
		t.Fatal(err)
	}
	src := `<?php
error_log("login failed for " . $_POST['user']);
error_log("ip " . log_escape($_SERVER['REMOTE_ADDR']));`
	rep, err := eng.Analyze(core.LoadMap("logs", map[string]string{"l.php": src}))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) != 1 {
		t.Fatalf("findings = %d, want 1 (log_escape sanitizes)", len(rep.Findings))
	}
	fixed, _, err := eng.FixProject(rep)
	if err != nil {
		t.Fatal(err)
	}
	out := fixed["l.php"]
	if !strings.Contains(out, "san_logi(") || !strings.Contains(out, "function san_logi") {
		t.Errorf("weapon fix missing:\n%s", out)
	}
}
