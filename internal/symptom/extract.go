package symptom

import (
	"strings"
	"sync"

	"repro/internal/php/ast"
	"repro/internal/taint"
)

// Extractor collects symptoms from candidate vulnerabilities. One extractor
// is configured per analysis run; it carries the dynamic symptoms of any
// active weapons.
type Extractor struct {
	dynamic map[string]string // user function -> static symptom name
	funcSet map[string]int    // static function symptoms

	// scopes memoizes the symptom-relevant sites of each scanned scope. A
	// scope (file or function body) hosts every candidate whose sink it
	// encloses, so without the memo each candidate re-walks the whole scope
	// AST; with it the walk happens once and per-candidate work shrinks to
	// testing the few relevant sites against the candidate's flow variables.
	mu     sync.Mutex
	scopes map[ast.Node]*scopeIndex
}

// scopeIndexCap bounds the scope memo. Scope keys are AST node pointers, so
// entries for re-parsed files can never be revalidated — a long-lived
// extractor (wapd keeps one per engine across scans) just drops the whole
// memo when it fills and lets the active scan rebuild its own scopes.
const scopeIndexCap = 4096

// scopeIndex is the candidate-independent part of one scope's symptom scan:
// the sites a candidate's flow variables have to be tested against, found by
// a single AST walk.
type scopeIndex struct {
	calls   []symptomCall
	issets  []*ast.IssetExpr
	empties []*ast.EmptyExpr
	exitIfs []*ast.IfStmt // if statements whose then-block exits
}

// symptomCall is a call to a symptom function (static or weapon-dynamic),
// with the symptom name it establishes when an argument touches the flow.
type symptomCall struct {
	sym  string
	args []ast.Expr
}

// NewExtractor returns an extractor with the given dynamic symptoms.
func NewExtractor(dynamics []Dynamic) *Extractor {
	dyn := make(map[string]string, len(dynamics))
	for _, d := range dynamics {
		dyn[strings.ToLower(d.Func)] = d.MapsTo
	}
	return &Extractor{dynamic: dyn, funcSet: FuncSymptoms(), scopes: make(map[ast.Node]*scopeIndex)}
}

// scopeIndexFor returns the memoized site index of scope, building it on
// first use.
func (x *Extractor) scopeIndexFor(scope ast.Node) *scopeIndex {
	x.mu.Lock()
	if idx, ok := x.scopes[scope]; ok {
		x.mu.Unlock()
		return idx
	}
	x.mu.Unlock()

	idx := &scopeIndex{}
	ast.Inspect(scope, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.CallExpr:
			name := ast.CalleeName(t)
			if name == "" {
				return true
			}
			if _, ok := x.funcSet[name]; ok {
				idx.calls = append(idx.calls, symptomCall{sym: name, args: t.Args})
			} else if mapped, ok := x.dynamic[name]; ok {
				idx.calls = append(idx.calls, symptomCall{sym: mapped, args: t.Args})
			}
		case *ast.IssetExpr:
			idx.issets = append(idx.issets, t)
		case *ast.EmptyExpr:
			idx.empties = append(idx.empties, t)
		case *ast.IfStmt:
			if blockExits(t.Then) {
				idx.exitIfs = append(idx.exitIfs, t)
			}
		}
		return true
	})

	x.mu.Lock()
	if len(x.scopes) >= scopeIndexCap {
		x.scopes = make(map[ast.Node]*scopeIndex)
	}
	x.scopes[scope] = idx
	x.mu.Unlock()
	return idx
}

// Extract returns the set of symptom names present around the candidate's
// data flow (paper Fig. 3, "collecting symptoms"): symptom functions applied
// to the variables involved in the flow, language constructs guarding them,
// and SQL-derived symptoms computed from the sink's query text.
func (x *Extractor) Extract(c *taint.Candidate, file *ast.File) map[string]bool {
	present := make(map[string]bool)

	fv := involvedVars(c)
	scope := enclosingScope(c, file)

	// Test the scope's memoized symptom sites against the flow.
	if scope != nil {
		idx := x.scopeIndexFor(scope)
		for _, call := range idx.calls {
			if !present[call.sym] && fv.touchesAny(call.args) {
				present[call.sym] = true
			}
		}
		for _, is := range idx.issets {
			if fv.touchesAny(is.Args) {
				present["isset"] = true
				break
			}
		}
		for _, em := range idx.empties {
			if fv.mentions(em.X) {
				present["empty"] = true
				break
			}
		}
		// exit/die/error guarding the flow: an if whose condition touches
		// flow vars and whose body exits.
		for _, ifs := range idx.exitIfs {
			if fv.mentions(ifs.Cond) {
				present["exit"] = true
				break
			}
		}
	}

	// Symptoms recorded on the taint trace itself.
	for _, step := range c.Value.Trace {
		switch step.Desc {
		case "concatenation", "string interpolation", "append assignment":
			present["concat"] = true
		}
		if step.Node != nil {
			if call, ok := step.Node.(*ast.CallExpr); ok {
				name := ast.CalleeName(call)
				if _, ok := x.funcSet[name]; ok {
					present[name] = true
				} else if mapped, ok := x.dynamic[name]; ok {
					present[mapped] = true
				}
			}
		}
	}

	// SQL-derived symptoms from the query text at the sink.
	queryText, numericContext := queryShape(c.TaintedExpr)
	upper := strings.ToUpper(queryText)
	if isQuerySink(c.SinkName) {
		if strings.Contains(upper, "FROM ") || strings.HasSuffix(upper, "FROM") {
			present["from_clause"] = true
		}
		for _, agg := range [...]struct{ fn, name string }{
			{"AVG(", "agg_avg"}, {"COUNT(", "agg_count"}, {"SUM(", "agg_sum"},
			{"MAX(", "agg_max"}, {"MIN(", "agg_min"},
		} {
			if strings.Contains(upper, agg.fn) {
				present[agg.name] = true
			}
		}
		if complexQuery(upper) {
			present["complex_query"] = true
		}
		if numericContext {
			present["numeric_entry_point"] = true
		}
	}

	return present
}

// ExtractVector extracts symptoms and builds the new-layout vector (the
// label is not known at extraction time and defaults to false).
func (x *Extractor) ExtractVector(c *taint.Candidate, file *ast.File) Vector {
	return NewVectorFromSet(x.Extract(c, file), false)
}

// flowVars identifies the variables participating in a candidate flow: the
// plain variables of the trace plus the specific superglobal cells (e.g.
// $_GET['id']) it reads. Guards on other cells of the same superglobal do
// not count — a validation of $_GET['other'] says nothing about this flow.
type flowVars struct {
	vars map[string]bool
	// cells maps superglobal name -> set of keys read ("" = whole array).
	cells map[string]map[string]bool
}

// involvedVars collects the flow variables of the candidate.
func involvedVars(c *taint.Candidate) *flowVars {
	fv := &flowVars{vars: make(map[string]bool), cells: make(map[string]map[string]bool)}
	add := func(e ast.Expr) {
		if e == nil {
			return
		}
		ast.Inspect(e, func(n ast.Node) bool {
			if v, ok := n.(*ast.Variable); ok {
				fv.vars[v.Name] = true
			}
			return true
		})
	}
	add(c.TaintedExpr)
	for _, step := range c.Value.Trace {
		if a, ok := step.Node.(*ast.AssignExpr); ok {
			add(a.Lhs)
		}
	}
	// Superglobal cells come from the taint sources ("$_GET[id]").
	for _, src := range c.Value.Sources {
		name := src.Name
		if strings.HasSuffix(name, ")") {
			continue // function entry point, not a superglobal
		}
		name = strings.TrimPrefix(name, "$")
		key := ""
		if i := strings.IndexByte(name, '['); i >= 0 {
			key = strings.TrimSuffix(name[i+1:], "]")
			name = name[:i]
		}
		if name == "" {
			continue
		}
		// The superglobal root must not count as a plain flow variable, or
		// every guard on any of its cells would match.
		delete(fv.vars, name)
		if fv.cells[name] == nil {
			fv.cells[name] = make(map[string]bool)
		}
		fv.cells[name][key] = true
	}
	return fv
}

// mentions reports whether the expression references a flow variable or one
// of the flow's superglobal cells.
func (fv *flowVars) mentions(e ast.Expr) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch t := n.(type) {
		case *ast.IndexExpr:
			base, ok := t.X.(*ast.Variable)
			if !ok {
				return true
			}
			keys, isSource := fv.cells[base.Name]
			if !isSource {
				return true
			}
			key := indexKeyOf(t.Index)
			if keys[key] || keys[""] || key == "" {
				found = true
				return false
			}
			// A different cell of the same superglobal: do not descend into
			// the base variable.
			return false
		case *ast.Variable:
			if fv.vars[t.Name] {
				found = true
				return false
			}
			if _, isSource := fv.cells[t.Name]; isSource {
				// Bare superglobal reference (foreach ($_POST as ...)).
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func indexKeyOf(idx ast.Expr) string {
	switch k := idx.(type) {
	case *ast.StringLit:
		return k.Value
	case *ast.IntLit:
		return k.Text
	default:
		return ""
	}
}

// enclosingScope returns the function body containing the sink, or the file.
func enclosingScope(c *taint.Candidate, file *ast.File) ast.Node {
	if file == nil {
		return nil
	}
	if c.EnclosingFunc != "" {
		if fn, ok := file.Funcs[strings.ToLower(c.EnclosingFunc)]; ok && fn.Body != nil {
			return fn.Body
		}
	}
	return file
}

// touchesAny reports whether any argument mentions a flow variable.
func (fv *flowVars) touchesAny(args []ast.Expr) bool {
	for _, a := range args {
		if fv.mentions(a) {
			return true
		}
	}
	return false
}

// blockExits reports whether a block unconditionally exits or returns.
func blockExits(b *ast.BlockStmt) bool {
	if b == nil {
		return false
	}
	for _, s := range b.Stmts {
		switch t := s.(type) {
		case *ast.ReturnStmt, *ast.ThrowStmt:
			return true
		case *ast.ExprStmt:
			if _, ok := t.X.(*ast.ExitExpr); ok {
				return true
			}
		}
	}
	return false
}

// queryShape reconstructs the literal text of the sink argument and reports
// whether the tainted fragment appears in a numeric SQL context (preceded by
// '=' or a comparison without an opening quote).
func queryShape(e ast.Expr) (text string, numeric bool) {
	var b strings.Builder
	var lastLitBeforeTaint string
	sawTaintMark := false
	var walk func(x ast.Expr)
	walk = func(x ast.Expr) {
		switch t := x.(type) {
		case *ast.StringLit:
			b.WriteString(t.Value)
			if !sawTaintMark {
				lastLitBeforeTaint = t.Value
			}
		case *ast.InterpString:
			for _, p := range t.Parts {
				walk(p)
			}
		case *ast.BinaryExpr:
			walk(t.X)
			walk(t.Y)
		case *ast.AssignExpr:
			walk(t.Rhs)
		case *ast.CallExpr:
			for _, a := range t.Args {
				walk(a)
			}
		case *ast.Variable, *ast.IndexExpr, *ast.PropExpr:
			// A dynamic fragment: mark the taint position once.
			if !sawTaintMark {
				sawTaintMark = true
			}
			b.WriteString("?")
		case *ast.TernaryExpr:
			if t.A != nil {
				walk(t.A)
			}
			walk(t.B)
		}
	}
	walk(e)
	text = b.String()

	lit := strings.TrimRight(lastLitBeforeTaint, " ")
	if lit != "" && sawTaintMark {
		last := lit[len(lit)-1]
		if last == '=' || last == '>' || last == '<' || last == '(' || last == ',' {
			numeric = true
		}
		if strings.HasSuffix(strings.ToUpper(lit), "LIMIT") || strings.HasSuffix(strings.ToUpper(lit), "OFFSET") {
			numeric = true
		}
	}
	return text, numeric
}

// complexQuery detects queries with joins, nesting or multiple clauses.
func complexQuery(upper string) bool {
	if strings.Contains(upper, "JOIN ") || strings.Contains(upper, "UNION ") {
		return true
	}
	clauses := 0
	for _, kw := range [...]string{"WHERE ", "GROUP BY", "ORDER BY", "HAVING ", "LIMIT "} {
		if strings.Contains(upper, kw) {
			clauses++
		}
	}
	if clauses >= 2 {
		return true
	}
	// Sub-select.
	if strings.Count(upper, "SELECT") >= 2 {
		return true
	}
	return false
}

// isQuerySink reports whether the sink executes database queries (SQL
// symptoms only make sense there).
func isQuerySink(name string) bool {
	switch name {
	case "mysql_query", "mysql_unbuffered_query", "mysql_db_query",
		"mysqli_query", "mysqli_real_query", "mysqli_multi_query",
		"pg_query", "pg_send_query", "sqlite_query", "sqlite_single_query",
		"query", "exec", "multi_query", "get_results", "get_row", "get_var",
		"get_col", "ldap_search", "ldap_list", "ldap_read",
		"xpath_eval", "xpath_eval_expression", "find", "findone":
		return true
	}
	return false
}
