package symptom

import (
	"testing"

	"repro/internal/php/parser"
	"repro/internal/taint"
	"repro/internal/vuln"
)

// Extraction scoping tests: symptoms must be collected from the code around
// the candidate's own flow, not from unrelated code.

func TestScopeLimitedToEnclosingFunction(t *testing.T) {
	// The guard in other() must not contaminate the candidate in handler().
	src := `<?php
function other() {
  $v = $_GET['v'];
  if (!is_numeric($v)) { exit; }
  mysql_query("SELECT safe FROM t WHERE v=" . intval($v));
}
function handler() {
  $id = $_GET['id'];
  mysql_query("SELECT raw FROM t WHERE id=" . $id);
}`
	f, errs := parser.Parse("scope.php", src)
	if len(errs) > 0 {
		t.Fatal(errs)
	}
	cands := taint.New(taint.Config{Class: vuln.MustGet(vuln.SQLI)}).File(f)
	if len(cands) != 1 {
		t.Fatalf("candidates = %d (intval should silence other())", len(cands))
	}
	got := NewExtractor(nil).Extract(cands[0], f)
	if got["is_numeric"] || got["intval"] {
		t.Errorf("symptoms leaked across functions: %v", got)
	}
}

func TestGuardOnDifferentSuperglobalKeyIgnored(t *testing.T) {
	src := `<?php
if (!is_numeric($_GET['other'])) { exit; }
mysql_query("SELECT * FROM t WHERE id=" . $_GET['id']);`
	f, _ := parser.Parse("k.php", src)
	cands := taint.New(taint.Config{Class: vuln.MustGet(vuln.SQLI)}).File(f)
	if len(cands) != 1 {
		t.Fatalf("candidates = %d", len(cands))
	}
	got := NewExtractor(nil).Extract(cands[0], f)
	if got["is_numeric"] {
		t.Errorf("guard on $_GET['other'] must not count for $_GET['id']: %v", got)
	}
}

func TestGuardOnSameSuperglobalKeyCounts(t *testing.T) {
	src := `<?php
if (!is_numeric($_GET['id'])) { exit; }
mysql_query("SELECT * FROM t WHERE id=" . $_GET['id']);`
	f, _ := parser.Parse("k.php", src)
	cands := taint.New(taint.Config{Class: vuln.MustGet(vuln.SQLI)}).File(f)
	if len(cands) != 1 {
		t.Fatalf("candidates = %d", len(cands))
	}
	got := NewExtractor(nil).Extract(cands[0], f)
	if !got["is_numeric"] || !got["exit"] {
		t.Errorf("same-key guard must count: %v", got)
	}
}

func TestWholeSuperglobalGuardCounts(t *testing.T) {
	// Guards on the whole array apply to every key.
	src := `<?php
if (empty($_POST)) { exit; }
mysql_query("SELECT * FROM t WHERE a='" . $_POST['a'] . "'");`
	f, _ := parser.Parse("w.php", src)
	cands := taint.New(taint.Config{Class: vuln.MustGet(vuln.SQLI)}).File(f)
	if len(cands) != 1 {
		t.Fatalf("candidates = %d", len(cands))
	}
	got := NewExtractor(nil).Extract(cands[0], f)
	if !got["empty"] {
		t.Errorf("whole-array guard must count: %v", got)
	}
}

func TestExitSymptomRequiresGuardRelation(t *testing.T) {
	// An exit elsewhere (not conditioned on the flow) must not count.
	src := `<?php
if ($_POST['mode'] == 'off') { exit; }
mysql_query("SELECT * FROM t WHERE id=" . $_GET['id']);`
	f, _ := parser.Parse("e.php", src)
	cands := taint.New(taint.Config{Class: vuln.MustGet(vuln.SQLI)}).File(f)
	if len(cands) != 1 {
		t.Fatalf("candidates = %d", len(cands))
	}
	got := NewExtractor(nil).Extract(cands[0], f)
	if got["exit"] {
		t.Errorf("unrelated exit counted: %v", got)
	}
}

func TestReturnGuardCountsAsExit(t *testing.T) {
	src := `<?php
function page() {
  $id = $_GET['id'];
  if (!ctype_digit($id)) { return; }
  mysql_query("SELECT * FROM t WHERE id=" . $id);
}`
	f, _ := parser.Parse("r.php", src)
	cands := taint.New(taint.Config{Class: vuln.MustGet(vuln.SQLI)}).File(f)
	if len(cands) != 1 {
		t.Fatalf("candidates = %d", len(cands))
	}
	got := NewExtractor(nil).Extract(cands[0], f)
	if !got["exit"] || !got["ctype_digit"] {
		t.Errorf("return-guard symptoms: %v", got)
	}
}

func TestQueryShapeNumericDetection(t *testing.T) {
	cases := []struct {
		src     string
		numeric bool
	}{
		{`<?php mysql_query("SELECT a FROM t WHERE id=" . $_GET['x']);`, true},
		{`<?php mysql_query("SELECT a FROM t WHERE name='" . $_GET['x'] . "'");`, false},
		{`<?php mysql_query("SELECT a FROM t LIMIT " . $_GET['x']);`, true},
		{`<?php mysql_query("SELECT a FROM t WHERE id > " . $_GET['x']);`, true},
	}
	for _, c := range cases {
		f, _ := parser.Parse("q.php", c.src)
		cands := taint.New(taint.Config{Class: vuln.MustGet(vuln.SQLI)}).File(f)
		if len(cands) != 1 {
			t.Fatalf("%q: candidates = %d", c.src, len(cands))
		}
		got := NewExtractor(nil).Extract(cands[0], f)
		if got["numeric_entry_point"] != c.numeric {
			t.Errorf("%q: numeric_entry_point = %v, want %v", c.src, got["numeric_entry_point"], c.numeric)
		}
	}
}

func TestTraceSymptomsFromCalls(t *testing.T) {
	// Functions applied along the flow count even without variable-based
	// matching (they are on the trace).
	src := `<?php
mysql_query("SELECT a FROM t WHERE v='" . trim($_GET['v']) . "'");`
	f, _ := parser.Parse("tr.php", src)
	cands := taint.New(taint.Config{Class: vuln.MustGet(vuln.SQLI)}).File(f)
	if len(cands) != 1 {
		t.Fatalf("candidates = %d", len(cands))
	}
	got := NewExtractor(nil).Extract(cands[0], f)
	if !got["trim"] {
		t.Errorf("trace symptom missing: %v", got)
	}
}
