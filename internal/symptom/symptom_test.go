package symptom

import (
	"testing"
	"testing/quick"

	"repro/internal/php/parser"
	"repro/internal/taint"
	"repro/internal/vuln"
)

func TestCatalogCount(t *testing.T) {
	// Paper: 61 attributes in the new WAP, one of which is the class label.
	if NumNewAttributes != 60 {
		t.Errorf("feature symptoms = %d, want 60 (61 with the class attribute)", NumNewAttributes)
	}
	// Original: 16 attributes including the class label.
	if NumOriginalAttributes != 15 {
		t.Errorf("original feature attributes = %d, want 15", NumOriginalAttributes)
	}
}

func TestCatalogNamesUnique(t *testing.T) {
	seen := make(map[string]bool)
	for _, s := range Catalog() {
		if seen[s.Name] {
			t.Errorf("duplicate symptom %q", s.Name)
		}
		seen[s.Name] = true
	}
}

func TestOriginalSymptomsSubset(t *testing.T) {
	orig := OriginalSymptoms()
	// The paper's prose says the original attributes "represent 24 symptoms"
	// but Table I's middle column enumerates 36 entries (counting each
	// aggregate function and SQL-shape symptom); we encode the table.
	if len(orig) != 36 {
		t.Errorf("original symptoms = %d, want 36: %v", len(orig), orig)
	}
	for _, n := range orig {
		if Index(n) < 0 {
			t.Errorf("original symptom %q missing from catalog", n)
		}
	}
}

func TestEveryAttributeCovered(t *testing.T) {
	covered := make(map[Attribute]bool)
	for _, s := range Catalog() {
		covered[s.Attr] = true
	}
	for a := AttrTypeChecking; a <= AttrAggregatedFunction; a++ {
		if !covered[a] {
			t.Errorf("attribute %v has no symptoms", a)
		}
	}
}

func extractFrom(t *testing.T, id vuln.ClassID, src string, dyn ...Dynamic) map[string]bool {
	t.Helper()
	f, errs := parser.Parse("sym.php", src)
	if len(errs) > 0 {
		t.Fatalf("parse: %v", errs)
	}
	cands := taint.New(taint.Config{Class: vuln.MustGet(id)}).File(f)
	if len(cands) == 0 {
		t.Fatal("no candidates to extract from")
	}
	return NewExtractor(dyn).Extract(cands[0], f)
}

func TestExtractValidationSymptoms(t *testing.T) {
	got := extractFrom(t, vuln.SQLI, `<?php
$id = $_GET['id'];
if (!isset($_GET['id'])) { exit; }
if (is_numeric($id)) {
  mysql_query("SELECT name FROM users WHERE id=" . $id);
}`)
	for _, want := range []string{"isset", "is_numeric", "concat", "from_clause", "numeric_entry_point"} {
		if !got[want] {
			t.Errorf("symptom %q missing; got %v", want, got)
		}
	}
}

func TestExtractStringManipulation(t *testing.T) {
	got := extractFrom(t, vuln.SQLI, `<?php
$name = trim(substr($_POST['name'], 0, 32));
$name = str_replace("'", "", $name);
mysql_query("SELECT * FROM t WHERE name='" . $name . "'");`)
	for _, want := range []string{"trim", "substr", "str_replace", "concat"} {
		if !got[want] {
			t.Errorf("symptom %q missing; got %v", want, got)
		}
	}
	if got["numeric_entry_point"] {
		t.Error("quoted context must not be numeric_entry_point")
	}
}

func TestExtractAggregates(t *testing.T) {
	got := extractFrom(t, vuln.SQLI, `<?php
mysql_query("SELECT COUNT(*), MAX(age) FROM users WHERE dept='" . $_GET['d'] . "'");`)
	if !got["agg_count"] || !got["agg_max"] {
		t.Errorf("aggregates missing: %v", got)
	}
	if got["agg_sum"] {
		t.Error("agg_sum should be absent")
	}
}

func TestExtractComplexQuery(t *testing.T) {
	got := extractFrom(t, vuln.SQLI, `<?php
mysql_query("SELECT * FROM a JOIN b ON a.id=b.id WHERE a.x=" . $_GET['x']);`)
	if !got["complex_query"] {
		t.Errorf("complex_query missing: %v", got)
	}
}

func TestNoSQLSymptomsForEcho(t *testing.T) {
	got := extractFrom(t, vuln.XSSR, `<?php echo "hi " . $_GET['n'] . " FROM space";`)
	if got["from_clause"] || got["numeric_entry_point"] {
		t.Errorf("SQL symptoms on a non-query sink: %v", got)
	}
}

func TestDynamicSymptomMapping(t *testing.T) {
	dyn := Dynamic{Func: "val_int", Category: Validation, MapsTo: "is_int"}
	if err := dyn.Validate(); err != nil {
		t.Fatal(err)
	}
	got := extractFrom(t, vuln.SQLI, `<?php
$id = $_GET['id'];
if (val_int($id)) {
  mysql_query("SELECT * FROM t WHERE id=" . $id);
}`, dyn)
	if !got["is_int"] {
		t.Errorf("dynamic symptom not mapped: %v", got)
	}
}

func TestDynamicSymptomValidation(t *testing.T) {
	bad := Dynamic{Func: "f", MapsTo: "no_such_symptom"}
	if err := bad.Validate(); err == nil {
		t.Error("want error for unknown target symptom")
	}
	empty := Dynamic{MapsTo: "is_int"}
	if err := empty.Validate(); err == nil {
		t.Error("want error for empty function name")
	}
}

func TestWhiteListDynamic(t *testing.T) {
	dyn := Dynamic{Func: "check_allowed", Category: Validation, MapsTo: "white_list"}
	got := extractFrom(t, vuln.SQLI, `<?php
$v = $_GET['v'];
if (!check_allowed($v)) { exit; }
mysql_query("SELECT * FROM t WHERE a='" . $v . "'");`, dyn)
	if !got["white_list"] {
		t.Errorf("white_list missing: %v", got)
	}
	if !got["exit"] {
		t.Errorf("exit missing: %v", got)
	}
}

func TestVectorLayouts(t *testing.T) {
	present := map[string]bool{
		"is_numeric": true, "isset": true, "concat": true, "from_clause": true,
	}
	nv := NewVectorFromSet(present, true)
	if len(nv.Attrs) != NumNewAttributes {
		t.Fatalf("new vector len = %d", len(nv.Attrs))
	}
	count := 0
	for _, a := range nv.Attrs {
		if a {
			count++
		}
	}
	if count != 4 {
		t.Errorf("set attrs = %d, want 4", count)
	}
	ov := OriginalVectorFromSet(present, true)
	if len(ov.Attrs) != NumOriginalAttributes {
		t.Fatalf("orig vector len = %d", len(ov.Attrs))
	}
	if !ov.Attrs[AttrTypeChecking-1] || !ov.Attrs[AttrEntryPointIsSet-1] ||
		!ov.Attrs[AttrStringConcat-1] || !ov.Attrs[AttrFROMClause-1] {
		t.Errorf("orig vector = %v", ov.Attrs)
	}
}

func TestOriginalVectorIgnoresNewSymptoms(t *testing.T) {
	// preg_match_all is a new symptom: v2.1 must not see it.
	present := map[string]bool{"preg_match_all": true}
	ov := OriginalVectorFromSet(present, false)
	for i, a := range ov.Attrs {
		if a {
			t.Errorf("attr %d set from new-only symptom", i)
		}
	}
	// But preg_match (original) sets Pattern control.
	ov2 := OriginalVectorFromSet(map[string]bool{"preg_match": true}, false)
	if !ov2.Attrs[AttrPatternControl-1] {
		t.Error("preg_match should set pattern control")
	}
}

func TestVectorKeyRoundtrip(t *testing.T) {
	f := func(bits []bool, label bool) bool {
		if len(bits) > NumNewAttributes {
			bits = bits[:NumNewAttributes]
		}
		v := Vector{Attrs: bits, Label: label}
		w := v.Clone()
		return v.Key() == w.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPresentNames(t *testing.T) {
	v := NewVectorFromSet(map[string]bool{"trim": true, "isset": true}, false)
	names := PresentNames(v)
	if len(names) != 2 || names[0] != "isset" || names[1] != "trim" {
		t.Errorf("names = %v", names)
	}
}
