// Package symptom implements WAP's symptom machinery (paper Table I): the
// catalog of source-code features used to predict false positives, the maps
// from symptoms to attributes (the original 15-attribute map of WAP v2.1 and
// the 61-attribute map of the new version), extraction of symptoms from
// candidate vulnerabilities, and user-defined dynamic symptoms.
package symptom

import (
	"fmt"
	"sort"
)

// Category groups symptoms as in Table I.
type Category int

// Symptom categories.
const (
	Validation Category = iota + 1
	StringManipulation
	SQLQueryManipulation
)

// String returns the Table I category heading.
func (c Category) String() string {
	switch c {
	case Validation:
		return "validation"
	case StringManipulation:
		return "string manipulation"
	case SQLQueryManipulation:
		return "SQL query manipulation"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// Kind describes how a symptom is detected in source code.
type Kind int

// Symptom kinds.
const (
	// FuncKind symptoms are PHP function calls by name.
	FuncKind Kind = iota + 1
	// OperatorKind symptoms are operators (the concatenation dot).
	OperatorKind
	// ConstructKind symptoms are language constructs (isset, empty, exit).
	ConstructKind
	// DerivedKind symptoms are computed from the query text at the sink
	// (ComplexSQL, IsNum, FROM, aggregation functions).
	DerivedKind
	// UserListKind symptoms are user functions containing white/black lists
	// (dynamic symptoms).
	UserListKind
)

// Attribute identifies one of the original WAP v2.1 attributes, each of
// which aggregates several symptoms (Table I, left columns).
type Attribute int

// The 15 original feature attributes (the 16th attribute is the class
// label).
const (
	AttrTypeChecking Attribute = iota + 1
	AttrEntryPointIsSet
	AttrPatternControl
	AttrWhiteList
	AttrBlackList
	AttrErrorExit
	AttrExtractSubstring
	AttrStringConcat
	AttrAddChar
	AttrReplaceString
	AttrRemoveWhitespace
	AttrComplexQuery
	AttrNumericEntryPoint
	AttrFROMClause
	AttrAggregatedFunction
)

// NumOriginalAttributes is the original feature-attribute count (class label
// excluded).
const NumOriginalAttributes = 15

// attributeNames maps original attributes to readable names.
var attributeNames = map[Attribute]string{
	AttrTypeChecking:       "Type checking",
	AttrEntryPointIsSet:    "Entry point is set",
	AttrPatternControl:     "Pattern control",
	AttrWhiteList:          "White list",
	AttrBlackList:          "Black list",
	AttrErrorExit:          "Error and exit",
	AttrExtractSubstring:   "Extract substring",
	AttrStringConcat:       "String concatenation",
	AttrAddChar:            "Add char",
	AttrReplaceString:      "Replace string",
	AttrRemoveWhitespace:   "Remove whitespaces",
	AttrComplexQuery:       "Complex query",
	AttrNumericEntryPoint:  "Numeric entry point",
	AttrFROMClause:         "FROM clause",
	AttrAggregatedFunction: "Aggregated function",
}

// String returns the attribute's Table I name.
func (a Attribute) String() string {
	if n, ok := attributeNames[a]; ok {
		return n
	}
	return fmt.Sprintf("Attribute(%d)", int(a))
}

// Symptom is one entry of the Table I catalog. In the new WAP every symptom
// is itself an attribute; in the original tool symptoms aggregate into the
// 15 coarse attributes.
type Symptom struct {
	// Name is the symptom identifier: a PHP function name for FuncKind,
	// otherwise a descriptive slug.
	Name     string
	Category Category
	Kind     Kind
	// Attr is the original coarse attribute this symptom belongs to.
	Attr Attribute
	// Original marks symptoms already present in WAP v2.1 (Table I middle
	// column); the rest are the paper's additions (right column).
	Original bool
}

// Catalog returns the full ordered symptom catalog. The order defines the
// attribute-vector layout of the new WAP (60 feature attributes + class).
// The slice is freshly allocated on each call.
func Catalog() []Symptom {
	return append([]Symptom(nil), catalog...)
}

// NumNewAttributes is the new WAP feature-attribute count: every symptom is
// an attribute (class label excluded). With the class label this gives the
// paper's 61 attributes.
var NumNewAttributes = len(catalog)

var catalog = []Symptom{
	// --- validation: type checking -------------------------------------
	{Name: "is_string", Category: Validation, Kind: FuncKind, Attr: AttrTypeChecking, Original: true},
	{Name: "is_int", Category: Validation, Kind: FuncKind, Attr: AttrTypeChecking, Original: true},
	{Name: "is_float", Category: Validation, Kind: FuncKind, Attr: AttrTypeChecking, Original: true},
	{Name: "is_numeric", Category: Validation, Kind: FuncKind, Attr: AttrTypeChecking, Original: true},
	{Name: "ctype_digit", Category: Validation, Kind: FuncKind, Attr: AttrTypeChecking, Original: true},
	{Name: "ctype_alpha", Category: Validation, Kind: FuncKind, Attr: AttrTypeChecking, Original: true},
	{Name: "ctype_alnum", Category: Validation, Kind: FuncKind, Attr: AttrTypeChecking, Original: true},
	{Name: "intval", Category: Validation, Kind: FuncKind, Attr: AttrTypeChecking, Original: true},
	{Name: "is_double", Category: Validation, Kind: FuncKind, Attr: AttrTypeChecking},
	{Name: "is_integer", Category: Validation, Kind: FuncKind, Attr: AttrTypeChecking},
	{Name: "is_long", Category: Validation, Kind: FuncKind, Attr: AttrTypeChecking},
	{Name: "is_real", Category: Validation, Kind: FuncKind, Attr: AttrTypeChecking},
	{Name: "is_scalar", Category: Validation, Kind: FuncKind, Attr: AttrTypeChecking},
	// --- validation: entry point is set ---------------------------------
	{Name: "isset", Category: Validation, Kind: ConstructKind, Attr: AttrEntryPointIsSet, Original: true},
	{Name: "is_null", Category: Validation, Kind: FuncKind, Attr: AttrEntryPointIsSet},
	{Name: "empty", Category: Validation, Kind: ConstructKind, Attr: AttrEntryPointIsSet},
	// --- validation: pattern control ------------------------------------
	{Name: "preg_match", Category: Validation, Kind: FuncKind, Attr: AttrPatternControl, Original: true},
	{Name: "ereg", Category: Validation, Kind: FuncKind, Attr: AttrPatternControl, Original: true},
	{Name: "eregi", Category: Validation, Kind: FuncKind, Attr: AttrPatternControl, Original: true},
	{Name: "strnatcmp", Category: Validation, Kind: FuncKind, Attr: AttrPatternControl, Original: true},
	{Name: "strcmp", Category: Validation, Kind: FuncKind, Attr: AttrPatternControl, Original: true},
	{Name: "strncmp", Category: Validation, Kind: FuncKind, Attr: AttrPatternControl, Original: true},
	{Name: "strncasecmp", Category: Validation, Kind: FuncKind, Attr: AttrPatternControl, Original: true},
	{Name: "strcasecmp", Category: Validation, Kind: FuncKind, Attr: AttrPatternControl, Original: true},
	{Name: "preg_match_all", Category: Validation, Kind: FuncKind, Attr: AttrPatternControl},
	// --- validation: white/black lists (dynamic) ------------------------
	{Name: "white_list", Category: Validation, Kind: UserListKind, Attr: AttrWhiteList, Original: true},
	{Name: "black_list", Category: Validation, Kind: UserListKind, Attr: AttrBlackList, Original: true},
	// --- validation: error and exit -------------------------------------
	{Name: "error", Category: Validation, Kind: FuncKind, Attr: AttrErrorExit, Original: true},
	{Name: "exit", Category: Validation, Kind: ConstructKind, Attr: AttrErrorExit, Original: true},
	// --- string manipulation: extract substring -------------------------
	{Name: "substr", Category: StringManipulation, Kind: FuncKind, Attr: AttrExtractSubstring, Original: true},
	{Name: "preg_split", Category: StringManipulation, Kind: FuncKind, Attr: AttrExtractSubstring},
	{Name: "str_split", Category: StringManipulation, Kind: FuncKind, Attr: AttrExtractSubstring},
	{Name: "explode", Category: StringManipulation, Kind: FuncKind, Attr: AttrExtractSubstring},
	{Name: "split", Category: StringManipulation, Kind: FuncKind, Attr: AttrExtractSubstring},
	{Name: "spliti", Category: StringManipulation, Kind: FuncKind, Attr: AttrExtractSubstring},
	// --- string manipulation: concatenation -----------------------------
	{Name: "concat", Category: StringManipulation, Kind: OperatorKind, Attr: AttrStringConcat, Original: true},
	{Name: "implode", Category: StringManipulation, Kind: FuncKind, Attr: AttrStringConcat},
	{Name: "join", Category: StringManipulation, Kind: FuncKind, Attr: AttrStringConcat},
	// --- string manipulation: add char ----------------------------------
	{Name: "addchar", Category: StringManipulation, Kind: FuncKind, Attr: AttrAddChar, Original: true},
	{Name: "str_pad", Category: StringManipulation, Kind: FuncKind, Attr: AttrAddChar},
	// --- string manipulation: replace string ----------------------------
	{Name: "substr_replace", Category: StringManipulation, Kind: FuncKind, Attr: AttrReplaceString, Original: true},
	{Name: "str_replace", Category: StringManipulation, Kind: FuncKind, Attr: AttrReplaceString, Original: true},
	{Name: "preg_replace", Category: StringManipulation, Kind: FuncKind, Attr: AttrReplaceString, Original: true},
	{Name: "preg_filter", Category: StringManipulation, Kind: FuncKind, Attr: AttrReplaceString},
	{Name: "ereg_replace", Category: StringManipulation, Kind: FuncKind, Attr: AttrReplaceString},
	{Name: "eregi_replace", Category: StringManipulation, Kind: FuncKind, Attr: AttrReplaceString},
	{Name: "str_ireplace", Category: StringManipulation, Kind: FuncKind, Attr: AttrReplaceString},
	{Name: "str_shuffle", Category: StringManipulation, Kind: FuncKind, Attr: AttrReplaceString},
	{Name: "chunk_split", Category: StringManipulation, Kind: FuncKind, Attr: AttrReplaceString},
	// --- string manipulation: remove whitespaces ------------------------
	{Name: "trim", Category: StringManipulation, Kind: FuncKind, Attr: AttrRemoveWhitespace, Original: true},
	{Name: "rtrim", Category: StringManipulation, Kind: FuncKind, Attr: AttrRemoveWhitespace},
	{Name: "ltrim", Category: StringManipulation, Kind: FuncKind, Attr: AttrRemoveWhitespace},
	// --- SQL query manipulation ------------------------------------------
	{Name: "complex_query", Category: SQLQueryManipulation, Kind: DerivedKind, Attr: AttrComplexQuery, Original: true},
	{Name: "numeric_entry_point", Category: SQLQueryManipulation, Kind: DerivedKind, Attr: AttrNumericEntryPoint, Original: true},
	{Name: "from_clause", Category: SQLQueryManipulation, Kind: DerivedKind, Attr: AttrFROMClause, Original: true},
	{Name: "agg_avg", Category: SQLQueryManipulation, Kind: DerivedKind, Attr: AttrAggregatedFunction, Original: true},
	{Name: "agg_count", Category: SQLQueryManipulation, Kind: DerivedKind, Attr: AttrAggregatedFunction, Original: true},
	{Name: "agg_sum", Category: SQLQueryManipulation, Kind: DerivedKind, Attr: AttrAggregatedFunction, Original: true},
	{Name: "agg_max", Category: SQLQueryManipulation, Kind: DerivedKind, Attr: AttrAggregatedFunction, Original: true},
	{Name: "agg_min", Category: SQLQueryManipulation, Kind: DerivedKind, Attr: AttrAggregatedFunction, Original: true},
}

// indexByName maps symptom name to catalog index.
var indexByName = func() map[string]int {
	m := make(map[string]int, len(catalog))
	for i, s := range catalog {
		m[s.Name] = i
	}
	return m
}()

// Index returns the catalog position of a symptom name, or -1.
func Index(name string) int {
	if i, ok := indexByName[name]; ok {
		return i
	}
	return -1
}

// FuncSymptoms returns the set of PHP function names that are function-kind
// symptoms, mapped to their catalog index.
func FuncSymptoms() map[string]int {
	out := make(map[string]int)
	for i, s := range catalog {
		if s.Kind == FuncKind {
			out[s.Name] = i
		}
	}
	return out
}

// OriginalSymptoms returns the names of the symptoms known to WAP v2.1.
func OriginalSymptoms() []string {
	var out []string
	for _, s := range catalog {
		if s.Original {
			out = append(out, s.Name)
		}
	}
	return out
}

// Dynamic is a user-defined dynamic symptom (paper Section III-B2): a user
// function declared to behave like a static symptom.
type Dynamic struct {
	// Func is the user function name (lower-case), e.g. "val_int".
	Func string
	// Category of the symptom (validation, string manipulation, ...).
	Category Category
	// MapsTo is the static symptom the function is equivalent to, e.g.
	// "is_int", or "white_list"/"black_list" for user list functions.
	MapsTo string
}

// Validate checks the dynamic symptom refers to a known static symptom.
func (d Dynamic) Validate() error {
	if d.Func == "" {
		return fmt.Errorf("symptom: dynamic symptom needs a function name")
	}
	if Index(d.MapsTo) < 0 {
		return fmt.Errorf("symptom: dynamic symptom %q maps to unknown static symptom %q", d.Func, d.MapsTo)
	}
	return nil
}

// Vector is a binary attribute vector plus a label. Attrs follows either the
// 60-feature new layout or the 15-feature original layout; Label is true for
// false positives (class FP) and false for real vulnerabilities (class RV),
// matching the paper's "Yes (FP)" class.
type Vector struct {
	Attrs []bool
	Label bool
}

// Clone returns a deep copy of the vector.
func (v Vector) Clone() Vector {
	return Vector{Attrs: append([]bool(nil), v.Attrs...), Label: v.Label}
}

// Key returns a canonical string form for deduplication.
func (v Vector) Key() string {
	b := make([]byte, len(v.Attrs)+1)
	for i, a := range v.Attrs {
		if a {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	if v.Label {
		b[len(v.Attrs)] = 'F'
	} else {
		b[len(v.Attrs)] = 'R'
	}
	return string(b)
}

// NewVectorFromSet builds a new-layout (60-feature) vector from a set of
// present symptom names. Unknown names are ignored.
func NewVectorFromSet(present map[string]bool, label bool) Vector {
	attrs := make([]bool, len(catalog))
	for name := range present {
		if i := Index(name); i >= 0 {
			attrs[i] = present[name]
		}
	}
	return Vector{Attrs: attrs, Label: label}
}

// OriginalVectorFromSet builds an original-layout (15-feature) vector: only
// WAP v2.1 symptoms contribute, aggregated by coarse attribute.
func OriginalVectorFromSet(present map[string]bool, label bool) Vector {
	attrs := make([]bool, NumOriginalAttributes)
	for name, p := range present {
		if !p {
			continue
		}
		i := Index(name)
		if i < 0 || !catalog[i].Original {
			continue
		}
		attrs[catalog[i].Attr-1] = true
	}
	return Vector{Attrs: attrs, Label: label}
}

// PresentNames lists the symptom names set in a new-layout vector, sorted.
func PresentNames(v Vector) []string {
	var out []string
	for i, set := range v.Attrs {
		if set && i < len(catalog) {
			out = append(out, catalog[i].Name)
		}
	}
	sort.Strings(out)
	return out
}
