package experiments

import (
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/report"
)

// TestMicroSuiteAllClassesDetected closes the coverage gap of the paper's
// corpus: every one of the tool's vulnerability groups — including OSCI,
// PHPCI, XPathI and NoSQLI, which the 54 evaluated packages never triggered
// — is exercised end to end with exact scoring.
func TestMicroSuiteAllClassesDetected(t *testing.T) {
	eng, err := core.New(core.Options{Mode: core.ModeWAPe, Seed: DefaultSeed})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Train(); err != nil {
		t.Fatal(err)
	}
	const perClass = 3
	for _, app := range corpus.MicroSuite(DefaultSeed, perClass) {
		proj := core.LoadMap(app.Name, app.Files)
		rep, err := eng.Analyze(proj)
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		score := report.ScoreApp(app, report.Group(rep))
		if score.MissedVulns != 0 {
			t.Errorf("%s: missed %d planted vulnerabilities", app.Name, score.MissedVulns)
		}
		if score.Spurious != 0 {
			t.Errorf("%s: %d spurious findings", app.Name, score.Spurious)
		}
		if got := score.TotalDetected(); got != perClass {
			t.Errorf("%s: detected %d, want %d", app.Name, got, perClass)
		}
		// The guarded flows must be reported as candidates and predicted FP.
		wantFP := len(app.FPSpots())
		if score.PredictedFP+score.UnpredictedFP != wantFP {
			t.Errorf("%s: FP flows seen = %d, want %d",
				app.Name, score.PredictedFP+score.UnpredictedFP, wantFP)
		}
	}
}
