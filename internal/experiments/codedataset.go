package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dataset"
	"repro/internal/ml"
	"repro/internal/report"
	"repro/internal/symptom"
	"repro/internal/taint"
	"repro/internal/vuln"
)

// BuildCodeDrivenDataset reproduces the paper's data-set construction
// pipeline (Section III-B1): "we used WAP configured to output the candidate
// vulnerabilities, and we ran it with 29 open source PHP web applications.
// Then, each candidate vulnerability was processed manually to collect the
// attributes and to classify it as being a false positive or not."
//
// Here the analyzer runs over the synthetic corpus, candidates are labelled
// from the planted ground truth (standing in for the manual classification),
// symptoms are extracted exactly as in production, and noise is eliminated
// by dropping duplicate and ambiguous instances — the same procedure the
// paper describes.
func BuildCodeDrivenDataset(seed int64) (*ml.Dataset, error) {
	extractor := symptom.NewExtractor(nil)
	var pool []symptom.Vector

	for _, app := range corpus.WebAppSuite(seed) {
		if len(app.Spots) == 0 {
			continue
		}
		proj := core.LoadMap(app.Name, app.Files)
		for _, sf := range proj.Files {
			for _, cls := range vuln.WAPe() {
				an := taint.New(taint.Config{Class: cls, Resolver: proj})
				for _, cand := range an.File(sf.AST) {
					// Label from ground truth: a candidate inside a planted
					// FP spot is a false positive, inside a vulnerable spot
					// a real vulnerability; unmatched candidates (duplicate
					// detections across grouped classes) keep their spot's
					// label too.
					label, ok := labelFromTruth(app, cand)
					if !ok {
						continue
					}
					present := extractor.Extract(cand, sf.AST)
					pool = append(pool, symptom.NewVectorFromSet(present, label))
				}
			}
		}
	}
	if len(pool) == 0 {
		return nil, fmt.Errorf("experiments: no labelled candidates collected")
	}

	// Noise elimination: drop ambiguous attribute patterns and duplicates.
	labels := make(map[string]map[bool]bool)
	attrsKey := func(v symptom.Vector) string { return v.Key()[:len(v.Attrs)] }
	for _, v := range pool {
		k := attrsKey(v)
		if labels[k] == nil {
			labels[k] = make(map[bool]bool, 2)
		}
		labels[k][v.Label] = true
	}
	seen := make(map[string]bool)
	d := &ml.Dataset{}
	var nFP, nRV int
	for _, v := range pool {
		k := attrsKey(v)
		if len(labels[k]) > 1 || seen[k] {
			continue
		}
		seen[k] = true
		d.Instances = append(d.Instances, ml.NewInstance(v.Attrs, v.Label))
		if v.Label {
			nFP++
		} else {
			nRV++
		}
	}
	if nFP == 0 || nRV == 0 {
		return nil, fmt.Errorf("experiments: degenerate code-driven set (%d FP / %d RV)", nFP, nRV)
	}
	return d, nil
}

// labelFromTruth matches a candidate to the app's planted spots.
func labelFromTruth(app *corpus.App, cand *taint.Candidate) (isFP bool, ok bool) {
	group := report.GroupOf(cand.Class)
	for _, spot := range app.Spots {
		if spot.Group == group && spot.Contains(cand.File, cand.SinkPos.Line) {
			return !spot.Vulnerable, true
		}
	}
	return false, false
}

// CodeDrivenComparison evaluates classifiers trained on the code-driven set
// vs the generative set.
type CodeDrivenComparison struct {
	CodeDriven struct {
		Size, FP, RV int
		Accuracy     float64
	}
	Generative struct {
		Size     int
		Accuracy float64
	}
	// CrossAccuracy is the accuracy of a model trained on the generative
	// set and evaluated on the code-driven candidates — the deployment
	// scenario (train once, predict on new applications).
	CrossAccuracy float64
}

// RunCodeDrivenComparison builds both sets and compares.
func RunCodeDrivenComparison(seed int64) (*CodeDrivenComparison, error) {
	codeSet, err := BuildCodeDrivenDataset(seed)
	if err != nil {
		return nil, err
	}
	out := &CodeDrivenComparison{}
	out.CodeDriven.Size = codeSet.Len()
	fp, rv := codeSet.CountLabels()
	out.CodeDriven.FP, out.CodeDriven.RV = fp, rv

	k := 10
	if codeSet.Len() < 20 {
		k = 2
	}
	cm, err := ml.CrossValidate(func() ml.Classifier { return &ml.LogisticRegression{} }, codeSet, k, seed)
	if err != nil {
		return nil, err
	}
	out.CodeDriven.Accuracy = cm.Compute().ACC

	gen := dataset.Generate(dataset.Config{Seed: seed})
	out.Generative.Size = gen.Len()
	cm2, err := ml.CrossValidate(func() ml.Classifier { return &ml.LogisticRegression{} }, gen, 10, seed)
	if err != nil {
		return nil, err
	}
	out.Generative.Accuracy = cm2.Compute().ACC

	// Train on generative, evaluate on code-driven candidates.
	lr := &ml.LogisticRegression{}
	cm3, err := ml.Evaluate(lr, gen, codeSet)
	if err != nil {
		return nil, err
	}
	out.CrossAccuracy = cm3.Compute().ACC
	return out, nil
}

// RenderCodeDrivenComparison renders the comparison.
func RenderCodeDrivenComparison(c *CodeDrivenComparison) string {
	return fmt.Sprintf(`Training-set construction pipelines (Logistic Regression, CV accuracy)

  code-driven (analyzer candidates + ground-truth labels, noise eliminated):
      %d instances (%d FP / %d RV), accuracy %.1f%%
  generative model (the default 256-instance set):
      %d instances, accuracy %.1f%%
  generalization (trained on generative, tested on code-driven candidates):
      accuracy %.1f%%
`,
		c.CodeDriven.Size, c.CodeDriven.FP, c.CodeDriven.RV, c.CodeDriven.Accuracy*100,
		c.Generative.Size, c.Generative.Accuracy*100,
		c.CrossAccuracy*100)
}
