package experiments

import (
	"strings"
	"testing"
)

func TestClassifierSelection(t *testing.T) {
	if testing.Short() {
		t.Skip("seven CV runs")
	}
	r, err := RunClassifierSelection(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Ranked) != 7 {
		t.Fatalf("candidates = %d, want 7", len(r.Ranked))
	}

	rank := make(map[string]int)
	byName := make(map[string]ClassifierResult)
	for i, c := range r.Ranked {
		rank[c.Name] = i
		byName[c.Name] = c
	}

	// The paper's chosen members must rank highly: SVM and LR in the top 3.
	top3 := strings.Join(r.Top3(), ", ")
	if rank["SVM"] > 2 {
		t.Errorf("SVM rank = %d (top3: %s)", rank["SVM"]+1, top3)
	}
	if rank["Logistic Regression"] > 2 {
		t.Errorf("LR rank = %d (top3: %s)", rank["Logistic Regression"]+1, top3)
	}

	// The paper's specific substitution: Random Forest replaces Random Tree
	// because it performs better.
	if rank["Random Forest"] >= rank["Random Tree"] {
		t.Errorf("Random Forest (%d) must outrank Random Tree (%d)",
			rank["Random Forest"]+1, rank["Random Tree"]+1)
	}
	if byName["Random Forest"].Metrics.ACC <= byName["Random Tree"].Metrics.ACC {
		t.Error("Random Forest must beat Random Tree on accuracy")
	}

	// Every selected classifier clears the quality bar.
	for i := 0; i < 3; i++ {
		if r.Ranked[i].Metrics.ACC < 0.9 {
			t.Errorf("top-3 member %s accuracy %.3f < 0.9",
				r.Ranked[i].Name, r.Ranked[i].Metrics.ACC)
		}
	}

	out := RenderSelection(r)
	if !strings.Contains(out, "top 3") || !strings.Contains(out, "Random Tree") {
		t.Error("selection rendering incomplete")
	}
}

func TestSymptomImportance(t *testing.T) {
	imp, err := RunSymptomImportance(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(imp) == 0 {
		t.Fatal("no importance data")
	}
	byName := map[string]SymptomImportance{}
	for _, s := range imp {
		byName[s.Name] = s
	}
	// Validation symptoms must push toward the FP class...
	for _, name := range []string{"is_numeric", "isset", "preg_match", "empty", "preg_match_all"} {
		if byName[name].Weight <= 0 {
			t.Errorf("%s weight = %.3f, want positive (pushes FP)", name, byName[name].Weight)
		}
	}
	// ...and the paper's new symptoms must carry real weight: the top 15
	// must include new-vocabulary entries, or the enlarged set bought
	// nothing.
	newInTop := 0
	for _, s := range imp[:15] {
		if !s.Original {
			newInTop++
		}
	}
	if newInTop < 3 {
		t.Errorf("only %d new symptoms in the top 15", newInTop)
	}
	out := RenderSymptomImportance(imp, 10)
	if !strings.Contains(out, "false positive") || !strings.Contains(out, "weight") {
		t.Error("importance rendering incomplete")
	}
}

func TestCodeDrivenDatasetPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("suite analysis run")
	}
	c, err := RunCodeDrivenComparison(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if c.CodeDriven.FP == 0 || c.CodeDriven.RV == 0 {
		t.Fatalf("degenerate code-driven set: %+v", c.CodeDriven)
	}
	// The deployment guarantee behind Table VI: a model trained on the
	// 256-instance set classifies every distinct real candidate vector
	// correctly.
	if c.CrossAccuracy < 0.95 {
		t.Errorf("cross accuracy = %.3f, want >= 0.95", c.CrossAccuracy)
	}
	out := RenderCodeDrivenComparison(c)
	if !strings.Contains(out, "code-driven") || !strings.Contains(out, "generalization") {
		t.Error("rendering incomplete")
	}
}
