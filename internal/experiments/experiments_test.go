package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
)

// The experiment tests assert the *shape* requirements the paper's
// evaluation must exhibit (DESIGN.md section 4), plus the exact ground-truth
// totals our corpus is calibrated to.

func TestTable1Rendering(t *testing.T) {
	out := Table1()
	for _, want := range []string{"is_numeric", "preg_match_all", "white_list", "Aggregated function", "60 attributes"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q", want)
		}
	}
}

func TestTable2ClassifierBand(t *testing.T) {
	r, err := RunTable2And3(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Results) != 3 {
		t.Fatalf("classifiers = %d", len(r.Results))
	}
	for _, c := range r.Results {
		m := c.Metrics
		// Paper band: accuracy and precision between 90 and 97 %.
		if m.ACC < 0.88 || m.ACC > 0.99 {
			t.Errorf("%s: accuracy %.3f outside the paper's band", c.Name, m.ACC)
		}
		if m.TPP < 0.85 {
			t.Errorf("%s: tpp %.3f too low", c.Name, m.TPP)
		}
		if m.PFP > 0.12 {
			t.Errorf("%s: fallout %.3f too high", c.Name, m.PFP)
		}
		if c.Matrix.N() != 256 {
			t.Errorf("%s: N = %d, want 256", c.Name, c.Matrix.N())
		}
	}
	out2 := RenderTable2(r)
	if !strings.Contains(out2, "tpp") || !strings.Contains(out2, "jacc") {
		t.Error("Table II rendering incomplete")
	}
	out3 := RenderTable3(r)
	if !strings.Contains(out3, "SVM") || !strings.Contains(out3, "Random Forest") {
		t.Error("Table III rendering incomplete")
	}
}

func TestTable4Rendering(t *testing.T) {
	out := Table4()
	for _, want := range []string{"setcookie", "ldap_search", "xpath_eval", "file_put_contents", "RCE & file injection", "query injection"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table IV missing %q", want)
		}
	}
}

func TestWebAppsReproducesTable6(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite run")
	}
	old, err := RunWebApps(core.ModeOriginal, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	neu, err := RunWebApps(core.ModeWAPe, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}

	// Question 1+2: WAPe finds all 413 (386 original-class + 27 new-class);
	// v2.1 finds exactly the 386.
	if neu.TotalVulns != 413 {
		t.Errorf("WAPe vulns = %d, want 413", neu.TotalVulns)
	}
	if neu.TotalMissed != 0 {
		t.Errorf("WAPe missed = %d, want 0", neu.TotalMissed)
	}
	if old.TotalVulns != 386 {
		t.Errorf("WAP v2.1 vulns = %d, want 386", old.TotalVulns)
	}
	if old.TotalMissed != 27 {
		t.Errorf("WAP v2.1 missed = %d, want 27 (the new-class vulns)", old.TotalMissed)
	}

	// Per-class totals (Table VI bottom row).
	want := map[corpus.Group]int{
		corpus.GroupSQLI: 72, corpus.GroupXSS: 255, corpus.GroupFiles: 55,
		corpus.GroupSCD: 4, corpus.GroupLDAPI: 2, corpus.GroupSF: 1,
		corpus.GroupHI: 19, corpus.GroupCS: 5,
	}
	for g, n := range want {
		if neu.Totals[g] != n {
			t.Errorf("WAPe %s = %d, want %d", g, neu.Totals[g], n)
		}
	}

	// Question 3: FP prediction. WAPe predicts more FPs (104 vs 62) and
	// leaves fewer unpredicted (18 vs 60).
	if old.TotalFPP != 62 || old.TotalFP != 60 {
		t.Errorf("WAP v2.1 FPP/FP = %d/%d, want 62/60", old.TotalFPP, old.TotalFP)
	}
	if neu.TotalFPP != 104 || neu.TotalFP != 18 {
		t.Errorf("WAPe FPP/FP = %d/%d, want 104/18", neu.TotalFPP, neu.TotalFP)
	}
	if neu.TotalFPP <= old.TotalFPP {
		t.Error("WAPe must predict strictly more FPs than v2.1")
	}

	// No spurious detections against ground truth.
	for _, ar := range neu.Apps {
		if ar.Score.Spurious != 0 {
			t.Errorf("%s: %d spurious findings", ar.App.Name, ar.Score.Spurious)
		}
	}

	// 17 of 54 apps are vulnerable.
	vulnApps := 0
	for _, ar := range neu.Apps {
		if ar.Score.TotalDetected() > 0 {
			vulnApps++
		}
	}
	if vulnApps != 17 {
		t.Errorf("vulnerable apps = %d, want 17", vulnApps)
	}

	// Renderings carry the headline totals.
	t5 := RenderTable5(neu)
	if !strings.Contains(t5, "413") {
		t.Error("Table V missing total")
	}
	t6 := RenderTable6(old, neu)
	for _, wantCell := range []string{"413", "104", "18", "62", "60"} {
		if !strings.Contains(t6, wantCell) {
			t.Errorf("Table VI missing %q", wantCell)
		}
	}
}

func TestWordPressReproducesTable7(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite run")
	}
	r, err := RunWordPress(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalVulns != 169 {
		t.Errorf("plugin vulns = %d, want 169", r.TotalVulns)
	}
	want := map[corpus.Group]int{
		corpus.GroupSQLI: 55, corpus.GroupXSS: 71, corpus.GroupFiles: 31,
		corpus.GroupSCD: 5, corpus.GroupCS: 2, corpus.GroupHI: 5,
	}
	for g, n := range want {
		if r.Totals[g] != n {
			t.Errorf("plugins %s = %d, want %d", g, r.Totals[g], n)
		}
	}
	if r.TotalFPP != 3 || r.TotalFP != 2 {
		t.Errorf("plugins FPP/FP = %d/%d, want 3/2", r.TotalFPP, r.TotalFP)
	}
	vulnPlugins := 0
	for _, pr := range r.Plugins {
		if pr.Score.Spurious != 0 {
			t.Errorf("%s: %d spurious", pr.Plugin.Name, pr.Score.Spurious)
		}
		if pr.Score.MissedVulns != 0 {
			t.Errorf("%s: %d missed", pr.Plugin.Name, pr.Score.MissedVulns)
		}
		if pr.Score.TotalDetected() > 0 {
			vulnPlugins++
		}
	}
	if vulnPlugins != 21 {
		t.Errorf("plugins with detected vulns = %d, want 21", vulnPlugins)
	}
	out := RenderTable7(r)
	for _, wantCell := range []string{"169", "Simple support ticket system", "WP EasyCart"} {
		if !strings.Contains(out, wantCell) {
			t.Errorf("Table VII missing %q", wantCell)
		}
	}
}

func TestFig4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite run")
	}
	r, err := RunWordPress(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	f := RunFig4(r)
	sum := func(xs []int) int {
		total := 0
		for _, x := range xs {
			total += x
		}
		return total
	}
	if sum(f.DownloadsAnalyzed) != 115 || sum(f.InstallsAnalyzed) != 115 {
		t.Errorf("analyzed buckets sum to %d/%d, want 115",
			sum(f.DownloadsAnalyzed), sum(f.InstallsAnalyzed))
	}
	if sum(f.DownloadsVulnerable) != 21 {
		t.Errorf("vulnerable plugins bucketed = %d, want 21", sum(f.DownloadsVulnerable))
	}
	// Every download range contains analyzed plugins (paper: "distributed by
	// several ranges").
	for i, n := range f.DownloadsAnalyzed {
		if n == 0 {
			t.Errorf("download bucket %d empty", i)
		}
	}
	// Vulnerable plugins appear in the high-download ranges too.
	if f.DownloadsVulnerable[5]+f.DownloadsVulnerable[6] == 0 {
		t.Error("no vulnerable plugins in the >100K ranges")
	}
	out := RenderFig4(f)
	if !strings.Contains(out, "Fig. 4(a)") || !strings.Contains(out, "Fig. 4(b)") {
		t.Error("Fig. 4 rendering incomplete")
	}
}

func TestFig5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite run")
	}
	webApps, err := RunWebApps(core.ModeWAPe, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	plugins, err := RunWordPress(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	// SQLI and XSS must dominate (the paper's headline observation).
	order := SortedGroups(webApps.Totals)
	if order[0] != corpus.GroupXSS || order[1] != corpus.GroupSQLI {
		t.Errorf("web app dominance = %v, want XSS then SQLI", order[:2])
	}
	// LDAPI and SF appear only in web applications, not plugins.
	if plugins.Totals[corpus.GroupLDAPI] != 0 || plugins.Totals[corpus.GroupSF] != 0 {
		t.Error("LDAPI/SF must not appear in plugins")
	}
	if webApps.Totals[corpus.GroupLDAPI] == 0 || webApps.Totals[corpus.GroupSF] == 0 {
		t.Error("LDAPI/SF must appear in web apps")
	}
	out := RenderFig5(webApps, plugins)
	if !strings.Contains(out, "SQLI") || !strings.Contains(out, "web apps") {
		t.Error("Fig. 5 rendering incomplete")
	}
}
