package experiments

import (
	"fmt"
	"sort"

	"repro/internal/dataset"
	"repro/internal/ml"
	"repro/internal/report"
	"repro/internal/symptom"
)

// The paper re-evaluates machine-learning classifiers on the enlarged data
// set "to select the new top 3 classifiers" (Section III-B1); the selected
// ensemble is SVM + Logistic Regression + Random Forest, with Random Forest
// replacing the original Random Tree. This experiment reproduces the
// selection: every candidate model is cross-validated and ranked by the
// paper's goals — (1) predict as many false positives as possible (tpp),
// (2) the lowest fallout (pfp) — using accuracy as the headline score.

// SelectionResult ranks all candidate classifiers.
type SelectionResult struct {
	Ranked []ClassifierResult
}

// Top3 returns the names of the three best classifiers.
func (r *SelectionResult) Top3() []string {
	names := make([]string, 0, 3)
	for i := 0; i < 3 && i < len(r.Ranked); i++ {
		names = append(names, r.Ranked[i].Name)
	}
	return names
}

// RunClassifierSelection cross-validates every candidate model on the
// 256-instance set and ranks them.
func RunClassifierSelection(seed int64) (*SelectionResult, error) {
	d := dataset.Generate(dataset.Config{Seed: seed})
	candidates := []struct {
		name string
		mk   func() ml.Classifier
	}{
		{"SVM", func() ml.Classifier { return &ml.SVM{Seed: seed} }},
		{"Logistic Regression", func() ml.Classifier { return &ml.LogisticRegression{} }},
		{"Random Forest", func() ml.Classifier { return &ml.RandomForest{Seed: seed} }},
		{"Random Tree", func() ml.Classifier { return ml.NewRandomTree(symptom.NumNewAttributes, seed) }},
		{"Decision Tree (CART)", func() ml.Classifier { return &ml.DecisionTree{} }},
		{"Naive Bayes", func() ml.Classifier { return &ml.NaiveBayes{} }},
		{"K-NN", func() ml.Classifier { return &ml.KNN{} }},
	}
	res := &SelectionResult{}
	for _, c := range candidates {
		cm, err := ml.CrossValidate(c.mk, d, 10, seed)
		if err != nil {
			return nil, fmt.Errorf("experiments: selection: %s: %w", c.name, err)
		}
		auc, err := ml.CrossValidatedAUC(c.mk, d, 10, seed)
		if err != nil {
			return nil, fmt.Errorf("experiments: selection AUC: %s: %w", c.name, err)
		}
		res.Ranked = append(res.Ranked, ClassifierResult{
			Name:    c.name,
			Metrics: cm.Compute(),
			Matrix:  cm,
			AUC:     auc,
		})
	}
	// Rank by accuracy, breaking ties by informedness (tpp - pfp), which
	// captures both of the paper's goals at once.
	sort.SliceStable(res.Ranked, func(i, j int) bool {
		mi, mj := res.Ranked[i].Metrics, res.Ranked[j].Metrics
		if mi.ACC != mj.ACC {
			return mi.ACC > mj.ACC
		}
		return mi.Inform > mj.Inform
	})
	return res, nil
}

// RenderSelection renders the ranking table.
func RenderSelection(r *SelectionResult) string {
	headers := []string{"Rank", "Classifier", "acc", "tpp (goal 1)", "pfp (goal 2)", "inform", "AUC", "selected"}
	rows := make([][]string, 0, len(r.Ranked))
	for i, c := range r.Ranked {
		sel := ""
		if i < 3 {
			sel = "top 3"
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", i+1),
			c.Name,
			fmt.Sprintf("%.1f%%", c.Metrics.ACC*100),
			fmt.Sprintf("%.1f%%", c.Metrics.TPP*100),
			fmt.Sprintf("%.1f%%", c.Metrics.PFP*100),
			fmt.Sprintf("%.1f%%", c.Metrics.Inform*100),
			fmt.Sprintf("%.3f", c.AUC),
			sel,
		})
	}
	return "Classifier re-evaluation on the enlarged data set (Section III-B1)\n\n" +
		report.Table(headers, rows)
}
