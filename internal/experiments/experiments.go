// Package experiments regenerates every table and figure of the paper's
// evaluation section from the synthetic corpus: Tables I–VII and Figures 4
// and 5, plus the ablations called out in DESIGN.md. Each experiment
// returns structured results (asserted by tests and recorded in
// EXPERIMENTS.md) and renders the paper's presentation.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dataset"
	"repro/internal/ml"
	"repro/internal/report"
	"repro/internal/symptom"
	"repro/internal/vuln"
	"repro/internal/weapon"
)

// DefaultSeed keeps every experiment deterministic and mutually consistent.
const DefaultSeed = 2016

// ---------------------------------------------------------------------------
// Table I — symptom and attribute catalog
// ---------------------------------------------------------------------------

// Table1 renders the symptom catalog: original symptoms vs the new ones, by
// category and attribute.
func Table1() string {
	rows := make([][]string, 0, 64)
	for _, s := range symptom.Catalog() {
		origin := "new"
		if s.Original {
			origin = "WAP v2.1"
		}
		rows = append(rows, []string{
			s.Category.String(), s.Attr.String(), s.Name, origin,
		})
	}
	head := fmt.Sprintf("Table I: %d symptoms = %d attributes (+1 class attribute = %d); original had %d attributes\n\n",
		symptom.NumNewAttributes, symptom.NumNewAttributes, symptom.NumNewAttributes+1,
		symptom.NumOriginalAttributes+1)
	return head + report.Table([]string{"category", "attribute", "symptom", "origin"}, rows)
}

// ---------------------------------------------------------------------------
// Tables II and III — classifier evaluation
// ---------------------------------------------------------------------------

// ClassifierResult is one classifier's cross-validation outcome.
type ClassifierResult struct {
	Name    string
	Metrics ml.Metrics
	Matrix  ml.ConfusionMatrix
	// AUC is the cross-validated area under the ROC curve (0 when the
	// experiment did not compute it).
	AUC float64
}

// Table2And3Result carries the evaluation of the top-3 classifiers.
type Table2And3Result struct {
	Results []ClassifierResult
}

// RunTable2And3 evaluates SVM, Logistic Regression and Random Forest with
// 10-fold stratified cross-validation on the 256-instance data set.
func RunTable2And3(seed int64) (*Table2And3Result, error) {
	d := dataset.Generate(dataset.Config{Seed: seed})
	factories := []struct {
		name string
		mk   func() ml.Classifier
	}{
		{"SVM", func() ml.Classifier { return &ml.SVM{Seed: seed} }},
		{"Logistic Regression", func() ml.Classifier { return &ml.LogisticRegression{} }},
		{"Random Forest", func() ml.Classifier { return &ml.RandomForest{Seed: seed} }},
	}
	res := &Table2And3Result{}
	for _, f := range factories {
		cm, err := ml.CrossValidate(f.mk, d, 10, seed)
		if err != nil {
			return nil, fmt.Errorf("experiments: table 2: %w", err)
		}
		res.Results = append(res.Results, ClassifierResult{
			Name:    f.name,
			Metrics: cm.Compute(),
			Matrix:  cm,
		})
	}
	return res, nil
}

// RenderTable2 renders the nine Table II metrics.
func RenderTable2(r *Table2And3Result) string {
	headers := []string{"Metrics (%)"}
	for _, c := range r.Results {
		headers = append(headers, c.Name)
	}
	pct := func(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
	metricRows := []struct {
		name string
		get  func(ml.Metrics) float64
	}{
		{"tpp", func(m ml.Metrics) float64 { return m.TPP }},
		{"pfp", func(m ml.Metrics) float64 { return m.PFP }},
		{"prfp", func(m ml.Metrics) float64 { return m.PRFP }},
		{"pd", func(m ml.Metrics) float64 { return m.PD }},
		{"ppd", func(m ml.Metrics) float64 { return m.PPD }},
		{"acc", func(m ml.Metrics) float64 { return m.ACC }},
		{"pr", func(m ml.Metrics) float64 { return m.PR }},
		{"inform", func(m ml.Metrics) float64 { return m.Inform }},
		{"jacc", func(m ml.Metrics) float64 { return m.Jacc }},
	}
	rows := make([][]string, 0, len(metricRows))
	for _, mr := range metricRows {
		row := []string{mr.name}
		for _, c := range r.Results {
			row = append(row, pct(mr.get(c.Metrics)))
		}
		rows = append(rows, row)
	}
	return "Table II: machine learning model evaluation (10-fold CV, 256 instances, 61 attributes)\n\n" +
		report.Table(headers, rows)
}

// RenderTable3 renders the confusion matrices.
func RenderTable3(r *Table2And3Result) string {
	headers := []string{"Classifier", "tp (yes/yes)", "fp (yes/no)", "fn (no/yes)", "tn (no/no)"}
	rows := make([][]string, 0, len(r.Results))
	for _, c := range r.Results {
		rows = append(rows, []string{
			c.Name,
			fmt.Sprintf("%d", c.Matrix.TP),
			fmt.Sprintf("%d", c.Matrix.FP),
			fmt.Sprintf("%d", c.Matrix.FN),
			fmt.Sprintf("%d", c.Matrix.TN),
		})
	}
	return "Table III: confusion matrix of the top 3 classifiers (positive class = FP)\n\n" +
		report.Table(headers, rows)
}

// ---------------------------------------------------------------------------
// Table IV — sinks added to the sub-modules
// ---------------------------------------------------------------------------

// Table4 renders the sensitive sinks added per sub-module for the four
// classes integrated by reuse (Section IV-B).
func Table4() string {
	rows := [][]string{}
	for _, id := range []vuln.ClassID{vuln.SF, vuln.CS, vuln.LDAPI, vuln.XPATHI} {
		c := vuln.MustGet(id)
		sinks := make([]string, 0, len(c.Sinks))
		for _, s := range c.Sinks {
			sinks = append(sinks, s.Name)
		}
		rows = append(rows, []string{
			c.Submodule.String(),
			strings.ToUpper(string(c.ID)),
			strings.Join(sinks, ", "),
		})
	}
	return "Table IV: sensitive sinks added to the WAP sub-modules for the reused classes\n\n" +
		report.Table([]string{"Sub-module", "Vuln.", "Sensitive sinks"}, rows)
}

// ---------------------------------------------------------------------------
// Tables V & VI — web applications
// ---------------------------------------------------------------------------

// AppResult is the outcome of analyzing one application with one engine.
type AppResult struct {
	App      *corpus.App
	Files    int
	Lines    int
	Duration time.Duration
	// VulnFiles is the count of files with confirmed vulnerabilities.
	VulnFiles int
	// Score compares findings with ground truth.
	Score *report.Score
	// ByGroup counts detected real vulnerabilities per group.
	ByGroup map[corpus.Group]int
}

// WebAppsResult aggregates a suite run.
type WebAppsResult struct {
	Mode core.Mode
	Apps []*AppResult
	// Totals per group across vulnerable apps.
	Totals map[corpus.Group]int
	// TotalVulns, TotalFPP, TotalFP aggregate the score columns.
	TotalVulns, TotalFPP, TotalFP, TotalMissed int
	TotalDuration                              time.Duration
	TotalFiles, TotalLines                     int
}

// RunWebApps analyzes the 54-package suite with the given engine mode.
func RunWebApps(mode core.Mode, seed int64) (*WebAppsResult, error) {
	eng, err := core.New(core.Options{Mode: mode, Seed: seed})
	if err != nil {
		return nil, err
	}
	if err := eng.Train(); err != nil {
		return nil, err
	}
	suite := corpus.WebAppSuite(seed)
	res := &WebAppsResult{Mode: mode, Totals: make(map[corpus.Group]int)}
	for _, app := range suite {
		ar, err := analyzeApp(eng, app)
		if err != nil {
			return nil, err
		}
		res.Apps = append(res.Apps, ar)
		res.TotalFiles += ar.Files
		res.TotalLines += ar.Lines
		res.TotalDuration += ar.Duration
		res.TotalVulns += ar.Score.TotalDetected()
		res.TotalFPP += ar.Score.PredictedFP
		res.TotalFP += ar.Score.UnpredictedFP
		res.TotalMissed += ar.Score.MissedVulns
		for g, n := range ar.ByGroup {
			res.Totals[g] += n
		}
	}
	return res, nil
}

func analyzeApp(eng *core.Engine, app *corpus.App) (*AppResult, error) {
	proj := core.LoadMap(app.Name+" "+app.Version, app.Files)
	rep, err := eng.Analyze(proj)
	if err != nil {
		return nil, fmt.Errorf("experiments: analyze %s: %w", app.Name, err)
	}
	grouped := report.Group(rep)
	score := report.ScoreApp(app, grouped)
	vulnFiles := make(map[string]bool)
	for _, gf := range grouped {
		if !gf.PredictedFP {
			vulnFiles[gf.File] = true
		}
	}
	return &AppResult{
		App:       app,
		Files:     len(proj.Files),
		Lines:     proj.TotalLines(),
		Duration:  rep.Duration,
		VulnFiles: len(vulnFiles),
		Score:     score,
		ByGroup:   score.DetectedVulns,
	}, nil
}

// RenderTable5 renders the per-application summary (Table V) for apps with
// confirmed vulnerabilities.
func RenderTable5(r *WebAppsResult) string {
	headers := []string{"Web application", "Version", "Files", "Lines of code", "Analysis time (ms)", "Vuln. files", "Vuln. found"}
	var rows [][]string
	for _, ar := range r.Apps {
		if ar.Score.TotalDetected() == 0 {
			continue
		}
		rows = append(rows, []string{
			ar.App.Name, ar.App.Version,
			fmt.Sprintf("%d", ar.Files),
			fmt.Sprintf("%d", ar.Lines),
			fmt.Sprintf("%d", ar.Duration.Milliseconds()),
			fmt.Sprintf("%d", ar.VulnFiles),
			fmt.Sprintf("%d", ar.Score.TotalDetected()),
		})
	}
	rows = append(rows, []string{
		"Total", "",
		fmt.Sprintf("%d", r.TotalFiles),
		fmt.Sprintf("%d", r.TotalLines),
		fmt.Sprintf("%d", r.TotalDuration.Milliseconds()),
		"", fmt.Sprintf("%d", r.TotalVulns),
	})
	return fmt.Sprintf("Table V: summary for %s with the web application suite (54 packages)\n\n", r.Mode) +
		report.Table(headers, rows)
}

// RenderTable6 renders the version comparison (Table VI).
func RenderTable6(old, new *WebAppsResult) string {
	groups := []corpus.Group{
		corpus.GroupSQLI, corpus.GroupXSS, corpus.GroupFiles, corpus.GroupSCD,
		corpus.GroupLDAPI, corpus.GroupSF, corpus.GroupHI, corpus.GroupCS,
	}
	headers := []string{"Web application"}
	for _, g := range groups {
		headers = append(headers, string(g))
	}
	headers = append(headers, "Total", "WAP FPP", "WAP FP", "WAPe FPP", "WAPe FP")

	var rows [][]string
	for i, ar := range new.Apps {
		if ar.Score.TotalDetected() == 0 && ar.Score.PredictedFP == 0 && ar.Score.UnpredictedFP == 0 {
			continue
		}
		row := []string{ar.App.Name + " " + ar.App.Version}
		for _, g := range groups {
			row = append(row, fmt.Sprintf("%d", ar.ByGroup[g]))
		}
		oldScore := old.Apps[i].Score
		row = append(row,
			fmt.Sprintf("%d", ar.Score.TotalDetected()),
			fmt.Sprintf("%d", oldScore.PredictedFP),
			fmt.Sprintf("%d", oldScore.UnpredictedFP),
			fmt.Sprintf("%d", ar.Score.PredictedFP),
			fmt.Sprintf("%d", ar.Score.UnpredictedFP),
		)
		rows = append(rows, row)
	}
	total := []string{"Total"}
	for _, g := range groups {
		total = append(total, fmt.Sprintf("%d", new.Totals[g]))
	}
	total = append(total,
		fmt.Sprintf("%d", new.TotalVulns),
		fmt.Sprintf("%d", old.TotalFPP),
		fmt.Sprintf("%d", old.TotalFP),
		fmt.Sprintf("%d", new.TotalFPP),
		fmt.Sprintf("%d", new.TotalFP),
	)
	rows = append(rows, total)
	return "Table VI: vulnerabilities found and false positives predicted by the two versions\n" +
		"(Files = DT & RFI, LFI; FPP = false positives predicted; FP = not predicted)\n\n" +
		report.Table(headers, rows)
}

// ---------------------------------------------------------------------------
// Table VII and Fig. 4 — WordPress plugins
// ---------------------------------------------------------------------------

// PluginResult pairs a plugin with its analysis outcome.
type PluginResult struct {
	Plugin *corpus.Plugin
	Score  *report.Score
}

// PluginsResult aggregates the plugin suite run.
type PluginsResult struct {
	Plugins                       []*PluginResult
	Totals                        map[corpus.Group]int
	TotalVulns, TotalFPP, TotalFP int
}

// RunWordPress analyzes the 115-plugin suite with WAPe plus the wpsqli
// weapon (Section V-B).
func RunWordPress(seed int64) (*PluginsResult, error) {
	var weapons []*weapon.Weapon
	for _, spec := range weapon.BuiltinSpecs() {
		w, err := weapon.Generate(spec)
		if err != nil {
			return nil, err
		}
		weapons = append(weapons, w)
	}
	eng, err := core.New(core.Options{Mode: core.ModeWAPe, Seed: seed, Weapons: weapons})
	if err != nil {
		return nil, err
	}
	if err := eng.Train(); err != nil {
		return nil, err
	}
	res := &PluginsResult{Totals: make(map[corpus.Group]int)}
	for _, p := range corpus.WordPressSuite(seed) {
		proj := core.LoadMap(p.Name+" "+p.Version, p.Files)
		rep, err := eng.Analyze(proj)
		if err != nil {
			return nil, fmt.Errorf("experiments: analyze plugin %s: %w", p.Name, err)
		}
		score := report.ScoreApp(&p.App, report.Group(rep))
		res.Plugins = append(res.Plugins, &PluginResult{Plugin: p, Score: score})
		res.TotalVulns += score.TotalDetected()
		res.TotalFPP += score.PredictedFP
		res.TotalFP += score.UnpredictedFP
		for g, n := range score.DetectedVulns {
			res.Totals[g] += n
		}
	}
	return res, nil
}

// RenderTable7 renders the plugin vulnerability table.
func RenderTable7(r *PluginsResult) string {
	groups := []corpus.Group{
		corpus.GroupSQLI, corpus.GroupXSS, corpus.GroupFiles, corpus.GroupSCD,
		corpus.GroupCS, corpus.GroupHI,
	}
	headers := []string{"Plugin", "Version"}
	for _, g := range groups {
		headers = append(headers, string(g))
	}
	headers = append(headers, "Total", "FPP", "FP", "CVE")
	var rows [][]string
	for _, pr := range r.Plugins {
		s := pr.Score
		if s.TotalDetected() == 0 && s.PredictedFP == 0 && s.UnpredictedFP == 0 {
			continue
		}
		row := []string{pr.Plugin.Name, pr.Plugin.Version}
		for _, g := range groups {
			row = append(row, fmt.Sprintf("%d", s.DetectedVulns[g]))
		}
		cve := ""
		if pr.Plugin.KnownCVE {
			cve = "yes"
		}
		row = append(row, fmt.Sprintf("%d", s.TotalDetected()),
			fmt.Sprintf("%d", s.PredictedFP), fmt.Sprintf("%d", s.UnpredictedFP), cve)
		rows = append(rows, row)
	}
	total := []string{"Total", ""}
	for _, g := range groups {
		total = append(total, fmt.Sprintf("%d", r.Totals[g]))
	}
	total = append(total, fmt.Sprintf("%d", r.TotalVulns),
		fmt.Sprintf("%d", r.TotalFPP), fmt.Sprintf("%d", r.TotalFP), "")
	rows = append(rows, total)
	return "Table VII: vulnerabilities found by WAPe (with the wpsqli weapon) in WordPress plugins\n\n" +
		report.Table(headers, rows)
}

// Fig4Result holds the histogram data of Fig. 4.
type Fig4Result struct {
	DownloadLabels []string
	InstallLabels  []string
	// Analyzed/Vulnerable counts per bucket.
	DownloadsAnalyzed, DownloadsVulnerable []int
	InstallsAnalyzed, InstallsVulnerable   []int
}

// RunFig4 buckets the plugin suite by downloads and active installs.
func RunFig4(r *PluginsResult) *Fig4Result {
	out := &Fig4Result{
		DownloadLabels:      corpus.DownloadBucketLabels(),
		InstallLabels:       corpus.InstallBucketLabels(),
		DownloadsAnalyzed:   make([]int, 7),
		DownloadsVulnerable: make([]int, 7),
		InstallsAnalyzed:    make([]int, 7),
		InstallsVulnerable:  make([]int, 7),
	}
	for _, pr := range r.Plugins {
		db := corpus.DownloadBucket(pr.Plugin.Downloads)
		ib := corpus.InstallBucket(pr.Plugin.ActiveInstalls)
		out.DownloadsAnalyzed[db]++
		out.InstallsAnalyzed[ib]++
		if pr.Score.TotalDetected() > 0 {
			out.DownloadsVulnerable[db]++
			out.InstallsVulnerable[ib]++
		}
	}
	return out
}

// RenderFig4 renders both histograms.
func RenderFig4(f *Fig4Result) string {
	a := report.Histogram("Fig. 4(a): plugin downloads (analyzed vs vulnerable)",
		f.DownloadLabels,
		map[string][]int{"analyzed": f.DownloadsAnalyzed, "vulnerable": f.DownloadsVulnerable},
		[]string{"analyzed", "vulnerable"})
	b := report.Histogram("Fig. 4(b): active installs (analyzed vs vulnerable)",
		f.InstallLabels,
		map[string][]int{"analyzed": f.InstallsAnalyzed, "vulnerable": f.InstallsVulnerable},
		[]string{"analyzed", "vulnerable"})
	return a + "\n" + b
}

// ---------------------------------------------------------------------------
// Fig. 5 — vulnerabilities by class
// ---------------------------------------------------------------------------

// RenderFig5 renders the class distribution for web apps and plugins.
func RenderFig5(webApps *WebAppsResult, plugins *PluginsResult) string {
	groups := []corpus.Group{
		corpus.GroupSQLI, corpus.GroupXSS, corpus.GroupFiles, corpus.GroupSCD,
		corpus.GroupLDAPI, corpus.GroupSF, corpus.GroupHI, corpus.GroupCS,
	}
	labels := make([]string, len(groups))
	webVals := make([]int, len(groups))
	plugVals := make([]int, len(groups))
	for i, g := range groups {
		labels[i] = string(g)
		webVals[i] = webApps.Totals[g]
		plugVals[i] = plugins.Totals[g]
	}
	return report.Histogram("Fig. 5: vulnerabilities by class (web apps vs WordPress plugins)",
		labels,
		map[string][]int{"web apps": webVals, "plugins": plugVals},
		[]string{"web apps", "plugins"})
}

// SortedGroups lists the groups with non-zero counts, descending.
func SortedGroups(totals map[corpus.Group]int) []corpus.Group {
	var gs []corpus.Group
	for g, n := range totals {
		if n > 0 {
			gs = append(gs, g)
		}
	}
	sort.Slice(gs, func(i, j int) bool {
		if totals[gs[i]] != totals[gs[j]] {
			return totals[gs[i]] > totals[gs[j]]
		}
		return gs[i] < gs[j]
	})
	return gs
}
