package experiments

import (
	"fmt"
	"sort"

	"repro/internal/dataset"
	"repro/internal/ml"
	"repro/internal/report"
	"repro/internal/symptom"
)

// SymptomImportance ranks each Table I symptom by its learned logistic
// regression weight: strongly positive symptoms push a candidate toward the
// false positive class, strongly negative ones toward "real vulnerability".
// This explains the predictor globally, complementing the per-finding
// justifications of the engine.
type SymptomImportance struct {
	Name     string
	Category symptom.Category
	Weight   float64
	Original bool
}

// RunSymptomImportance trains logistic regression on the 256-instance set
// and ranks the symptoms by |weight|.
func RunSymptomImportance(seed int64) ([]SymptomImportance, error) {
	d := dataset.Generate(dataset.Config{Seed: seed})
	lr := &ml.LogisticRegression{}
	if err := lr.Train(d); err != nil {
		return nil, fmt.Errorf("experiments: importance: %w", err)
	}
	weights := lr.Weights()
	cat := symptom.Catalog()
	out := make([]SymptomImportance, 0, len(cat))
	for i, s := range cat {
		if i >= len(weights) {
			break
		}
		out = append(out, SymptomImportance{
			Name:     s.Name,
			Category: s.Category,
			Weight:   weights[i],
			Original: s.Original,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		return abs(out[i].Weight) > abs(out[j].Weight)
	})
	return out, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// RenderSymptomImportance renders the top-N table.
func RenderSymptomImportance(imp []SymptomImportance, topN int) string {
	if topN <= 0 || topN > len(imp) {
		topN = len(imp)
	}
	rows := make([][]string, 0, topN)
	for _, s := range imp[:topN] {
		direction := "-> real vulnerability"
		if s.Weight > 0 {
			direction = "-> false positive"
		}
		origin := "new"
		if s.Original {
			origin = "WAP v2.1"
		}
		rows = append(rows, []string{
			s.Name, s.Category.String(), fmt.Sprintf("%+.3f", s.Weight), direction, origin,
		})
	}
	return "Symptom importance (logistic regression weights on the 256-instance set)\n\n" +
		report.Table([]string{"symptom", "category", "weight", "pushes", "origin"}, rows)
}
