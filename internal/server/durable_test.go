package server

// Durability coverage: the async job API, the write-ahead journal behind it,
// and the tentpole claim — a process killed at ANY journal record boundary
// resumes on the next start and produces a report byte-identical to an
// uninterrupted run. The kill is simulated by truncating a finished job's
// journal to every record prefix (the journal is append-only, so every crash
// instant IS some record prefix plus at most one torn line) and starting a
// fresh server on it.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/report"
	"repro/internal/resultstore"
	"repro/internal/vuln"
)

// parEngine is testEngine with an explicit scan parallelism, so the
// determinism suites can prove resume byte-identity is scheduling-independent.
func parEngine(t *testing.T, parallelism int, hook func(file string, class vuln.ClassID)) *core.Engine {
	t.Helper()
	eng, err := core.New(core.Options{
		Mode:        core.ModeWAPe,
		Classes:     []vuln.ClassID{vuln.XSSR},
		Seed:        1,
		Parallelism: parallelism,
		TaskHook:    hook,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Train(); err != nil {
		t.Fatal(err)
	}
	return eng
}

// postAsync submits an async scan and returns the 202 body.
func postAsync(t *testing.T, url string, req ScanRequest) JobStatus {
	t.Helper()
	req.Async = true
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/scan", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit = %d, want 202", resp.StatusCode)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.Status != StatusQueued {
		t.Fatalf("202 body = %+v", st)
	}
	return st
}

// pollJobDone polls GET /jobs/{id} until the job is done.
func pollJobDone(t *testing.T, url, id string) JobStatus {
	t.Helper()
	var st JobStatus
	waitFor(t, func() bool {
		return getJSON(t, url+"/jobs/"+id, &st) == http.StatusOK && st.Status == StatusDone
	})
	return st
}

// normalizeReport strips the fields documented to vary between an executed
// and a resumed scan — Stats and wall-clock duration — and returns the rest
// as canonical bytes. Everything else must be byte-identical.
func normalizeReport(t *testing.T, rep *report.JSONReport) string {
	t.Helper()
	if rep == nil {
		t.Fatal("no report to normalize")
	}
	cp := *rep
	cp.Stats = nil
	cp.DurationMS = 0
	data, err := json.Marshal(&cp)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// journalParts reads a journal file and splits it into the header line and
// one line per record, each terminated.
func journalParts(t *testing.T, path string) (string, []string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	if len(lines) == 0 || !strings.HasPrefix(lines[0], "wapd-journal-v1") {
		t.Fatalf("journal %s has no header: %q", path, data)
	}
	records := lines[1:]
	if n := len(records); n > 0 && records[n-1] == "" {
		records = records[:n-1]
	}
	return lines[0], records
}

func openJournalT(t *testing.T, path string) *journal.Journal {
	t.Helper()
	jnl, _, err := journal.Open(path, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { jnl.Close() })
	return jnl
}

// TestAsyncJobLifecycle pins the job API: async submit answers 202
// immediately, the job is polled through queued/running to done, the result
// carries the full report, and sync requests are untouched by any of it.
func TestAsyncJobLifecycle(t *testing.T) {
	_, hs := newTestServer(t, Config{Engine: testEngine(t, nil)})

	acc := postAsync(t, hs.URL, ScanRequest{Name: "async-app", Files: map[string]string{"a.php": xssPage}})
	st := pollJobDone(t, hs.URL, acc.ID)
	if st.Result == nil || st.Result.Report == nil {
		t.Fatalf("done job carries no result: %+v", st)
	}
	if st.Result.Report.Vulnerabilities != 1 {
		t.Errorf("vulnerabilities = %d, want 1", st.Result.Report.Vulnerabilities)
	}
	if st.Result.Error != "" {
		t.Errorf("async job error = %q", st.Result.Error)
	}

	// Unknown job IDs are 404, not empty statuses.
	if code := getJSON(t, hs.URL+"/jobs/job-999", nil); code != http.StatusNotFound {
		t.Errorf("unknown job = %d, want 404", code)
	}
	if code := getJSON(t, hs.URL+"/jobs/", nil); code != http.StatusNotFound {
		t.Errorf("empty job id = %d, want 404", code)
	}

	// Sync path unchanged: same request without async answers 200 + report.
	resp, out := postScan(t, hs.URL, ScanRequest{Files: map[string]string{"a.php": xssPage}})
	if resp.StatusCode != http.StatusOK || out.Report == nil {
		t.Errorf("sync scan = %d, report %v", resp.StatusCode, out.Report != nil)
	}
}

// TestRetryAfterSubSecondRoundsUp pins the 429 hint: a sub-second RetryAfter
// config must hint "1", never the truncated "0" that reads as "retry now".
func TestRetryAfterSubSecondRoundsUp(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	eng := testEngine(t, func(string, vuln.ClassID) { <-gate })
	s, hs := newTestServer(t, Config{Engine: eng, Workers: 1, QueueDepth: 1, RetryAfter: 500 * time.Millisecond})

	body, _ := json.Marshal(ScanRequest{Files: map[string]string{"a.php": xssPage}})
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := http.Post(hs.URL+"/scan", "application/json", bytes.NewReader(body))
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	waitFor(t, func() bool { return s.active.Load() == 1 && len(s.queue) == 1 })

	resp, err := http.Post(hs.URL+"/scan", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After = %q for a 500ms config, want \"1\"", ra)
	}
}

// TestCrashResumeByteIdentical is the tentpole acceptance test. It runs a
// durable async job to completion, then simulates SIGKILL at every journal
// record boundary: for each K-record prefix of the finished journal, a fresh
// server opens a journal holding exactly that prefix, replays it, resumes the
// job, and must produce a report byte-identical (Stats and duration
// normalized) to the uninterrupted run — at more than one engine parallelism.
func TestCrashResumeByteIdentical(t *testing.T) {
	files := map[string]string{
		"a.php":     `<?php echo $_GET['a'];`,
		"b.php":     `<?php echo $_POST['b'];`,
		"c.php":     `<?php echo $_COOKIE['c'];`,
		"clean.php": `<?php $x = 1; echo "static";`,
	}
	for _, par := range []int{1, 3} {
		t.Run(fmt.Sprintf("parallelism=%d", par), func(t *testing.T) {
			eng := parEngine(t, par, nil)
			dir := t.TempDir()
			reportDir := filepath.Join(dir, "reports")
			store, err := resultstore.Open(filepath.Join(dir, "store"))
			if err != nil {
				t.Fatal(err)
			}
			jpath := filepath.Join(dir, "wapd.journal")
			jnlA := openJournalT(t, jpath)
			cfg := func(jnl *journal.Journal) Config {
				return Config{
					Engine: eng, Workers: 1, Journal: jnl, Store: store,
					ReportDir: reportDir, CheckpointEvery: 1,
				}
			}
			_, hsA := newTestServer(t, cfg(jnlA))
			acc := postAsync(t, hsA.URL, ScanRequest{Name: "app", Files: files})
			done := pollJobDone(t, hsA.URL, acc.ID)
			if done.Result.Report.Vulnerabilities == 0 {
				t.Fatal("corpus produced no findings; identity check is vacuous")
			}
			baseline := normalizeReport(t, done.Result.Report)

			header, records := journalParts(t, jpath)
			// accepted + started + one checkpoint per task but the last + done.
			if len(records) < 4 {
				t.Fatalf("finished journal has %d records; expected the full lifecycle", len(records))
			}

			for k := 1; k <= len(records); k++ {
				t.Run(fmt.Sprintf("kill-after-record-%d", k), func(t *testing.T) {
					ppath := filepath.Join(dir, fmt.Sprintf("prefix-%d-%d.journal", par, k))
					if err := os.WriteFile(ppath, []byte(header+strings.Join(records[:k], "")), 0o644); err != nil {
						t.Fatal(err)
					}
					jnl := openJournalT(t, ppath)
					_, hs := newTestServer(t, cfg(jnl))
					st := pollJobDone(t, hs.URL, acc.ID)
					if k >= 2 && k < len(records) && st.Resumes < 1 {
						t.Errorf("resumed job reports %d resumes, want >= 1", st.Resumes)
					}
					if got := normalizeReport(t, st.Result.Report); got != baseline {
						t.Errorf("report after kill-at-record-%d differs from the uninterrupted run:\ngot:  %s\nwant: %s", k, got, baseline)
					}
				})
			}

			// Torn tail: a crash mid-append leaves a partial final line. Replay
			// must drop exactly the torn line and resume from the prefix.
			t.Run("torn-tail", func(t *testing.T) {
				k := len(records) - 1
				ppath := filepath.Join(dir, fmt.Sprintf("torn-%d.journal", par))
				content := header + strings.Join(records[:k], "") + records[k][:len(records[k])/2]
				if err := os.WriteFile(ppath, []byte(content), 0o644); err != nil {
					t.Fatal(err)
				}
				jnl := openJournalT(t, ppath)
				if jnl.Counters().DroppedBytes == 0 {
					t.Error("torn tail not detected")
				}
				_, hs := newTestServer(t, cfg(jnl))
				st := pollJobDone(t, hs.URL, acc.ID)
				if got := normalizeReport(t, st.Result.Report); got != baseline {
					t.Errorf("report after torn tail differs from the uninterrupted run")
				}
			})
		})
	}
}

// TestCorruptRecordResume corrupts each record of a finished job's journal in
// turn (bit-rot, not just crash truncation) and asserts recovery: replay
// stops at the corruption, and the resumed job still reports byte-identical —
// unless the accepted record itself was lost, in which case the job is
// cleanly gone rather than wedging the server.
func TestCorruptRecordResume(t *testing.T) {
	eng := parEngine(t, 1, nil)
	dir := t.TempDir()
	reportDir := filepath.Join(dir, "reports")
	store, err := resultstore.Open(filepath.Join(dir, "store"))
	if err != nil {
		t.Fatal(err)
	}
	jpath := filepath.Join(dir, "wapd.journal")
	jnlA := openJournalT(t, jpath)
	cfg := func(jnl *journal.Journal) Config {
		return Config{Engine: eng, Workers: 1, Journal: jnl, Store: store, ReportDir: reportDir, CheckpointEvery: 1}
	}
	_, hsA := newTestServer(t, cfg(jnlA))
	acc := postAsync(t, hsA.URL, ScanRequest{Name: "app", Files: map[string]string{"a.php": xssPage, "b.php": `<?php echo $_POST['b'];`}})
	done := pollJobDone(t, hsA.URL, acc.ID)
	baseline := normalizeReport(t, done.Result.Report)
	header, records := journalParts(t, jpath)

	for i := range records {
		t.Run(fmt.Sprintf("corrupt-record-%d-%s", i+1, recordKind(records[i])), func(t *testing.T) {
			mangled := append([]string(nil), records...)
			mangled[i] = "zz" + mangled[i][2:] // breaks the CRC framing
			ppath := filepath.Join(dir, fmt.Sprintf("corrupt-%d.journal", i))
			if err := os.WriteFile(ppath, []byte(header+strings.Join(mangled, "")), 0o644); err != nil {
				t.Fatal(err)
			}
			jnl := openJournalT(t, ppath)
			if jnl.Counters().DroppedBytes == 0 {
				t.Error("corruption not detected on replay")
			}
			_, hs := newTestServer(t, cfg(jnl))
			if i == 0 {
				// The accepted record itself is gone: nothing to resume, and
				// the server must say so rather than crash or hang.
				if code := getJSON(t, hs.URL+"/jobs/"+acc.ID, nil); code != http.StatusNotFound {
					t.Errorf("job with lost accepted record = %d, want 404", code)
				}
				return
			}
			st := pollJobDone(t, hs.URL, acc.ID)
			if got := normalizeReport(t, st.Result.Report); got != baseline {
				t.Errorf("report after corrupt record %d differs from the uninterrupted run", i+1)
			}
		})
	}
}

// recordKind extracts the kind field from a journal line for subtest names.
func recordKind(line string) string {
	var rec struct {
		Kind string `json:"kind"`
	}
	if i := strings.IndexByte(line, ' '); i > 0 {
		_ = json.Unmarshal([]byte(line[i+1:]), &rec)
	}
	if rec.Kind == "" {
		return "unknown"
	}
	return rec.Kind
}

// TestCleanDrainCompactsJournal pins the satellite: a graceful shutdown
// leaves a header-only journal (sync jobs never touch it at all), so the next
// start replays nothing.
func TestCleanDrainCompactsJournal(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "wapd.journal")
	jnl := openJournalT(t, jpath)
	s, hs := newTestServer(t, Config{Engine: testEngine(t, nil), Journal: jnl})

	// Sync jobs are not journaled: the file stays header-only.
	if resp, _ := postScan(t, hs.URL, ScanRequest{Files: map[string]string{"a.php": xssPage}}); resp.StatusCode != http.StatusOK {
		t.Fatal(resp.StatusCode)
	}
	if _, records := journalParts(t, jpath); len(records) != 0 {
		t.Errorf("sync job wrote %d journal records, want 0", len(records))
	}

	// An async job journals its lifecycle...
	acc := postAsync(t, hs.URL, ScanRequest{Files: map[string]string{"a.php": xssPage}})
	pollJobDone(t, hs.URL, acc.ID)
	if _, records := journalParts(t, jpath); len(records) == 0 {
		t.Fatal("async job wrote no journal records")
	}

	// ...and a clean drain compacts them away.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if _, records := journalParts(t, jpath); len(records) != 0 {
		t.Errorf("clean shutdown left %d journal records, want 0", len(records))
	}
	jnl.Close()
	jnl2, recs, err := journal.Open(jpath, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer jnl2.Close()
	if len(recs) != 0 {
		t.Errorf("next start replayed %d records after a clean shutdown", len(recs))
	}
}

// TestForcedDrainSuspendsDurableJob pins the other drain path: a durable
// async job cut off by the drain deadline is suspended — no done record, its
// accepted record (with the attempt folded into the resume count) survives
// compaction — and the next start resumes and finishes it.
func TestForcedDrainSuspendsDurableJob(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	var gated atomic.Bool
	gated.Store(true)
	eng := testEngine(t, func(string, vuln.ClassID) {
		if gated.Load() {
			<-gate
		}
	})
	dir := t.TempDir()
	jpath := filepath.Join(dir, "wapd.journal")
	store, err := resultstore.Open(filepath.Join(dir, "store"))
	if err != nil {
		t.Fatal(err)
	}
	jnl := openJournalT(t, jpath)
	s, hs := newTestServer(t, Config{Engine: eng, Workers: 1, Journal: jnl, Store: store})

	acc := postAsync(t, hs.URL, ScanRequest{Name: "app", Files: map[string]string{"a.php": xssPage}})
	waitFor(t, func() bool { return s.active.Load() == 1 })

	drainCtx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := s.Drain(drainCtx); err == nil {
		t.Fatal("forced drain returned nil")
	}
	jnl.Close()

	// The compacted journal holds exactly the suspended job's accepted
	// record, with the crashed attempt counted.
	jnl2, recs, err := journal.Open(jpath, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { jnl2.Close() })
	if len(recs) != 1 || recs[0].Kind != journal.JobAccepted || recs[0].Job != acc.ID {
		t.Fatalf("compacted journal = %+v, want one accepted record for %s", recs, acc.ID)
	}

	// The next start resumes and finishes the job.
	gated.Store(false)
	s2, hs2 := newTestServer(t, Config{Engine: eng, Workers: 1, Journal: jnl2, Store: store})
	st := pollJobDone(t, hs2.URL, acc.ID)
	if st.Result == nil || st.Result.Report == nil || st.Result.Report.Vulnerabilities == 0 {
		t.Fatalf("resumed job result: %+v", st)
	}
	if st.Resumes != 1 {
		t.Errorf("resumed job reports %d resumes, want 1 (the drain-cancelled attempt)", st.Resumes)
	}
	var h health
	if code := getJSON(t, hs2.URL+"/healthz", &h); code != http.StatusOK {
		t.Fatal(code)
	}
	if h.Resumed != 1 {
		t.Errorf("health.Resumed = %d, want 1", h.Resumed)
	}
	if h.Journal == nil || h.Journal.Replayed != 1 {
		t.Errorf("health.Journal = %+v, want 1 replayed record", h.Journal)
	}
	_ = s2
}

// TestAsyncRejectionLeavesNoResumableState pins the admission compensation:
// an async job rejected with 429 must not resurrect on the next start (its
// accepted record is neutralized by a done record).
func TestAsyncRejectionLeavesNoResumableState(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	eng := testEngine(t, func(string, vuln.ClassID) { <-gate })
	dir := t.TempDir()
	jpath := filepath.Join(dir, "wapd.journal")
	jnl := openJournalT(t, jpath)
	s, hs := newTestServer(t, Config{Engine: eng, Workers: 1, QueueDepth: 1, Journal: jnl})

	// Fill the worker and the queue with gated async jobs.
	postAsync(t, hs.URL, ScanRequest{Files: map[string]string{"a.php": xssPage}})
	waitFor(t, func() bool { return s.active.Load() == 1 })
	postAsync(t, hs.URL, ScanRequest{Files: map[string]string{"a.php": xssPage}})
	waitFor(t, func() bool { return len(s.queue) == 1 })

	body, _ := json.Marshal(ScanRequest{Async: true, Files: map[string]string{"a.php": xssPage}})
	resp, err := http.Post(hs.URL+"/scan", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}

	// The rejected job's journal trace must read as done: accepted + done.
	_, records := journalParts(t, jpath)
	var accepted, doneRecs int
	for _, line := range records {
		switch recordKind(line) {
		case "accepted":
			accepted++
		case "done":
			doneRecs++
		}
	}
	if accepted != 3 || doneRecs != 1 {
		t.Errorf("journal holds %d accepted / %d done records, want 3 / 1 (rejected job neutralized)", accepted, doneRecs)
	}
}
