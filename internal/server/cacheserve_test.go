package server

import (
	"context"
	"errors"
	"net/http"
	"testing"
	"time"

	"repro/internal/resultstore"
	"repro/internal/resultstore/httpbackend"
)

// TestCacheServeSharesTheStore pins the serving mode end to end: a replica
// started with -cache-serve exposes its local store at /cas/, and a second
// store pointed at it over HTTP (the -cache-backend composition: client,
// envelope, write-behind) reads and writes the same snapshots.
func TestCacheServeSharesTheStore(t *testing.T) {
	local, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, hs := newTestServer(t, Config{
		Engine:     testEngine(t, nil),
		Store:      local,
		CacheServe: true,
	})

	snap := resultstore.NewSnapshot("shared-app", "d1")
	snap.Tasks["ab"] = &resultstore.TaskEntry{File: "a.php", Class: "xss_reflected", Steps: 3}
	if err := local.Save(snap); err != nil {
		t.Fatal(err)
	}

	env := resultstore.NewEnvelope(httpbackend.New(hs.URL, nil), resultstore.EnvelopeConfig{})
	remote, err := resultstore.OpenBackend(env, resultstore.Options{WriteBehind: true})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	got, status := remote.Load("shared-app", "d1")
	if status != resultstore.LoadHit || got.Tasks["ab"] == nil {
		t.Fatalf("remote load through /cas/ = (%+v, %s), want the replica's snapshot", got, status)
	}

	// Writes flow back: a snapshot saved through the remote store lands in
	// the serving replica's local tier.
	snap2 := resultstore.NewSnapshot("other-app", "d2")
	snap2.Tasks["cd"] = &resultstore.TaskEntry{File: "b.php", Class: "xss_reflected", Steps: 5}
	if err := remote.Save(snap2); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := remote.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if back, status := local.Load("other-app", "d2"); status != resultstore.LoadHit || back.Tasks["cd"] == nil {
		t.Errorf("replica-local load of a remotely saved snapshot = %s, want hit", status)
	}
}

func TestCacheServeRequiresStore(t *testing.T) {
	_, err := New(Config{Engine: testEngine(t, nil), CacheServe: true})
	if err == nil {
		t.Fatal("New accepted CacheServe without a Store")
	}
}

func TestCacheServeOffLeavesCASUnmounted(t *testing.T) {
	local, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, hs := newTestServer(t, Config{Engine: testEngine(t, nil), Store: local})
	resp, err := http.Get(hs.URL + "/cas/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /cas/ without CacheServe = %s, want 404", resp.Status)
	}
}

// TestHealthzReportsBackendState pins the observability satellite: a store
// over a pluggable tier surfaces its backend account (kind, load outcomes,
// breaker position, write-behind queue) in /healthz and /readyz, and the
// legacy plain-disk store keeps its old payload — no backend object at all.
func TestHealthzReportsBackendState(t *testing.T) {
	mem := resultstore.NewMemBackend()
	mem.GetHook = func(string) error { return errors.New("tier down") }
	env := resultstore.NewEnvelope(mem, resultstore.EnvelopeConfig{
		RetryMax: -1, BreakerThreshold: 1, BreakerCooldown: time.Hour,
	})
	store, err := resultstore.OpenBackend(env, resultstore.Options{WriteBehind: true})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	_, hs := newTestServer(t, Config{Engine: testEngine(t, nil), Store: store})

	// Drive one degraded load so the account has something to show.
	if _, status := store.Load("app", "d"); status != resultstore.LoadDegraded {
		t.Fatalf("load = %s, want degraded", status)
	}

	for _, path := range []string{"/healthz", "/readyz"} {
		var h health
		if code := getJSON(t, hs.URL+path, &h); code != http.StatusOK {
			t.Fatalf("%s = %d, want 200", path, code)
		}
		if h.Backend == nil {
			t.Fatalf("%s carries no backend account", path)
		}
		if h.Backend.Kind != "mem" || h.Backend.Degraded != 1 {
			t.Errorf("%s backend = %+v, want mem kind with 1 degraded load", path, h.Backend)
		}
		if h.Backend.QueueCap == 0 {
			t.Errorf("%s backend missing the write-behind queue bound: %+v", path, h.Backend)
		}
		if h.Backend.Envelope == nil || h.Backend.Envelope.Breaker != resultstore.BreakerOpen {
			t.Errorf("%s backend missing the open breaker: %+v", path, h.Backend.Envelope)
		}
		if h.Backend.Envelope != nil && h.Backend.Envelope.LastError == "" {
			t.Errorf("%s backend missing the last error: %+v", path, h.Backend.Envelope)
		}
	}
}

func TestHealthzOmitsBackendForPlainDisk(t *testing.T) {
	store, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, hs := newTestServer(t, Config{Engine: testEngine(t, nil), Store: store})
	var h health
	if code := getJSON(t, hs.URL+"/healthz", &h); code != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", code)
	}
	if h.Backend != nil {
		t.Errorf("plain-disk store leaked a backend account into /healthz: %+v", h.Backend)
	}
	if h.Store == nil {
		t.Error("store self-healing counters disappeared from /healthz")
	}
}

// TestListenerTimeoutDefaults pins the socket-timeout satellite: zero config
// gets the defaults, negative disables (maps to net/http's 0), positive is
// taken as given.
func TestListenerTimeoutDefaults(t *testing.T) {
	s, err := New(Config{Engine: testEngine(t, nil)})
	if err != nil {
		t.Fatal(err)
	}
	if s.cfg.ReadHeaderTimeout != DefaultReadHeaderTimeout ||
		s.cfg.ReadTimeout != DefaultReadTimeout ||
		s.cfg.IdleTimeout != DefaultIdleTimeout {
		t.Errorf("zero config timeouts = %v/%v/%v, want defaults %v/%v/%v",
			s.cfg.ReadHeaderTimeout, s.cfg.ReadTimeout, s.cfg.IdleTimeout,
			DefaultReadHeaderTimeout, DefaultReadTimeout, DefaultIdleTimeout)
	}

	s, err = New(Config{
		Engine:            testEngine(t, nil),
		ReadHeaderTimeout: -1,
		ReadTimeout:       3 * time.Minute,
		IdleTimeout:       -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := positiveOrZero(s.cfg.ReadHeaderTimeout); got != 0 {
		t.Errorf("negative ReadHeaderTimeout maps to %v on the listener, want 0 (disabled)", got)
	}
	if got := positiveOrZero(s.cfg.ReadTimeout); got != 3*time.Minute {
		t.Errorf("explicit ReadTimeout = %v on the listener, want 3m", got)
	}
	if got := positiveOrZero(s.cfg.IdleTimeout); got != 0 {
		t.Errorf("negative IdleTimeout maps to %v on the listener, want 0 (disabled)", got)
	}
}
