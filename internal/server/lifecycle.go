package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"time"

	"repro/internal/journal"
)

// Drain performs the graceful-shutdown handoff: admission stops (new scans
// get 503, /readyz flips unready), the queue is closed, and queued plus
// running jobs are given until ctx's deadline to finish. When the deadline
// passes the remaining jobs are force-cancelled — their workers return
// partial reports (flagged degraded by the engine's cancellation
// diagnostic) rather than vanishing. Drain returns nil when every job
// finished in time, or ctx's error after a forced cut-over. It is
// idempotent; later calls just wait for the first drain to complete.
func (s *Server) Drain(ctx context.Context) error {
	if s.draining.CompareAndSwap(false, true) {
		// Close the queue under the admission lock: admit() holds the same
		// lock around its send, so a send on the closed channel is
		// impossible.
		s.admitMu.Lock()
		close(s.queue)
		s.admitMu.Unlock()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.compactJournal()
		return nil
	case <-ctx.Done():
		// Deadline passed: cut the in-flight jobs over — sync jobs to
		// partial reports, durable async jobs back into the journal.
		// Cancellation is cooperative (the taint walker polls its stop flag)
		// so the workers return promptly.
		s.forceCancel()
		<-done
		s.compactJournal()
		return ctx.Err()
	}
}

// compactJournal writes the drain's compaction checkpoint: the journal is
// atomically rewritten to hold exactly the accepted records of still-
// incomplete async jobs (with their crashed-attempt counts folded in), so a
// clean shutdown leaves a header-only journal the next start replays in one
// read, and a forced drain leaves exactly the jobs to resume. Runs once,
// after every worker has exited, so job states are final.
func (s *Server) compactJournal() {
	if s.cfg.Journal == nil {
		return
	}
	s.compactOnce.Do(func() {
		s.jobMu.Lock()
		var keep []journal.Record
		for _, st := range s.jobs {
			if st.status == StatusDone {
				continue
			}
			payload, err := json.Marshal(acceptedPayload{Req: st.req, Resumes: st.resumes + st.started})
			if err != nil {
				continue
			}
			keep = append(keep, journal.Record{
				Seq: st.acceptedSeq, Kind: journal.JobAccepted, Job: st.id,
				UnixMS: st.acceptedMS, Payload: payload,
			})
		}
		s.jobMu.Unlock()
		sort.Slice(keep, func(i, j int) bool { return keep[i].Seq < keep[j].Seq })
		if err := s.cfg.Journal.Compact(keep); err != nil {
			s.journalErrs.Add(1)
		}
	})
}

// Serve runs the HTTP service on ln until ctx is cancelled (wapd wires ctx
// to SIGTERM/SIGINT via signal.NotifyContext), then drains within the
// configured DrainTimeout and shuts the listener down. In-flight requests
// receive their (possibly partial) reports before the connections close.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	httpSrv := &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: positiveOrZero(s.cfg.ReadHeaderTimeout),
		ReadTimeout:       positiveOrZero(s.cfg.ReadTimeout),
		IdleTimeout:       positiveOrZero(s.cfg.IdleTimeout),
		// No WriteTimeout: a synchronous scan legitimately holds its
		// connection until the report is ready; per-job deadlines bound it.
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	derr := s.Drain(drainCtx)

	// By now every job has delivered its response; give the handlers a
	// short grace to flush it before connections are torn down.
	shutCtx, cancelShut := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelShut()
	if err := httpSrv.Shutdown(shutCtx); err != nil && derr == nil {
		derr = err
	}
	if errors.Is(derr, context.DeadlineExceeded) {
		return fmt.Errorf("drain deadline %v passed; in-flight jobs were cancelled into partial reports", s.cfg.DrainTimeout)
	}
	return derr
}

// positiveOrZero maps the config convention (negative disables) onto
// http.Server's (zero disables).
func positiveOrZero(d time.Duration) time.Duration {
	if d < 0 {
		return 0
	}
	return d
}

// ListenAndServe listens on addr and calls Serve.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}
