package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"
)

// Drain performs the graceful-shutdown handoff: admission stops (new scans
// get 503, /readyz flips unready), the queue is closed, and queued plus
// running jobs are given until ctx's deadline to finish. When the deadline
// passes the remaining jobs are force-cancelled — their workers return
// partial reports (flagged degraded by the engine's cancellation
// diagnostic) rather than vanishing. Drain returns nil when every job
// finished in time, or ctx's error after a forced cut-over. It is
// idempotent; later calls just wait for the first drain to complete.
func (s *Server) Drain(ctx context.Context) error {
	if s.draining.CompareAndSwap(false, true) {
		// Close the queue under the admission lock: admit() holds the same
		// lock around its send, so a send on the closed channel is
		// impossible.
		s.admitMu.Lock()
		close(s.queue)
		s.admitMu.Unlock()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		// Deadline passed: cut the in-flight jobs over to partial reports.
		// Cancellation is cooperative (the taint walker polls its stop flag)
		// so the workers return promptly.
		s.forceCancel()
		<-done
		return ctx.Err()
	}
}

// Serve runs the HTTP service on ln until ctx is cancelled (wapd wires ctx
// to SIGTERM/SIGINT via signal.NotifyContext), then drains within the
// configured DrainTimeout and shuts the listener down. In-flight requests
// receive their (possibly partial) reports before the connections close.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	httpSrv := &http.Server{Handler: s.mux}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	derr := s.Drain(drainCtx)

	// By now every job has delivered its response; give the handlers a
	// short grace to flush it before connections are torn down.
	shutCtx, cancelShut := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelShut()
	if err := httpSrv.Shutdown(shutCtx); err != nil && derr == nil {
		derr = err
	}
	if errors.Is(derr, context.DeadlineExceeded) {
		return fmt.Errorf("drain deadline %v passed; in-flight jobs were cancelled into partial reports", s.cfg.DrainTimeout)
	}
	return derr
}

// ListenAndServe listens on addr and calls Serve.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}
