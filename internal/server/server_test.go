package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/vuln"
)

const xssPage = `<?php echo $_GET['x'];`

// testEngine builds a small trained engine (one class) so jobs are fast.
// The hook, when non-nil, runs inside every (file, class) task.
func testEngine(t *testing.T, hook func(file string, class vuln.ClassID)) *core.Engine {
	t.Helper()
	eng, err := core.New(core.Options{
		Mode:     core.ModeWAPe,
		Classes:  []vuln.ClassID{vuln.XSSR},
		Seed:     1,
		TaskHook: hook,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Train(); err != nil {
		t.Fatal(err)
	}
	return eng
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
	})
	return s, hs
}

func postScan(t *testing.T, url string, req ScanRequest) (*http.Response, *ScanResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/scan", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out ScanResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decode scan response: %v", err)
		}
	}
	return resp, &out
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// TestScanUploadedTree submits an in-body tree and checks the report comes
// back with the expected finding and a persisted artifact.
func TestScanUploadedTree(t *testing.T) {
	reportDir := t.TempDir()
	_, hs := newTestServer(t, Config{Engine: testEngine(t, nil), ReportDir: reportDir})
	resp, out := postScan(t, hs.URL, ScanRequest{
		Name:  "upload-test",
		Files: map[string]string{"a.php": xssPage},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if out.Report == nil || out.Report.Vulnerabilities == 0 {
		t.Fatalf("report missing or empty: %+v", out)
	}
	if out.Report.Degraded {
		t.Errorf("clean scan degraded: %+v", out.Report.Diagnostics)
	}
	// The artifact was persisted (atomically) under the job id.
	data, err := os.ReadFile(filepath.Join(reportDir, out.ID+".json"))
	if err != nil {
		t.Fatalf("report artifact: %v", err)
	}
	var persisted map[string]any
	if err := json.Unmarshal(data, &persisted); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
}

// TestScanDir scans a server-local directory.
func TestScanDir(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "page.php"), []byte(xssPage), 0o644); err != nil {
		t.Fatal(err)
	}
	_, hs := newTestServer(t, Config{Engine: testEngine(t, nil)})
	resp, out := postScan(t, hs.URL, ScanRequest{Dir: dir})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if out.Report == nil || out.Report.Vulnerabilities != 1 {
		t.Fatalf("vulnerabilities = %+v, want 1", out.Report)
	}
}

// TestScanRequestValidation rejects bodies with neither or both inputs.
func TestScanRequestValidation(t *testing.T) {
	_, hs := newTestServer(t, Config{Engine: testEngine(t, nil)})
	for _, req := range []ScanRequest{
		{},
		{Dir: "/tmp/x", Files: map[string]string{"a.php": "x"}},
	} {
		resp, _ := postScan(t, hs.URL, req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status = %d for %+v, want 400", resp.StatusCode, req)
		}
	}
}

// TestSaturatedQueueGets429 fills the single worker and the depth-1 queue
// with gated jobs, then asserts the next request is rejected with 429 and a
// Retry-After header — and that /readyz reports unready while saturated.
func TestSaturatedQueueGets429(t *testing.T) {
	gate := make(chan struct{})
	eng := testEngine(t, func(string, vuln.ClassID) { <-gate })
	s, hs := newTestServer(t, Config{Engine: eng, Workers: 1, QueueDepth: 1, RetryAfter: 7 * time.Second})

	type result struct {
		code int
		out  *ScanResponse
	}
	results := make(chan result, 2)
	submit := func() {
		resp, out := postScan(t, hs.URL, ScanRequest{Files: map[string]string{"a.php": xssPage}})
		results <- result{resp.StatusCode, out}
	}
	go submit() // picked up by the worker, blocked on the gate
	waitFor(t, func() bool { return s.active.Load() == 1 })
	go submit() // sits in the queue
	waitFor(t, func() bool { return len(s.queue) == 1 })

	// Queue full: admission must push back, not buffer.
	body, _ := json.Marshal(ScanRequest{Files: map[string]string{"a.php": xssPage}})
	resp, err := http.Post(hs.URL+"/scan", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "7" {
		t.Errorf("Retry-After = %q, want \"7\"", ra)
	}
	var h health
	if code := getJSON(t, hs.URL+"/readyz", &h); code != http.StatusServiceUnavailable {
		t.Errorf("/readyz = %d with a full queue, want 503", code)
	}
	if h.Ready {
		t.Error("health body claims ready while saturated")
	}

	// Release the gate: both admitted jobs complete with findings.
	close(gate)
	for i := 0; i < 2; i++ {
		r := <-results
		if r.code != http.StatusOK || r.out.Report == nil || r.out.Report.Vulnerabilities == 0 {
			t.Errorf("admitted job %d: code %d, report %+v", i, r.code, r.out.Report)
		}
	}
	if code := getJSON(t, hs.URL+"/readyz", nil); code != http.StatusOK {
		t.Errorf("/readyz = %d after the queue drained, want 200", code)
	}
}

// TestPerRequestDeadlineReturnsPartialReport gives a job a deadline shorter
// than its scan and asserts the connection answers promptly with a partial,
// degraded report instead of hanging.
func TestPerRequestDeadlineReturnsPartialReport(t *testing.T) {
	eng := testEngine(t, func(string, vuln.ClassID) { time.Sleep(80 * time.Millisecond) })
	_, hs := newTestServer(t, Config{Engine: eng})
	files := make(map[string]string)
	for i := 0; i < 20; i++ {
		files[fmt.Sprintf("f%02d.php", i)] = xssPage
	}
	start := time.Now()
	resp, out := postScan(t, hs.URL, ScanRequest{Files: files, TimeoutMS: 150})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 with a partial report", resp.StatusCode)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("deadline-bounded scan took %v; connection hung", took)
	}
	if !strings.Contains(out.Error, "deadline") {
		t.Errorf("error = %q, want a deadline explanation", out.Error)
	}
	if out.Report == nil {
		t.Fatal("deadline response carries no partial report")
	}
	if !out.Report.Degraded {
		t.Error("partial report not flagged degraded")
	}
}

// TestHealthzAlwaysServes checks liveness is independent of load.
func TestHealthzAlwaysServes(t *testing.T) {
	_, hs := newTestServer(t, Config{Engine: testEngine(t, nil)})
	var h health
	if code := getJSON(t, hs.URL+"/healthz", &h); code != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", code)
	}
	if h.Status != "ok" || h.Workers != DefaultWorkers || h.QueueCap != DefaultQueueDepth {
		t.Errorf("health = %+v", h)
	}
}

// waitFor polls cond for up to 5s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}
