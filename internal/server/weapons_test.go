package server

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func decodeBody(t *testing.T, resp *http.Response, out any) {
	t.Helper()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

func readBody(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// hotSpec is a valid test weapon: a new class with its own sink and
// sanitizer, detectable on the generated dry-run proof app.
const hotSpec = `name hotlogi
description Test log-forging weapon
sink hot_sink
san hot_clean
fix-template php_san
fix-san hot_clean
`

// brokenSpec parses and validates but cannot pass its dry-run: the
// sanitizer list contains the sink itself, so the planted vulnerable flow
// is considered sanitized and never reported.
const brokenSpec = `name brokenhot
description Weapon that cannot detect its own flows
sink broken_sink
san broken_sink
fix-template php_san
fix-san esc
`

// hotApp exercises the hot weapon's sink: one tainted flow (a finding once
// the weapon is live) and no bundled-class findings (no echo, so the test
// engine's XSS class stays silent).
const hotApp = `<?php
$a = $_GET['x'];
hot_sink("q=" . $a);
`

func postWeapon(t *testing.T, url, spec string) (*http.Response, WeaponsResponse, weaponError) {
	t.Helper()
	resp, err := http.Post(url+"/weapons", "text/plain", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ok WeaponsResponse
	var bad weaponError
	if resp.StatusCode == http.StatusCreated {
		decodeBody(t, resp, &ok)
	} else {
		decodeBody(t, resp, &bad)
	}
	return resp, ok, bad
}

func deleteWeapon(t *testing.T, url, name string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url+"/weapons/"+name, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

// TestWeaponHotReload is the tentpole path: a weapon uploaded through
// POST /weapons is used by the very next scan, with no restart.
func TestWeaponHotReload(t *testing.T) {
	weaponsDir := t.TempDir()
	_, hs := newTestServer(t, Config{Engine: testEngine(t, nil), WeaponsDir: weaponsDir})

	// Before the upload the app is clean: the test engine knows only XSS.
	resp, out := postScan(t, hs.URL, ScanRequest{Name: "hot", Files: map[string]string{"a.php": hotApp}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-upload scan status = %d", resp.StatusCode)
	}
	if out.Report.Vulnerabilities != 0 {
		t.Fatalf("pre-upload scan found %d vulnerabilities, want 0", out.Report.Vulnerabilities)
	}

	wresp, wok, _ := postWeapon(t, hs.URL, hotSpec)
	if wresp.StatusCode != http.StatusCreated {
		t.Fatalf("upload status = %d, want 201", wresp.StatusCode)
	}
	if wok.Admitted != "hotlogi" || wok.Revision != 1 {
		t.Fatalf("upload response = %+v, want admitted hotlogi at revision 1", wok)
	}
	if wok.PersistError != "" {
		t.Fatalf("persist error: %s", wok.PersistError)
	}
	if _, err := os.Stat(filepath.Join(weaponsDir, "hotlogi.weapon")); err != nil {
		t.Fatalf("admitted weapon not persisted: %v", err)
	}

	// The next scan — same process, no restart — detects through the weapon.
	resp, out = postScan(t, hs.URL, ScanRequest{Name: "hot", Files: map[string]string{"a.php": hotApp}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-upload scan status = %d", resp.StatusCode)
	}
	if out.Report.Vulnerabilities == 0 {
		t.Fatal("post-upload scan found nothing; hot weapon not in service")
	}
	if out.Report.Stats == nil || out.Report.Stats.WeaponSetRevision != 1 {
		t.Fatalf("scan stats should carry weapon revision 1: %+v", out.Report.Stats)
	}
	if len(out.Report.Stats.ActiveWeapons) != 1 || out.Report.Stats.ActiveWeapons[0] != "hotlogi" {
		t.Fatalf("active weapons = %v, want [hotlogi]", out.Report.Stats.ActiveWeapons)
	}

	// GET /weapons lists it; GET /weapons/{name} returns the source.
	var list WeaponsResponse
	if code := getJSON(t, hs.URL+"/weapons", &list); code != http.StatusOK {
		t.Fatalf("GET /weapons = %d", code)
	}
	if list.Revision != 1 || len(list.Weapons) != 1 || list.Weapons[0].Name != "hotlogi" {
		t.Fatalf("weapon list = %+v", list)
	}
	src, err := http.Get(hs.URL + "/weapons/hotlogi")
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, src)
	if src.StatusCode != http.StatusOK || body != hotSpec {
		t.Fatalf("GET /weapons/hotlogi = %d %q", src.StatusCode, body)
	}

	// Health surfaces the platform state.
	var h health
	getJSON(t, hs.URL+"/healthz", &h)
	if h.WeaponRevision != 1 {
		t.Errorf("health weapon_revision = %d, want 1", h.WeaponRevision)
	}
	if len(h.Weapons) != 1 || h.Weapons[0] != "hotlogi" {
		t.Errorf("health weapons = %v, want [hotlogi]", h.Weapons)
	}
}

// TestWeaponUploadRejections pins the validation ladder's failure modes and
// their diagnostic bodies.
func TestWeaponUploadRejections(t *testing.T) {
	weaponsDir := t.TempDir()
	_, hs := newTestServer(t, Config{Engine: testEngine(t, nil), WeaponsDir: weaponsDir})

	cases := []struct {
		name, spec, stage string
		code              int
		errSub            string
	}{
		{"unparseable", "sink before name\n", "parse", http.StatusBadRequest, "name"},
		{"bundled collision", "name xss\ndescription x\nsink s\nfix-template php_san\nfix-san esc\n",
			"parse", http.StatusBadRequest, "collides"},
		{"bundled weapon-class collision", "name nosqli\ndescription x\nsink s\nfix-template php_san\nfix-san esc\n",
			"collision", http.StatusConflict, "new class IDs"},
		{"failed dry-run", brokenSpec, "dry-run", http.StatusUnprocessableEntity, "not detected"},
	}
	for _, tc := range cases {
		resp, _, bad := postWeapon(t, hs.URL, tc.spec)
		if resp.StatusCode != tc.code {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.code)
			continue
		}
		if bad.Stage != tc.stage {
			t.Errorf("%s: stage = %q, want %q (error: %s)", tc.name, bad.Stage, tc.stage, bad.Error)
		}
		if !strings.Contains(bad.Error, tc.errSub) {
			t.Errorf("%s: error %q should mention %q", tc.name, bad.Error, tc.errSub)
		}
	}

	// No rejected upload changed the platform: revision still 0, dir empty.
	var list WeaponsResponse
	getJSON(t, hs.URL+"/weapons", &list)
	if list.Revision != 0 || len(list.Weapons) != 0 {
		t.Fatalf("rejections mutated the registry: %+v", list)
	}
	ents, err := os.ReadDir(weaponsDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("rejections persisted files: %v", ents)
	}
}

// TestWeaponDelete removes a hot weapon and checks it leaves service and
// disk; deleting it again is a 404.
func TestWeaponDelete(t *testing.T) {
	weaponsDir := t.TempDir()
	_, hs := newTestServer(t, Config{Engine: testEngine(t, nil), WeaponsDir: weaponsDir})

	if resp, _, bad := postWeapon(t, hs.URL, hotSpec); resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: %d %+v", resp.StatusCode, bad)
	}
	if resp := deleteWeapon(t, hs.URL, "hotlogi"); resp.StatusCode != http.StatusOK {
		t.Fatalf("delete status = %d", resp.StatusCode)
	}
	if _, err := os.Stat(filepath.Join(weaponsDir, "hotlogi.weapon")); !os.IsNotExist(err) {
		t.Fatalf("weapon file survived delete: %v", err)
	}
	_, out := postScan(t, hs.URL, ScanRequest{Name: "hot", Files: map[string]string{"a.php": hotApp}})
	if out.Report.Vulnerabilities != 0 {
		t.Fatalf("deleted weapon still finding: %d", out.Report.Vulnerabilities)
	}
	// Removal rotates the registry revision too (the active set changed);
	// scan stats omit the weapons account now that none are linked, so the
	// revision shows in health.
	if out.Report.Stats != nil && len(out.Report.Stats.ActiveWeapons) != 0 {
		t.Fatalf("post-delete scan still lists weapons: %v", out.Report.Stats.ActiveWeapons)
	}
	var h health
	getJSON(t, hs.URL+"/healthz", &h)
	if h.WeaponRevision != 2 {
		t.Fatalf("post-delete health weapon_revision = %d, want 2", h.WeaponRevision)
	}
	if resp := deleteWeapon(t, hs.URL, "hotlogi"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("second delete status = %d, want 404", resp.StatusCode)
	}
}

// TestWeaponsDirReplay restarts the service over the same weapons dir: the
// admitted weapon comes back through the same validation ladder, and an
// unloadable spec file is skipped and surfaced in health, never fatal.
func TestWeaponsDirReplay(t *testing.T) {
	weaponsDir := t.TempDir()
	_, hs1 := newTestServer(t, Config{Engine: testEngine(t, nil), WeaponsDir: weaponsDir})
	if resp, _, bad := postWeapon(t, hs1.URL, hotSpec); resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: %d %+v", resp.StatusCode, bad)
	}

	// A hand-dropped broken file must not take the next start down.
	if err := os.WriteFile(filepath.Join(weaponsDir, "bad.weapon"), []byte("name \x00broken\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	_, hs2 := newTestServer(t, Config{Engine: testEngine(t, nil), WeaponsDir: weaponsDir})
	_, out := postScan(t, hs2.URL, ScanRequest{Name: "hot", Files: map[string]string{"a.php": hotApp}})
	if out.Report.Vulnerabilities == 0 {
		t.Fatal("replayed weapon not in service after restart")
	}
	var h health
	getJSON(t, hs2.URL+"/healthz", &h)
	if len(h.Weapons) != 1 || h.Weapons[0] != "hotlogi" {
		t.Fatalf("health weapons = %v, want [hotlogi]", h.Weapons)
	}
	if len(h.WeaponErrors) != 1 || !strings.Contains(h.WeaponErrors[0], "bad.weapon") {
		t.Fatalf("health weapon_errors = %v, want the bad file surfaced", h.WeaponErrors)
	}
}
