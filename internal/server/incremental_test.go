package server

import (
	"net/http"
	"sync"
	"testing"

	"repro/internal/resultstore"
	"repro/internal/vuln"
)

// taskLog records every (file, class) task the engine actually executes, so
// tests can tell reuse (no execution) from re-analysis.
type taskLog struct {
	mu    sync.Mutex
	tasks []string
}

func (l *taskLog) hook(file string, class vuln.ClassID) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.tasks = append(l.tasks, file+"|"+string(class))
}

func (l *taskLog) reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.tasks = nil
}

func (l *taskLog) count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.tasks)
}

// TestIncrementalScanReuseAndDiff drives the wapd incremental flow end to
// end: the first incremental scan of a project is a cold full scan with no
// diff, a repeat scan reuses every task from the store and diffs clean
// against the baseline, and a scan after an edit re-executes only what
// changed and reports the fix in the diff block.
func TestIncrementalScanReuseAndDiff(t *testing.T) {
	store, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	log := &taskLog{}
	_, hs := newTestServer(t, Config{Engine: testEngine(t, log.hook), Store: store})

	files := map[string]string{
		"page.php":  xssPage,
		"clean.php": `<?php echo "static";`,
	}
	req := ScanRequest{Name: "incr-test", Files: files, Incremental: true}

	// Cold scan: everything executes, no baseline yet means no diff.
	resp, out := postScan(t, hs.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if out.Report == nil || out.Report.Vulnerabilities != 1 {
		t.Fatalf("cold scan report = %+v, want 1 vulnerability", out.Report)
	}
	if out.Diff != nil {
		t.Errorf("cold scan carried a diff: %+v", out.Diff)
	}
	if log.count() == 0 {
		t.Fatal("cold scan executed no tasks")
	}

	// Warm repeat: every task comes from the store, findings are unchanged,
	// and the diff against the baseline is all-persisting.
	log.reset()
	resp, warm := postScan(t, hs.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if warm.Report == nil || warm.Report.Vulnerabilities != 1 {
		t.Fatalf("warm scan report = %+v, want 1 vulnerability", warm.Report)
	}
	if n := log.count(); n != 0 {
		t.Errorf("warm scan executed %d tasks, want 0", n)
	}
	if warm.Report.Stats == nil || warm.Report.Stats.TasksReused == 0 {
		t.Errorf("warm scan stats carry no reuse: %+v", warm.Report.Stats)
	}
	if warm.Diff == nil {
		t.Fatal("warm scan carried no diff despite a baseline")
	}
	if len(warm.Diff.New) != 0 || len(warm.Diff.Fixed) != 0 || warm.Diff.Persisting != 1 {
		t.Errorf("warm diff = %+v, want 1 persisting, nothing new or fixed", warm.Diff)
	}

	// Fix the vulnerable page: only its tasks re-execute, and the diff
	// reports the finding as fixed.
	log.reset()
	fixed := ScanRequest{
		Name:        "incr-test",
		Files:       map[string]string{"page.php": `<?php echo "safe";`, "clean.php": files["clean.php"]},
		Incremental: true,
	}
	resp, after := postScan(t, hs.URL, fixed)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if after.Report == nil || after.Report.Vulnerabilities != 0 {
		t.Fatalf("post-fix report = %+v, want 0 vulnerabilities", after.Report)
	}
	if n := log.count(); n != 1 {
		t.Errorf("post-fix scan executed %d tasks, want 1 (page.php only)", n)
	}
	if after.Diff == nil {
		t.Fatal("post-fix scan carried no diff")
	}
	if len(after.Diff.Fixed) != 1 || len(after.Diff.New) != 0 {
		t.Errorf("post-fix diff = %+v, want exactly 1 fixed", after.Diff)
	}
}

// TestNonIncrementalScanCarriesNoDiff checks that plain requests neither
// read the store nor pick up another project's baseline machinery.
func TestNonIncrementalScanCarriesNoDiff(t *testing.T) {
	store, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	log := &taskLog{}
	_, hs := newTestServer(t, Config{Engine: testEngine(t, log.hook), Store: store})
	req := ScanRequest{Name: "plain", Files: map[string]string{"a.php": xssPage}}

	_, first := postScan(t, hs.URL, req)
	if first.Diff != nil {
		t.Errorf("non-incremental scan carried a diff: %+v", first.Diff)
	}
	log.reset()
	_, second := postScan(t, hs.URL, req)
	if second.Diff != nil {
		t.Errorf("repeat non-incremental scan carried a diff: %+v", second.Diff)
	}
	if log.count() == 0 {
		t.Error("non-incremental repeat reused tasks; it must re-execute")
	}
	if second.Report.Stats != nil && second.Report.Stats.TasksReused != 0 {
		t.Errorf("non-incremental scan reused %d tasks", second.Report.Stats.TasksReused)
	}
}
