// Package server implements wapd's long-running HTTP scan service on five
// robustness layers:
//
//  1. admission control — a bounded job queue and a fixed worker pool; a
//     full queue answers 429 with Retry-After instead of accepting
//     unbounded work, and per-request deadlines propagate into the engine
//     context so a slow scan returns a partial report, never a hung
//     connection;
//  2. the engine's retry ladder — transient (file, class) task faults are
//     retried with shrinking budgets before costing findings (configured on
//     the engine, reported per job);
//  3. per-class circuit breakers — engine-scoped, so a class that faults
//     persistently across jobs trips open and stops consuming workers;
//  4. durability — async jobs ("async": true, answered 202 with a job ID
//     and polled via GET /jobs/{id}) are journaled through a write-ahead
//     log: accepted before the 202, started when a worker picks them up,
//     checkpointed as the engine flushes mid-scan store snapshots, done
//     when answered. On startup the journal replays and every incomplete
//     job is re-admitted through the same bounded queue; its resumed scan
//     comes back warm from the result store's checkpoints and produces a
//     report byte-identical to an uninterrupted run;
//  5. lifecycle — SIGTERM/SIGINT drains gracefully: admission stops,
//     in-flight jobs finish (or are force-cancelled — sync jobs into
//     partial reports, durable async jobs back into the journal for the
//     next start to resume), the journal is compacted so a clean shutdown
//     replays nothing, and /healthz + /readyz reflect queue saturation,
//     drain state, breaker positions and journal/store self-healing
//     counters throughout.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/atomicfile"
	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/report"
	"repro/internal/resultstore"
	"repro/internal/resultstore/httpbackend"
)

// Defaults applied by New when the corresponding Config field is zero.
const (
	DefaultQueueDepth   = 16
	DefaultWorkers      = 2
	DefaultDrainTimeout = 30 * time.Second
	DefaultJobTimeout   = 2 * time.Minute
	DefaultMaxTimeout   = 10 * time.Minute
	DefaultRetryAfter   = 2 * time.Second
	// DefaultCheckpointEvery is the checkpoint cadence (dispositioned tasks
	// per mid-scan snapshot) applied to durable jobs when
	// Config.CheckpointEvery is zero.
	DefaultCheckpointEvery = 16
	// maxRequestBytes bounds an uploaded tree (64 MiB).
	maxRequestBytes = 64 << 20

	// HTTP server socket timeouts (Config.ReadHeaderTimeout etc.; applied by
	// Serve). ReadHeader bounds a connection that dangles before sending its
	// request line (slow-loris); Read bounds the whole request read, sized
	// for a 64 MiB tree upload on a slow link; Idle reaps keep-alive
	// connections between requests. There is deliberately no WriteTimeout
	// default: a synchronous scan holds its connection until the report is
	// ready, legitimately for minutes — per-job deadlines bound that instead.
	DefaultReadHeaderTimeout = 10 * time.Second
	DefaultReadTimeout       = 2 * time.Minute
	DefaultIdleTimeout       = 2 * time.Minute
)

// Job lifecycle states reported by GET /jobs/{id}.
const (
	StatusQueued  = "queued"
	StatusRunning = "running"
	StatusDone    = "done"
)

// Config tunes a scan server.
type Config struct {
	// Engine is the trained engine shared by every job. It must be safe for
	// concurrent AnalyzeContext calls (engines are, once trained).
	Engine *core.Engine
	// QueueDepth bounds jobs waiting for a worker; an enqueue beyond it is
	// rejected with 429.
	QueueDepth int
	// Workers is the number of jobs analyzed concurrently.
	Workers int
	// DrainTimeout is how long Drain lets in-flight jobs finish before
	// force-cancelling them into partial reports.
	DrainTimeout time.Duration
	// DefaultTimeout bounds a job when the request names no deadline;
	// MaxTimeout caps client-requested deadlines.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// LoadOptions tunes directory loading for dir-based jobs.
	LoadOptions core.LoadOptions
	// ReportDir, when set, persists every completed report atomically as
	// <ReportDir>/<job-id>.json.
	ReportDir string
	// RetryAfter is the hint returned with 429 responses.
	RetryAfter time.Duration
	// Store, when set, backs incremental scan requests: jobs with
	// "incremental": true reuse the store's per-task results and persist
	// their own. Requests without the field never touch the store — except
	// durable async jobs (see Journal), which always run against it so
	// their mid-scan checkpoints make a crash resume warm.
	Store *resultstore.Store
	// Journal, when set, makes async jobs durable: every lifecycle
	// transition is appended to this write-ahead journal, New replays it
	// and re-admits incomplete jobs, and Drain compacts it. The server
	// owns appends and compaction but not Close; the caller that opened
	// the journal closes it after Drain.
	Journal *journal.Journal
	// CheckpointEvery is how many dispositioned engine tasks pass between
	// mid-scan result-store checkpoints of a durable job. 0 applies
	// DefaultCheckpointEvery; negative disables mid-scan checkpoints
	// (resumes then restart from the last complete scan's snapshot).
	CheckpointEvery int
	// WeaponsDir, when set, persists weapons admitted through POST /weapons
	// as <name>.weapon files and replays them at startup, so a hot-reloaded
	// weapon survives a restart. Empty keeps admitted weapons in memory only.
	WeaponsDir string
	// CacheServe, with Store set, mounts the content-addressed blob protocol
	// at /cas/ over the store's backend, so this replica doubles as the
	// shared result-store tier other replicas point -cache-backend at.
	CacheServe bool
	// ReadHeaderTimeout/ReadTimeout/IdleTimeout are the listener's socket
	// timeouts (zero applies the defaults above; negative disables one).
	// WriteTimeout stays unset: synchronous scans legitimately hold their
	// connection for minutes and are bounded by per-job deadlines instead.
	ReadHeaderTimeout time.Duration
	ReadTimeout       time.Duration
	IdleTimeout       time.Duration
}

// ScanRequest is the body of POST /scan. Exactly one of Dir and Files must
// be set.
type ScanRequest struct {
	// Dir is a server-local directory to scan.
	Dir string `json:"dir,omitempty"`
	// Files is an uploaded tree: project-relative path → PHP source.
	Files map[string]string `json:"files,omitempty"`
	// Name labels the project in the report; defaults to the dir basename
	// or "upload".
	Name string `json:"name,omitempty"`
	// TimeoutMS bounds the whole job (load + analysis). 0 uses the server
	// default; values above the server max are capped. On expiry the job
	// returns the partial report analyzed so far, flagged degraded.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Incremental opts the job into per-project reuse: parsed files and
	// per-task results from this project's previous complete scan are reused
	// where fingerprints match (via Config.Store when set), and the response
	// carries a diff against that baseline. Findings are byte-identical to a
	// full scan either way.
	Incremental bool `json:"incremental,omitempty"`
	// Async detaches the job from the connection: POST /scan answers 202
	// with the job ID immediately and the result is polled via
	// GET /jobs/{id}. With Config.Journal set, async jobs are durable —
	// they survive a process crash and resume on the next start.
	Async bool `json:"async,omitempty"`
}

// ScanResponse is the body of a completed scan.
type ScanResponse struct {
	ID string `json:"id"`
	// QueueMS is how long the job waited for a worker.
	QueueMS int64 `json:"queue_ms"`
	// Report is the scan report; on a deadline it is the partial result.
	Report *report.JSONReport `json:"report,omitempty"`
	// Error is set when the job failed outright (bad directory) or was cut
	// short (deadline, drain); a partial Report may accompany it.
	Error string `json:"error,omitempty"`
	// Diff compares this scan to the project's previous complete scan. Only
	// incremental jobs of a project with an existing baseline carry it.
	Diff *report.JSONDiff `json:"diff,omitempty"`
}

// JobStatus is the body of GET /jobs/{id} and of the 202 response to an
// async POST /scan.
type JobStatus struct {
	ID string `json:"id"`
	// Status is queued, running or done.
	Status string `json:"status"`
	// Resumes counts crashed attempts that preceded the current one.
	Resumes int `json:"resumes,omitempty"`
	// Result carries the job's response once Status is done. A done job
	// replayed from a prior process has its report re-read from ReportDir;
	// without a report directory the result of such a job is unavailable.
	Result *ScanResponse `json:"result,omitempty"`
}

type job struct {
	id       string
	req      ScanRequest
	timeout  time.Duration
	reqCtx   context.Context
	enqueued time.Time
	async    bool
	// resumes is how many crashed attempts of this job preceded it (journal
	// replay sets it; fresh jobs are 0).
	resumes int
	done    chan *ScanResponse // buffered; worker sends exactly once
}

// jobState is the server-side lifecycle record of an async job, the state
// behind GET /jobs/{id} and journal compaction. Sync jobs are not tracked —
// their response goes out on the connection that submitted them.
type jobState struct {
	id      string
	status  string
	resumes int
	// started counts worker pickups within this process; a drain-suspended
	// job's next generation counts them as additional resumes.
	started int
	resp    *ScanResponse
	req     ScanRequest
	// acceptedSeq/acceptedMS echo the job's accepted journal record so
	// compaction can rewrite it without re-reading the journal.
	acceptedSeq int64
	acceptedMS  int64
}

// acceptedPayload is the journal payload of a job-accepted record: the full
// request, so replay can re-admit the job with no other state.
type acceptedPayload struct {
	Req ScanRequest `json:"req"`
	// Resumes carries crashed-attempt counts across compactions (compaction
	// drops the started records that would otherwise witness them).
	Resumes int `json:"resumes,omitempty"`
}

// checkpointPayload is the journal payload of a task-checkpoint record.
type checkpointPayload struct {
	Done  int `json:"done"`
	Total int `json:"total"`
}

// donePayload is the journal payload of a job-done record.
type donePayload struct {
	Error string `json:"error,omitempty"`
}

// Server is a running scan service.
type Server struct {
	cfg   Config
	queue chan *job
	mux   *http.ServeMux

	// admitMu serializes admission against Drain closing the queue, so a
	// 503-after-drain can never race into a send on a closed channel.
	admitMu  sync.Mutex
	draining atomic.Bool

	active    atomic.Int64 // jobs currently inside a worker
	seq       atomic.Int64
	accepted  atomic.Int64
	rejected  atomic.Int64
	completed atomic.Int64
	resumed   atomic.Int64 // incomplete jobs re-admitted by journal replay

	// journalErrs counts journal appends that failed. A failed append never
	// fails the job — it degrades durability (the transition may be lost on
	// a crash) and is surfaced here and in /healthz.
	journalErrs atomic.Int64

	// jobs tracks async jobs by ID for GET /jobs/{id} and drain compaction.
	jobMu sync.Mutex
	jobs  map[string]*jobState

	// compactOnce guards the drain-time journal compaction (Drain is
	// idempotent; the compaction must be too).
	compactOnce sync.Once

	// forceCtx is cancelled when the drain deadline passes; every job's
	// context derives from it so in-flight scans cut over to partial
	// reports instead of holding the drain open.
	forceCtx    context.Context
	forceCancel context.CancelFunc
	wg          sync.WaitGroup

	// engineVal is the engine new jobs scan with. It starts as Config.Engine
	// and is atomically replaced by weapon admissions/removals; a job reads
	// it once at start, so a swap never changes a running scan. weapons is
	// the hot-reload platform behind /weapons (see weapons.go).
	engineVal atomic.Pointer[core.Engine]
	weapons   *weaponPlatform

	// baselines holds, per project name, the last complete scan of an
	// incremental job: its report (for the response diff) and its parsed
	// project (so the next scan reuses ASTs of unchanged files). Only
	// error-free, non-degraded scans become baselines — a partial report
	// would make every missing finding look "fixed" in the next diff.
	baseMu    sync.Mutex
	baselines map[string]*baseline
}

// baseline is one project's previous complete scan.
type baseline struct {
	rep  *report.JSONReport
	proj *core.Project
}

// New builds a server, applies defaults, and starts its worker pool.
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, errors.New("server: Config.Engine is required")
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.Workers <= 0 {
		cfg.Workers = DefaultWorkers
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = DefaultDrainTimeout
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = DefaultJobTimeout
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = DefaultMaxTimeout
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = DefaultRetryAfter
	}
	if cfg.ReadHeaderTimeout == 0 {
		cfg.ReadHeaderTimeout = DefaultReadHeaderTimeout
	}
	if cfg.ReadTimeout == 0 {
		cfg.ReadTimeout = DefaultReadTimeout
	}
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = DefaultIdleTimeout
	}
	if cfg.CacheServe && cfg.Store == nil {
		return nil, errors.New("server: CacheServe requires a Store")
	}
	s := &Server{
		cfg:       cfg,
		queue:     make(chan *job, cfg.QueueDepth),
		baselines: make(map[string]*baseline),
		jobs:      make(map[string]*jobState),
	}
	s.forceCtx, s.forceCancel = context.WithCancel(context.Background())
	if err := s.initWeapons(); err != nil {
		s.forceCancel()
		return nil, err
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/scan", s.handleScan)
	s.mux.HandleFunc("/jobs/", s.handleJob)
	s.mux.HandleFunc("/weapons", s.handleWeapons)
	s.mux.HandleFunc("/weapons/", s.handleWeaponItem)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	if cfg.CacheServe {
		// The serving side of the shared tier: other replicas' httpbackend
		// clients read and write this replica's blob tier directly.
		s.mux.Handle("/cas/", httpbackend.Handler(cfg.Store.Backend()))
	}
	if cfg.Journal != nil {
		s.replayJournal()
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// replayJournal folds the journal's replayed records into job state and
// re-admits every job that was accepted but not done when the previous
// process stopped. Runs before the worker pool starts; re-admission respects
// the bounded queue via feeder goroutines that retry while the queue is
// full, so a journal larger than QueueDepth re-admits as workers free slots.
func (s *Server) replayJournal() {
	var (
		order []string
		maxID int64
	)
	for _, rec := range s.cfg.Journal.Replayed() {
		if n, ok := jobNum(rec.Job); ok && n > maxID {
			maxID = n
		}
		switch rec.Kind {
		case journal.JobAccepted:
			var pl acceptedPayload
			if err := json.Unmarshal(rec.Payload, &pl); err != nil {
				continue // unusable request; nothing to resume
			}
			if s.jobs[rec.Job] == nil {
				order = append(order, rec.Job)
			}
			s.jobs[rec.Job] = &jobState{
				id: rec.Job, status: StatusQueued, resumes: pl.Resumes,
				req: pl.Req, acceptedSeq: rec.Seq, acceptedMS: rec.UnixMS,
			}
		case journal.JobStarted:
			// Each pickup the crashed process logged is one lost attempt.
			if st := s.jobs[rec.Job]; st != nil {
				st.resumes++
			}
		case journal.JobDone:
			if st := s.jobs[rec.Job]; st != nil {
				st.status = StatusDone
			}
		}
	}
	if maxID > s.seq.Load() {
		s.seq.Store(maxID)
	}
	for _, id := range order {
		st := s.jobs[id]
		if st.status == StatusDone {
			continue
		}
		j := &job{
			id: st.id, req: st.req, timeout: s.clampTimeout(st.req.TimeoutMS),
			reqCtx: context.Background(), enqueued: time.Now(),
			async: true, resumes: st.resumes,
			done: make(chan *ScanResponse, 1),
		}
		s.resumed.Add(1)
		go s.feedJob(j)
	}
}

// feedJob pushes a replayed job through normal admission, retrying while the
// queue is full. A drain ends the feed; the job's accepted record survives
// compaction, so the next start feeds it again.
func (s *Server) feedJob(j *job) {
	for {
		switch err := s.admit(j); {
		case err == nil:
			return
		case errors.Is(err, errDraining):
			return
		default:
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// jobNum extracts N from "job-N" IDs so replay can seed the sequence above
// every replayed job.
func jobNum(id string) (int64, bool) {
	rest, ok := strings.CutPrefix(id, "job-")
	if !ok {
		return 0, false
	}
	n, err := strconv.ParseInt(rest, 10, 64)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// clampTimeout resolves a requested per-job timeout against the server's
// default and cap.
func (s *Server) clampTimeout(ms int64) time.Duration {
	timeout := s.cfg.DefaultTimeout
	if ms > 0 {
		timeout = time.Duration(ms) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}
	return timeout
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// admission outcomes.
var (
	errDraining  = errors.New("server draining; not accepting new scans")
	errQueueFull = errors.New("scan queue full")
)

// admit enqueues a job or reports why it cannot. The queue send never
// blocks: a full queue is backpressure the client must see, not buffer the
// server must grow.
func (s *Server) admit(j *job) error {
	s.admitMu.Lock()
	defer s.admitMu.Unlock()
	if s.draining.Load() {
		return errDraining
	}
	select {
	case s.queue <- j:
		return nil
	default:
		return errQueueFull
	}
}

func (s *Server) handleScan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req ScanRequest
	body := http.MaxBytesReader(w, r.Body, maxRequestBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if (req.Dir == "") == (len(req.Files) == 0) {
		writeError(w, http.StatusBadRequest, "exactly one of dir and files must be set")
		return
	}
	j := &job{
		id:       fmt.Sprintf("job-%d", s.seq.Add(1)),
		req:      req,
		timeout:  s.clampTimeout(req.TimeoutMS),
		reqCtx:   r.Context(),
		enqueued: time.Now(),
		async:    req.Async,
		done:     make(chan *ScanResponse, 1),
	}
	if j.async {
		// An async job outlives the connection that submitted it; only the
		// per-job deadline and the drain force-cancel may stop it.
		j.reqCtx = context.Background()
	}
	if j.async {
		// Register and journal the job before admission so a worker can
		// never pick it up while it is still untracked, and the client
		// never holds an ID a crash could lose.
		st := &jobState{id: j.id, status: StatusQueued, req: j.req, acceptedMS: time.Now().UnixMilli()}
		if s.cfg.Journal != nil {
			if seq, err := s.cfg.Journal.Append(journal.JobAccepted, j.id, acceptedPayload{Req: j.req}); err != nil {
				s.journalErrs.Add(1)
			} else {
				st.acceptedSeq = seq
			}
		}
		s.jobMu.Lock()
		s.jobs[j.id] = st
		s.jobMu.Unlock()
	}
	switch err := s.admit(j); {
	case errors.Is(err, errQueueFull):
		s.rejected.Add(1)
		s.dropRejected(j)
		// Round the hint up: sub-second configs must hint 1, never 0
		// (Retry-After: 0 reads as "retry immediately" — the opposite of
		// backpressure).
		secs := int((s.cfg.RetryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeError(w, http.StatusTooManyRequests, err.Error())
		return
	case errors.Is(err, errDraining):
		s.rejected.Add(1)
		s.dropRejected(j)
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	s.accepted.Add(1)
	if j.async {
		writeJSON(w, http.StatusAccepted, JobStatus{ID: j.id, Status: StatusQueued})
		return
	}
	select {
	case resp := <-j.done:
		writeJSON(w, http.StatusOK, resp)
	case <-r.Context().Done():
		// Client went away; the job's context derives from the request
		// context, so the worker abandons the scan on its own.
	}
}

// handleJob serves GET /jobs/{id}: the job's lifecycle status and, once
// done, its result.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/jobs/")
	if id == "" || strings.Contains(id, "/") {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	s.jobMu.Lock()
	st := s.jobs[id]
	var out JobStatus
	if st != nil {
		out = JobStatus{ID: st.id, Status: st.status, Resumes: st.resumes, Result: st.resp}
	}
	s.jobMu.Unlock()
	if st == nil {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	if out.Status == StatusDone && out.Result == nil {
		// The job completed in a previous process; its response lives only
		// in the report artifact.
		if rep := s.loadReportArtifact(id); rep != nil {
			out.Result = &ScanResponse{ID: id, Report: rep}
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// dropRejected undoes the pre-admission registration of an async job the
// queue rejected: the state is removed and a done record neutralizes the
// accepted one, so a replay cannot resurrect a job whose client saw 429/503.
func (s *Server) dropRejected(j *job) {
	if !j.async {
		return
	}
	s.jobMu.Lock()
	delete(s.jobs, j.id)
	s.jobMu.Unlock()
	s.journalAppend(journal.JobDone, j.id, donePayload{Error: "rejected at admission"})
}

// journalAppend appends one record for an async job, counting (never
// propagating) failures: a lost transition degrades durability, not the job.
func (s *Server) journalAppend(kind journal.Kind, id string, payload any) {
	if s.cfg.Journal == nil {
		return
	}
	if _, err := s.cfg.Journal.Append(kind, id, payload); err != nil {
		s.journalErrs.Add(1)
	}
}

// loadReportArtifact re-reads a persisted report, for done jobs replayed
// from a previous process.
func (s *Server) loadReportArtifact(id string) *report.JSONReport {
	if s.cfg.ReportDir == "" {
		return nil
	}
	data, err := os.ReadFile(filepath.Join(s.cfg.ReportDir, id+".json"))
	if err != nil {
		return nil
	}
	var rep report.JSONReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil
	}
	return &rep
}

// worker drains the queue until Drain closes it.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob loads and analyzes one job under a context that dies with the
// client connection, the per-job deadline, or the drain force-cancel —
// whichever comes first. Deadline and drain cut-offs still return the
// partial report the engine produced — except a durable async job cut off
// by drain, which is suspended back into the journal so the next start
// resumes it instead of pinning a partial report nobody is waiting on.
func (s *Server) runJob(j *job) {
	s.active.Add(1)
	defer s.active.Add(-1)
	defer s.completed.Add(1)

	durable := j.async && s.cfg.Journal != nil
	s.jobMu.Lock()
	if st := s.jobs[j.id]; st != nil {
		st.status = StatusRunning
		st.started++
	}
	s.jobMu.Unlock()
	if durable {
		s.journalAppend(journal.JobStarted, j.id, nil)
	}

	ctx, cancel := context.WithCancel(j.reqCtx)
	defer cancel()
	stopForce := context.AfterFunc(s.forceCtx, cancel)
	defer stopForce()
	ctx, cancelTimeout := context.WithTimeout(ctx, j.timeout)
	defer cancelTimeout()

	resp := &ScanResponse{ID: j.id, QueueMS: time.Since(j.enqueued).Milliseconds()}

	// Incremental jobs pick up the project's previous scan: its parsed files
	// feed parse reuse, its report feeds the response diff, and the result
	// store (when configured) feeds per-task reuse.
	var prev *baseline
	var store *resultstore.Store
	if j.req.Incremental {
		s.baseMu.Lock()
		prev = s.baselines[projName(j.req)]
		s.baseMu.Unlock()
		store = s.cfg.Store
	}
	if durable {
		// Durable jobs always run against the store: the checkpoints it
		// absorbs are what make a resumed attempt warm rather than a
		// from-scratch re-run. Findings are byte-identical either way.
		store = s.cfg.Store
	}
	var prevProj *core.Project
	if prev != nil {
		prevProj = prev.proj
	}

	proj, err := s.loadProject(ctx, j.req, prevProj)
	if err != nil {
		if durable && errors.Is(err, context.Canceled) {
			s.suspendJob(j.id)
			return
		}
		resp.Error = err.Error()
		s.finishJob(j, resp)
		return
	}
	so := core.ScanOpts{Store: store, Resumes: j.resumes}
	if durable && store != nil {
		so.CheckpointEvery = s.checkpointEvery()
		id := j.id
		so.OnCheckpoint = func(done, total int) {
			s.journalAppend(journal.TaskCheckpoint, id, checkpointPayload{Done: done, Total: total})
		}
	}
	rep, err := s.engine().AnalyzeScan(ctx, proj, so)
	if err != nil {
		if durable && errors.Is(err, context.Canceled) {
			// An async job's context has no client to die with, so Canceled
			// can only mean the drain force-cancel. Its checkpoints are
			// already persisted and its accepted record survives
			// compaction; suspend it for the next start to resume.
			s.suspendJob(j.id)
			return
		}
		// A deadline or cancellation mid-scan still carries the partial
		// report; anything without one is a hard failure.
		resp.Error = err.Error()
		if rep == nil {
			s.finishJob(j, resp)
			return
		}
	}
	resp.Report = report.ToJSON(rep)
	if prev != nil {
		d := report.DiffFindings(report.GroupedFromJSON(prev.rep), report.Group(rep))
		resp.Diff = report.ToJSONDiff(d)
	}
	if j.req.Incremental && err == nil && !rep.Degraded() {
		s.baseMu.Lock()
		s.baselines[projName(j.req)] = &baseline{rep: resp.Report, proj: proj}
		s.baseMu.Unlock()
	}
	s.persistReport(j.id, resp.Report)
	s.finishJob(j, resp)
}

// checkpointEvery resolves the durable-job checkpoint cadence.
func (s *Server) checkpointEvery() int {
	switch {
	case s.cfg.CheckpointEvery > 0:
		return s.cfg.CheckpointEvery
	case s.cfg.CheckpointEvery < 0:
		return 0
	default:
		return DefaultCheckpointEvery
	}
}

// finishJob dispositions a completed job: async jobs keep their response for
// GET /jobs/{id} and get a done journal record; sync jobs hand the response
// to the waiting connection.
func (s *Server) finishJob(j *job, resp *ScanResponse) {
	if j.async {
		s.jobMu.Lock()
		if st := s.jobs[j.id]; st != nil {
			st.status = StatusDone
			st.resp = resp
		}
		s.jobMu.Unlock()
		s.journalAppend(journal.JobDone, j.id, donePayload{Error: resp.Error})
	}
	j.done <- resp
}

// suspendJob reverts a drain-cancelled durable job to queued without a done
// record, so journal compaction keeps it and the next start resumes it.
func (s *Server) suspendJob(id string) {
	s.jobMu.Lock()
	if st := s.jobs[id]; st != nil {
		st.status = StatusQueued
	}
	s.jobMu.Unlock()
}

// projName is the baseline key: the report label the job will carry.
func projName(req ScanRequest) string {
	if req.Name != "" {
		return req.Name
	}
	if req.Dir != "" {
		return filepath.Base(req.Dir)
	}
	return "upload"
}

// loadProject builds the job's project from its directory or uploaded tree.
// prev, when non-nil, is the project of the previous scan under the same
// name: files whose content hash is unchanged adopt its parsed ASTs.
func (s *Server) loadProject(ctx context.Context, req ScanRequest, prev *core.Project) (*core.Project, error) {
	name := projName(req)
	if req.Dir != "" {
		lo := s.cfg.LoadOptions
		lo.Prev = prev
		return core.LoadDirContext(ctx, name, req.Dir, lo)
	}
	return core.LoadMapIncremental(name, req.Files, prev), nil
}

// persistReport writes the report artifact atomically, so a crash or a
// concurrent reader can never observe a truncated JSON file. Persistence is
// best-effort: a failure never fails the job that produced the report.
func (s *Server) persistReport(id string, rep *report.JSONReport) {
	if s.cfg.ReportDir == "" || rep == nil {
		return
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return
	}
	_ = os.MkdirAll(s.cfg.ReportDir, 0o755)
	_ = atomicfile.WriteFile(filepath.Join(s.cfg.ReportDir, id+".json"), data, 0o644)
}

// health is the body of /healthz and /readyz.
type health struct {
	Status    string `json:"status"`
	Ready     bool   `json:"ready"`
	Draining  bool   `json:"draining"`
	QueueLen  int    `json:"queue_len"`
	QueueCap  int    `json:"queue_cap"`
	Active    int64  `json:"active"`
	Workers   int    `json:"workers"`
	Accepted  int64  `json:"accepted"`
	Rejected  int64  `json:"rejected"`
	Completed int64  `json:"completed"`
	// Resumed counts incomplete journaled jobs this process re-admitted at
	// startup; JournalErrors counts appends that failed (each one a
	// transition that would be lost by a crash).
	Resumed       int64 `json:"resumed,omitempty"`
	JournalErrors int64 `json:"journal_errors,omitempty"`
	// Journal carries the write-ahead journal's own account (replayed
	// records, dropped tail bytes, compactions); Store the result store's
	// self-healing counters (quarantined snapshots, salvaged entries,
	// evictions). Both absent when the feature is off.
	Journal *journal.Counters   `json:"journal,omitempty"`
	Store   *resultstore.Health `json:"store,omitempty"`
	// Backend is the result-store tier's account when the store runs over a
	// pluggable backend: load outcomes, write-behind queue depth/shedding,
	// and the fault envelope's breaker position and last error. Absent for
	// the legacy plain-disk store.
	Backend *resultstore.BackendState `json:"backend,omitempty"`
	// Breakers maps class → breaker status for every class whose breaker
	// has state; open entries mean that class is currently diagnostics-only.
	Breakers map[string]core.BreakerStatus `json:"breakers,omitempty"`
	// WeaponRevision is the hot-reload registry revision the serving engine
	// was derived at (0 = startup weapon set); Weapons lists the serving
	// engine's weapon class IDs; WeaponErrors lists -weapons-dir spec files
	// that failed replay at startup (each skipped, never served).
	WeaponRevision int64    `json:"weapon_revision,omitempty"`
	Weapons        []string `json:"weapons,omitempty"`
	WeaponErrors   []string `json:"weapon_errors,omitempty"`
}

func (s *Server) healthSnapshot() health {
	h := health{
		Status:    "ok",
		Draining:  s.draining.Load(),
		QueueLen:  len(s.queue),
		QueueCap:  cap(s.queue),
		Active:    s.active.Load(),
		Workers:   s.cfg.Workers,
		Accepted:  s.accepted.Load(),
		Rejected:  s.rejected.Load(),
		Completed: s.completed.Load(),
		Resumed:   s.resumed.Load(),
	}
	h.JournalErrors = s.journalErrs.Load()
	if s.cfg.Journal != nil {
		c := s.cfg.Journal.Counters()
		h.Journal = &c
	}
	if s.cfg.Store != nil {
		sh := s.cfg.Store.Health()
		h.Store = &sh
		h.Backend = s.cfg.Store.BackendState()
	}
	// Ready means an admitted scan would be queued right now: not draining
	// and the queue has room. An open breaker does not unready the service —
	// every other class still scans — but it is visible in the body.
	h.Ready = !h.Draining && h.QueueLen < h.QueueCap
	eng := s.engine()
	if snap := eng.BreakerSnapshot(); len(snap) > 0 {
		h.Breakers = make(map[string]core.BreakerStatus, len(snap))
		for id, st := range snap {
			h.Breakers[string(id)] = st
		}
	}
	h.WeaponRevision = s.weapons.registry.Revision()
	for _, id := range eng.WeaponIDs() {
		h.Weapons = append(h.Weapons, string(id))
	}
	h.WeaponErrors = append(h.WeaponErrors, s.weapons.loadErrs...)
	return h
}

// handleHealthz reports liveness: 200 whenever the process can answer.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.healthSnapshot())
}

// handleReadyz reports admission readiness: 503 while draining or while the
// queue is saturated, 200 otherwise.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	h := s.healthSnapshot()
	code := http.StatusOK
	if !h.Ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
