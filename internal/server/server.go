// Package server implements wapd's long-running HTTP scan service on four
// robustness layers:
//
//  1. admission control — a bounded job queue and a fixed worker pool; a
//     full queue answers 429 with Retry-After instead of accepting
//     unbounded work, and per-request deadlines propagate into the engine
//     context so a slow scan returns a partial report, never a hung
//     connection;
//  2. the engine's retry ladder — transient (file, class) task faults are
//     retried with shrinking budgets before costing findings (configured on
//     the engine, reported per job);
//  3. per-class circuit breakers — engine-scoped, so a class that faults
//     persistently across jobs trips open and stops consuming workers;
//  4. lifecycle — SIGTERM/SIGINT drains gracefully: admission stops,
//     in-flight jobs finish (or are force-cancelled into partial reports at
//     the drain deadline), and /healthz + /readyz reflect queue saturation,
//     drain state and breaker positions throughout.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/atomicfile"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/resultstore"
)

// Defaults applied by New when the corresponding Config field is zero.
const (
	DefaultQueueDepth   = 16
	DefaultWorkers      = 2
	DefaultDrainTimeout = 30 * time.Second
	DefaultJobTimeout   = 2 * time.Minute
	DefaultMaxTimeout   = 10 * time.Minute
	DefaultRetryAfter   = 2 * time.Second
	// maxRequestBytes bounds an uploaded tree (64 MiB).
	maxRequestBytes = 64 << 20
)

// Config tunes a scan server.
type Config struct {
	// Engine is the trained engine shared by every job. It must be safe for
	// concurrent AnalyzeContext calls (engines are, once trained).
	Engine *core.Engine
	// QueueDepth bounds jobs waiting for a worker; an enqueue beyond it is
	// rejected with 429.
	QueueDepth int
	// Workers is the number of jobs analyzed concurrently.
	Workers int
	// DrainTimeout is how long Drain lets in-flight jobs finish before
	// force-cancelling them into partial reports.
	DrainTimeout time.Duration
	// DefaultTimeout bounds a job when the request names no deadline;
	// MaxTimeout caps client-requested deadlines.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// LoadOptions tunes directory loading for dir-based jobs.
	LoadOptions core.LoadOptions
	// ReportDir, when set, persists every completed report atomically as
	// <ReportDir>/<job-id>.json.
	ReportDir string
	// RetryAfter is the hint returned with 429 responses.
	RetryAfter time.Duration
	// Store, when set, backs incremental scan requests: jobs with
	// "incremental": true reuse the store's per-task results and persist
	// their own. Requests without the field never touch the store.
	Store *resultstore.Store
}

// ScanRequest is the body of POST /scan. Exactly one of Dir and Files must
// be set.
type ScanRequest struct {
	// Dir is a server-local directory to scan.
	Dir string `json:"dir,omitempty"`
	// Files is an uploaded tree: project-relative path → PHP source.
	Files map[string]string `json:"files,omitempty"`
	// Name labels the project in the report; defaults to the dir basename
	// or "upload".
	Name string `json:"name,omitempty"`
	// TimeoutMS bounds the whole job (load + analysis). 0 uses the server
	// default; values above the server max are capped. On expiry the job
	// returns the partial report analyzed so far, flagged degraded.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Incremental opts the job into per-project reuse: parsed files and
	// per-task results from this project's previous complete scan are reused
	// where fingerprints match (via Config.Store when set), and the response
	// carries a diff against that baseline. Findings are byte-identical to a
	// full scan either way.
	Incremental bool `json:"incremental,omitempty"`
}

// ScanResponse is the body of a completed scan.
type ScanResponse struct {
	ID string `json:"id"`
	// QueueMS is how long the job waited for a worker.
	QueueMS int64 `json:"queue_ms"`
	// Report is the scan report; on a deadline it is the partial result.
	Report *report.JSONReport `json:"report,omitempty"`
	// Error is set when the job failed outright (bad directory) or was cut
	// short (deadline, drain); a partial Report may accompany it.
	Error string `json:"error,omitempty"`
	// Diff compares this scan to the project's previous complete scan. Only
	// incremental jobs of a project with an existing baseline carry it.
	Diff *report.JSONDiff `json:"diff,omitempty"`
}

type job struct {
	id       string
	req      ScanRequest
	timeout  time.Duration
	reqCtx   context.Context
	enqueued time.Time
	done     chan *ScanResponse // buffered; worker sends exactly once
}

// Server is a running scan service.
type Server struct {
	cfg   Config
	queue chan *job
	mux   *http.ServeMux

	// admitMu serializes admission against Drain closing the queue, so a
	// 503-after-drain can never race into a send on a closed channel.
	admitMu  sync.Mutex
	draining atomic.Bool

	active    atomic.Int64 // jobs currently inside a worker
	seq       atomic.Int64
	accepted  atomic.Int64
	rejected  atomic.Int64
	completed atomic.Int64

	// forceCtx is cancelled when the drain deadline passes; every job's
	// context derives from it so in-flight scans cut over to partial
	// reports instead of holding the drain open.
	forceCtx    context.Context
	forceCancel context.CancelFunc
	wg          sync.WaitGroup

	// baselines holds, per project name, the last complete scan of an
	// incremental job: its report (for the response diff) and its parsed
	// project (so the next scan reuses ASTs of unchanged files). Only
	// error-free, non-degraded scans become baselines — a partial report
	// would make every missing finding look "fixed" in the next diff.
	baseMu    sync.Mutex
	baselines map[string]*baseline
}

// baseline is one project's previous complete scan.
type baseline struct {
	rep  *report.JSONReport
	proj *core.Project
}

// New builds a server, applies defaults, and starts its worker pool.
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, errors.New("server: Config.Engine is required")
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.Workers <= 0 {
		cfg.Workers = DefaultWorkers
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = DefaultDrainTimeout
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = DefaultJobTimeout
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = DefaultMaxTimeout
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = DefaultRetryAfter
	}
	s := &Server{cfg: cfg, queue: make(chan *job, cfg.QueueDepth), baselines: make(map[string]*baseline)}
	s.forceCtx, s.forceCancel = context.WithCancel(context.Background())
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/scan", s.handleScan)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// admission outcomes.
var (
	errDraining  = errors.New("server draining; not accepting new scans")
	errQueueFull = errors.New("scan queue full")
)

// admit enqueues a job or reports why it cannot. The queue send never
// blocks: a full queue is backpressure the client must see, not buffer the
// server must grow.
func (s *Server) admit(j *job) error {
	s.admitMu.Lock()
	defer s.admitMu.Unlock()
	if s.draining.Load() {
		return errDraining
	}
	select {
	case s.queue <- j:
		return nil
	default:
		return errQueueFull
	}
}

func (s *Server) handleScan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req ScanRequest
	body := http.MaxBytesReader(w, r.Body, maxRequestBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if (req.Dir == "") == (len(req.Files) == 0) {
		writeError(w, http.StatusBadRequest, "exactly one of dir and files must be set")
		return
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}
	j := &job{
		id:       fmt.Sprintf("job-%d", s.seq.Add(1)),
		req:      req,
		timeout:  timeout,
		reqCtx:   r.Context(),
		enqueued: time.Now(),
		done:     make(chan *ScanResponse, 1),
	}
	switch err := s.admit(j); {
	case errors.Is(err, errQueueFull):
		s.rejected.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.RetryAfter/time.Second)))
		writeError(w, http.StatusTooManyRequests, err.Error())
		return
	case errors.Is(err, errDraining):
		s.rejected.Add(1)
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	s.accepted.Add(1)
	select {
	case resp := <-j.done:
		writeJSON(w, http.StatusOK, resp)
	case <-r.Context().Done():
		// Client went away; the job's context derives from the request
		// context, so the worker abandons the scan on its own.
	}
}

// worker drains the queue until Drain closes it.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob loads and analyzes one job under a context that dies with the
// client connection, the per-job deadline, or the drain force-cancel —
// whichever comes first. Deadline and drain cut-offs still return the
// partial report the engine produced.
func (s *Server) runJob(j *job) {
	s.active.Add(1)
	defer s.active.Add(-1)
	defer s.completed.Add(1)

	ctx, cancel := context.WithCancel(j.reqCtx)
	defer cancel()
	stopForce := context.AfterFunc(s.forceCtx, cancel)
	defer stopForce()
	ctx, cancelTimeout := context.WithTimeout(ctx, j.timeout)
	defer cancelTimeout()

	resp := &ScanResponse{ID: j.id, QueueMS: time.Since(j.enqueued).Milliseconds()}

	// Incremental jobs pick up the project's previous scan: its parsed files
	// feed parse reuse, its report feeds the response diff, and the result
	// store (when configured) feeds per-task reuse.
	var prev *baseline
	var store *resultstore.Store
	if j.req.Incremental {
		s.baseMu.Lock()
		prev = s.baselines[projName(j.req)]
		s.baseMu.Unlock()
		store = s.cfg.Store
	}
	var prevProj *core.Project
	if prev != nil {
		prevProj = prev.proj
	}

	proj, err := s.loadProject(ctx, j.req, prevProj)
	if err != nil {
		resp.Error = err.Error()
		j.done <- resp
		return
	}
	rep, err := s.cfg.Engine.AnalyzeContextStore(ctx, proj, store)
	if err != nil {
		// A deadline or cancellation mid-scan still carries the partial
		// report; anything without one is a hard failure.
		resp.Error = err.Error()
		if rep == nil {
			j.done <- resp
			return
		}
	}
	resp.Report = report.ToJSON(rep)
	if prev != nil {
		d := report.DiffFindings(report.GroupedFromJSON(prev.rep), report.Group(rep))
		resp.Diff = report.ToJSONDiff(d)
	}
	if j.req.Incremental && err == nil && !rep.Degraded() {
		s.baseMu.Lock()
		s.baselines[projName(j.req)] = &baseline{rep: resp.Report, proj: proj}
		s.baseMu.Unlock()
	}
	s.persistReport(j.id, resp.Report)
	j.done <- resp
}

// projName is the baseline key: the report label the job will carry.
func projName(req ScanRequest) string {
	if req.Name != "" {
		return req.Name
	}
	if req.Dir != "" {
		return filepath.Base(req.Dir)
	}
	return "upload"
}

// loadProject builds the job's project from its directory or uploaded tree.
// prev, when non-nil, is the project of the previous scan under the same
// name: files whose content hash is unchanged adopt its parsed ASTs.
func (s *Server) loadProject(ctx context.Context, req ScanRequest, prev *core.Project) (*core.Project, error) {
	name := projName(req)
	if req.Dir != "" {
		lo := s.cfg.LoadOptions
		lo.Prev = prev
		return core.LoadDirContext(ctx, name, req.Dir, lo)
	}
	return core.LoadMapIncremental(name, req.Files, prev), nil
}

// persistReport writes the report artifact atomically, so a crash or a
// concurrent reader can never observe a truncated JSON file. Persistence is
// best-effort: a failure never fails the job that produced the report.
func (s *Server) persistReport(id string, rep *report.JSONReport) {
	if s.cfg.ReportDir == "" || rep == nil {
		return
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return
	}
	_ = atomicfile.WriteFile(filepath.Join(s.cfg.ReportDir, id+".json"), data, 0o644)
}

// health is the body of /healthz and /readyz.
type health struct {
	Status    string `json:"status"`
	Ready     bool   `json:"ready"`
	Draining  bool   `json:"draining"`
	QueueLen  int    `json:"queue_len"`
	QueueCap  int    `json:"queue_cap"`
	Active    int64  `json:"active"`
	Workers   int    `json:"workers"`
	Accepted  int64  `json:"accepted"`
	Rejected  int64  `json:"rejected"`
	Completed int64  `json:"completed"`
	// Breakers maps class → breaker status for every class whose breaker
	// has state; open entries mean that class is currently diagnostics-only.
	Breakers map[string]core.BreakerStatus `json:"breakers,omitempty"`
}

func (s *Server) healthSnapshot() health {
	h := health{
		Status:    "ok",
		Draining:  s.draining.Load(),
		QueueLen:  len(s.queue),
		QueueCap:  cap(s.queue),
		Active:    s.active.Load(),
		Workers:   s.cfg.Workers,
		Accepted:  s.accepted.Load(),
		Rejected:  s.rejected.Load(),
		Completed: s.completed.Load(),
	}
	// Ready means an admitted scan would be queued right now: not draining
	// and the queue has room. An open breaker does not unready the service —
	// every other class still scans — but it is visible in the body.
	h.Ready = !h.Draining && h.QueueLen < h.QueueCap
	if snap := s.cfg.Engine.BreakerSnapshot(); len(snap) > 0 {
		h.Breakers = make(map[string]core.BreakerStatus, len(snap))
		for id, st := range snap {
			h.Breakers[string(id)] = st
		}
	}
	return h
}

// handleHealthz reports liveness: 200 whenever the process can answer.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.healthSnapshot())
}

// handleReadyz reports admission readiness: 503 while draining or while the
// queue is saturated, 200 otherwise.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	h := s.healthSnapshot()
	code := http.StatusOK
	if !h.Ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
