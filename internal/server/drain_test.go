package server

// Lifecycle coverage: graceful drain finishes in-flight jobs and returns
// their complete reports, the drain deadline force-cancels stragglers into
// partial reports, /readyz flips during drain, and a real SIGTERM through
// Serve triggers the same path.

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"repro/internal/vuln"
)

// TestDrainCompletesInFlightJobs gates a running job, starts a drain, and
// asserts: /readyz flips unready, new scans get 503, and once the gate
// opens the in-flight job still delivers its complete (undegraded) report
// and the drain finishes clean.
func TestDrainCompletesInFlightJobs(t *testing.T) {
	gate := make(chan struct{})
	var gated atomic.Bool
	gated.Store(true)
	eng := testEngine(t, func(string, vuln.ClassID) {
		if gated.Load() {
			<-gate
		}
	})
	s, hs := newTestServer(t, Config{Engine: eng, Workers: 1})

	results := make(chan *ScanResponse, 1)
	go func() {
		_, out := postScan(t, hs.URL, ScanRequest{Files: map[string]string{"a.php": xssPage}})
		results <- out
	}()
	waitFor(t, func() bool { return s.active.Load() == 1 })

	drainDone := make(chan error, 1)
	drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	go func() { drainDone <- s.Drain(drainCtx) }()
	waitFor(t, func() bool { return s.draining.Load() })

	if code := getJSON(t, hs.URL+"/readyz", nil); code != http.StatusServiceUnavailable {
		t.Errorf("/readyz = %d during drain, want 503", code)
	}
	body, _ := json.Marshal(ScanRequest{Files: map[string]string{"a.php": xssPage}})
	resp, err := http.Post(hs.URL+"/scan", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("scan during drain = %d, want 503", resp.StatusCode)
	}

	// Let the in-flight job finish: the drain must wait for it.
	gated.Store(false)
	close(gate)
	if err := <-drainDone; err != nil {
		t.Fatalf("drain = %v, want clean completion", err)
	}
	out := <-results
	if out.Report == nil || out.Report.Vulnerabilities == 0 {
		t.Fatalf("in-flight job lost its report across the drain: %+v", out)
	}
	if out.Report.Degraded {
		t.Errorf("graceful drain degraded the in-flight report: %+v", out.Report.Diagnostics)
	}
}

// TestDrainDeadlineForceCancelsToPartialReport blocks a job past the drain
// deadline and asserts the drain still terminates — by cancelling the job
// into a partial, degraded report rather than abandoning the connection.
func TestDrainDeadlineForceCancelsToPartialReport(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate) // unblock the abandoned task goroutine at test end
	var gated atomic.Bool
	gated.Store(true)
	eng := testEngine(t, func(string, vuln.ClassID) {
		if gated.Load() {
			<-gate
		}
	})
	s, hs := newTestServer(t, Config{Engine: eng, Workers: 1})

	results := make(chan *ScanResponse, 1)
	go func() {
		_, out := postScan(t, hs.URL, ScanRequest{Files: map[string]string{"a.php": xssPage, "b.php": xssPage}})
		results <- out
	}()
	waitFor(t, func() bool { return s.active.Load() == 1 })

	drainCtx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := s.Drain(drainCtx); err == nil {
		t.Fatal("drain with a stuck job returned nil, want deadline error")
	}
	select {
	case out := <-results:
		if out.Error == "" {
			t.Errorf("force-cancelled job reports no error: %+v", out)
		}
		if out.Report == nil {
			t.Error("force-cancelled job returned no partial report")
		} else if !out.Report.Degraded {
			t.Error("force-cancelled partial report not flagged degraded")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("force-cancelled job never answered its connection")
	}
}

// TestSIGTERMTriggersGracefulDrain runs the real lifecycle: Serve on a live
// listener wired to signal.NotifyContext, a gated in-flight job, an actual
// SIGTERM to this process — and asserts the job's complete report arrives
// and Serve returns.
func TestSIGTERMTriggersGracefulDrain(t *testing.T) {
	gate := make(chan struct{})
	var gated atomic.Bool
	gated.Store(true)
	eng := testEngine(t, func(string, vuln.ClassID) {
		if gated.Load() {
			<-gate
		}
	})
	s, err := New(Config{Engine: eng, Workers: 1, DrainTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + ln.Addr().String()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, ln) }()

	results := make(chan *ScanResponse, 1)
	go func() {
		_, out := postScan(t, url, ScanRequest{Files: map[string]string{"a.php": xssPage}})
		results <- out
	}()
	waitFor(t, func() bool { return s.active.Load() == 1 })

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return s.draining.Load() })
	gated.Store(false)
	close(gate)

	select {
	case err := <-served:
		if err != nil && !strings.Contains(err.Error(), "closed") {
			t.Errorf("Serve returned %v after graceful drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after SIGTERM")
	}
	select {
	case out := <-results:
		if out.Report == nil || out.Report.Vulnerabilities == 0 || out.Report.Degraded {
			t.Errorf("in-flight job's report across SIGTERM drain: %+v", out.Report)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight job never answered across SIGTERM drain")
	}
}
