package server

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/atomicfile"
	"repro/internal/core"
	"repro/internal/weapon"
)

// The weapons platform: wapd accepts new detector classes ("weapons") at
// runtime, the paper's without-programming extension point promoted to a
// fleet service. POST /weapons runs the validation ladder —
//
//	ParseSpec → Spec.Validate → collision check against bundled class IDs
//	→ dry-run against a generated proof corpus with expected findings
//
// — and only a spec that passes every rung is admitted to the versioned
// registry, persisted to -weapons-dir, and swapped into service. The swap
// derives a NEW engine (base weapons + registry set, stamped with the
// registry revision) and atomically replaces the pointer new scans pick
// up; running scans keep the engine they started with. The revision is in
// the engine's config digest, so incremental result-store fingerprints
// rotate on every weapon change — a swap can never splice findings cached
// under a previous weapon set into a report. Each weapon class has its own
// circuit breaker (shared across swaps), so one pathological user weapon
// degrades to diagnostics instead of consuming the worker pool.

// maxWeaponBytes bounds an uploaded spec file (1 MiB — real specs are a
// few hundred bytes).
const maxWeaponBytes = 1 << 20

// weaponPlatform is the server-side state of the hot-reload pipeline.
type weaponPlatform struct {
	base     *core.Engine     // startup engine: derivation base, never swapped
	registry *weapon.Registry // admitted hot weapons, monotonic revision
	dir      string           // persistence directory ("" = memory only)

	// mu serializes the validation ladder, persistence and swap; the
	// engine pointer itself is read lock-free by scans via Server.engine.
	mu sync.Mutex

	// loadErrs records spec files that failed replay at startup (surfaced
	// in /healthz, never fatal: one bad file must not take the fleet down).
	loadErrs []string
}

// WeaponInfo is one entry of GET /weapons.
type WeaponInfo struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Revision is the registry revision that admitted this entry; Startup
	// weapons (builtin specs, -weapon flags) are fixed at 0 and cannot be
	// changed over HTTP.
	Revision   int64  `json:"revision"`
	Startup    bool   `json:"startup,omitempty"`
	AdmittedMS int64  `json:"admitted_ms,omitempty"`
	Sinks      int    `json:"sinks,omitempty"`
	Flag       string `json:"flag,omitempty"`
}

// WeaponsResponse is the body of GET /weapons and of a successful
// POST /weapons or DELETE /weapons/{name}.
type WeaponsResponse struct {
	// Revision is the registry revision after the operation; engines
	// serving new scans carry it in their config digest.
	Revision int64        `json:"revision"`
	Weapons  []WeaponInfo `json:"weapons"`
	// Admitted / Removed name the weapon the request changed.
	Admitted string `json:"admitted,omitempty"`
	Removed  string `json:"removed,omitempty"`
	// PersistError is set when the weapon is live but could not be written
	// to (or removed from) the weapons dir: it will not survive a restart.
	PersistError string `json:"persist_error,omitempty"`
}

// weaponError is the diagnostic body of a rejected upload: Stage names the
// validation rung that failed.
type weaponError struct {
	Error string `json:"error"`
	Stage string `json:"stage"`
}

// initWeapons wires the hot-reload platform into a new server and replays
// the weapons dir. Must run before the worker pool starts.
func (s *Server) initWeapons() error {
	reserved := make([]string, 0, 8)
	for _, id := range s.cfg.Engine.WeaponIDs() {
		reserved = append(reserved, string(id))
	}
	s.weapons = &weaponPlatform{
		base:     s.cfg.Engine,
		registry: weapon.NewRegistry(reserved),
		dir:      s.cfg.WeaponsDir,
	}
	s.engineVal.Store(s.cfg.Engine)
	if s.cfg.WeaponsDir == "" {
		return nil
	}
	if err := os.MkdirAll(s.cfg.WeaponsDir, 0o755); err != nil {
		return fmt.Errorf("server: weapons dir: %w", err)
	}
	ents, err := os.ReadDir(s.cfg.WeaponsDir)
	if err != nil {
		return fmt.Errorf("server: weapons dir: %w", err)
	}
	names := make([]string, 0, len(ents))
	for _, ent := range ents {
		if !ent.IsDir() && strings.HasSuffix(ent.Name(), ".weapon") {
			names = append(names, ent.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(s.cfg.WeaponsDir, name))
		if err != nil {
			s.weapons.loadErrs = append(s.weapons.loadErrs, name+": "+err.Error())
			continue
		}
		// Replay runs the same ladder as an upload: a spec that passed at
		// admission but fails now (e.g. the file was edited by hand) is
		// skipped and surfaced, never served.
		if _, _, werr := s.admitWeapon(string(data)); werr != nil {
			s.weapons.loadErrs = append(s.weapons.loadErrs, name+": "+werr.Error)
		}
	}
	return nil
}

// engine returns the engine new scans should use. Scans grab it once at
// job start; a concurrent swap affects only later jobs.
func (s *Server) engine() *core.Engine {
	return s.engineVal.Load()
}

// admitWeapon runs the full validation ladder on one uploaded spec and, on
// success, admits + persists + swaps. The returned weaponError carries the
// rejected rung for the response body.
func (s *Server) admitWeapon(source string) (*weapon.RegEntry, string, *weaponError) {
	wp := s.weapons
	wp.mu.Lock()
	defer wp.mu.Unlock()

	// Rung 1+2: parse (Spec.Validate runs inside ParseSpec, including the
	// bundled-class collision check).
	spec, err := weapon.ParseSpec(strings.NewReader(source))
	if err != nil {
		return nil, "", &weaponError{Error: err.Error(), Stage: "parse"}
	}
	// Rung 3: registry-level collision rules (any bundled class, reserved
	// startup names) — checked before the dry-run so the error names the
	// cheap cause first. Generate is repeated by Admit; doing it here keeps
	// a generation failure out of the dry-run rung.
	cand, err := weapon.Generate(*spec)
	if err != nil {
		return nil, "", &weaponError{Error: err.Error(), Stage: "generate"}
	}
	if err := wp.registry.CheckAdmissible(spec); err != nil {
		return nil, "", &weaponError{Error: err.Error(), Stage: "collision"}
	}

	// Rung 4: dry-run against the generated proof corpus on a candidate
	// engine containing the would-be weapon set. Revision 0 is fine here:
	// the candidate engine is discarded and the scan is storeless.
	hot, _ := wp.registry.Weapons()
	candSet := make([]*weapon.Weapon, 0, len(hot)+1)
	for _, w := range hot {
		if w.Class.ID != cand.Class.ID {
			candSet = append(candSet, w)
		}
	}
	candSet = append(candSet, cand)
	candEngine, err := wp.base.WithWeapons(0, candSet)
	if err != nil {
		return nil, "", &weaponError{Error: err.Error(), Stage: "collision"}
	}
	if err := candEngine.DryRunWeapon(s.forceCtx, cand); err != nil {
		return nil, "", &weaponError{Error: err.Error(), Stage: "dry-run"}
	}

	// Admission: version it in the registry.
	entry, err := wp.registry.Admit(spec, source)
	if err != nil {
		return nil, "", &weaponError{Error: err.Error(), Stage: "admit"}
	}

	// Persist (best-effort: the weapon is live either way; a failure only
	// costs restart survival and is reported to the caller).
	persistErr := ""
	if wp.dir != "" {
		path := filepath.Join(wp.dir, string(entry.Weapon.Class.ID)+".weapon")
		if err := atomicfile.WriteFile(path, []byte(source), 0o644); err != nil {
			persistErr = err.Error()
		}
	}

	if err := s.swapEngineLocked(); err != nil {
		// Roll the admission back: serving a set we cannot derive an
		// engine for would wedge every later swap.
		_, _ = wp.registry.Remove(string(entry.Weapon.Class.ID))
		return nil, "", &weaponError{Error: err.Error(), Stage: "swap"}
	}
	return entry, persistErr, nil
}

// removeWeapon deletes a hot weapon, unpersists it and swaps the engine.
func (s *Server) removeWeapon(name string) (bool, string, error) {
	wp := s.weapons
	wp.mu.Lock()
	defer wp.mu.Unlock()
	ok, err := wp.registry.Remove(name)
	if err != nil || !ok {
		return ok, "", err
	}
	persistErr := ""
	if wp.dir != "" {
		path := filepath.Join(wp.dir, strings.ToLower(name)+".weapon")
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			persistErr = err.Error()
		}
	}
	if err := s.swapEngineLocked(); err != nil {
		return true, persistErr, err
	}
	return true, persistErr, nil
}

// swapEngineLocked derives the engine for the registry's current set and
// revision and publishes it. Callers hold wp.mu.
func (s *Server) swapEngineLocked() error {
	wp := s.weapons
	hot, rev := wp.registry.Weapons()
	ne, err := wp.base.WithWeapons(rev, hot)
	if err != nil {
		return err
	}
	s.engineVal.Store(ne)
	return nil
}

// weaponsList snapshots the platform for GET /weapons: startup weapons
// first (revision 0), then hot entries sorted by name.
func (s *Server) weaponsList() WeaponsResponse {
	wp := s.weapons
	resp := WeaponsResponse{Revision: wp.registry.Revision()}
	hot := wp.registry.List()
	hotNames := make(map[string]bool, len(hot))
	for _, e := range hot {
		hotNames[string(e.Weapon.Class.ID)] = true
	}
	for _, id := range wp.base.WeaponIDs() {
		if hotNames[string(id)] {
			continue
		}
		resp.Weapons = append(resp.Weapons, WeaponInfo{Name: string(id), Startup: true})
	}
	for _, e := range hot {
		resp.Weapons = append(resp.Weapons, WeaponInfo{
			Name:        string(e.Weapon.Class.ID),
			Description: e.Weapon.Spec.Description,
			Revision:    e.Revision,
			AdmittedMS:  e.AdmittedAt.UnixMilli(),
			Sinks:       len(e.Weapon.Spec.Sinks),
			Flag:        e.Weapon.Flag(),
		})
	}
	return resp
}

// handleWeapons serves /weapons: GET lists, POST uploads a spec through
// the validation ladder.
func (s *Server) handleWeapons(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, s.weaponsList())
	case http.MethodPost:
		if s.draining.Load() {
			writeError(w, http.StatusServiceUnavailable, errDraining.Error())
			return
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxWeaponBytes))
		if err != nil {
			writeError(w, http.StatusRequestEntityTooLarge, "spec too large: "+err.Error())
			return
		}
		if len(bytes.TrimSpace(body)) == 0 {
			writeJSON(w, http.StatusBadRequest, weaponError{Error: "empty spec", Stage: "parse"})
			return
		}
		entry, persistErr, werr := s.admitWeapon(string(body))
		if werr != nil {
			code := http.StatusUnprocessableEntity
			if werr.Stage == "parse" {
				code = http.StatusBadRequest
			}
			if werr.Stage == "collision" || werr.Stage == "admit" {
				code = http.StatusConflict
			}
			writeJSON(w, code, werr)
			return
		}
		resp := s.weaponsList()
		resp.Admitted = string(entry.Weapon.Class.ID)
		resp.PersistError = persistErr
		writeJSON(w, http.StatusCreated, resp)
	default:
		writeError(w, http.StatusMethodNotAllowed, "GET or POST")
	}
}

// handleWeaponItem serves /weapons/{name}: GET returns the admitted spec
// source, DELETE removes the weapon and swaps it out of service.
func (s *Server) handleWeaponItem(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/weapons/")
	if name == "" || strings.Contains(name, "/") {
		writeError(w, http.StatusNotFound, "unknown weapon")
		return
	}
	switch r.Method {
	case http.MethodGet:
		e := s.weapons.registry.Get(name)
		if e == nil {
			writeError(w, http.StatusNotFound, "unknown weapon")
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = io.WriteString(w, e.Source)
	case http.MethodDelete:
		ok, persistErr, err := s.removeWeapon(name)
		if err != nil {
			writeError(w, http.StatusConflict, err.Error())
			return
		}
		if !ok {
			writeError(w, http.StatusNotFound, "unknown weapon")
			return
		}
		resp := s.weaponsList()
		resp.Removed = strings.ToLower(name)
		resp.PersistError = persistErr
		writeJSON(w, http.StatusOK, resp)
	default:
		writeError(w, http.StatusMethodNotAllowed, "GET or DELETE")
	}
}
