package dataset

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/ml"
	"repro/internal/symptom"
)

func TestGenerateNewLayout(t *testing.T) {
	d := Generate(Config{Seed: 1})
	if d.Len() != 256 {
		t.Fatalf("size = %d, want 256", d.Len())
	}
	if d.NumFeatures() != symptom.NumNewAttributes {
		t.Fatalf("features = %d, want %d", d.NumFeatures(), symptom.NumNewAttributes)
	}
	pos, neg := d.CountLabels()
	if pos != 128 || neg != 128 {
		t.Errorf("balance = %d FP / %d RV, want 128/128", pos, neg)
	}
}

func TestGenerateOriginalLayout(t *testing.T) {
	d := Generate(Config{Seed: 1, Original: true})
	if d.Len() != 76 {
		t.Fatalf("size = %d, want 76", d.Len())
	}
	if d.NumFeatures() != symptom.NumOriginalAttributes {
		t.Fatalf("features = %d, want %d", d.NumFeatures(), symptom.NumOriginalAttributes)
	}
	pos, neg := d.CountLabels()
	if pos != 32 || neg != 44 {
		t.Errorf("balance = %d FP / %d RV, want 32/44", pos, neg)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Seed: 7})
	b := Generate(Config{Seed: 7})
	if a.Len() != b.Len() {
		t.Fatal("lengths differ")
	}
	for i := range a.Instances {
		if a.Instances[i].Label != b.Instances[i].Label {
			t.Fatalf("instance %d differs", i)
		}
		for j := range a.Instances[i].Features {
			if a.Instances[i].Features[j] != b.Instances[i].Features[j] {
				t.Fatalf("instance %d feature %d differs", i, j)
			}
		}
	}
}

func TestGenerateNoDuplicatesNoAmbiguity(t *testing.T) {
	d := Generate(Config{Seed: 3})
	seen := make(map[string]bool)
	labelOf := make(map[string]bool)
	for _, in := range d.Instances {
		var b strings.Builder
		for _, f := range in.Features {
			if f != 0 {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
		key := b.String()
		full := key + map[bool]string{true: "F", false: "R"}[in.Label]
		if seen[full] {
			t.Fatalf("duplicate instance %s", full)
		}
		seen[full] = true
		if prev, ok := labelOf[key]; ok && prev != in.Label {
			t.Fatalf("ambiguous instance %s with both labels", key)
		}
		labelOf[key] = in.Label
	}
}

func TestGeneratedSetIsLearnable(t *testing.T) {
	// The paper's classifiers reach ~94% accuracy; ours must land in a
	// similar band on the generated set.
	d := Generate(Config{Seed: 42})
	cm, err := ml.CrossValidate(func() ml.Classifier { return &ml.LogisticRegression{} }, d, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	acc := cm.Compute().ACC
	if acc < 0.85 || acc > 1.0 {
		t.Errorf("LR 10-fold accuracy = %.3f, want in [0.85, 1.0]", acc)
	}
	if acc == 1.0 {
		t.Errorf("accuracy exactly 1.0: the set is trivially separable, unlike the paper's")
	}
}

func TestClassConditionalStructure(t *testing.T) {
	d := Generate(Config{Seed: 5})
	// Validation symptoms must be far more common in FP than in RV.
	// Consider every validation-category symptom.
	var typeIdxs []int
	for i, s := range symptom.Catalog() {
		if s.Category == symptom.Validation {
			typeIdxs = append(typeIdxs, i)
		}
	}
	if len(typeIdxs) == 0 {
		t.Fatal("catalog has no validation symptoms")
	}
	fpWith, rvWith, fpN, rvN := 0, 0, 0, 0
	for _, in := range d.Instances {
		has := false
		for _, i := range typeIdxs {
			if in.Features[i] != 0 {
				has = true
				break
			}
		}
		if in.Label {
			fpN++
			if has {
				fpWith++
			}
		} else {
			rvN++
			if has {
				rvWith++
			}
		}
	}
	fpRate := float64(fpWith) / float64(fpN)
	rvRate := float64(rvWith) / float64(rvN)
	if fpRate <= rvRate+0.3 {
		t.Errorf("validation symptom rates: FP %.2f vs RV %.2f — class structure too weak", fpRate, rvRate)
	}
}

func TestARFFRoundtrip(t *testing.T) {
	d := Generate(Config{Seed: 9, Size: 64})
	var buf bytes.Buffer
	if err := WriteARFF(&buf, "wap-fp", d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadARFF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != d.Len() || got.NumFeatures() != d.NumFeatures() {
		t.Fatalf("roundtrip shape: %dx%d vs %dx%d", got.Len(), got.NumFeatures(), d.Len(), d.NumFeatures())
	}
	for i := range d.Instances {
		if got.Instances[i].Label != d.Instances[i].Label {
			t.Fatalf("label %d differs", i)
		}
		for j := range d.Instances[i].Features {
			if got.Instances[i].Features[j] != d.Instances[i].Features[j] {
				t.Fatalf("feature %d/%d differs", i, j)
			}
		}
	}
	if len(got.AttrNames) != symptom.NumNewAttributes {
		t.Errorf("attr names = %d", len(got.AttrNames))
	}
}

func TestReadARFFErrors(t *testing.T) {
	cases := []string{
		"@relation r\n@attribute a {0,1}\n@attribute class {FP,RV}\n@data\n2,FP\n",
		"@relation r\n@attribute a {0,1}\n@attribute class {FP,RV}\n@data\n1,1,FP\n",
		"@relation r\n@attribute a {0,1}\n@attribute class {FP,RV}\n@data\n1,XX\n",
		"@relation r\nstray line\n@data\n",
	}
	for i, src := range cases {
		if _, err := ReadARFF(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestCustomSize(t *testing.T) {
	d := Generate(Config{Seed: 2, Size: 128})
	if d.Len() != 128 {
		t.Errorf("size = %d, want 128", d.Len())
	}
}
