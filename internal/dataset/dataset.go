// Package dataset builds and persists the training data of WAP's false
// positive predictor.
//
// The paper's data set (256 hand-labelled candidate vulnerabilities
// collected from 29 open-source applications) is not public, so this package
// provides a calibrated generative model of candidate-vulnerability symptom
// vectors: false positives exhibit validation / string-manipulation /
// SQL-shape symptoms; real vulnerabilities mostly exhibit bare
// concatenation. The generator reproduces the set's published structure —
// 256 instances, balanced classes, 61 attributes, noise eliminated by
// removing duplicate and ambiguous instances — which is what drives
// classifier behaviour in Table II.
package dataset

import (
	"math/rand"

	"repro/internal/ml"
	"repro/internal/symptom"
)

// symptom groups used by the generative model.
var (
	// Groups are ordered by real-world frequency; the sampler is skewed
	// toward the first entries.
	typeCheckSyms = []string{
		"is_numeric", "intval", "is_int", "ctype_digit", "is_string",
		"is_float", "ctype_alpha", "ctype_alnum", "is_double", "is_integer",
		"is_long", "is_real", "is_scalar",
	}
	issetSyms   = []string{"isset", "is_null", "empty"}
	patternSyms = []string{
		"preg_match", "ereg", "eregi", "strnatcmp", "strcmp", "strncmp",
		"strncasecmp", "strcasecmp", "preg_match_all",
	}
	listSyms      = []string{"white_list", "black_list"}
	errorExitSyms = []string{"error", "exit"}
	substrSyms    = []string{"substr", "preg_split", "str_split", "explode", "split", "spliti"}
	concatSyms    = []string{"concat", "implode", "join"}
	addCharSyms   = []string{"addchar", "str_pad"}
	replaceSyms   = []string{
		"str_replace", "preg_replace", "substr_replace", "str_ireplace",
		"preg_filter", "ereg_replace", "eregi_replace", "str_shuffle",
		"chunk_split",
	}
	trimSyms = []string{"trim", "rtrim", "ltrim"}
	sqlSyms  = []string{
		"complex_query", "numeric_entry_point", "from_clause",
		"agg_count", "agg_sum", "agg_avg", "agg_max", "agg_min",
	}
)

// Config parameterizes the generator.
type Config struct {
	// Size is the target instance count after noise elimination (default
	// 256, the paper's set).
	Size int
	// Seed makes generation deterministic.
	Seed int64
	// Original produces the WAP v2.1 layout: 15 coarse attributes built only
	// from the original symptom subset, sized 76 (32 FP + 44 RV) by default.
	Original bool
}

// Generate produces a labelled, deduplicated, balanced dataset in the
// new-WAP 60-feature layout (or the original 15-feature layout).
func Generate(cfg Config) *ml.Dataset {
	if cfg.Size == 0 {
		if cfg.Original {
			cfg.Size = 76
		} else {
			cfg.Size = 256
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 2016))

	var wantFP, wantRV int
	if cfg.Original {
		// WAP v2.1: 32 false positives, 44 real vulnerabilities.
		wantFP = cfg.Size * 32 / 76
		wantRV = cfg.Size - wantFP
	} else {
		wantFP = cfg.Size / 2
		wantRV = cfg.Size - wantFP
	}

	// Phase 1: generate a raw pool with margin (the paper's manual
	// collection before noise elimination).
	pool := make([]symptom.Vector, 0, cfg.Size*8)
	for i := 0; i < cfg.Size*8; i++ {
		label := i%2 == 0
		present := sampleSymptoms(rng, label, !cfg.Original)
		if cfg.Original {
			pool = append(pool, symptom.OriginalVectorFromSet(present, label))
		} else {
			pool = append(pool, symptom.NewVectorFromSet(present, label))
		}
	}

	// Phase 2: noise elimination — drop ambiguous attribute patterns (seen
	// with both labels) and duplicate instances.
	labels := make(map[string]map[bool]bool)
	for _, v := range pool {
		key := v.Key()[:len(v.Attrs)]
		if labels[key] == nil {
			labels[key] = make(map[bool]bool, 2)
		}
		labels[key][v.Label] = true
	}
	seen := make(map[string]bool)
	var fps, rvs []symptom.Vector
	for _, v := range pool {
		key := v.Key()[:len(v.Attrs)]
		if len(labels[key]) > 1 {
			continue // ambiguous
		}
		if seen[v.Key()] {
			continue // duplicate
		}
		seen[v.Key()] = true
		if v.Label {
			fps = append(fps, v)
		} else {
			rvs = append(rvs, v)
		}
	}

	// Phase 3: size the classes. The original-layout space (15 binary
	// attributes, original symptoms only) is small, so allow duplicates to
	// reach the published size when uniqueness runs out.
	d := &ml.Dataset{AttrNames: attrNames(cfg.Original)}
	add := func(vs []symptom.Vector, want int) {
		for i := 0; i < want; i++ {
			if len(vs) == 0 {
				break
			}
			d.Instances = append(d.Instances, ml.NewInstance(vs[i%len(vs)].Attrs, vs[i%len(vs)].Label))
		}
	}
	add(fps, wantFP)
	add(rvs, wantRV)
	d.Shuffle(rng)
	return d
}

// GeneratePairedViews draws one population of candidate symptom sets (with
// the full new-WAP vocabulary) and renders it under BOTH attribute layouts:
// the new 60-feature view and the original 15-attribute view. Used by the
// attribute-granularity ablation — the comparison is apples-to-apples
// because each instance pair comes from the same underlying code shape.
func GeneratePairedViews(seed int64, size int) (fine, coarse *ml.Dataset) {
	if size == 0 {
		size = 256
	}
	rng := rand.New(rand.NewSource(seed + 4032))

	type draw struct {
		present map[string]bool
		label   bool
	}
	pool := make([]draw, 0, size*8)
	for i := 0; i < size*8; i++ {
		label := i%2 == 0
		pool = append(pool, draw{present: sampleSymptoms(rng, label, true), label: label})
	}

	// Noise elimination in the fine view (the tool's own view of the data).
	labels := make(map[string]map[bool]bool)
	fineKey := func(d draw) string {
		v := symptom.NewVectorFromSet(d.present, d.label)
		return v.Key()[:len(v.Attrs)]
	}
	for _, d := range pool {
		k := fineKey(d)
		if labels[k] == nil {
			labels[k] = make(map[bool]bool, 2)
		}
		labels[k][d.label] = true
	}
	seen := make(map[string]bool)
	wantFP, wantRV := size/2, size-size/2
	nFP, nRV := 0, 0
	fine = &ml.Dataset{AttrNames: attrNames(false)}
	coarse = &ml.Dataset{AttrNames: attrNames(true)}
	for _, d := range pool {
		k := fineKey(d)
		if len(labels[k]) > 1 || seen[k] {
			continue
		}
		if d.label && nFP >= wantFP || !d.label && nRV >= wantRV {
			continue
		}
		seen[k] = true
		if d.label {
			nFP++
		} else {
			nRV++
		}
		fv := symptom.NewVectorFromSet(d.present, d.label)
		cv := symptom.OriginalVectorFromSet(d.present, d.label)
		fine.Instances = append(fine.Instances, ml.NewInstance(fv.Attrs, d.label))
		coarse.Instances = append(coarse.Instances, ml.NewInstance(cv.Attrs, d.label))
	}
	return fine, coarse
}

func attrNames(original bool) []string {
	if original {
		names := make([]string, symptom.NumOriginalAttributes)
		for a := symptom.AttrTypeChecking; a <= symptom.AttrAggregatedFunction; a++ {
			names[a-1] = a.String()
		}
		return names
	}
	cat := symptom.Catalog()
	names := make([]string, len(cat))
	for i, s := range cat {
		names[i] = s.Name
	}
	return names
}

// sampleSymptoms draws a symptom set from the class-conditional model.
//
// False positives (label true) are candidates the taint analyzer flags even
// though the code validates or rewrites the input: they show validation
// symptoms (type checks, isset guards, pattern control, white/black lists,
// guarded exits) and sanitizing string manipulation. Real vulnerabilities
// mostly show raw concatenation into the query/sink with few or no guards.
// sampleSymptoms draws one instance. newSymptoms enables the paper's
// enlarged symptom vocabulary; the original WAP's 76-instance set was
// collected with the old vocabulary only, so its generator disables it
// (instances guarded purely by new symptoms looked like bare flows to the
// old tool and were eliminated as ambiguous noise).
func sampleSymptoms(rng *rand.Rand, label, newSymptoms bool) map[string]bool {
	present := make(map[string]bool)
	// pickOne selects a group member with probability p. The choice within
	// the group is geometrically skewed toward the first entries: real code
	// overwhelmingly uses a handful of canonical functions (is_numeric,
	// isset, preg_match) and only rarely the exotic alternatives. Uniform
	// choice would make every instance unique noise that no tree-based
	// classifier could generalize from.
	pickOne := func(group []string, p float64) {
		if rng.Float64() >= p {
			return
		}
		idx := 0
		for idx < len(group)-1 && rng.Float64() < 0.35 {
			idx++
		}
		present[group[idx]] = true
	}

	// Both classes build strings.
	if rng.Float64() < 0.85 {
		present["concat"] = true
	}
	pickOne(concatSyms[1:], 0.10) // implode/join occasionally
	// Query-shaped symptoms occur in both classes (most candidates are
	// SQLI-like in the paper's corpus).
	pickOne([]string{"from_clause"}, 0.55)
	pickOne(sqlSyms[3:], 0.12) // aggregates
	pickOne([]string{"complex_query"}, 0.22)

	if label && newSymptoms && rng.Float64() < 0.30 {
		// New-symptom false positive: guarded by the symptoms the paper
		// added in the right-hand column of Table I (empty, is_integer,
		// preg_match_all, rtrim, ...). These are the 42 extra FPs only the
		// new version predicts; the enlarged 256-instance set exists to
		// teach the classifiers exactly these shapes.
		pickOne([]string{"empty", "is_null"}, 0.80)
		pickOne([]string{"is_integer", "is_long", "is_double", "is_scalar", "is_real"}, 0.65)
		pickOne([]string{"preg_match_all"}, 0.55)
		pickOne([]string{"rtrim", "ltrim"}, 0.55)
		pickOne([]string{"ltrim", "rtrim"}, 0.20)
		pickOne([]string{"explode", "preg_split", "str_split"}, 0.35)
		pickOne([]string{"implode", "join"}, 0.15)
		pickOne([]string{"numeric_entry_point"}, 0.45)
		pickOne(errorExitSyms, 0.40)
		return present
	}
	if label && rng.Float64() < 0.20 {
		// Pattern-control-only false positive: the input is validated by a
		// regular expression or string comparison with no type check —
		// a common idiom the classifiers must learn independently of the
		// dominant type-checking signal.
		present[patternSyms[0]] = true // preg_match et al.
		pickOne(patternSyms[1:], 0.25)
		pickOne(errorExitSyms, 0.65)
		pickOne(issetSyms, 0.25)
		pickOne(trimSyms, 0.20)
		pickOne([]string{"numeric_entry_point"}, 0.45)
		return present
	}
	if label {
		// False positive: validation and defensive string manipulation.
		pickOne(typeCheckSyms, 0.85)
		pickOne(typeCheckSyms, 0.40) // often two type checks
		pickOne(issetSyms, 0.70)
		pickOne(patternSyms, 0.50)
		pickOne(listSyms, 0.14)
		pickOne(errorExitSyms, 0.45)
		pickOne(substrSyms, 0.30)
		pickOne(replaceSyms, 0.50)
		pickOne(trimSyms, 0.35)
		pickOne(addCharSyms, 0.07)
		pickOne([]string{"numeric_entry_point"}, 0.45)
		// A minority of FPs look nearly bare: the paper found such cases
		// sanitized by programmer-written functions (vfront's "escape"), so
		// the only visible symptom is a string-replacement call. These are
		// the irreducible error that keeps classifiers below 100%.
		if rng.Float64() < 0.05 {
			bare := map[string]bool{"concat": true}
			if present["from_clause"] {
				bare["from_clause"] = true
			}
			if rng.Float64() < 0.75 {
				bare[replaceSyms[rng.Intn(2)]] = true
			} else {
				bare["trim"] = true
			}
			return bare
		}
	} else {
		// Real vulnerability: raw flows; occasional cosmetic manipulation.
		pickOne(typeCheckSyms, 0.015)
		pickOne(issetSyms, 0.06) // isset used for presence, not safety
		pickOne(patternSyms, 0.03)
		pickOne(errorExitSyms, 0.04)
		pickOne(substrSyms, 0.06)
		pickOne(replaceSyms, 0.05)
		pickOne(trimSyms, 0.10)
		pickOne([]string{"numeric_entry_point"}, 0.30)
	}
	return present
}
