package dataset

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/ml"
)

// WriteARFF serializes the dataset in WEKA's ARFF format, the format the
// paper's data-mining pipeline consumed. Features are nominal {0,1} and the
// class is {FP,RV}.
func WriteARFF(w io.Writer, name string, d *ml.Dataset) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "@relation %s\n\n", arffEscape(name))
	for i := 0; i < d.NumFeatures(); i++ {
		attr := fmt.Sprintf("a%d", i)
		if i < len(d.AttrNames) && d.AttrNames[i] != "" {
			attr = d.AttrNames[i]
		}
		fmt.Fprintf(bw, "@attribute %s {0,1}\n", arffEscape(attr))
	}
	fmt.Fprintf(bw, "@attribute class {FP,RV}\n\n@data\n")
	for _, in := range d.Instances {
		for _, f := range in.Features {
			if f != 0 {
				bw.WriteString("1,")
			} else {
				bw.WriteString("0,")
			}
		}
		if in.Label {
			bw.WriteString("FP\n")
		} else {
			bw.WriteString("RV\n")
		}
	}
	return bw.Flush()
}

// ReadARFF parses a dataset previously written by WriteARFF (a pragmatic
// subset of ARFF: nominal {0,1} attributes and a final {FP,RV} class).
func ReadARFF(r io.Reader) (*ml.Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	d := &ml.Dataset{}
	inData := false
	var nAttrs int
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		lower := strings.ToLower(line)
		switch {
		case strings.HasPrefix(lower, "@relation"):
		case strings.HasPrefix(lower, "@attribute"):
			fields := strings.Fields(line)
			if len(fields) < 2 {
				return nil, fmt.Errorf("dataset: line %d: malformed @attribute", lineNo)
			}
			name := unescapeARFF(fields[1])
			if strings.EqualFold(name, "class") {
				continue // class column handled positionally
			}
			d.AttrNames = append(d.AttrNames, name)
			nAttrs++
		case strings.HasPrefix(lower, "@data"):
			inData = true
		default:
			if !inData {
				return nil, fmt.Errorf("dataset: line %d: unexpected %q before @data", lineNo, line)
			}
			parts := strings.Split(line, ",")
			if len(parts) != nAttrs+1 {
				return nil, fmt.Errorf("dataset: line %d: %d values, want %d", lineNo, len(parts), nAttrs+1)
			}
			in := ml.Instance{Features: make([]float64, nAttrs)}
			for i := 0; i < nAttrs; i++ {
				switch strings.TrimSpace(parts[i]) {
				case "1":
					in.Features[i] = 1
				case "0":
				default:
					return nil, fmt.Errorf("dataset: line %d: non-binary value %q", lineNo, parts[i])
				}
			}
			switch strings.TrimSpace(parts[nAttrs]) {
			case "FP":
				in.Label = true
			case "RV":
			default:
				return nil, fmt.Errorf("dataset: line %d: unknown class %q", lineNo, parts[nAttrs])
			}
			d.Instances = append(d.Instances, in)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: read: %w", err)
	}
	return d, nil
}

func arffEscape(s string) string {
	if strings.ContainsAny(s, " \t") {
		return "'" + strings.ReplaceAll(s, "'", "\\'") + "'"
	}
	return s
}

func unescapeARFF(s string) string {
	s = strings.Trim(s, "'")
	return strings.ReplaceAll(s, "\\'", "'")
}
