package intern

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"unsafe"
)

// sameBacking reports whether two equal strings share a backing array — the
// observable effect of interning.
func sameBacking(a, b string) bool {
	return unsafe.StringData(a) == unsafe.StringData(b)
}

func TestInternCanonicalizes(t *testing.T) {
	tab := NewTable()
	a := tab.Intern("mysql_query")
	b := tab.Intern(strings.Clone("mysql_query"))
	if a != b {
		t.Fatalf("interned values differ: %q vs %q", a, b)
	}
	if !sameBacking(a, b) {
		t.Error("second Intern of an equal string did not return the canonical copy")
	}
	if tab.Len() != 1 {
		t.Errorf("Len = %d, want 1", tab.Len())
	}
}

func TestLowerMatchesToLower(t *testing.T) {
	tab := NewTable()
	inputs := []string{"", "abc", "MyClass", "MYSQL_Query", "åÄ", "mixed_Case_123", "ALL_UPPER"}
	for _, in := range inputs {
		if got, want := tab.Lower(in), strings.ToLower(in); got != want {
			t.Errorf("Lower(%q) = %q, want %q", in, got, want)
		}
	}
	// Memoized by spelling: the second call returns the same canonical copy.
	first := tab.Lower("MyClass")
	second := tab.Lower("MyClass")
	if !sameBacking(first, second) {
		t.Error("repeated Lower of the same spelling did not reuse the canonical copy")
	}
}

func TestNilTableFallsBack(t *testing.T) {
	var tab *Table
	if got := tab.Intern("x"); got != "x" {
		t.Errorf("nil Intern = %q", got)
	}
	if got := tab.Lower("ABC"); got != "abc" {
		t.Errorf("nil Lower = %q", got)
	}
	if tab.Len() != 0 {
		t.Errorf("nil Len = %d", tab.Len())
	}
}

// TestConcurrentIntern exercises the sharded locking under the race detector:
// many goroutines interning and lowering an overlapping working set must
// agree on canonical copies and never duplicate entries.
func TestConcurrentIntern(t *testing.T) {
	tab := NewTable()
	const (
		goroutines = 8
		names      = 200
	)
	var wg sync.WaitGroup
	results := make([][]string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := make([]string, 0, names*2)
			for i := 0; i < names; i++ {
				// Fresh copies per goroutine so canonicalization is observable.
				out = append(out, tab.Intern(fmt.Sprintf("name_%d", i)))
				out = append(out, tab.Lower(fmt.Sprintf("Name_%d", i)))
			}
			for i := 0; i < names; i++ {
				if want := fmt.Sprintf("name_%d", i); out[2*i] != want || out[2*i+1] != want {
					t.Errorf("goroutine %d: got (%q, %q), want %q", g, out[2*i], out[2*i+1], want)
					return
				}
			}
			results[g] = out
		}(g)
	}
	wg.Wait()
	// All goroutines must hold the same canonical copies.
	for g := 1; g < goroutines; g++ {
		for i := range results[0] {
			if !sameBacking(results[0][i], results[g][i]) {
				t.Fatalf("goroutine %d holds a non-canonical copy of %q", g, results[0][i])
			}
		}
	}
	if tab.Len() != names {
		t.Errorf("Len = %d, want %d (lowered forms must dedupe into the same canon)", tab.Len(), names)
	}
}

// TestLowerHitDoesNotAllocate pins the hot-path contract: lowering a spelling
// the table has seen before performs no allocation.
func TestLowerHitDoesNotAllocate(t *testing.T) {
	tab := NewTable()
	tab.Lower("MyClass")
	tab.Intern("plainname")
	allocs := testing.AllocsPerRun(100, func() {
		tab.Lower("MyClass")
		tab.Intern("plainname")
		tab.Lower("plainname")
	})
	if allocs != 0 {
		t.Errorf("warm Lower/Intern allocated %v times per run, want 0", allocs)
	}
}
