// Package intern provides project-scoped string interning for the parse
// front end.
//
// A Table canonicalizes strings that repeat heavily across the files of one
// project — identifier spellings, lowered callable names, class names — so
// that (a) repeated lowering of the same mixed-case spelling allocates once
// per project instead of once per occurrence, and (b) the project's index
// maps key into shared canonical strings instead of thousands of private
// copies.
//
// Invariants:
//
//   - A Table is safe for concurrent use: the parallel loader hands one
//     table to every parse worker. Sharded locking keeps contention low.
//   - Interned strings are canonical copies with project lifetime: a table
//     must not outlive the project it was built for (it pins every string
//     ever interned), and strings sliced from file sources may be interned
//     freely — the table stores the slice, which pins the source, which the
//     project's SourceFile pins anyway.
//   - Interning never changes bytes: Intern(s) == s and Lower(s) ==
//     strings.ToLower(s) for every input, so reports are byte-identical with
//     or without a table.
//
// The zero value of *Table (nil) is valid and disables interning: every
// method falls back to the allocation-per-call behaviour.
package intern

import (
	"strings"
	"sync"
)

// shardCount spreads lock contention across the table; must be a power of
// two. 16 shards keep a default 8-worker parse pool essentially uncontended.
const shardCount = 16

// Table is a concurrency-safe string interner. Create one per project load
// with NewTable; the nil table is valid and interns nothing.
type Table struct {
	shards [shardCount]shard
}

type shard struct {
	mu sync.Mutex
	// canon maps a string to its canonical copy.
	canon map[string]string
	// lowered maps an original spelling to the canonical copy of its
	// lower-case form, so Lower("MyClass") stops allocating after the first
	// occurrence of that exact spelling.
	lowered map[string]string
}

// NewTable returns an empty interner.
func NewTable() *Table {
	t := &Table{}
	for i := range t.shards {
		t.shards[i].canon = make(map[string]string)
		t.shards[i].lowered = make(map[string]string)
	}
	return t
}

// fnv1a hashes s without allocating (inlined FNV-1a, the stdlib's
// hash/fnv only takes []byte).
func fnv1a(s string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime32
	}
	return h
}

func (t *Table) shard(s string) *shard {
	return &t.shards[fnv1a(s)&(shardCount-1)]
}

// Intern returns the canonical copy of s, storing s as that copy on first
// sight. Safe for concurrent use; nil tables return s unchanged.
func (t *Table) Intern(s string) string {
	if t == nil || s == "" {
		return s
	}
	sh := t.shard(s)
	sh.mu.Lock()
	c, ok := sh.canon[s]
	if !ok {
		c = s
		sh.canon[s] = s
	}
	sh.mu.Unlock()
	return c
}

// Lower returns the canonical lower-case form of s, memoized by original
// spelling: the first Lower("MyClass") pays one strings.ToLower, every later
// one is a map hit. Already-lower ASCII strings intern directly. Safe for
// concurrent use; nil tables behave like strings.ToLower.
func (t *Table) Lower(s string) string {
	if t == nil {
		return strings.ToLower(s)
	}
	if isLowerASCII(s) {
		return t.Intern(s)
	}
	sh := t.shard(s)
	sh.mu.Lock()
	if c, ok := sh.lowered[s]; ok {
		sh.mu.Unlock()
		return c
	}
	sh.mu.Unlock()
	// ToLower outside the lock: it allocates, and another goroutine lowering
	// the same spelling concurrently just produces an equal string that
	// Intern canonicalizes.
	low := t.Intern(strings.ToLower(s))
	sh.mu.Lock()
	sh.lowered[s] = low
	sh.mu.Unlock()
	return low
}

// Len reports the number of canonical strings stored (diagnostic; consistent
// only when no concurrent writers are active).
func (t *Table) Len() int {
	if t == nil {
		return 0
	}
	n := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		n += len(sh.canon)
		sh.mu.Unlock()
	}
	return n
}

// isLowerASCII reports whether s contains no upper-case ASCII and no
// non-ASCII bytes — i.e. strings.ToLower(s) == s without allocating.
func isLowerASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'A' && c <= 'Z' || c >= 0x80 {
			return false
		}
	}
	return true
}
