package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/core"
)

// TextOptions tunes WriteText.
type TextOptions struct {
	// ShowFP also lists candidates predicted to be false positives.
	ShowFP bool
	// Justify, when set, renders the predictor's reasoning next to each
	// listed false positive (typically core.Engine.Justify).
	Justify func(*core.Finding) string
	// Stats appends the scan-statistics block.
	Stats bool
}

// WriteText renders the report as the human-readable terminal listing used
// by cmd/wap: grouped findings, stored-XSS chains, diagnostics, the summary
// line and per-group counts. It returns the deduplicated vulnerability and
// false positive counts so callers can derive exit codes without re-grouping.
func WriteText(w io.Writer, rep *core.Report, opts TextOptions) (nVuln, nFP int) {
	grouped := Group(rep)
	for _, gf := range grouped {
		if gf.PredictedFP {
			nFP++
			if opts.ShowFP {
				fmt.Fprintf(w, "  [predicted FP] %-6s %s:%d\n", gf.Group, gf.File, gf.Line)
				if opts.Justify != nil {
					fmt.Fprintf(w, "                 why: %s\n", opts.Justify(gf.Findings[0]))
				}
			}
			continue
		}
		nVuln++
		f := gf.Findings[0]
		src := "?"
		if len(f.Candidate.Value.Sources) > 0 {
			src = f.Candidate.Value.Sources[0].Name
		}
		fmt.Fprintf(w, "  [%s] %s:%d  %s -> %s\n", gf.Group, gf.File, gf.Line, src, f.Candidate.SinkName)
	}
	for _, l := range rep.StoredLinks {
		fmt.Fprintf(w, "  [stored-XSS chain] table %s: write %s:%d -> read %s:%d\n",
			strings.ToLower(l.Table), l.Write.File, l.Write.SinkPos.Line,
			l.Read.File, l.Read.SinkPos.Line)
	}

	if len(rep.Diagnostics) > 0 {
		fmt.Fprintf(w, "\ndiagnostics (%d) — not analyzed:\n", len(rep.Diagnostics))
		for _, d := range rep.Diagnostics {
			fmt.Fprintf(w, "  %s\n", d)
		}
	}

	fmt.Fprintf(w, "\n%d vulnerabilities, %d predicted false positives (%.0f ms)\n",
		nVuln, nFP, float64(rep.Duration.Milliseconds()))

	byGroup := make(map[string]int)
	for _, gf := range grouped {
		if !gf.PredictedFP {
			byGroup[string(gf.Group)]++
		}
	}
	groups := make([]string, 0, len(byGroup))
	for g := range byGroup {
		groups = append(groups, g)
	}
	sort.Strings(groups)
	for _, g := range groups {
		fmt.Fprintf(w, "  %-8s %d\n", g, byGroup[g])
	}

	if opts.Stats {
		if out := RenderStats(rep.Stats); out != "" {
			fmt.Fprintf(w, "\n%s", out)
		}
	}
	return nVuln, nFP
}
