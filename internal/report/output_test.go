package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const outputTestSrc = `<?php
mysql_query("SELECT * FROM t WHERE id=" . $_GET['id']);
$v = $_GET['v'];
if (!is_numeric($v)) { exit; }
mysql_query("SELECT * FROM t WHERE n=" . $v);
`

func TestJSONOutput(t *testing.T) {
	rep := analyzed(t, outputTestSrc)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var decoded JSONReport
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if decoded.Mode != "WAPe" || decoded.Files != 1 {
		t.Errorf("header = %+v", decoded)
	}
	if decoded.Vulnerabilities != 1 || decoded.FalsePositives != 1 {
		t.Errorf("counts = %d vulns / %d fps", decoded.Vulnerabilities, decoded.FalsePositives)
	}
	if len(decoded.Findings) != 2 {
		t.Fatalf("findings = %d", len(decoded.Findings))
	}
	var fp *JSONFinding
	for i := range decoded.Findings {
		if decoded.Findings[i].PredictedFP {
			fp = &decoded.Findings[i]
		}
	}
	if fp == nil {
		t.Fatal("no predicted FP in JSON")
	}
	joined := strings.Join(fp.Symptoms, ",")
	if !strings.Contains(joined, "is_numeric") {
		t.Errorf("fp symptoms = %v", fp.Symptoms)
	}
	if len(fp.Trace) == 0 || len(fp.Sources) == 0 {
		t.Errorf("fp = %+v", fp)
	}
}

func TestHTMLOutput(t *testing.T) {
	rep := analyzed(t, outputTestSrc)
	var buf bytes.Buffer
	if err := WriteHTML(&buf, rep); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<!DOCTYPE html>", "Vulnerabilities (1)", "Predicted false positives (1)",
		"mysql_query", "SQLI", "is_numeric", "entry point $_GET[id]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("HTML missing %q", want)
		}
	}
}

func TestHTMLEscaping(t *testing.T) {
	// Attacker-controlled strings in findings must be escaped in the report
	// (otherwise the report itself becomes an XSS vector).
	src := `<?php echo $_GET['<script>alert(1)</script>'];`
	rep := analyzed(t, src)
	var buf bytes.Buffer
	if err := WriteHTML(&buf, rep); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "<script>alert(1)</script>") {
		t.Error("unescaped attacker content in HTML report")
	}
	if !strings.Contains(buf.String(), "&lt;script&gt;") {
		t.Error("escaped form missing")
	}
}

func TestJSONEmptyReport(t *testing.T) {
	rep := analyzed(t, `<?php echo "static";`)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var decoded JSONReport
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Vulnerabilities != 0 || len(decoded.Findings) != 0 {
		t.Errorf("empty report = %+v", decoded)
	}
}
