package report

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
)

func TestDiffReportsFixedVersion(t *testing.T) {
	eng, err := core.New(core.Options{Mode: core.ModeWAPe, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Train(); err != nil {
		t.Fatal(err)
	}
	oldSrc := `<?php
mysql_query("SELECT a FROM t WHERE x=" . $_GET['x']);
echo $_GET['msg'];
header("Location: " . $_GET['next']);
`
	// The new version fixes the XSS and adds an OSCI bug.
	newSrc := `<?php
mysql_query("SELECT a FROM t WHERE x=" . $_GET['x']);
echo htmlspecialchars($_GET['msg']);
header("Location: " . $_GET['next']);
system("ls " . $_POST['dir']);
`
	repOld, err := eng.Analyze(core.LoadMap("v1", map[string]string{"app.php": oldSrc}))
	if err != nil {
		t.Fatal(err)
	}
	repNew, err := eng.Analyze(core.LoadMap("v2", map[string]string{"app.php": newSrc}))
	if err != nil {
		t.Fatal(err)
	}
	d := DiffFindings(Group(repOld), Group(repNew))
	if d.Common != 2 { // SQLI and HI at identical lines
		t.Errorf("common = %d, want 2", d.Common)
	}
	if d.PerGroup[corpus.GroupXSS] != -1 {
		t.Errorf("XSS delta = %d, want -1", d.PerGroup[corpus.GroupXSS])
	}
	if d.PerGroup[corpus.GroupOSCI] != +1 {
		t.Errorf("OSCI delta = %d, want +1", d.PerGroup[corpus.GroupOSCI])
	}
	out := d.Render("v1", "v2")
	if !strings.Contains(out, "added: 1") || !strings.Contains(out, "removed: 1") {
		t.Errorf("render:\n%s", out)
	}
}

// TestDiffClipBucketVersions reproduces the paper's own version comparison:
// Clip Bucket 2.8 adds 4 SQL injections over 2.7.0.4 while the other
// classes stay at the same counts.
func TestDiffClipBucketVersions(t *testing.T) {
	eng, err := core.New(core.Options{Mode: core.ModeWAPe, Seed: 2016})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Train(); err != nil {
		t.Fatal(err)
	}
	suite := corpus.WebAppSuite(2016)
	var oldApp, newApp *corpus.App
	for _, a := range suite {
		if a.Name == "Clip Bucket" && a.Version == "2.7.0.4" {
			oldApp = a
		}
		if a.Name == "Clip Bucket" && a.Version == "2.8" {
			newApp = a
		}
	}
	if oldApp == nil || newApp == nil {
		t.Fatal("Clip Bucket versions missing from corpus")
	}
	repOld, err := eng.Analyze(core.LoadMap("cb-2.7.0.4", oldApp.Files))
	if err != nil {
		t.Fatal(err)
	}
	repNew, err := eng.Analyze(core.LoadMap("cb-2.8", newApp.Files))
	if err != nil {
		t.Fatal(err)
	}
	d := DiffFindings(Group(repOld), Group(repNew))
	// "the most recent version of Clip Bucket contains more 4 SQLI and the
	// same 22 vulnerabilities than the previous version"
	if d.PerGroup[corpus.GroupSQLI] != 4 {
		t.Errorf("SQLI delta = %d, want +4 (paper Section V-A)", d.PerGroup[corpus.GroupSQLI])
	}
	for _, g := range []corpus.Group{corpus.GroupXSS, corpus.GroupFiles, corpus.GroupSCD} {
		// Per-class totals are unchanged; the generator may place them at
		// different lines, so only the aggregate delta must be zero.
		if d.PerGroup[g] != 0 {
			t.Errorf("%s delta = %d, want 0", g, d.PerGroup[g])
		}
	}
}

func TestDiffEmpty(t *testing.T) {
	d := DiffFindings(nil, nil)
	if d.Common != 0 || len(d.Added) != 0 || len(d.Removed) != 0 || len(d.PerGroup) != 0 {
		t.Errorf("empty diff = %+v", d)
	}
}
