package report

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/taint"
)

// Diff compares the confirmed vulnerabilities of two analysis runs —
// typically two versions of the same application, the comparison the paper
// itself makes between Clip Bucket 2.7.0.4 and 2.8 ("the most recent
// version contains 4 more SQLI and the same 22 vulnerabilities").
type Diff struct {
	// Added are findings present only in the new run (matched by group,
	// file, sink and line).
	Added []GroupedFinding
	// Removed are findings present only in the old run.
	Removed []GroupedFinding
	// Common counts findings present in both.
	Common int
	// PerGroup is the per-group count delta (new minus old), robust to code
	// movement that shifts line numbers.
	PerGroup map[corpus.Group]int
}

// DiffFindings compares two sets of grouped findings. Predicted false
// positives are excluded: the diff is about reported vulnerabilities.
func DiffFindings(old, new []GroupedFinding) *Diff {
	key := func(gf GroupedFinding) string {
		sink := ""
		if len(gf.Findings) > 0 {
			sink = gf.Findings[0].Candidate.SinkName
		}
		return fmt.Sprintf("%s|%s|%d|%s", gf.Group, gf.File, gf.Line, sink)
	}
	d := &Diff{PerGroup: make(map[corpus.Group]int)}
	oldSet := make(map[string]int)
	for _, gf := range old {
		if gf.PredictedFP {
			continue
		}
		oldSet[key(gf)]++
		d.PerGroup[gf.Group]--
	}
	for _, gf := range new {
		if gf.PredictedFP {
			continue
		}
		d.PerGroup[gf.Group]++
		k := key(gf)
		if oldSet[k] > 0 {
			oldSet[k]--
			d.Common++
			continue
		}
		d.Added = append(d.Added, gf)
	}
	// Whatever remains unmatched in the old set was removed.
	remaining := make(map[string]int, len(oldSet))
	for k, n := range oldSet {
		remaining[k] = n
	}
	for _, gf := range old {
		if gf.PredictedFP {
			continue
		}
		k := key(gf)
		if remaining[k] > 0 {
			remaining[k]--
			d.Removed = append(d.Removed, gf)
		}
	}
	for g, n := range d.PerGroup {
		if n == 0 {
			delete(d.PerGroup, g)
		}
	}
	return d
}

// GroupedFromJSON reconstructs grouped findings from a serialized report, so
// a live scan can be diffed against a JSON baseline (wap -diff, the wapd
// per-project baseline). Only the fields DiffFindings keys on — group, file,
// line, sink, FP prediction — are rebuilt; the fabricated findings carry no
// AST state.
func GroupedFromJSON(jr *JSONReport) []GroupedFinding {
	out := make([]GroupedFinding, 0, len(jr.Findings))
	for _, jf := range jr.Findings {
		gf := GroupedFinding{
			Group:       corpus.Group(jf.Group),
			File:        jf.File,
			Line:        jf.Line,
			PredictedFP: jf.PredictedFP,
		}
		cand := &taint.Candidate{SinkName: jf.Sink, File: jf.File}
		gf.Findings = []*core.Finding{{Candidate: cand, PredictedFP: jf.PredictedFP, Weapon: jf.Weapon}}
		out = append(out, gf)
	}
	return out
}

// JSONDiffEntry is one added or removed finding in a serialized diff.
type JSONDiffEntry struct {
	Group string `json:"group"`
	File  string `json:"file"`
	Line  int    `json:"line"`
	Sink  string `json:"sink,omitempty"`
}

// JSONDiff is the machine-readable form of a Diff, carried in wapd scan
// responses when a baseline exists: findings new since the baseline, findings
// the baseline had that are now gone (fixed), and the persisting count.
type JSONDiff struct {
	New        []JSONDiffEntry `json:"new,omitempty"`
	Fixed      []JSONDiffEntry `json:"fixed,omitempty"`
	Persisting int             `json:"persisting"`
	// PerGroup is the per-group count delta (new minus old).
	PerGroup map[string]int `json:"per_group,omitempty"`
}

// ToJSONDiff converts a Diff into its machine-readable form.
func ToJSONDiff(d *Diff) *JSONDiff {
	entry := func(gf GroupedFinding) JSONDiffEntry {
		e := JSONDiffEntry{Group: string(gf.Group), File: gf.File, Line: gf.Line}
		if len(gf.Findings) > 0 {
			e.Sink = gf.Findings[0].Candidate.SinkName
		}
		return e
	}
	out := &JSONDiff{Persisting: d.Common}
	for _, gf := range d.Added {
		out.New = append(out.New, entry(gf))
	}
	for _, gf := range d.Removed {
		out.Fixed = append(out.Fixed, entry(gf))
	}
	if len(d.PerGroup) > 0 {
		out.PerGroup = make(map[string]int, len(d.PerGroup))
		for g, n := range d.PerGroup {
			out.PerGroup[string(g)] = n
		}
	}
	return out
}

// Render prints the diff in a compact report.
func (d *Diff) Render(oldName, newName string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Vulnerability diff: %s -> %s\n", oldName, newName)
	fmt.Fprintf(&b, "  unchanged: %d, added: %d, removed: %d\n",
		d.Common, len(d.Added), len(d.Removed))
	if len(d.PerGroup) > 0 {
		groups := make([]string, 0, len(d.PerGroup))
		for g := range d.PerGroup {
			groups = append(groups, string(g))
		}
		sort.Strings(groups)
		b.WriteString("  per class:")
		for _, g := range groups {
			fmt.Fprintf(&b, " %s%+d", g, d.PerGroup[corpus.Group(g)])
		}
		b.WriteString("\n")
	}
	for _, gf := range d.Added {
		fmt.Fprintf(&b, "  + [%s] %s:%d\n", gf.Group, gf.File, gf.Line)
	}
	for _, gf := range d.Removed {
		fmt.Fprintf(&b, "  - [%s] %s:%d\n", gf.Group, gf.File, gf.Line)
	}
	return b.String()
}
