package report

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/vuln"
)

func TestGroupOfCoversAllClasses(t *testing.T) {
	for _, c := range vuln.All() {
		g := GroupOf(c.ID)
		if g == "" {
			t.Errorf("class %s has empty group", c.ID)
		}
	}
	// Grouping collapses related classes.
	if GroupOf(vuln.RFI) != GroupOf(vuln.LFI) || GroupOf(vuln.LFI) != GroupOf(vuln.DTPT) {
		t.Error("RFI/LFI/DT must share the Files group")
	}
	if GroupOf(vuln.XSSR) != GroupOf(vuln.XSSS) {
		t.Error("reflected and stored XSS must share the XSS group")
	}
	if GroupOf(vuln.HI) != GroupOf(vuln.EI) || GroupOf("hei") != GroupOf(vuln.HI) {
		t.Error("HI/EI/hei must share the HI group")
	}
	if GroupOf(vuln.SQLI) != GroupOf(vuln.WPSQLI) {
		t.Error("native and WordPress SQLI must share the SQLI group")
	}
	if GroupOf("custom-weapon") != corpus.Group("CUSTOM-WEAPON") {
		t.Errorf("unknown classes fall back to upper-cased id: %s", GroupOf("custom-weapon"))
	}
}

func analyzed(t *testing.T, src string) *core.Report {
	t.Helper()
	eng, err := core.New(core.Options{Mode: core.ModeWAPe, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Train(); err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Analyze(core.LoadMap("r", map[string]string{"x.php": src}))
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestGroupDeduplicatesOverlappingDetectors(t *testing.T) {
	// include() is a sink for both RFI and LFI: one grouped entry.
	rep := analyzed(t, `<?php include($_GET['page'] . ".php");`)
	if len(rep.Findings) < 2 {
		t.Fatalf("raw findings = %d, want >= 2 (RFI + LFI)", len(rep.Findings))
	}
	grouped := Group(rep)
	filesEntries := 0
	for _, gf := range grouped {
		if gf.Group == corpus.GroupFiles {
			filesEntries++
			if len(gf.Findings) < 2 {
				t.Errorf("grouped entry should merge both detectors, has %d", len(gf.Findings))
			}
		}
	}
	if filesEntries != 1 {
		t.Errorf("Files entries = %d, want 1", filesEntries)
	}
}

func TestGroupOrderStable(t *testing.T) {
	rep := analyzed(t, `<?php
echo $_GET['b'];
mysql_query("SELECT " . $_GET['a']);`)
	g1 := Group(rep)
	g2 := Group(rep)
	if len(g1) != len(g2) {
		t.Fatal("unstable grouping")
	}
	for i := range g1 {
		if g1[i].File != g2[i].File || g1[i].Line != g2[i].Line || g1[i].Group != g2[i].Group {
			t.Fatal("unstable ordering")
		}
	}
	// Sorted by file, then line.
	for i := 1; i < len(g1); i++ {
		if g1[i-1].File == g1[i].File && g1[i-1].Line > g1[i].Line {
			t.Error("entries not sorted by line")
		}
	}
}

func TestScoreAppMatching(t *testing.T) {
	app := &corpus.App{
		Name: "t", Version: "1",
		Files: map[string]string{"a.php": "<?php\n// 1\n// 2\n// 3\n"},
		Spots: []corpus.Spot{
			{Group: corpus.GroupSQLI, File: "a.php", StartLine: 1, EndLine: 2, Vulnerable: true},
			{Group: corpus.GroupSQLI, File: "a.php", StartLine: 3, EndLine: 4, Vulnerable: false, FP: corpus.FPOriginalSymptoms},
		},
	}
	findings := []GroupedFinding{
		{Group: corpus.GroupSQLI, File: "a.php", Line: 2, PredictedFP: false},
		{Group: corpus.GroupSQLI, File: "a.php", Line: 4, PredictedFP: true},
		{Group: corpus.GroupXSS, File: "a.php", Line: 2, PredictedFP: false}, // no matching spot
	}
	s := ScoreApp(app, findings)
	if s.DetectedVulns[corpus.GroupSQLI] != 1 {
		t.Errorf("detected = %v", s.DetectedVulns)
	}
	if s.PredictedFP != 1 || s.UnpredictedFP != 0 {
		t.Errorf("fpp/fp = %d/%d", s.PredictedFP, s.UnpredictedFP)
	}
	if s.Spurious != 1 {
		t.Errorf("spurious = %d", s.Spurious)
	}
	if s.MissedVulns != 0 {
		t.Errorf("missed = %d", s.MissedVulns)
	}
	if s.TotalDetected() != 1 {
		t.Errorf("total = %d", s.TotalDetected())
	}
}

func TestScoreAppMissedAndMisclassified(t *testing.T) {
	app := &corpus.App{
		Files: map[string]string{"a.php": "<?php\n\n\n\n"},
		Spots: []corpus.Spot{
			{Group: corpus.GroupXSS, File: "a.php", StartLine: 1, EndLine: 1, Vulnerable: true},
			{Group: corpus.GroupXSS, File: "a.php", StartLine: 2, EndLine: 2, Vulnerable: true},
			{Group: corpus.GroupSQLI, File: "a.php", StartLine: 3, EndLine: 3, Vulnerable: false, FP: corpus.FPCustomSanitizer},
		},
	}
	findings := []GroupedFinding{
		// First vuln predicted FP: a missed vulnerability.
		{Group: corpus.GroupXSS, File: "a.php", Line: 1, PredictedFP: true},
		// Second vuln not found at all: also missed.
		// FP spot reported as vuln: unpredicted FP.
		{Group: corpus.GroupSQLI, File: "a.php", Line: 3, PredictedFP: false},
	}
	s := ScoreApp(app, findings)
	if s.MissedVulns != 2 {
		t.Errorf("missed = %d, want 2", s.MissedVulns)
	}
	if s.UnpredictedFP != 1 {
		t.Errorf("unpredicted fp = %d, want 1", s.UnpredictedFP)
	}
}

func TestTableRendering(t *testing.T) {
	out := Table([]string{"name", "count"}, [][]string{
		{"alpha", "1"},
		{"beta-long-name", "22"},
	})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.Contains(lines[0], "name") || !strings.Contains(lines[1], "---") {
		t.Errorf("header/separator wrong:\n%s", out)
	}
	if !strings.Contains(lines[3], "beta-long-name") {
		t.Errorf("row missing:\n%s", out)
	}
}

func TestHistogramRendering(t *testing.T) {
	out := Histogram("Test", []string{"low", "high"},
		map[string][]int{"a": {1, 10}, "b": {5, 0}}, []string{"a", "b"})
	if !strings.Contains(out, "Test") || !strings.Contains(out, "##") {
		t.Errorf("histogram:\n%s", out)
	}
	// Zero values render an empty bar, not a crash.
	if !strings.Contains(out, " 0") {
		t.Errorf("zero value missing:\n%s", out)
	}
}

func TestHistogramAllZeros(t *testing.T) {
	out := Histogram("Z", []string{"x"}, map[string][]int{"s": {0}}, []string{"s"})
	if !strings.Contains(out, "0") {
		t.Errorf("all-zero histogram:\n%s", out)
	}
}
