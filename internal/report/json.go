package report

import (
	"encoding/json"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/resultstore"
)

// JSONFinding is the machine-readable form of one grouped finding.
type JSONFinding struct {
	Group       string   `json:"group"`
	Classes     []string `json:"classes"`
	File        string   `json:"file"`
	Line        int      `json:"line"`
	Sink        string   `json:"sink"`
	Sources     []string `json:"sources"`
	Symptoms    []string `json:"symptoms,omitempty"`
	PredictedFP bool     `json:"predicted_false_positive"`
	Weapon      string   `json:"weapon,omitempty"`
	Trace       []string `json:"trace,omitempty"`
}

// JSONDiagnostic is the machine-readable form of one scan diagnostic.
type JSONDiagnostic struct {
	Kind      string `json:"kind"`
	File      string `json:"file,omitempty"`
	Class     string `json:"class,omitempty"`
	Message   string `json:"message"`
	Stack     string `json:"stack,omitempty"`
	ElapsedMS int64  `json:"elapsed_ms,omitempty"`
	// Retries is the retry-ladder attempt count behind this disposition.
	Retries int `json:"retries,omitempty"`
}

// JSONClassStats is the machine-readable per-class scan account.
type JSONClassStats struct {
	Class       string `json:"class"`
	Tasks       int    `json:"tasks"`
	Skipped     int    `json:"skipped,omitempty"`
	Steps       int64  `json:"steps"`
	CacheHits   int64  `json:"cache_hits,omitempty"`
	CacheMisses int64  `json:"cache_misses,omitempty"`
	WallMS      int64  `json:"wall_ms"`
	Findings    int    `json:"findings"`
	Retries     int    `json:"retries,omitempty"`
	Recovered   int    `json:"recovered,omitempty"`
	// BreakerSkipped counts tasks skipped by the class's open breaker.
	BreakerSkipped int `json:"breaker_skipped,omitempty"`
	// Reused counts the class's tasks satisfied from the result store.
	Reused int `json:"reused,omitempty"`
	// Weapon marks classes generated from a weapon spec (builtin or
	// hot-reloaded); the class name is the weapon name.
	Weapon bool `json:"weapon,omitempty"`
}

// JSONScanStats mirrors core.ScanStats. These numbers describe the work the
// scan performed — they vary with scheduling and caching even though the
// findings do not, so consumers diffing reports should exclude this object.
type JSONScanStats struct {
	Tasks        int   `json:"tasks"`
	TasksSkipped int   `json:"tasks_skipped"`
	TotalSteps   int64 `json:"total_steps"`
	MaxTaskSteps int64 `json:"max_task_steps"`
	CacheHits    int64 `json:"cache_hits"`
	CacheMisses  int64 `json:"cache_misses"`
	CacheEntries int   `json:"cache_entries"`
	// FusedPasses / FusedTasks / FusedDemoted account fused scheduling:
	// multi-class IR passes, the tasks they dispositioned, and the tasks a
	// mid-pass fault demoted to unfused per-class execution.
	FusedPasses  int `json:"fused_passes,omitempty"`
	FusedTasks   int `json:"fused_tasks,omitempty"`
	FusedDemoted int `json:"fused_demoted,omitempty"`
	// TaskRetries / TasksRecovered / BreakerSkipped account the retry
	// ladder and circuit breakers.
	TaskRetries    int `json:"task_retries,omitempty"`
	TasksRecovered int `json:"tasks_recovered,omitempty"`
	BreakerSkipped int `json:"breaker_skipped,omitempty"`
	// Incremental-scan account: tasks satisfied from the result store,
	// fingerprint lookup traffic, and the AST steps reuse saved.
	TasksReused       int   `json:"tasks_reused,omitempty"`
	FingerprintHits   int   `json:"fingerprint_hits,omitempty"`
	FingerprintMisses int   `json:"fingerprint_misses,omitempty"`
	StepsSaved        int64 `json:"steps_saved,omitempty"`
	// Durability account: store self-healing events and the durable-job
	// checkpoint/resume counters.
	StoreQuarantined int `json:"store_quarantined,omitempty"`
	StoreSalvaged    int `json:"store_salvaged,omitempty"`
	Checkpoints      int `json:"checkpoints,omitempty"`
	Resumes          int `json:"resumes,omitempty"`
	// Parse-phase account from the loader: wall time of the read+hash+parse
	// work and the worker count. Absent for hand-assembled projects.
	ParseWallMS float64 `json:"parse_wall_ms,omitempty"`
	LoadWorkers int     `json:"load_workers,omitempty"`
	// Weapons account: the scan engine's linked weapon class IDs and the
	// hot-reload registry revision the engine was derived at (absent when
	// the weapon set was fixed at startup).
	ActiveWeapons     []string `json:"active_weapons,omitempty"`
	WeaponSetRevision int64    `json:"weapon_set_revision,omitempty"`
	// Backend is the result-store tier's account (load outcomes,
	// write-behind queue, fault-envelope breaker) when the scan ran over a
	// pluggable backend. Like every stats field it describes work, never
	// findings: a degraded backend changes these counters only.
	Backend *resultstore.BackendState `json:"backend,omitempty"`
	// IR accounts the IR engine's lowering layer and summary
	// transfer-function traffic; absent on legacy-walker scans, keeping
	// their output byte-identical to pre-IR reports.
	IR      *JSONIRStats     `json:"ir,omitempty"`
	ByClass []JSONClassStats `json:"by_class,omitempty"`
}

// JSONIRStats mirrors core.IRScanStats.
type JSONIRStats struct {
	LowerWallMS      float64 `json:"lower_wall_ms"`
	Files            int64   `json:"files"`
	Funcs            int64   `json:"funcs"`
	Blocks           int64   `json:"blocks"`
	Instrs           int64   `json:"instrs"`
	Degraded         int64   `json:"degraded,omitempty"`
	SummaryTransfers int64   `json:"summary_transfers"`
}

// JSONReport is the machine-readable analysis report.
type JSONReport struct {
	Project    string        `json:"project"`
	Mode       string        `json:"mode"`
	Files      int           `json:"files"`
	Lines      int           `json:"lines"`
	DurationMS int64         `json:"duration_ms"`
	Findings   []JSONFinding `json:"findings"`
	// Vulnerabilities counts findings not predicted to be false positives.
	Vulnerabilities int `json:"vulnerabilities"`
	FalsePositives  int `json:"false_positives"`
	// Degraded is true when Diagnostics is non-empty: the findings are a
	// sound partial result, complete for everything not diagnosed.
	Degraded    bool             `json:"degraded"`
	Diagnostics []JSONDiagnostic `json:"diagnostics,omitempty"`
	Stats       *JSONScanStats   `json:"stats,omitempty"`
	// Diff compares this scan against a baseline report when one was given
	// (wap -diff, or a wapd project with an earlier scan). ToJSON leaves it
	// nil; callers holding a baseline attach it.
	Diff *JSONDiff `json:"diff,omitempty"`
}

// ToJSON converts an analysis report into its machine-readable form.
func ToJSON(rep *core.Report) *JSONReport {
	out := &JSONReport{
		Project:    rep.Project.Name,
		Mode:       rep.Mode.String(),
		Files:      len(rep.Project.Files),
		Lines:      rep.Project.TotalLines(),
		DurationMS: rep.Duration.Milliseconds(),
	}
	for _, gf := range Group(rep) {
		first := gf.Findings[0]
		jf := JSONFinding{
			Group:       string(gf.Group),
			File:        gf.File,
			Line:        gf.Line,
			Sink:        first.Candidate.SinkName,
			PredictedFP: gf.PredictedFP,
			Weapon:      first.Weapon,
		}
		seenCls := map[string]bool{}
		for _, f := range gf.Findings {
			cls := string(f.Candidate.Class)
			if !seenCls[cls] {
				seenCls[cls] = true
				jf.Classes = append(jf.Classes, cls)
			}
		}
		for _, s := range first.Candidate.Value.Sources {
			jf.Sources = append(jf.Sources, s.Name)
		}
		for name, set := range first.Symptoms {
			if set {
				jf.Symptoms = append(jf.Symptoms, name)
			}
		}
		sort.Strings(jf.Symptoms)
		for _, step := range first.Candidate.Value.Trace {
			jf.Trace = append(jf.Trace, step.Desc)
		}
		if gf.PredictedFP {
			out.FalsePositives++
		} else {
			out.Vulnerabilities++
		}
		out.Findings = append(out.Findings, jf)
	}
	out.Degraded = rep.Degraded()
	for _, d := range rep.Diagnostics {
		out.Diagnostics = append(out.Diagnostics, JSONDiagnostic{
			Kind:      string(d.Kind),
			File:      d.File,
			Class:     string(d.Class),
			Message:   d.Message,
			Stack:     d.Stack,
			ElapsedMS: d.Elapsed.Milliseconds(),
			Retries:   d.Retries,
		})
	}
	if s := rep.Stats; s != nil {
		js := &JSONScanStats{
			Tasks:             s.Tasks,
			TasksSkipped:      s.TasksSkipped,
			TotalSteps:        s.TotalSteps,
			MaxTaskSteps:      s.MaxTaskSteps,
			CacheHits:         s.CacheHits,
			CacheMisses:       s.CacheMisses,
			CacheEntries:      s.CacheEntries,
			FusedPasses:       s.FusedPasses,
			FusedTasks:        s.FusedTasks,
			FusedDemoted:      s.FusedDemoted,
			TaskRetries:       s.TaskRetries,
			TasksRecovered:    s.TasksRecovered,
			BreakerSkipped:    s.BreakerSkipped,
			TasksReused:       s.TasksReused,
			FingerprintHits:   s.FingerprintHits,
			FingerprintMisses: s.FingerprintMisses,
			StepsSaved:        s.StepsSaved,
			StoreQuarantined:  s.StoreQuarantined,
			StoreSalvaged:     s.StoreSalvaged,
			Checkpoints:       s.Checkpoints,
			Resumes:           s.Resumes,
			ParseWallMS:       float64(s.ParseWall.Microseconds()) / 1000,
			LoadWorkers:       s.LoadWorkers,
			ActiveWeapons:     append([]string(nil), s.ActiveWeapons...),
			WeaponSetRevision: s.WeaponSetRevision,
			Backend:           s.Backend,
		}
		if s.IR != nil {
			js.IR = &JSONIRStats{
				LowerWallMS:      float64(s.IR.LowerWall.Microseconds()) / 1000,
				Files:            s.IR.Files,
				Funcs:            s.IR.Funcs,
				Blocks:           s.IR.Blocks,
				Instrs:           s.IR.Instrs,
				Degraded:         s.IR.Degraded,
				SummaryTransfers: s.IR.SummaryTransfers,
			}
		}
		for _, id := range s.ClassIDs() {
			cs := s.ByClass[id]
			js.ByClass = append(js.ByClass, JSONClassStats{
				Class:          string(id),
				Tasks:          cs.Tasks,
				Skipped:        cs.Skipped,
				Steps:          cs.Steps,
				CacheHits:      cs.CacheHits,
				CacheMisses:    cs.CacheMisses,
				WallMS:         cs.Wall.Milliseconds(),
				Findings:       cs.Findings,
				Retries:        cs.Retries,
				Recovered:      cs.Recovered,
				BreakerSkipped: cs.BreakerSkipped,
				Reused:         cs.Reused,
				Weapon:         cs.Weapon,
			})
		}
		out.Stats = js
	}
	return out
}

// WriteJSON encodes the report as indented JSON.
func WriteJSON(w io.Writer, rep *core.Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ToJSON(rep))
}
