package report

import (
	"fmt"
	"html/template"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
)

// htmlReport is the template context for WriteHTML.
type htmlReport struct {
	Project     string
	Mode        string
	Files       int
	Lines       int
	Duration    string
	Vulns       []htmlFinding
	FPs         []htmlFinding
	Diagnostics []htmlDiagnostic
	Stats       *htmlStats
}

// htmlStats carries the scan account pre-rendered for the template.
type htmlStats struct {
	Summary []string
	Classes []htmlClassStats
}

type htmlClassStats struct {
	Class    string
	Tasks    int
	Skipped  int
	Steps    int64
	Hits     int64
	Misses   int64
	Wall     string
	Findings int
}

type htmlDiagnostic struct {
	Kind    string
	File    string
	Class   string
	Message string
	Elapsed string
}

type htmlFinding struct {
	Group    string
	File     string
	Line     int
	Sink     string
	Source   string
	Symptoms []string
	Trace    []string
	Weapon   string
}

var htmlTemplate = template.Must(template.New("report").Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>WAP report — {{.Project}}</title>
<style>
body { font-family: sans-serif; margin: 2rem; color: #222; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; width: 100%; }
th, td { border: 1px solid #ccc; padding: .35rem .6rem; text-align: left; vertical-align: top; font-size: .9rem; }
th { background: #f3f3f3; }
tr.vuln td:first-child { border-left: 4px solid #c0392b; }
tr.fp td:first-child { border-left: 4px solid #f39c12; }
tr.diag td:first-child { border-left: 4px solid #7f8c8d; }
.meta { color: #666; font-size: .9rem; }
code { background: #f7f7f7; padding: 0 .2rem; }
ul.trace { margin: 0; padding-left: 1.1rem; }
</style>
</head>
<body>
<h1>WAP analysis report — {{.Project}}</h1>
<p class="meta">{{.Mode}} · {{.Files}} files · {{.Lines}} lines · {{.Duration}}</p>

<h2>Vulnerabilities ({{len .Vulns}})</h2>
{{if .Vulns}}
<table>
<tr><th>Class</th><th>Location</th><th>Sink</th><th>Entry point</th><th>Data flow</th></tr>
{{range .Vulns}}
<tr class="vuln">
<td>{{.Group}}{{if .Weapon}} <em>({{.Weapon}} weapon)</em>{{end}}</td>
<td><code>{{.File}}:{{.Line}}</code></td>
<td><code>{{.Sink}}</code></td>
<td><code>{{.Source}}</code></td>
<td><ul class="trace">{{range .Trace}}<li>{{.}}</li>{{end}}</ul></td>
</tr>
{{end}}
</table>
{{else}}<p>None.</p>{{end}}

<h2>Predicted false positives ({{len .FPs}})</h2>
{{if .FPs}}
<table>
<tr><th>Class</th><th>Location</th><th>Sink</th><th>Symptoms justifying the prediction</th></tr>
{{range .FPs}}
<tr class="fp">
<td>{{.Group}}</td>
<td><code>{{.File}}:{{.Line}}</code></td>
<td><code>{{.Sink}}</code></td>
<td>{{range $i, $s := .Symptoms}}{{if $i}}, {{end}}<code>{{$s}}</code>{{end}}</td>
</tr>
{{end}}
</table>
{{else}}<p>None.</p>{{end}}

{{if .Diagnostics}}
<h2>Diagnostics — not analyzed ({{len .Diagnostics}})</h2>
<p class="meta">The scan completed in degraded mode. Findings above are complete
for everything except the entries below.</p>
<table>
<tr><th>Kind</th><th>Location</th><th>Detail</th><th>Elapsed</th></tr>
{{range .Diagnostics}}
<tr class="diag">
<td><code>{{.Kind}}</code></td>
<td><code>{{.File}}</code>{{if .Class}} <em>({{.Class}})</em>{{end}}</td>
<td>{{.Message}}</td>
<td>{{.Elapsed}}</td>
</tr>
{{end}}
</table>
{{end}}

{{if .Stats}}
<h2>Scan statistics</h2>
<p class="meta">Work performed by this scan. These numbers vary with
scheduling and caching; the findings above do not.</p>
<ul>
{{range .Stats.Summary}}<li>{{.}}</li>
{{end}}</ul>
<table>
<tr><th>Class</th><th>Tasks</th><th>Skipped</th><th>Steps</th><th>Cache hits</th><th>Cache misses</th><th>Wall</th><th>Findings</th></tr>
{{range .Stats.Classes}}
<tr>
<td><code>{{.Class}}</code></td>
<td>{{.Tasks}}</td><td>{{.Skipped}}</td><td>{{.Steps}}</td>
<td>{{.Hits}}</td><td>{{.Misses}}</td><td>{{.Wall}}</td><td>{{.Findings}}</td>
</tr>
{{end}}
</table>
{{end}}
</body>
</html>
`))

// WriteHTML renders the analysis report as a standalone HTML page.
func WriteHTML(w io.Writer, rep *core.Report) error {
	ctx := htmlReport{
		Project:  rep.Project.Name,
		Mode:     rep.Mode.String(),
		Files:    len(rep.Project.Files),
		Lines:    rep.Project.TotalLines(),
		Duration: rep.Duration.String(),
	}
	for _, gf := range Group(rep) {
		first := gf.Findings[0]
		hf := htmlFinding{
			Group:  string(gf.Group),
			File:   gf.File,
			Line:   gf.Line,
			Sink:   first.Candidate.SinkName,
			Weapon: first.Weapon,
		}
		if len(first.Candidate.Value.Sources) > 0 {
			hf.Source = first.Candidate.Value.Sources[0].Name
		}
		for _, step := range first.Candidate.Value.Trace {
			hf.Trace = append(hf.Trace, fmt.Sprintf("%s (line %d)", step.Desc, step.Pos.Line))
		}
		for name, set := range first.Symptoms {
			if set {
				hf.Symptoms = append(hf.Symptoms, name)
			}
		}
		sort.Strings(hf.Symptoms)
		if gf.PredictedFP {
			ctx.FPs = append(ctx.FPs, hf)
		} else {
			ctx.Vulns = append(ctx.Vulns, hf)
		}
	}
	for _, d := range rep.Diagnostics {
		hd := htmlDiagnostic{
			Kind:    string(d.Kind),
			File:    d.File,
			Class:   string(d.Class),
			Message: d.Message,
		}
		if d.Elapsed > 0 {
			hd.Elapsed = d.Elapsed.String()
		}
		ctx.Diagnostics = append(ctx.Diagnostics, hd)
	}
	if s := rep.Stats; s != nil {
		hs := &htmlStats{Summary: []string{
			fmt.Sprintf("%d tasks executed, %d skipped by the sink pre-filter", s.Tasks, s.TasksSkipped),
			fmt.Sprintf("%d AST steps total, %d in the heaviest task", s.TotalSteps, s.MaxTaskSteps),
			fmt.Sprintf("summary cache: %d hits, %d misses, %d entries committed", s.CacheHits, s.CacheMisses, s.CacheEntries),
		}}
		if s.ParseWall > 0 || s.LoadWorkers > 0 {
			hs.Summary = append(hs.Summary, fmt.Sprintf(
				"parse: %s wall across %d loader worker(s)",
				s.ParseWall.Round(10*time.Microsecond), s.LoadWorkers))
		}
		if ir := s.IR; ir != nil {
			line := fmt.Sprintf("ir: %d files lowered (%d funcs, %d blocks, %d instrs) in %s; %d summary transfers",
				ir.Files, ir.Funcs, ir.Blocks, ir.Instrs,
				ir.LowerWall.Round(10*time.Microsecond), ir.SummaryTransfers)
			if ir.Degraded > 0 {
				line += fmt.Sprintf("; %d degraded subtrees", ir.Degraded)
			}
			hs.Summary = append(hs.Summary, line)
		}
		if s.FusedPasses > 0 || s.FusedDemoted > 0 {
			hs.Summary = append(hs.Summary, fmt.Sprintf(
				"fused: %d tasks over %d multi-class passes, %d demoted to per-class",
				s.FusedTasks, s.FusedPasses, s.FusedDemoted))
		}
		if s.TaskRetries > 0 || s.TasksRecovered > 0 || s.BreakerSkipped > 0 {
			hs.Summary = append(hs.Summary, fmt.Sprintf(
				"robustness: %d retries, %d tasks recovered, %d tasks skipped by open breakers",
				s.TaskRetries, s.TasksRecovered, s.BreakerSkipped))
		}
		if s.TasksReused > 0 || s.FingerprintHits > 0 || s.FingerprintMisses > 0 {
			hs.Summary = append(hs.Summary, fmt.Sprintf(
				"incremental: %d tasks reused, %d fingerprint hits, %d misses, %d AST steps saved",
				s.TasksReused, s.FingerprintHits, s.FingerprintMisses, s.StepsSaved))
		}
		if s.StoreQuarantined > 0 || s.StoreSalvaged > 0 || s.Checkpoints > 0 || s.Resumes > 0 {
			hs.Summary = append(hs.Summary, fmt.Sprintf(
				"durability: %d snapshots quarantined, %d entries salvaged, %d checkpoints, %d resumes",
				s.StoreQuarantined, s.StoreSalvaged, s.Checkpoints, s.Resumes))
		}
		if bs := s.Backend; bs != nil {
			line := fmt.Sprintf("backend (%s): %d hits, %d misses, %d degraded, %d corrupt",
				bs.Kind, bs.Hits, bs.Misses, bs.Degraded, bs.Corrupt)
			if bs.QueueCap > 0 {
				line += fmt.Sprintf("; write-behind %d/%d queued, %d written, %d shed",
					bs.QueueDepth, bs.QueueCap, bs.Written, bs.Shed)
			}
			if bs.Envelope != nil {
				line += fmt.Sprintf("; breaker %s", bs.Envelope.Breaker)
			}
			hs.Summary = append(hs.Summary, line)
		}
		if len(s.ActiveWeapons) > 0 {
			line := "weapons: " + strings.Join(s.ActiveWeapons, ", ")
			if s.WeaponSetRevision != 0 {
				line += fmt.Sprintf(" (hot-reload revision %d)", s.WeaponSetRevision)
			}
			hs.Summary = append(hs.Summary, line)
		}
		for _, id := range s.ClassIDs() {
			cs := s.ByClass[id]
			label := string(id)
			if cs.Weapon {
				label += " (weapon)"
			}
			hs.Classes = append(hs.Classes, htmlClassStats{
				Class:    label,
				Tasks:    cs.Tasks,
				Skipped:  cs.Skipped,
				Steps:    cs.Steps,
				Hits:     cs.CacheHits,
				Misses:   cs.CacheMisses,
				Wall:     cs.Wall.Round(10 * time.Microsecond).String(),
				Findings: cs.Findings,
			})
		}
		ctx.Stats = hs
	}
	return htmlTemplate.Execute(w, ctx)
}
