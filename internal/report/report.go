// Package report groups engine findings into the paper's reporting
// categories and renders the text tables and figures of the evaluation.
package report

import (
	"fmt"
	"sort"
	"strings"
	"unicode/utf8"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/vuln"
)

// GroupOf maps a vulnerability class to its reporting group (the paper lumps
// RFI/LFI/DT as "Files", header and email injection as HI, and counts the
// WordPress weapon's findings as SQLI).
func GroupOf(id vuln.ClassID) corpus.Group {
	switch id {
	case vuln.SQLI, vuln.WPSQLI:
		return corpus.GroupSQLI
	case vuln.XSSR, vuln.XSSS:
		return corpus.GroupXSS
	case vuln.RFI, vuln.LFI, vuln.DTPT:
		return corpus.GroupFiles
	case vuln.SCD:
		return corpus.GroupSCD
	case vuln.OSCI:
		return corpus.GroupOSCI
	case vuln.PHPCI:
		return corpus.GroupPHPCI
	case vuln.LDAPI:
		return corpus.GroupLDAPI
	case vuln.XPATHI:
		return corpus.GroupXPathI
	case vuln.NOSQLI:
		return corpus.GroupNoSQLI
	case vuln.CS:
		return corpus.GroupCS
	case vuln.HI, vuln.EI, "hei":
		// "hei" is the generated weapon covering both header and email
		// injection (Section IV-C.2).
		return corpus.GroupHI
	case vuln.SF:
		return corpus.GroupSF
	default:
		return corpus.Group(strings.ToUpper(string(id)))
	}
}

// GroupOrder is the display order of groups in tables and figures.
var GroupOrder = []corpus.Group{
	corpus.GroupSQLI, corpus.GroupXSS, corpus.GroupFiles, corpus.GroupSCD,
	corpus.GroupOSCI, corpus.GroupPHPCI, corpus.GroupLDAPI, corpus.GroupXPathI,
	corpus.GroupNoSQLI, corpus.GroupSF, corpus.GroupHI, corpus.GroupCS,
}

// GroupedFinding is a deduplicated finding: detectors of related classes
// (RFI and LFI both flag an include) collapse into one row.
type GroupedFinding struct {
	Group corpus.Group
	File  string
	Line  int
	// PredictedFP is true when every underlying finding was predicted FP.
	PredictedFP bool
	// Findings are the raw engine findings merged into this entry.
	Findings []*core.Finding
}

// Group deduplicates a report's findings by (group, file, line).
func Group(rep *core.Report) []GroupedFinding {
	type key struct {
		g    corpus.Group
		file string
		line int
	}
	merged := make(map[key]*GroupedFinding)
	var order []key
	for _, f := range rep.Findings {
		k := key{
			g:    GroupOf(f.Candidate.Class),
			file: f.Candidate.File,
			line: f.Candidate.SinkPos.Line,
		}
		gf, ok := merged[k]
		if !ok {
			gf = &GroupedFinding{Group: k.g, File: k.file, Line: k.line, PredictedFP: true}
			merged[k] = gf
			order = append(order, k)
		}
		gf.Findings = append(gf.Findings, f)
		if !f.PredictedFP {
			gf.PredictedFP = false
		}
	}
	out := make([]GroupedFinding, 0, len(order))
	for _, k := range order {
		out = append(out, *merged[k])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		return out[i].Group < out[j].Group
	})
	return out
}

// Score compares grouped findings against an app's ground truth.
type Score struct {
	// DetectedVulns counts real vulnerabilities reported as such, per group.
	DetectedVulns map[corpus.Group]int
	// MissedVulns counts planted vulnerabilities with no matching finding
	// (or predicted FP — a missed vulnerability either way).
	MissedVulns int
	// PredictedFP counts planted FP flows correctly predicted (FPP).
	PredictedFP int
	// UnpredictedFP counts planted FP flows reported as vulnerabilities
	// (FP).
	UnpredictedFP int
	// Spurious counts findings matching no planted spot.
	Spurious int
}

// TotalDetected sums detected vulnerabilities across groups.
func (s *Score) TotalDetected() int {
	total := 0
	for _, n := range s.DetectedVulns {
		total += n
	}
	return total
}

// ScoreApp matches grouped findings against the app's planted spots.
func ScoreApp(app *corpus.App, findings []GroupedFinding) *Score {
	s := &Score{DetectedVulns: make(map[corpus.Group]int)}
	matchedSpots := make(map[int]bool)

	for _, gf := range findings {
		spotIdx := -1
		for i, spot := range app.Spots {
			if matchedSpots[i] {
				continue
			}
			if spot.Group == gf.Group && spot.Contains(gf.File, gf.Line) {
				spotIdx = i
				break
			}
		}
		if spotIdx < 0 {
			s.Spurious++
			continue
		}
		matchedSpots[spotIdx] = true
		spot := app.Spots[spotIdx]
		switch {
		case spot.Vulnerable && !gf.PredictedFP:
			s.DetectedVulns[spot.Group]++
		case spot.Vulnerable && gf.PredictedFP:
			s.MissedVulns++ // classifier discarded a real vulnerability
		case !spot.Vulnerable && gf.PredictedFP:
			s.PredictedFP++
		default:
			s.UnpredictedFP++
		}
	}
	// Planted vulnerabilities with no finding at all are also misses.
	for i, spot := range app.Spots {
		if !matchedSpots[i] && spot.Vulnerable {
			s.MissedVulns++
		}
	}
	return s
}

// ---------------------------------------------------------------------------
// Text rendering
// ---------------------------------------------------------------------------

// Table renders an ASCII table with a header row. Widths are measured in
// runes so non-ASCII cells (µs durations) stay aligned.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = utf8.RuneCountInString(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if n := utf8.RuneCountInString(cell); i < len(widths) && n > widths[i] {
				widths[i] = n
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-utf8.RuneCountInString(c)))
			}
		}
		b.WriteString("\n")
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// Histogram renders labelled bars for one or two integer series (Fig. 4/5
// style).
func Histogram(title string, labels []string, series map[string][]int, seriesOrder []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	maxVal := 1
	for _, vals := range series {
		for _, v := range vals {
			if v > maxVal {
				maxVal = v
			}
		}
	}
	labelWidth := 0
	for _, l := range labels {
		if len(l) > labelWidth {
			labelWidth = len(l)
		}
	}
	const barWidth = 40
	for i, label := range labels {
		for _, name := range seriesOrder {
			vals := series[name]
			v := 0
			if i < len(vals) {
				v = vals[i]
			}
			bar := strings.Repeat("#", v*barWidth/maxVal)
			fmt.Fprintf(&b, "%-*s %-12s %-*s %d\n", labelWidth, label, name, barWidth, bar, v)
			label = "" // only print the range label once
		}
	}
	return b.String()
}
