package report

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/corrector"
	"repro/internal/resultstore"
	"repro/internal/vuln"
	"repro/internal/weapon"
)

// TestJSONByteIdenticalAcrossParallelism pins scan determinism end to end:
// with the summary cache and pre-filter enabled, a sequential and an
// 8-worker scan of the same project must serialize to byte-identical JSON.
// Duration and Stats are schedule-dependent by design and are normalized
// away; everything else — findings, traces, predictions, diagnostics —
// must match exactly.
func TestJSONByteIdenticalAcrossParallelism(t *testing.T) {
	app := corpus.WebAppSuite(1)[2]
	render := func(parallelism int) string {
		e, err := core.New(core.Options{Mode: core.ModeWAPe, Seed: 1, Parallelism: parallelism})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := e.Analyze(core.LoadMap(app.Name, app.Files))
		if err != nil {
			t.Fatal(err)
		}
		rep.Duration = 0
		rep.Stats = nil
		var buf bytes.Buffer
		if err := WriteJSON(&buf, rep); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	seq := render(1)
	par := render(8)
	if seq != par {
		t.Errorf("JSON report differs between parallelism 1 and 8\n--- sequential ---\n%s\n--- parallel ---\n%s", seq, par)
	}
	if !strings.Contains(seq, `"findings"`) {
		t.Fatal("report rendered no findings; determinism check is vacuous")
	}
}

func sampleStats() *core.ScanStats {
	return &core.ScanStats{
		Tasks: 7, TasksSkipped: 3,
		TotalSteps: 1234, MaxTaskSteps: 600,
		CacheHits: 5, CacheMisses: 2, CacheEntries: 2,
		ParseWall: 3 * time.Millisecond, LoadWorkers: 4,
		ByClass: map[vuln.ClassID]*core.ClassStats{
			vuln.SQLI: {Tasks: 4, Skipped: 1, Steps: 1000, CacheHits: 3, CacheMisses: 1, Wall: 2 * time.Millisecond, Findings: 2},
			vuln.XSSR: {Tasks: 3, Skipped: 2, Steps: 234, CacheHits: 2, CacheMisses: 1, Wall: time.Millisecond, Findings: 1},
		},
	}
}

func TestRenderStats(t *testing.T) {
	if got := RenderStats(nil); got != "" {
		t.Errorf("RenderStats(nil) = %q, want empty", got)
	}
	out := RenderStats(sampleStats())
	for _, want := range []string{
		"7 executed, 3 skipped by the sink pre-filter",
		"1234 total, 600 in the heaviest task",
		"5 hits, 2 misses, 2 entries committed",
		"3ms wall across 4 loader worker(s)",
		string(vuln.SQLI),
		string(vuln.XSSR),
	} {
		if !strings.Contains(out, want) {
			t.Errorf("stats text missing %q in:\n%s", want, out)
		}
	}
}

// TestStatsInRenderers checks the JSON and HTML renderers surface the scan
// account (and omit it cleanly when absent).
func TestStatsInRenderers(t *testing.T) {
	p := core.LoadMap("s", map[string]string{"a.php": `<?php echo $_GET['x'];`})
	rep := &core.Report{Project: p, Mode: core.ModeWAPe, Stats: sampleStats()}

	js := ToJSON(rep)
	if js.Stats == nil {
		t.Fatal("ToJSON dropped Stats")
	}
	if js.Stats.Tasks != 7 || js.Stats.CacheEntries != 2 {
		t.Errorf("JSON stats totals = %+v", js.Stats)
	}
	if js.Stats.ParseWallMS != 3 || js.Stats.LoadWorkers != 4 {
		t.Errorf("JSON parse account = %v ms / %d workers, want 3 / 4", js.Stats.ParseWallMS, js.Stats.LoadWorkers)
	}
	if len(js.Stats.ByClass) != 2 || js.Stats.ByClass[0].Class > js.Stats.ByClass[1].Class {
		t.Errorf("JSON per-class stats not in sorted order: %+v", js.Stats.ByClass)
	}

	var buf bytes.Buffer
	if err := WriteHTML(&buf, rep); err != nil {
		t.Fatal(err)
	}
	html := buf.String()
	if !strings.Contains(html, "Scan statistics") || !strings.Contains(html, "7 tasks executed") {
		t.Error("HTML report missing the statistics section")
	}
	if !strings.Contains(html, "4 loader worker(s)") {
		t.Error("HTML report missing the parse-phase account")
	}

	rep.Stats = nil
	if js := ToJSON(rep); js.Stats != nil {
		t.Error("ToJSON fabricated stats for a report without them")
	}
	buf.Reset()
	if err := WriteHTML(&buf, rep); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "Scan statistics") {
		t.Error("HTML report rendered a statistics section without stats")
	}
}

// TestIncrementalByteIdentical pins the merge correctness bar of the
// incremental planner: a warm store-backed rescan must render byte-identical
// text, JSON and HTML reports to a cold scan of the same sources — both when
// nothing changed (every task reused) and after a single-file edit (reused
// and fresh results spliced together) — at sequential and parallel
// schedules. Duration and Stats are schedule- and reuse-dependent by design
// and are normalized away.
func TestIncrementalByteIdentical(t *testing.T) {
	app := corpus.WebAppSuite(1)[2]
	paths := make([]string, 0, len(app.Files))
	for path := range app.Files {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	edited := make(map[string]string, len(app.Files))
	for path, src := range app.Files {
		edited[path] = src
	}
	// The edit introduces a fresh vulnerability, so the spliced report must
	// interleave new findings with reused ones, not just echo the baseline.
	edited[paths[0]] += "\n<?php echo $_GET[\"injected_edit\"]; ?>\n"

	renderAll := func(rep *core.Report) string {
		rep.Duration = 0
		rep.Stats = nil
		var text, html, js bytes.Buffer
		WriteText(&text, rep, TextOptions{ShowFP: true})
		if err := WriteJSON(&js, rep); err != nil {
			t.Fatal(err)
		}
		if err := WriteHTML(&html, rep); err != nil {
			t.Fatal(err)
		}
		return text.String() + "\n=====\n" + js.String() + "\n=====\n" + html.String()
	}

	for _, par := range []int{1, 8} {
		newEngine := func() *core.Engine {
			e, err := core.New(core.Options{Mode: core.ModeWAPe, Seed: 1, Parallelism: par})
			if err != nil {
				t.Fatal(err)
			}
			return e
		}
		cold := func(files map[string]string) string {
			rep, err := newEngine().Analyze(core.LoadMap(app.Name, files))
			if err != nil {
				t.Fatal(err)
			}
			return renderAll(rep)
		}

		store, err := resultstore.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		eng := newEngine()
		ctx := context.Background()
		proj := core.LoadMap(app.Name, app.Files)
		if _, err := eng.AnalyzeContextStore(ctx, proj, store); err != nil {
			t.Fatal(err)
		}
		// Warm, unchanged: every task comes back from the store.
		warmProj := core.LoadMapIncremental(app.Name, app.Files, proj)
		warmRep, err := eng.AnalyzeContextStore(ctx, warmProj, store)
		if err != nil {
			t.Fatal(err)
		}
		if warmRep.Stats == nil || warmRep.Stats.TasksReused == 0 {
			t.Fatalf("parallelism %d: warm rescan reused nothing; comparison is vacuous", par)
		}
		if got, want := renderAll(warmRep), cold(app.Files); got != want {
			t.Errorf("parallelism %d: warm unchanged rescan differs from cold scan", par)
		}
		// Warm, one file edited: reused and fresh results spliced.
		editProj := core.LoadMapIncremental(app.Name, edited, warmProj)
		editRep, err := eng.AnalyzeContextStore(ctx, editProj, store)
		if err != nil {
			t.Fatal(err)
		}
		if editRep.Stats == nil || editRep.Stats.TasksReused == 0 || editRep.Stats.Tasks == 0 {
			t.Fatalf("parallelism %d: edited rescan did not mix reuse and execution (stats: %+v)", par, editRep.Stats)
		}
		if got, want := renderAll(editRep), cold(edited); got != want {
			t.Errorf("parallelism %d: warm edited rescan differs from cold scan of edited sources", par)
		}
	}
}

// TestReportByteIdenticalAcrossLoaderParallelism pins the parallel-loader
// determinism bar end to end: a project loaded from disk with one worker and
// with eight must render byte-identical text, JSON and HTML reports.
// Duration and Stats carry schedule-dependent wall times (including
// LoadStats-derived parse wall) and are normalized away.
func TestReportByteIdenticalAcrossLoaderParallelism(t *testing.T) {
	app := corpus.WebAppSuite(1)[2]
	dir := t.TempDir()
	for path, src := range app.Files {
		abs := filepath.Join(dir, filepath.FromSlash(path))
		if err := os.MkdirAll(filepath.Dir(abs), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(abs, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	render := func(loadPar int) string {
		proj, err := core.LoadDirContext(context.Background(), app.Name, dir,
			core.LoadOptions{Parallelism: loadPar})
		if err != nil {
			t.Fatal(err)
		}
		e, err := core.New(core.Options{Mode: core.ModeWAPe, Seed: 1, Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := e.Analyze(proj)
		if err != nil {
			t.Fatal(err)
		}
		rep.Duration = 0
		rep.Stats = nil
		var text, js, html bytes.Buffer
		WriteText(&text, rep, TextOptions{ShowFP: true})
		if err := WriteJSON(&js, rep); err != nil {
			t.Fatal(err)
		}
		if err := WriteHTML(&html, rep); err != nil {
			t.Fatal(err)
		}
		return text.String() + "\n=====\n" + js.String() + "\n=====\n" + html.String()
	}
	seq := render(1)
	par := render(8)
	if seq != par {
		t.Error("rendered report differs between loader parallelism 1 and 8")
	}
	if !strings.Contains(seq, "findings") {
		t.Fatal("report rendered no findings; determinism check is vacuous")
	}
}

// TestWeaponSwapIncrementalByteIdentical pins the digest-rotation rule for
// hot-reloaded weapons: after a weapon swap, an incremental rescan over a
// warm store must produce reports byte-identical to a cold scan with that
// weapon set — the rotated config digest forces a full re-execute, so no
// finding cached under the previous weapon set can splice into the report.
func TestWeaponSwapIncrementalByteIdentical(t *testing.T) {
	w, err := weapon.Generate(weapon.Spec{
		Name:       "swapgate",
		Sinks:      []vuln.Sink{{Name: "gate_sink"}},
		Sanitizers: []string{"gate_clean"},
		Fix:        corrector.Template{Kind: corrector.PHPSanitization, SanFunc: "gate_clean"},
	})
	if err != nil {
		t.Fatal(err)
	}
	files := map[string]string{"app.php": `<?php
$x = $_GET['x'];
mysql_query("SELECT * FROM t WHERE id=" . $x);
gate_sink("payload=" . $x);
$y = gate_clean($_GET['y']);
gate_sink("payload=" . $y);
`}

	renderAll := func(rep *core.Report) string {
		rep.Duration = 0
		rep.Stats = nil
		var text, js, html bytes.Buffer
		WriteText(&text, rep, TextOptions{ShowFP: true})
		if err := WriteJSON(&js, rep); err != nil {
			t.Fatal(err)
		}
		if err := WriteHTML(&html, rep); err != nil {
			t.Fatal(err)
		}
		return text.String() + "\n=====\n" + js.String() + "\n=====\n" + html.String()
	}
	newBase := func() *core.Engine {
		e, err := core.New(core.Options{Mode: core.ModeWAPe, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}

	ctx := context.Background()
	store, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	// Warm the store under the pre-swap weapon set.
	base := newBase()
	proj := core.LoadMap("swapapp", files)
	if _, err := base.AnalyzeContextStore(ctx, proj, store); err != nil {
		t.Fatal(err)
	}

	// Swap: derive the engine with the hot weapon at revision 1 and rescan
	// incrementally over the warm store.
	swapped, err := base.WithWeapons(1, []*weapon.Weapon{w})
	if err != nil {
		t.Fatal(err)
	}
	warmProj := core.LoadMapIncremental("swapapp", files, proj)
	swapRep, err := swapped.AnalyzeContextStore(ctx, warmProj, store)
	if err != nil {
		t.Fatal(err)
	}
	if swapRep.Stats == nil || swapRep.Stats.TasksReused != 0 {
		t.Fatalf("post-swap rescan reused %d tasks cached under the old weapon set; the rotated digest must force a full re-execute", swapRep.Stats.TasksReused)
	}

	// Cold reference: a fresh derived engine, no store.
	coldEng, err := newBase().WithWeapons(1, []*weapon.Weapon{w})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := coldEng.Analyze(core.LoadMap("swapapp", files))
	if err != nil {
		t.Fatal(err)
	}
	got, want := renderAll(swapRep), renderAll(cold)
	if got != want {
		t.Error("post-swap incremental rescan differs from cold scan with the same weapon set")
	}
	if !strings.Contains(got, "swapgate") {
		t.Fatal("weapon findings missing from the post-swap report; comparison is vacuous")
	}

	// A second post-swap rescan is warm again — under the NEW digest — and
	// still byte-identical.
	warm2 := core.LoadMapIncremental("swapapp", files, warmProj)
	rep2, err := swapped.AnalyzeContextStore(ctx, warm2, store)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Stats == nil || rep2.Stats.TasksReused == 0 {
		t.Fatal("second post-swap rescan reused nothing; store did not warm under the new digest")
	}
	if renderAll(rep2) != want {
		t.Error("warm post-swap rescan differs from cold scan with the same weapon set")
	}
}
