package report

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
)

// RenderStats renders the scan's performance account as text: the
// task/step/cache totals and a per-class table. Returns "" when the report
// carries no stats (older callers, or a scan aborted before accounting).
func RenderStats(s *core.ScanStats) string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	b.WriteString("scan statistics\n")
	fmt.Fprintf(&b, "  tasks: %d executed, %d skipped by the sink pre-filter\n",
		s.Tasks, s.TasksSkipped)
	fmt.Fprintf(&b, "  AST steps: %d total, %d in the heaviest task\n",
		s.TotalSteps, s.MaxTaskSteps)
	if s.ParseWall > 0 || s.LoadWorkers > 0 {
		fmt.Fprintf(&b, "  parse: %s wall across %d loader worker(s)\n",
			s.ParseWall.Round(10*time.Microsecond), s.LoadWorkers)
	}
	fmt.Fprintf(&b, "  summary cache: %d hits, %d misses, %d entries committed\n",
		s.CacheHits, s.CacheMisses, s.CacheEntries)
	if ir := s.IR; ir != nil {
		fmt.Fprintf(&b, "  ir: %d files lowered (%d funcs, %d blocks, %d instrs) in %s; %d summary transfers",
			ir.Files, ir.Funcs, ir.Blocks, ir.Instrs,
			ir.LowerWall.Round(10*time.Microsecond), ir.SummaryTransfers)
		if ir.Degraded > 0 {
			fmt.Fprintf(&b, "; %d degraded subtrees", ir.Degraded)
		}
		b.WriteByte('\n')
	}
	if s.FusedPasses > 0 || s.FusedDemoted > 0 {
		fmt.Fprintf(&b, "  fused: %d tasks over %d multi-class passes, %d demoted to per-class\n",
			s.FusedTasks, s.FusedPasses, s.FusedDemoted)
	}
	if s.TaskRetries > 0 || s.TasksRecovered > 0 || s.BreakerSkipped > 0 {
		fmt.Fprintf(&b, "  robustness: %d retries, %d tasks recovered, %d tasks skipped by open breakers\n",
			s.TaskRetries, s.TasksRecovered, s.BreakerSkipped)
	}
	if s.TasksReused > 0 || s.FingerprintHits > 0 || s.FingerprintMisses > 0 {
		fmt.Fprintf(&b, "  incremental: %d tasks reused, %d fingerprint hits, %d misses, %d AST steps saved\n",
			s.TasksReused, s.FingerprintHits, s.FingerprintMisses, s.StepsSaved)
	}
	if s.StoreQuarantined > 0 || s.StoreSalvaged > 0 || s.Checkpoints > 0 || s.Resumes > 0 {
		fmt.Fprintf(&b, "  durability: %d snapshots quarantined, %d entries salvaged, %d checkpoints, %d resumes\n",
			s.StoreQuarantined, s.StoreSalvaged, s.Checkpoints, s.Resumes)
	}
	if bs := s.Backend; bs != nil {
		fmt.Fprintf(&b, "  backend (%s): %d hits, %d misses, %d degraded, %d corrupt",
			bs.Kind, bs.Hits, bs.Misses, bs.Degraded, bs.Corrupt)
		if bs.QueueCap > 0 {
			fmt.Fprintf(&b, "; write-behind %d/%d queued, %d written, %d shed",
				bs.QueueDepth, bs.QueueCap, bs.Written, bs.Shed)
		}
		if bs.Envelope != nil {
			fmt.Fprintf(&b, "; breaker %s (%d refused, %d retries)",
				bs.Envelope.Breaker, bs.Envelope.Refused, bs.Envelope.Retries)
		}
		b.WriteByte('\n')
	}
	if len(s.ActiveWeapons) > 0 {
		fmt.Fprintf(&b, "  weapons: %s", strings.Join(s.ActiveWeapons, ", "))
		if s.WeaponSetRevision != 0 {
			fmt.Fprintf(&b, " (hot-reload revision %d)", s.WeaponSetRevision)
		}
		b.WriteByte('\n')
	}
	if len(s.ByClass) == 0 {
		return b.String()
	}
	var rows [][]string
	for _, id := range s.ClassIDs() {
		cs := s.ByClass[id]
		label := string(id)
		if cs.Weapon {
			label += " (weapon)"
		}
		rows = append(rows, []string{
			label,
			strconv.Itoa(cs.Tasks),
			strconv.Itoa(cs.Skipped),
			strconv.FormatInt(cs.Steps, 10),
			strconv.FormatInt(cs.CacheHits, 10),
			strconv.FormatInt(cs.CacheMisses, 10),
			cs.Wall.Round(10 * time.Microsecond).String(),
			strconv.Itoa(cs.Findings),
		})
	}
	b.WriteString(Table(
		[]string{"class", "tasks", "skipped", "steps", "hits", "misses", "wall", "findings"},
		rows))
	return b.String()
}
