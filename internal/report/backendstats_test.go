package report

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/resultstore"
)

func backendStats() *core.ScanStats {
	s := sampleStats()
	s.Backend = &resultstore.BackendState{
		Kind: "http", Hits: 3, Misses: 2, Degraded: 4, Corrupt: 1,
		Queued: 6, Written: 4, Shed: 1, Superseded: 1,
		QueueDepth: 1, QueueCap: 32,
		Envelope: &resultstore.EnvelopeState{
			Breaker: resultstore.BreakerOpen, Refused: 7, Retries: 9,
		},
	}
	return s
}

// TestBackendStatsInRenderers pins the backend account's surface in all
// three renderers — and its complete absence when the scan ran without a
// pluggable tier, so legacy output is byte-for-byte unaffected.
func TestBackendStatsInRenderers(t *testing.T) {
	text := RenderStats(backendStats())
	for _, want := range []string{
		"backend (http): 3 hits, 2 misses, 4 degraded, 1 corrupt",
		"write-behind 1/32 queued, 4 written, 1 shed",
		"breaker open (7 refused, 9 retries)",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("stats text missing %q in:\n%s", want, text)
		}
	}

	rep := &core.Report{
		Project: core.LoadMap("s", map[string]string{"a.php": `<?php echo 1;`}),
		Mode:    core.ModeWAPe, Stats: backendStats(),
	}
	js := ToJSON(rep)
	if js.Stats.Backend == nil || js.Stats.Backend.Kind != "http" ||
		js.Stats.Backend.Envelope == nil || js.Stats.Backend.Envelope.Breaker != resultstore.BreakerOpen {
		t.Errorf("JSON backend account = %+v", js.Stats.Backend)
	}

	var buf bytes.Buffer
	if err := WriteHTML(&buf, rep); err != nil {
		t.Fatal(err)
	}
	html := buf.String()
	if !strings.Contains(html, "backend (http): 3 hits, 2 misses, 4 degraded, 1 corrupt") ||
		!strings.Contains(html, "breaker open") {
		t.Error("HTML report missing the backend summary line")
	}

	// No pluggable tier → no backend line anywhere.
	rep.Stats = sampleStats()
	if strings.Contains(RenderStats(rep.Stats), "backend (") {
		t.Error("stats text renders a backend line without a backend")
	}
	if js := ToJSON(rep); js.Stats.Backend != nil {
		t.Error("ToJSON fabricated a backend account")
	}
	buf.Reset()
	if err := WriteHTML(&buf, rep); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "backend (") {
		t.Error("HTML renders a backend line without a backend")
	}
}
