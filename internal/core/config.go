package core

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/vuln"
)

// ProjectConfig is the persistent per-application configuration the paper's
// Section V-A workflow implies: the user teaches the tool an application's
// own sanitization and validation functions once, and every later analysis
// of that application uses them. Stored as a `wap.conf` file next to the
// code:
//
//	# vfront's own escaping helper (paper Section V-A)
//	san escape
//	san-for sqli quote_smart
//	ep _APP_INPUT
//	sink audit_query arg=0 class=sqli
//
// Directives:
//
//	san <func>                 sanitizer for every class
//	san-for <class> <func>    sanitizer for one class
//	ep <superglobal>           extra entry point (without $)
//	sink <func> [arg=i] class=<class>   extra sensitive sink
type ProjectConfig struct {
	// Sanitizers apply to every class.
	Sanitizers []string
	// SanitizersFor maps a class to extra sanitizers for it only.
	SanitizersFor map[vuln.ClassID][]string
	// EntryPoints are extra input superglobals.
	EntryPoints []string
	// SinksFor maps a class to extra sinks.
	SinksFor map[vuln.ClassID][]vuln.Sink
}

// ParseProjectConfig reads a wap.conf stream.
func ParseProjectConfig(r io.Reader) (*ProjectConfig, error) {
	cfg := &ProjectConfig{
		SanitizersFor: make(map[vuln.ClassID][]string),
		SinksFor:      make(map[vuln.ClassID][]vuln.Sink),
	}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "san":
			if len(fields) != 2 {
				return nil, fmt.Errorf("core: wap.conf line %d: san needs a function name", lineNo)
			}
			cfg.Sanitizers = append(cfg.Sanitizers, strings.ToLower(fields[1]))
		case "san-for":
			if len(fields) != 3 {
				return nil, fmt.Errorf("core: wap.conf line %d: san-for needs a class and a function", lineNo)
			}
			id := vuln.ClassID(strings.ToLower(fields[1]))
			if vuln.Get(id) == nil {
				return nil, fmt.Errorf("core: wap.conf line %d: unknown class %q", lineNo, fields[1])
			}
			cfg.SanitizersFor[id] = append(cfg.SanitizersFor[id], strings.ToLower(fields[2]))
		case "ep":
			if len(fields) != 2 {
				return nil, fmt.Errorf("core: wap.conf line %d: ep needs a superglobal name", lineNo)
			}
			cfg.EntryPoints = append(cfg.EntryPoints, strings.TrimPrefix(fields[1], "$"))
		case "sink":
			if len(fields) < 3 {
				return nil, fmt.Errorf("core: wap.conf line %d: sink needs a name and class=", lineNo)
			}
			s := vuln.Sink{Name: strings.ToLower(fields[1])}
			var cls vuln.ClassID
			for _, opt := range fields[2:] {
				switch {
				case strings.HasPrefix(opt, "arg="):
					var idx int
					if _, err := fmt.Sscanf(opt, "arg=%d", &idx); err != nil || idx < 0 {
						return nil, fmt.Errorf("core: wap.conf line %d: bad %q", lineNo, opt)
					}
					s.Args = append(s.Args, idx)
				case strings.HasPrefix(opt, "class="):
					cls = vuln.ClassID(strings.ToLower(strings.TrimPrefix(opt, "class=")))
				case opt == "method":
					s.Method = true
				default:
					return nil, fmt.Errorf("core: wap.conf line %d: unknown option %q", lineNo, opt)
				}
			}
			if vuln.Get(cls) == nil {
				return nil, fmt.Errorf("core: wap.conf line %d: sink needs a valid class=", lineNo)
			}
			cfg.SinksFor[cls] = append(cfg.SinksFor[cls], s)
		default:
			return nil, fmt.Errorf("core: wap.conf line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("core: read wap.conf: %w", err)
	}
	return cfg, nil
}

// LoadProjectConfig reads a wap.conf file; a missing file yields an empty
// configuration without error.
func LoadProjectConfig(path string) (*ProjectConfig, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return &ProjectConfig{
			SanitizersFor: make(map[vuln.ClassID][]string),
			SinksFor:      make(map[vuln.ClassID][]vuln.Sink),
		}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("core: open %s: %w", path, err)
	}
	defer f.Close()
	return ParseProjectConfig(f)
}

// ApplyTo folds the project configuration into engine options.
func (c *ProjectConfig) ApplyTo(opts *Options) {
	opts.ExtraSanitizers = append(opts.ExtraSanitizers, c.Sanitizers...)
	opts.ExtraEntryPoints = append(opts.ExtraEntryPoints, c.EntryPoints...)
	if len(c.SanitizersFor) > 0 {
		if opts.ClassSanitizers == nil {
			opts.ClassSanitizers = make(map[vuln.ClassID][]string)
		}
		for id, sans := range c.SanitizersFor {
			opts.ClassSanitizers[id] = append(opts.ClassSanitizers[id], sans...)
		}
	}
	if len(c.SinksFor) > 0 {
		if opts.ClassSinks == nil {
			opts.ClassSinks = make(map[vuln.ClassID][]vuln.Sink)
		}
		for id, sinks := range c.SinksFor {
			opts.ClassSinks[id] = append(opts.ClassSinks[id], sinks...)
		}
	}
}
