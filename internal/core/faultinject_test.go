package core

// Fault-injection harness: Options.TaskHook lets a test force a panic, a
// stall or a budget blowup inside chosen (file, class) tasks, exactly where
// a real parser or taint-engine bug would strike. The assertions pin down
// the isolation contract: the scan always completes, keeps every unaffected
// task's findings, and records one diagnostic per injected fault. Future
// chaos tests (sharding, service mode) reuse the same hook.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/vuln"
)

const (
	xssPage  = `<?php echo $_GET['x'];`
	sqliPage = `<?php mysql_query("SELECT * FROM t WHERE id=" . $_GET['id']);`
)

func twoFileProject() *Project {
	return LoadMap("fault", map[string]string{
		"a.php": xssPage,
		"b.php": sqliPage,
	})
}

func newTestEngine(t *testing.T, opts Options) *Engine {
	t.Helper()
	if opts.Mode == 0 {
		opts.Mode = ModeWAPe
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	e, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func diagsOfKind(rep *Report, kind DiagKind) []Diagnostic {
	var out []Diagnostic
	for _, d := range rep.Diagnostics {
		if d.Kind == kind {
			out = append(out, d)
		}
	}
	return out
}

func hasFinding(rep *Report, file string, class vuln.ClassID) bool {
	for _, f := range rep.Findings {
		if f.Candidate.File == file && f.Candidate.Class == class {
			return true
		}
	}
	return false
}

// TestPanicInOneTaskIsIsolated injects a panic into exactly one (file,
// class) task and asserts the scan still completes with findings from every
// other task plus exactly one panic diagnostic.
func TestPanicInOneTaskIsIsolated(t *testing.T) {
	for _, par := range []int{1, 4} {
		e := newTestEngine(t, Options{
			Parallelism: par,
			TaskHook: func(file string, class vuln.ClassID) {
				if file == "a.php" && class == vuln.XSSR {
					panic("injected fault")
				}
			},
		})
		rep, err := e.Analyze(twoFileProject())
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		panics := diagsOfKind(rep, DiagPanic)
		if len(panics) != 1 {
			t.Fatalf("parallelism %d: %d panic diagnostics, want 1: %v", par, len(panics), rep.Diagnostics)
		}
		d := panics[0]
		if d.File != "a.php" || d.Class != vuln.XSSR {
			t.Errorf("panic diagnostic at %s[%s], want a.php[xss-r-ish]", d.File, d.Class)
		}
		if !strings.Contains(d.Message, "injected fault") {
			t.Errorf("panic message %q does not carry the panic value", d.Message)
		}
		if d.Stack == "" {
			t.Error("panic diagnostic has no stack trace")
		}
		if len(rep.Diagnostics) != 1 {
			t.Errorf("parallelism %d: extra diagnostics: %v", par, rep.Diagnostics)
		}
		// The panicked task's findings are gone; everything else survives.
		if hasFinding(rep, "a.php", vuln.XSSR) {
			t.Error("findings from the panicked task leaked into the report")
		}
		if !hasFinding(rep, "b.php", vuln.SQLI) {
			t.Error("unaffected task b.php/sqli lost its finding")
		}
		if !rep.Degraded() {
			t.Error("report with a panic diagnostic must be Degraded")
		}
	}
}

// TestPanicRecoveryIsDeterministic runs the same faulty scan twice and
// asserts findings and diagnostics come out identical.
func TestPanicRecoveryIsDeterministic(t *testing.T) {
	scan := func() *Report {
		e := newTestEngine(t, Options{
			Parallelism: 4,
			TaskHook: func(file string, class vuln.ClassID) {
				if file == "a.php" && class == vuln.XSSR {
					panic("boom")
				}
			},
		})
		rep, err := e.Analyze(twoFileProject())
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := scan(), scan()
	if len(a.Findings) != len(b.Findings) {
		t.Fatalf("finding counts differ: %d vs %d", len(a.Findings), len(b.Findings))
	}
	for i := range a.Findings {
		if a.Findings[i].Candidate.Key() != b.Findings[i].Candidate.Key() {
			t.Errorf("finding %d differs: %s vs %s", i,
				a.Findings[i].Candidate.Key(), b.Findings[i].Candidate.Key())
		}
	}
	if fmt.Sprint(describeDiags(a)) != fmt.Sprint(describeDiags(b)) {
		t.Errorf("diagnostics differ:\n%v\nvs\n%v", describeDiags(a), describeDiags(b))
	}
}

func describeDiags(rep *Report) []string {
	var out []string
	for _, d := range rep.Diagnostics {
		out = append(out, fmt.Sprintf("%s|%s|%s", d.Kind, d.File, d.Class))
	}
	return out
}

// TestStalledTaskIsCutOffAtDeadline injects a stall far beyond TaskTimeout
// and asserts the watchdog abandons the task, records a timeout diagnostic,
// and the rest of the scan is unaffected.
func TestStalledTaskIsCutOffAtDeadline(t *testing.T) {
	e := newTestEngine(t, Options{
		Parallelism: 2,
		TaskTimeout: 100 * time.Millisecond,
		TaskHook: func(file string, class vuln.ClassID) {
			if file == "a.php" && class == vuln.XSSR {
				time.Sleep(2 * time.Second)
			}
		},
	})
	start := time.Now()
	rep, err := e.Analyze(twoFileProject())
	if err != nil {
		t.Fatal(err)
	}
	timeouts := diagsOfKind(rep, DiagTimeout)
	if len(timeouts) != 1 {
		t.Fatalf("%d timeout diagnostics, want 1: %v", len(timeouts), rep.Diagnostics)
	}
	d := timeouts[0]
	if d.File != "a.php" || d.Class != vuln.XSSR {
		t.Errorf("timeout diagnostic at %s[%s], want the stalled task", d.File, d.Class)
	}
	if d.Elapsed < 100*time.Millisecond {
		t.Errorf("timeout diagnostic elapsed %v, want >= deadline", d.Elapsed)
	}
	if hasFinding(rep, "a.php", vuln.XSSR) {
		t.Error("findings from the abandoned task leaked into the report")
	}
	if !hasFinding(rep, "b.php", vuln.SQLI) {
		t.Error("unaffected task lost its finding")
	}
	// The scan must not have waited out the full stall.
	if took := time.Since(start); took > 1500*time.Millisecond {
		t.Errorf("scan took %v; the stalled task was not abandoned", took)
	}
}

// TestBudgetExhaustionDegradesConservatively gives tasks a tiny AST-step
// budget and asserts analysis completes with budget-exhausted diagnostics
// instead of hanging or crashing.
func TestBudgetExhaustionDegradesConservatively(t *testing.T) {
	// Budget 2 exhausts under both step granularities: the sqli page costs
	// ~10 AST-node steps on the walker and 3 IR-instruction steps on the IR
	// engine.
	e := newTestEngine(t, Options{
		Classes:    []vuln.ClassID{vuln.SQLI},
		TaskBudget: 2,
	})
	rep, err := e.Analyze(twoFileProject())
	if err != nil {
		t.Fatal(err)
	}
	budget := diagsOfKind(rep, DiagBudget)
	if len(budget) == 0 {
		t.Fatalf("no budget-exhausted diagnostics: %v", rep.Diagnostics)
	}
	for _, d := range budget {
		if d.Class != vuln.SQLI {
			t.Errorf("budget diagnostic for class %s, want sqli", d.Class)
		}
	}
}

// TestRunawayLoopNestingIsBounded builds the walker's worst case — loop
// bodies are traversed twice per nesting level, so N nested loops cost
// 2^N visits — and asserts the default budget turns the would-be hang into
// a budget-exhausted diagnostic in bounded time.
func TestRunawayLoopNestingIsBounded(t *testing.T) {
	depth := 26 // 2^26 visits ≫ DefaultTaskBudget
	var b strings.Builder
	b.WriteString("<?php\n")
	for i := 0; i < depth; i++ {
		b.WriteString("while ($c) {\n")
	}
	b.WriteString("echo $_GET['x'];\n")
	for i := 0; i < depth; i++ {
		b.WriteString("}\n")
	}
	proj := LoadMap("runaway", map[string]string{"deep.php": b.String()})
	e := newTestEngine(t, Options{Classes: []vuln.ClassID{vuln.XSSR}})
	done := make(chan *Report, 1)
	go func() {
		rep, err := e.Analyze(proj)
		if err != nil {
			t.Error(err)
		}
		done <- rep
	}()
	select {
	case rep := <-done:
		if len(diagsOfKind(rep, DiagBudget)) == 0 {
			t.Errorf("runaway walk recorded no budget diagnostic: %v", rep.Diagnostics)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("analysis did not terminate: step budget is not enforced")
	}
}

// TestCancellationReturnsPartialReport cancels the scan mid-flight and
// asserts AnalyzeContext hands back the completed subset plus an honest
// scan-level diagnostic, alongside the context error.
func TestCancellationReturnsPartialReport(t *testing.T) {
	e := newTestEngine(t, Options{
		Parallelism: 1,
		// Keep the full (file, class) grid so the scan reliably outlasts
		// the context deadline below.
		DisableSinkPrefilter: true,
		TaskHook: func(string, vuln.ClassID) {
			time.Sleep(5 * time.Millisecond)
		},
	})
	if err := e.Train(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	rep, err := e.AnalyzeContext(ctx, twoFileProject())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if rep == nil {
		t.Fatal("cancelled scan returned no partial report")
	}
	var scanDiag bool
	for _, d := range rep.Diagnostics {
		if d.File == "" && strings.Contains(d.Message, "cancelled") {
			scanDiag = true
		}
	}
	if !scanDiag {
		t.Errorf("no scan-level cancellation diagnostic: %v", rep.Diagnostics)
	}
}

// TestAnalyzeContextPreCancelled asserts an already-dead context fails fast.
func TestAnalyzeContextPreCancelled(t *testing.T) {
	e := newTestEngine(t, Options{})
	if err := e.Train(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.AnalyzeContext(ctx, twoFileProject()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestParseDegradedDiagnosticFlowsIntoReport checks the parser's nesting
// bound surfaces as a parse-degraded diagnostic on the final report.
func TestParseDegradedDiagnosticFlowsIntoReport(t *testing.T) {
	src := "<?php $x = " + strings.Repeat("(", 2000) + "1" + strings.Repeat(")", 2000) + ";"
	proj := LoadMap("deep", map[string]string{"nest.php": src, "ok.php": sqliPage})
	if len(proj.Diagnostics) == 0 {
		t.Fatal("project recorded no diagnostics for a degraded parse")
	}
	e := newTestEngine(t, Options{Classes: []vuln.ClassID{vuln.SQLI}})
	rep, err := e.Analyze(proj)
	if err != nil {
		t.Fatal(err)
	}
	degraded := diagsOfKind(rep, DiagParseDegraded)
	if len(degraded) != 1 || degraded[0].File != "nest.php" {
		t.Fatalf("parse-degraded diagnostics = %v, want one for nest.php", degraded)
	}
	if !hasFinding(rep, "ok.php", vuln.SQLI) {
		t.Error("healthy file lost its finding next to a degraded one")
	}
}

// TestNoFaultsMeansNoDiagnostics pins the clean-path contract: a healthy
// scan reports zero diagnostics and Degraded() == false.
func TestNoFaultsMeansNoDiagnostics(t *testing.T) {
	e := newTestEngine(t, Options{})
	rep, err := e.Analyze(twoFileProject())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Degraded() || len(rep.Diagnostics) != 0 {
		t.Errorf("clean scan degraded: %v", rep.Diagnostics)
	}
	if n := rep.DiagnosticsByKind(); len(n) != 0 {
		t.Errorf("DiagnosticsByKind = %v, want empty", n)
	}
}
