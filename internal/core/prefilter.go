package core

import (
	"strings"

	"repro/internal/php/ast"
	"repro/internal/vuln"
)

// The sink pre-filter skips (file, class) tasks that provably cannot produce
// a candidate: every candidate needs tainted data reaching one of the
// class's sinks, and a sink call site always spells the sink's name (or a
// language-construct alias) literally in some analyzed source file. A task
// on file X can reach sinks in X itself and — through inlined user-function
// calls — in any file declaring a function X's call graph mentions, so the
// check runs over X's reachable-file closure, not X alone. Dynamic calls
// ($f(...), $obj->$m(...)) are never matched against sinks by the analyzer,
// so ignoring them here loses no soundness.
//
// A skipped task is equivalent to a completed task with zero findings; the
// skip is recorded in the scan statistics, not as a diagnostic.

// sinkTokens returns the lower-case source substrings whose total absence
// from a file proves the file contains no call site of any of the class's
// sinks. Language-construct sinks have lexical aliases: echo also appears as
// the `<?=` short tag, include covers require (and the substring match
// covers the _once variants), exit covers die.
func sinkTokens(cls *vuln.Class, extra []vuln.Sink) []string {
	seen := make(map[string]bool)
	var out []string
	add := func(tok string) {
		if !seen[tok] {
			seen[tok] = true
			out = append(out, tok)
		}
	}
	for _, set := range [][]vuln.Sink{cls.Sinks, extra} {
		for _, s := range set {
			switch s.Name {
			case "echo":
				add("echo")
				add("<?=")
			case "include":
				add("include")
				add("require")
			case "exit":
				add("exit")
				add("die")
			default:
				add(s.Name)
			}
		}
	}
	return out
}

// calledNames collects every statically named callable a file mentions:
// plain calls, method calls and static calls, lower-cased. These are the
// only names the analyzer can resolve to user functions in other files.
func calledNames(f *ast.File) map[string]bool {
	names := make(map[string]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if name := ast.CalleeName(x); name != "" {
				names[name] = true
			}
		case *ast.MethodCallExpr:
			if x.DynName == nil && x.Name != "" {
				names[strings.ToLower(x.Name)] = true
			}
		case *ast.StaticCallExpr:
			if x.Name != "" {
				names[strings.ToLower(x.Name)] = true
			}
		}
		return true
	})
	return names
}

// declaredNames collects the callable names a file declares (functions by
// bare name, methods by bare method name), lower-cased.
func declaredNames(f *SourceFile) []string {
	var out []string
	for key := range f.AST.Funcs {
		if i := strings.Index(key, "::"); i >= 0 {
			out = append(out, key[i+2:])
		} else {
			out = append(out, key)
		}
	}
	return out
}

// prefilter precomputes, per file, the set of files reachable through the
// static call-name graph (including the file itself), so sinkReachable
// answers in O(closure size) memoized token lookups.
type prefilter struct {
	files    []*SourceFile
	reach    [][]int // per file index: reachable file indices (self included)
	tokCache map[vuln.ClassID][]string
	// closureToks memoizes, per file index, whether a sink token appears
	// anywhere in the file's reachable closure. Classes share sink tokens
	// heavily (echo/print across the XSS classes, mysql_query across the
	// SQL classes), so the closure is walked once per (file, token) instead
	// of once per (file, class, token). planScan drives the pre-filter from
	// a single goroutine, so the memo needs no lock.
	closureToks []map[string]bool
}

// newPrefilter builds the reachability closure for p's files.
func newPrefilter(p *Project) *prefilter {
	return &prefilter{
		files:       p.Files,
		reach:       fileClosures(p),
		tokCache:    make(map[vuln.ClassID][]string),
		closureToks: make([]map[string]bool, len(p.Files)),
	}
}

// closureHasToken reports whether tok appears in any file of fileIdx's
// reachable closure, walking the closure at most once per (file, token).
func (pf *prefilter) closureHasToken(fileIdx int, tok string) bool {
	m := pf.closureToks[fileIdx]
	if m == nil {
		m = make(map[string]bool)
		pf.closureToks[fileIdx] = m
	}
	present, ok := m[tok]
	if !ok {
		for _, j := range pf.reach[fileIdx] {
			if pf.files[j].hasToken(tok) {
				present = true
				break
			}
		}
		m[tok] = present
	}
	return present
}

// fileClosures computes, per file index, the set of files reachable through
// the static call-name graph (self included): every file declaring a
// callable name that the closure's files mention. This is exactly the file
// set whose contents can influence a task on the root file — taint analysis
// resolves calls by name project-wide, so any file declaring a called name
// is reachable through inlining. Both the sink pre-filter and the
// incremental planner's closure fingerprints are built on it.
func fileClosures(p *Project) [][]int {
	declIn := make(map[string][]int) // callable name -> declaring file indices
	called := make([]map[string]bool, len(p.Files))
	for i, f := range p.Files {
		called[i] = f.calledNames()
		for _, name := range declaredNames(f) {
			declIn[name] = append(declIn[name], i)
		}
	}
	reach := make([][]int, len(p.Files))
	for i := range p.Files {
		visited := make([]bool, len(p.Files))
		visited[i] = true
		queue := []int{i}
		closure := []int{i}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for name := range called[cur] {
				for _, j := range declIn[name] {
					if !visited[j] {
						visited[j] = true
						queue = append(queue, j)
						closure = append(closure, j)
					}
				}
			}
		}
		reach[i] = closure
	}
	return reach
}

// sinkReachable reports whether any file in fileIdx's reachable closure
// lexically contains a sink token of cls: if none does, the (file, class)
// task cannot produce a candidate and may be skipped.
func (pf *prefilter) sinkReachable(fileIdx int, cls *vuln.Class, extra []vuln.Sink) bool {
	toks, ok := pf.tokCache[cls.ID]
	if !ok {
		toks = sinkTokens(cls, extra)
		pf.tokCache[cls.ID] = toks
	}
	for _, tok := range toks {
		if pf.closureHasToken(fileIdx, tok) {
			return true
		}
	}
	return false
}
