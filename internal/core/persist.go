package core

import (
	"sync"

	"repro/internal/php/ast"
	"repro/internal/php/token"
	"repro/internal/resultstore"
	"repro/internal/taint"
	"repro/internal/vuln"
)

// checkpointer persists partial snapshots while a scan is still executing,
// so a process killed mid-scan leaves its completed tasks warm in the store
// for the resumed attempt. Every partial snapshot is a valid snapshot — the
// plan's reused entries plus the cleanly completed tasks so far — and
// correctness never depends on one existing: fingerprints gate all reuse, so
// a missing, stale or torn checkpoint only costs re-execution. The final
// persistSnapshot on scan completion supersedes the last checkpoint.
//
// A nil *checkpointer is valid and inert, so call sites need no guards.
type checkpointer struct {
	p    *Project
	plan *scanPlan
	so   ScanOpts

	mu sync.Mutex
	// ix is the encoder's node indexer, shared across workers under mu
	// (nodeIndexer itself is not concurrency-safe).
	ix *nodeIndexer
	// fresh accumulates the entries of cleanly completed first-attempt
	// tasks, keyed by fingerprint.
	fresh map[string]*resultstore.TaskEntry
	done  int
	stats *statsCollector
}

// newCheckpointer returns nil — no checkpointing — unless a store is
// attached and a cadence is configured.
func newCheckpointer(p *Project, plan *scanPlan, so ScanOpts, stats *statsCollector) *checkpointer {
	if so.Store == nil || so.CheckpointEvery <= 0 || plan.store == nil {
		return nil
	}
	return &checkpointer{
		p: p, plan: plan, so: so,
		ix:    newNodeIndexer(p),
		fresh: make(map[string]*resultstore.TaskEntry),
		stats: stats,
	}
}

// taskDone records one dispositioned execution task. persistable marks a
// clean first-attempt completion, the only outcome whose findings enter the
// checkpoint (mirroring execState.clean). Every CheckpointEvery-th
// disposition persists a partial snapshot.
func (c *checkpointer) taskDone(i int, findings []*Finding, steps int, persistable bool) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.done++
	if persistable {
		if fs, ok := c.ix.encodeTask(findings); ok {
			t := c.plan.tasks[i]
			c.fresh[c.plan.fingerprints[i]] = &resultstore.TaskEntry{
				File: t.file.Path, Class: string(t.cls.ID),
				Steps: steps, Findings: fs,
			}
		}
	}
	if c.done%c.so.CheckpointEvery == 0 && c.done < len(c.plan.execIdx) {
		c.save()
	}
}

// save persists the current partial snapshot: reused entries verbatim plus
// the fresh completions so far. Best-effort, like every store save. Caller
// holds c.mu.
func (c *checkpointer) save() {
	snap := resultstore.NewSnapshot(c.p.Name, c.plan.digest)
	for i, ok := range c.plan.reusedOK {
		if ok {
			snap.Tasks[c.plan.fingerprints[i]] = c.plan.entries[i]
		}
	}
	for fp, entry := range c.fresh {
		snap.Tasks[fp] = entry
	}
	if err := c.plan.store.Save(snap); err != nil {
		return
	}
	c.stats.recordCheckpoint()
	if c.so.OnCheckpoint != nil {
		c.so.OnCheckpoint(c.done, len(c.plan.execIdx))
	}
}

// Findings carry live AST pointers (the sink call, the tainted argument, the
// trace nodes) that post-merge consumers — the stored-XSS linker, symptom
// justification, the code corrector — dereference. Persisting them therefore
// needs a serializable node address. The address used here is the node's
// index in ast.Inspect's deterministic preorder walk of its file: a task is
// only reused when every file in its closure is byte-identical, re-parsing
// identical bytes yields an identical AST, so the same index resolves to the
// same node. Both directions are conservative about failure: a finding whose
// node cannot be indexed is simply not persisted, and a stored finding whose
// reference cannot be resolved fails the whole task entry, which then
// re-executes.

// nodeIndexer lazily builds per-file node→index and index→node tables over a
// project's ASTs. It is not safe for concurrent use; the engine encodes and
// decodes only on the coordinating goroutine.
type nodeIndexer struct {
	p       *Project
	byNode  map[string]map[ast.Node]int
	byIndex map[string][]ast.Node
}

func newNodeIndexer(p *Project) *nodeIndexer {
	return &nodeIndexer{
		p:       p,
		byNode:  make(map[string]map[ast.Node]int),
		byIndex: make(map[string][]ast.Node),
	}
}

func (ix *nodeIndexer) build(path string) bool {
	if _, ok := ix.byIndex[path]; ok {
		return true
	}
	sf := ix.p.File(path)
	if sf == nil {
		return false
	}
	nodes := []ast.Node{}
	index := make(map[ast.Node]int)
	ast.Inspect(sf.AST, func(n ast.Node) bool {
		index[n] = len(nodes)
		nodes = append(nodes, n)
		return true
	})
	ix.byNode[path] = index
	ix.byIndex[path] = nodes
	return true
}

// ref addresses n within file. A nil node encodes as index -1.
func (ix *nodeIndexer) ref(file string, n ast.Node) (resultstore.NodeRef, bool) {
	if n == nil {
		return resultstore.NodeRef{Index: -1}, true
	}
	if ix.build(file) {
		if i, ok := ix.byNode[file][n]; ok {
			return resultstore.NodeRef{File: file, Index: i}, true
		}
	}
	// Trace steps can reference nodes in other files (inlined callees);
	// fall back to the step's own file before giving up.
	for _, sf := range ix.p.Files {
		if sf.Path == file || !ix.build(sf.Path) {
			continue
		}
		if i, ok := ix.byNode[sf.Path][n]; ok {
			return resultstore.NodeRef{File: sf.Path, Index: i}, true
		}
	}
	return resultstore.NodeRef{}, false
}

// resolve returns the node a ref addresses, or (nil, true) for the nil ref.
func (ix *nodeIndexer) resolve(r resultstore.NodeRef) (ast.Node, bool) {
	if r.Index < 0 {
		return nil, true
	}
	if !ix.build(r.File) {
		return nil, false
	}
	nodes := ix.byIndex[r.File]
	if r.Index >= len(nodes) {
		return nil, false
	}
	return nodes[r.Index], true
}

func encodePos(p token.Position) resultstore.Position {
	return resultstore.Position{File: p.File, Offset: p.Offset, Line: p.Line, Column: p.Column}
}

func decodePos(p resultstore.Position) token.Position {
	return token.Position{File: p.File, Offset: p.Offset, Line: p.Line, Column: p.Column}
}

// encodeTask serializes one task's findings. ok is false when any node could
// not be addressed; the caller must then skip persisting the task.
func (ix *nodeIndexer) encodeTask(findings []*Finding) ([]resultstore.Finding, bool) {
	if len(findings) == 0 {
		return nil, true
	}
	out := make([]resultstore.Finding, 0, len(findings))
	for _, f := range findings {
		c := f.Candidate
		sinkRef, ok := ix.ref(c.File, c.SinkCall)
		if !ok {
			return nil, false
		}
		exprRef, ok := ix.ref(c.File, c.TaintedExpr)
		if !ok {
			return nil, false
		}
		val := resultstore.Value{
			Tainted:    c.Value.Tainted,
			Sanitizers: c.Value.Sanitizers,
		}
		for _, s := range c.Value.Sources {
			val.Sources = append(val.Sources, resultstore.Source{Name: s.Name, Pos: encodePos(s.Pos)})
		}
		for _, st := range c.Value.Trace {
			nodeRef, ok := ix.ref(st.Pos.File, st.Node)
			if !ok {
				return nil, false
			}
			val.Trace = append(val.Trace, resultstore.Step{
				Pos: encodePos(st.Pos), Desc: st.Desc, Node: nodeRef,
			})
		}
		out = append(out, resultstore.Finding{
			Class:         string(c.Class),
			SinkName:      c.SinkName,
			SinkPos:       encodePos(c.SinkPos),
			SinkCall:      sinkRef,
			ArgIndex:      c.ArgIndex,
			TaintedExpr:   exprRef,
			Value:         val,
			EnclosingFunc: c.EnclosingFunc,
			File:          c.File,
			Symptoms:      f.Symptoms,
			PredictedFP:   f.PredictedFP,
			Votes:         f.Votes,
			Weapon:        f.Weapon,
		})
	}
	return out, true
}

// decodeTask rebinds one stored task entry against the current project's
// ASTs. ok is false when any reference fails to resolve (the entry is then
// treated as a fingerprint miss and the task re-executes).
func (ix *nodeIndexer) decodeTask(entry *resultstore.TaskEntry) ([]*Finding, bool) {
	var out []*Finding
	for i := range entry.Findings {
		sf := &entry.Findings[i]
		sinkNode, ok := ix.resolve(sf.SinkCall)
		if !ok {
			return nil, false
		}
		exprNode, ok := ix.resolve(sf.TaintedExpr)
		if !ok {
			return nil, false
		}
		expr, _ := exprNode.(ast.Expr)
		if exprNode != nil && expr == nil {
			return nil, false
		}
		c := &taint.Candidate{
			Class:         vuln.ClassID(sf.Class),
			SinkName:      sf.SinkName,
			SinkPos:       decodePos(sf.SinkPos),
			SinkCall:      sinkNode,
			ArgIndex:      sf.ArgIndex,
			TaintedExpr:   expr,
			EnclosingFunc: sf.EnclosingFunc,
			File:          sf.File,
		}
		c.Value = taint.Value{
			Tainted:    sf.Value.Tainted,
			Sanitizers: sf.Value.Sanitizers,
		}
		for _, s := range sf.Value.Sources {
			c.Value.Sources = append(c.Value.Sources, taint.Source{Name: s.Name, Pos: decodePos(s.Pos)})
		}
		for _, st := range sf.Value.Trace {
			n, ok := ix.resolve(st.Node)
			if !ok {
				return nil, false
			}
			c.Value.Trace = append(c.Value.Trace, taint.Step{
				Pos: decodePos(st.Pos), Desc: st.Desc, Node: n,
			})
		}
		out = append(out, &Finding{
			Candidate:   c,
			Symptoms:    sf.Symptoms,
			PredictedFP: sf.PredictedFP,
			Votes:       sf.Votes,
			Weapon:      sf.Weapon,
		})
	}
	return out, true
}
