package core

import (
	"testing"

	"repro/internal/corpus"
)

// TestParallelMatchesSequential asserts the worker pool produces exactly the
// same report as sequential analysis, in the same order.
func TestParallelMatchesSequential(t *testing.T) {
	app := corpus.WebAppSuite(2016)[16] // the largest generated app
	proj := LoadMap(app.Name, app.Files)

	runWith := func(par int) []*Finding {
		e, err := New(Options{Mode: ModeWAPe, Seed: 1, Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Train(); err != nil {
			t.Fatal(err)
		}
		rep, err := e.Analyze(proj)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Findings
	}

	seq := runWith(1)
	for _, par := range []int{2, 4, 8} {
		got := runWith(par)
		if len(got) != len(seq) {
			t.Fatalf("parallelism %d: %d findings vs %d sequential", par, len(got), len(seq))
		}
		for i := range got {
			if got[i].Candidate.Key() != seq[i].Candidate.Key() {
				t.Fatalf("parallelism %d: finding %d differs: %s vs %s",
					par, i, got[i].Candidate.Key(), seq[i].Candidate.Key())
			}
			if got[i].PredictedFP != seq[i].PredictedFP {
				t.Fatalf("parallelism %d: finding %d prediction differs", par, i)
			}
		}
	}
}

// TestDetectionTotalsInvariantAcrossSeeds asserts the taint detector finds
// exactly the planted vulnerabilities for any corpus seed — the detection
// columns of Table VI do not depend on the seed, only the FPP/FP columns
// (decided by trained classifiers) may drift slightly.
func TestDetectionTotalsInvariantAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed suite runs")
	}
	for _, seed := range []int64{7, 99, 31337} {
		e, err := New(Options{Mode: ModeWAPe, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Train(); err != nil {
			t.Fatal(err)
		}
		totalFound, totalPlanted := 0, 0
		for _, app := range corpus.WebAppSuite(seed) {
			proj := LoadMap(app.Name, app.Files)
			rep, err := e.Analyze(proj)
			if err != nil {
				t.Fatal(err)
			}
			totalPlanted += len(app.Spots) // vulnerable + FP spots all produce candidates
			// Count grouped candidates matched to spots.
			found := 0
			matched := make(map[int]bool)
			for _, f := range rep.Findings {
				for i, spot := range app.Spots {
					if matched[i] {
						continue
					}
					if spot.Contains(f.Candidate.File, f.Candidate.SinkPos.Line) {
						matched[i] = true
						found++
						break
					}
				}
			}
			totalFound += found
		}
		if totalPlanted != 413+122 {
			t.Fatalf("seed %d: planted spots = %d, want 535", seed, totalPlanted)
		}
		if totalFound != totalPlanted {
			t.Errorf("seed %d: matched %d of %d planted spots", seed, totalFound, totalPlanted)
		}
	}
}
