package core

import (
	"context"
	"sync"
	"testing"

	"repro/internal/vuln"
)

// TestCheckpointEveryDisposition pins the checkpoint cadence: with
// CheckpointEvery 1 every dispositioned execution task flushes a partial
// snapshot except the last (the final persist on completion covers it), each
// flush invokes OnCheckpoint, and the count lands in Stats.Checkpoints.
func TestCheckpointEveryDisposition(t *testing.T) {
	store := openTestStore(t, t.TempDir())
	files := incrementalFiles()

	var mu sync.Mutex
	type call struct{ done, total int }
	var calls []call
	e := newTestEngine(t, incrementalOpts())
	rep, err := e.AnalyzeScan(context.Background(), LoadMap("app", files), ScanOpts{
		Store:           store,
		CheckpointEvery: 1,
		OnCheckpoint: func(done, total int) {
			mu.Lock()
			defer mu.Unlock()
			calls = append(calls, call{done, total})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Tasks < 2 {
		t.Fatalf("corpus executed %d tasks; checkpoint cadence check is vacuous", rep.Stats.Tasks)
	}
	if len(calls) != rep.Stats.Tasks-1 {
		t.Errorf("%d checkpoint calls for %d tasks, want tasks-1", len(calls), rep.Stats.Tasks)
	}
	for i, c := range calls {
		if c.total != rep.Stats.Tasks {
			t.Errorf("call %d total = %d, want %d", i, c.total, rep.Stats.Tasks)
		}
		if c.done < 1 || c.done >= c.total {
			t.Errorf("call %d done = %d out of range (total %d)", i, c.done, c.total)
		}
	}
	if rep.Stats.Checkpoints != len(calls) {
		t.Errorf("Stats.Checkpoints = %d, want %d", rep.Stats.Checkpoints, len(calls))
	}
	// The final persist still ran: a warm rescan reuses everything.
	warm := scanWithStore(t, incrementalOpts(), files, store)
	if warm.Stats.Tasks != 0 {
		t.Errorf("warm scan after checkpointed scan executed %d tasks", warm.Stats.Tasks)
	}
}

// TestCheckpointResumeAfterCancel is the crash-warmth claim at the engine
// layer: a scan cancelled mid-way leaves its completed tasks checkpointed, so
// the resume reuses them and still produces the uninterrupted scan's findings.
func TestCheckpointResumeAfterCancel(t *testing.T) {
	store := openTestStore(t, t.TempDir())
	files := incrementalFiles()

	baseline := scanWithStore(t, incrementalOpts(), files, openTestStore(t, t.TempDir()))
	if len(baseline.Findings) == 0 {
		t.Fatal("corpus produced no findings; resume check is vacuous")
	}

	// Cancel at the start of the third task: tasks one and two completed and
	// were checkpointed, the rest die with the scan.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mu sync.Mutex
	started := 0
	opts := incrementalOpts()
	opts.TaskHook = func(file string, class vuln.ClassID) {
		mu.Lock()
		defer mu.Unlock()
		started++
		if started == 3 {
			cancel()
		}
	}
	e := newTestEngine(t, opts)
	if _, err := e.AnalyzeScan(ctx, LoadMap("app", files), ScanOpts{
		Store:           store,
		CheckpointEvery: 1,
	}); err == nil {
		t.Log("cancelled scan completed anyway; resume check may be vacuous")
	}

	// The resume: a fresh engine against the checkpointed store.
	e2 := newTestEngine(t, incrementalOpts())
	resumed, err := e2.AnalyzeScan(context.Background(), LoadMap("app", files), ScanOpts{
		Store:   store,
		Resumes: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Stats.TasksReused == 0 {
		t.Error("resume reused nothing; mid-scan checkpoints were lost")
	}
	if resumed.Stats.Resumes != 1 {
		t.Errorf("Stats.Resumes = %d, want 1", resumed.Stats.Resumes)
	}
	if got, want := findingKeys(resumed), findingKeys(baseline); !equalStrings(got, want) {
		t.Errorf("resumed findings differ from the uninterrupted scan:\nresumed: %v\nbaseline: %v", got, want)
	}
}

// TestCheckpointsOffByDefault pins that plain scans never pay the mid-scan
// save I/O: without CheckpointEvery the callback must not fire and the stats
// stay silent.
func TestCheckpointsOffByDefault(t *testing.T) {
	store := openTestStore(t, t.TempDir())
	called := 0
	e := newTestEngine(t, incrementalOpts())
	rep, err := e.AnalyzeScan(context.Background(), LoadMap("app", incrementalFiles()), ScanOpts{
		Store:        store,
		OnCheckpoint: func(done, total int) { called++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if called != 0 {
		t.Errorf("OnCheckpoint fired %d time(s) with CheckpointEvery 0", called)
	}
	if rep.Stats.Checkpoints != 0 {
		t.Errorf("Stats.Checkpoints = %d, want 0", rep.Stats.Checkpoints)
	}
}
