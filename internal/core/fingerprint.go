package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"sort"

	"repro/internal/ir"
	"repro/internal/resultstore"
	"repro/internal/vuln"
)

// Incremental scans key every (file, class) task by a closure fingerprint:
// the SHA-256 of the engine's config digest, the class, and the content hash
// of every file in the task file's reachable closure. A stored result is
// reused only on an exact fingerprint match, so any change that could alter
// the task's findings — the file itself, any file its call graph can reach,
// the class definitions, the trained model — forces a re-execute.

// configDigest hashes every engine input that can influence findings: mode,
// class set (sinks, sanitizers, entry points, fix IDs), weapons with their
// fixes and dynamic symptoms, user-supplied sanitizers/entry points/sinks,
// the effective AST-step budget, and the trained model's inputs (seed,
// training size, ARFF content). Scheduling knobs (parallelism, timeouts,
// retries, breakers) are deliberately excluded: they never change what a
// cleanly completed task finds, only whether and when it runs.
func (e *Engine) configDigest() string {
	e.digestOnce.Do(func() {
		h := sha256.New()
		put := func(format string, args ...any) {
			fmt.Fprintf(h, format+"\x00", args...)
		}
		put("store-format=%d", resultstore.FormatVersion)
		put("mode=%d seed=%d trainsize=%d", e.opts.Mode, e.opts.Seed, e.opts.TrainSize)
		put("budget=%d", e.effectiveBudget())
		if e.opts.TrainARFF != "" {
			if data, err := os.ReadFile(e.opts.TrainARFF); err == nil {
				put("arff=%x", sha256.Sum256(data))
			} else {
				// An unreadable training set will fail Train anyway; the
				// error string keeps the digest distinct from the no-ARFF
				// configuration.
				put("arff-err=%v", err)
			}
		}
		for _, s := range e.opts.ExtraSanitizers {
			put("san=%s", s)
		}
		for _, ep := range e.opts.ExtraEntryPoints {
			put("ep=%s", ep)
		}
		for _, id := range sortedClassIDs(e.opts.ClassSanitizers) {
			put("san-for=%s:%q", id, e.opts.ClassSanitizers[id])
		}
		for _, id := range sortedClassIDs(e.opts.ClassSinks) {
			put("sinks-for=%s:%+v", id, e.opts.ClassSinks[id])
		}
		// The class set covers weapon-generated classes too; %+v renders
		// every sink/sanitizer/entry-point list of the definition.
		for _, cls := range e.classes {
			put("class=%+v", *cls)
		}
		for _, w := range e.opts.Weapons {
			put("weapon=%s fix=%+v dynamics=%+v", w.Class.ID, *w.Fix, w.Dynamics)
		}
		// Hot-reloaded weapon sets carry the registry revision so every
		// swap rotates the fingerprint space (see Options.WeaponSetRevision).
		// Zero is skipped to keep static-weapon digests stable across the
		// feature's introduction.
		if e.opts.WeaponSetRevision != 0 {
			put("weapon-rev=%d", e.opts.WeaponSetRevision)
		}
		// The IR engine's lowering revision: bumping ir.Revision (a semantics
		// change in the lowering) rotates every fingerprint, so incremental
		// stores filled under older lowering rules self-invalidate. Skipped
		// when the IR engine is off — legacy-engine findings are unaffected
		// by lowering semantics, and the skip keeps pre-IR digests stable.
		if !e.opts.DisableIR {
			put("ir-rev=%d", ir.Revision)
		}
		e.digestVal = hex.EncodeToString(h.Sum(nil))
	})
	return e.digestVal
}

func sortedClassIDs[V any](m map[vuln.ClassID]V) []vuln.ClassID {
	ids := make([]vuln.ClassID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// effectiveBudget resolves Options.TaskBudget to the value tasks actually
// run with (0 = unlimited).
func (e *Engine) effectiveBudget() int {
	switch b := e.opts.TaskBudget; {
	case b == 0:
		return DefaultTaskBudget
	case b < 0:
		return 0
	default:
		return b
	}
}

// closureHashes computes one hash per file: the content hashes of every file
// in its reachable closure, folded in path order so the hash depends only on
// the closure's membership and contents, not on BFS discovery order.
func closureHashes(p *Project, reach [][]int) []string {
	out := make([]string, len(p.Files))
	for i, closure := range reach {
		sorted := append([]int(nil), closure...)
		sort.Slice(sorted, func(a, b int) bool {
			return p.Files[sorted[a]].Path < p.Files[sorted[b]].Path
		})
		h := sha256.New()
		for _, j := range sorted {
			f := p.Files[j]
			fmt.Fprintf(h, "%s\x00", f.Path)
			h.Write(f.Hash[:])
		}
		out[i] = hex.EncodeToString(h.Sum(nil))
	}
	return out
}

// taskFingerprint is the store key of one (file, class) task.
func taskFingerprint(configDigest string, cls vuln.ClassID, closureHash string) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00%s", configDigest, cls, closureHash)
	return hex.EncodeToString(h.Sum(nil))
}
