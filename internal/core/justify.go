package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/symptom"
)

// Justification explains a false positive prediction (the "justifying false
// positives" stage of the predictor, paper Fig. 3): which symptoms were
// found, grouped by category, and how the ensemble voted.
type Justification struct {
	// ByCategory maps each symptom category to the present symptom names.
	ByCategory map[symptom.Category][]string
	// Votes are the per-classifier decisions.
	Votes []bool
	// VoterNames name the ensemble members in vote order.
	VoterNames []string
}

// Justify builds the justification for a finding. It is meaningful for
// predicted false positives but works for any finding.
func (e *Engine) Justify(f *Finding) *Justification {
	j := &Justification{
		ByCategory: make(map[symptom.Category][]string),
		Votes:      append([]bool(nil), f.Votes...),
	}
	for _, m := range e.ensemble.Members {
		j.VoterNames = append(j.VoterNames, m.Name())
	}
	for _, s := range symptom.Catalog() {
		if f.Symptoms[s.Name] {
			j.ByCategory[s.Category] = append(j.ByCategory[s.Category], s.Name)
		}
	}
	for _, names := range j.ByCategory {
		sort.Strings(names)
	}
	return j
}

// String renders a one-paragraph human-readable justification.
func (j *Justification) String() string {
	var parts []string
	for _, cat := range [...]symptom.Category{
		symptom.Validation, symptom.StringManipulation, symptom.SQLQueryManipulation,
	} {
		if names := j.ByCategory[cat]; len(names) > 0 {
			parts = append(parts, fmt.Sprintf("%s: %s", cat, strings.Join(names, ", ")))
		}
	}
	if len(parts) == 0 {
		parts = append(parts, "no symptoms found")
	}
	votes := make([]string, len(j.Votes))
	for i, v := range j.Votes {
		name := fmt.Sprintf("#%d", i+1)
		if i < len(j.VoterNames) {
			name = j.VoterNames[i]
		}
		if v {
			votes[i] = name + ":FP"
		} else {
			votes[i] = name + ":vuln"
		}
	}
	return strings.Join(parts, "; ") + " [" + strings.Join(votes, " ") + "]"
}
