package core

import (
	"sort"
	"sync"
	"time"

	"repro/internal/ir"
	"repro/internal/resultstore"
	"repro/internal/vuln"
)

// ClassStats aggregates scan counters for one vulnerability class.
type ClassStats struct {
	// Tasks is the number of (file, class) tasks executed for the class;
	// Skipped the number dropped by the sink pre-filter.
	Tasks   int
	Skipped int
	// Steps is the total AST-node count the class's tasks visited.
	Steps int64
	// CacheHits / CacheMisses count shared-summary lookups by the class's
	// tasks (hits replay a committed summary; misses opened a fill attempt).
	CacheHits   int64
	CacheMisses int64
	// Wall is the accumulated wall time of the class's tasks (sums across
	// parallel workers, so it can exceed the scan's Duration).
	Wall time.Duration
	// Findings is the number of candidates the class's tasks produced.
	Findings int
	// Retries counts retry-ladder attempts spent on the class's tasks;
	// Recovered the tasks that completed cleanly after at least one retry.
	Retries   int
	Recovered int
	// BreakerSkipped counts tasks skipped because the class's circuit
	// breaker was open.
	BreakerSkipped int
	// Reused counts the class's tasks satisfied from the result store.
	Reused int
	// Weapon marks classes that came from a linked weapon (builtin or
	// hot-reloaded), so renderers can attribute the class's account to the
	// weapon by name (the class ID is the weapon name).
	Weapon bool
}

// ScanStats is the scan's performance account, carried on Report.Stats.
// All numbers describe the work performed, which depends on scheduling and
// caching; the findings themselves are identical with or without the cache
// and pre-filter.
type ScanStats struct {
	// Tasks executed / skipped by the sink pre-filter (their sum is the
	// full (file, class) grid minus nothing — a skipped task is a task
	// proven to have zero findings without running).
	Tasks        int
	TasksSkipped int
	// TotalSteps / MaxTaskSteps summarize AST-step consumption.
	TotalSteps   int64
	MaxTaskSteps int64
	// CacheHits / CacheMisses / CacheEntries describe the shared summary
	// cache: lookups that replayed a committed summary, eligible lookups
	// that found none, and entries committed by cleanly completed tasks.
	CacheHits    int64
	CacheMisses  int64
	CacheEntries int
	// TaskRetries counts retry-ladder attempts across all tasks;
	// TasksRecovered the tasks whose transient fault the ladder recovered;
	// BreakerSkipped the tasks skipped because their class's circuit
	// breaker was open.
	TaskRetries    int
	TasksRecovered int
	BreakerSkipped int
	// Incremental-scan account (all zero when no result store is attached).
	// FingerprintHits counts planned tasks whose fingerprint was present in
	// the previous snapshot; TasksReused those the hit actually satisfied
	// (a hit whose entry fails to rebind re-executes, so hits ≥ reused);
	// FingerprintMisses the planned store lookups that found nothing;
	// StepsSaved the AST steps the reused entries spent when they originally
	// executed.
	TasksReused       int
	FingerprintHits   int
	FingerprintMisses int
	StepsSaved        int64
	// ParseWall / LoadWorkers mirror the project's LoadStats: wall time of
	// the load-phase read+hash+parse work and the worker count that ran it.
	// Both are zero for hand-assembled projects, and omitted from renderers
	// when zero.
	ParseWall   time.Duration
	LoadWorkers int
	// Durability account (all zero outside the durable-job path and store
	// self-healing events; omitted from renderers when zero).
	// StoreQuarantined counts snapshots moved aside as unreadable this scan;
	// StoreSalvaged the undecodable task entries dropped from an otherwise
	// readable snapshot; Checkpoints the partial snapshots persisted
	// mid-scan; Resumes how many prior crashed attempts this scan resumed.
	StoreQuarantined int
	StoreSalvaged    int
	Checkpoints      int
	Resumes          int
	// Backend is the result-store tier's account (hits, misses, degraded
	// loads, write-behind queue, breaker position) when the scan ran over a
	// pluggable backend; nil for the legacy plain-disk store and cache-less
	// scans. Like everything in Stats it describes work, never findings: a
	// scan with the backend down, flaky or lying produces byte-identical
	// findings to a cache-less scan.
	Backend *resultstore.BackendState
	// Weapons account (omitted from renderers when empty/zero).
	// ActiveWeapons lists the scan engine's linked weapon class IDs in
	// sorted order; WeaponSetRevision echoes the hot-reload registry
	// revision the set was derived at (0 = weapons fixed at startup).
	// Per-weapon task/finding counters live in ByClass under the weapon's
	// class ID, flagged with ClassStats.Weapon.
	ActiveWeapons     []string
	WeaponSetRevision int64
	// Fused-execution account (all zero when fusion is disabled, the legacy
	// walker ran, or no file had two runnable classes). FusedPasses counts
	// clean multi-class IR passes; FusedTasks the (file, class) tasks those
	// passes dispositioned; FusedDemoted the tasks a mid-pass fault demoted
	// to unfused per-class execution (those tasks' dispositions are accounted
	// by their unfused reruns as usual).
	FusedPasses  int
	FusedTasks   int
	FusedDemoted int
	// IR accounts the IR engine's lowering layer and summary
	// transfer-function traffic; nil when the scan ran the legacy walker
	// (Options.DisableIR), so legacy renderer output is byte-identical.
	IR *IRScanStats
	// ByClass breaks the account down per vulnerability class.
	ByClass map[vuln.ClassID]*ClassStats
}

// IRScanStats is the IR layer's account: one-time lowering work shared by
// all weapon-class tasks, and how often function summaries were applied as
// transfer functions at call edges instead of re-running callee bodies.
type IRScanStats struct {
	// LowerWall is the summed wall time spent lowering ASTs (across
	// workers, so it can exceed the scan's Duration).
	LowerWall time.Duration
	// Files/Funcs/Blocks/Instrs is the lowered shape (lowerings performed,
	// not cache hits; Funcs includes nested closures).
	Files  int64
	Funcs  int64
	Blocks int64
	Instrs int64
	// Degraded counts AST subtrees recorded as degraded (constructs the
	// taint engine never evaluates; accounted, never silently dropped).
	Degraded int64
	// SummaryTransfers counts summary transfer-function applications.
	SummaryTransfers int64
}

// ClassIDs returns the classes present in ByClass in stable (sorted) order,
// for deterministic rendering.
func (s *ScanStats) ClassIDs() []vuln.ClassID {
	ids := make([]vuln.ClassID, 0, len(s.ByClass))
	for id := range s.ByClass {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// statsCollector accumulates per-task records concurrently during a scan.
type statsCollector struct {
	mu sync.Mutex
	s  ScanStats
	// transfers accumulates summary transfer-function hits across tasks;
	// folded into ScanStats.IR at snapshot time.
	transfers int64
}

func newStatsCollector() *statsCollector {
	return &statsCollector{s: ScanStats{ByClass: make(map[vuln.ClassID]*ClassStats)}}
}

func (c *statsCollector) class(id vuln.ClassID) *ClassStats {
	cs := c.s.ByClass[id]
	if cs == nil {
		cs = &ClassStats{}
		c.s.ByClass[id] = cs
	}
	return cs
}

// recordTask accounts one executed task's outcome.
func (c *statsCollector) recordTask(id vuln.ClassID, out taskOutcome, wall time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.s.Tasks++
	c.s.TotalSteps += int64(out.steps)
	if int64(out.steps) > c.s.MaxTaskSteps {
		c.s.MaxTaskSteps = int64(out.steps)
	}
	c.s.CacheHits += int64(out.cacheHits)
	c.s.CacheMisses += int64(out.cacheMisses)
	c.transfers += int64(out.transfers)
	cs := c.class(id)
	cs.Tasks++
	cs.Steps += int64(out.steps)
	cs.CacheHits += int64(out.cacheHits)
	cs.CacheMisses += int64(out.cacheMisses)
	cs.Wall += wall
	cs.Findings += len(out.findings)
}

// recordSkip accounts one task dropped by the sink pre-filter.
func (c *statsCollector) recordSkip(id vuln.ClassID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.s.TasksSkipped++
	c.class(id).Skipped++
}

// recordRetry accounts one retry-ladder attempt.
func (c *statsCollector) recordRetry(id vuln.ClassID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.s.TaskRetries++
	c.class(id).Retries++
}

// recordRecovered accounts one task that completed cleanly after retries.
func (c *statsCollector) recordRecovered(id vuln.ClassID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.s.TasksRecovered++
	c.class(id).Recovered++
}

// recordFingerprintHit accounts one planned task whose fingerprint was found
// in the previous snapshot.
func (c *statsCollector) recordFingerprintHit() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.s.FingerprintHits++
}

// recordFingerprintMiss accounts one planned task that must execute despite
// an attached store (no snapshot entry, or one that failed to rebind).
func (c *statsCollector) recordFingerprintMiss() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.s.FingerprintMisses++
}

// recordReused accounts one task satisfied from the result store: steps is
// the AST-step count the stored execution spent, findings the entry's
// finding count (folded into the class account exactly as an execution
// would).
func (c *statsCollector) recordReused(id vuln.ClassID, steps, findings int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.s.TasksReused++
	c.s.StepsSaved += int64(steps)
	cs := c.class(id)
	cs.Reused++
	cs.Findings += findings
}

// recordStoreQuarantined accounts one snapshot quarantined at load.
func (c *statsCollector) recordStoreQuarantined() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.s.StoreQuarantined++
}

// recordStoreSalvaged accounts n task entries dropped by snapshot salvage.
func (c *statsCollector) recordStoreSalvaged(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.s.StoreSalvaged += n
}

// recordCheckpoint accounts one partial snapshot persisted mid-scan.
func (c *statsCollector) recordCheckpoint() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.s.Checkpoints++
}

// recordResumes notes how many crashed attempts preceded this scan.
func (c *statsCollector) recordResumes(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.s.Resumes = n
}

// recordFusedPass accounts one clean fused pass that dispositioned n tasks.
func (c *statsCollector) recordFusedPass(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.s.FusedPasses++
	c.s.FusedTasks += n
}

// recordFusedDemotion accounts n tasks demoted to unfused execution by a
// fault inside their fused pass.
func (c *statsCollector) recordFusedDemotion(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.s.FusedDemoted += n
}

// recordBreakerSkip accounts one task skipped by an open circuit breaker.
func (c *statsCollector) recordBreakerSkip(id vuln.ClassID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.s.BreakerSkipped++
	c.class(id).BreakerSkipped++
}

// snapshot finalizes the stats for the report. irc is the scan's IR
// lowering cache, nil when the legacy walker ran (leaving Stats.IR nil so
// legacy renderer output is unchanged).
func (c *statsCollector) snapshot(cacheEntries int, irc *ir.Cache) *ScanStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.s
	out.CacheEntries = cacheEntries
	if irc != nil {
		cs := irc.Stats()
		out.IR = &IRScanStats{
			LowerWall:        cs.LowerWall,
			Files:            cs.Files,
			Funcs:            cs.Funcs,
			Blocks:           cs.Blocks,
			Instrs:           cs.Instrs,
			Degraded:         cs.Degraded,
			SummaryTransfers: c.transfers,
		}
	}
	out.ByClass = make(map[vuln.ClassID]*ClassStats, len(c.s.ByClass))
	for id, cs := range c.s.ByClass {
		cp := *cs
		out.ByClass[id] = &cp
	}
	return &out
}
