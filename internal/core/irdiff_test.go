package core_test

// The IR migration's differential harness: every corpus app is scanned by
// the legacy AST walker and the IR engine, at parallelism 1 and 3, and the
// rendered reports must be byte-identical wherever flows are unchanged.
// Intentional precision wins (flows killed by a sanitizer dominating every
// path to the sink) are enumerated in testdata/ir_golden_deltas.json —
// never silently absorbed. Run with IRDIFF_UPDATE=1 to regenerate the
// golden file after an intentional precision change.

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/report"
	"repro/internal/weapon"
)

// irDelta records one app whose IR-engine report differs from the walker's.
type irDelta struct {
	App string `json:"app"`
	// Removed lists finding keys the walker reports and the IR engine does
	// not: branch-killed false positives (the expected direction).
	Removed []string `json:"removed"`
	// Added lists finding keys only the IR engine reports. Always empty —
	// the IR engine must never invent flows.
	Added []string `json:"added,omitempty"`
}

func irdiffEngine(t *testing.T, disableIR bool, par int, weapons []*weapon.Weapon) *core.Engine {
	t.Helper()
	e, err := core.New(core.Options{
		Mode:        core.ModeWAPe,
		Seed:        1,
		Parallelism: par,
		DisableIR:   disableIR,
		Weapons:     weapons,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Train(); err != nil {
		t.Fatal(err)
	}
	return e
}

// renderNormalized analyzes app and renders the JSON report with the
// schedule-dependent parts (duration, stats) cleared.
func renderNormalized(t *testing.T, e *core.Engine, app *corpus.App) (string, []string) {
	t.Helper()
	rep, err := e.Analyze(core.LoadMap(app.Name, app.Files))
	if err != nil {
		t.Fatalf("%s: %v", app.Name, err)
	}
	rep.Duration = 0
	rep.Stats = nil
	var buf bytes.Buffer
	if err := report.WriteJSON(&buf, rep); err != nil {
		t.Fatalf("%s: render: %v", app.Name, err)
	}
	keys := make([]string, 0, len(rep.Findings))
	for _, f := range rep.Findings {
		keys = append(keys, f.Candidate.Key())
	}
	return buf.String(), keys
}

// diffKeys returns the multiset differences legacy−ir and ir−legacy, sorted.
func diffKeys(legacy, ir []string) (removed, added []string) {
	count := map[string]int{}
	for _, k := range legacy {
		count[k]++
	}
	for _, k := range ir {
		count[k]--
	}
	for k, n := range count {
		for ; n > 0; n-- {
			removed = append(removed, k)
		}
		for ; n < 0; n++ {
			added = append(added, k)
		}
	}
	sort.Strings(removed)
	sort.Strings(added)
	return removed, added
}

func irdiffApps(t *testing.T) (native []*corpus.App, dryrun []*corpus.App, weapons []*weapon.Weapon) {
	t.Helper()
	native = append(native, corpus.WebAppSuite(1)...)
	native = append(native, corpus.MicroSuite(1, 1)...)
	native = append(native, corpus.BranchSanitizerApp())
	for _, spec := range weapon.BuiltinSpecs() {
		spec := spec
		w, err := weapon.Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		weapons = append(weapons, w)
		dryrun = append(dryrun, corpus.DryRunApp(&spec))
	}
	return native, dryrun, weapons
}

func TestIRDifferential(t *testing.T) {
	native, dryrun, weapons := irdiffApps(t)

	// deltasByPar[par] maps app name -> delta; the deltas must agree across
	// parallelism levels and match the golden file.
	deltasByPar := map[int]map[string]irDelta{}
	for _, par := range []int{1, 3} {
		legacyEng := irdiffEngine(t, true, par, nil)
		irEng := irdiffEngine(t, false, par, nil)
		legacyWpn := irdiffEngine(t, true, par, weapons)
		irWpn := irdiffEngine(t, false, par, weapons)

		deltas := map[string]irDelta{}
		scan := func(le, ie *core.Engine, apps []*corpus.App) {
			for _, app := range apps {
				legacyJSON, legacyKeys := renderNormalized(t, le, app)
				irJSON, irKeys := renderNormalized(t, ie, app)
				if legacyJSON == irJSON {
					continue
				}
				removed, added := diffKeys(legacyKeys, irKeys)
				if len(removed) == 0 && len(added) == 0 {
					t.Errorf("par %d, %s: reports differ but finding keys match — trace or source divergence:\nlegacy:\n%s\nir:\n%s",
						par, app.Name, legacyJSON, irJSON)
					continue
				}
				if len(added) > 0 {
					t.Errorf("par %d, %s: IR engine invented findings: %v", par, app.Name, added)
				}
				deltas[app.Name] = irDelta{App: app.Name, Removed: removed, Added: added}
			}
		}
		scan(legacyEng, irEng, native)
		scan(legacyWpn, irWpn, dryrun)
		deltasByPar[par] = deltas
	}

	if len(deltasByPar[1]) != len(deltasByPar[3]) {
		t.Fatalf("delta count differs across parallelism: %d at par 1, %d at par 3",
			len(deltasByPar[1]), len(deltasByPar[3]))
	}
	for name, d1 := range deltasByPar[1] {
		d3, ok := deltasByPar[3][name]
		if !ok {
			t.Fatalf("app %s has a delta at par 1 but not par 3", name)
		}
		j1, _ := json.Marshal(d1)
		j3, _ := json.Marshal(d3)
		if !bytes.Equal(j1, j3) {
			t.Fatalf("app %s: delta differs across parallelism:\npar 1: %s\npar 3: %s", name, j1, j3)
		}
	}

	var got []irDelta
	for _, d := range deltasByPar[1] {
		got = append(got, d)
	}
	sort.Slice(got, func(i, j int) bool { return got[i].App < got[j].App })
	gotJSON, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	gotJSON = append(gotJSON, '\n')

	golden := filepath.Join("testdata", "ir_golden_deltas.json")
	if os.Getenv("IRDIFF_UPDATE") == "1" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, gotJSON, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden delta file (run with IRDIFF_UPDATE=1 to create): %v", err)
	}
	if !bytes.Equal(gotJSON, want) {
		t.Errorf("precision deltas diverge from golden file %s:\ngot:\n%s\nwant:\n%s", golden, gotJSON, want)
	}

	// The migration must demonstrate at least one branch-killed false
	// positive, and only removals — never additions.
	if len(got) == 0 {
		t.Error("no precision deltas recorded; expected the branch-sanitizer kill")
	}
	for _, d := range got {
		if len(d.Added) > 0 {
			t.Errorf("app %s: golden delta contains added findings: %v", d.App, d.Added)
		}
	}
}
