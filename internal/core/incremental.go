package core

import (
	"context"

	"repro/internal/resultstore"
)

// The incremental pipeline splits a scan into three stages:
//
//	plan    — enumerate the (file, class) task grid, drop pre-filter skips,
//	          and, when a result store is attached, key every task by its
//	          closure fingerprint and satisfy fingerprint hits from the
//	          previous snapshot;
//	execute — run only the tasks the plan could not satisfy, through the
//	          unchanged fault-isolation machinery (watchdog, retry ladder,
//	          circuit breakers);
//	merge   — splice reused and fresh results in grid order, recompute the
//	          cross-file stored-XSS links over the combined findings, attach
//	          diagnostics and statistics, and persist the new snapshot.
//
// Reuse is sound by construction: a fingerprint covers the content hash of
// every file in the task file's reachable closure plus the engine's config
// digest, so any input that could change the task's findings changes the key.
// Reused tasks never consult the circuit breakers (nothing executes) and a
// breaker-skipped, faulted or retried task is never persisted, so it always
// re-executes on the next scan.

// scanPlan is the plan stage's output: the task grid with, per task, either
// a decoded stored result or a place in the execution queue.
type scanPlan struct {
	tasks []task
	// fingerprints are the store keys, aligned with tasks ("" without store).
	fingerprints []string
	// reused/reusedOK/entries are aligned with tasks: reusedOK[i] marks a
	// task satisfied from the store, reused[i] its rebound findings and
	// entries[i] the raw snapshot entry (re-persisted verbatim on save).
	reused   [][]*Finding
	reusedOK []bool
	entries  []*resultstore.TaskEntry
	// closures holds, per task, the parsed instances of every file in the
	// task file's reachable closure (nil without store) — the validity key
	// of the engine's decoded-findings cache.
	closures [][]*SourceFile
	// execIdx lists the task indices the execute stage must run.
	execIdx []int

	store  *resultstore.Store
	digest string
	// status reports how the previous snapshot was (not) loaded; loadInfo
	// carries the load's full self-healing account (quarantine, salvage).
	status   resultstore.LoadStatus
	loadInfo resultstore.LoadInfo
}

// decodedTask is one reusable task result in memory: the findings as decoded
// (or freshly produced), the snapshot entry they round-trip to, and the
// closure file instances they reference. It is only valid while every file
// in the closure is the same parsed instance — guaranteed across scans for
// unchanged files by parse reuse (LoadOptions.Prev / LoadMapIncremental),
// and checked by pointer before use, so a project re-parsed from scratch
// simply falls back to decoding the snapshot entry.
type decodedTask struct {
	closure  []*SourceFile
	findings []*Finding
	entry    *resultstore.TaskEntry
}

func sameFiles(a, b []*SourceFile) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// projectCache returns the current decoded-findings generation for a project
// (nil when none); setProjectCache installs the next generation.
func (e *Engine) projectCache(name string) map[string]*decodedTask {
	e.reuseMu.Lock()
	defer e.reuseMu.Unlock()
	return e.reuseCache[name]
}

func (e *Engine) setProjectCache(name string, m map[string]*decodedTask) {
	e.reuseMu.Lock()
	defer e.reuseMu.Unlock()
	if e.reuseCache == nil {
		e.reuseCache = make(map[string]map[string]*decodedTask)
	}
	e.reuseCache[name] = m
}

// planScan builds the scan plan. The (file, class) grid is enumerated in
// file-major order — the order findings are reported in — and pre-filter
// skips are accounted exactly as before. With a store attached, each planned
// task's fingerprint is looked up in the previous snapshot; an entry that
// decodes cleanly satisfies the task without execution.
func (e *Engine) planScan(ctx context.Context, p *Project, store *resultstore.Store, stats *statsCollector) *scanPlan {
	var pf *prefilter
	if !e.opts.DisableSinkPrefilter {
		pf = newPrefilter(p)
	}

	plan := &scanPlan{store: store}
	var (
		snap      *resultstore.Snapshot
		cHashes   []string
		ix        *nodeIndexer
		reach     [][]int
		closures  [][]*SourceFile
		prevCache map[string]*decodedTask
	)
	if store != nil {
		plan.digest = e.configDigest()
		snap, plan.loadInfo = store.LoadWithInfoContext(ctx, p.Name, plan.digest)
		plan.status = plan.loadInfo.Status
		reach = fileClosures(p)
		if pf != nil {
			reach = pf.reach
		}
		cHashes = closureHashes(p, reach)
		ix = newNodeIndexer(p)
		closures = make([][]*SourceFile, len(p.Files))
		prevCache = e.projectCache(p.Name)
	}

	for fi, file := range p.Files {
		for _, cls := range e.classes {
			if pf != nil && !pf.sinkReachable(fi, cls, e.opts.ClassSinks[cls.ID]) {
				stats.recordSkip(cls.ID)
				continue
			}
			i := len(plan.tasks)
			plan.tasks = append(plan.tasks, task{file: file, cls: cls})
			plan.reused = append(plan.reused, nil)
			plan.reusedOK = append(plan.reusedOK, false)
			plan.entries = append(plan.entries, nil)
			fp := ""
			var closure []*SourceFile
			if store != nil {
				fp = taskFingerprint(plan.digest, cls.ID, cHashes[fi])
				if closures[fi] == nil {
					cl := make([]*SourceFile, len(reach[fi]))
					for k, j := range reach[fi] {
						cl[k] = p.Files[j]
					}
					closures[fi] = cl
				}
				closure = closures[fi]
			}
			plan.fingerprints = append(plan.fingerprints, fp)
			plan.closures = append(plan.closures, closure)
			if snap != nil {
				if entry := snap.Tasks[fp]; entry != nil {
					stats.recordFingerprintHit()
					// Fast path: the previous generation already decoded this
					// entry against the very same parsed files.
					if ce := prevCache[fp]; ce != nil && sameFiles(ce.closure, closure) {
						plan.reused[i] = ce.findings
						plan.reusedOK[i] = true
						plan.entries[i] = entry
						stats.recordReused(cls.ID, entry.Steps, len(ce.findings))
						continue
					}
					if fs, ok := ix.decodeTask(entry); ok {
						plan.reused[i] = fs
						plan.reusedOK[i] = true
						plan.entries[i] = entry
						stats.recordReused(cls.ID, entry.Steps, len(fs))
						continue
					}
				}
			}
			if store != nil {
				stats.recordFingerprintMiss()
			}
			plan.execIdx = append(plan.execIdx, i)
		}
	}
	return plan
}

// persistSnapshot writes the scan's new snapshot: reused entries re-persisted
// verbatim plus every freshly executed task that completed cleanly on its
// first attempt. Faulted, retried (even when the ladder recovered them),
// breaker-skipped and cancelled tasks are left out, so they re-execute next
// scan. The whole-snapshot write drops entries for fingerprints no longer in
// the plan (changed or removed files), pruning the store as the tree evolves.
// Persistence is best-effort: a failed save costs the next scan's warm start,
// never this scan's report.
func (e *Engine) persistSnapshot(ctx context.Context, p *Project, plan *scanPlan, exec *execState) {
	if plan.store == nil {
		return
	}
	snap := resultstore.NewSnapshot(p.Name, plan.digest)
	next := make(map[string]*decodedTask, len(plan.tasks))
	ix := newNodeIndexer(p)
	for i, t := range plan.tasks {
		fp := plan.fingerprints[i]
		switch {
		case plan.reusedOK[i]:
			snap.Tasks[fp] = plan.entries[i]
			next[fp] = &decodedTask{closure: plan.closures[i], findings: plan.reused[i], entry: plan.entries[i]}
		case exec.clean[i]:
			fs, ok := ix.encodeTask(exec.results[i])
			if !ok {
				continue
			}
			entry := &resultstore.TaskEntry{
				File: t.file.Path, Class: string(t.cls.ID),
				Steps: exec.steps[i], Findings: fs,
			}
			snap.Tasks[fp] = entry
			next[fp] = &decodedTask{closure: plan.closures[i], findings: exec.results[i], entry: entry}
		}
	}
	// The in-memory generation mirrors exactly what was persisted, replaced
	// wholesale so stale fingerprints drop out with the snapshot's.
	e.setProjectCache(p.Name, next)
	_ = plan.store.SaveContext(ctx, snap)
}
