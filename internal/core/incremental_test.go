package core

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/resultstore"
	"repro/internal/vuln"
)

// The incremental corpus exercises a cross-file taint chain (sqli.php pulls
// its tainted value from a function declared in lib.php), so lib.php is in
// sqli.php's reachable closure and editing it must invalidate sqli.php's
// tasks, while xss.php and clean.php stay untouched.
func incrementalFiles() map[string]string {
	return map[string]string{
		"lib.php":   `<?php function getid() { return $_GET['id']; }`,
		"sqli.php":  `<?php mysql_query("SELECT * FROM t WHERE id=" . getid());`,
		"xss.php":   `<?php echo $_GET['x'];`,
		"clean.php": `<?php $a = 1; echo "static page";`,
	}
}

func incrementalOpts() Options {
	return Options{
		Mode: ModeWAPe, Seed: 1, Parallelism: 1,
		Classes: []vuln.ClassID{vuln.SQLI, vuln.XSSR},
	}
}

func openTestStore(t *testing.T, dir string) *resultstore.Store {
	t.Helper()
	store, err := resultstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return store
}

// findingKey summarizes everything observable about a finding, AST pointers
// excluded, so reused and freshly executed findings can be compared deeply.
func findingKey(f *Finding) string {
	c := f.Candidate
	var srcs []string
	for _, s := range c.Value.Sources {
		srcs = append(srcs, fmt.Sprintf("%s@%s:%d", s.Name, s.Pos.File, s.Pos.Line))
	}
	var trace []string
	for _, st := range c.Value.Trace {
		trace = append(trace, fmt.Sprintf("%s@%s:%d(node=%v)", st.Desc, st.Pos.File, st.Pos.Line, st.Node != nil))
	}
	var syms []string
	for s, v := range f.Symptoms {
		if v {
			syms = append(syms, s)
		}
	}
	sort.Strings(syms)
	return fmt.Sprintf("%s|%s|fp=%v|votes=%v|w=%s|tainted=%v|san=%v|src=%v|trace=%v|sym=%v|fn=%s",
		c.Key(), c.File, f.PredictedFP, f.Votes, f.Weapon,
		c.Value.Tainted, c.Value.Sanitizers, srcs, trace, syms, c.EnclosingFunc)
}

func findingKeys(rep *Report) []string {
	out := make([]string, 0, len(rep.Findings))
	for _, f := range rep.Findings {
		out = append(out, findingKey(f))
	}
	return out
}

func scanWithStore(t *testing.T, opts Options, files map[string]string, store *resultstore.Store) *Report {
	t.Helper()
	e := newTestEngine(t, opts)
	rep, err := e.AnalyzeContextStore(context.Background(), LoadMap("app", files), store)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestIncrementalWarmScanReusesEverything(t *testing.T) {
	store := openTestStore(t, t.TempDir())
	files := incrementalFiles()

	cold := scanWithStore(t, incrementalOpts(), files, store)
	if cold.Stats.TasksReused != 0 || cold.Stats.FingerprintHits != 0 {
		t.Fatalf("cold scan reported reuse: %+v", cold.Stats)
	}
	if cold.Stats.FingerprintMisses != cold.Stats.Tasks {
		t.Errorf("cold scan: %d fingerprint misses, want %d (every executed task)",
			cold.Stats.FingerprintMisses, cold.Stats.Tasks)
	}
	if len(cold.Findings) == 0 {
		t.Fatal("corpus produced no findings; reuse check is vacuous")
	}

	warm := scanWithStore(t, incrementalOpts(), files, store)
	if warm.Stats.Tasks != 0 {
		t.Errorf("warm scan executed %d tasks, want 0", warm.Stats.Tasks)
	}
	if warm.Stats.TasksReused != cold.Stats.Tasks {
		t.Errorf("warm scan reused %d tasks, want %d", warm.Stats.TasksReused, cold.Stats.Tasks)
	}
	if warm.Stats.FingerprintHits != warm.Stats.TasksReused {
		t.Errorf("fingerprint hits %d != tasks reused %d", warm.Stats.FingerprintHits, warm.Stats.TasksReused)
	}
	if warm.Stats.StepsSaved != cold.Stats.TotalSteps {
		t.Errorf("steps saved %d, want the cold scan's %d", warm.Stats.StepsSaved, cold.Stats.TotalSteps)
	}
	if got, want := findingKeys(warm), findingKeys(cold); !equalStrings(got, want) {
		t.Errorf("warm findings differ from cold:\nwarm: %v\ncold: %v", got, want)
	}
	if len(warm.StoredLinks) != len(cold.StoredLinks) {
		t.Errorf("stored links differ: warm %d, cold %d", len(warm.StoredLinks), len(cold.StoredLinks))
	}
}

func TestIncrementalSingleFileEdit(t *testing.T) {
	for _, disablePF := range []bool{false, true} {
		t.Run(fmt.Sprintf("prefilterDisabled=%v", disablePF), func(t *testing.T) {
			opts := incrementalOpts()
			opts.DisableSinkPrefilter = disablePF
			store := openTestStore(t, t.TempDir())
			files := incrementalFiles()

			cold := scanWithStore(t, opts, files, store)

			// Editing lib.php changes the closure of both lib.php and
			// sqli.php; xss.php and clean.php must be served from the store.
			edited := incrementalFiles()
			edited["lib.php"] = `<?php function getid() { return $_POST['id']; }`
			warm := scanWithStore(t, opts, edited, store)
			if warm.Stats.TasksReused == 0 {
				t.Error("edit of one file invalidated every task; expected reuse of untouched files")
			}
			if warm.Stats.Tasks == 0 {
				t.Error("edit of lib.php re-executed nothing")
			}
			if warm.Stats.Tasks >= cold.Stats.Tasks {
				t.Errorf("warm scan executed %d of %d tasks; expected a strict subset", warm.Stats.Tasks, cold.Stats.Tasks)
			}

			// The spliced report must match a from-scratch scan bit for bit.
			fresh := scanWithStore(t, opts, edited, nil)
			if got, want := findingKeys(warm), findingKeys(fresh); !equalStrings(got, want) {
				t.Errorf("incremental findings differ from full rescan:\nincremental: %v\nfull: %v", got, want)
			}
			if !strings.Contains(strings.Join(findingKeys(warm), "\n"), "$_POST") {
				t.Error("edited source never surfaced in the warm findings; edit was not picked up")
			}
		})
	}
}

func TestIncrementalFaultedTaskNeverPersisted(t *testing.T) {
	store := openTestStore(t, t.TempDir())
	files := incrementalFiles()
	opts := incrementalOpts()

	executions := newExecLog()
	opts.TaskHook = func(file string, class vuln.ClassID) {
		executions.record(file, class)
		if file == "sqli.php" && class == vuln.SQLI {
			panic("injected fault")
		}
	}
	rep := scanWithStore(t, opts, files, store)
	if n := len(diagsOfKind(rep, DiagPanic)); n != 1 {
		t.Fatalf("got %d panic diagnostics, want 1", n)
	}

	// Second scan, same fault: the faulted task must re-execute (it was not
	// persisted), every cleanly completed task must be reused (not run).
	executions.reset()
	rep2 := scanWithStore(t, opts, files, store)
	if got := executions.calls(); !equalStrings(got, []string{"sqli.php|sqli"}) {
		t.Errorf("second scan executed %v, want only the faulted task", got)
	}
	if rep2.Stats.TasksReused == 0 {
		t.Error("second scan reused nothing")
	}
}

func TestIncrementalRetriedTaskNeverPersisted(t *testing.T) {
	store := openTestStore(t, t.TempDir())
	files := incrementalFiles()

	// The hook faults the first attempt of xss.php's XSS task only; the
	// retry ladder recovers it. A recovered task's findings are in the
	// report but must not be persisted.
	var mu sync.Mutex
	faulted := false
	opts := incrementalOpts()
	opts.RetryMax = 2
	opts.RetryBackoff = -1
	opts.TaskHook = func(file string, class vuln.ClassID) {
		mu.Lock()
		defer mu.Unlock()
		if file == "xss.php" && class == vuln.XSSR && !faulted {
			faulted = true
			panic("transient fault")
		}
	}
	rep := scanWithStore(t, opts, files, store)
	if n := len(diagsOfKind(rep, DiagRetried)); n != 1 {
		t.Fatalf("got %d retried diagnostics, want 1", n)
	}
	if !hasFinding(rep, "xss.php", vuln.XSSR) {
		t.Fatal("recovered task's findings missing from report")
	}

	executions := newExecLog()
	opts2 := incrementalOpts()
	opts2.TaskHook = func(file string, class vuln.ClassID) { executions.record(file, class) }
	scanWithStore(t, opts2, files, store)
	if got := executions.calls(); !equalStrings(got, []string{"xss.php|xss"}) {
		t.Errorf("second scan executed %v, want only the retried task", got)
	}
}

func TestIncrementalBreakerSkippedTaskNeverPersisted(t *testing.T) {
	store := openTestStore(t, t.TempDir())
	files := incrementalFiles()

	// Breaker threshold 1: the injected terminal fault trips SQLI's breaker,
	// so a second scan on the same engine skips the task breaker-open. The
	// skipped task must not be persisted as a zero-finding result.
	opts := incrementalOpts()
	opts.BreakerThreshold = 1
	opts.BreakerCooldown = time.Hour
	opts.TaskHook = func(file string, class vuln.ClassID) {
		if class == vuln.SQLI {
			panic("injected fault")
		}
	}
	e := newTestEngine(t, opts)
	ctx := context.Background()
	if _, err := e.AnalyzeContextStore(ctx, LoadMap("app", files), store); err != nil {
		t.Fatal(err)
	}
	rep2, err := e.AnalyzeContextStore(ctx, LoadMap("app", files), store)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(diagsOfKind(rep2, DiagBreakerOpen)); n == 0 {
		t.Fatal("breaker never opened; persistence check is vacuous")
	}

	// A healthy engine against the same store must execute the SQLI task
	// (nothing reusable was ever stored for it) and find the vulnerability.
	rep3 := scanWithStore(t, incrementalOpts(), files, store)
	if !hasFinding(rep3, "sqli.php", vuln.SQLI) {
		t.Error("SQLI finding missing after breaker-skip scans: a skipped task was wrongly reused")
	}
	if rep3.Stats.Tasks == 0 {
		t.Error("third scan executed nothing; breaker-skipped task was persisted")
	}
}

func TestIncrementalStoreInvalidation(t *testing.T) {
	files := incrementalFiles()

	t.Run("corrupt", func(t *testing.T) {
		dir := t.TempDir()
		store := openTestStore(t, dir)
		cold := scanWithStore(t, incrementalOpts(), files, store)
		for _, path := range storeFiles(t, dir) {
			if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		warm := scanWithStore(t, incrementalOpts(), files, store)
		if warm.Stats.TasksReused != 0 {
			t.Errorf("reused %d tasks from a corrupt store", warm.Stats.TasksReused)
		}
		if got, want := findingKeys(warm), findingKeys(cold); !equalStrings(got, want) {
			t.Error("full re-execute after corruption produced different findings")
		}
	})

	t.Run("version-mismatch", func(t *testing.T) {
		dir := t.TempDir()
		store := openTestStore(t, dir)
		scanWithStore(t, incrementalOpts(), files, store)
		for _, path := range storeFiles(t, dir) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			mangled := strings.Replace(string(data),
				fmt.Sprintf(`"version":%d`, resultstore.FormatVersion), `"version":9999`, 1)
			if mangled == string(data) {
				t.Fatal("snapshot JSON did not contain the expected version field")
			}
			if err := os.WriteFile(path, []byte(mangled), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		warm := scanWithStore(t, incrementalOpts(), files, store)
		if warm.Stats.TasksReused != 0 {
			t.Errorf("reused %d tasks across a format-version bump", warm.Stats.TasksReused)
		}
	})

	t.Run("config-digest-mismatch", func(t *testing.T) {
		store := openTestStore(t, t.TempDir())
		scanWithStore(t, incrementalOpts(), files, store)
		changed := incrementalOpts()
		changed.ExtraSanitizers = []string{"my_escape"}
		warm := scanWithStore(t, changed, files, store)
		if warm.Stats.TasksReused != 0 {
			t.Errorf("reused %d tasks across a config change", warm.Stats.TasksReused)
		}
		// And the old config still matches its own snapshot... which the
		// changed-config scan just overwrote under its own digest.
		warm2 := scanWithStore(t, changed, files, store)
		if warm2.Stats.TasksReused == 0 {
			t.Error("rescan under the changed config reused nothing")
		}
	})
}

func TestIncrementalCancelledScanPersistsNothing(t *testing.T) {
	store := openTestStore(t, t.TempDir())
	files := incrementalFiles()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := newTestEngine(t, incrementalOpts())
	if err := e.Train(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.AnalyzeContextStore(ctx, LoadMap("app", files), store); err == nil {
		t.Fatal("cancelled scan reported no error")
	}
	warm := scanWithStore(t, incrementalOpts(), files, store)
	if warm.Stats.TasksReused != 0 {
		t.Errorf("reused %d tasks persisted by a cancelled scan", warm.Stats.TasksReused)
	}
}

// TestLoadMapIncrementalParseReuse pins the parse-reuse fast path: unchanged
// files adopt the previous project's parsed SourceFile, changed files are
// re-parsed.
func TestLoadMapIncrementalParseReuse(t *testing.T) {
	files := incrementalFiles()
	p1 := LoadMap("app", files)
	edited := incrementalFiles()
	edited["xss.php"] = `<?php echo $_POST['x'];`
	p2 := LoadMapIncremental("app", edited, p1)
	if p2.File("lib.php") != p1.File("lib.php") {
		t.Error("unchanged file was re-parsed instead of reused")
	}
	if p2.File("xss.php") == p1.File("xss.php") {
		t.Error("changed file reused the stale parse")
	}
	if !strings.Contains(p2.File("xss.php").Src, "$_POST") {
		t.Error("changed file carries stale source")
	}
}

func storeFiles(t *testing.T, dir string) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no snapshot files in store directory")
	}
	return paths
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// execLog records which (file, class) tasks actually ran, via TaskHook.
type execLog struct {
	mu    sync.Mutex
	tasks []string
}

func newExecLog() *execLog { return &execLog{} }

func (l *execLog) record(file string, class vuln.ClassID) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.tasks = append(l.tasks, fmt.Sprintf("%s|%s", file, class))
}

func (l *execLog) reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.tasks = nil
}

func (l *execLog) calls() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := append([]string(nil), l.tasks...)
	sort.Strings(out)
	return out
}
