package core

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLoadDir(t *testing.T) {
	dir := t.TempDir()
	files := map[string]string{
		"index.php":          `<?php echo "hello";`,
		"lib/db.php":         `<?php function connect() { return 1; }`,
		"lib/model/user.php": `<?php class User { function name() { return $this->n; } }`,
		"assets/style.css":   `body { color: red }`, // not PHP: skipped
		"README.txt":         `docs`,
		"templates/page.PHP": `<?php echo 1;`, // extension case-insensitive
	}
	for path, src := range files {
		full := filepath.Join(dir, filepath.FromSlash(path))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	p, err := LoadDir("demo", dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Files) != 4 {
		t.Fatalf("files = %d, want 4 (php only)", len(p.Files))
	}
	if p.ResolveFunc("connect") == nil {
		t.Error("cross-file function not indexed")
	}
	if p.ResolveMethod("name") == nil {
		t.Error("method not indexed")
	}
	if p.TotalLines() == 0 {
		t.Error("no lines counted")
	}
}

func TestLoadDirMissing(t *testing.T) {
	if _, err := LoadDir("x", "/definitely/not/here"); err == nil {
		t.Error("want error for missing directory")
	}
}

func TestLoadMapDeterministicOrder(t *testing.T) {
	files := map[string]string{
		"z.php": `<?php function dup() { return 1; }`,
		"a.php": `<?php function dup() { return 2; }`,
	}
	p1 := LoadMap("m", files)
	p2 := LoadMap("m", files)
	// First-wins indexing must be deterministic: a.php sorts first.
	f1 := p1.ResolveFunc("dup")
	f2 := p2.ResolveFunc("dup")
	if f1 == nil || f2 == nil {
		t.Fatal("function missing")
	}
	if f1.Pos().File != "a.php" || f2.Pos().File != "a.php" {
		t.Errorf("indexing not deterministic: %s vs %s", f1.Pos().File, f2.Pos().File)
	}
}

func TestProjectFileLookup(t *testing.T) {
	p := LoadMap("m", map[string]string{"a.php": `<?php echo 1;`})
	if p.File("a.php") == nil {
		t.Error("file lookup failed")
	}
	if p.File("b.php") != nil {
		t.Error("missing file should return nil")
	}
}

func TestParseErrorsRecorded(t *testing.T) {
	p := LoadMap("m", map[string]string{"bad.php": `<?php $x = ;`})
	if len(p.Files[0].ParseErrs) == 0 {
		t.Error("parse errors not recorded")
	}
	// The project is still analyzable.
	eng, err := New(Options{Mode: ModeWAPe, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Train(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Analyze(p); err != nil {
		t.Errorf("analysis must tolerate parse errors: %v", err)
	}
}
