package core

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestLoadDir(t *testing.T) {
	dir := t.TempDir()
	files := map[string]string{
		"index.php":          `<?php echo "hello";`,
		"lib/db.php":         `<?php function connect() { return 1; }`,
		"lib/model/user.php": `<?php class User { function name() { return $this->n; } }`,
		"assets/style.css":   `body { color: red }`, // not PHP: skipped
		"README.txt":         `docs`,
		"templates/page.PHP": `<?php echo 1;`, // extension case-insensitive
	}
	for path, src := range files {
		full := filepath.Join(dir, filepath.FromSlash(path))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	p, err := LoadDir("demo", dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Files) != 4 {
		t.Fatalf("files = %d, want 4 (php only)", len(p.Files))
	}
	if p.ResolveFunc("connect") == nil {
		t.Error("cross-file function not indexed")
	}
	if p.ResolveMethod("name") == nil {
		t.Error("method not indexed")
	}
	if p.TotalLines() == 0 {
		t.Error("no lines counted")
	}
}

func TestLoadDirMissing(t *testing.T) {
	if _, err := LoadDir("x", "/definitely/not/here"); err == nil {
		t.Error("want error for missing directory")
	}
}

func TestLoadMapDeterministicOrder(t *testing.T) {
	files := map[string]string{
		"z.php": `<?php function dup() { return 1; }`,
		"a.php": `<?php function dup() { return 2; }`,
	}
	p1 := LoadMap("m", files)
	p2 := LoadMap("m", files)
	// First-wins indexing must be deterministic: a.php sorts first.
	f1 := p1.ResolveFunc("dup")
	f2 := p2.ResolveFunc("dup")
	if f1 == nil || f2 == nil {
		t.Fatal("function missing")
	}
	if f1.Pos().File != "a.php" || f2.Pos().File != "a.php" {
		t.Errorf("indexing not deterministic: %s vs %s", f1.Pos().File, f2.Pos().File)
	}
}

func TestProjectFileLookup(t *testing.T) {
	p := LoadMap("m", map[string]string{"a.php": `<?php echo 1;`})
	if p.File("a.php") == nil {
		t.Error("file lookup failed")
	}
	if p.File("b.php") != nil {
		t.Error("missing file should return nil")
	}
}

// TestLoadDirResilient asserts the load survives unreadable files, broken
// symlinks and files over the size cap: every failure becomes a load-skipped
// diagnostic (preserving the original path casing) and the rest of the tree
// loads normally.
func TestLoadDirResilient(t *testing.T) {
	dir := t.TempDir()
	write := func(path, src string) {
		t.Helper()
		full := filepath.Join(dir, filepath.FromSlash(path))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("ok.php", `<?php echo 1;`)
	write("Sub/BIG.PHP", "<?php echo 2; "+strings.Repeat("// pad\n", 64))
	write("locked.php", `<?php echo 3;`)
	if err := os.Chmod(filepath.Join(dir, "locked.php"), 0o000); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(filepath.Join(dir, "locked.php"), 0o644) // so TempDir cleanup works everywhere
	if err := os.Symlink(filepath.Join(dir, "nowhere"), filepath.Join(dir, "dangling.php")); err != nil {
		t.Fatal(err)
	}

	p, err := LoadDirOptions("resilient", dir, LoadOptions{MaxFileSize: 64})
	if err != nil {
		t.Fatalf("load must not abort on per-file failures: %v", err)
	}
	if p.File("ok.php") == nil {
		t.Fatal("healthy file missing from the project")
	}
	diagFor := func(path string) *Diagnostic {
		for i := range p.Diagnostics {
			if p.Diagnostics[i].File == path {
				return &p.Diagnostics[i]
			}
		}
		return nil
	}
	// Size cap: skipped, diagnostic keeps the original casing.
	big := diagFor(filepath.FromSlash("Sub/BIG.PHP"))
	if big == nil || big.Kind != DiagLoadSkipped {
		t.Fatalf("over-cap file not diagnosed: %v", p.Diagnostics)
	}
	if !strings.Contains(big.Message, "exceeds cap") {
		t.Errorf("size-cap diagnostic message = %q", big.Message)
	}
	if p.File(filepath.FromSlash("Sub/BIG.PHP")) != nil {
		t.Error("over-cap file loaded anyway")
	}
	// Broken symlink: skipped with a diagnostic.
	if d := diagFor("dangling.php"); d == nil || d.Kind != DiagLoadSkipped {
		t.Errorf("dangling symlink not diagnosed: %v", p.Diagnostics)
	}
	// chmod 000: unreadable for normal users; root reads it regardless, so
	// accept either a loaded file or a load-skipped diagnostic — what must
	// not happen is an aborted load.
	if p.File("locked.php") == nil {
		if d := diagFor("locked.php"); d == nil || d.Kind != DiagLoadSkipped {
			t.Errorf("unreadable file neither loaded nor diagnosed: %v", p.Diagnostics)
		}
	}
}

// TestLoadDirUnlimitedCap asserts MaxFileSize < 0 disables the cap.
func TestLoadDirUnlimitedCap(t *testing.T) {
	dir := t.TempDir()
	src := "<?php echo 1; " + strings.Repeat("// filler\n", 100)
	if err := os.WriteFile(filepath.Join(dir, "big.php"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := LoadDirOptions("nocap", dir, LoadOptions{MaxFileSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	if p.File("big.php") == nil || len(p.Diagnostics) != 0 {
		t.Errorf("unlimited cap still skipped files: %v", p.Diagnostics)
	}
}

// TestProjectFileIndexIsMap exercises the path index on a project large
// enough that a linear scan would differ observably, and pins the fallback
// behavior for hand-assembled projects.
func TestProjectFileIndex(t *testing.T) {
	files := make(map[string]string, 200)
	for i := 0; i < 200; i++ {
		files[filepath.Join("d", "f"+string(rune('a'+i%26))+string(rune('0'+i/26))+".php")] = `<?php echo 1;`
	}
	p := LoadMap("idx", files)
	for path := range files {
		if got := p.File(path); got == nil || got.Path != path {
			t.Fatalf("File(%q) = %v", path, got)
		}
	}
	if p.File("d/zz.php") != nil {
		t.Error("missing path must return nil")
	}
	// A Project assembled without index() still answers via the fallback.
	manual := &Project{Files: []*SourceFile{{Path: "x.php"}}}
	if manual.File("x.php") == nil {
		t.Error("fallback lookup failed")
	}
}

func TestParseErrorsRecorded(t *testing.T) {
	p := LoadMap("m", map[string]string{"bad.php": `<?php $x = ;`})
	if len(p.Files[0].ParseErrs) == 0 {
		t.Error("parse errors not recorded")
	}
	// The project is still analyzable.
	eng, err := New(Options{Mode: ModeWAPe, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Train(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Analyze(p); err != nil {
		t.Errorf("analysis must tolerate parse errors: %v", err)
	}
}

// TestLoadDirSymlinks pins the symlink contract of LoadDirContext: a symlink
// to a regular PHP file is followed and loaded under the symlink's own path,
// a symlink to a directory is skipped without descending (whether or not its
// name ends in .php), and a broken symlink becomes a load-skipped diagnostic
// instead of failing the load.
func TestLoadDirSymlinks(t *testing.T) {
	// The symlink targets live outside the scanned root so any file found
	// under a directory symlink could only have come from descending into it.
	outside := t.TempDir()
	if err := os.MkdirAll(filepath.Join(outside, "shared"), 0o755); err != nil {
		t.Fatal(err)
	}
	for path, src := range map[string]string{
		"real.php":          `<?php echo $_GET["a"];`,
		"shared/inner.php":  `<?php echo 1;`,
		"shared/inner2.php": `<?php echo 2;`,
	} {
		if err := os.WriteFile(filepath.Join(outside, filepath.FromSlash(path)), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "plain.php"), []byte(`<?php echo 3;`), 0o644); err != nil {
		t.Fatal(err)
	}
	link := func(target, name string) {
		t.Helper()
		if err := os.Symlink(target, filepath.Join(dir, name)); err != nil {
			t.Skipf("symlinks unavailable here: %v", err)
		}
	}
	link(filepath.Join(outside, "real.php"), "alias.php")       // file symlink: followed
	link(filepath.Join(outside, "shared"), "vendor")            // dir symlink: not descended
	link(filepath.Join(outside, "shared"), "fake.php")          // dir symlink with a .php name: skipped silently
	link(filepath.Join(outside, "missing.php"), "dangling.php") // broken: diagnosed
	link(filepath.Join(dir, "loop"), "loop")                    // self-referential: broken, diagnosed

	p, err := LoadDirContext(context.Background(), "symlinks", dir, LoadOptions{})
	if err != nil {
		t.Fatalf("symlinks must never abort the load: %v", err)
	}

	if p.File("plain.php") == nil {
		t.Error("regular file missing")
	}
	// File symlink: loaded under the symlink's path, with the target's bytes.
	alias := p.File("alias.php")
	if alias == nil {
		t.Fatalf("file symlink not followed; loaded %d files", len(p.Files))
	}
	if !strings.Contains(alias.Src, `$_GET["a"]`) {
		t.Errorf("file symlink loaded wrong content: %q", alias.Src)
	}
	// Directory symlinks: nothing under them is loaded, by either name.
	for _, f := range p.Files {
		if strings.Contains(f.Path, "inner") {
			t.Errorf("descended into a directory symlink: loaded %q", f.Path)
		}
	}
	if p.File("fake.php") != nil {
		t.Error(".php-named directory symlink loaded as a file")
	}
	diagFor := func(path string) *Diagnostic {
		for i := range p.Diagnostics {
			if p.Diagnostics[i].File == path {
				return &p.Diagnostics[i]
			}
		}
		return nil
	}
	// The .php-named directory symlink resolves fine — it is skipped as a
	// non-file, not diagnosed as broken.
	if d := diagFor("fake.php"); d != nil {
		t.Errorf("resolvable directory symlink should be skipped silently, got %+v", *d)
	}
	for _, name := range []string{"dangling.php", "loop"} {
		d := diagFor(name)
		if name == "loop" && d == nil {
			// Only .php entries are examined at all; a non-.php broken
			// symlink is invisible to the loader, which is fine too.
			continue
		}
		if d == nil || d.Kind != DiagLoadSkipped {
			t.Errorf("broken symlink %s not diagnosed: %v", name, p.Diagnostics)
			continue
		}
		if !strings.Contains(d.Message, "broken symlink") {
			t.Errorf("broken symlink %s diagnostic message = %q", name, d.Message)
		}
	}
}
