package core

import (
	"sync/atomic"

	"repro/internal/taint"
)

// Fused scheduling: the execute stage groups the (file, class) tasks that
// actually need execution — not breaker-open, not killed by the sink
// pre-filter, not warm in the result store — into one fused task per file,
// and evaluates every class lane in a single IR traversal. Results are split
// back to per-(file, class) granularity, so everything downstream (closure
// fingerprints, result-store entries, the retry ladder, per-class breakers,
// diagnostics) keeps its existing shape; a fault inside a fused pass demotes
// only that file's classes to the unfused per-class path.

// fuseGroups slices the plan's execution queue into runs of consecutive
// entries sharing a file. planScan emits the queue file-major, so a linear
// scan recovers exactly one group per file needing execution; a file's
// classes killed by the pre-filter or satisfied from the result store are
// simply absent from its group.
func fuseGroups(plan *scanPlan) [][]int {
	var groups [][]int
	start := 0
	for n := 1; n <= len(plan.execIdx); n++ {
		if n == len(plan.execIdx) ||
			plan.tasks[plan.execIdx[n]].file != plan.tasks[plan.execIdx[start]].file {
			groups = append(groups, plan.execIdx[start:n:n])
			start = n
		}
	}
	return groups
}

// runFusedTasks performs one fused multi-class analysis: every class lane in
// ts (all tasks of one file) evaluated by a single IR traversal. Per lane it
// mirrors runTask exactly — same task hook, same analyzer config, same
// outcome assembly — so a clean fused pass is indistinguishable from len(ts)
// clean unfused first attempts. ok=false means the pass aborted (a lane's
// step budget, or the cooperative stop): lane state is then meaningless and
// the caller demotes the whole group to unfused execution.
func (e *Engine) runFusedTasks(ts []task, p *Project, stop *atomic.Bool, budget int, shared *taint.SharedSummaries) ([]taskOutcome, bool) {
	cfgs := make([]taint.Config, len(ts))
	for k, t := range ts {
		if e.opts.TaskHook != nil {
			e.opts.TaskHook(t.file.Path, t.cls.ID)
		}
		sans := append([]string(nil), e.opts.ExtraSanitizers...)
		if fixID := e.fixIDFor(t.cls); fixID != "" {
			sans = append(sans, fixID)
		}
		sans = append(sans, e.opts.ClassSanitizers[t.cls.ID]...)
		cfgs[k] = taint.Config{
			Class:            t.cls,
			Resolver:         p,
			ExtraSanitizers:  sans,
			ExtraEntryPoints: e.opts.ExtraEntryPoints,
			ExtraSinks:       e.opts.ClassSinks[t.cls.ID],
			MaxSteps:         budget,
			Stop:             stop,
			Shared:           shared,
		}
	}
	fz := taint.NewFused(cfgs)
	file := ts[0].file
	cache := p.IRCache()
	if !fz.FileIR(file.AST, cache.File(file.AST), cache) {
		return nil, false
	}
	outs := make([]taskOutcome, len(ts))
	for k, t := range ts {
		out := &outs[k]
		for _, cand := range fz.Candidates(k) {
			f := &Finding{Candidate: cand}
			if w, ok := e.weapons[cand.Class]; ok {
				f.Weapon = string(w.Class.ID)
			}
			f.Symptoms = e.extractor.Extract(cand, t.file.AST)
			f.PredictedFP, f.Votes = e.predict(f.Symptoms)
			out.findings = append(out.findings, f)
		}
		out.steps = fz.Steps(k)
		out.cacheHits = fz.SharedHits(k)
		out.cacheMisses = fz.SharedMisses(k)
		out.transfers = fz.TransferHits(k)
		out.pending = fz.PendingShared(k)
	}
	return outs, true
}
