package core_test

// The fused-scheduling differential harness (make fuse-diff): every corpus
// app — web suite, micro suite, branch-sanitizer proofs and the weapon
// dry-run proofs — is scanned with fused multi-class evaluation (the
// default) and with per-class execution (DisableFusion), at parallelism 1
// and 3, and the rendered reports must be byte-identical. Unlike the IR
// migration (make ir-diff) there is no golden delta file: fusion is pure
// scheduling, so any divergence at all is a bug.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/weapon"
)

func fusediffEngine(t *testing.T, disableFusion bool, par int, weapons []*weapon.Weapon) *core.Engine {
	t.Helper()
	e, err := core.New(core.Options{
		Mode:          core.ModeWAPe,
		Seed:          1,
		Parallelism:   par,
		DisableFusion: disableFusion,
		Weapons:       weapons,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Train(); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestFusedDifferential(t *testing.T) {
	native, dryrun, weapons := irdiffApps(t)
	for _, par := range []int{1, 3} {
		unfusedEng := fusediffEngine(t, true, par, nil)
		fusedEng := fusediffEngine(t, false, par, nil)
		unfusedWpn := fusediffEngine(t, true, par, weapons)
		fusedWpn := fusediffEngine(t, false, par, weapons)

		scan := func(ue, fe *core.Engine, apps []*corpus.App) {
			for _, app := range apps {
				unfusedJSON, unfusedKeys := renderNormalized(t, ue, app)
				fusedJSON, fusedKeys := renderNormalized(t, fe, app)
				if unfusedJSON == fusedJSON {
					continue
				}
				removed, added := diffKeys(unfusedKeys, fusedKeys)
				if len(removed) == 0 && len(added) == 0 {
					t.Errorf("par %d, %s: reports differ but finding keys match — trace or source divergence:\nunfused:\n%s\nfused:\n%s",
						par, app.Name, unfusedJSON, fusedJSON)
					continue
				}
				t.Errorf("par %d, %s: fused scheduling changed the findings: removed=%v added=%v",
					par, app.Name, removed, added)
			}
		}
		scan(unfusedEng, fusedEng, native)
		scan(unfusedWpn, fusedWpn, dryrun)
	}
}
