package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/vuln"
)

func TestParseProjectConfig(t *testing.T) {
	src := `# vfront project configuration
san escape
san-for sqli quote_smart
ep _APP_INPUT
sink audit_query arg=0 class=sqli
sink run method class=wpsqli
`
	cfg, err := ParseProjectConfig(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Sanitizers) != 1 || cfg.Sanitizers[0] != "escape" {
		t.Errorf("sanitizers = %v", cfg.Sanitizers)
	}
	if got := cfg.SanitizersFor[vuln.SQLI]; len(got) != 1 || got[0] != "quote_smart" {
		t.Errorf("san-for = %v", cfg.SanitizersFor)
	}
	if len(cfg.EntryPoints) != 1 || cfg.EntryPoints[0] != "_APP_INPUT" {
		t.Errorf("eps = %v", cfg.EntryPoints)
	}
	sinks := cfg.SinksFor[vuln.SQLI]
	if len(sinks) != 1 || sinks[0].Name != "audit_query" || len(sinks[0].Args) != 1 {
		t.Errorf("sinks = %+v", sinks)
	}
	if !cfg.SinksFor[vuln.WPSQLI][0].Method {
		t.Error("method sink flag lost")
	}
}

func TestParseProjectConfigErrors(t *testing.T) {
	cases := []string{
		"san\n",
		"san-for nope f\n",
		"san-for sqli\n",
		"ep\n",
		"sink f\n",
		"sink f class=nope\n",
		"sink f arg=x class=sqli\n",
		"sink f weird class=sqli\n",
		"bogus directive\n",
	}
	for i, src := range cases {
		if _, err := ParseProjectConfig(strings.NewReader(src)); err == nil {
			t.Errorf("case %d (%q): want error", i, src)
		}
	}
}

func TestLoadProjectConfigMissingIsEmpty(t *testing.T) {
	cfg, err := LoadProjectConfig(filepath.Join(t.TempDir(), "none.conf"))
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Sanitizers) != 0 || len(cfg.EntryPoints) != 0 {
		t.Errorf("missing file should yield empty config: %+v", cfg)
	}
}

func TestProjectConfigDrivesAnalysis(t *testing.T) {
	src := `<?php
$v = quote_smart($_GET['v']);
mysql_query("SELECT * FROM t WHERE a='" . $v . "'");
audit_query("DELETE FROM log WHERE id=" . $_GET['id']);
danger_sink($_APP_INPUT['x']);
`
	conf := `san-for sqli quote_smart
ep _APP_INPUT
sink audit_query arg=0 class=sqli
sink danger_sink arg=0 class=xss
`
	cfg, err := ParseProjectConfig(strings.NewReader(conf))
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Mode: ModeWAPe, Seed: 1}
	cfg.ApplyTo(&opts)
	e, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Train(); err != nil {
		t.Fatal(err)
	}
	files := map[string]string{
		"page.php": src,
		"lib.php":  `<?php function quote_smart($v) { return trim($v); }`,
	}
	rep, err := e.Analyze(LoadMap("cfg", files))
	if err != nil {
		t.Fatal(err)
	}
	var sinkNames []string
	for _, f := range rep.Findings {
		sinkNames = append(sinkNames, f.Candidate.SinkName)
	}
	// quote_smart flow is sanitized per config; audit_query and danger_sink
	// are detected as configured sinks.
	joined := strings.Join(sinkNames, ",")
	if strings.Contains(joined, "mysql_query") {
		t.Errorf("quote_smart config ignored: %v", sinkNames)
	}
	if !strings.Contains(joined, "audit_query") {
		t.Errorf("configured sink missed: %v", sinkNames)
	}
	if !strings.Contains(joined, "danger_sink") {
		t.Errorf("configured entry point + sink missed: %v", sinkNames)
	}
}

func TestWapConfAutoLoadedByCLIFormat(t *testing.T) {
	// End-to-end: the config written next to the code applies.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "wap.conf"), []byte("san app_clean\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "x.php"), []byte(`<?php
function app_clean($v) { return trim($v); }
mysql_query("SELECT " . app_clean($_GET['q']));
`), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := LoadProjectConfig(filepath.Join(dir, "wap.conf"))
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Mode: ModeWAPe, Seed: 1}
	cfg.ApplyTo(&opts)
	e, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Train(); err != nil {
		t.Fatal(err)
	}
	p, err := LoadDir("auto", dir)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) != 0 {
		t.Errorf("wap.conf sanitizer not applied: %d findings", len(rep.Findings))
	}
}
