package core

// Tests for the shared cross-task summary cache, the sink pre-filter and
// the partial-report accounting fixes. The cache's contract is behavioral
// equivalence: at any Parallelism, with the cache and pre-filter on or off,
// a scan produces identical findings — so most tests here compare full
// report signatures across configurations rather than poking at cache
// internals.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/taint"
	"repro/internal/vuln"
)

// valueSig renders the full content of a taint value, excluding AST node
// pointers (which differ in identity but never in meaning across runs).
func valueSig(v taint.Value) string {
	var b strings.Builder
	fmt.Fprintf(&b, "t=%v", v.Tainted)
	for _, s := range v.Sources {
		fmt.Fprintf(&b, "|src=%s@%s:%d:%d", s.Name, s.Pos.File, s.Pos.Line, s.Pos.Column)
	}
	for _, s := range v.Sanitizers {
		fmt.Fprintf(&b, "|san=%s", s)
	}
	for _, st := range v.Trace {
		fmt.Fprintf(&b, "|step=%s@%s:%d:%d", st.Desc, st.Pos.File, st.Pos.Line, st.Pos.Column)
	}
	return b.String()
}

// reportSignature serializes everything observable about a report's
// findings, in order, so two reports can be compared for exact equality.
func reportSignature(rep *Report) string {
	var b strings.Builder
	for _, f := range rep.Findings {
		c := f.Candidate
		fmt.Fprintf(&b, "%s|file=%s|fn=%s|fp=%v|votes=%v|%s\n",
			c.Key(), c.File, c.EnclosingFunc, f.PredictedFP, f.Votes, valueSig(c.Value))
	}
	fmt.Fprintf(&b, "links=%d\n", len(rep.StoredLinks))
	for _, l := range rep.StoredLinks {
		fmt.Fprintf(&b, "link=%s:%s->%s\n", l.Table, l.Write.Key(), l.Read.Key())
	}
	for _, d := range rep.Diagnostics {
		fmt.Fprintf(&b, "diag=%s|%s|%s\n", d.File, d.Class, d.Kind)
	}
	return b.String()
}

// scanWith runs one scan of files under the given cache/prefilter/worker
// configuration and returns its report.
func scanWith(t *testing.T, p *Project, parallelism int, disableCache, disablePrefilter bool) *Report {
	t.Helper()
	e := newTestEngine(t, Options{
		Parallelism:          parallelism,
		DisableSummaryCache:  disableCache,
		DisableSinkPrefilter: disablePrefilter,
	})
	rep, err := e.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// sharedHelperProject is a project whose files repeatedly call helpers
// declared in a shared library file — the shape the summary cache exists
// for. It includes an ambiguous helper (declared twice with different
// taint behavior) to exercise the purity guard.
func sharedHelperProject() *Project {
	return LoadMap("cacheapp", map[string]string{
		"lib.php": `<?php
function fetch_id() { return $_GET['id']; }
function show($x) { echo $_GET['q']; return $x; }
function run_sql($q) { mysql_query("SELECT * FROM t WHERE id=" . $q); }
function outer1() { return inner(); }
function inner() { return $_GET['deep']; }`,
		"amb.php": `<?php
function inner() { return "safe"; }
echo inner();
show(1);`,
		"a.php": `<?php
show(1);
run_sql(fetch_id());
echo outer1();`,
		"b.php": `<?php
show(1);
echo inner();
mysql_query("UPDATE t SET v=1 WHERE k=" . fetch_id());`,
	})
}

// TestFindingsIdenticalCacheOnOff is the cache's core contract: byte-equal
// findings with the cache and pre-filter enabled vs disabled, sequential
// and parallel, on both a hand-built adversarial project and a generated
// application.
func TestFindingsIdenticalCacheOnOff(t *testing.T) {
	apps := map[string]*Project{"helpers": sharedHelperProject()}
	app := corpus.WebAppSuite(1)[2]
	apps["corpus"] = LoadMap(app.Name, app.Files)

	for name, p := range apps {
		baseline := reportSignature(scanWith(t, p, 1, true, true))
		if !strings.Contains(baseline, "t=true") {
			t.Fatalf("%s: baseline scan found nothing; test is vacuous", name)
		}
		for _, par := range []int{1, 8} {
			got := reportSignature(scanWith(t, p, par, false, false))
			if got != baseline {
				t.Errorf("%s: cache+prefilter at parallelism %d changed the findings\nbaseline:\n%s\ngot:\n%s",
					name, par, baseline, got)
			}
		}
	}
}

// TestSharedCacheIsExercised guards against the identity test passing
// vacuously because nothing was ever cached: the helper project must
// produce commits and cross-task hits.
func TestSharedCacheIsExercised(t *testing.T) {
	rep := scanWith(t, sharedHelperProject(), 1, false, false)
	if rep.Stats == nil {
		t.Fatal("report has no stats")
	}
	if rep.Stats.CacheEntries == 0 {
		t.Error("no shared summaries were committed")
	}
	if rep.Stats.CacheHits == 0 {
		t.Error("no shared summaries were consumed")
	}
	if rep.Stats.TasksSkipped == 0 {
		t.Error("sink pre-filter skipped nothing")
	}
}

// TestPanickingTaskLeavesNoCacheEntry injects a panic into every task and
// asserts no pending summaries were committed: a faulting task must never
// publish to the shared cache.
func TestPanickingTaskLeavesNoCacheEntry(t *testing.T) {
	p := sharedHelperProject()
	clean := scanWith(t, p, 1, false, false)
	if clean.Stats.CacheEntries == 0 {
		t.Fatal("clean scan commits nothing; the panic assertion below would be vacuous")
	}

	e := newTestEngine(t, Options{
		Parallelism: 1,
		TaskHook: func(string, vuln.ClassID) {
			// The hook runs inside the task goroutine, after the analyzer
			// would have computed fills on a real fault; panicking here
			// models a taint-engine bug at task end just as well because
			// commit happens strictly after the outcome is received clean.
			panic("injected")
		},
	})
	rep, err := e.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.CacheEntries != 0 {
		t.Errorf("panicking tasks committed %d cache entries, want 0", rep.Stats.CacheEntries)
	}
	if len(rep.Findings) != 0 {
		t.Errorf("panicking tasks leaked %d findings", len(rep.Findings))
	}
}

// TestPartialPanicDoesNotPoisonCache panics only the tasks of one file and
// asserts every other file's findings are identical to a fault-free scan —
// i.e. whatever the faulting tasks did before dying never reached the
// shared cache that healthy tasks consume.
func TestPartialPanicDoesNotPoisonCache(t *testing.T) {
	p := sharedHelperProject()
	want := scanWith(t, p, 1, false, false)
	e := newTestEngine(t, Options{
		Parallelism: 1,
		TaskHook: func(file string, _ vuln.ClassID) {
			if file == "a.php" {
				panic("injected")
			}
		},
	})
	rep, err := e.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	strip := func(r *Report) string {
		var b strings.Builder
		for _, f := range r.Findings {
			if f.Candidate.File == "a.php" {
				continue
			}
			fmt.Fprintf(&b, "%s|%s|%v|%s\n", f.Candidate.Key(), f.Candidate.File, f.PredictedFP, valueSig(f.Candidate.Value))
		}
		return b.String()
	}
	if got, wantSig := strip(rep), strip(want); got != wantSig {
		t.Errorf("healthy tasks changed under partial fault injection\nwant:\n%s\ngot:\n%s", wantSig, got)
	}
}

// TestPrefilterKeepsCrossFileSinkTasks pins the pre-filter's soundness on
// the cross-file case: the calling file contains no sink token itself, the
// sink lives in a helper another file declares, and the finding must
// survive.
func TestPrefilterKeepsCrossFileSinkTasks(t *testing.T) {
	p := LoadMap("crossfile", map[string]string{
		"caller.php": `<?php run_sql($_GET['id']);`,
		"lib.php":    `<?php function run_sql($q) { mysql_query("SELECT * FROM t WHERE id=" . $q); }`,
	})
	rep := scanWith(t, p, 1, false, false)
	if !hasFinding(rep, "caller.php", vuln.SQLI) {
		t.Error("pre-filter dropped the cross-file sink flow from caller.php")
	}
	if rep.Stats.TasksSkipped == 0 {
		t.Error("pre-filter skipped nothing on a near-empty project")
	}
}

// TestTimedOutTaskCountsAsDispositioned is the watchdog accounting
// regression: a task abandoned by the per-task deadline has a diagnostic,
// so the scan-level cancellation account must not double-count it as
// incomplete.
func TestTimedOutTaskCountsAsDispositioned(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var n atomic.Int64
	e := newTestEngine(t, Options{
		Parallelism:          1,
		DisableSinkPrefilter: true,
		// The watchdog accounting under test is per-task, i.e. the unfused
		// path; a fused group's watchdog cut demotes instead of
		// dispositioning (fusedfault_test.go).
		DisableFusion: true,
		Classes:       []vuln.ClassID{vuln.XSSR, vuln.SQLI},
		TaskTimeout:   20 * time.Millisecond,
		TaskHook: func(string, vuln.ClassID) {
			switch n.Add(1) {
			case 1:
				// Stall past the deadline: the watchdog dispositions this
				// task with a timeout diagnostic.
				time.Sleep(400 * time.Millisecond)
			case 4:
				// Last of the four tasks: cancel mid-run so exactly this
				// one is genuinely incomplete.
				cancel()
				time.Sleep(400 * time.Millisecond)
			}
		},
	})
	if err := e.Train(); err != nil {
		t.Fatal(err)
	}
	rep, err := e.AnalyzeContext(ctx, twoFileProject())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	var msg string
	for _, d := range rep.Diagnostics {
		if d.File == "" && strings.Contains(d.Message, "cancelled") {
			msg = d.Message
		}
	}
	if msg == "" {
		t.Fatalf("no scan-level cancellation diagnostic: %v", rep.Diagnostics)
	}
	if !strings.Contains(msg, "1 of 4 tasks incomplete") {
		t.Errorf("cancellation account = %q, want exactly 1 of 4 incomplete (timed-out task is dispositioned, not incomplete)", msg)
	}
}

// TestCancelledScanStillLinksStoredXSS is the partial-report regression: a
// cancelled scan whose completed subset contains both halves of a stored
// XSS must still report the link.
func TestCancelledScanStillLinksStoredXSS(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p := LoadMap("blog", map[string]string{
		"comments.php": `<?php
$body = $_POST['body'];
mysql_query("INSERT INTO comments (body) VALUES ('" . $body . "')");
$res = mysql_query("SELECT body FROM comments");
$row = mysql_fetch_assoc($res);
echo "<li>" . $row['body'] . "</li>";
`,
		// Sorts after comments.php, so with Parallelism 1 every
		// comments.php task completes before the first zz.php task cancels.
		"zz.php": `<?php echo $_GET['x'];`,
	})
	e := newTestEngine(t, Options{
		Parallelism:          1,
		DisableSinkPrefilter: true,
		TaskHook: func(file string, _ vuln.ClassID) {
			if file == "zz.php" {
				cancel()
				time.Sleep(200 * time.Millisecond)
			}
		},
	})
	if err := e.Train(); err != nil {
		t.Fatal(err)
	}
	rep, err := e.AnalyzeContext(ctx, p)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(rep.StoredLinks) != 1 {
		t.Fatalf("partial report has %d stored links, want 1 (completed subset contains both halves)", len(rep.StoredLinks))
	}
	if rep.StoredLinks[0].Table != "COMMENTS" {
		t.Errorf("link table = %q", rep.StoredLinks[0].Table)
	}
}

// TestVulnerabilitiesMemoized pins the report-side fix: the vulnerability
// subset is computed once and the repeated-filter helpers reuse it.
func TestVulnerabilitiesMemoized(t *testing.T) {
	rep := scanWith(t, twoFileProject(), 1, false, false)
	v1 := rep.Vulnerabilities()
	v2 := rep.Vulnerabilities()
	if len(v1) == 0 {
		t.Fatal("no vulnerabilities; test is vacuous")
	}
	if &v1[0] != &v2[0] || len(v1) != len(v2) {
		t.Error("Vulnerabilities() recomputed the subset instead of memoizing")
	}
	// The derived helpers agree with the memoized subset.
	total := 0
	for _, n := range rep.CountByClass() {
		total += n
	}
	if total != len(v1) {
		t.Errorf("CountByClass sums to %d, want %d", total, len(v1))
	}
	if len(rep.VulnerableFiles()) == 0 {
		t.Error("VulnerableFiles is empty despite vulnerabilities")
	}
}
