package core

import (
	"strings"
	"testing"

	"repro/internal/symptom"
)

func TestJustifyPredictedFP(t *testing.T) {
	e := newEngine(t, Options{Mode: ModeWAPe, Seed: 1})
	p := LoadMap("app", map[string]string{"page.php": guardedApp})
	rep, err := e.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) != 1 || !rep.Findings[0].PredictedFP {
		t.Fatalf("expected one predicted FP, got %+v", rep.Findings)
	}
	j := e.Justify(rep.Findings[0])
	val := j.ByCategory[symptom.Validation]
	if len(val) == 0 {
		t.Fatalf("no validation symptoms in justification: %+v", j.ByCategory)
	}
	joined := strings.Join(val, ",")
	if !strings.Contains(joined, "is_numeric") || !strings.Contains(joined, "isset") {
		t.Errorf("validation symptoms = %v", val)
	}
	if len(j.Votes) != 3 || len(j.VoterNames) != 3 {
		t.Errorf("votes/names = %v/%v", j.Votes, j.VoterNames)
	}
	s := j.String()
	for _, want := range []string{"validation:", "is_numeric", "SVM", "["} {
		if !strings.Contains(s, want) {
			t.Errorf("justification text missing %q: %s", want, s)
		}
	}
}

func TestJustifyNoSymptoms(t *testing.T) {
	e := newEngine(t, Options{Mode: ModeWAPe, Seed: 1})
	p := LoadMap("app", map[string]string{"raw.php": `<?php mysql_query("DELETE FROM t WHERE id=" . $_GET['id']);`})
	rep, err := e.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) != 1 {
		t.Fatal("expected one finding")
	}
	j := e.Justify(rep.Findings[0])
	// Raw flow: only string-manipulation (concat) and SQL-shape symptoms.
	if len(j.ByCategory[symptom.Validation]) != 0 {
		t.Errorf("unexpected validation symptoms: %v", j.ByCategory[symptom.Validation])
	}
	if !strings.Contains(j.String(), "vuln") {
		t.Errorf("votes missing from %q", j.String())
	}
}
