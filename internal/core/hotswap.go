package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/corpus"
	"repro/internal/vuln"
	"repro/internal/weapon"
)

// Hot-reloading weapons never mutates a live engine: after Train an Engine
// is read-only (breakers aside), so a weapon swap derives a NEW engine from
// the startup engine and atomically replaces the pointer the scan service
// hands to new scans. Scans already running keep the engine they started
// with — mid-scan swaps cannot change a running scan's findings.

// WeaponIDs returns the class IDs of the engine's linked weapons in sorted
// order (a weapon's class ID is its name).
func (e *Engine) WeaponIDs() []vuln.ClassID {
	ids := make([]vuln.ClassID, 0, len(e.weapons))
	for id := range e.weapons {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// WithWeapons derives an engine whose weapon set is the receiver's startup
// weapons plus the given hot-reloaded set, stamped with the registry
// revision the set was taken at. The derived engine shares the receiver's
// trained ensemble (training is deterministic per seed, so sharing only
// skips redundant work) and its circuit breakers: breakers are per-class,
// weapon classes are classes, so each user weapon keeps its own breaker
// state across swaps and a pathological weapon stays tripped even after
// unrelated set changes. Call it on the startup engine — deriving from a
// derived engine would compound the hot sets.
func (e *Engine) WithWeapons(revision int64, hot []*weapon.Weapon) (*Engine, error) {
	if !e.trained {
		if err := e.Train(); err != nil {
			return nil, err
		}
	}
	opts := e.opts
	opts.WeaponSetRevision = revision
	opts.Weapons = make([]*weapon.Weapon, 0, len(e.opts.Weapons)+len(hot))
	opts.Weapons = append(opts.Weapons, e.opts.Weapons...)
	opts.Weapons = append(opts.Weapons, hot...)
	ne, err := New(opts)
	if err != nil {
		return nil, err
	}
	ne.ensemble = e.ensemble
	ne.trained = true
	ne.breakers = e.breakers
	return ne, nil
}

// DryRunWeapon is the last validation rung before a weapon is admitted: it
// scans the weapon's generated proof app (corpus.DryRunApp) with the
// receiver — a candidate engine that already includes the weapon — and
// checks the ground truth exactly. Every planted vulnerable flow must be
// reported by the weapon's class and every sanitized flow must stay
// silent; any scan degradation (panic, timeout, budget exhaustion) on the
// tiny proof app also rejects, since it predicts pathological behaviour at
// scale. The scan runs storeless: proof-app results never touch the
// incremental result store.
func (e *Engine) DryRunWeapon(ctx context.Context, w *weapon.Weapon) error {
	if _, ok := e.weapons[w.Class.ID]; !ok {
		return fmt.Errorf("core: dry-run: engine does not include weapon %q", w.Class.ID)
	}
	app := corpus.DryRunApp(&w.Spec)
	p := LoadMap(app.Name, app.Files)
	if len(p.Diagnostics) > 0 {
		return fmt.Errorf("core: dry-run of weapon %q: proof app failed to load: %s", w.Class.ID, p.Diagnostics[0].Message)
	}
	rep, err := e.AnalyzeScan(ctx, p, ScanOpts{})
	if err != nil {
		return fmt.Errorf("core: dry-run of weapon %q: %w", w.Class.ID, err)
	}
	for _, d := range rep.Diagnostics {
		return fmt.Errorf("core: dry-run of weapon %q degraded on the generated proof app (%v): %s",
			w.Class.ID, d.Kind, d.Message)
	}

	matched := make([]bool, len(app.Spots))
	var stray []string
	for _, f := range rep.Findings {
		if f.Candidate.Class != w.Class.ID {
			continue
		}
		hit := false
		for i, s := range app.Spots {
			if s.Contains(f.Candidate.File, f.Candidate.SinkPos.Line) {
				matched[i] = true
				hit = true
			}
		}
		if !hit {
			stray = append(stray, fmt.Sprintf("%s:%d (sink %s)", f.Candidate.File, f.Candidate.SinkPos.Line, f.Candidate.SinkName))
		}
	}
	var missed []string
	for i, s := range app.Spots {
		if !matched[i] {
			missed = append(missed, fmt.Sprintf("%s:%d-%d (sink %s)", s.File, s.StartLine, s.EndLine, w.Spec.Sinks[i].Name))
		}
	}
	if len(missed) > 0 || len(stray) > 0 {
		var b strings.Builder
		fmt.Fprintf(&b, "core: dry-run of weapon %q failed:", w.Class.ID)
		if len(missed) > 0 {
			fmt.Fprintf(&b, " planted vulnerable flows not detected: %s;", strings.Join(missed, ", "))
		}
		if len(stray) > 0 {
			fmt.Fprintf(&b, " sanitized flows incorrectly flagged: %s;", strings.Join(stray, ", "))
		}
		b.WriteString(" the spec's sinks/sanitizers do not behave as declared")
		return fmt.Errorf("%s", b.String())
	}
	return nil
}
