package core

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/corrector"
	"repro/internal/dataset"
	"repro/internal/ir"
	"repro/internal/ml"
	"repro/internal/php/ast"
	"repro/internal/resultstore"
	"repro/internal/symptom"
	"repro/internal/taint"
	"repro/internal/vuln"
	"repro/internal/weapon"
)

// Mode selects the tool generation being reproduced.
type Mode int

// Engine modes.
const (
	// ModeOriginal reproduces WAP v2.1: eight classes, the 16-attribute
	// false positive predictor (Logistic Regression, Random Tree, SVM).
	ModeOriginal Mode = iota + 1
	// ModeWAPe reproduces the paper's tool: fifteen classes, weapons, the
	// 61-attribute predictor (SVM, Logistic Regression, Random Forest).
	ModeWAPe
)

// String returns the tool name of the mode.
func (m Mode) String() string {
	switch m {
	case ModeOriginal:
		return "WAP v2.1"
	case ModeWAPe:
		return "WAPe"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Options configures an Engine.
type Options struct {
	Mode Mode
	// Classes restricts analysis to these classes; nil means the mode's
	// full set.
	Classes []vuln.ClassID
	// Weapons are generated extensions to link in (ModeWAPe only).
	Weapons []*weapon.Weapon
	// ExtraSanitizers are project-specific sanitization functions the user
	// feeds the tool (paper Section V-A, the "escape" example).
	ExtraSanitizers []string
	// ExtraEntryPoints are project-specific input superglobals.
	ExtraEntryPoints []string
	// ClassSanitizers adds per-class sanitizers (from wap.conf san-for).
	ClassSanitizers map[vuln.ClassID][]string
	// ClassSinks adds per-class sinks (from wap.conf sink directives).
	ClassSinks map[vuln.ClassID][]vuln.Sink
	// Seed drives classifier training determinism.
	Seed int64
	// TrainSize overrides the training-set size (0 = paper defaults).
	TrainSize int
	// TrainARFF trains the predictor from a WEKA-style ARFF file instead of
	// the generated set (the paper's "trained data sets" input of Fig. 1).
	// The attribute layout must match the mode (60 features for WAPe, 15
	// for the original version, plus the class column).
	TrainARFF string
	// Parallelism bounds concurrent per-file analysis workers; 0 uses
	// GOMAXPROCS capped at 8, 1 forces sequential analysis. Results are
	// identical at any setting: findings are ordered by (file, class)
	// regardless of completion order.
	Parallelism int
	// TaskTimeout is the per-(file, class) task deadline. A task that runs
	// longer is cut off by a watchdog, its findings are discarded, and a
	// timeout diagnostic is recorded; the scan continues. 0 disables the
	// watchdog.
	TaskTimeout time.Duration
	// TaskBudget bounds the AST-node steps one (file, class) task may spend
	// in taint analysis, so runaway interprocedural walks degrade to
	// conservative propagation instead of hanging. 0 uses DefaultTaskBudget;
	// negative means unlimited.
	TaskBudget int
	// TaskHook, when set, runs at the start of every (file, class) task in
	// the task's own goroutine. It exists for fault injection (chaos
	// testing): a hook that panics or stalls exercises the isolation layer
	// exactly like a bug in the parser or taint engine would.
	TaskHook func(file string, class vuln.ClassID)
	// RetryMax is how many times a faulted task (panic, watchdog timeout,
	// budget exhaustion) is retried before its fault becomes terminal. Each
	// retry halves the AST-step budget (so a stalled walk degrades to
	// conservative propagation instead of timing out again) and sleeps a
	// jittered exponential backoff first. 0 disables the ladder. On a
	// fault-free corpus findings are byte-identical at any RetryMax.
	RetryMax int
	// RetryBackoff is the base backoff before the first retry; it doubles
	// per attempt (±50% jitter, capped at 2s). 0 uses DefaultRetryBackoff;
	// negative disables the sleep.
	RetryBackoff time.Duration
	// BreakerThreshold arms per-class circuit breakers: a class whose tasks
	// fault terminally this many times in a row (across every scan the
	// engine runs) trips open, and its tasks are skipped with breaker-open
	// diagnostics until a cool-down passes and a half-open probe succeeds.
	// 0 disables breakers.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before admitting
	// its half-open probe. 0 uses DefaultBreakerCooldown.
	BreakerCooldown time.Duration
	// DisableSummaryCache turns off the scan-scoped shared summary cache.
	// Findings are identical either way (the cache shares only summaries
	// whose replay is indistinguishable from recomputation); the switch
	// exists for benchmarking and for the identity tests that prove it.
	DisableSummaryCache bool
	// DisableSinkPrefilter turns off the lexical sink pre-filter that skips
	// (file, class) tasks provably unable to produce findings. Findings are
	// identical either way.
	DisableSinkPrefilter bool
	// DisableIR falls back to the legacy AST-walking taint engine instead of
	// the CFG-based IR engine. The IR engine lowers each file once, shares
	// the result read-only across all weapon-class tasks, and applies
	// function summaries as transfer functions at call edges; its findings
	// match the walker's except for documented precision wins (a sanitizer
	// dominating every arm of an exhaustive switch kills the flow). The
	// switch exists for benchmarking and for the differential harness that
	// pins the equivalence.
	DisableIR bool
	// DisableFusion turns off fused scheduling: with it set, every (file,
	// class) task runs its own IR traversal instead of all runnable classes
	// of a file sharing one multi-class pass. Findings are byte-identical
	// either way (a fused pass is pinned to per-class execution by the
	// fuse-diff harness); the switch exists for benchmarking and for the
	// differential tests that prove it. Fusion requires the IR engine, so
	// DisableIR implies it.
	DisableFusion bool
	// ResultStore, when set, makes every scan incremental: cleanly completed
	// (file, class) tasks are persisted keyed by closure fingerprint, and
	// later scans reuse stored results for tasks whose fingerprints match.
	// Reports are byte-identical to a full scan (Stats aside, which account
	// reuse). AnalyzeContextStore overrides it per call.
	ResultStore *resultstore.Store
	// WeaponSetRevision is the hot-reload registry revision this engine's
	// weapon set was derived from (0 when weapons are fixed for the process
	// lifetime). It is folded into the config digest, so every weapon
	// add/remove rotates all closure fingerprints: a scan after a swap can
	// never splice findings cached under a previous weapon set — even if a
	// removed weapon is later re-added with identical content, the revision
	// keeps the fingerprint spaces distinct.
	WeaponSetRevision int64
}

// DefaultTaskBudget is the per-task AST-step budget applied when
// Options.TaskBudget is zero. Typical files spend well under 10^5 steps;
// only pathological inputs (exponential loop nesting, huge generated files)
// come near it.
const DefaultTaskBudget = 5 << 20

// DefaultRetryBackoff is the base retry-ladder backoff applied when
// Options.RetryBackoff is zero.
const DefaultRetryBackoff = 50 * time.Millisecond

const (
	// minRetryBudget floors the shrinking retry budget so a retried task
	// can still make progress before degrading conservatively.
	minRetryBudget = 4096
	// maxRetryBackoff caps the exponential backoff between attempts.
	maxRetryBackoff = 2 * time.Second
)

// Finding is one analyzed candidate vulnerability.
type Finding struct {
	Candidate *taint.Candidate
	// Symptoms is the extracted symptom set.
	Symptoms map[string]bool
	// PredictedFP reports the ensemble's decision: true = false positive.
	PredictedFP bool
	// Votes are the per-classifier decisions (SVM, LR, RF order for WAPe).
	Votes []bool
	// Weapon is set when a weapon's detector produced the candidate.
	Weapon string
}

// Report is the result of analyzing a project.
type Report struct {
	Project *Project
	Mode    Mode
	// Findings holds every candidate with its FP prediction.
	Findings []*Finding
	// StoredLinks pairs tainted database writes with stored-XSS reads of
	// the same table (end-to-end stored XSS evidence).
	StoredLinks []taint.StoredLink
	// Diagnostics records everything the scan could not analyze: panicking
	// or timed-out tasks, exhausted step budgets, degraded parses and files
	// skipped at load time. Findings are complete and sound for everything
	// NOT listed here; an empty slice means full coverage.
	Diagnostics []Diagnostic
	// Stats is the scan's performance account: tasks executed and skipped,
	// AST steps, shared-cache traffic and per-class wall time. It describes
	// the work performed, never the findings (which are cache-independent),
	// and is schedule-dependent, so comparisons should exclude it.
	Stats *ScanStats
	// Duration is the analysis wall time.
	Duration time.Duration

	// vulns memoizes Vulnerabilities(): renderers call the filter many
	// times (counts, per-file grouping, tables) and findings are immutable
	// once the report is built.
	vulnOnce sync.Once
	vulns    []*Finding
}

// Degraded reports whether any part of the input escaped analysis; the
// findings are then a sound partial result rather than full coverage.
// Informational diagnostics (retry-ladder recoveries) do not count: the
// recovered task's findings are in the report.
func (r *Report) Degraded() bool {
	for _, d := range r.Diagnostics {
		if !d.Kind.Informational() {
			return true
		}
	}
	return false
}

// DiagnosticsByKind tallies diagnostics per kind.
func (r *Report) DiagnosticsByKind() map[DiagKind]int {
	out := make(map[DiagKind]int)
	for _, d := range r.Diagnostics {
		out[d.Kind]++
	}
	return out
}

// Vulnerabilities returns findings predicted to be real vulnerabilities.
// The subset is computed once and reused; callers must not mutate the
// returned slice or flip PredictedFP after rendering starts.
func (r *Report) Vulnerabilities() []*Finding {
	r.vulnOnce.Do(func() {
		for _, f := range r.Findings {
			if !f.PredictedFP {
				r.vulns = append(r.vulns, f)
			}
		}
	})
	return r.vulns
}

// FalsePositives returns findings predicted to be false positives.
func (r *Report) FalsePositives() []*Finding {
	var out []*Finding
	for _, f := range r.Findings {
		if f.PredictedFP {
			out = append(out, f)
		}
	}
	return out
}

// CountByClass tallies non-FP findings per class.
func (r *Report) CountByClass() map[vuln.ClassID]int {
	out := make(map[vuln.ClassID]int)
	for _, f := range r.Vulnerabilities() {
		out[f.Candidate.Class]++
	}
	return out
}

// VulnerableFiles returns the distinct files with non-FP findings.
func (r *Report) VulnerableFiles() []string {
	seen := make(map[string]bool)
	for _, f := range r.Vulnerabilities() {
		seen[f.Candidate.File] = true
	}
	out := make([]string, 0, len(seen))
	for f := range seen {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// Engine is a configured WAP instance. After Train, every field except the
// circuit breakers is read-only, so one engine safely serves concurrent
// AnalyzeContext calls (the scan service relies on this); the breakers are
// internally locked and deliberately shared across scans.
type Engine struct {
	opts      Options
	classes   []*vuln.Class
	weapons   map[vuln.ClassID]*weapon.Weapon
	extractor *symptom.Extractor
	ensemble  *ml.Ensemble
	corrector *corrector.Corrector
	trained   bool
	breakers  *classBreakers

	// digestOnce memoizes configDigest: the digest hashes only immutable
	// post-New state (options, classes, weapons), so computing it once per
	// engine is safe even across concurrent scans.
	digestOnce sync.Once
	digestVal  string

	// reuseCache holds, per project name, the decoded findings of the last
	// persisted snapshot, so an in-process warm rescan skips re-decoding
	// store entries. Generations are replaced wholesale (copy-on-write):
	// readers keep the map reference they grabbed at plan time.
	reuseMu    sync.Mutex
	reuseCache map[string]map[string]*decodedTask
}

// BreakerSnapshot reports each class breaker's current state for health
// endpoints. It returns nil when breakers are disabled, and only classes
// that have executed at least one task appear.
func (e *Engine) BreakerSnapshot() map[vuln.ClassID]BreakerStatus {
	if e.breakers == nil {
		return nil
	}
	return e.breakers.snapshot()
}

// New builds an engine. Classifiers are trained lazily on first use (or via
// Train).
func New(opts Options) (*Engine, error) {
	if opts.Mode == 0 {
		opts.Mode = ModeWAPe
	}
	e := &Engine{opts: opts, weapons: make(map[vuln.ClassID]*weapon.Weapon)}
	if opts.BreakerThreshold > 0 {
		e.breakers = newClassBreakers(opts.BreakerThreshold, opts.BreakerCooldown)
	}

	// Resolve the class set.
	var classSet []*vuln.Class
	switch {
	case opts.Classes != nil:
		for _, id := range opts.Classes {
			c := vuln.Get(id)
			if c == nil {
				return nil, fmt.Errorf("core: unknown vulnerability class %q", id)
			}
			classSet = append(classSet, c)
		}
	case opts.Mode == ModeOriginal:
		classSet = vuln.Original()
	default:
		classSet = vuln.WAPe()
	}

	var dynamics []symptom.Dynamic
	if opts.Mode == ModeWAPe {
		// Weapon class IDs must not collide: a second weapon with the same
		// ID, or a weapon shadowing a bundled non-weapon class, would be
		// silently dropped by dedupeClasses while its fix and dynamics still
		// registered — reports would be ambiguous about which detector ran.
		// Bundled classes marked Weapon (nosqli, hi, ei, wpsqli) are the
		// documented exception: the builtin specs regenerate them, and the
		// registry definition wins.
		bundled := make(map[vuln.ClassID]*vuln.Class, len(classSet))
		for _, c := range classSet {
			bundled[c.ID] = c
		}
		for _, w := range opts.Weapons {
			if _, dup := e.weapons[w.Class.ID]; dup {
				return nil, fmt.Errorf("core: duplicate weapon %q", w.Class.ID)
			}
			if c := bundled[w.Class.ID]; c != nil && !c.Weapon {
				return nil, fmt.Errorf("core: weapon %q collides with the bundled %s class; rename the weapon", w.Class.ID, c.Name)
			}
			e.weapons[w.Class.ID] = w
			classSet = append(classSet, w.Class)
			dynamics = append(dynamics, w.Dynamics...)
		}
	} else if len(opts.Weapons) > 0 {
		return nil, fmt.Errorf("core: weapons require ModeWAPe")
	}
	e.classes = dedupeClasses(classSet)
	e.extractor = symptom.NewExtractor(dynamics)

	// Assemble the corrector: library fixes plus weapon fixes.
	e.corrector = corrector.New()
	for _, w := range opts.Weapons {
		e.corrector.Register(w.Fix)
	}

	// Assemble the (untrained) ensemble.
	if opts.Mode == ModeOriginal {
		e.ensemble = ml.NewOriginalTop3(symptom.NumOriginalAttributes, opts.Seed)
	} else {
		e.ensemble = ml.NewTop3(opts.Seed)
	}
	return e, nil
}

func dedupeClasses(in []*vuln.Class) []*vuln.Class {
	seen := make(map[vuln.ClassID]bool, len(in))
	out := make([]*vuln.Class, 0, len(in))
	for _, c := range in {
		if seen[c.ID] {
			continue
		}
		seen[c.ID] = true
		out = append(out, c)
	}
	return out
}

// Classes returns the engine's active class set.
func (e *Engine) Classes() []*vuln.Class {
	return append([]*vuln.Class(nil), e.classes...)
}

// Train fits the false positive predictor on the mode's training set (or a
// user-provided ARFF file).
func (e *Engine) Train() error {
	var d *ml.Dataset
	if e.opts.TrainARFF != "" {
		f, err := os.Open(e.opts.TrainARFF)
		if err != nil {
			return fmt.Errorf("core: open training set: %w", err)
		}
		defer f.Close()
		d, err = dataset.ReadARFF(f)
		if err != nil {
			return fmt.Errorf("core: %w", err)
		}
		want := symptom.NumNewAttributes
		if e.opts.Mode == ModeOriginal {
			want = symptom.NumOriginalAttributes
		}
		if d.NumFeatures() != want {
			return fmt.Errorf("core: training set has %d attributes, %s needs %d",
				d.NumFeatures(), e.opts.Mode, want)
		}
	} else {
		d = dataset.Generate(dataset.Config{
			Seed:     e.opts.Seed,
			Original: e.opts.Mode == ModeOriginal,
			Size:     e.opts.TrainSize,
		})
	}
	if err := e.ensemble.Train(d); err != nil {
		return fmt.Errorf("core: train predictor: %w", err)
	}
	e.trained = true
	return nil
}

// Analyze runs the full pipeline over a project: taint detection for every
// active class, then false positive prediction for every candidate. It is
// AnalyzeContext with a background context.
func (e *Engine) Analyze(p *Project) (*Report, error) {
	return e.AnalyzeContext(context.Background(), p)
}

// task is one unit of fault isolation: taint analysis + FP prediction for a
// single (file, class) pair.
type task struct {
	file *SourceFile
	cls  *vuln.Class
}

// taskOutcome is what one task hands back to its worker.
type taskOutcome struct {
	findings  []*Finding
	exhausted bool // step budget ran out; findings are a sound prefix
	stopped   bool // cut off by the cooperative stop flag
	panicVal  string
	stack     string

	// Scan accounting and shared-cache produce. pending is committed by the
	// worker only when the task completed cleanly (none of the flags above),
	// so a faulting task can never poison the cache.
	steps       int
	cacheHits   int
	cacheMisses int
	// transfers counts summary transfer-function applications (memoized or
	// shared summaries applied at a call edge instead of re-running the
	// callee body). Always zero on the legacy walker path.
	transfers int
	pending   []taint.PendingSummary
}

// AnalyzeContext runs the full pipeline under a context, in three stages:
// plan (enumerate tasks; with a result store attached, satisfy closure-
// fingerprint hits from the previous snapshot), execute (run the misses) and
// merge (splice results, link stored XSS, persist the new snapshot). Fault
// isolation in the execute stage:
//
//   - every (file, class) task runs with panic recovery — a bug in the
//     parser or taint engine costs that task only and is recorded as a
//     panic diagnostic;
//   - Options.TaskTimeout bounds each task's wall time via a watchdog; a
//     stalled task is abandoned and recorded as a timeout diagnostic;
//   - Options.TaskBudget bounds each task's AST-step count; a runaway walk
//     degrades to conservative propagation and is recorded as a
//     budget-exhausted diagnostic;
//   - ctx cancellation stops the scan between tasks (and interrupts running
//     tasks cooperatively); AnalyzeContext then returns the partial report
//     alongside ctx's error;
//   - Options.RetryMax arms the retry ladder: a faulted task is re-run with
//     exponentially shrinking budgets and jittered backoff before any of
//     the above becomes terminal, and a recovery is recorded as an
//     informational retried diagnostic;
//   - Options.BreakerThreshold arms per-class circuit breakers (engine-
//     scoped, shared across scans): a persistently faulting class is
//     skipped with breaker-open diagnostics until its cool-down probe
//     succeeds, so one pathological class cannot consume the worker pool.
//     Tasks satisfied from the result store never consult the breakers —
//     nothing executes for them.
//
// The report is complete and deterministic for everything not listed in its
// Diagnostics, regardless of Parallelism, and — Stats and Duration aside —
// byte-identical whether its tasks executed or were reused.
func (e *Engine) AnalyzeContext(ctx context.Context, p *Project) (*Report, error) {
	return e.AnalyzeContextStore(ctx, p, e.opts.ResultStore)
}

// AnalyzeContextStore is AnalyzeContext against an explicit result store;
// nil runs a full scan with no persistence. Store faults never fail the
// scan: an unreadable or invalidated snapshot means a full re-execute, and a
// failed save costs only the next scan's warm start.
func (e *Engine) AnalyzeContextStore(ctx context.Context, p *Project, store *resultstore.Store) (*Report, error) {
	return e.AnalyzeScan(ctx, p, ScanOpts{Store: store})
}

// ScanOpts carries the per-scan durability knobs AnalyzeScan accepts beyond
// the engine's own options.
type ScanOpts struct {
	// Store is the result store for this scan; nil means full scan, no
	// persistence.
	Store *resultstore.Store
	// CheckpointEvery, with a store attached, persists a partial snapshot
	// after every N dispositioned execution tasks, so a scan killed mid-way
	// resumes with those tasks warm instead of losing everything since the
	// last complete scan. 0 disables mid-scan checkpoints (the final
	// persist on scan completion is unaffected). Checkpoints trade save
	// I/O for crash warmth and never affect findings: a lost or partial
	// snapshot only costs re-execution.
	CheckpointEvery int
	// OnCheckpoint, when set, runs after each successful checkpoint save
	// with the dispositioned and total execution-task counts. The scan
	// service journals a task-checkpoint record here. Called from a worker
	// goroutine, serialized by the checkpointer's lock.
	OnCheckpoint func(done, total int)
	// Resumes is how many crashed attempts of this same job preceded this
	// scan; it flows into Stats for the durability account.
	Resumes int
}

// AnalyzeScan is AnalyzeContext with explicit scan options; the durable job
// path uses it to attach mid-scan checkpointing.
func (e *Engine) AnalyzeScan(ctx context.Context, p *Project, so ScanOpts) (*Report, error) {
	if !e.trained {
		if err := e.Train(); err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	rep := &Report{Project: p, Mode: e.opts.Mode}
	// Load-time and parse-time degradation is part of the scan's account.
	rep.Diagnostics = append(rep.Diagnostics, p.Diagnostics...)

	stats := newStatsCollector()
	if so.Resumes > 0 {
		stats.recordResumes(so.Resumes)
	}
	plan := e.planScan(ctx, p, so.Store, stats)
	if q := plan.loadInfo.Quarantined; q != "" {
		stats.recordStoreQuarantined()
		rep.Diagnostics = append(rep.Diagnostics, Diagnostic{
			Kind: DiagStoreQuarantined,
			Message: fmt.Sprintf("result store snapshot unreadable (%s); moved to %s for diagnosis; all tasks re-executed",
				plan.status, q),
		})
	}
	if n := plan.loadInfo.Salvaged; n > 0 {
		stats.recordStoreSalvaged(n)
		rep.Diagnostics = append(rep.Diagnostics, Diagnostic{
			Kind: DiagStoreQuarantined,
			Message: fmt.Sprintf("result store snapshot salvaged: %d undecodable task entr%s dropped and re-executed",
				n, plural(n, "y", "ies")),
		})
	}
	exec := e.executePlan(ctx, p, plan, stats, so)
	return e.mergeScan(ctx, plan, exec, stats, rep, start)
}

// execState is the execute stage's output. results/clean/steps are aligned
// with plan.tasks; slots of reused tasks stay zero (the merge stage splices
// plan.reused over them).
type execState struct {
	results [][]*Finding
	// clean marks tasks that completed cleanly on their first attempt — the
	// only tasks persistSnapshot may store. A recovery on a later ladder
	// attempt is deliberately excluded: a task that needed retries faulted
	// under this exact input, so it re-executes next scan too.
	clean []bool
	// steps is the AST-step count of task i's clean first attempt, persisted
	// so later scans can account the work a reuse saves.
	steps     []int
	taskDiags []Diagnostic
	// executed/completed count execution-queue tasks only (reused tasks are
	// never incomplete), for the cancellation diagnostic's accounting.
	executed  int
	completed int64
	shared    *taint.SharedSummaries
}

// executePlan runs the plan's execution queue through the worker pool and
// fault-isolation machinery.
func (e *Engine) executePlan(ctx context.Context, p *Project, plan *scanPlan, stats *statsCollector, so ScanOpts) *execState {
	exec := &execState{
		results:  make([][]*Finding, len(plan.tasks)),
		clean:    make([]bool, len(plan.tasks)),
		steps:    make([]int, len(plan.tasks)),
		executed: len(plan.execIdx),
	}
	ck := newCheckpointer(p, plan, so, stats)
	if !e.opts.DisableSummaryCache {
		exec.shared = taint.NewSharedSummaries()
	}
	shared := exec.shared
	tasks := plan.tasks
	results := exec.results
	budget := e.effectiveBudget()

	var (
		diagMu    sync.Mutex
		taskDiags []Diagnostic
		nextIdx   atomic.Int64
		completed atomic.Int64
	)
	addDiag := func(d Diagnostic) {
		diagMu.Lock()
		taskDiags = append(taskDiags, d)
		diagMu.Unlock()
	}

	// runAttempt executes one attempt of a task in its own goroutine so a
	// panic is contained, a watchdog can abandon it, and an abandoned
	// attempt keeps no reference to shared state (it reports through a
	// buffered channel it owns). timedOut means the watchdog cut it off;
	// interrupted means the scan context died mid-attempt.
	runAttempt := func(t task, attemptBudget int) (out taskOutcome, elapsed time.Duration, timedOut, interrupted bool) {
		stop := new(atomic.Bool)
		taskStart := time.Now()
		outc := make(chan taskOutcome, 1)
		go func() {
			defer func() {
				if r := recover(); r != nil {
					outc <- taskOutcome{panicVal: fmt.Sprint(r), stack: string(debug.Stack())}
				}
			}()
			outc <- e.runTask(t, p, stop, attemptBudget, shared)
		}()

		var timeoutC <-chan time.Time
		if e.opts.TaskTimeout > 0 {
			timer := time.NewTimer(e.opts.TaskTimeout)
			defer timer.Stop()
			timeoutC = timer.C
		}
		select {
		case out = <-outc:
			return out, time.Since(taskStart), false, false
		case <-timeoutC:
			// Signal the cooperative stop and abandon the goroutine; it
			// reports into its buffered channel and exits on its own. Its
			// findings are discarded.
			stop.Store(true)
			return taskOutcome{}, time.Since(taskStart), true, false
		case <-ctx.Done():
			stop.Store(true)
			return taskOutcome{}, time.Since(taskStart), false, true
		}
	}

	// execTask dispositions task i through the retry ladder: a faulted
	// attempt (panic, watchdog timeout, budget exhaustion) is retried up to
	// Options.RetryMax times with halving budgets and jittered backoff, so
	// a transient stall costs a retry instead of the task's findings. A
	// task that stays faulted through the ladder is terminal: it gets one
	// diagnostic (carrying its retry count) and charges the class's circuit
	// breaker.
	execTask := func(i int) {
		t := tasks[i]
		probe := false
		if e.breakers != nil {
			var ok bool
			ok, probe = e.breakers.allow(t.cls.ID)
			if !ok {
				// Dispositioned without running: the class is tripped open.
				completed.Add(1)
				ck.taskDone(i, nil, 0, false)
				stats.recordBreakerSkip(t.cls.ID)
				addDiag(Diagnostic{
					File: t.file.Path, Class: t.cls.ID, Kind: DiagBreakerOpen,
					Message: fmt.Sprintf("class circuit breaker open after repeated faults; task skipped (cool-down %v)", e.breakers.cooldown),
				})
				return
			}
		}
		var (
			attemptBudget = budget
			totalStart    = time.Now()
			lastFault     DiagKind
			// bestPartial keeps the sound-prefix findings of the deepest
			// budget-exhausted attempt, so a terminal ladder still reports
			// what the largest budget could prove.
			bestPartial []*Finding
		)
		for attempt := 0; ; attempt++ {
			out, elapsed, timedOut, interrupted := runAttempt(t, attemptBudget)
			if interrupted {
				// Scan-level cancellation: the task stays undispositioned
				// (the scan-level diagnostic accounts for it) and an unused
				// probe slot is handed back for the next scan.
				if e.breakers != nil {
					e.breakers.releaseProbe(t.cls.ID, probe)
				}
				return
			}
			if out.stopped {
				// Cooperative stop observed inside the walker: treated as
				// cancellation, never retried, never charged to the breaker.
				completed.Add(1)
				stats.recordTask(t.cls.ID, out, elapsed)
				addDiag(Diagnostic{
					File: t.file.Path, Class: t.cls.ID, Kind: DiagTimeout,
					Message: "analysis interrupted by cancellation", Elapsed: elapsed,
					Retries: attempt,
				})
				results[i] = out.findings
				if e.breakers != nil {
					e.breakers.releaseProbe(t.cls.ID, probe)
				}
				return
			}

			var fault DiagKind
			var msg string
			switch {
			case timedOut:
				fault = DiagTimeout
				msg = fmt.Sprintf("task exceeded deadline %v", e.opts.TaskTimeout)
			case out.panicVal != "":
				fault = DiagPanic
				msg = "analysis panicked: " + out.panicVal
			case out.exhausted:
				fault = DiagBudget
				msg = fmt.Sprintf("AST-step budget of %d exhausted; taint walk degraded to conservative propagation", attemptBudget)
				if bestPartial == nil {
					bestPartial = out.findings // first attempt has the largest budget
				}
			}

			if fault == "" {
				// Clean completion: publish findings and summaries, close
				// the breaker, and note the recovery when retries were spent.
				completed.Add(1)
				stats.recordTask(t.cls.ID, out, elapsed)
				shared.Commit(out.pending)
				results[i] = out.findings
				if attempt == 0 {
					// First-attempt completions are the only persistable
					// outcome: see execState.clean.
					exec.clean[i] = true
					exec.steps[i] = out.steps
					ck.taskDone(i, out.findings, out.steps, true)
				} else {
					ck.taskDone(i, nil, 0, false)
				}
				if e.breakers != nil {
					e.breakers.recordSuccess(t.cls.ID, probe)
				}
				if attempt > 0 {
					stats.recordRecovered(t.cls.ID)
					addDiag(Diagnostic{
						File: t.file.Path, Class: t.cls.ID, Kind: DiagRetried,
						Message: fmt.Sprintf("recovered by retry ladder after %d retr%s (last fault: %s)",
							attempt, plural(attempt, "y", "ies"), lastFault),
						Elapsed: time.Since(totalStart), Retries: attempt,
					})
				}
				return
			}

			if attempt >= e.opts.RetryMax {
				// Terminal fault.
				completed.Add(1)
				ck.taskDone(i, nil, 0, false)
				if !timedOut {
					// An abandoned attempt has no outcome to account.
					stats.recordTask(t.cls.ID, out, elapsed)
				}
				addDiag(Diagnostic{
					File: t.file.Path, Class: t.cls.ID, Kind: fault,
					Message: msg, Stack: out.stack, Elapsed: elapsed,
					Retries: attempt,
				})
				results[i] = bestPartial
				if e.breakers != nil {
					e.breakers.recordFault(t.cls.ID, probe)
				}
				return
			}

			lastFault = fault
			stats.recordRetry(t.cls.ID)
			attemptBudget = shrinkBudget(attemptBudget)
			if !sleepBackoff(ctx, e.retryBackoff(attempt)) {
				// Cancelled during backoff: same disposition as interrupted.
				if e.breakers != nil {
					e.breakers.releaseProbe(t.cls.ID, probe)
				}
				return
			}
		}
	}

	// execGroup dispositions one fused group: every runnable class lane of a
	// file evaluated in a single multi-class IR pass. Lanes whose breaker is
	// open are dispositioned here exactly as execTask would; a clean fused
	// pass gives each surviving lane execTask's first-attempt-completion
	// disposition; any fault inside the pass (panic, watchdog deadline, a
	// lane's step budget) demotes every lane to the unfused per-class ladder,
	// which owns fault isolation, retries and breaker attribution from there.
	execGroup := func(idxs []int) {
		if len(idxs) == 1 {
			execTask(idxs[0])
			return
		}
		type lane struct {
			idx   int
			probe bool
		}
		lanes := make([]lane, 0, len(idxs))
		for _, i := range idxs {
			t := tasks[i]
			if e.breakers != nil {
				ok, probe := e.breakers.allow(t.cls.ID)
				if !ok {
					completed.Add(1)
					ck.taskDone(i, nil, 0, false)
					stats.recordBreakerSkip(t.cls.ID)
					addDiag(Diagnostic{
						File: t.file.Path, Class: t.cls.ID, Kind: DiagBreakerOpen,
						Message: fmt.Sprintf("class circuit breaker open after repeated faults; task skipped (cool-down %v)", e.breakers.cooldown),
					})
					continue
				}
				lanes = append(lanes, lane{i, probe})
			} else {
				lanes = append(lanes, lane{i, false})
			}
		}
		releaseProbes := func() {
			if e.breakers == nil {
				return
			}
			for _, l := range lanes {
				e.breakers.releaseProbe(tasks[l.idx].cls.ID, l.probe)
			}
		}
		if len(lanes) < 2 {
			// Not enough survivors to fuse. The probe slot is handed back
			// first: the unfused path re-runs its own breaker admission.
			releaseProbes()
			for _, l := range lanes {
				execTask(l.idx)
			}
			return
		}

		ts := make([]task, len(lanes))
		for k, l := range lanes {
			ts[k] = tasks[l.idx]
		}
		// The fused attempt runs in its own goroutine under the same
		// containment as runAttempt: a panic is recovered there, the
		// watchdog can abandon it, and an abandoned attempt reports into a
		// buffered channel it owns.
		type fusedResult struct {
			outs []taskOutcome
			ok   bool
		}
		stop := new(atomic.Bool)
		groupStart := time.Now()
		outc := make(chan fusedResult, 1)
		go func() {
			defer func() {
				if r := recover(); r != nil {
					outc <- fusedResult{}
				}
			}()
			outs, ok := e.runFusedTasks(ts, p, stop, budget, shared)
			outc <- fusedResult{outs: outs, ok: ok}
		}()
		var timeoutC <-chan time.Time
		if e.opts.TaskTimeout > 0 {
			timer := time.NewTimer(e.opts.TaskTimeout)
			defer timer.Stop()
			timeoutC = timer.C
		}
		var res fusedResult
		select {
		case res = <-outc:
		case <-timeoutC:
			stop.Store(true)
		case <-ctx.Done():
			// Scan-level cancellation: the group stays undispositioned (the
			// scan-level diagnostic accounts for it) and unused probe slots
			// are handed back, like an interrupted unfused attempt.
			stop.Store(true)
			releaseProbes()
			return
		}
		if !res.ok {
			// Fault inside the fused pass. Per-lane dispositions, findings,
			// diagnostics and breaker charges all come from the unfused
			// reruns; the fused attempt leaves no trace beyond the demotion
			// counter.
			stats.recordFusedDemotion(len(lanes))
			releaseProbes()
			for _, l := range lanes {
				if ctx.Err() != nil {
					return
				}
				execTask(l.idx)
			}
			return
		}
		// Clean fused pass: each lane gets execTask's first-attempt
		// completion disposition. The group's wall time is split evenly
		// across lanes (per-class wall is schedule-dependent accounting
		// either way).
		wall := time.Since(groupStart) / time.Duration(len(lanes))
		stats.recordFusedPass(len(lanes))
		for k, l := range lanes {
			i, out := l.idx, res.outs[k]
			t := tasks[i]
			completed.Add(1)
			stats.recordTask(t.cls.ID, out, wall)
			shared.Commit(out.pending)
			results[i] = out.findings
			exec.clean[i] = true
			exec.steps[i] = out.steps
			ck.taskDone(i, out.findings, out.steps, true)
			if e.breakers != nil {
				e.breakers.recordSuccess(t.cls.ID, l.probe)
			}
		}
	}

	// Fused scheduling claims file groups (planScan emits the execution
	// queue file-major, so a group is a consecutive run of queue entries);
	// unfused scheduling claims individual queue positions.
	useFusion := !e.opts.DisableFusion && !e.opts.DisableIR
	var groups [][]int
	nUnits := len(plan.execIdx)
	if useFusion {
		groups = fuseGroups(plan)
		nUnits = len(groups)
	}
	workers := e.opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if workers > 8 {
			workers = 8
		}
	}
	if workers > nUnits && nUnits > 0 {
		workers = nUnits
	}
	// Workers claim execution-queue positions from an atomic counter (not an
	// unbuffered feed channel), so there is no send loop that cancellation
	// could leave blocked, and task order — hence output order — stays
	// deterministic.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				n := int(nextIdx.Add(1)) - 1
				if n >= nUnits {
					return
				}
				if useFusion {
					execGroup(groups[n])
				} else {
					execTask(plan.execIdx[n])
				}
			}
		}()
	}
	wg.Wait()

	exec.taskDiags = taskDiags
	exec.completed = completed.Load()
	return exec
}

// mergeScan assembles the report: execute-stage diagnostics and statistics,
// reused results spliced over their grid slots, findings flattened in grid
// order, stored-XSS links recomputed over the combined findings, and — on a
// complete scan with a store attached — the new snapshot persisted.
func (e *Engine) mergeScan(ctx context.Context, plan *scanPlan, exec *execState, stats *statsCollector, rep *Report, start time.Time) (*Report, error) {
	sortDiagnostics(exec.taskDiags)
	rep.Diagnostics = append(rep.Diagnostics, exec.taskDiags...)
	var irc *ir.Cache
	if !e.opts.DisableIR && rep.Project != nil {
		irc = rep.Project.IRCache()
	}
	rep.Stats = stats.snapshot(exec.shared.Len(), irc)
	if rep.Project != nil {
		rep.Stats.ParseWall = rep.Project.LoadStats.ParseWall
		rep.Stats.LoadWorkers = rep.Project.LoadStats.Workers
	}
	if len(e.weapons) > 0 {
		for _, id := range e.WeaponIDs() {
			rep.Stats.ActiveWeapons = append(rep.Stats.ActiveWeapons, string(id))
			if cs := rep.Stats.ByClass[id]; cs != nil {
				cs.Weapon = true
			}
		}
		rep.Stats.WeaponSetRevision = e.opts.WeaponSetRevision
	}
	for i, ok := range plan.reusedOK {
		if ok {
			exec.results[i] = plan.reused[i]
		}
	}
	if err := ctx.Err(); err != nil {
		rep.Diagnostics = append(rep.Diagnostics, Diagnostic{
			Kind: DiagTimeout,
			Message: fmt.Sprintf("scan cancelled (%v) with %d of %d tasks incomplete; findings below are the completed subset",
				err, int64(exec.executed)-exec.completed, exec.executed),
			Elapsed: time.Since(start),
		})
		for _, fs := range exec.results {
			rep.Findings = append(rep.Findings, fs...)
		}
		// The completed subset can still contain matching write/read pairs;
		// a partial report links them like a full one would. Nothing is
		// persisted: a snapshot from a cancelled scan would drop every
		// unfinished task's entry, erasing a prior warm state for no gain.
		rep.linkStoredXSS()
		if plan.store != nil {
			rep.Stats.Backend = plan.store.BackendState()
		}
		rep.Duration = time.Since(start)
		return rep, err
	}

	for _, fs := range exec.results {
		rep.Findings = append(rep.Findings, fs...)
	}
	rep.linkStoredXSS()
	e.persistSnapshot(ctx, rep.Project, plan, exec)
	if plan.store != nil {
		rep.Stats.Backend = plan.store.BackendState()
	}
	rep.Duration = time.Since(start)
	return rep, nil
}

// shrinkBudget halves the AST-step budget for the next retry attempt, so a
// retried task fails faster (and degrades to conservative propagation
// sooner) than the attempt that faulted. An unlimited budget (0) retries
// bounded at the default.
func shrinkBudget(b int) int {
	if b <= 0 {
		return DefaultTaskBudget
	}
	b /= 2
	if b < minRetryBudget {
		b = minRetryBudget
	}
	return b
}

// retryBackoff computes the jittered exponential backoff before retry
// attempt+1. The ±50% jitter keeps simultaneously faulting tasks from
// retrying in lock-step.
func (e *Engine) retryBackoff(attempt int) time.Duration {
	base := e.opts.RetryBackoff
	if base < 0 {
		return 0
	}
	if base == 0 {
		base = DefaultRetryBackoff
	}
	d := base << attempt
	if d > maxRetryBackoff || d <= 0 {
		d = maxRetryBackoff
	}
	return d/2 + time.Duration(rand.Int63n(int64(d)+1))
}

// sleepBackoff waits d, returning false when ctx dies first.
func sleepBackoff(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// runTask performs one (file, class) analysis. It runs inside the task's
// goroutine: everything it touches besides the engine's read-only state is
// task-local, so an abandoned (timed-out) invocation cannot race a live
// scan.
func (e *Engine) runTask(t task, p *Project, stop *atomic.Bool, budget int, shared *taint.SharedSummaries) taskOutcome {
	if e.opts.TaskHook != nil {
		e.opts.TaskHook(t.file.Path, t.cls.ID)
	}
	// The tool's own fix for the class counts as a sanitizer so corrected
	// code is not re-flagged.
	sans := append([]string(nil), e.opts.ExtraSanitizers...)
	if fixID := e.fixIDFor(t.cls); fixID != "" {
		sans = append(sans, fixID)
	}
	sans = append(sans, e.opts.ClassSanitizers[t.cls.ID]...)
	an := taint.New(taint.Config{
		Class:            t.cls,
		Resolver:         p,
		ExtraSanitizers:  sans,
		ExtraEntryPoints: e.opts.ExtraEntryPoints,
		ExtraSinks:       e.opts.ClassSinks[t.cls.ID],
		MaxSteps:         budget,
		Stop:             stop,
		Shared:           shared,
	})
	var cands []*taint.Candidate
	if e.opts.DisableIR {
		cands = an.File(t.file.AST)
	} else {
		// The lowered form is built once per file by the scan-scoped cache
		// and shared read-only across every weapon-class task.
		cache := p.IRCache()
		cands = an.FileIR(t.file.AST, cache.File(t.file.AST), cache)
	}
	var out taskOutcome
	for _, cand := range cands {
		f := &Finding{Candidate: cand}
		if w, ok := e.weapons[cand.Class]; ok {
			f.Weapon = string(w.Class.ID)
		}
		f.Symptoms = e.extractor.Extract(cand, t.file.AST)
		f.PredictedFP, f.Votes = e.predict(f.Symptoms)
		out.findings = append(out.findings, f)
	}
	out.exhausted = an.Exhausted()
	out.stopped = an.Stopped()
	out.steps = an.Steps()
	out.cacheHits = an.SharedHits()
	out.cacheMisses = an.SharedMisses()
	out.transfers = an.TransferHits()
	out.pending = an.PendingShared()
	return out
}

// linkStoredXSS runs the two-phase stored-XSS linker over the report's
// confirmed findings: tainted write queries paired with stored-XSS reads of
// the same table.
func (rep *Report) linkStoredXSS() {
	var writes, reads []*taint.Candidate
	for _, f := range rep.Findings {
		if f.PredictedFP {
			continue
		}
		switch f.Candidate.Class {
		case vuln.SQLI, vuln.WPSQLI:
			if taint.IsWriteQuery(f.Candidate) {
				writes = append(writes, f.Candidate)
			}
		case vuln.XSSS:
			reads = append(reads, f.Candidate)
		}
	}
	if len(writes) == 0 || len(reads) == 0 {
		return
	}
	files := make(map[string]*ast.File, len(rep.Project.Files))
	for _, sf := range rep.Project.Files {
		files[sf.Path] = sf.AST
	}
	rep.StoredLinks = taint.LinkStoredXSS(writes, reads, files)
}

// fixIDFor returns the fix function name used for the class (weapon fix
// when the class came from a weapon).
func (e *Engine) fixIDFor(cls *vuln.Class) string {
	if w, ok := e.weapons[cls.ID]; ok {
		return w.Fix.ID
	}
	return cls.FixID
}

// predict classifies a symptom set, returning the decision and the votes.
func (e *Engine) predict(symptoms map[string]bool) (bool, []bool) {
	var vec symptom.Vector
	if e.opts.Mode == ModeOriginal {
		vec = symptom.OriginalVectorFromSet(symptoms, false)
	} else {
		vec = symptom.NewVectorFromSet(symptoms, false)
	}
	inst := ml.NewInstance(vec.Attrs, false)
	// One pass over the members: the majority decision is a fold over the
	// same votes the explanation output records, so classifying twice (once
	// for Predict, once for Votes) would walk every forest tree twice.
	votes := e.ensemble.Votes(inst.Features)
	n := 0
	for _, v := range votes {
		if v {
			n++
		}
	}
	return n*2 > len(votes), votes
}

// FixProject applies the code corrector to every real (non-FP)
// vulnerability, returning corrected sources by path.
func (e *Engine) FixProject(rep *Report) (map[string]string, map[string][]corrector.Correction, error) {
	byFile := make(map[string][]*taint.Candidate)
	for _, f := range rep.Vulnerabilities() {
		byFile[f.Candidate.File] = append(byFile[f.Candidate.File], f.Candidate)
	}
	fixed := make(map[string]string, len(byFile))
	applied := make(map[string][]corrector.Correction, len(byFile))
	for path, cands := range byFile {
		sf := rep.Project.File(path)
		if sf == nil {
			return nil, nil, fmt.Errorf("core: fix: file %q not in project", path)
		}
		out, corrs, err := e.corrector.Apply(sf.Src, cands, func(c *taint.Candidate) string {
			if w, ok := e.weapons[c.Class]; ok {
				return w.Fix.ID
			}
			if cls := vuln.Get(c.Class); cls != nil {
				return cls.FixID
			}
			return ""
		})
		if err != nil {
			return nil, nil, fmt.Errorf("core: fix %s: %w", path, err)
		}
		fixed[path] = out
		applied[path] = corrs
	}
	return fixed, applied, nil
}
