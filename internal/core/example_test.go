package core_test

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/report"
)

// ExampleEngine_Analyze shows the minimal detection pipeline: build an
// engine, train the predictor, analyze a project.
func ExampleEngine_Analyze() {
	engine, err := core.New(core.Options{Mode: core.ModeWAPe, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	if err := engine.Train(); err != nil {
		log.Fatal(err)
	}
	project := core.LoadMap("demo", map[string]string{
		"page.php": `<?php mysql_query("SELECT * FROM t WHERE id=" . $_GET['id']);`,
	})
	rep, err := engine.Analyze(project)
	if err != nil {
		log.Fatal(err)
	}
	for _, gf := range report.Group(rep) {
		fmt.Printf("%s at %s:%d (false positive: %v)\n", gf.Group, gf.File, gf.Line, gf.PredictedFP)
	}
	// Output:
	// SQLI at page.php:1 (false positive: false)
}

// ExampleEngine_FixProject shows automatic correction.
func ExampleEngine_FixProject() {
	engine, err := core.New(core.Options{Mode: core.ModeWAPe, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	if err := engine.Train(); err != nil {
		log.Fatal(err)
	}
	project := core.LoadMap("demo", map[string]string{
		"page.php": `<?php echo $_GET['name'];`,
	})
	rep, err := engine.Analyze(project)
	if err != nil {
		log.Fatal(err)
	}
	_, applied, err := engine.FixProject(rep)
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range applied["page.php"] {
		fmt.Printf("line %d: %s\n", c.Line, c.After)
	}
	// Output:
	// line 1: san_out($_GET['name'])
}
