package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/vuln"
)

// DiagKind classifies why part of a scan could not be analyzed.
type DiagKind string

// Diagnostic kinds. Every kind means the same thing to a consumer: the
// report is complete for everything it covers, and this piece of the input
// is not covered (or covered only partially).
const (
	// DiagPanic: a (file, class) analysis task panicked; its findings were
	// discarded, every other task completed normally.
	DiagPanic DiagKind = "panic"
	// DiagTimeout: a task exceeded Options.TaskTimeout (or the scan context
	// was cancelled mid-task) and was cut off.
	DiagTimeout DiagKind = "timeout"
	// DiagBudget: a task exhausted its AST-step budget; taint analysis
	// degraded to conservative propagation partway through the file.
	DiagBudget DiagKind = "budget-exhausted"
	// DiagParseDegraded: the parser hit its nesting bound and produced a
	// truncated AST for the file.
	DiagParseDegraded DiagKind = "parse-degraded"
	// DiagLoadSkipped: a file was skipped at load time (unreadable, over the
	// size cap, or an unresolvable symlink).
	DiagLoadSkipped DiagKind = "load-skipped"
	// DiagRetried: a task faulted transiently (panic, watchdog timeout or
	// budget exhaustion) and the retry ladder recovered it on a later
	// attempt. Unlike every other kind this one is informational — the
	// task's findings ARE in the report — so it does not make the report
	// Degraded.
	DiagRetried DiagKind = "retried"
	// DiagBreakerOpen: the class's circuit breaker was open (the class
	// faulted terminally in enough consecutive tasks across jobs) and the
	// task was skipped without running.
	DiagBreakerOpen DiagKind = "breaker-open"
	// DiagStoreQuarantined: the project's result-store snapshot was
	// unreadable (quarantined whole) or carried undecodable entries
	// (salvaged). Like DiagRetried this is informational — every affected
	// task re-executed from scratch, so findings are complete; the
	// diagnostic surfaces that warm state was lost and where the evidence
	// was moved.
	DiagStoreQuarantined DiagKind = "store-quarantined"
)

// Informational reports whether the kind describes a recovered event rather
// than lost coverage. Informational diagnostics never degrade a report.
func (k DiagKind) Informational() bool {
	return k == DiagRetried || k == DiagStoreQuarantined
}

// Diagnostic records one failure the pipeline isolated instead of
// propagating. Failures are data: a scan always returns partial results
// plus an honest account of what it could not analyze.
type Diagnostic struct {
	// File is the project-relative path involved, "" for scan-level events.
	// Original path casing is preserved even where matching is
	// case-insensitive.
	File string
	// Class is the vulnerability class of the failed task, "" for load and
	// parse diagnostics which are class-independent.
	Class vuln.ClassID
	Kind  DiagKind
	// Message is a human-readable description of the failure.
	Message string
	// Stack is the goroutine stack trace for panic diagnostics.
	Stack string
	// Elapsed is how long the task ran before it was cut off or failed.
	Elapsed time.Duration
	// Retries is how many retry-ladder attempts preceded this disposition:
	// on a retried diagnostic, the attempts it took to recover; on a
	// terminal fault, the retries spent before giving up.
	Retries int
}

// String renders a one-line description.
func (d Diagnostic) String() string {
	loc := d.File
	if loc == "" {
		loc = "<scan>"
	}
	if d.Class != "" {
		loc += " [" + string(d.Class) + "]"
	}
	return fmt.Sprintf("%s: %s: %s", d.Kind, loc, d.Message)
}

// sortDiagnostics orders diagnostics deterministically so reports are
// independent of worker scheduling.
func sortDiagnostics(ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		if ds[i].File != ds[j].File {
			return ds[i].File < ds[j].File
		}
		if ds[i].Class != ds[j].Class {
			return ds[i].Class < ds[j].Class
		}
		if ds[i].Kind != ds[j].Kind {
			return ds[i].Kind < ds[j].Kind
		}
		return ds[i].Message < ds[j].Message
	})
}
