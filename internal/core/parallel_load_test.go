package core

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// buildLoadFixture writes a directory tree that exercises every loader code
// path whose ordering could differ under concurrency: nested dirs, mixed-case
// names, a parse-degraded file, an over-cap file, and a broken symlink.
func buildLoadFixture(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 12; i++ {
		write(fmt.Sprintf("app/page%02d.php", i),
			fmt.Sprintf("<?php $x%d = $_GET['p%d']; echo $x%d;", i, i, i))
	}
	write("Admin/Panel.PHP", `<?php include 'lib/db.php'; echo do_query($_POST["q"]);`)
	write("lib/db.php", `<?php function do_query($q) { return mysql_query($q); }`)
	// Deep nesting trips the parser's recursion bound -> degraded parse.
	write("deep.php", "<?php echo "+strings.Repeat("(", 700)+"1"+strings.Repeat(")", 700)+";")
	// Over the 2048-byte cap used below.
	write("big.php", "<?php echo 1; "+strings.Repeat("// padding\n", 256))
	if err := os.Symlink(filepath.Join(dir, "missing-target"), filepath.Join(dir, "dangling.php")); err != nil {
		t.Fatal(err)
	}
	return dir
}

// projectSnapshot reduces a Project to a comparable value covering everything
// analysis can observe: file order and content, parse outcomes, diagnostics,
// and the resolver index.
type projectSnapshot struct {
	Name    string
	Files   []fileSnapshot
	Diags   []Diagnostic
	Funcs   []string
	Methods []string
	Ambig   []string
}

type fileSnapshot struct {
	Path      string
	Hash      [32]byte
	Lines     int
	Degraded  bool
	ParseErrs []string
	SrcLen    int
}

func snapshot(p *Project) projectSnapshot {
	s := projectSnapshot{Name: p.Name, Diags: p.Diagnostics}
	for _, f := range p.Files {
		fs := fileSnapshot{Path: f.Path, Hash: f.Hash, Lines: f.Lines, Degraded: f.Degraded, SrcLen: len(f.Src)}
		for _, e := range f.ParseErrs {
			fs.ParseErrs = append(fs.ParseErrs, e.Error())
		}
		s.Files = append(s.Files, fs)
	}
	for name := range p.funcs {
		s.Funcs = append(s.Funcs, name)
	}
	for name := range p.methods {
		s.Methods = append(s.Methods, name)
	}
	for name, v := range p.ambig {
		if v {
			s.Ambig = append(s.Ambig, name)
		}
	}
	sort.Strings(s.Funcs)
	sort.Strings(s.Methods)
	sort.Strings(s.Ambig)
	return s
}

// TestLoadDirParallelismDeterminism pins the tentpole contract: LoadDirContext
// produces the same project — same file order, same diagnostics in the same
// positions, same resolver index — at any worker count.
func TestLoadDirParallelismDeterminism(t *testing.T) {
	dir := buildLoadFixture(t)
	load := func(par int, prev *Project) *Project {
		t.Helper()
		p, err := LoadDirContext(context.Background(), "det", dir, LoadOptions{
			MaxFileSize: 2048, Parallelism: par, Prev: prev,
		})
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		return p
	}
	base := load(1, nil)
	want := snapshot(base)

	// The fixture must actually exercise the interesting paths, or the
	// determinism comparison is vacuous.
	hasDegraded, hasSkipped := false, false
	for _, f := range base.Files {
		hasDegraded = hasDegraded || f.Degraded
	}
	for _, d := range base.Diagnostics {
		hasSkipped = hasSkipped || d.Kind == DiagLoadSkipped
	}
	if !hasDegraded || !hasSkipped {
		t.Fatalf("fixture too tame: degraded=%v skipped=%v; diags=%v", hasDegraded, hasSkipped, base.Diagnostics)
	}

	for _, par := range []int{1, 4, 8} {
		for _, prev := range []*Project{nil, base} {
			p := load(par, prev)
			if got := snapshot(p); !reflect.DeepEqual(got, want) {
				t.Errorf("parallelism %d (prev=%v) diverges from sequential:\ngot  %+v\nwant %+v",
					par, prev != nil, got, want)
			}
			if p.LoadStats.Workers < 1 {
				t.Errorf("parallelism %d: LoadStats.Workers = %d, want >= 1", par, p.LoadStats.Workers)
			}
		}
	}
}

// TestLoadDirPrevReuseAcrossParallelism pins incremental parse reuse under the
// parallel loader: files whose bytes are unchanged adopt the previous load's
// *SourceFile (pointer-identical, so memos carry over) at every worker count,
// while an edited file is re-parsed.
func TestLoadDirPrevReuseAcrossParallelism(t *testing.T) {
	dir := buildLoadFixture(t)
	opts := LoadOptions{MaxFileSize: 2048}
	base, err := LoadDirContext(context.Background(), "det", dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	edited := filepath.Join(dir, "app", "page03.php")
	if err := os.WriteFile(edited, []byte(`<?php echo $_GET["changed"];`), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 4, 8} {
		p, err := LoadDirContext(context.Background(), "det", dir,
			LoadOptions{MaxFileSize: 2048, Parallelism: par, Prev: base})
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		reused, reparsed := 0, 0
		for _, f := range p.Files {
			old := base.File(f.Path)
			if f.Path == filepath.FromSlash("app/page03.php") {
				if old == f {
					t.Errorf("parallelism %d: edited file adopted stale parse", par)
				}
				reparsed++
				continue
			}
			if old != f {
				t.Errorf("parallelism %d: unchanged %s not reused (pointer differs)", par, f.Path)
			} else {
				reused++
			}
		}
		if reused == 0 || reparsed != 1 {
			t.Errorf("parallelism %d: reused=%d reparsed=%d, want many/1", par, reused, reparsed)
		}
	}
}

// TestLoadMapOptionsParallelismDeterminism covers the in-memory loader the
// corpus and wapd use: same snapshot at any parallelism, with and without
// parse reuse.
func TestLoadMapOptionsParallelismDeterminism(t *testing.T) {
	files := make(map[string]string, 40)
	for i := 0; i < 36; i++ {
		files[fmt.Sprintf("src/f%02d.php", i)] = fmt.Sprintf("<?php $v%d = $_GET['k%d']; echo $v%d;", i, i, i)
	}
	files["MIXED/Case.PHP"] = `<?php function Dup() {} echo 1;`
	files["other.php"] = `<?php function dup() {} echo 2;`
	files["deep.php"] = "<?php echo " + strings.Repeat("(", 700) + "1" + strings.Repeat(")", 700) + ";"
	files["broken.php"] = `<?php $x = ;`

	base := LoadMapOptions("m", files, LoadOptions{Parallelism: 1})
	want := snapshot(base)
	if len(want.Ambig) == 0 {
		t.Fatal("fixture has no ambiguous callables; index comparison is vacuous")
	}
	for _, par := range []int{4, 8} {
		got := snapshot(LoadMapOptions("m", files, LoadOptions{Parallelism: par}))
		if !reflect.DeepEqual(got, want) {
			t.Errorf("parallelism %d diverges:\ngot  %+v\nwant %+v", par, got, want)
		}
	}
	for _, par := range []int{1, 4, 8} {
		p := LoadMapOptions("m", files, LoadOptions{Parallelism: par, Prev: base})
		for _, f := range p.Files {
			if base.File(f.Path) != f {
				t.Errorf("parallelism %d: %s not pointer-reused from prev", par, f.Path)
			}
		}
	}
}

// TestLoadDirContextCancelParallel pins cancellation behavior under the
// worker pool: a context canceled before the load returns ctx.Err() rather
// than a partial project.
func TestLoadDirContextCancelParallel(t *testing.T) {
	dir := buildLoadFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := LoadDirContext(ctx, "det", dir, LoadOptions{Parallelism: 8}); err == nil {
		t.Fatal("canceled load returned nil error")
	} else if ctx.Err() == nil || !strings.Contains(err.Error(), context.Canceled.Error()) {
		t.Errorf("canceled load error = %v, want wrapped %v", err, context.Canceled)
	}
}
