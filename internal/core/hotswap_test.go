package core

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/corrector"
	"repro/internal/vuln"
	"repro/internal/weapon"
)

// TestDryRunBuiltinSpecs: every bundled weapon spec must pass its own
// dry-run — the proof-app gate that rejects uploaded weapons must accept
// the weapons we ship.
func TestDryRunBuiltinSpecs(t *testing.T) {
	var weapons []*weapon.Weapon
	for _, spec := range weapon.BuiltinSpecs() {
		w, err := weapon.Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		weapons = append(weapons, w)
	}
	e := newEngine(t, Options{Mode: ModeWAPe, Seed: 1, Weapons: weapons})
	for _, w := range weapons {
		if err := e.DryRunWeapon(context.Background(), w); err != nil {
			t.Errorf("builtin weapon %s fails its own dry-run: %v", w.Class.ID, err)
		}
	}
}

// TestDryRunRepoWeaponFiles: the example spec files shipped in weapons/
// must pass the same gate (make weapons-gate runs this end to end).
func TestDryRunRepoWeaponFiles(t *testing.T) {
	dir := filepath.Join("..", "..", "weapons")
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Skipf("no weapons dir: %v", err)
	}
	for _, ent := range ents {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".weapon") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		spec, err := weapon.ParseSpec(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s: %v", ent.Name(), err)
		}
		w, err := weapon.Generate(*spec)
		if err != nil {
			t.Fatalf("%s: %v", ent.Name(), err)
		}
		e := newEngine(t, Options{Mode: ModeWAPe, Seed: 1, Weapons: []*weapon.Weapon{w}})
		if err := e.DryRunWeapon(context.Background(), w); err != nil {
			t.Errorf("%s fails dry-run: %v", ent.Name(), err)
		}
	}
}

// TestDryRunRejectsBrokenSpec: a weapon whose sanitizer neutralizes its
// own sinks (so the planted vulnerable flow is never reported) must be
// rejected with a diagnostic naming the missed flow.
func TestDryRunRejectsBrokenSpec(t *testing.T) {
	// The sanitizer list contains the sink itself: every flow into the
	// sink is considered sanitized, so the planted vulnerability cannot
	// be detected.
	w, err := weapon.Generate(weapon.Spec{
		Name:       "brokenspec",
		Sinks:      []vuln.Sink{{Name: "broken_sink"}},
		Sanitizers: []string{"broken_sink"},
		Fix:        corrector.Template{Kind: corrector.PHPSanitization, SanFunc: "esc"},
	})
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, Options{Mode: ModeWAPe, Seed: 1, Weapons: []*weapon.Weapon{w}})
	err = e.DryRunWeapon(context.Background(), w)
	if err == nil {
		t.Fatal("dry-run accepted a weapon that cannot detect its own planted flow")
	}
	if !strings.Contains(err.Error(), "not detected") {
		t.Errorf("error should name the missed flow: %v", err)
	}
}

// TestWithWeaponsDerivation pins the hot-swap contract: the derived
// engine sees the union weapon set, shares breaker state with its base,
// and rotates the config digest on every revision.
func TestWithWeaponsDerivation(t *testing.T) {
	hot, err := weapon.Generate(weapon.Spec{
		Name:  "hotswaptest",
		Sinks: []vuln.Sink{{Name: "hot_sink"}},
		Fix:   corrector.Template{Kind: corrector.PHPSanitization, SanFunc: "esc"},
	})
	if err != nil {
		t.Fatal(err)
	}
	base := newEngine(t, Options{Mode: ModeWAPe, Seed: 1, BreakerThreshold: 3})

	d1, err := base.WithWeapons(1, []*weapon.Weapon{hot})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d1.weapons["hotswaptest"]; !ok {
		t.Fatal("derived engine missing the hot weapon")
	}
	if d1.breakers != base.breakers {
		t.Error("derived engine must share the base engine's breakers")
	}
	if !d1.trained {
		t.Error("derived engine must inherit trained state")
	}

	// Same weapon set, different revision → different digest (fingerprints
	// rotate even when a removed weapon is re-added identically).
	d2, err := base.WithWeapons(2, []*weapon.Weapon{hot})
	if err != nil {
		t.Fatal(err)
	}
	if d1.configDigest() == d2.configDigest() {
		t.Error("revision change must rotate the config digest")
	}
	if base.configDigest() == d1.configDigest() {
		t.Error("weapon set change must rotate the config digest")
	}

	// Deriving with no hot weapons and revision 0 reproduces the base
	// digest: the zero revision is digest-neutral by design.
	d0, err := base.WithWeapons(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d0.configDigest() != base.configDigest() {
		t.Error("empty hot set at revision 0 must keep the base digest")
	}
}

// TestHotSwapMidScan swaps weapon sets while scans are running (the
// service's pattern: scans hold the engine they started with) and checks
// every scan's report matches the single-threaded report of the engine it
// ran on. Run with -race: this is the registry/engine concurrency test.
func TestHotSwapMidScan(t *testing.T) {
	specs := []weapon.Spec{
		{Name: "hotalpha", Sinks: []vuln.Sink{{Name: "alpha_sink"}},
			Fix: corrector.Template{Kind: corrector.PHPSanitization, SanFunc: "esc"}},
		{Name: "hotbeta", Sinks: []vuln.Sink{{Name: "beta_sink"}},
			Fix: corrector.Template{Kind: corrector.PHPSanitization, SanFunc: "esc"}},
	}
	var hot []*weapon.Weapon
	for _, s := range specs {
		w, err := weapon.Generate(s)
		if err != nil {
			t.Fatal(err)
		}
		hot = append(hot, w)
	}
	base := newEngine(t, Options{Mode: ModeWAPe, Seed: 1, Classes: []vuln.ClassID{vuln.SQLI}})

	src := map[string]string{"a.php": `<?php
$x = $_GET['x'];
alpha_sink("q" . $x);
beta_sink("q" . $x);
mysql_query("SELECT " . $x);
`}

	// Reference reports per weapon set, rendered to bytes.
	want := make([]string, 3)
	engines := make([]*Engine, 3)
	for i, set := range [][]*weapon.Weapon{nil, {hot[0]}, {hot[0], hot[1]}} {
		d, err := base.WithWeapons(int64(i), set)
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = d
		rep, err := d.Analyze(LoadMap("swap", src))
		if err != nil {
			t.Fatal(err)
		}
		want[i] = renderFindings(rep)
	}
	if want[0] == want[1] || want[1] == want[2] {
		t.Fatal("weapon sets must change findings for this fixture")
	}

	// Concurrent scans racing against engine derivation and use.
	var wg sync.WaitGroup
	for iter := 0; iter < 8; iter++ {
		for i := range engines {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				// Re-derive (what a swap does) and scan on the derived
				// engine while other goroutines scan other generations.
				d, err := base.WithWeapons(int64(i), [][]*weapon.Weapon{nil, {hot[0]}, {hot[0], hot[1]}}[i])
				if err != nil {
					t.Error(err)
					return
				}
				rep, err := d.Analyze(LoadMap("swap", src))
				if err != nil {
					t.Error(err)
					return
				}
				if got := renderFindings(rep); got != want[i] {
					t.Errorf("generation %d: findings drifted under concurrent swaps:\ngot  %s\nwant %s", i, got, want[i])
				}
			}(i)
		}
	}
	wg.Wait()
}

// renderFindings renders the deterministic finding set of a report.
func renderFindings(rep *Report) string {
	var b strings.Builder
	for _, f := range rep.Findings {
		b.WriteString(string(f.Candidate.Class))
		b.WriteString(" ")
		b.WriteString(f.Candidate.File)
		b.WriteString(":")
		b.WriteString(f.Candidate.SinkName)
		b.WriteString(" w=")
		b.WriteString(f.Weapon)
		b.WriteString("\n")
	}
	return b.String()
}
