package core

// Fault injection into fused multi-class passes, on the same TaskHook
// harness as faultinject_test.go. The demotion contract pinned here: a
// panic or stall inside a fused pass demotes that file's classes to the
// unfused per-class path with no lost or duplicated findings, transient
// faults are absorbed by the demotion (the rerun's fresh retry ladder, not
// the fused attempt, decides terminality), and breaker charges land on the
// faulting class only — never on innocent lanes of the same fused group.

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/vuln"
)

// fusedFaultOpts forces every class onto every file so each file forms a
// multi-class fused group even for single-sink sources.
func fusedFaultOpts(opts Options) Options {
	opts.DisableSinkPrefilter = true
	if opts.Classes == nil {
		opts.Classes = []vuln.ClassID{vuln.SQLI, vuln.XSSR}
	}
	return opts
}

// findingCount counts findings for one (file, class), to catch duplication
// (a demoted lane dispositioned by both the fused pass and its rerun).
func findingCount(rep *Report, file string, class vuln.ClassID) int {
	n := 0
	for _, f := range rep.Findings {
		if f.Candidate.File == file && f.Candidate.Class == class {
			n++
		}
	}
	return n
}

// TestFusedPanicDemotesWithoutLosingFindings panics inside the first fused
// invocation of one lane's task hook and asserts the demoted per-class
// reruns recover every finding exactly once, with no diagnostics, no
// breaker charge, and the demotion visible only in the stats.
func TestFusedPanicDemotesWithoutLosingFindings(t *testing.T) {
	for _, par := range []int{1, 4} {
		var fired atomic.Bool
		e := newTestEngine(t, fusedFaultOpts(Options{
			Parallelism:      par,
			BreakerThreshold: 1,
			BreakerCooldown:  time.Hour,
			TaskHook: func(file string, class vuln.ClassID) {
				if file == "a.php" && class == vuln.XSSR && fired.CompareAndSwap(false, true) {
					panic("transient fused fault")
				}
			},
		}))
		rep, err := e.Analyze(twoFileProject())
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if n := findingCount(rep, "a.php", vuln.XSSR); n != 1 {
			t.Errorf("parallelism %d: a.php[xss-r] findings = %d, want exactly 1 (no loss, no duplication)", par, n)
		}
		if n := findingCount(rep, "b.php", vuln.SQLI); n != 1 {
			t.Errorf("parallelism %d: b.php[sqli] findings = %d, want exactly 1", par, n)
		}
		if len(rep.Diagnostics) != 0 {
			t.Errorf("parallelism %d: demoted transient fault left diagnostics: %v", par, rep.Diagnostics)
		}
		if rep.Degraded() {
			t.Errorf("parallelism %d: absorbed fused fault must not degrade the report", par)
		}
		if rep.Stats.FusedDemoted != 2 {
			t.Errorf("parallelism %d: FusedDemoted = %d, want 2 (both lanes of a.php's group)", par, rep.Stats.FusedDemoted)
		}
		// The fused fault itself must not be charged: with threshold 1 any
		// breaker charge would trip the class open.
		for id, st := range e.BreakerSnapshot() {
			if st.State != BreakerClosed || st.Faults != 0 {
				t.Errorf("parallelism %d: breaker %s = %s/%d faults, want closed/0", par, id, st.State, st.Faults)
			}
		}
	}
}

// TestFusedStallDemotesOnWatchdog stalls the first fused invocation past the
// task deadline: the watchdog abandons the fused attempt, and the demoted
// reruns (which run fast) recover all findings with no timeout diagnostics.
func TestFusedStallDemotesOnWatchdog(t *testing.T) {
	var fired atomic.Bool
	e := newTestEngine(t, fusedFaultOpts(Options{
		Parallelism: 2,
		TaskTimeout: 100 * time.Millisecond,
		TaskHook: func(file string, class vuln.ClassID) {
			if file == "a.php" && class == vuln.XSSR && fired.CompareAndSwap(false, true) {
				time.Sleep(2 * time.Second)
			}
		},
	}))
	rep, err := e.Analyze(twoFileProject())
	if err != nil {
		t.Fatal(err)
	}
	if n := findingCount(rep, "a.php", vuln.XSSR); n != 1 {
		t.Errorf("a.php[xss-r] findings = %d, want 1 after watchdog demotion", n)
	}
	if n := len(diagsOfKind(rep, DiagTimeout)); n != 0 {
		t.Errorf("%d timeout diagnostics after demotion recovery, want 0: %v", n, rep.Diagnostics)
	}
	if rep.Degraded() {
		t.Error("watchdog demotion with clean reruns must not degrade the report")
	}
	if rep.Stats.FusedDemoted != 2 {
		t.Errorf("FusedDemoted = %d, want 2", rep.Stats.FusedDemoted)
	}
}

// TestFusedPersistentFaultChargesOnlyFaultingClass keeps one class panicking
// through fused passes and demoted reruns alike, with breakers armed. The
// charge must land on the faulting class only: its breaker trips at the
// threshold and later tasks are skipped, while the innocent lanes that
// shared its fused groups keep their findings and their breakers stay
// closed.
func TestFusedPersistentFaultChargesOnlyFaultingClass(t *testing.T) {
	e := newTestEngine(t, fusedFaultOpts(Options{
		Parallelism:      1, // deterministic group order: breaker trips mid-scan
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour,
		TaskHook: func(file string, class vuln.ClassID) {
			if class == vuln.XSSR {
				panic("class-wide fault")
			}
		},
	}))
	rep, err := e.Analyze(breakerProject())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(diagsOfKind(rep, DiagPanic)); got != 2 {
		t.Errorf("%d panic diagnostics, want 2 (the threshold): %v", got, rep.Diagnostics)
	}
	for _, d := range diagsOfKind(rep, DiagPanic) {
		if d.Class != vuln.XSSR {
			t.Errorf("panic diagnostic charged to %s, want xss-r only", d.Class)
		}
	}
	if got := len(diagsOfKind(rep, DiagBreakerOpen)); got != 3 {
		t.Errorf("%d breaker-open diagnostics, want 3 (c, d and q after the trip): %v", got, rep.Diagnostics)
	}
	for _, d := range diagsOfKind(rep, DiagBreakerOpen) {
		if d.Class != vuln.XSSR {
			t.Errorf("breaker-open diagnostic for class %s, want xss-r only", d.Class)
		}
	}
	if !hasFinding(rep, "q.php", vuln.SQLI) {
		t.Error("innocent class lost its finding while sharing fused groups with the faulting one")
	}
	snap := e.BreakerSnapshot()
	if st := snap[vuln.XSSR]; st.State != BreakerOpen {
		t.Errorf("xss-r breaker = %s, want open", st.State)
	}
	if st, ok := snap[vuln.SQLI]; ok && (st.State != BreakerClosed || st.Faults != 0) {
		t.Errorf("sqli breaker = %s/%d faults, want closed/0", st.State, st.Faults)
	}
}

// TestFusedStatsAccounting pins the fused counters on a fault-free scan:
// every file's runnable classes ride one fused pass, no demotions.
func TestFusedStatsAccounting(t *testing.T) {
	e := newTestEngine(t, fusedFaultOpts(Options{Parallelism: 1}))
	rep, err := e.Analyze(twoFileProject())
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Stats
	if s.FusedPasses != 2 {
		t.Errorf("FusedPasses = %d, want 2 (one per file)", s.FusedPasses)
	}
	if s.FusedTasks != s.Tasks || s.FusedTasks != 4 {
		t.Errorf("FusedTasks = %d (Tasks = %d), want all 4 tasks fused", s.FusedTasks, s.Tasks)
	}
	if s.FusedDemoted != 0 {
		t.Errorf("FusedDemoted = %d, want 0 on a fault-free scan", s.FusedDemoted)
	}

	// With fusion off the counters stay zero.
	e2 := newTestEngine(t, fusedFaultOpts(Options{Parallelism: 1, DisableFusion: true}))
	rep2, err := e2.Analyze(twoFileProject())
	if err != nil {
		t.Fatal(err)
	}
	if s := rep2.Stats; s.FusedPasses != 0 || s.FusedTasks != 0 || s.FusedDemoted != 0 {
		t.Errorf("unfused scan recorded fused counters: %d/%d/%d", s.FusedPasses, s.FusedTasks, s.FusedDemoted)
	}
}
