package core

// Retry-ladder and circuit-breaker coverage, built on the same TaskHook
// fault-injection harness as faultinject_test.go. The contracts pinned
// here: a transient fault costs a retry, not findings; a persistent fault
// is terminal after the ladder and trips the class's breaker without
// touching other classes; and on a fault-free corpus the ladder is
// invisible (identical reports at any RetryMax).

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/vuln"
)

// TestTransientPanicIsRecoveredByRetryLadder injects a panic into the first
// attempt of one task and asserts the retry recovers its findings, records
// an informational retried diagnostic, and leaves the report undegraded.
func TestTransientPanicIsRecoveredByRetryLadder(t *testing.T) {
	for _, par := range []int{1, 4} {
		var attempts atomic.Int64
		e := newTestEngine(t, Options{
			Parallelism: par,
			// The ladder under test is the unfused per-class path (also the
			// fused demotion target); under fusion a transient fused-pass
			// fault is absorbed as a demotion instead (fusedfault_test.go).
			DisableFusion: true,
			RetryMax:      2,
			RetryBackoff:  -1, // no sleep in tests
			TaskHook: func(file string, class vuln.ClassID) {
				if file == "a.php" && class == vuln.XSSR && attempts.Add(1) == 1 {
					panic("transient fault")
				}
			},
		})
		rep, err := e.Analyze(twoFileProject())
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if !hasFinding(rep, "a.php", vuln.XSSR) {
			t.Errorf("parallelism %d: retried task lost its finding", par)
		}
		retried := diagsOfKind(rep, DiagRetried)
		if len(retried) != 1 {
			t.Fatalf("parallelism %d: %d retried diagnostics, want 1: %v", par, len(retried), rep.Diagnostics)
		}
		d := retried[0]
		if d.File != "a.php" || d.Class != vuln.XSSR {
			t.Errorf("retried diagnostic at %s[%s], want a.php[xss-r]", d.File, d.Class)
		}
		if d.Retries != 1 {
			t.Errorf("retried diagnostic Retries = %d, want 1", d.Retries)
		}
		if !strings.Contains(d.Message, "recovered") {
			t.Errorf("retried message %q does not describe the recovery", d.Message)
		}
		if len(diagsOfKind(rep, DiagPanic)) != 0 {
			t.Errorf("recovered fault still produced a panic diagnostic: %v", rep.Diagnostics)
		}
		// A recovered fault is informational: full coverage, not degraded.
		if rep.Degraded() {
			t.Error("report with only a retried diagnostic must not be Degraded")
		}
		if rep.Stats.TaskRetries != 1 || rep.Stats.TasksRecovered != 1 {
			t.Errorf("stats retries/recovered = %d/%d, want 1/1",
				rep.Stats.TaskRetries, rep.Stats.TasksRecovered)
		}
		attempts.Store(0)
	}
}

// TestTransientStallIsRecoveredByRetryLadder stalls the first attempt past
// the watchdog deadline and asserts the retry (which runs fast) recovers
// the findings instead of abandoning them.
func TestTransientStallIsRecoveredByRetryLadder(t *testing.T) {
	var attempts atomic.Int64
	e := newTestEngine(t, Options{
		Parallelism:   2,
		DisableFusion: true, // pins the unfused ladder; see above
		TaskTimeout:   100 * time.Millisecond,
		RetryMax:      1,
		RetryBackoff:  -1,
		TaskHook: func(file string, class vuln.ClassID) {
			if file == "a.php" && class == vuln.XSSR && attempts.Add(1) == 1 {
				time.Sleep(2 * time.Second)
			}
		},
	})
	rep, err := e.Analyze(twoFileProject())
	if err != nil {
		t.Fatal(err)
	}
	if !hasFinding(rep, "a.php", vuln.XSSR) {
		t.Error("stalled-then-fast task lost its finding")
	}
	if n := len(diagsOfKind(rep, DiagTimeout)); n != 0 {
		t.Errorf("%d timeout diagnostics after recovery, want 0: %v", n, rep.Diagnostics)
	}
	if n := len(diagsOfKind(rep, DiagRetried)); n != 1 {
		t.Errorf("%d retried diagnostics, want 1: %v", n, rep.Diagnostics)
	}
	if rep.Degraded() {
		t.Error("recovered stall must not degrade the report")
	}
}

// TestPersistentFaultIsTerminalAfterLadder keeps one task faulting through
// every retry and asserts exactly one terminal diagnostic carrying the
// retry count — and no findings from the faulted task.
func TestPersistentFaultIsTerminalAfterLadder(t *testing.T) {
	e := newTestEngine(t, Options{
		Parallelism:  1,
		RetryMax:     2,
		RetryBackoff: -1,
		TaskHook: func(file string, class vuln.ClassID) {
			if file == "a.php" && class == vuln.XSSR {
				panic("persistent fault")
			}
		},
	})
	rep, err := e.Analyze(twoFileProject())
	if err != nil {
		t.Fatal(err)
	}
	panics := diagsOfKind(rep, DiagPanic)
	if len(panics) != 1 {
		t.Fatalf("%d panic diagnostics, want 1: %v", len(panics), rep.Diagnostics)
	}
	if panics[0].Retries != 2 {
		t.Errorf("terminal diagnostic Retries = %d, want 2", panics[0].Retries)
	}
	if len(diagsOfKind(rep, DiagRetried)) != 0 {
		t.Errorf("terminal fault produced a retried diagnostic: %v", rep.Diagnostics)
	}
	if hasFinding(rep, "a.php", vuln.XSSR) {
		t.Error("findings from the persistently faulted task leaked")
	}
	if !hasFinding(rep, "b.php", vuln.SQLI) {
		t.Error("unaffected task lost its finding")
	}
	if !rep.Degraded() {
		t.Error("terminal fault must degrade the report")
	}
	if rep.Stats.TaskRetries != 2 || rep.Stats.TasksRecovered != 0 {
		t.Errorf("stats retries/recovered = %d/%d, want 2/0",
			rep.Stats.TaskRetries, rep.Stats.TasksRecovered)
	}
}

// canonicalReport flattens the parts of a report that must be identical
// across robustness configurations (findings, their predictions, the
// diagnostics) — everything except the schedule-dependent Stats/Duration.
func canonicalReport(rep *Report) string {
	var b strings.Builder
	for _, f := range rep.Findings {
		fmt.Fprintf(&b, "%s|%v|%v|%s\n", f.Candidate.Key(), f.PredictedFP, f.Votes, f.Weapon)
	}
	for _, d := range rep.Diagnostics {
		fmt.Fprintf(&b, "%s|%s|%s|%d\n", d.Kind, d.File, d.Class, d.Retries)
	}
	fmt.Fprintf(&b, "links=%d", len(rep.StoredLinks))
	return b.String()
}

// TestRetryLadderInvisibleOnFaultFreeCorpus pins the identity contract: on
// a corpus with no faults, reports are identical with the ladder and
// breakers off, and with both armed at any budget of retries.
func TestRetryLadderInvisibleOnFaultFreeCorpus(t *testing.T) {
	proj := twoFileProject()
	scan := func(opts Options) string {
		opts.Parallelism = 4
		rep, err := newTestEngine(t, opts).Analyze(proj)
		if err != nil {
			t.Fatal(err)
		}
		return canonicalReport(rep)
	}
	base := scan(Options{})
	armed := scan(Options{RetryMax: 3, BreakerThreshold: 2, BreakerCooldown: time.Minute})
	if base != armed {
		t.Errorf("fault-free reports differ with robustness armed:\n--- off ---\n%s\n--- on ---\n%s", base, armed)
	}
}

// breakerProject has four XSS files (four xss-r tasks to fault) plus one
// SQLI file that must stay unaffected by the tripped breaker.
func breakerProject() *Project {
	return LoadMap("breaker", map[string]string{
		"a.php": xssPage,
		"b.php": xssPage,
		"c.php": xssPage,
		"d.php": xssPage,
		"q.php": sqliPage,
	})
}

// TestPersistentClassFaultTripsBreaker faults every xss-r task and asserts
// the breaker opens at the threshold: later tasks of the class are skipped
// with breaker-open diagnostics (and without running), while the sqli
// class keeps its findings. A second scan on the same engine starts with
// the breaker already open — the state survives across jobs.
func TestPersistentClassFaultTripsBreaker(t *testing.T) {
	var hookRuns atomic.Int64
	e := newTestEngine(t, Options{
		Parallelism:      1, // deterministic task order: breaker trips mid-scan
		Classes:          []vuln.ClassID{vuln.SQLI, vuln.XSSR},
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour,
		TaskHook: func(file string, class vuln.ClassID) {
			if class == vuln.XSSR {
				hookRuns.Add(1)
				panic("class-wide fault")
			}
		},
	})
	rep, err := e.Analyze(breakerProject())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(diagsOfKind(rep, DiagPanic)); got != 2 {
		t.Errorf("%d panic diagnostics, want 2 (the threshold): %v", got, rep.Diagnostics)
	}
	if got := len(diagsOfKind(rep, DiagBreakerOpen)); got != 2 {
		t.Errorf("%d breaker-open diagnostics, want 2: %v", got, rep.Diagnostics)
	}
	for _, d := range diagsOfKind(rep, DiagBreakerOpen) {
		if d.Class != vuln.XSSR {
			t.Errorf("breaker-open diagnostic for class %s, want xss-r only", d.Class)
		}
	}
	if hookRuns.Load() != 2 {
		t.Errorf("faulting class ran %d tasks, want 2: breaker-open tasks must not execute", hookRuns.Load())
	}
	if !hasFinding(rep, "q.php", vuln.SQLI) {
		t.Error("unrelated class lost its finding while the breaker tripped")
	}
	if st := e.BreakerSnapshot()[vuln.XSSR]; st.State != BreakerOpen {
		t.Errorf("breaker state = %s, want open", st.State)
	}

	// Second job on the same engine: the breaker is already open, so every
	// xss-r task is skipped without a single execution.
	rep2, err := e.Analyze(breakerProject())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(diagsOfKind(rep2, DiagBreakerOpen)); got != 4 {
		t.Errorf("second job: %d breaker-open diagnostics, want 4: %v", got, rep2.Diagnostics)
	}
	if hookRuns.Load() != 2 {
		t.Errorf("open breaker still executed tasks (hook ran %d times, want 2)", hookRuns.Load())
	}
	if rep2.Stats.BreakerSkipped != 4 {
		t.Errorf("stats BreakerSkipped = %d, want 4", rep2.Stats.BreakerSkipped)
	}
}

// TestBreakerRecoversAfterCooldown trips the breaker, waits out the
// cool-down, stops injecting the fault, and asserts the half-open probe
// closes the breaker and findings for the class come back.
func TestBreakerRecoversAfterCooldown(t *testing.T) {
	var faulting atomic.Bool
	faulting.Store(true)
	e := newTestEngine(t, Options{
		Parallelism:      1,
		Classes:          []vuln.ClassID{vuln.SQLI, vuln.XSSR},
		BreakerThreshold: 2,
		BreakerCooldown:  50 * time.Millisecond,
		TaskHook: func(file string, class vuln.ClassID) {
			if class == vuln.XSSR && faulting.Load() {
				panic("class-wide fault")
			}
		},
	})
	if _, err := e.Analyze(breakerProject()); err != nil {
		t.Fatal(err)
	}
	if st := e.BreakerSnapshot()[vuln.XSSR]; st.State != BreakerOpen {
		t.Fatalf("breaker state = %s, want open", st.State)
	}

	// Heal the class and wait out the cool-down: the next scan's first
	// xss-r task runs as the half-open probe, succeeds, and closes the
	// breaker for the rest of the scan.
	faulting.Store(false)
	time.Sleep(60 * time.Millisecond)
	rep, err := e.Analyze(breakerProject())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Degraded() {
		t.Errorf("healed class still degraded: %v", rep.Diagnostics)
	}
	for _, f := range []string{"a.php", "b.php", "c.php", "d.php"} {
		if !hasFinding(rep, f, vuln.XSSR) {
			t.Errorf("finding for %s missing after breaker recovery", f)
		}
	}
	if st := e.BreakerSnapshot()[vuln.XSSR]; st.State != BreakerClosed {
		t.Errorf("breaker state = %s, want closed after successful probe", st.State)
	}
}

// TestBreakerHalfOpenProbeFailureReopens drives the state machine directly:
// a failed probe re-opens the breaker for a fresh cool-down.
func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	b := newClassBreakers(2, time.Minute)
	now := time.Unix(1000, 0)
	b.now = func() time.Time { return now }

	id := vuln.XSSR
	if ok, probe := b.allow(id); !ok || probe {
		t.Fatalf("closed breaker: allow = %v, %v", ok, probe)
	}
	b.recordFault(id, false)
	b.recordFault(id, false)
	if ok, _ := b.allow(id); ok {
		t.Fatal("breaker did not open at the threshold")
	}

	// Cool-down passes: exactly one probe is admitted; a second concurrent
	// task of the class is still skipped.
	now = now.Add(2 * time.Minute)
	ok, probe := b.allow(id)
	if !ok || !probe {
		t.Fatalf("after cool-down: allow = %v, %v, want probe", ok, probe)
	}
	if ok, _ := b.allow(id); ok {
		t.Fatal("second task admitted while the probe is in flight")
	}
	// The probe fails: re-open, full cool-down again.
	b.recordFault(id, true)
	if st := b.snapshot()[id]; st.State != BreakerOpen {
		t.Fatalf("state after failed probe = %s, want open", st.State)
	}
	if ok, _ := b.allow(id); ok {
		t.Fatal("breaker admitted a task right after a failed probe")
	}
	// Next cool-down, successful probe: closed for good.
	now = now.Add(2 * time.Minute)
	if ok, probe := b.allow(id); !ok || !probe {
		t.Fatal("no probe after second cool-down")
	}
	b.recordSuccess(id, true)
	if st := b.snapshot()[id]; st.State != BreakerClosed {
		t.Fatalf("state after successful probe = %s, want closed", st.State)
	}
}

// TestLoadDirContextStopsOnCancellation asserts a dead context aborts the
// directory walk instead of parsing the whole tree.
func TestLoadDirContextStopsOnCancellation(t *testing.T) {
	dir := t.TempDir()
	for i := 0; i < 5; i++ {
		path := filepath.Join(dir, fmt.Sprintf("f%d.php", i))
		if err := os.WriteFile(path, []byte(xssPage), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := LoadDirContext(ctx, "dead", dir, LoadOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// A live context loads normally through the same path.
	proj, err := LoadDirContext(context.Background(), "live", dir, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(proj.Files) != 5 {
		t.Errorf("loaded %d files, want 5", len(proj.Files))
	}
}
