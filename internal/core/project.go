// Package core assembles WAP's pipeline: project loading, the code analyzer
// (taint detectors for every active class and weapon), the false positive
// predictor (symptom extraction + top-3 classifier ensemble) and the code
// corrector. It offers two configurations: the original WAP v2.1 and the
// paper's extended WAPe.
package core

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/php/ast"
	"repro/internal/php/parser"
)

// SourceFile is one PHP file of a project.
type SourceFile struct {
	// Path is the project-relative path.
	Path string
	// Src is the raw source text.
	Src string
	// AST is the parsed file.
	AST *ast.File
	// ParseErrs records recoverable syntax errors.
	ParseErrs []*parser.Error
	// Lines is the line count of Src.
	Lines int
}

// Project is a parsed web application (or plugin): all files plus a
// project-wide function index so taint analysis crosses include boundaries.
type Project struct {
	// Name identifies the application.
	Name  string
	Files []*SourceFile

	funcs   map[string]*ast.FunctionDecl
	methods map[string]*ast.FunctionDecl
}

// ResolveFunc implements taint.FuncResolver.
func (p *Project) ResolveFunc(name string) *ast.FunctionDecl {
	return p.funcs[name]
}

// ResolveMethod implements taint.FuncResolver.
func (p *Project) ResolveMethod(name string) *ast.FunctionDecl {
	return p.methods[name]
}

// TotalLines returns the project's total line count.
func (p *Project) TotalLines() int {
	total := 0
	for _, f := range p.Files {
		total += f.Lines
	}
	return total
}

// File returns the source file with the given path, or nil.
func (p *Project) File(path string) *SourceFile {
	for _, f := range p.Files {
		if f.Path == path {
			return f
		}
	}
	return nil
}

// LoadMap builds a project from an in-memory path→source map (used by the
// synthetic corpus and tests).
func LoadMap(name string, files map[string]string) *Project {
	p := &Project{Name: name}
	paths := make([]string, 0, len(files))
	for path := range files {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		p.addFile(path, files[path])
	}
	p.index()
	return p
}

// LoadDir builds a project from every .php file under dir.
func LoadDir(name, dir string) (*Project, error) {
	p := &Project{Name: name}
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(strings.ToLower(d.Name()), ".php") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("core: read %s: %w", path, err)
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			rel = path
		}
		p.addFile(rel, string(data))
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("core: load %s: %w", dir, err)
	}
	p.index()
	return p, nil
}

func (p *Project) addFile(path, src string) {
	f, errs := parser.Parse(path, src)
	p.Files = append(p.Files, &SourceFile{
		Path:      path,
		Src:       src,
		AST:       f,
		ParseErrs: errs,
		Lines:     strings.Count(src, "\n") + 1,
	})
}

// index builds the project-wide function and method tables.
func (p *Project) index() {
	p.funcs = make(map[string]*ast.FunctionDecl)
	p.methods = make(map[string]*ast.FunctionDecl)
	for _, f := range p.Files {
		for key, fn := range f.AST.Funcs {
			if strings.Contains(key, "::") {
				// Method key Class::name; also index by bare name.
				parts := strings.SplitN(key, "::", 2)
				if _, exists := p.methods[parts[1]]; !exists {
					p.methods[parts[1]] = fn
				}
				p.funcs[key] = fn
				continue
			}
			if _, exists := p.funcs[key]; !exists {
				p.funcs[key] = fn
			}
		}
	}
}
