// Package core assembles WAP's pipeline: project loading, the code analyzer
// (taint detectors for every active class and weapon), the false positive
// predictor (symptom extraction + top-3 classifier ensemble) and the code
// corrector. It offers two configurations: the original WAP v2.1 and the
// paper's extended WAPe.
package core

import (
	"context"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/php/ast"
	"repro/internal/php/parser"
)

// SourceFile is one PHP file of a project.
type SourceFile struct {
	// Path is the project-relative path.
	Path string
	// Src is the raw source text.
	Src string
	// AST is the parsed file.
	AST *ast.File
	// ParseErrs records recoverable syntax errors.
	ParseErrs []*parser.Error
	// Degraded is true when the parser hit its nesting bound and the AST is
	// a truncated approximation of the file.
	Degraded bool
	// Lines is the line count of Src.
	Lines int
}

// Project is a parsed web application (or plugin): all files plus a
// project-wide function index so taint analysis crosses include boundaries.
type Project struct {
	// Name identifies the application.
	Name  string
	Files []*SourceFile

	// Diagnostics records files skipped at load time and degraded parses.
	// Analysis copies them into the report so no loss of coverage is silent.
	Diagnostics []Diagnostic

	funcs   map[string]*ast.FunctionDecl
	methods map[string]*ast.FunctionDecl
	byPath  map[string]*SourceFile
	// ambig holds callable names declared more than once project-wide
	// (functions and methods conflated, conservatively): resolving such a
	// name from different files can yield different declarations, so taint
	// summaries that touched one are never shared across tasks.
	ambig map[string]bool
}

// ResolveFunc implements taint.FuncResolver.
func (p *Project) ResolveFunc(name string) *ast.FunctionDecl {
	return p.funcs[name]
}

// ResolveMethod implements taint.FuncResolver.
func (p *Project) ResolveMethod(name string) *ast.FunctionDecl {
	return p.methods[name]
}

// AmbiguousCallable implements taint.AmbiguityReporter: it reports whether
// name (lower-case) has more than one declaration anywhere in the project.
func (p *Project) AmbiguousCallable(name string) bool {
	return p.ambig[name]
}

// TotalLines returns the project's total line count.
func (p *Project) TotalLines() int {
	total := 0
	for _, f := range p.Files {
		total += f.Lines
	}
	return total
}

// File returns the source file with the given path, or nil.
func (p *Project) File(path string) *SourceFile {
	if p.byPath != nil {
		return p.byPath[path]
	}
	// Fallback for hand-assembled projects that never called index().
	for _, f := range p.Files {
		if f.Path == path {
			return f
		}
	}
	return nil
}

// LoadMap builds a project from an in-memory path→source map (used by the
// synthetic corpus and tests).
func LoadMap(name string, files map[string]string) *Project {
	p := &Project{Name: name}
	paths := make([]string, 0, len(files))
	for path := range files {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		p.addFile(path, files[path])
	}
	p.index()
	return p
}

// DefaultMaxFileSize is the load-time size cap (bytes) applied when
// LoadOptions.MaxFileSize is zero. Real-world trees contain giant generated
// or data-bearing .php files that only stall analysis; they are skipped and
// recorded as load-skipped diagnostics.
const DefaultMaxFileSize = 8 << 20

// LoadOptions tunes directory loading.
type LoadOptions struct {
	// MaxFileSize is the per-file size cap in bytes; 0 means
	// DefaultMaxFileSize, negative means unlimited.
	MaxFileSize int64
}

func (o LoadOptions) maxFileSize() int64 {
	switch {
	case o.MaxFileSize < 0:
		return 0 // unlimited
	case o.MaxFileSize == 0:
		return DefaultMaxFileSize
	default:
		return o.MaxFileSize
	}
}

// LoadDir builds a project from every .php file under dir (matched by
// lowercase suffix, so Page.PHP loads too) with default options.
func LoadDir(name, dir string) (*Project, error) {
	return LoadDirOptions(name, dir, LoadOptions{})
}

// LoadDirOptions builds a project from every .php file under dir. The load
// is resilient: unreadable files, unresolvable symlinks and files over the
// size cap are skipped and recorded as load-skipped diagnostics (with their
// original path casing) instead of aborting the whole load. Only a missing
// or unreadable root directory is a fatal error.
func LoadDirOptions(name, dir string, opts LoadOptions) (*Project, error) {
	return LoadDirContext(context.Background(), name, dir, opts)
}

// LoadDirContext is LoadDirOptions under a context: cancellation is checked
// between files, so a cancelled or timed-out request stops walking a huge
// tree immediately instead of parsing it all before analysis ever sees the
// deadline. On cancellation it returns ctx's error (wrapped).
func LoadDirContext(ctx context.Context, name, dir string, opts LoadOptions) (*Project, error) {
	p := &Project{Name: name}
	sizeCap := opts.maxFileSize()
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		rel := relPath(dir, path)
		if err != nil {
			if path == dir || filepath.Clean(path) == filepath.Clean(dir) {
				return err // unreadable root: fatal
			}
			p.Diagnostics = append(p.Diagnostics, Diagnostic{
				File: rel, Kind: DiagLoadSkipped,
				Message: fmt.Sprintf("unreadable: %v", err),
			})
			if d != nil && d.IsDir() {
				return fs.SkipDir
			}
			return nil
		}
		if d.IsDir() || !strings.HasSuffix(strings.ToLower(d.Name()), ".php") {
			return nil
		}
		// WalkDir never descends into directory symlinks, so symlink cycles
		// cannot recurse; file symlinks are read through os.ReadFile below
		// and skipped with a diagnostic when broken or self-referential.
		if sizeCap > 0 {
			if info, ierr := os.Stat(path); ierr == nil && info.Size() > sizeCap {
				p.Diagnostics = append(p.Diagnostics, Diagnostic{
					File: rel, Kind: DiagLoadSkipped,
					Message: fmt.Sprintf("file size %d exceeds cap %d bytes", info.Size(), sizeCap),
				})
				return nil
			}
		}
		data, err := os.ReadFile(path)
		if err != nil {
			p.Diagnostics = append(p.Diagnostics, Diagnostic{
				File: rel, Kind: DiagLoadSkipped,
				Message: fmt.Sprintf("unreadable: %v", err),
			})
			return nil
		}
		p.addFile(rel, string(data))
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("core: load %s: %w", dir, err)
	}
	p.index()
	return p, nil
}

// relPath makes path relative to dir, preserving the original casing.
func relPath(dir, path string) string {
	rel, err := filepath.Rel(dir, path)
	if err != nil {
		return path
	}
	return rel
}

func (p *Project) addFile(path, src string) {
	f, errs := parser.Parse(path, src)
	sf := &SourceFile{
		Path:      path,
		Src:       src,
		AST:       f,
		ParseErrs: errs,
		Lines:     strings.Count(src, "\n") + 1,
	}
	for _, e := range errs {
		if e.Degraded {
			sf.Degraded = true
			p.Diagnostics = append(p.Diagnostics, Diagnostic{
				File: path, Kind: DiagParseDegraded,
				Message: e.Msg,
			})
			break
		}
	}
	p.Files = append(p.Files, sf)
}

// index builds the project-wide function, method, path and ambiguity tables.
func (p *Project) index() {
	p.funcs = make(map[string]*ast.FunctionDecl)
	p.methods = make(map[string]*ast.FunctionDecl)
	p.byPath = make(map[string]*SourceFile, len(p.Files))
	counts := make(map[string]int)
	for _, f := range p.Files {
		p.byPath[f.Path] = f
		for key, fn := range f.AST.Funcs {
			if strings.Contains(key, "::") {
				// Method key Class::name; also index by bare name.
				parts := strings.SplitN(key, "::", 2)
				counts[parts[1]]++
				if _, exists := p.methods[parts[1]]; !exists {
					p.methods[parts[1]] = fn
				}
				p.funcs[key] = fn
				continue
			}
			counts[key]++
			if _, exists := p.funcs[key]; !exists {
				p.funcs[key] = fn
			}
		}
	}
	p.ambig = make(map[string]bool)
	for name, n := range counts {
		if n > 1 {
			p.ambig[name] = true
		}
	}
}
