// Package core assembles WAP's pipeline: project loading, the code analyzer
// (taint detectors for every active class and weapon), the false positive
// predictor (symptom extraction + top-3 classifier ensemble) and the code
// corrector. It offers two configurations: the original WAP v2.1 and the
// paper's extended WAPe.
package core

import (
	"context"
	"crypto/sha256"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/intern"
	"repro/internal/ir"
	"repro/internal/php/ast"
	"repro/internal/php/parser"
)

// SourceFile is one PHP file of a project.
type SourceFile struct {
	// Path is the project-relative path.
	Path string
	// Src is the raw source text.
	Src string
	// Hash is the SHA-256 of Src. It identifies the file's content for
	// incremental scans: a task may only reuse a stored result when every
	// file in its reachable closure hashes identically.
	Hash [sha256.Size]byte
	// AST is the parsed file.
	AST *ast.File
	// ParseErrs records recoverable syntax errors.
	ParseErrs []*parser.Error
	// Degraded is true when the parser hit its nesting bound and the AST is
	// a truncated approximation of the file.
	Degraded bool
	// Lines is the line count of Src.
	Lines int

	// memo lazily caches artifacts derived purely from Src/AST (which never
	// change after load), so scans that share a SourceFile through parse
	// reuse pay for them once, not per scan.
	memo fileMemo
}

// fileMemo is SourceFile's content-derived cache. Guarded by its mutex: one
// SourceFile can serve concurrent scans (wapd jobs sharing a baseline).
type fileMemo struct {
	mu sync.Mutex
	// lowered is the lower-cased source (sink pre-filter input).
	lowered   string
	loweredOK bool
	// called is the set of statically named callables the file mentions.
	called map[string]bool
	// tokens memoizes sink-token lexical presence in the lowered source.
	tokens map[string]bool
}

// loweredSrc returns strings.ToLower(Src), computed once.
func (f *SourceFile) loweredSrc() string {
	f.memo.mu.Lock()
	defer f.memo.mu.Unlock()
	if !f.memo.loweredOK {
		f.memo.lowered = strings.ToLower(f.Src)
		f.memo.loweredOK = true
	}
	return f.memo.lowered
}

// hasToken reports whether the lowered source contains tok, memoized per
// token. Callers must not pass attacker-controlled token sets: the memo
// grows by one entry per distinct token ever asked (sink names, in practice).
func (f *SourceFile) hasToken(tok string) bool {
	f.memo.mu.Lock()
	defer f.memo.mu.Unlock()
	if !f.memo.loweredOK {
		f.memo.lowered = strings.ToLower(f.Src)
		f.memo.loweredOK = true
	}
	present, ok := f.memo.tokens[tok]
	if !ok {
		present = strings.Contains(f.memo.lowered, tok)
		if f.memo.tokens == nil {
			f.memo.tokens = make(map[string]bool)
		}
		f.memo.tokens[tok] = present
	}
	return present
}

// calledNames returns the file's statically named callables, computed once.
// The returned map is shared: callers must treat it as read-only.
func (f *SourceFile) calledNames() map[string]bool {
	f.memo.mu.Lock()
	defer f.memo.mu.Unlock()
	if f.memo.called == nil {
		f.memo.called = calledNames(f.AST)
	}
	return f.memo.called
}

// LoadStats describes how the parse front end ran for one project load.
type LoadStats struct {
	// ParseWall is the wall-clock time of the read+hash+parse phase,
	// excluding the directory walk and the index build.
	ParseWall time.Duration
	// Workers is the number of load workers that executed the phase.
	Workers int
}

// Project is a parsed web application (or plugin): all files plus a
// project-wide function index so taint analysis crosses include boundaries.
type Project struct {
	// Name identifies the application.
	Name  string
	Files []*SourceFile

	// Diagnostics records files skipped at load time and degraded parses.
	// Analysis copies them into the report so no loss of coverage is silent.
	Diagnostics []Diagnostic

	// LoadStats records parse-phase wall time and worker count. Purely
	// informational: it never influences analysis output.
	LoadStats LoadStats

	funcs   map[string]*ast.FunctionDecl
	methods map[string]*ast.FunctionDecl
	byPath  map[string]*SourceFile
	// ambig holds callable names declared more than once project-wide
	// (functions and methods conflated, conservatively): resolving such a
	// name from different files can yield different declarations, so taint
	// summaries that touched one are never shared across tasks.
	ambig map[string]bool

	// irOnce/irCache lazily hold the project's IR lowering cache: each file
	// is lowered to the CFG-based form once and shared read-only across all
	// weapon-class tasks (and across repeated scans of the same Project).
	irOnce  sync.Once
	irCache *ir.Cache
}

// IRCache returns the project's shared IR lowering cache, creating it on
// first use. Safe for concurrent callers.
func (p *Project) IRCache() *ir.Cache {
	p.irOnce.Do(func() { p.irCache = ir.NewCache() })
	return p.irCache
}

// ResolveFunc implements taint.FuncResolver.
func (p *Project) ResolveFunc(name string) *ast.FunctionDecl {
	return p.funcs[name]
}

// ResolveMethod implements taint.FuncResolver.
func (p *Project) ResolveMethod(name string) *ast.FunctionDecl {
	return p.methods[name]
}

// AmbiguousCallable implements taint.AmbiguityReporter: it reports whether
// name (lower-case) has more than one declaration anywhere in the project.
func (p *Project) AmbiguousCallable(name string) bool {
	return p.ambig[name]
}

// TotalLines returns the project's total line count.
func (p *Project) TotalLines() int {
	total := 0
	for _, f := range p.Files {
		total += f.Lines
	}
	return total
}

// File returns the source file with the given path, or nil.
func (p *Project) File(path string) *SourceFile {
	if p.byPath != nil {
		return p.byPath[path]
	}
	// Fallback for hand-assembled projects that never called index().
	for _, f := range p.Files {
		if f.Path == path {
			return f
		}
	}
	return nil
}

// LoadMap builds a project from an in-memory path→source map (used by the
// synthetic corpus and tests).
func LoadMap(name string, files map[string]string) *Project {
	return LoadMapOptions(name, files, LoadOptions{})
}

// LoadMapIncremental is LoadMap with parse reuse: files whose content hashes
// identically to the same path in prev adopt prev's parsed SourceFile
// (ASTs are immutable after parse, so sharing them across projects is safe)
// instead of re-parsing. The project-wide indexes are rebuilt either way.
// prev may be nil.
func LoadMapIncremental(name string, files map[string]string, prev *Project) *Project {
	return LoadMapOptions(name, files, LoadOptions{Prev: prev})
}

// LoadMapOptions is LoadMap with full load options (parse reuse and
// parallelism). The resulting project is byte-identical at any parallelism:
// files are ordered by sorted path regardless of parse completion order.
func LoadMapOptions(name string, files map[string]string, opts LoadOptions) *Project {
	paths := make([]string, 0, len(files))
	for path := range files {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	slots := make([]loadSlot, len(paths))
	for i, path := range paths {
		slots[i] = loadSlot{job: true, rel: path, src: files[path]}
	}
	p := &Project{Name: name}
	// In-memory loads perform no IO and take no context, so they cannot fail.
	_ = p.runSlots(context.Background(), slots, opts)
	p.index()
	return p
}

// DefaultMaxFileSize is the load-time size cap (bytes) applied when
// LoadOptions.MaxFileSize is zero. Real-world trees contain giant generated
// or data-bearing .php files that only stall analysis; they are skipped and
// recorded as load-skipped diagnostics.
const DefaultMaxFileSize = 8 << 20

// LoadOptions tunes directory loading.
type LoadOptions struct {
	// MaxFileSize is the per-file size cap in bytes; 0 means
	// DefaultMaxFileSize, negative means unlimited.
	MaxFileSize int64
	// Prev, when set, enables parse reuse: a file whose bytes hash
	// identically to the same path in Prev adopts Prev's parsed SourceFile
	// instead of re-parsing. Used by incremental rescans of the same tree.
	Prev *Project
	// Parallelism bounds concurrent read+parse workers; 0 uses GOMAXPROCS
	// capped at 8 (matching Options.Parallelism), 1 forces a sequential
	// load. The loaded project is byte-identical at any setting: files and
	// diagnostics are assembled in walk order regardless of completion order.
	Parallelism int
}

func (o LoadOptions) maxFileSize() int64 {
	switch {
	case o.MaxFileSize < 0:
		return 0 // unlimited
	case o.MaxFileSize == 0:
		return DefaultMaxFileSize
	default:
		return o.MaxFileSize
	}
}

func (o LoadOptions) parallelism() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	n := runtime.GOMAXPROCS(0)
	if n > 8 {
		n = 8
	}
	return n
}

// LoadDir builds a project from every .php file under dir (matched by
// lowercase suffix, so Page.PHP loads too) with default options.
func LoadDir(name, dir string) (*Project, error) {
	return LoadDirOptions(name, dir, LoadOptions{})
}

// LoadDirOptions builds a project from every .php file under dir. The load
// is resilient: unreadable files, unresolvable symlinks and files over the
// size cap are skipped and recorded as load-skipped diagnostics (with their
// original path casing) instead of aborting the whole load. Only a missing
// or unreadable root directory is a fatal error.
func LoadDirOptions(name, dir string, opts LoadOptions) (*Project, error) {
	return LoadDirContext(context.Background(), name, dir, opts)
}

// LoadDirContext is LoadDirOptions under a context: cancellation is checked
// between files, so a cancelled or timed-out request stops walking a huge
// tree immediately instead of parsing it all before analysis ever sees the
// deadline. On cancellation it returns ctx's error (wrapped).
//
// The load runs in two phases. The walk phase visits the tree sequentially,
// resolving every per-entry decision that depends on walk order (skip
// diagnostics, symlink and size-cap handling) into an ordered slot list. The
// parse phase then executes the file slots — read, hash, parse-or-reuse — on
// a bounded worker pool and assembles Files and Diagnostics in slot order,
// so the project is byte-identical to a sequential load at any parallelism.
func LoadDirContext(ctx context.Context, name, dir string, opts LoadOptions) (*Project, error) {
	p := &Project{Name: name}
	sizeCap := opts.maxFileSize()
	var slots []loadSlot
	skip := func(rel, format string, args ...any) {
		slots = append(slots, loadSlot{diag: &Diagnostic{
			File: rel, Kind: DiagLoadSkipped,
			Message: fmt.Sprintf(format, args...),
		}})
	}
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		rel := relPath(dir, path)
		if err != nil {
			if path == dir || filepath.Clean(path) == filepath.Clean(dir) {
				return err // unreadable root: fatal
			}
			skip(rel, "unreadable: %v", err)
			if d != nil && d.IsDir() {
				return fs.SkipDir
			}
			return nil
		}
		if d.IsDir() || !strings.HasSuffix(strings.ToLower(d.Name()), ".php") {
			return nil
		}
		// WalkDir never descends into directory symlinks, so symlink cycles
		// cannot recurse. File symlinks are followed through os.Stat /
		// os.ReadFile below; a symlink pointing at a directory is skipped
		// silently (it is not a PHP file, and descending would reopen the
		// cycle risk), and a broken one is diagnosed explicitly.
		if d.Type()&fs.ModeSymlink != 0 {
			info, serr := os.Stat(path)
			if serr != nil {
				skip(rel, "broken symlink: %v", serr)
				return nil
			}
			if info.IsDir() {
				return nil
			}
		}
		if sizeCap > 0 {
			if info, ierr := os.Stat(path); ierr == nil && info.Size() > sizeCap {
				skip(rel, "file size %d exceeds cap %d bytes", info.Size(), sizeCap)
				return nil
			}
		}
		slots = append(slots, loadSlot{job: true, rel: rel, abs: path, read: true})
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("core: load %s: %w", dir, err)
	}
	if err := p.runSlots(ctx, slots, opts); err != nil {
		return nil, fmt.Errorf("core: load %s: %w", dir, err)
	}
	p.index()
	return p, nil
}

// loadSlot is one ordered unit of load work produced by the walk phase:
// either a pre-resolved skip diagnostic or a file job to read and parse.
// Workers may execute jobs in any order; assembly consumes slots in order.
type loadSlot struct {
	diag *Diagnostic // skip diagnostic resolved during the walk (non-job)
	job  bool        // this slot is a file to load
	rel  string      // project-relative path
	abs  string      // on-disk path to read (dir loads)
	src  string      // in-memory source (map loads)
	read bool        // read src from abs instead of using src
}

// loadResult is the outcome of one job slot.
type loadResult struct {
	sf       *SourceFile // loaded or reused file; nil when skipped
	skipDiag *Diagnostic // read failure discovered by the worker
	degraded *Diagnostic // parse-degradation diagnostic (fresh or reused)
}

// runSlots executes every job slot on a bounded worker pool and assembles
// Files and Diagnostics in slot order, recording LoadStats. Workers claim
// slots through an atomic cursor; results land in a per-slot array, so the
// assembled project is independent of execution order. Cancellation is
// checked between files and surfaces as ctx's error with no partial project.
func (p *Project) runSlots(ctx context.Context, slots []loadSlot, opts LoadOptions) error {
	jobs := 0
	for i := range slots {
		if slots[i].job {
			jobs++
		}
	}
	workers := opts.parallelism()
	if workers > jobs {
		workers = jobs
	}
	if workers < 1 {
		workers = 1
	}
	tab := intern.NewTable()
	start := time.Now()
	results := make([]loadResult, len(slots))
	var cursor atomic.Int64
	var firstErr error
	var once sync.Once
	work := func() {
		for {
			i := int(cursor.Add(1)) - 1
			if i >= len(slots) {
				return
			}
			if !slots[i].job {
				continue
			}
			if cerr := ctx.Err(); cerr != nil {
				once.Do(func() { firstErr = cerr })
				return
			}
			results[i] = executeSlot(&slots[i], opts.Prev, tab)
		}
	}
	if workers == 1 {
		work()
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				work()
			}()
		}
		wg.Wait()
	}
	if firstErr != nil {
		return firstErr
	}
	for i := range slots {
		if !slots[i].job {
			p.Diagnostics = append(p.Diagnostics, *slots[i].diag)
			continue
		}
		r := &results[i]
		if r.skipDiag != nil {
			p.Diagnostics = append(p.Diagnostics, *r.skipDiag)
			continue
		}
		if r.degraded != nil {
			p.Diagnostics = append(p.Diagnostics, *r.degraded)
		}
		p.Files = append(p.Files, r.sf)
	}
	p.LoadStats = LoadStats{ParseWall: time.Since(start), Workers: workers}
	return nil
}

// executeSlot loads one file: read (for dir loads), hash, then either adopt
// prev's byte-identical parse — memoized artifacts (lowered source, called
// names) travel with the reused SourceFile — or parse fresh through the
// shared intern table.
func executeSlot(s *loadSlot, prev *Project, tab *intern.Table) loadResult {
	src := s.src
	if s.read {
		data, err := os.ReadFile(s.abs)
		if err != nil {
			return loadResult{skipDiag: &Diagnostic{
				File: s.rel, Kind: DiagLoadSkipped,
				Message: fmt.Sprintf("unreadable: %v", err),
			}}
		}
		src = string(data)
	}
	sum := sha256.Sum256([]byte(src))
	if prev != nil {
		if old := prev.File(s.rel); old != nil && old.Hash == sum {
			res := loadResult{sf: old}
			if old.Degraded {
				for _, e := range old.ParseErrs {
					if e.Degraded {
						res.degraded = &Diagnostic{
							File: s.rel, Kind: DiagParseDegraded,
							Message: e.Msg,
						}
						break
					}
				}
			}
			return res
		}
	}
	f, errs := parser.ParseInterned(s.rel, src, tab)
	sf := &SourceFile{
		Path:      s.rel,
		Src:       src,
		Hash:      sum,
		AST:       f,
		ParseErrs: errs,
		Lines:     strings.Count(src, "\n") + 1,
	}
	res := loadResult{sf: sf}
	for _, e := range errs {
		if e.Degraded {
			sf.Degraded = true
			res.degraded = &Diagnostic{
				File: s.rel, Kind: DiagParseDegraded,
				Message: e.Msg,
			}
			break
		}
	}
	return res
}

// relPath makes path relative to dir, preserving the original casing.
func relPath(dir, path string) string {
	rel, err := filepath.Rel(dir, path)
	if err != nil {
		return path
	}
	return rel
}

// index builds the project-wide function, method, path and ambiguity tables.
func (p *Project) index() {
	p.funcs = make(map[string]*ast.FunctionDecl)
	p.methods = make(map[string]*ast.FunctionDecl)
	p.byPath = make(map[string]*SourceFile, len(p.Files))
	counts := make(map[string]int)
	for _, f := range p.Files {
		p.byPath[f.Path] = f
		for key, fn := range f.AST.Funcs {
			if strings.Contains(key, "::") {
				// Method key Class::name; also index by bare name.
				parts := strings.SplitN(key, "::", 2)
				counts[parts[1]]++
				if _, exists := p.methods[parts[1]]; !exists {
					p.methods[parts[1]] = fn
				}
				p.funcs[key] = fn
				continue
			}
			counts[key]++
			if _, exists := p.funcs[key]; !exists {
				p.funcs[key] = fn
			}
		}
	}
	p.ambig = make(map[string]bool)
	for name, n := range counts {
		if n > 1 {
			p.ambig[name] = true
		}
	}
}
