package core

import (
	"sync"
	"time"

	"repro/internal/vuln"
)

// BreakerState is one per-class circuit breaker's position.
type BreakerState string

// Circuit breaker states. The machine is the classic three-state breaker:
// closed (tasks run normally) → open (tasks are skipped with a
// breaker-open diagnostic) after BreakerThreshold consecutive terminal
// faults → half-open (one probe task admitted) after the cool-down; the
// probe's outcome closes or re-opens the breaker.
const (
	BreakerClosed   BreakerState = "closed"
	BreakerOpen     BreakerState = "open"
	BreakerHalfOpen BreakerState = "half-open"
)

// DefaultBreakerCooldown is how long an open breaker waits before admitting
// a half-open probe when Options.BreakerCooldown is zero.
const DefaultBreakerCooldown = 30 * time.Second

// BreakerStatus is a point-in-time snapshot of one class's breaker, exposed
// for health endpoints.
type BreakerStatus struct {
	State BreakerState `json:"state"`
	// Faults is the consecutive terminal-fault count driving the breaker.
	Faults int `json:"faults"`
	// RetryAt is when an open breaker admits its half-open probe.
	RetryAt time.Time `json:"retry_at,omitempty"`
}

// classBreakers tracks one breaker per vulnerability class. The state is
// engine-scoped, not scan-scoped: a class that faults repeatedly across
// jobs trips open so one pathological weapon cannot keep consuming the
// worker pool, and recovers via a half-open probe after the cool-down.
// Breakers only ever skip tasks (diagnostics-only degradation); findings
// for every other class are unaffected.
type classBreakers struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable for tests
	byClass   map[vuln.ClassID]*breakerEntry
}

type breakerEntry struct {
	state    BreakerState
	faults   int
	openedAt time.Time
	probing  bool // a half-open probe task is in flight
}

func newClassBreakers(threshold int, cooldown time.Duration) *classBreakers {
	if cooldown <= 0 {
		cooldown = DefaultBreakerCooldown
	}
	return &classBreakers{
		threshold: threshold,
		cooldown:  cooldown,
		now:       time.Now,
		byClass:   make(map[vuln.ClassID]*breakerEntry),
	}
}

func (b *classBreakers) entry(id vuln.ClassID) *breakerEntry {
	en := b.byClass[id]
	if en == nil {
		en = &breakerEntry{state: BreakerClosed}
		b.byClass[id] = en
	}
	return en
}

// allow reports whether a task of the class may run now. probe is true when
// the task runs as the half-open probe; callers must hand the task's
// disposition back via recordSuccess, recordFault or releaseProbe so the
// probe slot is never leaked.
func (b *classBreakers) allow(id vuln.ClassID) (ok, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	en := b.entry(id)
	switch en.state {
	case BreakerOpen:
		if b.now().Sub(en.openedAt) < b.cooldown {
			return false, false
		}
		en.state = BreakerHalfOpen
		en.probing = true
		return true, true
	case BreakerHalfOpen:
		if en.probing {
			return false, false
		}
		en.probing = true
		return true, true
	default:
		return true, false
	}
}

// recordSuccess notes a cleanly completed task: the consecutive-fault count
// resets and a successful probe closes the breaker.
func (b *classBreakers) recordSuccess(id vuln.ClassID, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	en := b.entry(id)
	en.faults = 0
	en.state = BreakerClosed
	en.probing = false
}

// recordFault notes a terminal task fault (the retry ladder, if any, is
// already exhausted). A failed probe re-opens immediately; otherwise the
// breaker opens once the consecutive-fault count reaches the threshold.
func (b *classBreakers) recordFault(id vuln.ClassID, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	en := b.entry(id)
	if probe || en.state == BreakerHalfOpen {
		en.state = BreakerOpen
		en.openedAt = b.now()
		en.probing = false
		return
	}
	if en.state == BreakerOpen {
		return
	}
	en.faults++
	if en.faults >= b.threshold {
		en.state = BreakerOpen
		en.openedAt = b.now()
	}
}

// releaseProbe returns an unused probe slot when the probe task was
// abandoned by scan cancellation (neither a success nor a class fault), so
// the next task can probe instead of waiting out another cool-down.
func (b *classBreakers) releaseProbe(id vuln.ClassID, probe bool) {
	if !probe {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.entry(id).probing = false
}

// snapshot copies every breaker's current status.
func (b *classBreakers) snapshot() map[vuln.ClassID]BreakerStatus {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[vuln.ClassID]BreakerStatus, len(b.byClass))
	for id, en := range b.byClass {
		st := BreakerStatus{State: en.state, Faults: en.faults}
		if en.state == BreakerOpen {
			st.RetryAt = en.openedAt.Add(b.cooldown)
		}
		out[id] = st
	}
	return out
}
