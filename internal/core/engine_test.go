package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/corrector"
	"repro/internal/dataset"
	"repro/internal/vuln"
	"repro/internal/weapon"
)

const vulnApp = `<?php
// index.php-like page with several flows.
$id = $_GET['id'];
mysql_query("SELECT * FROM users WHERE id=" . $id);

$name = $_POST['name'];
echo "Hello " . $name;

$safe = intval($_GET['n']);
mysql_query("SELECT * FROM t LIMIT " . $safe);
`

const guardedApp = `<?php
$id = $_GET['id'];
if (!isset($_GET['id']) || !is_numeric($id)) { exit; }
mysql_query("SELECT * FROM users WHERE id=" . $id);
`

func newEngine(t *testing.T, opts Options) *Engine {
	t.Helper()
	e, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Train(); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestAnalyzeFindsVulnerabilities(t *testing.T) {
	e := newEngine(t, Options{Mode: ModeWAPe, Seed: 1})
	p := LoadMap("app", map[string]string{"index.php": vulnApp})
	rep, err := e.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[vuln.ClassID]int{}
	for _, f := range rep.Findings {
		counts[f.Candidate.Class]++
	}
	if counts[vuln.SQLI] != 1 {
		t.Errorf("SQLI findings = %d, want 1", counts[vuln.SQLI])
	}
	if counts[vuln.XSSR] != 1 {
		t.Errorf("XSS findings = %d, want 1", counts[vuln.XSSR])
	}
	// The raw flows must be classified as real vulnerabilities.
	for _, f := range rep.Vulnerabilities() {
		if f.PredictedFP {
			t.Errorf("vulnerability misfiled")
		}
	}
	if len(rep.Vulnerabilities()) < 2 {
		t.Errorf("real vulns = %d, want >= 2", len(rep.Vulnerabilities()))
	}
}

func TestGuardedFlowPredictedFalsePositive(t *testing.T) {
	e := newEngine(t, Options{Mode: ModeWAPe, Seed: 1})
	p := LoadMap("app", map[string]string{"page.php": guardedApp})
	rep, err := e.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) != 1 {
		t.Fatalf("findings = %d, want 1", len(rep.Findings))
	}
	f := rep.Findings[0]
	if !f.Symptoms["is_numeric"] || !f.Symptoms["isset"] {
		t.Errorf("symptoms = %v", f.Symptoms)
	}
	if !f.PredictedFP {
		t.Errorf("guarded numeric flow should be predicted FP; votes=%v symptoms=%v", f.Votes, f.Symptoms)
	}
}

func TestOriginalModeClassSet(t *testing.T) {
	e := newEngine(t, Options{Mode: ModeOriginal, Seed: 1})
	ids := map[vuln.ClassID]bool{}
	for _, c := range e.Classes() {
		ids[c.ID] = true
	}
	if len(ids) != 9 { // 8 paper classes; XSS split into reflected+stored
		t.Errorf("original classes = %d (%v)", len(ids), ids)
	}
	if ids[vuln.LDAPI] || ids[vuln.HI] {
		t.Error("original mode must not include new classes")
	}
}

func TestWAPeDetectsNewClassesOriginalDoesNot(t *testing.T) {
	src := `<?php
header("Location: " . $_GET['next']);
ldap_search($c, "dc=x", "(uid=" . $_GET['u'] . ")");
session_id($_COOKIE['sid']);
`
	p := LoadMap("app", map[string]string{"new.php": src})

	eOld := newEngine(t, Options{Mode: ModeOriginal, Seed: 1})
	repOld, err := eOld.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range repOld.Findings {
		switch f.Candidate.Class {
		case vuln.HI, vuln.LDAPI, vuln.SF:
			t.Errorf("v2.1 detected new class %s", f.Candidate.Class)
		}
	}

	eNew := newEngine(t, Options{Mode: ModeWAPe, Seed: 1})
	repNew, err := eNew.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	got := map[vuln.ClassID]int{}
	for _, f := range repNew.Findings {
		got[f.Candidate.Class]++
	}
	for _, want := range []vuln.ClassID{vuln.HI, vuln.LDAPI, vuln.SF} {
		if got[want] == 0 {
			t.Errorf("WAPe missed class %s (got %v)", want, got)
		}
	}
}

func TestBothModesAgreeOnOriginalClasses(t *testing.T) {
	// Paper question 2: WAPe must still detect what v2.1 detects.
	p := LoadMap("app", map[string]string{"index.php": vulnApp})
	eOld := newEngine(t, Options{Mode: ModeOriginal, Seed: 1})
	eNew := newEngine(t, Options{Mode: ModeWAPe, Seed: 1})
	repOld, err := eOld.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	repNew, err := eNew.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	keysOf := func(r *Report) map[string]bool {
		out := map[string]bool{}
		for _, f := range r.Findings {
			if c := vuln.Get(f.Candidate.Class); c != nil && !c.New {
				out[f.Candidate.Key()] = true
			}
		}
		return out
	}
	oldKeys, newKeys := keysOf(repOld), keysOf(repNew)
	for k := range oldKeys {
		if !newKeys[k] {
			t.Errorf("WAPe lost candidate %s", k)
		}
	}
}

func TestWeaponIntegration(t *testing.T) {
	var spec weapon.Spec
	for _, s := range weapon.BuiltinSpecs() {
		if s.Name == "wpsqli" {
			spec = s
		}
	}
	w, err := weapon.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, Options{
		Mode:    ModeWAPe,
		Classes: []vuln.ClassID{}, // no native classes: weapon only
		Weapons: []*weapon.Weapon{w},
		Seed:    1,
	})
	src := `<?php
$title = $_POST['title'];
$wpdb->query("SELECT ID FROM wp_posts WHERE post_title='" . $title . "'");
$safe = esc_sql($_POST['t2']);
$wpdb->query("SELECT ID FROM wp_posts WHERE post_title='" . $safe . "'");
`
	p := LoadMap("plugin", map[string]string{"plugin.php": src})
	rep, err := e.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) != 1 {
		t.Fatalf("findings = %d, want 1 (esc_sql flow must be clean)", len(rep.Findings))
	}
	if rep.Findings[0].Weapon != "wpsqli" {
		t.Errorf("weapon tag = %q", rep.Findings[0].Weapon)
	}
}

func TestWeaponsRequireWAPe(t *testing.T) {
	w, err := weapon.Generate(weapon.BuiltinSpecs()[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Options{Mode: ModeOriginal, Weapons: []*weapon.Weapon{w}}); err == nil {
		t.Error("want error: weapons need ModeWAPe")
	}
}

func TestUnknownClassRejected(t *testing.T) {
	if _, err := New(Options{Classes: []vuln.ClassID{"bogus"}}); err == nil {
		t.Error("want error for unknown class")
	}
}

func TestWeaponCollisionsRejected(t *testing.T) {
	w, err := weapon.Generate(weapon.Spec{
		Name:  "colltest",
		Sinks: []vuln.Sink{{Name: "sinkfn"}},
		Fix:   corrector.Template{Kind: corrector.PHPSanitization, SanFunc: "esc"},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Two weapons with the same class ID would silently dedupe.
	if _, err := New(Options{Mode: ModeWAPe, Weapons: []*weapon.Weapon{w, w}}); err == nil {
		t.Error("want error for duplicate weapon IDs")
	}

	// A weapon shadowing a non-weapon bundled class would dedupe to the
	// bundled definition while its fix and dynamics still registered.
	// Spec.Validate blocks the name, so forge the class ID directly (as a
	// hand-built Weapon struct could).
	forged := *w
	forgedCls := *w.Class
	forgedCls.ID = vuln.SQLI
	forged.Class = &forgedCls
	if _, err := New(Options{Mode: ModeWAPe, Weapons: []*weapon.Weapon{&forged}}); err == nil {
		t.Error("want error for weapon shadowing bundled sqli class")
	}

	// Regenerating a bundled weapon class (nosqli etc.) stays allowed.
	builtin, err := weapon.Generate(weapon.BuiltinSpecs()[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Options{Mode: ModeWAPe, Weapons: []*weapon.Weapon{builtin}, Seed: 1}); err != nil {
		t.Errorf("bundled weapon class regeneration rejected: %v", err)
	}
}

func TestExtraSanitizersSuppressCandidates(t *testing.T) {
	// Paper Section V-A: vfront's "escape" function.
	src := `<?php
function escape($v) { return str_replace("'", "''", $v); }
$q = "SELECT * FROM t WHERE a='" . escape($_GET['a']) . "'";
mysql_query($q);
`
	p := LoadMap("app", map[string]string{"v.php": src})
	base := newEngine(t, Options{Mode: ModeWAPe, Seed: 1})
	rep, err := base.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) != 1 {
		t.Fatalf("baseline findings = %d, want 1", len(rep.Findings))
	}
	tuned := newEngine(t, Options{Mode: ModeWAPe, Seed: 1, ExtraSanitizers: []string{"escape"}})
	rep2, err := tuned.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Findings) != 0 {
		t.Errorf("tuned findings = %d, want 0", len(rep2.Findings))
	}
}

func TestFixProject(t *testing.T) {
	e := newEngine(t, Options{Mode: ModeWAPe, Seed: 1})
	p := LoadMap("app", map[string]string{"index.php": vulnApp})
	rep, err := e.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	fixed, applied, err := e.FixProject(rep)
	if err != nil {
		t.Fatal(err)
	}
	out, ok := fixed["index.php"]
	if !ok {
		t.Fatal("index.php not fixed")
	}
	if len(applied["index.php"]) == 0 {
		t.Fatal("no corrections recorded")
	}
	if !strings.Contains(out, "san_sqli(") || !strings.Contains(out, "san_out(") {
		t.Errorf("fix calls missing:\n%s", out)
	}

	// Re-analyzing the fixed project must find nothing real.
	p2 := LoadMap("app-fixed", map[string]string{"index.php": out})
	rep2, err := e.Analyze(p2)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(rep2.Vulnerabilities()); n != 0 {
		for _, f := range rep2.Vulnerabilities() {
			t.Logf("leftover finding: %v", f.Candidate)
		}
		t.Errorf("fixed project still has %d vulnerabilities", n)
	}
}

func TestWeaponFixApplied(t *testing.T) {
	specs := weapon.BuiltinSpecs()
	var hei weapon.Spec
	for _, s := range specs {
		if s.Name == "hei" {
			hei = s
		}
	}
	w, err := weapon.Generate(hei)
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, Options{
		Mode:    ModeWAPe,
		Classes: []vuln.ClassID{},
		Weapons: []*weapon.Weapon{w},
		Seed:    1,
	})
	src := `<?php header("X-Redirect: " . $_GET['to']);`
	p := LoadMap("app", map[string]string{"h.php": src})
	rep, err := e.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Vulnerabilities()) != 1 {
		t.Fatalf("vulns = %d", len(rep.Vulnerabilities()))
	}
	fixed, _, err := e.FixProject(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fixed["h.php"], "san_hei(") {
		t.Errorf("weapon fix not applied:\n%s", fixed["h.php"])
	}
	if !strings.Contains(fixed["h.php"], "function san_hei") {
		t.Errorf("weapon fix definition missing")
	}
}

func TestProjectIndex(t *testing.T) {
	p := LoadMap("multi", map[string]string{
		"lib.php":  `<?php function get_input() { return $_GET['q']; }`,
		"main.php": `<?php mysql_query("SELECT " . get_input());`,
	})
	if p.ResolveFunc("get_input") == nil {
		t.Fatal("cross-file function not indexed")
	}
	e := newEngine(t, Options{Mode: ModeWAPe, Seed: 1, Classes: []vuln.ClassID{vuln.SQLI}})
	rep, err := e.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) != 1 {
		t.Errorf("cross-file taint findings = %d, want 1", len(rep.Findings))
	}
}

func TestReportHelpers(t *testing.T) {
	e := newEngine(t, Options{Mode: ModeWAPe, Seed: 1})
	p := LoadMap("app", map[string]string{"index.php": vulnApp, "clean.php": `<?php echo "static";`})
	rep, err := e.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	files := rep.VulnerableFiles()
	if len(files) != 1 || files[0] != "index.php" {
		t.Errorf("vulnerable files = %v", files)
	}
	if got := rep.CountByClass(); got[vuln.SQLI] == 0 {
		t.Errorf("count by class = %v", got)
	}
	if p.TotalLines() < 10 {
		t.Errorf("total lines = %d", p.TotalLines())
	}
}

func TestStoredXSSLinkInReport(t *testing.T) {
	e := newEngine(t, Options{Mode: ModeWAPe, Seed: 1})
	p := LoadMap("blog", map[string]string{"comments.php": `<?php
$body = $_POST['body'];
mysql_query("INSERT INTO comments (body) VALUES ('" . $body . "')");
$res = mysql_query("SELECT body FROM comments");
$row = mysql_fetch_assoc($res);
echo "<li>" . $row['body'] . "</li>";
`})
	rep, err := e.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.StoredLinks) != 1 {
		t.Fatalf("stored links = %d, want 1", len(rep.StoredLinks))
	}
	l := rep.StoredLinks[0]
	if l.Table != "COMMENTS" || l.Write.SinkPos.Line != 3 || l.Read.SinkPos.Line != 6 {
		t.Errorf("link = table %q write %d read %d", l.Table, l.Write.SinkPos.Line, l.Read.SinkPos.Line)
	}
}

func TestTrainSizeOverride(t *testing.T) {
	e, err := New(Options{Mode: ModeWAPe, Seed: 1, TrainSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Train(); err != nil {
		t.Fatal(err)
	}
	// The engine still works with the smaller training set.
	rep, err := e.Analyze(LoadMap("m", map[string]string{"x.php": `<?php echo $_GET['a'];`}))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) != 1 {
		t.Errorf("findings = %d", len(rep.Findings))
	}
}

func TestLazyTraining(t *testing.T) {
	// Analyze without calling Train: the engine trains itself.
	e, err := New(Options{Mode: ModeWAPe, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Analyze(LoadMap("m", map[string]string{"x.php": `<?php echo $_GET['a'];`}))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) != 1 {
		t.Errorf("findings = %d", len(rep.Findings))
	}
}

func TestDefaultModeIsWAPe(t *testing.T) {
	e, err := New(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range e.Classes() {
		if c.ID == vuln.LDAPI {
			found = true
		}
	}
	if !found {
		t.Error("zero-value mode should default to WAPe (new classes active)")
	}
}

func TestTrainFromARFF(t *testing.T) {
	// Export the generated set and train from the file (Fig. 1's "trained
	// data sets" input).
	d := dataset.Generate(dataset.Config{Seed: 5})
	path := filepath.Join(t.TempDir(), "train.arff")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteARFF(f, "t", d); err != nil {
		t.Fatal(err)
	}
	f.Close()

	e, err := New(Options{Mode: ModeWAPe, Seed: 1, TrainARFF: path})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Train(); err != nil {
		t.Fatal(err)
	}
	rep, err := e.Analyze(LoadMap("m", map[string]string{"x.php": guardedApp}))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) != 1 || !rep.Findings[0].PredictedFP {
		t.Errorf("ARFF-trained predictor misbehaves: %+v", rep.Findings)
	}
}

func TestTrainFromARFFWrongLayout(t *testing.T) {
	d := dataset.Generate(dataset.Config{Seed: 5, Original: true}) // 15 attrs
	path := filepath.Join(t.TempDir(), "orig.arff")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteARFF(f, "t", d); err != nil {
		t.Fatal(err)
	}
	f.Close()
	e, err := New(Options{Mode: ModeWAPe, Seed: 1, TrainARFF: path})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Train(); err == nil {
		t.Error("want layout mismatch error")
	}
	e2, err := New(Options{Mode: ModeWAPe, Seed: 1, TrainARFF: "/no/such.arff"})
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.Train(); err == nil {
		t.Error("want missing-file error")
	}
}
